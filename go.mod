module netorient

go 1.24

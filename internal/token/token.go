// Package token implements the depth-first token circulation substrate
// that DFTNO (Chapter 3 of the paper) is layered on: a self-stabilizing
// protocol maintaining a single token that perpetually traverses an
// arbitrary rooted network in deterministic depth-first order, visiting
// every node exactly once per round.
//
// The paper builds on Datta–Johnen–Petit–Villain (SIROCCO'98), whose
// transition tables are not reproduced in the thesis text; Circulator
// is this library's own self-stabilizing realisation of the same layer
// interface (see DESIGN.md §4 for the substitution argument). Oracle is
// a correct-by-construction, non-stabilizing realisation used to test
// the orientation layer in isolation, mirroring the paper's layered
// proof structure ("after the token circulation stabilizes…").
//
// Both realisations report the three events the orientation layer
// hooks (§3.1): the root generating a fresh token (round start), a
// Forward move delivering the token to an unvisited node, and a
// Backtrack move returning the token from a finished child.
package token

import "netorient/internal/graph"

// Events receives the substrate's token-movement events. The calls
// happen inside the substrate's atomic action execution, so an observer
// that updates its own per-node variables composes with the substrate
// exactly like the paper's macro expansion (Forward(p) → Nodelabel_p).
type Events interface {
	// OnRootStart fires when the root generates the token for a new
	// round (and, per the paper, names itself 0).
	OnRootStart(root graph.NodeID)
	// OnForward fires when node v receives the token for the first
	// time in the current round from its DFS parent.
	OnForward(v, parent graph.NodeID)
	// OnBacktrack fires when node v observes that its child has
	// finished, i.e. the token returns to v.
	OnBacktrack(v, child graph.NodeID)
}

// NopEvents is an Events implementation that ignores everything.
type NopEvents struct{}

// OnRootStart implements Events.
func (NopEvents) OnRootStart(graph.NodeID) {}

// OnForward implements Events.
func (NopEvents) OnForward(graph.NodeID, graph.NodeID) {}

// OnBacktrack implements Events.
func (NopEvents) OnBacktrack(graph.NodeID, graph.NodeID) {}

// Substrate is the read interface the orientation layer needs from a
// token circulation protocol, beyond its program.Protocol behaviour:
// the ancestor pointer A_p maintained by the underlying protocol
// (§2.1.1) and a token-presence test used to gate the edge-labeling
// action (¬Forward(p) ∧ ¬Backtrack(p) in Algorithm 3.1.1).
//
// Locality contract: the orientation layer folds HasToken(v) into its
// own guards and declares 1-hop influence for the composition, so
// HasToken(v) must be decidable from the state of v's closed 1-hop
// neighbourhood — equivalently, a substrate move may change HasToken
// only for the mover and its neighbours. Both realisations here
// satisfy this (Circulator by construction, Oracle because
// consecutive DFS events have adjacent actors); a substrate that does
// not must make the composed protocol widen program.Influencer.
type Substrate interface {
	// Root returns the distinguished root processor r.
	Root() graph.NodeID
	// Parent returns A_v, the current ancestor of v (None for the
	// root or an unset pointer).
	Parent(v graph.NodeID) graph.NodeID
	// HasToken reports whether v currently holds the token, i.e.
	// whether a Forward or Backtrack move is enabled at v.
	HasToken(v graph.NodeID) bool
	// SetObserver registers the orientation layer's event hooks.
	// Passing nil removes the observer.
	SetObserver(ev Events)

	// The four traversal-introspection queries below let the
	// orientation layer decide its legitimacy predicate from local
	// position invariants — max[v] is determined by whether v's
	// subtree is explored and which child it currently explores —
	// instead of recorded per-cycle snapshots (which cost O(n²)
	// bytes). All four must be O(Δ) at worst and decidable from the
	// closed 1-hop neighbourhood of their first argument, matching
	// the locality contract HasToken already obeys.
	//
	// The substrate's legitimate circulation must be the
	// deterministic port-order DFS from the root (the paper's DFTC);
	// both realisations here are, and the orientation layer's
	// reference naming is derived from that traversal directly.

	// Finished reports whether v's subtree is completely explored in
	// the current round (done_v for the circulator).
	Finished(v graph.NodeID) bool
	// Pointing returns the neighbour v's exploration pointer
	// currently designates — the child being explored, or the next
	// unvisited neighbour an in-flight arrow targets — or None.
	Pointing(v graph.NodeID) graph.NodeID
	// SameRound reports whether u's round counter equals v's
	// (seq_u = seq_v for the circulator). Meaningful for neighbours.
	SameRound(u, v graph.NodeID) bool
	// Behind reports whether u's round counter is strictly smaller
	// than v's (seq_u < seq_v for the circulator).
	Behind(u, v graph.NodeID) bool
}

package token

import (
	"math/rand"
	"testing"

	"netorient/internal/daemon"
	"netorient/internal/graph"
	"netorient/internal/program"
)

func TestOracleReplaysIdealCirculation(t *testing.T) {
	for name, g := range testGraphs(t) {
		t.Run(name, func(t *testing.T) {
			o, err := NewOracle(g, 0)
			if err != nil {
				t.Fatal(err)
			}
			rec := newVisitRecorder()
			o.SetObserver(rec)
			sys := program.NewSystem(o, daemon.NewDeterministic())
			for rec.rounds < 3 {
				if _, err := sys.Step(); err != nil {
					t.Fatal(err)
				}
			}
			wantOrder, wantParent := graph.DFSPreorder(g, 0)
			for _, visits := range rec.all {
				if len(visits) != g.N() {
					t.Fatalf("round visited %d nodes, want %d", len(visits), g.N())
				}
				for i, v := range visits {
					if v != wantOrder[i] {
						t.Fatalf("visit order %v, want %v", visits, wantOrder)
					}
				}
			}
			for v := 1; v < g.N(); v++ {
				if o.Parent(graph.NodeID(v)) != wantParent[v] {
					t.Errorf("oracle parent of %d = %d, want %d", v, o.Parent(graph.NodeID(v)), wantParent[v])
				}
			}
		})
	}
}

func TestOracleRoundLength(t *testing.T) {
	// One round = 1 root start + (n-1) forwards + (n-1) backtracks.
	g := graph.KAryTree(7, 2)
	o, err := NewOracle(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := 1 + 2*(g.N()-1); o.RoundLength() != want {
		t.Fatalf("round length %d, want %d", o.RoundLength(), want)
	}
}

func TestOracleSingleEnabledProcessor(t *testing.T) {
	g := graph.Ring(6)
	o, err := NewOracle(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf []program.ActionID
	sys := program.NewSystem(o, daemon.NewDeterministic())
	for i := 0; i < 3*o.RoundLength(); i++ {
		holders, enabled := 0, 0
		for v := 0; v < g.N(); v++ {
			if o.HasToken(graph.NodeID(v)) {
				holders++
			}
			buf = o.Enabled(graph.NodeID(v), buf[:0])
			enabled += len(buf)
		}
		if holders != 1 || enabled != 1 {
			t.Fatalf("step %d: holders=%d enabled=%d, want 1/1", i, holders, enabled)
		}
		if _, err := sys.Step(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOracleSnapshotRoundTrip(t *testing.T) {
	g := graph.Grid(2, 3)
	o, err := NewOracle(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 20; i++ {
		o.Randomize(rng)
		snap := o.Snapshot()
		o.Randomize(rng)
		if err := o.Restore(snap); err != nil {
			t.Fatal(err)
		}
		if string(o.Snapshot()) != string(snap) {
			t.Fatal("oracle snapshot round-trip mismatch")
		}
	}
	if err := o.Restore([]byte{1, 2, 3}); err == nil {
		t.Error("expected error for malformed snapshot")
	}
}

package token_test

import (
	"math/rand"
	"testing"

	"netorient/internal/daemon"
	"netorient/internal/graph"
	"netorient/internal/program"
	"netorient/internal/token"
)

// TestCirculatorWitnessMatchesLegitimate audits the circulator's
// incremental legitimacy witness against the O(n) chain-walk predicate
// across topologies and daemons: from random configurations, armed
// executions must report the identical verdict after every step —
// through stabilization and into the legitimate regime, where the
// witness's counters must track the circulating token exactly.
func TestCirculatorWitnessMatchesLegitimate(t *testing.T) {
	t.Parallel()
	graphs := map[string]*graph.Graph{
		"ring7":   graph.Ring(7),
		"grid3x4": graph.Grid(3, 4),
		"clique5": graph.Complete(5),
		"paper":   graph.PaperTokenExample(),
	}
	daemons := map[string]func(int64) program.Daemon{
		"central":     func(s int64) program.Daemon { return daemon.NewCentral(s) },
		"synchronous": func(s int64) program.Daemon { return daemon.NewSynchronous(s) },
	}
	configs, steps := 12, 400
	if testing.Short() {
		configs, steps = 4, 150
	}
	for gname, g := range graphs {
		for dname, mk := range daemons {
			g, mk := g, mk
			t.Run(gname+"/"+dname, func(t *testing.T) {
				t.Parallel()
				c, err := token.NewCirculator(g, 0)
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(31))
				if err := program.CheckWitness(c, configs, steps, func() program.Daemon { return mk(31) }, rng); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestCirculatorWitnessSurvivesLongRun drives a stabilized circulation
// for many rounds with the witness armed: the incrementally-maintained
// verdict must agree with the chain walk at every step while the round
// counters keep growing (the seq-keyed table retires dead buckets, so
// counter drift would surface here as divergence).
func TestCirculatorWitnessSurvivesLongRun(t *testing.T) {
	t.Parallel()
	g := graph.Grid(3, 3)
	c, err := token.NewCirculator(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	sys := program.NewSystem(c, daemon.NewDeterministic())
	res, err := sys.RunUntilLegitimate(1)
	if err != nil || !res.Converged {
		t.Fatalf("fresh circulator not legitimate: %v %+v", err, res)
	}
	for i := 0; i < 3000; i++ {
		if _, err := sys.Step(); err != nil {
			t.Fatal(err)
		}
		if c.WitnessLegitimate() != c.Legitimate() {
			t.Fatalf("witness diverged from Legitimate at step %d", i)
		}
		if !c.Legitimate() {
			t.Fatalf("legitimacy not closed at step %d", i)
		}
	}
}

// TestWitnessRootDieReviveFootgun is the regression test for the
// CompVersion caching footgun: the root dying and reviving between two
// witness queries restores Alive(root) to true — so a liveness-*value*
// cache sees nothing — while component labels need not move either,
// leaving every cached orphan/rooted classification stale. The witness
// keys its rebuild on graph.RootEpoch, which counts flips instead of
// comparing values; this test drives exactly that blind spot and
// demands witness ≡ Legitimate throughout.
func TestWitnessRootDieReviveFootgun(t *testing.T) {
	t.Parallel()
	g := graph.Path(4) // root 0 has degree 1: killing it splits nothing
	c, err := token.NewCirculator(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	sys := program.NewSystem(c, daemon.NewCentral(7))
	if _, err := sys.RunUntilLegitimate(0); err != nil {
		t.Fatal(err) // arms the witness
	}
	if !c.WitnessLegitimate() {
		t.Fatal("not legitimate after stabilization")
	}
	// Kill the root, then revive it — no witness query in between.
	d, err := g.RemoveNode(0)
	if err != nil {
		t.Fatal(err)
	}
	sys.ApplyDelta(d)
	id, d2 := g.AddNode()
	if id != 0 {
		t.Fatalf("revive picked slot %d, want the root", id)
	}
	sys.ApplyDelta(d2)
	// The revived root is isolated: its singleton component must
	// satisfy the classic predicate (it does: the root immediately has
	// Start enabled, so it is *not* silent and the old all-orphan
	// classification would call the configuration legitimate or not on
	// stale grounds). Whatever the verdict, it must match the scan.
	for step := 0; step < 64; step++ {
		if got, want := c.WitnessLegitimate(), c.Legitimate(); got != want {
			t.Fatalf("step %d: witness %v vs Legitimate %v after die/revive", step, got, want)
		}
		n, err := sys.Step()
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
	}
	// Re-attach the root and run back to global legitimacy.
	d3, err := g.AddEdge(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	sys.ApplyDelta(d3)
	res, err := sys.RunUntilLegitimate(int64(20000 * (g.N() + g.M())))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("no convergence after heal")
	}
	if got, want := c.WitnessLegitimate(), c.Legitimate(); !got || got != want {
		t.Fatalf("post-heal witness %v vs Legitimate %v", got, want)
	}
}

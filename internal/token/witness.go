package token

import (
	"netorient/internal/graph"
	"netorient/internal/program"
)

// This file implements program.Witness for Circulator: an O(1)
// decision procedure for Legitimate() maintained from per-node
// violation counters keyed by round value.
//
// # Why counters keyed by seq suffice
//
// Legitimate() walks the pointer chain from the root — a global check.
// The witness decomposes it into five per-node facts, each a function
// of the node's closed 1-hop neighbourhood (so a move refreshes them
// through its influence set), bucketed by the node's seq value so the
// O(1) decision can look up exactly the root's round rnd and rnd−1:
//
//	cnt[s] — nodes with seq = s.
//	a[s]   — nodes with seq = s that are not "clean finished"
//	         (¬done ∨ ptr ≠ −1).
//	b[s]   — non-root finished nodes with seq = s violating the
//	         visited shape: ptr ≠ −1, or the parent equations fail
//	         (par a neighbour, same round, lev = lev_par + 1).
//	d[s]   — non-root unfinished nodes with seq = s violating the
//	         chain-link equations: parent a same-round unfinished
//	         neighbour whose pointer designates the node, lev+1.
//	e[s]   — unfinished nodes with seq = s whose own pointer violates
//	         the head cases: retracted, or a same-round unfinished
//	         chain child (par/lev equations), or a same-round finished
//	         child awaiting advance, or a one-round-behind finished
//	         in-flight target.
//
// The counters are component-scoped: only nodes in the root's
// component contribute to the seq buckets, and the population they are
// compared against is ComponentSize(rootComp), not NAlive. Nodes in a
// component without the root contribute a single bit — whether any
// action is enabled (orphanSilent) — tallied in orphanLoud; orphan
// legitimacy is orphanLoud = 0. Which bucket a node feeds depends on
// component labels, which a merge or split relabels WITHOUT touching
// the node, so the witness caches the CompVersion it was built against
// and rebuilds from scratch when the graph's moves past it.
//
// Between rounds (done_root): legitimate ⇔ cnt[rnd] = n_comp ∧
// a[rnd] = 0 ∧ orphanLoud = 0. Mid-round (¬done_root): legitimate ⇔
// lev_root = 0 ∧ cnt[rnd]+cnt[rnd−1] = n_comp ∧ a[rnd−1] = 0 ∧
// b[rnd] = d[rnd] = e[rnd] = 0 ∧ orphanLoud = 0. Dead root: every
// live node is an orphan; legitimate ⇔ orphanLoud = 0.
//
// The mid-round equivalence with the chain walk: d[rnd] = 0 makes
// every non-root unfinished node the unique pointer-designated child
// of an unfinished same-round parent with lev one higher, so parent
// chains descend in lev and terminate only at the root — the
// unfinished nodes form exactly one pointer chain from the root, each
// node having at most one chain child because a pointer designates one
// neighbour (parents are neighbours, so the chain never leaves the
// component). e[rnd] = 0 pins every chain pointer to the walk's three
// head cases, b[rnd] = 0 is checkOffChain's visited clause, a[rnd−1] =
// 0 its unvisited clause, and the cnt equation its default clause.
// TestWitnessMatchesChainWalk audits the equivalence on random
// executions; the model-checking suites pin Legitimate() itself.
type circWitness struct {
	valid      bool
	tab        map[uint64]witCounters
	node       []witContrib // cached contribution, for O(1) retraction
	orphanLoud int          // orphan nodes with an enabled action
	compVer    uint64       // graph.CompVersion the labels were read at
	rootAlive  bool         // root liveness the labels were read at
}

// witCounters aggregates one seq bucket.
type witCounters struct {
	cnt, a, b, d, e int
}

// witContrib is one node's cached contribution. A dead node (topology
// churn) contributes nothing: its frozen variables are outside every
// legitimacy clause, and the population count compares against the
// root component's size, not N. An orphan node (live, component
// without the root) contributes only its loud bit.
type witContrib struct {
	seq        uint64
	a, b, d, e bool
	dead       bool
	orphan     bool
	loud       bool // orphan only: some action is enabled
}

// Compile-time interface compliance.
var _ program.Witness = (*Circulator)(nil)

// parShapeOK reports the visited-node parent equations at v: par_v is
// a neighbour in the same round one level up. Reads one hop.
func (c *Circulator) parShapeOK(v graph.NodeID) bool {
	p := c.par[v]
	if p == graph.None || !c.g.HasEdge(v, p) {
		return false
	}
	return c.seq[p] == c.seq[v] && c.lev[v] == c.lev[p]+1
}

// chainLinkOK reports the chain-membership equations at a non-root
// unfinished v: its parent is an unfinished same-round neighbour whose
// pointer designates v, one level down. Reads one hop.
func (c *Circulator) chainLinkOK(v graph.NodeID) bool {
	p := c.par[v]
	if p == graph.None || !c.g.HasEdge(v, p) {
		return false
	}
	return !c.done[p] && c.seq[p] == c.seq[v] && c.lev[v] == c.lev[p]+1 && c.ptrTarget(p) == v
}

// headPtrOK reports the walk's pointer cases at an unfinished v: the
// pointer is retracted, continues the chain, awaits an advance past a
// finished child, or is an in-flight arrow to an unvisited node.
func (c *Circulator) headPtrOK(v graph.NodeID) bool {
	q := c.ptrTarget(v)
	if q == graph.None {
		return true
	}
	switch {
	case c.seq[q] == c.seq[v] && !c.done[q]:
		return c.par[q] == v && c.lev[q] == c.lev[v]+1
	case c.seq[q] == c.seq[v] && c.done[q]:
		return true
	case c.seq[q]+1 == c.seq[v] && c.done[q]:
		return true
	}
	return false
}

// witContribOf derives node v's contribution from its neighbourhood
// and its component label (read at the cached CompVersion).
func (c *Circulator) witContribOf(v graph.NodeID) witContrib {
	if !c.g.Alive(v) {
		return witContrib{dead: true}
	}
	if c.g.ComponentOf(v) != c.rootComponent() {
		return witContrib{orphan: true, loud: !c.orphanSilent(v)}
	}
	w := witContrib{seq: c.seq[v]}
	w.a = !c.done[v] || c.ptr[v] != -1
	if v != c.root {
		if c.done[v] {
			w.b = c.ptr[v] != -1 || !c.parShapeOK(v)
		} else {
			w.d = !c.chainLinkOK(v)
		}
	}
	if !c.done[v] {
		w.e = !c.headPtrOK(v)
	}
	return w
}

// witApply adds (dir=+1) or retracts (dir=−1) a contribution.
func (c *Circulator) witApply(w witContrib, dir int) {
	if w.dead {
		return
	}
	if w.orphan {
		if w.loud {
			c.wit.orphanLoud += dir
		}
		return
	}
	k := c.wit.tab[w.seq]
	k.cnt += dir
	if w.a {
		k.a += dir
	}
	if w.b {
		k.b += dir
	}
	if w.d {
		k.d += dir
	}
	if w.e {
		k.e += dir
	}
	if k == (witCounters{}) {
		delete(c.wit.tab, w.seq) // keep the table at O(live rounds), not O(history)
	} else {
		c.wit.tab[w.seq] = k
	}
}

// WitnessReset implements program.Witness.
func (c *Circulator) WitnessReset() {
	if c.wit == nil {
		c.wit = &circWitness{}
	}
	if len(c.wit.node) < c.g.N() {
		c.wit.node = make([]witContrib, c.g.N())
	}
	if c.wit.tab == nil || len(c.wit.tab) > 0 {
		c.wit.tab = make(map[uint64]witCounters, 4)
	}
	c.wit.orphanLoud = 0
	c.wit.compVer = c.g.CompVersion()
	c.wit.rootAlive = c.g.Alive(c.root)
	for v := 0; v < c.g.N(); v++ {
		w := c.witContribOf(graph.NodeID(v))
		c.wit.node[v] = w
		c.witApply(w, 1)
	}
	c.wit.valid = true
}

// WitnessRefresh implements program.Witness.
func (c *Circulator) WitnessRefresh(v graph.NodeID) {
	if c.wit == nil || !c.wit.valid {
		return
	}
	w := c.witContribOf(v)
	if w == c.wit.node[v] {
		return
	}
	c.witApply(c.wit.node[v], -1)
	c.wit.node[v] = w
	c.witApply(w, 1)
}

// WitnessLegitimate implements program.Witness, deciding Legitimate()
// from the counters in O(1). A merge or split relabels components
// beyond any Touched set, silently moving nodes between the seq
// buckets and the orphan tally, so a CompVersion mismatch forces a
// rebuild before the counters are trusted. So does a flip of the
// root's liveness: the root dying (or reviving) re-classifies every
// live node without relabelling anything.
func (c *Circulator) WitnessLegitimate() bool {
	if c.wit == nil || !c.wit.valid || c.wit.compVer != c.g.CompVersion() ||
		c.wit.rootAlive != c.g.Alive(c.root) {
		c.WitnessReset()
	}
	if c.wit.orphanLoud != 0 {
		return false
	}
	rootComp := c.rootComponent()
	if rootComp < 0 {
		return true // dead root: orphan silence is the whole predicate
	}
	pop := c.g.ComponentSize(rootComp)
	rnd := c.seq[c.root]
	k := c.wit.tab[rnd]
	if c.done[c.root] {
		return k.cnt == pop && k.a == 0
	}
	kp := c.wit.tab[rnd-1]
	return c.lev[c.root] == 0 &&
		k.cnt+kp.cnt == pop &&
		kp.a == 0 && k.b == 0 && k.d == 0 && k.e == 0
}

package token

import (
	"netorient/internal/graph"
	"netorient/internal/program"
)

// This file implements program.Witness for Circulator: an O(1)
// decision procedure for Legitimate() maintained from per-node
// violation counters keyed by round value.
//
// # Why counters keyed by seq suffice
//
// Legitimate() walks the pointer chain from the root — a global check.
// The witness decomposes it into five per-node facts, each a function
// of the node's closed 1-hop neighbourhood (so a move refreshes them
// through its influence set), bucketed by the node's seq value so the
// O(1) decision can look up exactly the root's round rnd and rnd−1:
//
//	cnt[s] — nodes with seq = s.
//	a[s]   — nodes with seq = s that are not "clean finished"
//	         (¬done ∨ ptr ≠ −1).
//	b[s]   — non-root finished nodes with seq = s violating the
//	         visited shape: ptr ≠ −1, or the parent equations fail
//	         (par a neighbour, same round, lev = lev_par + 1).
//	d[s]   — non-root unfinished nodes with seq = s violating the
//	         chain-link equations: parent a same-round unfinished
//	         neighbour whose pointer designates the node, lev+1.
//	e[s]   — unfinished nodes with seq = s whose own pointer violates
//	         the head cases: retracted, or a same-round unfinished
//	         chain child (par/lev equations), or a same-round finished
//	         child awaiting advance, or a one-round-behind finished
//	         in-flight target.
//
// The counters are component-scoped: only nodes in a rooted component
// contribute to the (component, seq) buckets, and the population each
// bucket group is compared against is that component's ComponentSize,
// not NAlive. Nodes in a rootless component contribute a single bit —
// whether any action is enabled (orphanSilent) — tallied in
// orphanLoud; orphan legitimacy is orphanLoud = 0. Which bucket a node
// feeds depends on component labels, which a merge or split relabels
// WITHOUT touching the node, so the witness caches the CompVersion it
// was built against and rebuilds from scratch when the graph's moves
// past it. Two further staleness keys guard the same way: the root's
// liveness epoch (graph.RootEpoch — a die/revive pair between two
// queries restores Alive(root) to true while every cached
// classification is garbage, and CompVersion need not move when a
// degree-one root dies), and, when a RootAuthority is bound, its
// RootsVersion (an IsRoot flip re-anchors whole components without
// touching them).
//
// Per rooted component with effective root r, rnd = seq_r: between
// rounds (done_r): legitimate ⇔ cnt[rnd] = n_comp ∧ a[rnd] = 0.
// Mid-round (¬done_r): legitimate ⇔ lev_r = 0 ∧ cnt[rnd]+cnt[rnd−1] =
// n_comp ∧ a[rnd−1] = 0 ∧ b[rnd] = d[rnd] = e[rnd] = 0. Overall
// legitimacy is the conjunction over rooted components, plus
// orphanLoud = 0, plus "no component owns two effective roots" (a
// post-heal transient; multiRoot counts them). With no authority bound
// there is at most one rooted component — the fixed root's, with a
// dead root making every live node an orphan — which is exactly the
// pre-failover predicate.
//
// The mid-round equivalence with the chain walk (per component):
// d[rnd] = 0 makes every non-root unfinished node the unique
// pointer-designated child of an unfinished same-round parent with lev
// one higher, so parent chains descend in lev and terminate only at
// the effective root — the unfinished nodes form exactly one pointer
// chain from it, each node having at most one chain child because a
// pointer designates one neighbour (parents are neighbours, so the
// chain never leaves the component). e[rnd] = 0 pins every chain
// pointer to the walk's three head cases, b[rnd] = 0 is the off-chain
// visited clause, a[rnd−1] = 0 its unvisited clause, and the cnt
// equation its default clause. TestWitnessMatchesChainWalk audits the
// equivalence on random executions; the model-checking suites pin
// Legitimate() itself.
type circWitness struct {
	valid      bool
	tab        map[witKey]witCounters
	node       []witContrib // cached contribution, for O(1) retraction
	orphanLoud int          // orphan nodes with an enabled action
	compVer    uint64       // graph.CompVersion the labels were read at
	rootEpoch  uint64       // graph.RootEpoch(root) the labels were read at
	rootsVer   uint64       // RootAuthority.RootsVersion the roots were read at

	// compRoot maps each component owning exactly one effective root to
	// it; multiRoot counts components owning several. Built at reset
	// from the bound authority; with none bound, compRoot holds at most
	// the fixed root's component under pseudo-label 0.
	compRoot  map[int]graph.NodeID
	multiRoot int
}

// witKey addresses one seq bucket of one rooted component. With no
// authority bound the component is always pseudo-label 0 (there is
// only one rooted component), keeping the table exactly as cheap as
// the pre-failover seq-keyed one.
type witKey struct {
	comp int
	seq  uint64
}

// witCounters aggregates one seq bucket.
type witCounters struct {
	cnt, a, b, d, e int
}

// witContrib is one node's cached contribution. A dead node (topology
// churn) contributes nothing: its frozen variables are outside every
// legitimacy clause, and the population count compares against the
// owning component's size, not N. An orphan node (live, component
// without an effective root) contributes only its loud bit.
type witContrib struct {
	comp       int // bucket component (0 with no authority bound)
	seq        uint64
	a, b, d, e bool
	dead       bool
	orphan     bool
	loud       bool // orphan only: some action is enabled
}

// Compile-time interface compliance.
var _ program.Witness = (*Circulator)(nil)

// parShapeOK reports the visited-node parent equations at v: par_v is
// a neighbour in the same round one level up. Reads one hop.
func (c *Circulator) parShapeOK(v graph.NodeID) bool {
	p := c.par[v]
	if p == graph.None || !c.g.HasEdge(v, p) {
		return false
	}
	return c.seq[p] == c.seq[v] && c.lev[v] == c.lev[p]+1
}

// chainLinkOK reports the chain-membership equations at a non-root
// unfinished v: its parent is an unfinished same-round neighbour whose
// pointer designates v, one level down. Reads one hop.
func (c *Circulator) chainLinkOK(v graph.NodeID) bool {
	p := c.par[v]
	if p == graph.None || !c.g.HasEdge(v, p) {
		return false
	}
	return !c.done[p] && c.seq[p] == c.seq[v] && c.lev[v] == c.lev[p]+1 && c.ptrTarget(p) == v
}

// headPtrOK reports the walk's pointer cases at an unfinished v: the
// pointer is retracted, continues the chain, awaits an advance past a
// finished child, or is an in-flight arrow to an unvisited node.
func (c *Circulator) headPtrOK(v graph.NodeID) bool {
	q := c.ptrTarget(v)
	if q == graph.None {
		return true
	}
	switch {
	case c.seq[q] == c.seq[v] && !c.done[q]:
		return c.par[q] == v && c.lev[q] == c.lev[v]+1
	case c.seq[q] == c.seq[v] && c.done[q]:
		return true
	case c.seq[q]+1 == c.seq[v] && c.done[q]:
		return true
	}
	return false
}

// witContribOf derives node v's contribution from its neighbourhood,
// its component label (read at the cached CompVersion) and the cached
// component→effective-root map (read at the cached RootsVersion).
func (c *Circulator) witContribOf(v graph.NodeID) witContrib {
	if !c.g.Alive(v) {
		return witContrib{dead: true}
	}
	bucket, root := 0, c.root
	if c.auth == nil {
		if c.g.ComponentOf(v) != c.rootComponent() {
			return witContrib{orphan: true, loud: !c.orphanSilent(v)}
		}
	} else {
		comp := c.g.ComponentOf(v)
		r, ok := c.wit.compRoot[comp]
		if !ok {
			// Rootless component — or a multi-root one, whose counters
			// are irrelevant because multiRoot already vetoes.
			return witContrib{orphan: true, loud: !c.orphanSilent(v)}
		}
		bucket, root = comp, r
	}
	w := witContrib{comp: bucket, seq: c.seq[v]}
	w.a = !c.done[v] || c.ptr[v] != -1
	if v != root {
		if c.done[v] {
			w.b = c.ptr[v] != -1 || !c.parShapeOK(v)
		} else {
			w.d = !c.chainLinkOK(v)
		}
	}
	if !c.done[v] {
		w.e = !c.headPtrOK(v)
	}
	return w
}

// witApply adds (dir=+1) or retracts (dir=−1) a contribution.
func (c *Circulator) witApply(w witContrib, dir int) {
	if w.dead {
		return
	}
	if w.orphan {
		if w.loud {
			c.wit.orphanLoud += dir
		}
		return
	}
	key := witKey{comp: w.comp, seq: w.seq}
	k := c.wit.tab[key]
	k.cnt += dir
	if w.a {
		k.a += dir
	}
	if w.b {
		k.b += dir
	}
	if w.d {
		k.d += dir
	}
	if w.e {
		k.e += dir
	}
	if k == (witCounters{}) {
		delete(c.wit.tab, key) // keep the table at O(live rounds), not O(history)
	} else {
		c.wit.tab[key] = k
	}
}

// WitnessReset implements program.Witness.
func (c *Circulator) WitnessReset() {
	if c.wit == nil {
		c.wit = &circWitness{}
	}
	if len(c.wit.node) < c.g.N() {
		c.wit.node = make([]witContrib, c.g.N())
	}
	if c.wit.tab == nil || len(c.wit.tab) > 0 {
		c.wit.tab = make(map[witKey]witCounters, 4)
	}
	c.wit.orphanLoud = 0
	c.wit.compVer = c.g.CompVersion()
	c.wit.rootEpoch = c.g.RootEpoch(c.root)
	c.wit.rootsVer = 0
	c.wit.compRoot = nil
	c.wit.multiRoot = 0
	if c.auth != nil {
		c.wit.rootsVer = c.auth.RootsVersion()
		c.wit.compRoot = make(map[int]graph.NodeID)
		counts := make(map[int]int)
		for v := 0; v < c.g.N(); v++ {
			id := graph.NodeID(v)
			if !c.g.Alive(id) || !c.auth.IsRoot(id) {
				continue
			}
			comp := c.g.ComponentOf(id)
			counts[comp]++
			if counts[comp] == 1 {
				c.wit.compRoot[comp] = id
			}
		}
		for comp, n := range counts {
			if n > 1 {
				delete(c.wit.compRoot, comp)
				c.wit.multiRoot++
			}
		}
	}
	for v := 0; v < c.g.N(); v++ {
		w := c.witContribOf(graph.NodeID(v))
		c.wit.node[v] = w
		c.witApply(w, 1)
	}
	c.wit.valid = true
}

// WitnessRefresh implements program.Witness.
func (c *Circulator) WitnessRefresh(v graph.NodeID) {
	if c.wit == nil || !c.wit.valid {
		return
	}
	w := c.witContribOf(v)
	if w == c.wit.node[v] {
		return
	}
	c.witApply(c.wit.node[v], -1)
	c.wit.node[v] = w
	c.witApply(w, 1)
}

// WitnessLegitimate implements program.Witness, deciding Legitimate()
// from the counters in O(components). A merge or split relabels
// components beyond any Touched set, silently moving nodes between the
// buckets and the orphan tally, so a CompVersion mismatch forces a
// rebuild before the counters are trusted. So does a flip of the
// root's liveness — keyed on graph.RootEpoch, not Alive, so a
// die/revive pair between two queries (which leaves Alive compare-
// equal while every classification is garbage) still rebuilds — and,
// under a bound authority, any change to the effective root set
// (RootsVersion moved).
func (c *Circulator) WitnessLegitimate() bool {
	if c.wit == nil || !c.wit.valid || c.wit.compVer != c.g.CompVersion() ||
		c.wit.rootEpoch != c.g.RootEpoch(c.root) ||
		(c.auth != nil && c.wit.rootsVer != c.auth.RootsVersion()) {
		c.WitnessReset()
	}
	if c.wit.orphanLoud != 0 || c.wit.multiRoot != 0 {
		return false
	}
	if c.auth == nil {
		rootComp := c.rootComponent()
		if rootComp < 0 {
			return true // dead root: orphan silence is the whole predicate
		}
		return c.witCompLegitimate(0, c.g.ComponentSize(rootComp), c.root)
	}
	for comp, r := range c.wit.compRoot {
		if !c.witCompLegitimate(comp, c.g.ComponentSize(comp), r) {
			return false
		}
	}
	return true
}

// witCompLegitimate decides one rooted component's clauses from its
// bucket group: bucket is the table key component, pop the live
// population to account for, r the effective root.
func (c *Circulator) witCompLegitimate(bucket, pop int, r graph.NodeID) bool {
	rnd := c.seq[r]
	k := c.wit.tab[witKey{comp: bucket, seq: rnd}]
	if c.done[r] {
		return k.cnt == pop && k.a == 0
	}
	kp := c.wit.tab[witKey{comp: bucket, seq: rnd - 1}]
	return c.lev[r] == 0 &&
		k.cnt+kp.cnt == pop &&
		kp.a == 0 && k.b == 0 && k.d == 0 && k.e == 0
}

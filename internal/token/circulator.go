package token

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"netorient/internal/graph"
	"netorient/internal/program"
)

// Circulator is a self-stabilizing deterministic depth-first token
// circulation protocol on an arbitrary rooted network.
//
// Per-node state:
//
//	seq  — round counter; a node is "visited in round R" iff seq = R.
//	       Counters are monotone per node; only the root mints new
//	       (strictly larger) values, every other move copies them.
//	ptr  — port of the child currently being explored, -1 if none.
//	par  — ancestor pointer A_p (None at the root / when unset).
//	lev  — DFS depth of the node in the current round, capped at n;
//	       level consistency (lev_child = lev_parent+1) makes stale
//	       pointer cycles locally detectable.
//	done — the node's subtree is completely explored this round.
//
// In a legitimate round R = seq_root, the visited nodes form the DFS
// prefix tree of the traversal, exactly one of the following holds —
// the head of the pointer chain can advance, an in-flight arrow can be
// consumed by a Forward move, or (between rounds) the root can start —
// and every node is visited exactly once per round in port order.
//
// Stabilization: seq values never decrease; a Forward with round value
// s strictly shrinks {v : seq_v < s}, so each stale value supports
// finitely many moves; CatchUp spreads a decreasing gradient from any
// region whose counters exceed the root's, letting the root overtake
// the largest stale value within a diameter's worth of rounds; Break
// retracts pointers whose level equation fails, which destroys every
// corrupt pointer cycle (levels cannot increase by one around a
// cycle). Once the root mints a value larger than every stale counter,
// that round traverses the whole network and erases all corruption.
// Convergence and closure are additionally machine-verified
// exhaustively on small graphs (package check) and statistically on
// random graphs.
type Circulator struct {
	g    *graph.Graph
	root graph.NodeID
	ev   Events
	auth program.RootAuthority // nil ⇒ the fixed root is the only root

	seq  []uint64
	ptr  []int
	par  []graph.NodeID
	lev  []int
	done []bool

	// chainStamp/chainEpoch implement the on-chain set of Legitimate
	// without per-call allocation: v is on the chain iff
	// chainStamp[v] == chainEpoch. Legitimate runs once per step in
	// RunUntilLegitimate loops, so this is hot.
	chainStamp []uint64
	chainEpoch uint64

	// wit is the incremental legitimacy witness (see witness.go);
	// lazily allocated when the runner arms it.
	wit *circWitness
}

// Action identifiers of Circulator.
const (
	// ActStart: the root begins a new round with a fresh counter.
	ActStart program.ActionID = iota
	// ActForward: a node receives the token from a pointing neighbour
	// with a larger counter (the paper's Forward(p)).
	ActForward
	// ActAdvance: a token holder extends the traversal to its next
	// unvisited neighbour in port order, or declares its subtree done
	// (the paper's Backtrack(p) is the advance triggered by a
	// finished child).
	ActAdvance
	// ActCatchUp: a node two or more rounds behind its neighbourhood
	// raises its counter to max-1, propagating large stale counters
	// toward the root without marking itself visited.
	ActCatchUp
	// ActBreak: a node retracts a pointer to a same-round neighbour
	// whose level is inconsistent — a configuration unreachable in
	// correct operation that witnesses initial corruption.
	ActBreak

	numActions
)

// Compile-time interface compliance.
var (
	_ program.Protocol      = (*Circulator)(nil)
	_ program.Legitimacy    = (*Circulator)(nil)
	_ program.Snapshotter   = (*Circulator)(nil)
	_ program.Randomizer    = (*Circulator)(nil)
	_ program.SpaceMeter    = (*Circulator)(nil)
	_ program.ActionNamer   = (*Circulator)(nil)
	_ program.Influencer    = (*Circulator)(nil)
	_ program.TopologyAware = (*Circulator)(nil)
	_ program.Rootable      = (*Circulator)(nil)
	_ Substrate             = (*Circulator)(nil)
)

// NewCirculator returns a Circulator on g rooted at root, initialised
// to the clean between-rounds configuration (all counters zero, all
// done). Use Randomize or Restore for adversarial starts.
func NewCirculator(g *graph.Graph, root graph.NodeID) (*Circulator, error) {
	if root < 0 || int(root) >= g.N() {
		return nil, fmt.Errorf("token: root %d out of range for %s", root, g)
	}
	n := g.N()
	c := &Circulator{
		g:    g,
		root: root,
		seq:  make([]uint64, n),
		ptr:  make([]int, n),
		par:  make([]graph.NodeID, n),
		lev:  make([]int, n),
		done: make([]bool, n),
	}
	for v := 0; v < n; v++ {
		c.ptr[v] = -1
		c.par[v] = graph.None
		c.done[v] = true
	}
	return c, nil
}

// Name implements program.Protocol.
func (c *Circulator) Name() string { return "dftc" }

// Graph implements program.Protocol.
func (c *Circulator) Graph() *graph.Graph { return c.g }

// Root implements Substrate.
func (c *Circulator) Root() graph.NodeID { return c.root }

// BindRootAuthority implements program.Rootable: every root comparison
// in the guards, statements and legitimacy predicates goes through
// isRoot, so binding an authority re-anchors the circulation at
// whatever nodes the authority designates. A nil authority (the
// default) keeps the fixed-root behaviour bit-exact.
func (c *Circulator) BindRootAuthority(a program.RootAuthority) { c.auth = a }

// isRoot reports whether v currently acts as a root. With no authority
// bound this is the fixed-root comparison the paper's protocol uses.
func (c *Circulator) isRoot(v graph.NodeID) bool {
	if c.auth == nil {
		return v == c.root
	}
	return c.auth.IsRoot(v)
}

// Parent implements Substrate.
func (c *Circulator) Parent(v graph.NodeID) graph.NodeID {
	if c.isRoot(v) {
		return graph.None
	}
	return c.par[v]
}

// SetObserver implements Substrate.
func (c *Circulator) SetObserver(ev Events) { c.ev = ev }

// Seq returns v's round counter (exported for tests and tracing).
func (c *Circulator) Seq(v graph.NodeID) uint64 { return c.seq[v] }

// Done reports whether v has finished its subtree this round.
func (c *Circulator) Done(v graph.NodeID) bool { return c.done[v] }

// Round returns the root's current round counter.
func (c *Circulator) Round() uint64 { return c.seq[c.root] }

// maxNbrSeq returns the largest counter among v's neighbours.
func (c *Circulator) maxNbrSeq(v graph.NodeID) uint64 {
	var m uint64
	for _, q := range c.g.Neighbors(v) {
		if q != graph.None && c.seq[q] > m {
			m = c.seq[q]
		}
	}
	return m
}

// ptrTarget returns the node v's pointer designates, or None. A
// pointer aimed outside the port space or at a hole (a port whose
// edge a topology delta removed) reads as retracted; TopologyChanged
// clamps such pointers, and the guards below tolerate them in between.
func (c *Circulator) ptrTarget(v graph.NodeID) graph.NodeID {
	if c.ptr[v] < 0 || c.ptr[v] >= c.g.Ports(v) {
		return graph.None
	}
	return c.g.Neighbor(v, c.ptr[v])
}

// arrowSource returns the neighbour v should accept the token from:
// among neighbours q with ptr_q → v, ¬done_q and seq_q > seq_v, the
// one with the largest counter (ties broken by v's port order), or
// None if no such neighbour exists.
func (c *Circulator) arrowSource(v graph.NodeID) graph.NodeID {
	best := graph.None
	var bestSeq uint64
	for _, q := range c.g.Neighbors(v) {
		if q == graph.None || c.done[q] || c.seq[q] <= c.seq[v] {
			continue
		}
		if c.ptrTarget(q) != v {
			continue
		}
		if best == graph.None || c.seq[q] > bestSeq {
			best, bestSeq = q, c.seq[q]
		}
	}
	return best
}

// finishedChild returns the child v's pointer designates if that child
// has completed its subtree this round, else None.
func (c *Circulator) finishedChild(v graph.NodeID) graph.NodeID {
	q := c.ptrTarget(v)
	if q != graph.None && c.seq[q] == c.seq[v] && c.done[q] {
		return q
	}
	return graph.None
}

// advanceReady reports whether the advance guard holds at v: the node
// holds the token and either has not pointed anywhere yet, or its
// pointed-at child has finished this round, or the child has deserted
// to a newer round (a corruption-only situation — in correct operation
// a child's counter never exceeds its parent's — that would otherwise
// deadlock the chain).
func (c *Circulator) advanceReady(v graph.NodeID) bool {
	if c.done[v] {
		return false
	}
	if c.ptr[v] < 0 {
		return true
	}
	q := c.ptrTarget(v)
	if q == graph.None {
		// Pointer at a hole: the designated edge is gone, which can
		// only result from a topology fault. Advancing rewrites the
		// pointer, so treat it like a retracted one.
		return true
	}
	return (c.seq[q] == c.seq[v] && c.done[q]) || c.seq[q] > c.seq[v]
}

// breakReady reports whether v points at a same-round, unfinished
// neighbour with an inconsistent level.
func (c *Circulator) breakReady(v graph.NodeID) bool {
	if c.done[v] || c.ptr[v] < 0 {
		return false
	}
	q := c.ptrTarget(v)
	if q == graph.None || c.seq[q] != c.seq[v] || c.done[q] {
		return false
	}
	return c.lev[q] != c.levPlusOne(v)
}

// levPlusOne returns v's level plus one, capped at n.
func (c *Circulator) levPlusOne(v graph.NodeID) int {
	if c.lev[v] >= c.g.N() {
		return c.g.N()
	}
	return c.lev[v] + 1
}

// catchUpReady reports whether the CatchUp guard holds at v.
func (c *Circulator) catchUpReady(v graph.NodeID) bool {
	m := c.maxNbrSeq(v)
	if c.isRoot(v) {
		return m > c.seq[v]
	}
	return m >= 2 && m-1 > c.seq[v] // gap of two or more rounds
}

// Enabled implements program.Protocol.
func (c *Circulator) Enabled(v graph.NodeID, buf []program.ActionID) []program.ActionID {
	if c.isRoot(v) {
		if c.done[v] {
			buf = append(buf, ActStart)
		}
	} else if c.arrowSource(v) != graph.None {
		buf = append(buf, ActForward)
	}
	if c.advanceReady(v) {
		buf = append(buf, ActAdvance)
	}
	if c.catchUpReady(v) {
		buf = append(buf, ActCatchUp)
	}
	if c.breakReady(v) {
		buf = append(buf, ActBreak)
	}
	return buf
}

// Execute implements program.Protocol.
func (c *Circulator) Execute(v graph.NodeID, a program.ActionID) bool {
	switch a {
	case ActStart:
		if !c.isRoot(v) || !c.done[v] {
			return false
		}
		next := c.seq[v]
		if m := c.maxNbrSeq(v); m > next {
			next = m
		}
		c.seq[v] = next + 1
		c.done[v] = false
		c.ptr[v] = -1
		c.lev[v] = 0
		c.par[v] = graph.None // the root has no ancestor; clear stale junk
		if c.ev != nil {
			c.ev.OnRootStart(v)
		}
		return true

	case ActForward:
		q := c.arrowSource(v)
		if c.isRoot(v) || q == graph.None {
			return false
		}
		c.par[v] = q
		c.seq[v] = c.seq[q]
		c.lev[v] = c.levPlusOne(q)
		c.done[v] = false
		c.ptr[v] = -1
		if c.ev != nil {
			c.ev.OnForward(v, q)
		}
		return true

	case ActAdvance:
		if !c.advanceReady(v) {
			return false
		}
		if child := c.finishedChild(v); child != graph.None {
			if c.ev != nil {
				c.ev.OnBacktrack(v, child)
			}
		}
		for port, q := range c.g.Neighbors(v) {
			if q != graph.None && c.seq[q] < c.seq[v] {
				c.ptr[v] = port
				return true
			}
		}
		c.ptr[v] = -1
		c.done[v] = true
		return true

	case ActCatchUp:
		if !c.catchUpReady(v) {
			return false
		}
		m := c.maxNbrSeq(v)
		if c.isRoot(v) {
			c.seq[v] = m
		} else {
			c.seq[v] = m - 1
		}
		c.done[v] = true
		c.ptr[v] = -1
		return true

	case ActBreak:
		if !c.breakReady(v) {
			return false
		}
		c.ptr[v] = -1
		return true
	}
	return false
}

// Influence implements program.Influencer, documenting the locality
// audit: every statement (Start, Forward, Advance, CatchUp, Break)
// writes only v's own variables (seq, ptr, par, lev, done), and every
// guard reads only the evaluating node's variables and its
// neighbours' (arrowSource, maxNbrSeq, finishedChild and the level
// equation all iterate Neighbors once) — so a move at v can change
// guards in v's closed 1-hop neighbourhood only, the scheduler's
// default, declared here explicitly. HasToken, which the DFTNO layer
// folds into its guards, reads the same 1-hop ball.
func (c *Circulator) Influence(v graph.NodeID, _ program.ActionID, buf []graph.NodeID) []graph.NodeID {
	return program.InfluenceClosedNeighborhood(c.g, v, buf)
}

// TopologyChanged implements program.TopologyAware. Per-node state has
// no port-indexed arrays (ptr is a single port), so rebinding is pure
// clamping: pointers into removed ports retract, parents that are no
// longer neighbours clear, levels re-cap. The resulting configuration
// is arbitrary-but-in-bounds, which self-stabilization absorbs. The
// influence ball is the closed 1-hop neighbourhood of the touched set:
// guards read one hop (the same audit as Influence), and the clamps
// only write variables of touched nodes.
func (c *Circulator) TopologyChanged(d graph.Delta, buf []graph.NodeID) []graph.NodeID {
	if n := c.g.N(); len(c.seq) < n {
		c.seq = append(c.seq, make([]uint64, n-len(c.seq))...)
		for len(c.ptr) < n {
			c.ptr = append(c.ptr, -1)
			c.par = append(c.par, graph.None)
			c.lev = append(c.lev, 0)
			c.done = append(c.done, true)
		}
		c.chainStamp = nil
		if c.wit != nil {
			c.wit.valid = false // node array too small; lazily re-arm
		}
	}
	for _, v := range d.Touched {
		if c.ptr[v] >= c.g.Ports(v) || (c.ptr[v] >= 0 && c.g.Neighbor(v, c.ptr[v]) == graph.None) {
			c.ptr[v] = -1
		}
		if c.par[v] != graph.None && !c.g.HasEdge(v, c.par[v]) {
			c.par[v] = graph.None
		}
		if c.lev[v] > c.g.N() {
			c.lev[v] = c.g.N()
		}
	}
	for _, v := range d.Touched {
		buf = program.InfluenceClosedNeighborhood(c.g, v, buf)
	}
	return buf
}

// Finished implements Substrate: done_v.
func (c *Circulator) Finished(v graph.NodeID) bool { return c.done[v] }

// Pointing implements Substrate: the neighbour v's pointer designates.
func (c *Circulator) Pointing(v graph.NodeID) graph.NodeID { return c.ptrTarget(v) }

// SameRound implements Substrate: seq_u = seq_v.
func (c *Circulator) SameRound(u, v graph.NodeID) bool { return c.seq[u] == c.seq[v] }

// Behind implements Substrate: seq_u < seq_v.
func (c *Circulator) Behind(u, v graph.NodeID) bool { return c.seq[u] < c.seq[v] }

// HasToken implements Substrate: v holds the token iff a token-moving
// action (Start, Forward or Advance) is enabled at v.
func (c *Circulator) HasToken(v graph.NodeID) bool {
	if c.isRoot(v) {
		if c.done[v] {
			return true
		}
	} else if c.arrowSource(v) != graph.None {
		return true
	}
	return c.advanceReady(v)
}

// ActionName implements program.ActionNamer.
func (c *Circulator) ActionName(a program.ActionID) string {
	switch a {
	case ActStart:
		return "Start"
	case ActForward:
		return "Forward"
	case ActAdvance:
		return "Advance"
	case ActCatchUp:
		return "CatchUp"
	case ActBreak:
		return "Break"
	}
	return "?"
}

// orphanSilent reports whether no action is enabled at v — the
// legitimacy condition for nodes in a component that lost the root.
// Such components provably quiesce (Σseq is monotone and bounded by
// the component maximum, and between counter changes Advance and
// Break each fire at most once per node), but the terminal
// configuration is whatever junk the partition froze — so orphan
// legitimacy is silence, not a shape predicate. It reads the same
// 1-hop ball as Enabled, through the guard helpers directly, keeping
// instrumented Enabled-call counts unchanged on connected graphs.
func (c *Circulator) orphanSilent(v graph.NodeID) bool {
	if c.isRoot(v) {
		if c.done[v] {
			return false // Start is enabled
		}
	} else if c.arrowSource(v) != graph.None {
		return false
	}
	return !c.advanceReady(v) && !c.catchUpReady(v) && !c.breakReady(v)
}

// rootComponent returns the component label of the root, or -1 when
// the root is dead (every live node is then an orphan).
func (c *Circulator) rootComponent() int {
	if !c.g.Alive(c.root) {
		return -1
	}
	return c.g.ComponentOf(c.root)
}

// Legitimate implements program.Legitimacy, decided per component: the
// root's component must be in a configuration reachable in ideal
// operation — either the between-rounds configuration (everyone done
// with the root's counter) or a mid-round configuration whose visited
// set is a DFS prefix: a pointer chain of unfinished nodes from the
// root with consistent levels and parents, every other visited node
// finished, every unvisited node one round behind and finished, and at
// most one in-flight arrow at the chain's head. Every node in a
// component without the root must be silent (see orphanSilent); a dead
// root makes every live node an orphan. Closure holds because the
// guards read one hop: silence in an orphan component is stable until
// a topology delta reconnects it, and the root's component cannot
// enable an orphan.
//
// With a RootAuthority bound the predicate generalises per component:
// every component owning exactly one effective root must satisfy the
// classic predicate anchored at that root, components owning none must
// be silent, and a component owning several (a transient right after a
// heal merges two acting roots) is illegitimate outright.
func (c *Circulator) Legitimate() bool {
	if c.auth != nil {
		return c.legitimateMulti()
	}
	r := c.root
	rnd := c.seq[r]
	rootComp := c.rootComponent()
	if rootComp < 0 || c.done[r] {
		for v := 0; v < c.g.N(); v++ {
			id := graph.NodeID(v)
			if !c.g.Alive(id) {
				continue
			}
			if c.g.ComponentOf(id) != rootComp {
				if !c.orphanSilent(id) {
					return false
				}
				continue
			}
			if c.seq[v] != rnd || !c.done[v] || c.ptr[v] != -1 {
				return false
			}
		}
		return true
	}
	// Mid-round: walk the pointer chain from the root. The chain stays
	// inside the root's component (pointers designate neighbours).
	if c.chainStamp == nil {
		c.chainStamp = make([]uint64, c.g.N())
	}
	c.chainEpoch++
	onChain := c.chainStamp
	v := r
	if c.lev[r] != 0 {
		return false
	}
	for {
		if c.done[v] || c.seq[v] != rnd || onChain[v] == c.chainEpoch {
			return false
		}
		onChain[v] = c.chainEpoch
		q := c.ptrTarget(v)
		if q == graph.None {
			break // head, freshly visited
		}
		switch {
		case c.seq[q] == rnd && !c.done[q]:
			// Chain continues; check the tree equations.
			if c.par[q] != v || c.lev[q] != c.lev[v]+1 {
				return false
			}
			v = q
		case c.seq[q] == rnd && c.done[q]:
			// Head awaiting an advance past a finished child.
			return c.checkOffChain(onChain, rnd, rootComp)
		case c.seq[q]+1 == rnd && c.done[q]:
			// Head with an in-flight arrow to an unvisited node.
			return c.checkOffChain(onChain, rnd, rootComp)
		default:
			return false
		}
	}
	return c.checkOffChain(onChain, rnd, rootComp)
}

// checkOffChain verifies every node not on the pointer chain. In the
// root's component: visited nodes are finished with retracted pointers
// and valid parents; unvisited nodes are exactly one round behind and
// finished. In every other component: silence.
func (c *Circulator) checkOffChain(onChain []uint64, rnd uint64, rootComp int) bool {
	for v := 0; v < c.g.N(); v++ {
		if onChain[v] == c.chainEpoch || !c.g.Alive(graph.NodeID(v)) {
			continue
		}
		id := graph.NodeID(v)
		if c.g.ComponentOf(id) != rootComp {
			if !c.orphanSilent(id) {
				return false
			}
			continue
		}
		switch {
		case c.seq[v] == rnd:
			if !c.done[v] || c.ptr[v] != -1 {
				return false
			}
			p := c.par[v]
			if id == c.root || p == graph.None || !c.g.HasEdge(id, p) || c.seq[p] != rnd || c.lev[v] != c.lev[p]+1 {
				return false
			}
		case c.seq[v]+1 == rnd:
			if !c.done[v] || c.ptr[v] != -1 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// legitimateMulti is Legitimate under a bound RootAuthority: each
// component is checked against its own effective root. The chain walks
// of distinct components mark the same stamp epoch — chains cannot
// cross component boundaries, so the marks never collide.
func (c *Circulator) legitimateMulti() bool {
	g := c.g
	roots := make(map[int]graph.NodeID)
	for v := 0; v < g.N(); v++ {
		id := graph.NodeID(v)
		if !g.Alive(id) || !c.auth.IsRoot(id) {
			continue
		}
		comp := g.ComponentOf(id)
		if _, dup := roots[comp]; dup {
			return false // two acting roots in one component
		}
		roots[comp] = id
	}
	if c.chainStamp == nil {
		c.chainStamp = make([]uint64, g.N())
	}
	c.chainEpoch++
	onChain := c.chainStamp
	for _, r := range roots {
		if c.done[r] {
			continue // between rounds: no chain to walk
		}
		if c.lev[r] != 0 {
			return false
		}
		rnd := c.seq[r]
		v := r
	walk:
		for {
			if c.done[v] || c.seq[v] != rnd || onChain[v] == c.chainEpoch {
				return false
			}
			onChain[v] = c.chainEpoch
			q := c.ptrTarget(v)
			if q == graph.None {
				break // head, freshly visited
			}
			switch {
			case c.seq[q] == rnd && !c.done[q]:
				if c.par[q] != v || c.lev[q] != c.lev[v]+1 {
					return false
				}
				v = q
			case c.seq[q] == rnd && c.done[q]:
				break walk // head awaiting an advance past a finished child
			case c.seq[q]+1 == rnd && c.done[q]:
				break walk // head with an in-flight arrow
			default:
				return false
			}
		}
	}
	for v := 0; v < g.N(); v++ {
		id := graph.NodeID(v)
		if !g.Alive(id) || onChain[v] == c.chainEpoch {
			continue
		}
		r, ok := roots[g.ComponentOf(id)]
		if !ok {
			if !c.orphanSilent(id) {
				return false
			}
			continue
		}
		rnd := c.seq[r]
		if c.done[r] {
			// Between rounds: everyone finished at the root's counter.
			if c.seq[v] != rnd || !c.done[v] || c.ptr[v] != -1 {
				return false
			}
			continue
		}
		switch {
		case c.seq[v] == rnd:
			if !c.done[v] || c.ptr[v] != -1 {
				return false
			}
			p := c.par[v]
			if c.isRoot(id) || p == graph.None || !g.HasEdge(id, p) || c.seq[p] != rnd || c.lev[v] != c.lev[p]+1 {
				return false
			}
		case c.seq[v]+1 == rnd:
			if !c.done[v] || c.ptr[v] != -1 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Snapshot implements program.Snapshotter. Snapshots are canonical
// modulo a global counter shift: all guards and statements depend only
// on counter differences, so subtracting the minimum counter yields an
// exact bisimulation quotient — this keeps the model checker's state
// space finite.
func (c *Circulator) Snapshot() []byte {
	n := c.g.N()
	min := c.seq[0]
	for _, s := range c.seq[1:] {
		if s < min {
			min = s
		}
	}
	buf := make([]byte, 0, n*20)
	var tmp [8]byte
	for v := 0; v < n; v++ {
		binary.LittleEndian.PutUint64(tmp[:], c.seq[v]-min)
		buf = append(buf, tmp[:]...)
		binary.LittleEndian.PutUint32(tmp[:4], uint32(int32(c.ptr[v])))
		buf = append(buf, tmp[:4]...)
		binary.LittleEndian.PutUint32(tmp[:4], uint32(int32(c.par[v])))
		buf = append(buf, tmp[:4]...)
		binary.LittleEndian.PutUint32(tmp[:4], uint32(int32(c.lev[v])))
		buf = append(buf, tmp[:4]...)
		if c.done[v] {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	return buf
}

// Restore implements program.Snapshotter.
func (c *Circulator) Restore(data []byte) error {
	n := c.g.N()
	if len(data) != n*21 {
		return fmt.Errorf("token: snapshot length %d, want %d", len(data), n*21)
	}
	off := 0
	for v := 0; v < n; v++ {
		c.seq[v] = binary.LittleEndian.Uint64(data[off:])
		off += 8
		c.ptr[v] = int(int32(binary.LittleEndian.Uint32(data[off:])))
		off += 4
		c.par[v] = graph.NodeID(int32(binary.LittleEndian.Uint32(data[off:])))
		off += 4
		c.lev[v] = int(int32(binary.LittleEndian.Uint32(data[off:])))
		off += 4
		c.done[v] = data[off] == 1
		off++
		if c.ptr[v] < -1 || c.ptr[v] >= c.g.Ports(graph.NodeID(v)) ||
			(c.ptr[v] >= 0 && c.g.Neighbor(graph.NodeID(v), c.ptr[v]) == graph.None) {
			c.ptr[v] = -1
		}
		if c.lev[v] < 0 {
			c.lev[v] = 0
		}
		if c.lev[v] > n {
			c.lev[v] = n
		}
		if c.par[v] != graph.None && !c.g.HasEdge(graph.NodeID(v), c.par[v]) {
			c.par[v] = graph.None
		}
	}
	return nil
}

// CorruptNode implements program.NodeCorruptor: v's variables take
// arbitrary values of their domains.
func (c *Circulator) CorruptNode(v graph.NodeID, rng *rand.Rand) {
	n := c.g.N()
	c.seq[v] = uint64(rng.Intn(2*n + 1))
	// Port-index draws range over the port space (identical to the
	// pre-churn degree on hole-free graphs, keeping seeded streams
	// stable); draws landing on a hole clamp without extra draws.
	c.ptr[v] = rng.Intn(c.g.Ports(v)+1) - 1
	if c.ptr[v] >= 0 && c.g.Neighbor(v, c.ptr[v]) == graph.None {
		c.ptr[v] = -1
	}
	c.lev[v] = rng.Intn(n + 1)
	c.done[v] = rng.Intn(2) == 0
	if rng.Intn(2) == 0 || c.g.Ports(v) == 0 {
		c.par[v] = graph.None
	} else {
		c.par[v] = c.g.Neighbor(v, rng.Intn(c.g.Ports(v)))
	}
}

// Randomize implements program.Randomizer: every variable takes an
// arbitrary value of its domain.
func (c *Circulator) Randomize(rng *rand.Rand) {
	for v := 0; v < c.g.N(); v++ {
		c.CorruptNode(graph.NodeID(v), rng)
	}
}

// StateBits implements program.SpaceMeter. The implementation carries
// a 64-bit counter where the original substrate uses O(log N) bits;
// ptr and par cost ⌈log₂(Δ_v+1)⌉ and the level ⌈log₂(N+1)⌉.
func (c *Circulator) StateBits(v graph.NodeID) int {
	d := c.g.Degree(v)
	return 64 + // seq
		program.Log2Ceil(d+2) + // ptr (port or -1)
		program.Log2Ceil(d+2) + // par (neighbour or none)
		program.Log2Ceil(c.g.N()+1) + // lev
		1 // done
}

package token

import (
	"math/rand"
	"testing"

	"netorient/internal/daemon"
	"netorient/internal/graph"
	"netorient/internal/program"
)

// testGraphs returns the small topologies used throughout the
// substrate tests.
func testGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	return map[string]*graph.Graph{
		"path4":    graph.Path(4),
		"ring5":    graph.Ring(5),
		"star5":    graph.Star(5),
		"clique4":  graph.Complete(4),
		"paper":    graph.PaperTokenExample(),
		"tree7":    graph.KAryTree(7, 2),
		"grid3x3":  graph.Grid(3, 3),
		"lollipop": graph.Lollipop(4, 3),
	}
}

// visitRecorder tracks forward events per round.
type visitRecorder struct {
	rounds  int
	current []graph.NodeID
	all     [][]graph.NodeID
	parents map[graph.NodeID]graph.NodeID
}

func newVisitRecorder() *visitRecorder {
	return &visitRecorder{parents: make(map[graph.NodeID]graph.NodeID)}
}

func (r *visitRecorder) OnRootStart(root graph.NodeID) {
	if r.current != nil {
		r.all = append(r.all, r.current)
	}
	r.rounds++
	r.current = []graph.NodeID{root}
}

func (r *visitRecorder) OnForward(v, parent graph.NodeID) {
	r.current = append(r.current, v)
	r.parents[v] = parent
}

func (r *visitRecorder) OnBacktrack(v, child graph.NodeID) {}

func TestCirculatorCleanRoundVisitsAllInDFSOrder(t *testing.T) {
	for name, g := range testGraphs(t) {
		t.Run(name, func(t *testing.T) {
			c, err := NewCirculator(g, 0)
			if err != nil {
				t.Fatal(err)
			}
			rec := newVisitRecorder()
			c.SetObserver(rec)
			sys := program.NewSystem(c, daemon.NewDeterministic())
			// Run three full rounds.
			for rec.rounds < 4 {
				if _, err := sys.Step(); err != nil {
					t.Fatal(err)
				}
				if sys.Steps() > int64(100*(g.N()+g.M())) {
					t.Fatalf("no progress after %d steps (rounds=%d)", sys.Steps(), rec.rounds)
				}
			}
			wantOrder, wantParent := graph.DFSPreorder(g, 0)
			for roundIdx, visits := range rec.all {
				if len(visits) != g.N() {
					t.Fatalf("round %d visited %d nodes, want %d: %v", roundIdx, len(visits), g.N(), visits)
				}
				for i, v := range visits {
					if v != wantOrder[i] {
						t.Fatalf("round %d visit order %v, want %v", roundIdx, visits, wantOrder)
					}
				}
			}
			for v, p := range rec.parents {
				if wantParent[v] != p {
					t.Errorf("node %d has parent %d, want %d", v, p, wantParent[v])
				}
			}
		})
	}
}

func TestCirculatorLegitimateInitially(t *testing.T) {
	g := graph.Ring(5)
	c, err := NewCirculator(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Legitimate() {
		t.Fatal("freshly constructed circulator is not legitimate")
	}
}

func TestCirculatorLegitimacyClosedAlongCleanRun(t *testing.T) {
	for name, g := range testGraphs(t) {
		t.Run(name, func(t *testing.T) {
			c, err := NewCirculator(g, 0)
			if err != nil {
				t.Fatal(err)
			}
			sys := program.NewSystem(c, daemon.NewDeterministic())
			for i := 0; i < 20*(g.N()+g.M()); i++ {
				if !c.Legitimate() {
					t.Fatalf("illegitimate configuration after %d clean steps", i)
				}
				if _, err := sys.Step(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

func TestCirculatorExactlyOneEnabledWhenLegitimate(t *testing.T) {
	g := graph.PaperTokenExample()
	c, err := NewCirculator(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	sys := program.NewSystem(c, daemon.NewDeterministic())
	var buf []program.ActionID
	for i := 0; i < 200; i++ {
		total := 0
		for v := 0; v < g.N(); v++ {
			buf = c.Enabled(graph.NodeID(v), buf[:0])
			total += len(buf)
		}
		if total != 1 {
			t.Fatalf("step %d: %d enabled moves in legitimate configuration, want 1", i, total)
		}
		if _, err := sys.Step(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCirculatorConvergesFromRandomStates is the statistical half of
// the self-stabilization verification: from arbitrary configurations
// under randomized daemons, the system reaches a legitimate
// configuration.
func TestCirculatorConvergesFromRandomStates(t *testing.T) {
	daemons := map[string]func(seed int64) program.Daemon{
		"central":     func(s int64) program.Daemon { return daemon.NewCentral(s) },
		"distributed": func(s int64) program.Daemon { return daemon.NewDistributed(s, 0.5) },
		"synchronous": func(s int64) program.Daemon { return daemon.NewSynchronous(s) },
	}
	for name, g := range testGraphs(t) {
		for dname, mk := range daemons {
			t.Run(name+"/"+dname, func(t *testing.T) {
				c, err := NewCirculator(g, 0)
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(42))
				for trial := 0; trial < 25; trial++ {
					c.Randomize(rng)
					sys := program.NewSystem(c, mk(int64(trial)))
					res, err := sys.RunUntilLegitimate(int64(2000 * (g.N() + g.M())))
					if err != nil {
						t.Fatal(err)
					}
					if !res.Converged {
						t.Fatalf("trial %d: no convergence after %d moves", trial, res.Moves)
					}
				}
			})
		}
	}
}

// TestCirculatorKeepsCirculatingAfterConvergence checks liveness: the
// token keeps completing rounds forever (fairness property of §3.1).
func TestCirculatorKeepsCirculatingAfterConvergence(t *testing.T) {
	g := graph.Grid(3, 3)
	c, err := NewCirculator(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	c.Randomize(rng)
	sys := program.NewSystem(c, daemon.NewCentral(7))
	if res, err := sys.RunUntilLegitimate(200000); err != nil || !res.Converged {
		t.Fatalf("convergence failed: %v %+v", err, res)
	}
	startRound := c.Round()
	for i := 0; i < 20000 && c.Round() < startRound+5; i++ {
		if _, err := sys.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if c.Round() < startRound+5 {
		t.Fatalf("token stopped circulating: round %d after start %d", c.Round(), startRound)
	}
}

func TestCirculatorSnapshotRoundTrip(t *testing.T) {
	g := graph.Ring(6)
	c, err := NewCirculator(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		c.Randomize(rng)
		snap := c.Snapshot()
		// Mutate, then restore.
		c.Randomize(rng)
		if err := c.Restore(snap); err != nil {
			t.Fatal(err)
		}
		if got := string(c.Snapshot()); got != string(snap) {
			t.Fatalf("snapshot round-trip mismatch at trial %d", i)
		}
	}
}

func TestCirculatorSnapshotShiftInvariant(t *testing.T) {
	g := graph.Path(3)
	a, err := NewCirculator(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewCirculator(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Steady-state between-rounds configurations of different rounds
	// must snapshot identically: the counters differ by a global
	// shift, which normalization removes. (The freshly constructed
	// state is not on the steady cycle — parents and levels are still
	// unset — so we compare round 2 against round 4.)
	betweenRounds := func(c *Circulator, round uint64) string {
		sys := program.NewSystem(c, daemon.NewDeterministic())
		for c.Round() < round || !c.Done(0) {
			if _, err := sys.Step(); err != nil {
				t.Fatal(err)
			}
		}
		return string(c.Snapshot())
	}
	snapA := betweenRounds(a, 2)
	snapB := betweenRounds(b, 4)
	if snapA != snapB {
		t.Fatal("between-round snapshots differ across rounds; shift normalization broken")
	}
}

func TestCirculatorRejectsBadConstruction(t *testing.T) {
	g := graph.Ring(4)
	if _, err := NewCirculator(g, 99); err == nil {
		t.Error("expected error for out-of-range root")
	}
	// Disconnected graphs are accepted: the clean initial state is
	// between-rounds in the root's component and silent in the orphan
	// one, so it is legitimate per component from the start.
	b := graph.NewBuilder(4)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(2, 3)
	c, err := NewCirculator(b.Build(), 0)
	if err != nil {
		t.Fatalf("disconnected graph rejected: %v", err)
	}
	if !c.Legitimate() {
		t.Error("fresh disconnected circulator not legitimate per component")
	}
}

func TestCirculatorHasTokenUniqueWhenLegitimate(t *testing.T) {
	g := graph.KAryTree(7, 2)
	c, err := NewCirculator(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	sys := program.NewSystem(c, daemon.NewDeterministic())
	for i := 0; i < 300; i++ {
		holders := 0
		for v := 0; v < g.N(); v++ {
			if c.HasToken(graph.NodeID(v)) {
				holders++
			}
		}
		if holders != 1 {
			t.Fatalf("step %d: %d token holders, want exactly 1", i, holders)
		}
		if _, err := sys.Step(); err != nil {
			t.Fatal(err)
		}
	}
}

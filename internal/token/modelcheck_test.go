package token

import (
	"math/rand"
	"testing"

	"netorient/internal/check"
	"netorient/internal/graph"
)

// TestCirculatorModelCheck machine-verifies self-stabilization of the
// token circulation on small graphs: from a seed set of randomized and
// clean configurations, the entire reachable configuration space is
// explored under the central daemon and checked for convergence (no
// illegitimate cycle, no illegitimate terminal configuration) and
// closure (legitimate configurations only reach legitimate ones).
func TestCirculatorModelCheck(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"path3":    graph.Path(3),
		"triangle": graph.Complete(3),
		"path4":    graph.Path(4),
		"star4":    graph.Star(4),
		"ring4":    graph.Ring(4),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			c, err := NewCirculator(g, 0)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(1))
			seeds, err := check.RandomSeeds(c, 120, rng)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := check.Verify(c, check.Options{Seeds: seeds, MaxStates: 2_000_000})
			if err != nil {
				t.Fatalf("self-stabilization violated: %v", err)
			}
			if rep.LegitStates == 0 {
				t.Fatal("no legitimate configuration reachable")
			}
			t.Logf("%s: %d states (%d legitimate), %d transitions, worst distance to legitimacy %d",
				name, rep.States, rep.LegitStates, rep.Transitions, rep.MaxStepsToLegit)
		})
	}
}

// TestCirculatorModelCheckRing5 is a slightly larger instance, kept
// separate so -short runs stay fast.
func TestCirculatorModelCheckRing5(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping large model check in -short mode")
	}
	g := graph.Ring(5)
	c, err := NewCirculator(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	seeds, err := check.RandomSeeds(c, 40, rng)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := check.Verify(c, check.Options{Seeds: seeds, MaxStates: 4_000_000})
	if err != nil {
		t.Fatalf("self-stabilization violated: %v", err)
	}
	t.Logf("ring5: %d states (%d legitimate), worst distance %d", rep.States, rep.LegitStates, rep.MaxStepsToLegit)
}

package token

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"netorient/internal/graph"
	"netorient/internal/program"
)

// eventKind discriminates Oracle trace entries.
type eventKind uint8

const (
	evRootStart eventKind = iota + 1
	evForward
	evBacktrack
)

// oracleEvent is one token movement in the ideal circulation.
type oracleEvent struct {
	kind  eventKind
	actor graph.NodeID // the processor executing the move
	other graph.NodeID // parent (forward) or child (backtrack)
}

// Oracle is a correct-by-construction token circulation layer: it
// replays the ideal deterministic DFS circulation of the graph,
// exposing exactly one enabled processor at a time. It is not
// self-stabilizing (its single position variable is its whole state);
// it exists so the orientation layer can be unit-tested against a
// substrate that is legitimate by definition, matching the paper's
// layered correctness argument.
type Oracle struct {
	g      *graph.Graph
	root   graph.NodeID
	ev     Events
	events []oracleEvent
	parent []graph.NodeID
	pos    int

	// Live traversal status, maintained in O(1) per executed event so
	// the Substrate introspection queries (Finished, Pointing,
	// SameRound, Behind) answer without replaying the trace. The
	// status mirrors the circulator's post-advance configurations:
	// a node starts exploring its first DFS child the moment it is
	// visited, moves to the next child when the token backtracks, and
	// finishes when its children are exhausted.
	children [][]graph.NodeID // DFS-tree children in port order
	round    uint64           // increments at every RootStart
	vround   []uint64         // round in which v was last visited
	done     []bool           // v's subtree fully explored this round
	childIdx []int            // index into children[v] of the child being explored
}

// Compile-time interface compliance.
var (
	_ program.Protocol    = (*Oracle)(nil)
	_ program.Legitimacy  = (*Oracle)(nil)
	_ program.Snapshotter = (*Oracle)(nil)
	_ program.Randomizer  = (*Oracle)(nil)
	_ program.SpaceMeter  = (*Oracle)(nil)
	_ program.Influencer  = (*Oracle)(nil)
	_ Substrate           = (*Oracle)(nil)
)

// NewOracle returns an Oracle for g rooted at root, positioned at the
// start of a round.
func NewOracle(g *graph.Graph, root graph.NodeID) (*Oracle, error) {
	if root < 0 || int(root) >= g.N() {
		return nil, fmt.Errorf("token: root %d out of range for %s", root, g)
	}
	if !g.Connected() {
		return nil, graph.ErrNotConnected
	}
	o := &Oracle{g: g, root: root}
	o.build()
	return o, nil
}

// build precomputes one round's event trace by recursive DFS in port
// order, and initialises the live status to the between-rounds
// configuration (everyone finished, positioned before the RootStart).
func (o *Oracle) build() {
	n := o.g.N()
	o.parent = make([]graph.NodeID, n)
	o.children = make([][]graph.NodeID, n)
	visited := make([]bool, n)
	for i := range o.parent {
		o.parent[i] = graph.None
	}
	o.events = append(o.events[:0], oracleEvent{kind: evRootStart, actor: o.root, other: graph.None})
	var visit func(v graph.NodeID)
	visit = func(v graph.NodeID) {
		visited[v] = true
		for _, q := range o.g.Neighbors(v) {
			if visited[q] {
				continue
			}
			o.parent[q] = v
			o.children[v] = append(o.children[v], q)
			o.events = append(o.events, oracleEvent{kind: evForward, actor: q, other: v})
			visit(q)
			o.events = append(o.events, oracleEvent{kind: evBacktrack, actor: v, other: q})
		}
	}
	visit(o.root)
	o.resetStatus()
}

// resetStatus rewinds the live status to the between-rounds base.
func (o *Oracle) resetStatus() {
	n := o.g.N()
	if o.vround == nil {
		o.vround = make([]uint64, n)
		o.done = make([]bool, n)
		o.childIdx = make([]int, n)
	}
	o.round = 0
	for v := 0; v < n; v++ {
		o.vround[v] = 0
		o.done[v] = true
		o.childIdx[v] = 0
	}
}

// applyStatus folds one executed event into the live status.
func (o *Oracle) applyStatus(e oracleEvent) {
	switch e.kind {
	case evRootStart:
		o.round++
		o.visitStatus(o.root)
	case evForward:
		o.visitStatus(e.actor)
	case evBacktrack:
		o.childIdx[e.actor]++
		if o.childIdx[e.actor] == len(o.children[e.actor]) {
			o.done[e.actor] = true
		}
	}
}

// visitStatus marks v visited in the current round, exploring its
// first DFS child (or finished outright, for DFS leaves).
func (o *Oracle) visitStatus(v graph.NodeID) {
	o.vround[v] = o.round
	o.childIdx[v] = 0
	o.done[v] = len(o.children[v]) == 0
}

// rebuildStatus replays the round prefix ending at o.pos from the
// between-rounds base — O(round length), used only by Restore and
// Randomize, which reposition arbitrarily.
func (o *Oracle) rebuildStatus() {
	o.resetStatus()
	for i := 0; i < o.pos; i++ {
		o.applyStatus(o.events[i])
	}
}

// Name implements program.Protocol.
func (o *Oracle) Name() string { return "dftc-oracle" }

// Graph implements program.Protocol.
func (o *Oracle) Graph() *graph.Graph { return o.g }

// Root implements Substrate.
func (o *Oracle) Root() graph.NodeID { return o.root }

// Parent implements Substrate.
func (o *Oracle) Parent(v graph.NodeID) graph.NodeID { return o.parent[v] }

// SetObserver implements Substrate.
func (o *Oracle) SetObserver(ev Events) { o.ev = ev }

// HasToken implements Substrate.
func (o *Oracle) HasToken(v graph.NodeID) bool {
	return o.events[o.pos].actor == v
}

// Finished implements Substrate.
func (o *Oracle) Finished(v graph.NodeID) bool { return o.done[v] }

// Pointing implements Substrate: the DFS child v currently explores.
func (o *Oracle) Pointing(v graph.NodeID) graph.NodeID {
	if o.done[v] || o.vround[v] != o.round {
		return graph.None
	}
	return o.children[v][o.childIdx[v]]
}

// SameRound implements Substrate.
func (o *Oracle) SameRound(u, v graph.NodeID) bool { return o.vround[u] == o.vround[v] }

// Behind implements Substrate.
func (o *Oracle) Behind(u, v graph.NodeID) bool { return o.vround[u] < o.vround[v] }

// RoundLength returns the number of moves in one circulation round.
func (o *Oracle) RoundLength() int { return len(o.events) }

// Enabled implements program.Protocol: exactly the next event's actor
// is enabled, with the single action 0.
func (o *Oracle) Enabled(v graph.NodeID, buf []program.ActionID) []program.ActionID {
	if o.events[o.pos].actor == v {
		buf = append(buf, 0)
	}
	return buf
}

// Execute implements program.Protocol.
func (o *Oracle) Execute(v graph.NodeID, a program.ActionID) bool {
	e := o.events[o.pos]
	if a != 0 || e.actor != v {
		return false
	}
	o.pos = (o.pos + 1) % len(o.events)
	o.applyStatus(e)
	if o.ev != nil {
		switch e.kind {
		case evRootStart:
			o.ev.OnRootStart(e.actor)
		case evForward:
			o.ev.OnForward(e.actor, e.other)
		case evBacktrack:
			o.ev.OnBacktrack(e.actor, e.other)
		}
	}
	return true
}

// Influence implements program.Influencer. The Oracle's single
// position variable is global, so locality needs an argument: a move
// at v advances pos by one, disabling v and enabling the next event's
// actor. Consecutive events of a DFS traversal are always executed by
// adjacent (or identical) processors — a Forward hands the token to a
// neighbour, a Backtrack returns it from one, and the wrap-around
// RootStart follows the final Backtrack at the root itself — so the
// move's influence is exactly v's closed 1-hop neighbourhood.
func (o *Oracle) Influence(v graph.NodeID, _ program.ActionID, buf []graph.NodeID) []graph.NodeID {
	return program.InfluenceClosedNeighborhood(o.g, v, buf)
}

// Legitimate implements program.Legitimacy; the Oracle is legitimate
// by construction.
func (o *Oracle) Legitimate() bool { return true }

// Snapshot implements program.Snapshotter.
func (o *Oracle) Snapshot() []byte {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], uint32(o.pos))
	return buf[:]
}

// Restore implements program.Snapshotter.
func (o *Oracle) Restore(data []byte) error {
	if len(data) != 4 {
		return fmt.Errorf("token: oracle snapshot length %d, want 4", len(data))
	}
	pos := int(binary.LittleEndian.Uint32(data))
	if pos < 0 || pos >= len(o.events) {
		return fmt.Errorf("token: oracle position %d out of range [0,%d)", pos, len(o.events))
	}
	o.pos = pos
	o.rebuildStatus()
	return nil
}

// Randomize implements program.Randomizer: the circulation resumes
// from an arbitrary point of the round.
func (o *Oracle) Randomize(rng *rand.Rand) {
	o.pos = rng.Intn(len(o.events))
	o.rebuildStatus()
}

// StateBits implements program.SpaceMeter: the oracle's global
// position amortised per node.
func (o *Oracle) StateBits(graph.NodeID) int {
	return program.Log2Ceil(len(o.events)) / o.g.N()
}

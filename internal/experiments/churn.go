package experiments

import (
	"fmt"
	"math/rand"

	"netorient/internal/churn"
	"netorient/internal/core"
	"netorient/internal/daemon"
	"netorient/internal/graph"
	"netorient/internal/program"
	"netorient/internal/token"
	"netorient/internal/trace"
)

// churnCountingStack wraps the DFTNO stack counting guard evaluations
// and O(n) Legitimate() scans. Embedding keeps every optional contract
// the scheduler type-asserts (Influencer, Witness, TopologyAware), so
// the wrapped stack runs on the incremental witness path unchanged.
type churnCountingStack struct {
	*core.DFTNO
	evals int64
	scans int64
}

func (p *churnCountingStack) Enabled(v graph.NodeID, buf []program.ActionID) []program.ActionID {
	p.evals++
	return p.DFTNO.Enabled(v, buf)
}

func (p *churnCountingStack) Legitimate() bool {
	p.scans++
	return p.DFTNO.Legitimate()
}

// T13Churn measures the dynamic-topology substrate end to end.
//
// Flap rows — the localized-invalidation claim: on an already
// stabilized DFTNO stack mid-circulation, one edge flap (remove + of
// the same non-tree edge, re-add) processed through System.ApplyDelta
// re-evaluates O(deg·Δ) guards ("delta evals", counted not timed),
// versus the Θ(n) rescans a whole-system Invalidate pays for the same
// event ("invalidate evals"); the speedup column is their ratio, and
// the regression gate guards it. Re-stabilization after the flap runs
// on the armed witness: "wit scans" counts O(n) Legitimate() calls and
// its committed value is 0. "ref rebuilds" counts O(n+m) reference-
// naming rebuilds — the removal half of a non-tree flap provably
// cannot change the port-order DFS and takes the incremental skip, so
// the committed value is 1 (the re-add), not 2.
//
// Churn-rate rows — re-stabilization under sustained churn: the churn
// engine drives seeded edge-flap events over gnp and grid networks at
// varying periods (the inverse churn rate), reporting how many events
// the system fully absorbed inside the recovery window and the median
// re-stabilization cost per absorbed event.
func T13Churn(cfg Config) (*trace.Table, error) {
	tb := trace.NewTable(
		"T13 — dynamic topology: localized ApplyDelta invalidation vs whole-system Invalidate (single edge flap, counted guard re-evaluations) and re-stabilization vs churn rate (DFTNO over the circulator, central daemon)",
		"scenario", "graph", "n", "period", "events",
		"delta evals", "invalidate evals", "wit scans", "ref rebuilds",
		"recovered", "median moves", "median rounds", "speedup")

	type point struct {
		name string
		mk   func() *graph.Graph
	}
	flapPoints := []point{
		{"grid:64x64", func() *graph.Graph { return graph.Grid(64, 64) }},
		{"grid:128x128", func() *graph.Graph { return graph.Grid(128, 128) }},
		{"grid:256x256", func() *graph.Graph { return graph.Grid(256, 256) }},
	}
	if cfg.Quick {
		flapPoints = flapPoints[:1]
	}
	for _, pt := range flapPoints {
		if err := t13Flap(cfg, tb, pt.name, pt.mk()); err != nil {
			return nil, fmt.Errorf("T13 flap %s: %w", pt.name, err)
		}
	}

	churnPoints := []struct {
		name   string
		mk     func() (*graph.Graph, error)
		period int64
	}{
		{"grid:32x32", func() (*graph.Graph, error) { return graph.Grid(32, 32), nil }, 500},
		{"grid:32x32", func() (*graph.Graph, error) { return graph.Grid(32, 32), nil }, 5000},
		{"gnp:256:0.03", func() (*graph.Graph, error) {
			return graph.Gnp(256, 0.03, rand.New(rand.NewSource(cfg.Seed)))
		}, 500},
		{"gnp:256:0.03", func() (*graph.Graph, error) {
			return graph.Gnp(256, 0.03, rand.New(rand.NewSource(cfg.Seed)))
		}, 5000},
	}
	if cfg.Quick {
		churnPoints = churnPoints[:2]
	}
	for _, pt := range churnPoints {
		g, err := pt.mk()
		if err != nil {
			return nil, fmt.Errorf("T13 churn %s: %w", pt.name, err)
		}
		if err := t13Rate(cfg, tb, pt.name, g, pt.period); err != nil {
			return nil, fmt.Errorf("T13 churn %s: %w", pt.name, err)
		}
	}
	return tb, nil
}

// t13Flap runs the single-edge-flap comparison on g.
func t13Flap(cfg Config, tb *trace.Table, name string, g *graph.Graph) error {
	build := func() (*churnCountingStack, *program.System, error) {
		sub, err := token.NewCirculator(g, 0)
		if err != nil {
			return nil, nil, err
		}
		d, err := core.NewDFTNO(g, sub, 0)
		if err != nil {
			return nil, nil, err
		}
		w := &churnCountingStack{DFTNO: d}
		sys := program.NewSystem(w, daemon.NewCentral(cfg.Seed))
		// Constructed legitimate; this arms the witness, then a few
		// hundred steps put the circulation mid-round.
		if _, err := sys.RunUntilLegitimate(10); err != nil {
			return nil, nil, err
		}
		if _, err := sys.RunUntil(func() bool { return false }, 200); err != nil {
			return nil, nil, err
		}
		return w, sys, nil
	}

	// A non-tree edge of the reference DFS: the removal half of the
	// flap takes the incremental skip and the naming provably returns
	// to itself on re-add.
	_, par := graph.DFSPreorder(g, 0)
	var eu, ev graph.NodeID = graph.None, graph.None
	for _, e := range g.Edges() {
		if par[e.U] != e.V && par[e.V] != e.U {
			eu, ev = e.U, e.V
			break
		}
	}
	if eu == graph.None {
		return fmt.Errorf("no non-tree edge on %s", g)
	}

	// Localized path: flap through ApplyDelta.
	w, sys, err := build()
	if err != nil {
		return err
	}
	rebuilds0 := w.RefRebuilds
	w.evals, w.scans = 0, 0
	d1, err := g.RemoveEdge(eu, ev)
	if err != nil {
		return err
	}
	sys.ApplyDelta(d1)
	deltaEvals := w.evals
	// Let the system adapt to the down topology before the restore, so
	// the re-add is a real perturbation, not an immediate undo.
	if _, err := sys.RunUntil(func() bool { return false }, 200); err != nil {
		return err
	}
	w.evals = 0
	d2, err := g.AddEdge(eu, ev)
	if err != nil {
		return err
	}
	sys.ApplyDelta(d2)
	deltaEvals += w.evals
	w.evals, w.scans = 0, 0
	res, err := sys.RunUntilLegitimate(stepBudget(g))
	if err != nil || !res.Converged {
		return fmt.Errorf("no re-stabilization after flap: %v", err)
	}
	witScans := w.scans
	rebuilds := w.RefRebuilds - rebuilds0

	// Blunt path: same flap, whole-system Invalidate (the protocol
	// hook still runs — Invalidate repairs caches, not bindings).
	w2, sys2, err := build()
	if err != nil {
		return err
	}
	w2.evals = 0
	d1, err = g.RemoveEdge(eu, ev)
	if err != nil {
		return err
	}
	w2.TopologyChanged(d1, nil)
	sys2.Invalidate()
	sys2.EnabledCount() // forces the Θ(n) rescan the invalidation deferred
	d2, err = g.AddEdge(eu, ev)
	if err != nil {
		return err
	}
	w2.TopologyChanged(d2, nil)
	sys2.Invalidate()
	sys2.EnabledCount()
	invEvals := w2.evals

	tb.AddRow("flap", name, g.N(), "-", 1,
		deltaEvals, invEvals, witScans, rebuilds,
		"1/1", float64(res.Moves), float64(res.Rounds),
		float64(invEvals)/float64(deltaEvals))
	return nil
}

// t13Rate runs the churn-rate sweep row on g.
func t13Rate(cfg Config, tb *trace.Table, name string, g *graph.Graph, period int64) error {
	sub, err := token.NewCirculator(g, 0)
	if err != nil {
		return err
	}
	d, err := core.NewDFTNO(g, sub, 0)
	if err != nil {
		return err
	}
	// The churn-rate sweep measures recovery inside the period, which
	// is engine-independent — so it honors Config.Workers: >0 runs the
	// schedule on the sharded parallel stepper (benchtab -workers),
	// default stays the serial scheduler the committed baselines used.
	var sys program.Stepper
	if cfg.Workers > 0 {
		sys = program.NewParallelSystem(d, program.ParallelConfig{Workers: cfg.Workers, Seed: cfg.Seed})
	} else {
		sys = program.NewSystem(d, daemon.NewCentral(cfg.Seed))
	}
	run := &churn.Runner{G: g, Sys: sys, Root: 0}
	events := cfg.trials(12)
	st, err := run.Run(churn.Config{
		Seed:    cfg.Seed,
		Events:  events,
		Period:  period,
		DownFor: period / 4,
		Mix:     []churn.Kind{churn.EdgeFlap, churn.NodeCrash, churn.Partition},
	})
	if err != nil {
		return err
	}
	if !st.Final.Converged {
		return fmt.Errorf("no final recovery at period %d", period)
	}
	tb.AddRow("churn-rate", name, g.N(), period, st.Events,
		"-", "-", "-", "-",
		fmt.Sprintf("%d/%d", st.RecoveredInPeriod, st.Events),
		medianInt64(st.RecoveryMoves), medianInt64(st.RecoveryRounds), "-")
	return nil
}

package experiments

import (
	"netorient/internal/graph"
	"netorient/internal/program"
	"netorient/internal/trace"
)

// T3Space reproduces the space accounting of §3.2.3, §4.2.3 and
// Chapter 5: both orientation layers occupy O(Δ×log N) bits per node;
// STNO pays an extra Δ×⌈log₂N⌉ for the Start array it needs to steer
// the tree (the paper's "O(Δ×log N) more bits to maintain the
// spanning tree"), while DFTNO's substrate adds only O(log N)-class
// state. Columns report measured bits per node (maximum over nodes)
// against the Δ·⌈log₂N⌉ yardstick.
func T3Space(cfg Config) (*trace.Table, error) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"ring-16", graph.Ring(16)},
		{"ring-64", graph.Ring(64)},
		{"grid-8x8", graph.Grid(8, 8)},
		{"clique-16", graph.Complete(16)},
		{"clique-32", graph.Complete(32)},
		{"star-64", graph.Star(64)},
	}
	if cfg.Quick {
		graphs = graphs[:4]
	}
	tb := trace.NewTable(
		"T3 (§3.2.3/§4.2.3/Ch.5) — per-node space, in bits (max over nodes); yardstick Δ·⌈log₂N⌉",
		"graph", "n", "Δ", "⌈log₂N⌉", "Δ·⌈log₂N⌉",
		"DFTNO η,Max,π", "STNO Wt,η,Start,π", "STNO−DFTNO (Start array)",
		"DFTNO substrate", "STNO substrate")
	for _, gr := range graphs {
		g := gr.g
		d, err := newDFTNO(g, 0)
		if err != nil {
			return nil, err
		}
		s, err := newSTNO(g, 0)
		if err != nil {
			return nil, err
		}
		lg := program.Log2Ceil(g.N())
		delta := g.MaxDegree()
		var dOrient, sOrient, dSub, sSub int
		for v := 0; v < g.N(); v++ {
			id := graph.NodeID(v)
			if b := d.OrientationBits(id); b > dOrient {
				dOrient = b
			}
			if b := s.OrientationBits(id); b > sOrient {
				sOrient = b
			}
			if m, ok := d.Substrate().(program.SpaceMeter); ok {
				if b := m.StateBits(id); b > dSub {
					dSub = b
				}
			}
			if m, ok := s.Substrate().(program.SpaceMeter); ok {
				if b := m.StateBits(id); b > sSub {
					sSub = b
				}
			}
		}
		tb.AddRow(gr.name, g.N(), delta, lg, delta*lg,
			dOrient, sOrient, sOrient-dOrient, dSub, sSub)
	}
	return tb, nil
}

package experiments

import (
	"fmt"
	"math/rand"

	"netorient/internal/core"
	"netorient/internal/daemon"
	"netorient/internal/graph"
	"netorient/internal/program"
	"netorient/internal/spantree"
	"netorient/internal/trace"
)

// T6Equivalence verifies the Chapter 5 observation: "if the spanning
// tree maintained in the STNO is a DFS tree of the graph, then the
// naming could be similar for both algorithms, provided the respective
// ordering at individual nodes is the same." For random graphs, STNO
// is run over the port-ordered DFS tree and its naming is compared,
// node by node, with DFTNO's; the BFS-tree naming is shown as the
// contrast column.
func T6Equivalence(cfg Config) (*trace.Table, error) {
	trials := cfg.trials(10)
	rng := rand.New(rand.NewSource(cfg.Seed))
	tb := trace.NewTable(
		"T6 (Ch.5) — STNO over the DFS tree names exactly like DFTNO; over the BFS tree it (generally) does not",
		"graph", "n", "m", "DFS-tree naming = DFTNO", "BFS-tree naming = DFTNO")
	for trial := 0; trial < trials; trial++ {
		n := 4 + rng.Intn(20)
		g := graph.RandomConnected(n, rng.Intn(n), rng)

		d, err := newDFTNO(g, 0)
		if err != nil {
			return nil, err
		}
		ref := d.ReferenceNames()

		runSTNO := func(sub core.TreeSubstrate) ([]int, error) {
			s, err := core.NewSTNO(g, sub, 0)
			if err != nil {
				return nil, err
			}
			sys := program.NewSystem(s, daemon.NewRoundRobin())
			res, err := sys.RunUntilLegitimate(stepBudget(g))
			if err != nil || !res.Converged {
				return nil, fmt.Errorf("T6: STNO did not stabilize: %v", err)
			}
			return s.Names(), nil
		}

		dfsSub, err := spantree.NewDFSOracle(g, 0)
		if err != nil {
			return nil, err
		}
		dfsNames, err := runSTNO(dfsSub)
		if err != nil {
			return nil, err
		}
		bfsSub, err := spantree.NewBFSOracle(g, 0)
		if err != nil {
			return nil, err
		}
		bfsNames, err := runSTNO(bfsSub)
		if err != nil {
			return nil, err
		}

		equal := func(a, b []int) bool {
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
			return true
		}
		if !equal(dfsNames, ref) {
			return nil, fmt.Errorf("T6: DFS-tree STNO naming %v deviates from DFTNO %v on %s", dfsNames, ref, g)
		}
		tb.AddRow(fmt.Sprintf("random#%d", trial), g.N(), g.M(),
			equal(dfsNames, ref), equal(bfsNames, ref))
	}
	return tb, nil
}

package experiments

import (
	"fmt"

	"netorient/internal/daemon"
	"netorient/internal/fault"
	"netorient/internal/graph"
	"netorient/internal/program"
	"netorient/internal/trace"
)

// T4Recovery operationalises Theorems 3.2.3 and 4.2.3: both protocols
// are self-stabilizing, so after k processors suffer transient faults
// the system returns to a legitimate configuration on its own. The
// table reports median recovery cost per fault size for both stacks,
// with full corruption (k=n) as the fresh-start baseline.
func T4Recovery(cfg Config) (*trace.Table, error) {
	g := graph.Grid(4, 4)
	if cfg.Quick {
		g = graph.Grid(3, 3)
	}
	trials := cfg.trials(15)
	faultSizes := []int{1, 2, g.N() / 4, g.N()}

	tb := trace.NewTable(
		fmt.Sprintf("T4 (Thms 3.2.3/4.2.3) — recovery from k-node transient faults on %s (central daemon, %d trials)", g, trials),
		"protocol", "k faults", "recovered", "median moves", "p95 moves", "median rounds")

	type stack struct {
		name  string
		build func() (fault.Target, error)
	}
	stacks := []stack{
		{"dftno", func() (fault.Target, error) { return newDFTNO(g, 0) }},
		{"stno", func() (fault.Target, error) { return newSTNO(g, 0) }},
	}
	for _, st := range stacks {
		target, err := st.build()
		if err != nil {
			return nil, err
		}
		for _, k := range faultSizes {
			out, err := fault.Campaign{
				Faults:   k,
				Trials:   trials,
				MaxSteps: stepBudget(g),
				Seed:     cfg.Seed + int64(k),
				NewDaemon: func(trial int) program.Daemon {
					return daemon.NewCentral(cfg.Seed + int64(trial))
				},
				// benchtab -workers: run each trial on the parallel
				// stepper; the default (0) keeps the serial engine the
				// committed baselines used.
				Workers: cfg.Workers,
			}.Run(target)
			if err != nil {
				return nil, fmt.Errorf("T4: %s k=%d: %w", st.name, k, err)
			}
			ms := trace.SummarizeInts(out.RecoveryMoves)
			rs := trace.SummarizeInts(out.RecoveryRounds)
			tb.AddRow(st.name, k,
				fmt.Sprintf("%d/%d", out.Recovered, out.Trials),
				ms.Median, ms.P95, rs.Median)
		}
	}
	return tb, nil
}

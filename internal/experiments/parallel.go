package experiments

import (
	"fmt"
	"math/rand"

	"netorient/internal/graph"
	"netorient/internal/program"
	"netorient/internal/spantree"
	"netorient/internal/trace"
)

// T16ParallelStepper measures the sharded parallel stepper's
// distributed-daemon throughput against its own single-shard run at
// n = 2²⁰: the BFS spanning tree protocol on a 1024×1024 grid,
// relabeled by BFS discovery order (graph.BFSOrder + ReorderNodes) so
// each contiguous-id shard is a geometrically compact region and the
// interior/frontier split stays heavily interior.
//
// The machine running the table may have any number of cores — CI
// boxes often pin GOMAXPROCS — so the table reports *counted*
// throughput, not wall-clock: work is the total number of guard
// evaluations plus executed moves, span is the critical path under the
// engine's barrier structure (per step: the largest single shard's
// phase-A work plus the serialized boundary pass). moves/span is then
// aggregate moves per unit of critical-path time on an ideal
// W-core machine, and "counted speedup" normalises it by the
// one-worker run — a same-process ratio the regression gate can hold
// across hardware. The one-worker run has an empty frontier (every
// ball is interior to the single shard), so its span equals its work
// and its ratio is 1 by construction.
//
// Quick mode keeps n = 2²⁰ — shrinking the graph would change the row
// keys the committed baseline is diffed against — and only lowers the
// fixed step count.
func T16ParallelStepper(cfg Config) (*trace.Table, error) {
	steps := 10
	if cfg.Quick {
		steps = 3
	}
	workerSet := []int{1, 2, 4, 8}
	if cfg.Workers > 0 {
		found := false
		for _, w := range workerSet {
			if w == cfg.Workers {
				found = true
			}
		}
		if !found {
			workerSet = append(workerSet, cfg.Workers)
		}
	}

	base := graph.Grid(1024, 1024)
	order, err := graph.BFSOrder(base, 0)
	if err != nil {
		return nil, err
	}
	g, inv, err := base.ReorderNodes(order)
	if err != nil {
		return nil, err
	}
	root := inv[0]

	tb := trace.NewTable(
		"T16 — sharded parallel stepper: counted distributed-daemon throughput vs worker count (BFS tree on a BFS-relabeled 1024×1024 grid, work/span accounting)",
		"graph", "n", "workers", "steps", "moves", "frontier", "work units", "span units", "counted speedup")
	baseline := 0.0
	for _, w := range workerSet {
		p, err := spantree.NewBFSTree(g, root)
		if err != nil {
			return nil, err
		}
		p.Randomize(rand.New(rand.NewSource(cfg.Seed)))
		ps := program.NewParallelSystem(p, program.ParallelConfig{
			Workers: w, Seed: cfg.Seed,
			FrontierWaves: cfg.FrontierWaves, Reshard: cfg.reshardPolicy(),
		})
		for i := 0; i < steps; i++ {
			n, err := ps.Step()
			if err != nil {
				return nil, err
			}
			if n == 0 {
				return nil, fmt.Errorf("T16: terminal after %d steps at w=%d", i, w)
			}
		}
		if ps.SpanUnits() == 0 {
			return nil, fmt.Errorf("T16: zero span at w=%d", w)
		}
		thr := float64(ps.Moves()) / float64(ps.SpanUnits())
		if baseline == 0 {
			baseline = thr
		}
		tb.AddRow("grid:1024x1024", g.N(), w, steps,
			ps.Moves(), ps.FrontierSize(), ps.WorkUnits(), ps.SpanUnits(), thr/baseline)
	}
	return tb, nil
}

// T17FrontierWaves measures what the batched wave execution of phase B
// buys over the serialized boundary pass, on the two topology regimes
// that matter: the BFS-relabeled 1024×1024 grid of T16 (thin frontier —
// the seam is small but strictly serial) and a BFS-relabeled
// Barabási–Albert graph at n = 2¹⁸ (expander-like, fat frontier — the
// serialized seam dominates the span and the speedup curve collapses
// without waves).
//
// Per graph, the sweep crosses waves ∈ {off, on} × workers ∈
// {1,2,4,8}, same counted work/span accounting as T16. Two gated
// ratios come out: "counted speedup" is moves per span unit normalised
// by the (workers=1, waves=off) row of the same graph — the T16 ratio,
// now also measured with waves — and "seam speedup" is the phase-B
// span of the waves-off run divided by the phase-B span of the
// waves-on run at equal worker count (1.0 on waves-off rows by
// definition, and whenever the frontier is empty). Acceptance for this
// PR: grid counted speedup at 8 workers with waves on strictly beats
// the committed T16 7.2×, and the barabási seam speedup at 8 workers
// is ≥ 2×.
//
// Quick mode keeps both graph sizes (shrinking them would change the
// row keys the committed baseline is diffed against) and trims the
// worker sweep and the step count.
func T17FrontierWaves(cfg Config) (*trace.Table, error) {
	steps := 10
	workerSet := []int{1, 2, 4, 8}
	if cfg.Quick {
		steps = 3
		workerSet = []int{1, 8}
	}
	if cfg.Workers > 0 {
		found := false
		for _, w := range workerSet {
			if w == cfg.Workers {
				found = true
			}
		}
		if !found {
			workerSet = append(workerSet, cfg.Workers)
		}
	}

	type topo struct {
		name  string
		base  *graph.Graph
		steps int
	}
	ba, err := graph.Barabasi(1<<18, 3, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, err
	}
	topos := []topo{
		{"grid:1024x1024", graph.Grid(1024, 1024), steps},
		// The BFS tree stabilizes within a handful of steps on the
		// low-diameter barabási graph, so its step count is pinned
		// below the convergence horizon in quick and full mode alike.
		{"barabasi:262144:3", ba, 3},
	}

	tb := trace.NewTable(
		"T17 — frontier waves: batched concurrent boundary execution vs the serialized phase-B pass (BFS tree on BFS-relabeled grid and barabási, counted work/span accounting)",
		"graph", "n", "workers", "waves", "steps", "moves", "frontier", "wave sets",
		"work units", "span units", "boundary span", "counted speedup", "seam speedup")
	for _, tp := range topos {
		order, err := graph.BFSOrder(tp.base, 0)
		if err != nil {
			return nil, err
		}
		g, inv, err := tp.base.ReorderNodes(order)
		if err != nil {
			return nil, err
		}
		root := inv[0]
		baseline := 0.0
		offSeam := make(map[int]int64, len(workerSet))
		for _, waves := range []bool{false, true} {
			for _, w := range workerSet {
				p, err := spantree.NewBFSTree(g, root)
				if err != nil {
					return nil, err
				}
				p.Randomize(rand.New(rand.NewSource(cfg.Seed)))
				ps := program.NewParallelSystem(p, program.ParallelConfig{
					Workers: w, Seed: cfg.Seed,
					FrontierWaves: waves, Reshard: cfg.reshardPolicy(),
				})
				for i := 0; i < tp.steps; i++ {
					n, err := ps.Step()
					if err != nil {
						return nil, err
					}
					if n == 0 {
						return nil, fmt.Errorf("T17: terminal after %d steps at %s w=%d", i, tp.name, w)
					}
				}
				if ps.SpanUnits() == 0 {
					return nil, fmt.Errorf("T17: zero span at %s w=%d", tp.name, w)
				}
				thr := float64(ps.Moves()) / float64(ps.SpanUnits())
				if baseline == 0 {
					baseline = thr
				}
				seam := 1.0
				if !waves {
					offSeam[w] = ps.BoundarySpanUnits()
				} else if on := ps.BoundarySpanUnits(); on > 0 && offSeam[w] > 0 {
					seam = float64(offSeam[w]) / float64(on)
				}
				mode := "off"
				if waves {
					mode = "on"
				}
				tb.AddRow(tp.name, g.N(), w, mode, tp.steps,
					ps.Moves(), ps.FrontierSize(), ps.WaveCount(),
					ps.WorkUnits(), ps.SpanUnits(), ps.BoundarySpanUnits(),
					thr/baseline, seam)
			}
		}
	}
	return tb, nil
}

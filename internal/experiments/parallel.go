package experiments

import (
	"fmt"
	"math/rand"

	"netorient/internal/graph"
	"netorient/internal/program"
	"netorient/internal/spantree"
	"netorient/internal/trace"
)

// T16ParallelStepper measures the sharded parallel stepper's
// distributed-daemon throughput against its own single-shard run at
// n = 2²⁰: the BFS spanning tree protocol on a 1024×1024 grid,
// relabeled by BFS discovery order (graph.BFSOrder + ReorderNodes) so
// each contiguous-id shard is a geometrically compact region and the
// interior/frontier split stays heavily interior.
//
// The machine running the table may have any number of cores — CI
// boxes often pin GOMAXPROCS — so the table reports *counted*
// throughput, not wall-clock: work is the total number of guard
// evaluations plus executed moves, span is the critical path under the
// engine's barrier structure (per step: the largest single shard's
// phase-A work plus the serialized boundary pass). moves/span is then
// aggregate moves per unit of critical-path time on an ideal
// W-core machine, and "counted speedup" normalises it by the
// one-worker run — a same-process ratio the regression gate can hold
// across hardware. The one-worker run has an empty frontier (every
// ball is interior to the single shard), so its span equals its work
// and its ratio is 1 by construction.
//
// Quick mode keeps n = 2²⁰ — shrinking the graph would change the row
// keys the committed baseline is diffed against — and only lowers the
// fixed step count.
func T16ParallelStepper(cfg Config) (*trace.Table, error) {
	steps := 10
	if cfg.Quick {
		steps = 3
	}
	workerSet := []int{1, 2, 4, 8}
	if cfg.Workers > 0 {
		found := false
		for _, w := range workerSet {
			if w == cfg.Workers {
				found = true
			}
		}
		if !found {
			workerSet = append(workerSet, cfg.Workers)
		}
	}

	base := graph.Grid(1024, 1024)
	order, err := graph.BFSOrder(base, 0)
	if err != nil {
		return nil, err
	}
	g, inv, err := base.ReorderNodes(order)
	if err != nil {
		return nil, err
	}
	root := inv[0]

	tb := trace.NewTable(
		"T16 — sharded parallel stepper: counted distributed-daemon throughput vs worker count (BFS tree on a BFS-relabeled 1024×1024 grid, work/span accounting)",
		"graph", "n", "workers", "steps", "moves", "frontier", "work units", "span units", "counted speedup")
	baseline := 0.0
	for _, w := range workerSet {
		p, err := spantree.NewBFSTree(g, root)
		if err != nil {
			return nil, err
		}
		p.Randomize(rand.New(rand.NewSource(cfg.Seed)))
		ps := program.NewParallelSystem(p, program.ParallelConfig{Workers: w, Seed: cfg.Seed})
		for i := 0; i < steps; i++ {
			n, err := ps.Step()
			if err != nil {
				return nil, err
			}
			if n == 0 {
				return nil, fmt.Errorf("T16: terminal after %d steps at w=%d", i, w)
			}
		}
		if ps.SpanUnits() == 0 {
			return nil, fmt.Errorf("T16: zero span at w=%d", w)
		}
		thr := float64(ps.Moves()) / float64(ps.SpanUnits())
		if baseline == 0 {
			baseline = thr
		}
		tb.AddRow("grid:1024x1024", g.N(), w, steps,
			ps.Moves(), ps.FrontierSize(), ps.WorkUnits(), ps.SpanUnits(), thr/baseline)
	}
	return tb, nil
}

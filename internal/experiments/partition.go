package experiments

import (
	"fmt"

	"netorient/internal/core"
	"netorient/internal/daemon"
	"netorient/internal/graph"
	"netorient/internal/program"
	"netorient/internal/token"
	"netorient/internal/trace"
)

// T14PartitionHeal measures partition tolerance end to end on the
// DFTNO stack: bridge cuts split the network into parts, the split
// system must reach per-component legitimacy (the root's component by
// the classic predicate restricted to it, orphan components by
// quiescence in their detected-orphan fixpoints), and the heals merge
// the components back.
//
// "split steps" is the per-component convergence cost while
// disconnected. "heal delta evals" counts the guard re-evaluations the
// localized ApplyDelta path pays for all heals — the boundary ball
// plus the renamed orphan region — versus "heal invalidate evals", the
// Θ(n)-per-heal rescans a whole-system Invalidate pays for the same
// merges; "heal speedup" is their ratio and the regression gate guards
// it. Sweeping the number of cuts shows how heal-time cost scales with
// partition count.
func T14PartitionHeal(cfg Config) (*trace.Table, error) {
	tb := trace.NewTable(
		"T14 — partition tolerance: per-component convergence while split and heal-time merge vs partition count (DFTNO over the circulator, central daemon)",
		"graph", "n", "parts", "orphans",
		"heal delta evals", "heal invalidate evals",
		"split steps", "recovery moves", "recovery rounds", "heal speedup")

	type point struct {
		name string
		mk   func() *graph.Graph
		cuts [][2]graph.NodeID
	}
	// Lollipop(40,16): clique 0..39, tail 40..55 hanging off node 0.
	// Every tail edge is a bridge; cutting k of them splits the tail
	// into k orphan segments while the clique side keeps the root.
	lolli := func() *graph.Graph { return graph.Lollipop(40, 16) }
	points := []point{
		{"lollipop:40:16", lolli, [][2]graph.NodeID{{47, 48}}},
		{"lollipop:40:16", lolli, [][2]graph.NodeID{{44, 45}, {49, 50}}},
		{"lollipop:40:16", lolli, [][2]graph.NodeID{{42, 43}, {45, 46}, {48, 49}, {51, 52}}},
		// Caterpillar(16,2): spine path 0..15, two leaves per spine
		// node; spine cuts orphan whole sub-caterpillars.
		{"caterpillar:16:2", func() *graph.Graph { return graph.Caterpillar(16, 2) },
			[][2]graph.NodeID{{5, 6}, {10, 11}}},
	}
	if cfg.Quick {
		points = points[:1]
	}
	for _, pt := range points {
		if err := t14Row(cfg, tb, pt.name, pt.mk, pt.cuts); err != nil {
			return nil, fmt.Errorf("T14 %s: %w", pt.name, err)
		}
	}
	return tb, nil
}

// t14Row runs one cut-set scenario: localized path (cuts and heals
// through ApplyDelta) for the committed measurements, then a fresh
// blunt path (heals through whole-system Invalidate) for the
// comparison column.
func t14Row(cfg Config, tb *trace.Table, name string, mk func() *graph.Graph, cuts [][2]graph.NodeID) error {
	build := func(g *graph.Graph) (*churnCountingStack, *program.System, error) {
		sub, err := token.NewCirculator(g, 0)
		if err != nil {
			return nil, nil, err
		}
		d, err := core.NewDFTNO(g, sub, 0)
		if err != nil {
			return nil, nil, err
		}
		w := &churnCountingStack{DFTNO: d}
		sys := program.NewSystem(w, daemon.NewCentral(cfg.Seed))
		// Constructed legitimate; arm the witness, then circulate a
		// while so the guard cache is live and the token mid-round.
		if _, err := sys.RunUntilLegitimate(10); err != nil {
			return nil, nil, err
		}
		if _, err := sys.RunUntil(func() bool { return false }, 200); err != nil {
			return nil, nil, err
		}
		return w, sys, nil
	}

	// Localized path.
	g := mk()
	w, sys, err := build(g)
	if err != nil {
		return err
	}
	for _, c := range cuts {
		d, err := g.RemoveEdge(c[0], c[1])
		if err != nil {
			return err
		}
		sys.ApplyDelta(d)
	}
	parts := g.Components()
	orphans := g.NAlive() - g.ComponentSize(g.ComponentOf(0))
	resSplit, err := sys.RunUntilLegitimate(stepBudget(g))
	if err != nil || !resSplit.Converged {
		return fmt.Errorf("no per-component convergence while split: %v", err)
	}
	w.evals = 0
	for _, c := range cuts {
		d, err := g.AddEdge(c[0], c[1])
		if err != nil {
			return err
		}
		sys.ApplyDelta(d)
	}
	healDelta := w.evals
	res, err := sys.RunUntilLegitimate(stepBudget(g))
	if err != nil || !res.Converged {
		return fmt.Errorf("no recovery after heal: %v", err)
	}

	// Blunt path: identical cut schedule and split convergence, heals
	// through Invalidate (the protocol hook still runs — Invalidate
	// repairs caches, not bindings).
	g2 := mk()
	w2, sys2, err := build(g2)
	if err != nil {
		return err
	}
	for _, c := range cuts {
		d, err := g2.RemoveEdge(c[0], c[1])
		if err != nil {
			return err
		}
		sys2.ApplyDelta(d)
	}
	if resSplit2, err := sys2.RunUntilLegitimate(stepBudget(g2)); err != nil || !resSplit2.Converged {
		return fmt.Errorf("blunt path: no convergence while split: %v", err)
	}
	w2.evals = 0
	for _, c := range cuts {
		d, err := g2.AddEdge(c[0], c[1])
		if err != nil {
			return err
		}
		w2.TopologyChanged(d, nil)
		sys2.Invalidate()
		sys2.EnabledCount() // forces the Θ(n) rescan the invalidation deferred
	}
	healInv := w2.evals

	tb.AddRow(name, g.N(), parts, orphans,
		healDelta, healInv,
		resSplit.Steps, res.Moves, res.Rounds,
		float64(healInv)/float64(healDelta))
	return nil
}

package experiments

import (
	"fmt"

	"netorient/internal/apps"
	"netorient/internal/graph"
	"netorient/internal/trace"
)

// T9Election quantifies the related-work claim the paper closes with
// ([25], Ch.5): the sense of direction makes leader election cheaper.
// On rings of growing size, the un-oriented Hirschberg–Sinclair
// algorithm (O(n log n) messages) is compared against Chang–Roberts
// on the oriented ring (O(n log n) expected, O(n²) worst) and against
// "election" once the network carries the DFTNO orientation — the
// node named 0 is leader by common knowledge, so only the
// announcement broadcast costs anything.
func T9Election(cfg Config) (*trace.Table, error) {
	sizes := []int{8, 16, 32, 64}
	if cfg.Quick {
		sizes = []int{8, 16}
	}
	tb := trace.NewTable(
		"T9 (Ch.5/[25]) — leader election messages on rings: un-oriented vs oriented vs fully named",
		"n", "HS (un-oriented)", "CR (oriented ring)", "CR worst-case ids", "with SP1∧SP2 names")
	for _, n := range sizes {
		g := graph.Ring(n)

		// The orientation supplies the unique ids: run DFTNO.
		d, err := newDFTNO(g, 0)
		if err != nil {
			return nil, err
		}
		l := d.Labeling()
		ids := l.Names

		_, hs, err := apps.ElectHirschbergSinclair(g, ids)
		if err != nil {
			return nil, fmt.Errorf("T9: HS n=%d: %w", n, err)
		}
		_, cr, err := apps.ElectChangRoberts(g, ids)
		if err != nil {
			return nil, fmt.Errorf("T9: CR n=%d: %w", n, err)
		}
		worst := make([]int, n)
		for i := range worst {
			worst[i] = n - 1 - i
		}
		_, crWorst, err := apps.ElectChangRoberts(g, worst)
		if err != nil {
			return nil, fmt.Errorf("T9: CR worst n=%d: %w", n, err)
		}
		_, named, err := apps.ElectWithOrientation(g, l)
		if err != nil {
			return nil, fmt.Errorf("T9: oriented n=%d: %w", n, err)
		}
		tb.AddRow(n, hs, cr, crWorst, named)
	}
	return tb, nil
}

package experiments

import (
	"fmt"
	"strings"

	"netorient/internal/core"
	"netorient/internal/daemon"
	"netorient/internal/graph"
	"netorient/internal/program"
	"netorient/internal/token"
	"netorient/internal/trace"
)

// F1Chordal reproduces Figure 2.2.1: a chordal sense of direction on
// a small network — every node's name, every incident label, and the
// validation verdict for SP1/SP2/local orientation/edge symmetry.
func F1Chordal(cfg Config) (*trace.Table, error) {
	g := graph.PaperChordalExample()
	d, err := newDFTNO(g, 0)
	if err != nil {
		return nil, err
	}
	l := d.Labeling()
	if err := l.Validate(g); err != nil {
		return nil, fmt.Errorf("F1: %w", err)
	}
	tb := trace.NewTable(
		"F1 (Figure 2.2.1) — chordal sense of direction on the 5-cycle with chord; N=5; labeling validated (SP1 ∧ SP2 ∧ local orientation ∧ edge symmetry)",
		"node", "name η", "labels π[port]→(neighbour:label)")
	for v := 0; v < g.N(); v++ {
		var cells []string
		for port, q := range g.Neighbors(graph.NodeID(v)) {
			cells = append(cells, fmt.Sprintf("%d:%d", q, l.Labels[v][port]))
		}
		tb.AddRow(v, l.Names[v], strings.Join(cells, " "))
	}
	return tb, nil
}

// F2DFTNOTrace reproduces Figure 3.1.1 step by step: the token names
// r=0, b=1, d=2, c=3, a=4 on the paper's example graph, with the Max
// counter propagating 3 back to the root before a is named 4.
func F2DFTNOTrace(cfg Config) (*trace.Table, error) {
	g := graph.PaperTokenExample()
	sub, err := token.NewOracle(g, 0)
	if err != nil {
		return nil, err
	}
	d, err := core.NewDFTNO(g, sub, 0)
	if err != nil {
		return nil, err
	}
	names := map[graph.NodeID]string{0: "r", 1: "b", 2: "d", 3: "c", 4: "a"}
	tb := trace.NewTable(
		"F2 (Figure 3.1.1) — DFTNO node labeling on the paper's example (r–b, b–d, d–c, r–a)",
		"move", "paper step", "processor", "event", "η", "Max")
	paperSteps := []string{"ii", "iii", "iv", "v", "vi", "vii", "viii", "ix", "x"}
	events := []string{
		"GenerateToken+Nodelabel", "Forward+Nodelabel", "Forward+Nodelabel",
		"Forward+Nodelabel", "Backtrack+UpdateMax", "Backtrack+UpdateMax",
		"Backtrack+UpdateMax", "Forward+Nodelabel", "Backtrack+UpdateMax",
	}
	sys := program.NewSystem(d, daemon.NewDeterministic())
	var last program.Move
	sys.MoveHook = func(m program.Move) { last = m }
	for i := 0; i < len(paperSteps); i++ {
		if _, err := sys.Step(); err != nil {
			return nil, err
		}
		etaStr := fmt.Sprintf("%d", d.Names()[last.Node])
		tb.AddRow(i+1, paperSteps[i], names[last.Node], events[i], etaStr, d.MaxOf(last.Node))
	}
	want := []int{0, 1, 2, 3, 4}
	got := d.Names()
	for v := range want {
		if got[v] != want[v] {
			return nil, fmt.Errorf("F2: naming %v deviates from the paper's %v", got, want)
		}
	}
	return tb, nil
}

// F3STNOTrace reproduces Figure 4.1.1: weights aggregate bottom-up to
// (1,1,1,3,5) and names distribute top-down to the preorder 0..4 on
// the paper's example tree.
func F3STNOTrace(cfg Config) (*trace.Table, error) {
	g := graph.PaperTreeExample()
	s, err := newSTNOOverDFSOracle(g)
	if err != nil {
		return nil, err
	}
	sys := program.NewSystem(s, daemon.NewRoundRobin())
	res, err := sys.RunUntilLegitimate(100000)
	if err != nil {
		return nil, err
	}
	if !res.Converged {
		return nil, fmt.Errorf("F3: STNO did not stabilize")
	}
	wantW := []int{5, 3, 1, 1, 1}
	wantN := []int{0, 1, 2, 3, 4}
	tb := trace.NewTable(
		fmt.Sprintf("F3 (Figure 4.1.1) — STNO weights and naming on the paper's example tree (stabilized in %d rounds, %d moves)", res.Rounds, res.Moves),
		"node", "role", "Weight (paper)", "name η (paper)")
	roles := []string{"root", "internal", "leaf", "leaf", "leaf"}
	names := s.Names()
	for v := 0; v < g.N(); v++ {
		if s.WeightOf(graph.NodeID(v)) != wantW[v] || names[v] != wantN[v] {
			return nil, fmt.Errorf("F3: node %d weight=%d name=%d, paper says weight=%d name=%d",
				v, s.WeightOf(graph.NodeID(v)), names[v], wantW[v], wantN[v])
		}
		tb.AddRow(v, roles[v],
			fmt.Sprintf("%d (%d)", s.WeightOf(graph.NodeID(v)), wantW[v]),
			fmt.Sprintf("%d (%d)", names[v], wantN[v]))
	}
	return tb, nil
}

// newSTNOOverDFSOracle builds STNO over the fixed DFS tree.
func newSTNOOverDFSOracle(g *graph.Graph) (*core.STNO, error) {
	sub, err := spantreeDFSOracle(g)
	if err != nil {
		return nil, err
	}
	return core.NewSTNO(g, sub, 0)
}

package experiments

import (
	"fmt"

	"netorient/internal/graph"
	"netorient/internal/sod"
	"netorient/internal/trace"
)

// T10Routing measures how far the locally-computable greedy routing
// over the chordal labels (§1.3: "the labels can be used in many
// applications, such as routing") carries on different topologies:
// delivery rate over all ordered pairs, and the stretch (hops /
// BFS optimum) over delivered pairs. On rings, cliques and chordal
// rings — the structures whose geometry the name cycle matches —
// greedy is complete and optimal; on meshes and random graphs the
// DFS-order names decouple from the geometry and greedy degrades,
// which is why the paper separates establishing the orientation from
// exploiting it.
func T10Routing(cfg Config) (*trace.Table, error) {
	c16, err := graph.Circulant(16, []int{1, 4})
	if err != nil {
		return nil, err
	}
	cases := []struct {
		name string
		g    *graph.Graph
		// namesByPosition uses ring positions as names (the chordal
		// rings' native orientation) instead of DFTNO's DFS naming.
		namesByPosition bool
	}{
		{"ring-16 (dftno)", graph.Ring(16), false},
		{"clique-8 (dftno)", graph.Complete(8), false},
		{"circulant-16(1,4)", c16, true},
		{"grid-4x4 (dftno)", graph.Grid(4, 4), false},
		{"torus-4x4 (dftno)", graph.Torus(4, 4), false},
	}
	if cfg.Quick {
		cases = cases[:3]
	}
	tb := trace.NewTable(
		"T10 (§1.3) — greedy routing over the chordal labels: delivery rate and stretch vs BFS optimum",
		"graph", "pairs", "delivered", "rate", "mean stretch", "max stretch")
	for _, c := range cases {
		g := c.g
		var l *sod.Labeling
		if c.namesByPosition {
			names := make([]int, g.N())
			for i := range names {
				names[i] = i
			}
			l = sod.FromNames(g, names, g.N())
		} else {
			d, err := newDFTNO(g, 0)
			if err != nil {
				return nil, err
			}
			l = d.Labeling()
		}
		if err := l.Validate(g); err != nil {
			return nil, fmt.Errorf("T10: %s: %w", c.name, err)
		}
		pairs, delivered := 0, 0
		var stretches []float64
		for from := 0; from < g.N(); from++ {
			dist, _ := graph.BFSFrom(g, graph.NodeID(from))
			for to := 0; to < g.N(); to++ {
				if to == from {
					continue
				}
				pairs++
				path, err := l.Route(g, graph.NodeID(from), l.Names[to], 4*g.N())
				if err != nil {
					continue
				}
				delivered++
				stretches = append(stretches, float64(len(path)-1)/float64(dist[to]))
			}
		}
		st := trace.Summarize(stretches)
		tb.AddRow(c.name, pairs, delivered,
			float64(delivered)/float64(pairs), st.Mean, st.Max)
	}
	return tb, nil
}

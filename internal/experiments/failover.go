package experiments

import (
	"fmt"
	"math/rand"

	"netorient/internal/daemon"
	"netorient/internal/failover"
	"netorient/internal/graph"
	"netorient/internal/program"
	"netorient/internal/trace"
)

// T15Failover measures the root-failover layer end to end: a bridge
// cut orphans a size-k tail, and the orphan must *learn* it is
// disconnected from local variables ("detect steps": steps until
// every node's Orphaned verdict matches component truth), elect an
// acting root and re-anchor to per-component legitimacy ("failover
// steps" is the whole cut→legitimate trajectory), then abdicate on
// heal ("heal steps"). The comparison column is the operator
// alternative failover replaces — a global restart: the same cut on
// an identical system followed by whole-network randomization and
// re-stabilization ("restart steps"). "failover speedup" is
// restart/failover; the regression gate guards it, so the localized
// re-anchoring path collapsing into global-restart cost fails CI.
// Both sides are seeded deterministic step counts, independent of
// hardware.
func T15Failover(cfg Config) (*trace.Table, error) {
	tb := trace.NewTable(
		"T15 — root failover: detection latency and local re-anchoring vs orphan component size (failover over DFTNO over the circulator, central daemon)",
		"graph", "n", "orphan size",
		"detect steps", "failover steps", "heal steps", "restart steps", "failover speedup")
	tails := []int{4, 8, 16}
	if cfg.Quick {
		tails = tails[:1]
	}
	for _, k := range tails {
		if err := t15Row(cfg, tb, 24, k); err != nil {
			return nil, fmt.Errorf("T15 tail %d: %w", k, err)
		}
	}
	return tb, nil
}

func t15Row(cfg Config, tb *trace.Table, clique, tail int) error {
	mk := func() (*graph.Graph, *failover.Protocol, *program.System, error) {
		g := graph.Lollipop(clique, tail)
		in, err := newDFTNO(g, 0)
		if err != nil {
			return nil, nil, nil, err
		}
		p := failover.New(g, in, 0)
		sys := program.NewSystem(p, daemon.NewCentral(cfg.Seed))
		// Constructed legitimate; arm the witness and circulate a while
		// so the cut lands mid-round, not at a convenient rest point.
		if _, err := sys.RunUntilLegitimate(10); err != nil {
			return nil, nil, nil, err
		}
		if _, err := sys.RunUntil(func() bool { return false }, 200); err != nil {
			return nil, nil, nil, err
		}
		return g, p, sys, nil
	}
	bridge := graph.NodeID(clique) // lollipop tail hangs off node 0 via 0–clique

	// Failover path: cut, detect, re-anchor, heal.
	g, p, sys, err := mk()
	if err != nil {
		return err
	}
	d, err := g.RemoveEdge(0, bridge)
	if err != nil {
		return err
	}
	sys.ApplyDelta(d)
	detRes, err := sys.RunUntil(p.DetectionAccurate, stepBudget(g))
	if err != nil || !detRes.Converged {
		return fmt.Errorf("detection did not converge: %v", err)
	}
	legRes, err := sys.RunUntilLegitimate(stepBudget(g))
	if err != nil || !legRes.Converged {
		return fmt.Errorf("no per-component legitimacy after cut: %v", err)
	}
	failSteps := detRes.Steps + legRes.Steps
	if failSteps < 1 {
		failSteps = 1
	}
	dh, err := g.AddEdge(0, bridge)
	if err != nil {
		return err
	}
	sys.ApplyDelta(dh)
	healRes, err := sys.RunUntilLegitimate(stepBudget(g))
	if err != nil || !healRes.Converged {
		return fmt.Errorf("no recovery after heal: %v", err)
	}

	// Restart path: identical cut, then the blunt operator move —
	// randomize everything and re-stabilize the whole network.
	g2, p2, sys2, err := mk()
	if err != nil {
		return err
	}
	d2, err := g2.RemoveEdge(0, bridge)
	if err != nil {
		return err
	}
	sys2.ApplyDelta(d2)
	p2.Randomize(rand.New(rand.NewSource(cfg.Seed + int64(tail))))
	sys2.Invalidate()
	restartRes, err := sys2.RunUntilLegitimate(stepBudget(g2))
	if err != nil || !restartRes.Converged {
		return fmt.Errorf("restart baseline did not converge: %v", err)
	}

	tb.AddRow(fmt.Sprintf("lollipop:%d:%d", clique, tail), g.N(), tail,
		detRes.Steps, failSteps, healRes.Steps, restartRes.Steps,
		float64(restartRes.Steps)/float64(failSteps))
	return nil
}

package experiments

import (
	"fmt"
	"math/rand"

	"netorient/internal/daemon"
	"netorient/internal/graph"
	"netorient/internal/program"
	"netorient/internal/trace"
)

// T7Daemons is the scheduling-model ablation: the same randomized
// stacks are stabilized under the central, distributed and synchronous
// daemons. Self-stabilization holds under all of them (the paper
// assumes a weakly fair daemon for DFTNO's substrate and an unfair one
// for STNO's); the cost in rounds shifts with the daemon's
// parallelism.
func T7Daemons(cfg Config) (*trace.Table, error) {
	g := graph.Grid(4, 4)
	if cfg.Quick {
		g = graph.Grid(3, 3)
	}
	trials := cfg.trials(10)
	daemons := []struct {
		name string
		mk   func(seed int64) program.Daemon
	}{
		{"central", func(s int64) program.Daemon { return daemon.NewCentral(s) }},
		{"distributed(p=.5)", func(s int64) program.Daemon { return daemon.NewDistributed(s, 0.5) }},
		{"synchronous", func(s int64) program.Daemon { return daemon.NewSynchronous(s) }},
	}
	tb := trace.NewTable(
		fmt.Sprintf("T7 (ablation) — stabilization cost from random configurations on %s, by daemon (median over %d trials)", g, trials),
		"protocol", "daemon", "median moves", "median rounds")
	rng := rand.New(rand.NewSource(cfg.Seed))
	type stack struct {
		name  string
		build func() (program.Protocol, error)
	}
	stacks := []stack{
		{"dftno", func() (program.Protocol, error) { return newDFTNO(g, 0) }},
		{"stno", func() (program.Protocol, error) { return newSTNO(g, 0) }},
	}
	for _, st := range stacks {
		p, err := st.build()
		if err != nil {
			return nil, err
		}
		for _, dm := range daemons {
			var moves, rounds []int64
			for trial := 0; trial < trials; trial++ {
				res, err := stabilizeFrom(p, rng, dm.mk(cfg.Seed+int64(trial)), stepBudget(g))
				if err != nil {
					return nil, fmt.Errorf("T7: %s under %s: %w", st.name, dm.name, err)
				}
				moves = append(moves, res.Moves)
				rounds = append(rounds, res.Rounds)
			}
			tb.AddRow(st.name, dm.name, medianInt64(moves), medianInt64(rounds))
		}
	}
	return tb, nil
}

// T8Orderings is the ψ-ordering ablation of §2.2: the chordal labeling
// depends on the cyclic ordering ψ induced by the naming, which in
// turn depends on each node's local port order. Randomly permuting
// port orders yields different namings — every one of them a valid
// chordal sense of direction.
func T8Orderings(cfg Config) (*trace.Table, error) {
	base := graph.Grid(3, 3)
	trials := cfg.trials(8)
	rng := rand.New(rand.NewSource(cfg.Seed))
	tb := trace.NewTable(
		"T8 (ablation, §2.2) — different local ψ port orders ⇒ different namings, all valid chordal labelings",
		"port order", "names of nodes 0..8", "valid", "differs from identity order")
	var refNames []int
	for trial := 0; trial < trials; trial++ {
		g := base
		label := "identity"
		if trial > 0 {
			perm := make([][]int, base.N())
			for v := 0; v < base.N(); v++ {
				perm[v] = rng.Perm(base.Degree(graph.NodeID(v)))
			}
			var err error
			g, err = base.Reorder(perm)
			if err != nil {
				return nil, err
			}
			label = fmt.Sprintf("shuffle#%d", trial)
		}
		d, err := newDFTNO(g, 0)
		if err != nil {
			return nil, err
		}
		l := d.Labeling()
		valid := l.Validate(g) == nil
		if !valid {
			return nil, fmt.Errorf("T8: %s produced an invalid labeling", label)
		}
		if trial == 0 {
			refNames = l.Names
		}
		differs := false
		for v := range l.Names {
			if l.Names[v] != refNames[v] {
				differs = true
				break
			}
		}
		tb.AddRow(label, fmt.Sprintf("%v", l.Names), valid, differs)
	}
	return tb, nil
}

package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"netorient/internal/core"
	"netorient/internal/daemon"
	"netorient/internal/graph"
	"netorient/internal/program"
	"netorient/internal/spantree"
	"netorient/internal/token"
	"netorient/internal/trace"
)

// spantreeDFSOracle wraps the fixed port-ordered DFS tree of g as a
// tree substrate.
func spantreeDFSOracle(g *graph.Graph) (core.TreeSubstrate, error) {
	return spantree.NewDFSOracle(g, 0)
}

// T1DFTNOScaling measures §3.2.3: after the token circulation layer
// has stabilized, DFTNO stabilizes in O(n) moves. For each topology
// and size, the full stack starts from a random configuration, runs
// until the substrate alone is legitimate, then counts the extra
// moves/rounds to full orientation legitimacy. The moves/n column is
// the linearity witness: it stays bounded as n grows.
func T1DFTNOScaling(cfg Config) (*trace.Table, error) {
	sizes := []int{8, 16, 32, 64, 128}
	if cfg.Quick {
		sizes = []int{8, 16, 32}
	}
	topologies := []struct {
		name string
		mk   func(n int, rng *rand.Rand) *graph.Graph
	}{
		{"ring", func(n int, _ *rand.Rand) *graph.Graph { return graph.Ring(n) }},
		{"binary-tree", func(n int, _ *rand.Rand) *graph.Graph { return graph.KAryTree(n, 2) }},
		{"random(+n/2)", func(n int, rng *rand.Rand) *graph.Graph { return graph.RandomConnected(n, n/2, rng) }},
	}
	trials := cfg.trials(5)
	rng := rand.New(rand.NewSource(cfg.Seed))
	tb := trace.NewTable(
		"T1 (§3.2.3) — DFTNO stabilization after the token layer stabilizes: O(n) moves (median over trials)",
		"topology", "n", "m", "moves", "rounds", "moves/n")
	for _, topo := range topologies {
		for _, n := range sizes {
			g := topo.mk(n, rng)
			var moves, rounds []int64
			for trial := 0; trial < trials; trial++ {
				d, err := newDFTNO(g, 0)
				if err != nil {
					return nil, err
				}
				d.Randomize(rng)
				sys := program.NewSystem(d, daemon.NewCentral(cfg.Seed+int64(trial)))
				// Phase 1: substrate stabilization (not charged to DFTNO).
				sub := d.Substrate()
				res, err := sys.RunUntil(sub.Legitimate, stepBudget(g))
				if err != nil || !res.Converged {
					return nil, fmt.Errorf("T1: substrate did not stabilize on %s n=%d: %v", topo.name, n, err)
				}
				// Phase 2: orientation stabilization, counted.
				sys.ResetCounters()
				res, err = sys.RunUntilLegitimate(stepBudget(g))
				if err != nil || !res.Converged {
					return nil, fmt.Errorf("T1: orientation did not stabilize on %s n=%d: %v", topo.name, n, err)
				}
				moves = append(moves, res.Moves)
				rounds = append(rounds, res.Rounds)
			}
			medMoves := medianInt64(moves)
			tb.AddRow(topo.name, n, g.M(), medMoves, medianInt64(rounds), medMoves/float64(n))
		}
	}
	return tb, nil
}

// T2STNOHeight measures §4.2.3: after the spanning tree is stable,
// STNO stabilizes in O(h) rounds. Trees of (near-)fixed size but very
// different heights are compared under the synchronous daemon; the
// rounds/h column is the witness.
func T2STNOHeight(cfg Config) (*trace.Table, error) {
	shapes := []struct {
		name string
		g    *graph.Graph
	}{
		{"star (h=1)", graph.Star(64)},
		{"binary tree (h=5)", graph.KAryTree(63, 2)},
		{"caterpillar (h≈21)", graph.Caterpillar(21, 2)},
		{"path (h=63)", graph.Path(64)},
	}
	if cfg.Quick {
		shapes = shapes[:3]
	}
	trials := cfg.trials(5)
	rng := rand.New(rand.NewSource(cfg.Seed))
	tb := trace.NewTable(
		"T2 (§4.2.3) — STNO stabilization on a stable tree: O(h) rounds (median over trials, synchronous daemon)",
		"tree", "n", "height h", "rounds", "moves", "rounds/h")
	for _, sh := range shapes {
		g := sh.g
		_, parent := graph.BFSFrom(g, 0)
		h := graph.TreeHeight(parent, 0)
		var rounds, moves []int64
		for trial := 0; trial < trials; trial++ {
			sub, err := spantree.NewOracle(g, 0, parent)
			if err != nil {
				return nil, err
			}
			s, err := core.NewSTNO(g, sub, 0)
			if err != nil {
				return nil, err
			}
			s.Randomize(rng)
			sys := program.NewSystem(s, daemon.NewSynchronous(cfg.Seed+int64(trial)))
			res, err := sys.RunUntilLegitimate(stepBudget(g))
			if err != nil || !res.Converged {
				return nil, fmt.Errorf("T2: STNO did not stabilize on %s: %v", sh.name, err)
			}
			rounds = append(rounds, res.Rounds)
			moves = append(moves, res.Moves)
		}
		medRounds := medianInt64(rounds)
		tb.AddRow(sh.name, g.N(), h, medRounds, medianInt64(moves), medRounds/float64(h))
	}
	return tb, nil
}

// guardCountingProto wraps a protocol and counts Enabled calls — the
// machine-independent cost metric of the scheduler comparison: the
// incremental runner should evaluate O(Δ) guards per step, the
// full-scan oracle evaluates n (plus the pending rescan).
type guardCountingProto struct {
	program.Protocol
	inf   program.Influencer
	evals int64
}

func wrapCounting(p program.Protocol) *guardCountingProto {
	inf, _ := p.(program.Influencer)
	return &guardCountingProto{Protocol: p, inf: inf}
}

func (p *guardCountingProto) Enabled(v graph.NodeID, buf []program.ActionID) []program.ActionID {
	p.evals++
	return p.Protocol.Enabled(v, buf)
}

// Influence forwards the wrapped protocol's locality declaration, so
// the incremental scheduler keeps its dirty sets tight.
func (p *guardCountingProto) Influence(v graph.NodeID, a program.ActionID, buf []graph.NodeID) []graph.NodeID {
	if p.inf != nil {
		return p.inf.Influence(v, a, buf)
	}
	return program.InfluenceClosedNeighborhood(p.Graph(), v, buf)
}

// T11SchedulerScaling measures the tentpole claim of the event-driven
// incremental scheduler: per-step cost is O(Δ) guard evaluations
// independent of n, against the full-scan oracle's Θ(n). The
// self-stabilizing token circulation runs from identical random
// configurations on rings and grids up to 16k nodes (the "≥10k nodes"
// regime where the asymptotic win shows) under same-seeded central
// daemons; both schedulers take the same fixed number of steps and the
// table reports guard evaluations per step and wall-clock per step for
// each, plus the speedup. Executions are bit-identical (the
// differential suite asserts this exhaustively), so the two columns
// measure the same computation scheduled two ways.
func T11SchedulerScaling(cfg Config) (*trace.Table, error) {
	type point struct {
		name string
		mk   func() *graph.Graph
	}
	points := []point{
		{"ring:1024", func() *graph.Graph { return graph.Ring(1024) }},
		{"grid:64x64", func() *graph.Graph { return graph.Grid(64, 64) }},
		{"grid:100x100", func() *graph.Graph { return graph.Grid(100, 100) }},
		{"grid:128x128", func() *graph.Graph { return graph.Grid(128, 128) }},
		{"grid:256x256", func() *graph.Graph { return graph.Grid(256, 256) }},
	}
	// Quick mode shrinks the point set but keeps the per-point step
	// count: the ns/step cells stay comparable with (and matchable
	// against) the committed full baseline, which is what the CI
	// regression gate diffs.
	steps := 2000
	if cfg.Quick {
		points = points[:2]
	}
	tb := trace.NewTable(
		"T11 — event-driven incremental scheduler vs full-scan oracle: guard evaluations and wall-clock per step (token circulation from a random configuration, central daemon)",
		"graph", "n", "m", "steps", "inc evals/step", "full evals/step", "inc ns/step", "full ns/step", "speedup")
	for _, pt := range points {
		g := pt.mk()
		run := func(full bool) (evalsPerStep float64, nsPerStep float64, err error) {
			c, err := token.NewCirculator(g, 0)
			if err != nil {
				return 0, 0, err
			}
			c.Randomize(rand.New(rand.NewSource(cfg.Seed)))
			w := wrapCounting(c)
			var sys *program.System
			if full {
				sys = program.NewSystemFullScan(w, daemon.NewCentral(cfg.Seed))
			} else {
				sys = program.NewSystem(w, daemon.NewCentral(cfg.Seed))
			}
			if _, err := sys.Step(); err != nil { // bootstrap scan outside the measurement
				return 0, 0, err
			}
			w.evals = 0
			startT := time.Now()
			for i := 0; i < steps; i++ {
				n, err := sys.Step()
				if err != nil {
					return 0, 0, err
				}
				if n == 0 {
					return 0, 0, fmt.Errorf("T11: %s went terminal after %d steps", pt.name, i)
				}
			}
			elapsed := time.Since(startT)
			return float64(w.evals) / float64(steps), float64(elapsed.Nanoseconds()) / float64(steps), nil
		}
		incEvals, incNs, err := run(false)
		if err != nil {
			return nil, err
		}
		fullEvals, fullNs, err := run(true)
		if err != nil {
			return nil, err
		}
		tb.AddRow(pt.name, g.N(), g.M(), steps, incEvals, fullEvals, incNs, fullNs, fullNs/incNs)
	}
	return tb, nil
}

// scanCountingDFTNO wraps a DFTNO stack and counts Legitimate() calls
// — each one is an O(n) scan. The promoted methods keep the wrapper a
// full Protocol+Influencer+Witness, so it runs under either legitimacy
// path; the witness path must leave the counter at zero.
type scanCountingDFTNO struct {
	*core.DFTNO
	scans int64
}

func (d *scanCountingDFTNO) Legitimate() bool {
	d.scans++
	return d.DFTNO.Legitimate()
}

// T12WitnessLegitimacy measures the incremental legitimacy witness
// against the O(n) Legitimate() scan in RunUntilLegitimate loops on
// the full DFTNO stack — the second half of the "O(Δ) steps end to
// end" claim (the EnabledSet daemon API being the first). Two phases
// per graph, same-seeded on both sides:
//
//   - stabilize: run from a random configuration to legitimacy. The
//     witness-backed run performs exactly one O(n) pass (the arming
//     reset); the scan-backed run evaluates Legitimate() after every
//     step.
//   - monitor: from the legitimate configuration, drive the circulation
//     for a fixed number of steps with a per-step legitimacy verdict —
//     the steady-state regime, where the scan pays the full chain walk
//     every step and the witness answers from counters in O(1).
//
// The "wit scans" column is the witness run's Legitimate() count: its
// being 0 is the "zero O(n) legitimacy scans in steady state" claim,
// measured rather than asserted.
func T12WitnessLegitimacy(cfg Config) (*trace.Table, error) {
	type point struct {
		name string
		mk   func() *graph.Graph
	}
	points := []point{
		{"grid:16x16", func() *graph.Graph { return graph.Grid(16, 16) }},
		{"grid:32x32", func() *graph.Graph { return graph.Grid(32, 32) }},
		{"grid:64x64", func() *graph.Graph { return graph.Grid(64, 64) }},
	}
	// As in T11, quick mode shrinks the point set only, so every
	// quick row matches a committed-baseline row for the CI gate.
	monitorSteps := 20000
	if cfg.Quick {
		points = points[:2]
	}
	tb := trace.NewTable(
		"T12 — incremental legitimacy witness vs O(n) Legitimate() scan (DFTNO over the circulator, central daemon): stabilization from a random configuration and steady-state monitoring",
		"phase", "graph", "n", "steps", "wit scans", "scan scans", "wit ns/step", "scan ns/step", "speedup")
	for _, pt := range points {
		g := pt.mk()
		build := func() (*scanCountingDFTNO, error) {
			d, err := newDFTNO(g, 0)
			if err != nil {
				return nil, err
			}
			return &scanCountingDFTNO{DFTNO: d}, nil
		}
		// Phase 1: stabilization. The witness side uses the runner's
		// witness path (RunUntilLegitimate arms it); the scan side
		// forces the predicate through the counting wrapper.
		stabilize := func(useWitness bool) (steps int64, scans int64, nsPerStep float64, err error) {
			d, err := build()
			if err != nil {
				return 0, 0, 0, err
			}
			d.Randomize(rand.New(rand.NewSource(cfg.Seed)))
			sys := program.NewSystem(d, daemon.NewCentral(cfg.Seed))
			startT := time.Now()
			var res program.RunResult
			if useWitness {
				res, err = sys.RunUntilLegitimate(stepBudget(g))
			} else {
				res, err = sys.RunUntil(d.Legitimate, stepBudget(g))
			}
			if err != nil || !res.Converged {
				return 0, 0, 0, fmt.Errorf("T12: %s did not stabilize: %v", pt.name, err)
			}
			elapsed := time.Since(startT)
			return res.Steps, d.scans, float64(elapsed.Nanoseconds()) / float64(res.Steps), nil
		}
		witSteps, witScans, witNs, err := stabilize(true)
		if err != nil {
			return nil, err
		}
		scanSteps, scanScans, scanNs, err := stabilize(false)
		if err != nil {
			return nil, err
		}
		if witSteps != scanSteps {
			return nil, fmt.Errorf("T12: witness and scan stabilizations diverged (%d vs %d steps) — predicates disagree", witSteps, scanSteps)
		}
		tb.AddRow("stabilize", pt.name, g.N(), witSteps, witScans, scanScans, witNs, scanNs, scanNs/witNs)

		// Phase 2: steady-state monitoring of the legitimate system.
		monitor := func(useWitness bool) (scans int64, nsPerStep float64, err error) {
			d, err := build()
			if err != nil {
				return 0, 0, err
			}
			sys := program.NewSystem(d, daemon.NewCentral(cfg.Seed))
			pred := d.Legitimate
			if useWitness {
				// Arm the witness through the runner, then keep the
				// verdict per step; the arming reset is the single
				// O(n) pass of this run.
				if _, err := sys.RunUntilLegitimate(1); err != nil {
					return 0, 0, err
				}
				pred = d.WitnessLegitimate
			}
			startT := time.Now()
			ok, err := sys.HoldsFor(pred, int64(monitorSteps))
			if err != nil || !ok {
				return 0, 0, fmt.Errorf("T12: %s left the legitimate set while monitored: %v", pt.name, err)
			}
			elapsed := time.Since(startT)
			return d.scans, float64(elapsed.Nanoseconds()) / float64(monitorSteps), nil
		}
		witScans, witNs, err = monitor(true)
		if err != nil {
			return nil, err
		}
		scanScans, scanNs, err = monitor(false)
		if err != nil {
			return nil, err
		}
		tb.AddRow("monitor", pt.name, g.N(), monitorSteps, witScans, scanScans, witNs, scanNs, scanNs/witNs)
	}
	return tb, nil
}

package experiments

import (
	"fmt"
	"math/rand"

	"netorient/internal/core"
	"netorient/internal/daemon"
	"netorient/internal/graph"
	"netorient/internal/program"
	"netorient/internal/spantree"
	"netorient/internal/trace"
)

// spantreeDFSOracle wraps the fixed port-ordered DFS tree of g as a
// tree substrate.
func spantreeDFSOracle(g *graph.Graph) (core.TreeSubstrate, error) {
	return spantree.NewDFSOracle(g, 0)
}

// T1DFTNOScaling measures §3.2.3: after the token circulation layer
// has stabilized, DFTNO stabilizes in O(n) moves. For each topology
// and size, the full stack starts from a random configuration, runs
// until the substrate alone is legitimate, then counts the extra
// moves/rounds to full orientation legitimacy. The moves/n column is
// the linearity witness: it stays bounded as n grows.
func T1DFTNOScaling(cfg Config) (*trace.Table, error) {
	sizes := []int{8, 16, 32, 64, 128}
	if cfg.Quick {
		sizes = []int{8, 16, 32}
	}
	topologies := []struct {
		name string
		mk   func(n int, rng *rand.Rand) *graph.Graph
	}{
		{"ring", func(n int, _ *rand.Rand) *graph.Graph { return graph.Ring(n) }},
		{"binary-tree", func(n int, _ *rand.Rand) *graph.Graph { return graph.KAryTree(n, 2) }},
		{"random(+n/2)", func(n int, rng *rand.Rand) *graph.Graph { return graph.RandomConnected(n, n/2, rng) }},
	}
	trials := cfg.trials(5)
	rng := rand.New(rand.NewSource(cfg.Seed))
	tb := trace.NewTable(
		"T1 (§3.2.3) — DFTNO stabilization after the token layer stabilizes: O(n) moves (median over trials)",
		"topology", "n", "m", "moves", "rounds", "moves/n")
	for _, topo := range topologies {
		for _, n := range sizes {
			g := topo.mk(n, rng)
			var moves, rounds []int64
			for trial := 0; trial < trials; trial++ {
				d, err := newDFTNO(g, 0)
				if err != nil {
					return nil, err
				}
				d.Randomize(rng)
				sys := program.NewSystem(d, daemon.NewCentral(cfg.Seed+int64(trial)))
				// Phase 1: substrate stabilization (not charged to DFTNO).
				sub := d.Substrate()
				res, err := sys.RunUntil(sub.Legitimate, stepBudget(g))
				if err != nil || !res.Converged {
					return nil, fmt.Errorf("T1: substrate did not stabilize on %s n=%d: %v", topo.name, n, err)
				}
				// Phase 2: orientation stabilization, counted.
				sys.ResetCounters()
				res, err = sys.RunUntilLegitimate(stepBudget(g))
				if err != nil || !res.Converged {
					return nil, fmt.Errorf("T1: orientation did not stabilize on %s n=%d: %v", topo.name, n, err)
				}
				moves = append(moves, res.Moves)
				rounds = append(rounds, res.Rounds)
			}
			medMoves := medianInt64(moves)
			tb.AddRow(topo.name, n, g.M(), medMoves, medianInt64(rounds), medMoves/float64(n))
		}
	}
	return tb, nil
}

// T2STNOHeight measures §4.2.3: after the spanning tree is stable,
// STNO stabilizes in O(h) rounds. Trees of (near-)fixed size but very
// different heights are compared under the synchronous daemon; the
// rounds/h column is the witness.
func T2STNOHeight(cfg Config) (*trace.Table, error) {
	shapes := []struct {
		name string
		g    *graph.Graph
	}{
		{"star (h=1)", graph.Star(64)},
		{"binary tree (h=5)", graph.KAryTree(63, 2)},
		{"caterpillar (h≈21)", graph.Caterpillar(21, 2)},
		{"path (h=63)", graph.Path(64)},
	}
	if cfg.Quick {
		shapes = shapes[:3]
	}
	trials := cfg.trials(5)
	rng := rand.New(rand.NewSource(cfg.Seed))
	tb := trace.NewTable(
		"T2 (§4.2.3) — STNO stabilization on a stable tree: O(h) rounds (median over trials, synchronous daemon)",
		"tree", "n", "height h", "rounds", "moves", "rounds/h")
	for _, sh := range shapes {
		g := sh.g
		_, parent := graph.BFSFrom(g, 0)
		h := graph.TreeHeight(parent, 0)
		var rounds, moves []int64
		for trial := 0; trial < trials; trial++ {
			sub, err := spantree.NewOracle(g, 0, parent)
			if err != nil {
				return nil, err
			}
			s, err := core.NewSTNO(g, sub, 0)
			if err != nil {
				return nil, err
			}
			s.Randomize(rng)
			sys := program.NewSystem(s, daemon.NewSynchronous(cfg.Seed+int64(trial)))
			res, err := sys.RunUntilLegitimate(stepBudget(g))
			if err != nil || !res.Converged {
				return nil, fmt.Errorf("T2: STNO did not stabilize on %s: %v", sh.name, err)
			}
			rounds = append(rounds, res.Rounds)
			moves = append(moves, res.Moves)
		}
		medRounds := medianInt64(rounds)
		tb.AddRow(sh.name, g.N(), h, medRounds, medianInt64(moves), medRounds/float64(h))
	}
	return tb, nil
}

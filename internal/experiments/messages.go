package experiments

import (
	"fmt"

	"netorient/internal/apps"
	"netorient/internal/graph"
	"netorient/internal/trace"
)

// T5SoDBenefit quantifies the paper's motivation (§1.3, §1.4, Ch.5,
// after Santoro): once the network is oriented, fundamental
// computations need fewer messages. Broadcast by flooding
// (2m−(n−1) messages) and depth-first traversal without orientation
// (2m) are compared against the SoD-exploiting traversal/broadcast
// (2(n−1)) and, where the source is adjacent to everyone, direct
// addressing (n−1). The orientation itself is produced by DFTNO.
func T5SoDBenefit(cfg Config) (*trace.Table, error) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"ring-16", graph.Ring(16)},
		{"torus-4x4", graph.Torus(4, 4)},
		{"hypercube-4", graph.Hypercube(4)},
		{"clique-12", graph.Complete(12)},
		{"clique-24", graph.Complete(24)},
	}
	if cfg.Quick {
		graphs = graphs[:4]
	}
	tb := trace.NewTable(
		"T5 (§1.3/§1.4/Ch.5) — message complexity with vs without the chordal sense of direction",
		"graph", "n", "m", "flood bcast", "DFT no SoD", "DFT with SoD", "direct (clique)", "SoD speedup")
	for _, gr := range graphs {
		g := gr.g
		d, err := newDFTNO(g, 0)
		if err != nil {
			return nil, err
		}
		l := d.Labeling()
		flood, _ := apps.FloodBroadcast(g, 0)
		noSoD := apps.TraverseNoSoD(g, 0)
		withSoD, err := apps.TraverseWithSoD(g, l, 0)
		if err != nil {
			return nil, fmt.Errorf("T5: %s: %w", gr.name, err)
		}
		direct := "-"
		if msgs, ok := apps.DirectBroadcastMessages(g, 0); ok {
			direct = fmt.Sprintf("%d", msgs)
		}
		tb.AddRow(gr.name, g.N(), g.M(), flood, noSoD, withSoD, direct,
			float64(noSoD)/float64(withSoD))
	}
	return tb, nil
}

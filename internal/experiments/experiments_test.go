package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// TestAllExperimentsProduceTables runs every experiment in quick mode
// and checks each produces a non-empty, renderable table. This is the
// end-to-end integration test of the reproduction harness.
func TestAllExperimentsProduceTables(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			tb, err := e.Run(Config{Seed: 42, Quick: true})
			if err != nil {
				t.Fatalf("%s (%s): %v", e.ID, e.Artefact, err)
			}
			if tb.Rows() == 0 {
				t.Fatalf("%s produced an empty table", e.ID)
			}
			var buf bytes.Buffer
			if err := tb.Render(&buf); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(buf.String(), e.ID) {
				t.Errorf("%s: table title %q does not carry the experiment id", e.ID, tb.Title)
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("T1"); !ok {
		t.Error("T1 missing")
	}
	if _, ok := ByID("zzz"); ok {
		t.Error("unknown id found")
	}
}

// TestExperimentsAreDeterministic: equal seeds yield equal tables.
func TestExperimentsAreDeterministic(t *testing.T) {
	for _, id := range []string{"F2", "T5", "T8"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		render := func() string {
			tb, err := e.Run(Config{Seed: 7, Quick: true})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := tb.Render(&buf); err != nil {
				t.Fatal(err)
			}
			return buf.String()
		}
		if render() != render() {
			t.Errorf("%s is not deterministic under a fixed seed", id)
		}
	}
}

// TestT1LinearityShape asserts the headline claim numerically: the
// moves/n ratio of the largest size is within 3× of the smallest — a
// loose but meaningful O(n) witness.
func TestT1LinearityShape(t *testing.T) {
	tb, err := T1DFTNOScaling(Config{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	var csv bytes.Buffer
	if err := tb.RenderCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")[1:]
	perTopo := map[string][]float64{}
	for _, line := range lines {
		f := strings.Split(line, ",")
		topo := f[0]
		var ratio float64
		if _, err := fmt.Sscan(f[len(f)-1], &ratio); err != nil {
			t.Fatalf("bad ratio %q: %v", f[len(f)-1], err)
		}
		perTopo[topo] = append(perTopo[topo], ratio)
	}
	for topo, ratios := range perTopo {
		first, last := ratios[0], ratios[len(ratios)-1]
		if last > 3*first+1 {
			t.Errorf("%s: moves/n grew from %.2f to %.2f — not O(n)-shaped", topo, first, last)
		}
	}
}

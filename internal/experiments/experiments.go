// Package experiments implements the paper-reproduction harness: one
// runner per figure and complexity claim of the evaluation (the
// experiment index of DESIGN.md §5). Each runner returns a plain-text
// table with the rows the paper's artefact corresponds to; cmd/benchtab
// regenerates all of them and bench_test.go wraps each in a
// testing.B benchmark.
package experiments

import (
	"fmt"
	"math/rand"

	"netorient/internal/core"
	"netorient/internal/graph"
	"netorient/internal/program"
	"netorient/internal/spantree"
	"netorient/internal/token"
	"netorient/internal/trace"
)

// Config parameterises a run.
type Config struct {
	// Seed drives every random choice; equal seeds give equal tables.
	Seed int64
	// Quick shrinks sweeps for use inside tests and benchmarks.
	Quick bool
	// Trials overrides the per-point repetition count (0 = default).
	Trials int
	// Workers adds a worker count to experiments that sweep the
	// sharded parallel stepper (T16/T17); 0 keeps the default sweep.
	Workers int
	// FrontierWaves turns on batched wave execution of the boundary
	// pass for experiments that build the parallel stepper with a
	// single mode (T16); T17 sweeps waves on its own rows regardless.
	FrontierWaves bool
	// ReshardImbalance and ReshardMinInterval arm the work-driven
	// resharding policy on the parallel-stepper experiments
	// (program.ReshardPolicy); an imbalance ≤ 1 leaves it off.
	ReshardImbalance   float64
	ReshardMinInterval int64
}

// reshardPolicy assembles the ReshardPolicy the CLI flags describe.
func (c Config) reshardPolicy() program.ReshardPolicy {
	return program.ReshardPolicy{Imbalance: c.ReshardImbalance, MinInterval: c.ReshardMinInterval}
}

func (c Config) trials(def int) int {
	if c.Trials > 0 {
		return c.Trials
	}
	if c.Quick && def > 3 {
		return 3
	}
	return def
}

// Runner produces one experiment table.
type Runner func(cfg Config) (*trace.Table, error)

// Experiment pairs an id with its runner and the paper artefact it
// reproduces.
type Experiment struct {
	ID       string
	Artefact string
	Run      Runner
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"F1", "Figure 2.2.1 — chordal sense of direction", F1Chordal},
		{"F2", "Figure 3.1.1 — DFTNO node labeling trace", F2DFTNOTrace},
		{"F3", "Figure 4.1.1 — STNO weights and naming", F3STNOTrace},
		{"T1", "§3.2.3 — DFTNO stabilizes in O(n) after the token layer", T1DFTNOScaling},
		{"T2", "§4.2.3 — STNO stabilizes in O(h) after the tree layer", T2STNOHeight},
		{"T3", "§3.2.3/§4.2.3/Ch.5 — space O(Δ·log N) and substrate overheads", T3Space},
		{"T4", "Thms 3.2.3/4.2.3 — recovery from k-node transient faults", T4Recovery},
		{"T5", "§1.3/§1.4/Ch.5 — orientation cuts message complexity (Santoro)", T5SoDBenefit},
		{"T6", "Ch.5 — STNO on a DFS tree names exactly like DFTNO", T6Equivalence},
		{"T7", "ablation — daemon models vs stabilization cost", T7Daemons},
		{"T8", "ablation — ψ port orders yield different valid orientations", T8Orderings},
		{"T9", "Ch.5/[25] — the sense of direction makes leader election cheaper", T9Election},
		{"T10", "§1.3 — greedy routing over the chordal labels: reach and stretch", T10Routing},
		{"T11", "scheduler — O(Δ) incremental guard re-evaluation vs Θ(n) full scan", T11SchedulerScaling},
		{"T12", "scheduler — incremental legitimacy witness vs O(n) Legitimate() scan", T12WitnessLegitimacy},
		{"T13", "dynamic topology — localized ApplyDelta invalidation and churn recovery", T13Churn},
		{"T14", "partition tolerance — per-component convergence while split, heal-time merge vs partition count", T14PartitionHeal},
		{"T15", "root failover — disconnection detection latency and acting-root re-anchoring vs orphan size", T15Failover},
		{"T16", "scheduler — sharded parallel stepper counted throughput vs worker count at n=2^20", T16ParallelStepper},
		{"T17", "scheduler — batched frontier waves + work-driven resharding: counted speedup and phase-B span vs the serialized boundary pass", T17FrontierWaves},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// newDFTNO builds a DFTNO stack over the self-stabilizing circulator.
func newDFTNO(g *graph.Graph, root graph.NodeID) (*core.DFTNO, error) {
	sub, err := token.NewCirculator(g, root)
	if err != nil {
		return nil, err
	}
	return core.NewDFTNO(g, sub, 0)
}

// newSTNO builds an STNO stack over the self-stabilizing BFS tree.
func newSTNO(g *graph.Graph, root graph.NodeID) (*core.STNO, error) {
	sub, err := spantree.NewBFSTree(g, root)
	if err != nil {
		return nil, err
	}
	return core.NewSTNO(g, sub, 0)
}

// stabilizeFrom randomizes p and runs it to legitimacy, returning the
// run result.
func stabilizeFrom(p program.Protocol, rng *rand.Rand, d program.Daemon, maxSteps int64) (program.RunResult, error) {
	if r, ok := p.(program.Randomizer); ok {
		r.Randomize(rng)
	}
	sys := program.NewSystem(p, d)
	res, err := sys.RunUntilLegitimate(maxSteps)
	if err != nil {
		return res, err
	}
	if !res.Converged {
		return res, fmt.Errorf("experiments: %s did not converge within %d steps", p.Name(), maxSteps)
	}
	return res, nil
}

// stepBudget is a generous per-experiment step bound.
func stepBudget(g *graph.Graph) int64 {
	return int64(20000 * (g.N() + g.M()))
}

// medianInt64 summarises samples for table rows.
func medianInt64(xs []int64) float64 {
	return trace.SummarizeInts(xs).Median
}

// Package sod implements the chordal sense of direction of §2.2: a
// cyclic ordering ψ of the nodes (induced by unique node names) with
// every link labeled by the cyclic distance it spans. It provides the
// labeling container the orientation protocols produce, the validation
// of the paper's specification (SP1, SP2, local orientation, edge
// symmetry), name translation across edges, and SoD-based routing.
package sod

import (
	"errors"
	"fmt"

	"netorient/internal/graph"
)

// Labeling is a (candidate) chordal labeling: node names η and, for
// every node, one label per incident port.
type Labeling struct {
	// Modulus is N, the agreed upper bound on the number of nodes
	// (§2.2: "each node is aware of the total number of nodes").
	Modulus int
	// Names holds η_v for every node.
	Names []int
	// Labels holds π_v[port] for every node and port.
	Labels [][]int
}

// Validation errors.
var (
	ErrShape = errors.New("sod: labeling shape does not match graph")
)

// SP1Error reports a violation of SP1 (unique names in 0..N-1).
type SP1Error struct {
	Node graph.NodeID
	Name int
	Dup  graph.NodeID // other node with the same name, or None
}

func (e *SP1Error) Error() string {
	if e.Dup != graph.None {
		return fmt.Sprintf("sod: SP1 violated: nodes %d and %d share name %d", e.Node, e.Dup, e.Name)
	}
	return fmt.Sprintf("sod: SP1 violated: node %d has out-of-range name %d", e.Node, e.Name)
}

// SP2Error reports a violation of SP2 (π_p[l] = (η_p − η_q) mod N).
type SP2Error struct {
	Node graph.NodeID
	Port int
	Got  int
	Want int
}

func (e *SP2Error) Error() string {
	return fmt.Sprintf("sod: SP2 violated at node %d port %d: label %d, want %d", e.Node, e.Port, e.Got, e.Want)
}

// Mod returns x mod n in 0..n-1 for any sign of x.
func Mod(x, n int) int {
	m := x % n
	if m < 0 {
		m += n
	}
	return m
}

// ChordalLabel returns the SP2 label of the edge p→q: (η_p − η_q) mod N.
func ChordalLabel(etaP, etaQ, modulus int) int {
	return Mod(etaP-etaQ, modulus)
}

// FromNames builds the chordal labeling induced by the given names —
// the computation each node performs locally once SP1 holds (§2.3).
func FromNames(g *graph.Graph, names []int, modulus int) *Labeling {
	l := &Labeling{
		Modulus: modulus,
		Names:   make([]int, g.N()),
		Labels:  make([][]int, g.N()),
	}
	copy(l.Names, names)
	for v := 0; v < g.N(); v++ {
		nbrs := g.Neighbors(graph.NodeID(v))
		l.Labels[v] = make([]int, len(nbrs))
		for port, q := range nbrs {
			l.Labels[v][port] = ChordalLabel(names[v], names[q], modulus)
		}
	}
	return l
}

// Validate checks the full specification SP_NO of §2.3 plus the
// derived properties of §1.3: SP1 (globally unique in-range names),
// SP2 (chordal edge labels), local orientation (labels injective at
// every node) and edge symmetry (π_p = N − π_q across every edge).
func (l *Labeling) Validate(g *graph.Graph) error {
	if len(l.Names) != g.N() || len(l.Labels) != g.N() || l.Modulus < g.N() {
		return ErrShape
	}
	seen := make(map[int]graph.NodeID, g.N())
	for v := 0; v < g.N(); v++ {
		name := l.Names[v]
		if name < 0 || name >= l.Modulus {
			return &SP1Error{Node: graph.NodeID(v), Name: name, Dup: graph.None}
		}
		if other, dup := seen[name]; dup {
			return &SP1Error{Node: graph.NodeID(v), Name: name, Dup: other}
		}
		seen[name] = graph.NodeID(v)
	}
	// First pass: SP2 and local orientation at every node.
	for v := 0; v < g.N(); v++ {
		nbrs := g.Neighbors(graph.NodeID(v))
		if len(l.Labels[v]) != len(nbrs) {
			return ErrShape
		}
		local := make(map[int]bool, len(nbrs))
		for port, q := range nbrs {
			want := ChordalLabel(l.Names[v], l.Names[q], l.Modulus)
			got := l.Labels[v][port]
			if got != want {
				return &SP2Error{Node: graph.NodeID(v), Port: port, Got: got, Want: want}
			}
			if local[got] {
				return fmt.Errorf("sod: local orientation violated at node %d: duplicate label %d", v, got)
			}
			local[got] = true
		}
	}
	// Second pass: edge symmetry — the label at the far end must be
	// the inverse modulo N.
	for v := 0; v < g.N(); v++ {
		for port, q := range g.Neighbors(graph.NodeID(v)) {
			backPort, ok := g.PortOf(q, graph.NodeID(v))
			if !ok {
				return ErrShape
			}
			got, back := l.Labels[v][port], l.Labels[q][backPort]
			if Mod(got+back, l.Modulus) != 0 {
				return fmt.Errorf("sod: edge symmetry violated on {%d,%d}: %d + %d ≢ 0 (mod %d)",
					v, q, got, back, l.Modulus)
			}
		}
	}
	return nil
}

// CyclicDistance returns the distance between names a and b on the
// N-cycle: min((a−b) mod N, (b−a) mod N).
func CyclicDistance(a, b, modulus int) int {
	d := Mod(a-b, modulus)
	if inv := modulus - d; inv < d {
		return inv
	}
	return d
}

// TranslateName returns the name of the neighbour reached through the
// given port, derived purely from local information — the translation
// property of a sense of direction (Chapter 5): η_q = (η_p − π_p[l])
// mod N.
func (l *Labeling) TranslateName(v graph.NodeID, port int) int {
	return Mod(l.Names[v]-l.Labels[v][port], l.Modulus)
}

// NodeByName returns the node carrying the given name, or None.
func (l *Labeling) NodeByName(name int) graph.NodeID {
	for v, n := range l.Names {
		if n == name {
			return graph.NodeID(v)
		}
	}
	return graph.None
}

// Clone returns a deep copy.
func (l *Labeling) Clone() *Labeling {
	c := &Labeling{
		Modulus: l.Modulus,
		Names:   make([]int, len(l.Names)),
		Labels:  make([][]int, len(l.Labels)),
	}
	copy(c.Names, l.Names)
	for i, row := range l.Labels {
		c.Labels[i] = make([]int, len(row))
		copy(c.Labels[i], row)
	}
	return c
}

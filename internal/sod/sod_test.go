package sod

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"netorient/internal/graph"
)

// identityNames returns names equal to node ids.
func identityNames(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestFromNamesProducesValidChordalLabeling(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"ring6":   graph.Ring(6),
		"clique5": graph.Complete(5),
		"grid3x3": graph.Grid(3, 3),
		"chordal": graph.PaperChordalExample(),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			l := FromNames(g, identityNames(g.N()), g.N())
			if err := l.Validate(g); err != nil {
				t.Fatalf("labeling invalid: %v", err)
			}
		})
	}
}

func TestValidateDetectsSP1Violations(t *testing.T) {
	g := graph.Ring(4)
	l := FromNames(g, []int{0, 1, 1, 3}, 4) // duplicate name
	var sp1 *SP1Error
	if err := l.Validate(g); !errors.As(err, &sp1) {
		t.Fatalf("got %v, want SP1Error", err)
	}
	l = FromNames(g, []int{0, 1, 2, 9}, 4) // out of range
	if err := l.Validate(g); !errors.As(err, &sp1) {
		t.Fatalf("got %v, want SP1Error", err)
	}
}

func TestValidateDetectsSP2Violations(t *testing.T) {
	g := graph.Ring(4)
	l := FromNames(g, identityNames(4), 4)
	l.Labels[1][0] = (l.Labels[1][0] + 1) % 4 // corrupt one label
	var sp2 *SP2Error
	if err := l.Validate(g); !errors.As(err, &sp2) {
		t.Fatalf("got %v, want SP2Error", err)
	}
}

func TestValidateDetectsShapeMismatch(t *testing.T) {
	g := graph.Ring(4)
	l := FromNames(g, identityNames(4), 4)
	l.Names = l.Names[:3]
	if err := l.Validate(g); !errors.Is(err, ErrShape) {
		t.Fatalf("got %v, want ErrShape", err)
	}
	l = FromNames(g, identityNames(4), 3) // modulus below n
	if err := l.Validate(g); !errors.Is(err, ErrShape) {
		t.Fatalf("got %v, want ErrShape", err)
	}
}

// TestChordalInverseProperty (§2.2): if the link is labeled d at p, it
// is labeled N−d at q — property-checked over random graphs and random
// permutation namings.
func TestChordalInverseProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, extraRaw uint8) bool {
		n := 3 + int(nRaw%20)
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomConnected(n, int(extraRaw%10), rng)
		names := rng.Perm(n)
		l := FromNames(g, names, n)
		if err := l.Validate(g); err != nil {
			return false
		}
		for v := 0; v < n; v++ {
			for port, q := range g.Neighbors(graph.NodeID(v)) {
				back, _ := g.PortOf(q, graph.NodeID(v))
				if Mod(l.Labels[v][port]+l.Labels[q][back], n) != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestTranslateNameProperty: the name derived across any edge matches
// the neighbour's actual name — the SoD translation property.
func TestTranslateNameProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 3 + int(nRaw%20)
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomConnected(n, n/2, rng)
		names := rng.Perm(n)
		l := FromNames(g, names, n)
		for v := 0; v < n; v++ {
			for port, q := range g.Neighbors(graph.NodeID(v)) {
				if l.TranslateName(graph.NodeID(v), port) != names[q] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNodeByName(t *testing.T) {
	g := graph.Ring(5)
	names := []int{3, 1, 4, 0, 2}
	l := FromNames(g, names, 5)
	for v, name := range names {
		if got := l.NodeByName(name); got != graph.NodeID(v) {
			t.Errorf("NodeByName(%d) = %d, want %d", name, got, v)
		}
	}
	if l.NodeByName(99) != graph.None {
		t.Error("unknown name should map to None")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := graph.Ring(4)
	l := FromNames(g, identityNames(4), 4)
	c := l.Clone()
	c.Names[0] = 99
	c.Labels[0][0] = 99
	if l.Names[0] == 99 || l.Labels[0][0] == 99 {
		t.Fatal("clone shares storage with original")
	}
}

func TestMod(t *testing.T) {
	cases := []struct{ x, n, want int }{
		{5, 4, 1}, {-1, 4, 3}, {-5, 4, 3}, {0, 7, 0}, {8, 4, 0}, {-8, 4, 0},
	}
	for _, c := range cases {
		if got := Mod(c.x, c.n); got != c.want {
			t.Errorf("Mod(%d,%d) = %d, want %d", c.x, c.n, got, c.want)
		}
	}
}

func TestRouteOnRing(t *testing.T) {
	// On an oriented ring, greedy routing takes the short way round.
	n := 8
	g := graph.Ring(n)
	l := FromNames(g, identityNames(n), n)
	path, err := l.Route(g, 0, 3, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 4 {
		t.Fatalf("route 0→3 took %d hops, want 3: %v", len(path)-1, path)
	}
	path, err = l.Route(g, 0, 6, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 {
		t.Fatalf("route 0→6 took %d hops, want 2 (short way): %v", len(path)-1, path)
	}
}

func TestRouteOnClique(t *testing.T) {
	// On a clique every route is one hop.
	n := 6
	g := graph.Complete(n)
	l := FromNames(g, identityNames(n), n)
	for target := 1; target < n; target++ {
		path, err := l.Route(g, 0, target, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(path) != 2 {
			t.Fatalf("clique route 0→%d took %d hops, want 1", target, len(path)-1)
		}
	}
}

func TestRouteToSelf(t *testing.T) {
	g := graph.Ring(5)
	l := FromNames(g, identityNames(5), 5)
	path, err := l.Route(g, 2, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 1 || path[0] != 2 {
		t.Fatalf("self route = %v, want [2]", path)
	}
}

func TestRouteUnknownName(t *testing.T) {
	g := graph.Ring(5)
	l := FromNames(g, identityNames(5), 5)
	if _, err := l.Route(g, 0, 77, 10); !errors.Is(err, ErrUnknownName) {
		t.Fatalf("got %v, want ErrUnknownName", err)
	}
}

// TestRouteAlwaysSucceedsOnRingsAndCliques (property).
func TestRouteAlwaysSucceedsOnRingsAndCliques(t *testing.T) {
	f := func(nRaw, fromRaw, toRaw uint8, clique bool) bool {
		n := 3 + int(nRaw%12)
		var g *graph.Graph
		if clique {
			g = graph.Complete(n)
		} else {
			g = graph.Ring(n)
		}
		l := FromNames(g, identityNames(n), n)
		from := graph.NodeID(int(fromRaw) % n)
		to := int(toRaw) % n
		path, err := l.Route(g, from, to, n)
		if err != nil {
			return false
		}
		return l.Names[path[len(path)-1]] == to
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNextHopGreedyDirectEdgeWins(t *testing.T) {
	// When a direct edge to the target exists, greedy must take it.
	g := graph.PaperChordalExample() // 5-ring plus chord 0-2
	l := FromNames(g, identityNames(5), 5)
	port := l.NextHopGreedy(0, 2)
	if q := g.Neighbor(0, port); q != 2 {
		t.Fatalf("greedy from 0 to 2 picked node %d, want the chord to 2", q)
	}
}

package sod

import (
	"errors"
	"fmt"

	"netorient/internal/graph"
)

// Routing errors.
var (
	// ErrNoRoute is returned when greedy routing cannot make progress.
	ErrNoRoute = errors.New("sod: greedy routing stuck")
	// ErrUnknownName is returned for a target name no node carries.
	ErrUnknownName = errors.New("sod: unknown target name")
)

// NextHopGreedy picks the port to forward a message for targetName
// from node v using only the chordal labels: a neighbour reached over
// a label-l edge carries name (η_v − l) mod N, so the node can compute
// the remaining cyclic distance after every possible hop and chooses
// the port that minimizes it — strictly improving, or -1 if v already
// carries targetName or no neighbour improves. This greedy rule is
// optimal on rings and cliques and locally computable (the point of
// the sense of direction) on arbitrary graphs.
func (l *Labeling) NextHopGreedy(v graph.NodeID, targetName int) int {
	cur := CyclicDistance(l.Names[v], targetName, l.Modulus)
	if cur == 0 {
		return -1
	}
	bestPort, bestDist := -1, cur
	for port := range l.Labels[v] {
		after := CyclicDistance(l.TranslateName(v, port), targetName, l.Modulus)
		if after < bestDist {
			bestDist, bestPort = after, port
		}
	}
	return bestPort
}

// Route greedily routes from node v to the node named targetName and
// returns the node path including both endpoints. It fails with
// ErrNoRoute if a cycle is detected or maxHops is exceeded.
func (l *Labeling) Route(g *graph.Graph, v graph.NodeID, targetName, maxHops int) ([]graph.NodeID, error) {
	if l.NodeByName(targetName) == graph.None {
		return nil, fmt.Errorf("%w %d", ErrUnknownName, targetName)
	}
	path := []graph.NodeID{v}
	seen := map[graph.NodeID]bool{v: true}
	cur := v
	for hop := 0; hop < maxHops; hop++ {
		if l.Names[cur] == targetName {
			return path, nil
		}
		port := l.NextHopGreedy(cur, targetName)
		if port < 0 {
			return nil, ErrNoRoute
		}
		next := g.Neighbor(cur, port)
		if seen[next] {
			return nil, fmt.Errorf("%w: revisited node %d", ErrNoRoute, next)
		}
		seen[next] = true
		path = append(path, next)
		cur = next
	}
	if l.Names[cur] == targetName {
		return path, nil
	}
	return nil, fmt.Errorf("%w: hop limit %d", ErrNoRoute, maxHops)
}

package sod

import (
	"testing"

	"netorient/internal/graph"
)

func benchLabeling(b *testing.B, g *graph.Graph) *Labeling {
	b.Helper()
	names := make([]int, g.N())
	for i := range names {
		names[i] = i
	}
	return FromNames(g, names, g.N())
}

func BenchmarkValidate(b *testing.B) {
	g := graph.Complete(64)
	l := benchLabeling(b, g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Validate(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFromNames(b *testing.B) {
	g := graph.Complete(64)
	names := make([]int, g.N())
	for i := range names {
		names[i] = i
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if l := FromNames(g, names, g.N()); l == nil {
			b.Fatal("nil labeling")
		}
	}
}

func BenchmarkRouteRing(b *testing.B) {
	g := graph.Ring(256)
	l := benchLabeling(b, g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Route(g, 0, 128, 300); err != nil {
			b.Fatal(err)
		}
	}
}

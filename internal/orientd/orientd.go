// Package orientd is the long-running orientation service: it boots
// any protocol stack from the library — wrapped in the root-failover
// layer — on a graph.Named topology, runs self-stabilization
// underneath on the message-passing actor runtime (or the sharded
// parallel stepper when Config.Workers ≥ 1), and serves queries and
// fault-injection verbs over an admin socket.
//
// The admin protocol is JSON lines: one request object per line, one
// response object per line, over a Unix or TCP stream socket. Query
// verbs (status, legitimacy, orientation, enabled, metrics) are
// read-only and safe to hammer from many clients at once — legitimacy
// answers come off the O(1) witness counters, never an O(n) scan.
// Fault verbs (corrupt, flap, cut, heal, crash-root, revive) perturb
// the running system exactly the way the simulation campaigns do:
// through protocol corruption hooks and graph deltas. The service
// keeps stabilizing underneath; clients watch it re-converge.
package orientd

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"netorient/internal/actor"
	"netorient/internal/core"
	"netorient/internal/failover"
	"netorient/internal/graph"
	"netorient/internal/program"
	"netorient/internal/spantree"
	"netorient/internal/token"
)

// Config describes one orientd instance.
type Config struct {
	// GraphSpec is a graph.Named spec, e.g. "grid:6x6" or
	// "gnp:24:0.2:7".
	GraphSpec string
	// Stack selects the protocol: dftno|stno|token|bfstree|dfstree.
	Stack string
	// Root is the fixed root processor. Defaults to 0.
	Root graph.NodeID
	// Listen is "unix:<path>" or "tcp:<host:port>". Defaults to
	// "tcp:127.0.0.1:0" (ephemeral port; read Addr after New).
	Listen string
	// Seed derives the runtime's RNG streams.
	Seed int64
	// Weighted enables the weighted acting-root election; Pins maps
	// nodes to operator priorities (implies Weighted when non-empty).
	Weighted bool
	Pins     map[graph.NodeID]int64
	// Actor tunes the message runtime (delivery faults, mailbox
	// capacity, tick). Seed is overridden by Config.Seed. Ignored when
	// Workers ≥ 1.
	Actor actor.Config
	// Workers selects the execution engine underneath the service:
	// 0 (default) runs the message-passing actor runtime; N ≥ 1 runs
	// the sharded parallel stepper with N workers — its own maximal
	// distributed daemon, so the Actor delivery-fault knobs do not
	// apply.
	Workers int
	// FrontierWaves enables batched concurrent wave execution of the
	// parallel stepper's boundary pass (Workers ≥ 1 only).
	FrontierWaves bool
	// ReshardImbalance and ReshardMinInterval arm the parallel
	// stepper's work-driven resharding policy
	// (program.ReshardPolicy); an imbalance ≤ 1 leaves it off.
	ReshardImbalance   float64
	ReshardMinInterval int64
}

// Request is one admin line.
type Request struct {
	Op   string `json:"op"`
	Node int    `json:"node,omitempty"`
	U    int    `json:"u,omitempty"`
	V    int    `json:"v,omitempty"`
}

// Response is one admin reply line.
type Response struct {
	OK   bool   `json:"ok"`
	Op   string `json:"op,omitempty"`
	Err  string `json:"err,omitempty"`
	Data any    `json:"data,omitempty"`
}

// Status is the "status" verb payload.
type Status struct {
	Stack       string `json:"stack"`
	Graph       string `json:"graph"`
	Nodes       int    `json:"nodes"`
	Edges       int    `json:"edges"`
	Components  int    `json:"components"`
	Legitimate  bool   `json:"legitimate"`
	Enabled     int    `json:"enabled"`
	Moves       int64  `json:"moves"`
	ActingRoots []int  `json:"acting_roots"`
	Clients     int64  `json:"clients"`
	UptimeMS    int64  `json:"uptime_ms"`
}

// Component is one entry of the "legitimacy" verb payload.
type Component struct {
	Size        int   `json:"size"`
	HasRoot     bool  `json:"has_root"`
	ActingRoots []int `json:"acting_roots"`
	Orphaned    int   `json:"orphaned"`
	Flaps       int64 `json:"flaps"`
}

// Legitimacy is the "legitimacy" verb payload: the composed O(1)
// verdict plus the per-component breakdown.
type Legitimacy struct {
	Legitimate  bool        `json:"legitimate"`
	Components  []Component `json:"components"`
	LeaderFlaps int64       `json:"leader_flaps"`
}

// Orientation is the "orientation" verb payload: whatever structure
// the stack exposes — node names for the orientation protocols,
// parent pointers for trees and the circulator.
type Orientation struct {
	Legitimate bool  `json:"legitimate"`
	Names      []int `json:"names,omitempty"`
	Parents    []int `json:"parents,omitempty"`
}

// ParallelMetrics is the parallel-stepper section of the "metrics"
// payload (Workers ≥ 1): per-shard cumulative phase-A work makes
// imbalance observable on the live service, frontier size and wave
// count make frontier fatness observable, and the rebuild/skip
// counters show how much classification work topology churn causes.
type ParallelMetrics struct {
	Workers          int     `json:"workers"`
	Steps            int64   `json:"steps"`
	Rounds           int64   `json:"rounds"`
	WorkUnits        int64   `json:"work_units"`
	SpanUnits        int64   `json:"span_units"`
	BoundarySpan     int64   `json:"boundary_span_units"`
	ShardWork        []int64 `json:"shard_work"`
	Frontier         int     `json:"frontier"`
	WaveSets         int     `json:"wave_sets"`
	Reshards         int64   `json:"reshards"`
	FrontierRebuilds int64   `json:"frontier_rebuilds"`
	WaveRebuilds     int64   `json:"wave_rebuilds"`
	ReclassSkips     int64   `json:"reclass_skips"`
	LastError        string  `json:"last_error,omitempty"`
}

// Metrics is the "metrics" verb payload. The embedded actor metrics
// are zero when the service runs on the parallel stepper; Parallel is
// nil when it runs on the actor runtime.
type Metrics struct {
	actor.Metrics
	Parallel *ParallelMetrics `json:"parallel,omitempty"`
	Requests int64            `json:"admin_requests"`
	Clients  int64            `json:"clients"`
}

// engine abstracts the execution runtime underneath the service: the
// message-passing actor runtime (Config.Workers == 0) or the sharded
// parallel stepper (Workers ≥ 1). Both keep stabilizing in the
// background while admin verbs read a consistent view via Locked.
type engine interface {
	Start() error
	Stop()
	Legitimate() bool
	EnabledCount() int
	EnabledNodes(buf []graph.NodeID) []graph.NodeID
	Moves() int64
	Locked(f func())
	CorruptNode(v graph.NodeID) error
	// Mutate applies one graph mutation and resynchronizes the engine
	// with the resulting delta. Implementations must not let a step
	// observe the mutated graph before the engine's caches are
	// reconciled.
	Mutate(f func() (graph.Delta, error)) error
}

// actorEngine adapts actor.Runtime to the engine interface.
type actorEngine struct{ *actor.Runtime }

func (a actorEngine) Mutate(f func() (graph.Delta, error)) error {
	var d graph.Delta
	var err error
	// The actor runtime tolerates the window between the mutation and
	// ApplyDelta: actors step against versioned ball caches and the
	// delta bumps every version, so stale reads are re-requested —
	// the same self-stabilizing recovery the protocol runs on.
	a.Locked(func() { d, err = f() })
	if err != nil {
		return err
	}
	a.ApplyDelta(d)
	return nil
}

// stepperHost drives a ParallelSystem as a long-running engine: a
// stepping goroutine fires distributed-daemon steps under the host
// mutex, idling briefly whenever the configuration is terminal (a
// fault or topology verb re-enables processors), and admin verbs take
// the same mutex for a consistent view. Unlike the actor adapter,
// Mutate holds the mutex across mutation and ApplyDelta: the
// stepper's shard/frontier caches index the graph directly, so a step
// between the two would read reclaimed or unclassified nodes.
type stepperHost struct {
	mu      sync.Mutex
	ps      *program.ParallelSystem
	fp      *failover.Protocol
	g       *graph.Graph
	rng     *rand.Rand // admin fault-injection RNG, guarded by mu
	stepErr error      // first Step error; stepping stops on it
	stop    chan struct{}
	done    chan struct{}
}

func (h *stepperHost) Start() error {
	h.stop = make(chan struct{})
	h.done = make(chan struct{})
	go h.loop()
	return nil
}

func (h *stepperHost) loop() {
	defer close(h.done)
	for {
		select {
		case <-h.stop:
			return
		default:
		}
		h.mu.Lock()
		if h.stepErr != nil {
			h.mu.Unlock()
			return
		}
		n, err := h.ps.Step()
		if err != nil {
			h.stepErr = err
			h.mu.Unlock()
			return
		}
		h.mu.Unlock()
		if n == 0 {
			select {
			case <-h.stop:
				return
			case <-time.After(time.Millisecond):
			}
		}
	}
}

func (h *stepperHost) Stop() {
	select {
	case <-h.stop:
	default:
		close(h.stop)
	}
	<-h.done
}

func (h *stepperHost) Legitimate() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.fp.Legitimate()
}

func (h *stepperHost) EnabledCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ps.EnabledCount()
}

func (h *stepperHost) EnabledNodes(buf []graph.NodeID) []graph.NodeID {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ps.EnabledNodes(buf)
}

func (h *stepperHost) Moves() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ps.Moves()
}

func (h *stepperHost) Locked(f func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	f()
}

func (h *stepperHost) CorruptNode(v graph.NodeID) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if v < 0 || int(v) >= h.g.N() || !h.g.Alive(v) {
		return fmt.Errorf("orientd: corrupt: node %d out of range", v)
	}
	h.fp.CorruptNode(v, h.rng)
	h.ps.Invalidate()
	return nil
}

func (h *stepperHost) Mutate(f func() (graph.Delta, error)) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	d, err := f()
	if err != nil {
		return err
	}
	h.ps.ApplyDelta(d)
	return nil
}

// metrics snapshots the stepper's counters under the host mutex.
func (h *stepperHost) metrics() *ParallelMetrics {
	h.mu.Lock()
	defer h.mu.Unlock()
	pm := &ParallelMetrics{
		Workers:          h.ps.Workers(),
		Steps:            h.ps.Steps(),
		Rounds:           h.ps.Rounds(),
		WorkUnits:        h.ps.WorkUnits(),
		SpanUnits:        h.ps.SpanUnits(),
		BoundarySpan:     h.ps.BoundarySpanUnits(),
		ShardWork:        h.ps.ShardWork(nil),
		Frontier:         h.ps.FrontierSize(),
		WaveSets:         h.ps.WaveCount(),
		Reshards:         h.ps.Reshards(),
		FrontierRebuilds: h.ps.FrontierRebuilds(),
		WaveRebuilds:     h.ps.WaveRebuilds(),
		ReclassSkips:     h.ps.ReclassSkips(),
	}
	if h.stepErr != nil {
		pm.LastError = h.stepErr.Error()
	}
	return pm
}

// Server is one orientd instance: a stack, its actor runtime, and the
// admin listener.
type Server struct {
	cfg Config
	g   *graph.Graph
	fp  *failover.Protocol
	eng engine
	rt  *actor.Runtime // nil when Workers ≥ 1 (parallel stepper)
	ln  net.Listener

	adminMu  sync.Mutex // serializes graph-mutating verbs
	start    time.Time
	clients  atomic.Int64
	requests atomic.Int64

	closeOnce sync.Once
	closed    chan struct{}
	conns     sync.WaitGroup
}

// buildStack constructs the named protocol stack on g.
func buildStack(name string, g *graph.Graph, root graph.NodeID) (failover.Inner, error) {
	switch name {
	case "dftno":
		sub, err := token.NewCirculator(g, root)
		if err != nil {
			return nil, err
		}
		return core.NewDFTNO(g, sub, 0)
	case "stno":
		sub, err := spantree.NewBFSTree(g, root)
		if err != nil {
			return nil, err
		}
		return core.NewSTNO(g, sub, 0)
	case "token":
		return token.NewCirculator(g, root)
	case "bfstree":
		return spantree.NewBFSTree(g, root)
	case "dfstree":
		return spantree.NewDFSTree(g, root)
	}
	return nil, fmt.Errorf("orientd: unknown stack %q (dftno|stno|token|bfstree|dfstree)", name)
}

// New builds the stack, the runtime and the listener. The returned
// server is not yet stabilizing: call Serve.
func New(cfg Config) (*Server, error) {
	if cfg.GraphSpec == "" {
		cfg.GraphSpec = "grid:4x4"
	}
	if cfg.Stack == "" {
		cfg.Stack = "dftno"
	}
	if cfg.Listen == "" {
		cfg.Listen = "tcp:127.0.0.1:0"
	}
	g, err := graph.Named(cfg.GraphSpec)
	if err != nil {
		return nil, err
	}
	if int(cfg.Root) >= g.N() || cfg.Root < 0 {
		return nil, fmt.Errorf("orientd: root %d out of range for %s", cfg.Root, cfg.GraphSpec)
	}
	inner, err := buildStack(cfg.Stack, g, cfg.Root)
	if err != nil {
		return nil, err
	}
	fp := failover.New(g, inner, cfg.Root)
	if cfg.Weighted || len(cfg.Pins) > 0 {
		fp.WeightElection(cfg.Pins)
	}
	var eng engine
	var rt *actor.Runtime
	if cfg.Workers >= 1 {
		ps := program.NewParallelSystem(fp, program.ParallelConfig{
			Workers:       cfg.Workers,
			Seed:          cfg.Seed,
			FrontierWaves: cfg.FrontierWaves,
			Reshard: program.ReshardPolicy{
				Imbalance:   cfg.ReshardImbalance,
				MinInterval: cfg.ReshardMinInterval,
			},
		})
		eng = &stepperHost{
			ps: ps, fp: fp, g: g,
			rng: rand.New(rand.NewSource(cfg.Seed ^ 0x6f72696e)),
		}
	} else {
		acfg := cfg.Actor
		acfg.Seed = cfg.Seed
		rt, err = actor.New(fp, acfg)
		if err != nil {
			return nil, err
		}
		eng = actorEngine{rt}
	}
	network, addr, ok := strings.Cut(cfg.Listen, ":")
	if !ok || (network != "unix" && network != "tcp") {
		return nil, fmt.Errorf("orientd: listen %q, want unix:<path> or tcp:<host:port>", cfg.Listen)
	}
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	return &Server{
		cfg:    cfg,
		g:      g,
		fp:     fp,
		eng:    eng,
		rt:     rt,
		ln:     ln,
		start:  time.Now(),
		closed: make(chan struct{}),
	}, nil
}

// Addr returns the admin socket address (useful with tcp:...:0).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Runtime exposes the underlying actor runtime (tests, embedding).
// It is nil when the service runs on the parallel stepper
// (Config.Workers ≥ 1).
func (s *Server) Runtime() *actor.Runtime { return s.rt }

// Close stops accepting, wakes Serve, and shuts the runtime down.
// Safe to call more than once and concurrently with Serve.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.closed)
		s.ln.Close()
	})
}

// Serve starts stabilization and the accept loop, blocking until the
// context is cancelled or a client issues the shutdown verb. Open
// connections are drained before the runtime stops; a graceful
// shutdown returns nil.
func (s *Server) Serve(ctx context.Context) error {
	if err := s.eng.Start(); err != nil {
		return err
	}
	defer s.eng.Stop()
	go func() {
		select {
		case <-ctx.Done():
			s.Close()
		case <-s.closed:
		}
	}()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.conns.Wait()
			select {
			case <-s.closed:
				if ctx.Err() != nil {
					return ctx.Err()
				}
				return nil // graceful shutdown
			default:
				return err
			}
		}
		s.conns.Add(1)
		s.clients.Add(1)
		go func() {
			defer s.conns.Done()
			defer s.clients.Add(-1)
			s.serveConn(conn)
		}()
	}
}

// serveConn runs the JSON-line loop for one client.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	enc := json.NewEncoder(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var req Request
		var resp Response
		if err := json.Unmarshal([]byte(line), &req); err != nil {
			resp = Response{OK: false, Err: "malformed request: " + err.Error()}
		} else {
			resp = s.dispatch(req)
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
		if req.Op == "shutdown" && resp.OK {
			s.Close()
			return
		}
	}
}

// dispatch executes one admin verb.
func (s *Server) dispatch(req Request) Response {
	s.requests.Add(1)
	fail := func(err error) Response {
		return Response{OK: false, Op: req.Op, Err: err.Error()}
	}
	ok := func(data any) Response {
		return Response{OK: true, Op: req.Op, Data: data}
	}
	switch req.Op {
	case "status":
		return ok(s.status())
	case "legitimacy":
		return ok(s.legitimacy())
	case "orientation":
		return ok(s.orientation())
	case "enabled":
		var buf []graph.NodeID
		buf = s.eng.EnabledNodes(buf)
		ids := make([]int, len(buf))
		for i, v := range buf {
			ids[i] = int(v)
		}
		sort.Ints(ids)
		return ok(map[string]any{"enabled": ids})
	case "metrics":
		m := Metrics{
			Requests: s.requests.Load(),
			Clients:  s.clients.Load(),
		}
		if s.rt != nil {
			m.Metrics = s.rt.Metrics()
		}
		if h, isStepper := s.eng.(*stepperHost); isStepper {
			m.Parallel = h.metrics()
		}
		return ok(m)
	case "corrupt":
		if err := s.eng.CorruptNode(graph.NodeID(req.Node)); err != nil {
			return fail(err)
		}
		return ok(nil)
	case "cut":
		if err := s.mutate(func() (graph.Delta, error) {
			return s.g.RemoveEdge(graph.NodeID(req.U), graph.NodeID(req.V))
		}); err != nil {
			return fail(err)
		}
		return ok(nil)
	case "heal":
		if err := s.mutate(func() (graph.Delta, error) {
			return s.g.AddEdge(graph.NodeID(req.U), graph.NodeID(req.V))
		}); err != nil {
			return fail(err)
		}
		return ok(nil)
	case "flap":
		u, v := graph.NodeID(req.U), graph.NodeID(req.V)
		if err := s.mutate(func() (graph.Delta, error) { return s.g.RemoveEdge(u, v) }); err != nil {
			return fail(err)
		}
		if err := s.mutate(func() (graph.Delta, error) { return s.g.AddEdge(u, v) }); err != nil {
			return fail(err)
		}
		return ok(nil)
	case "crash-root":
		if err := s.mutate(func() (graph.Delta, error) {
			return s.g.RemoveNode(s.fp.Root())
		}); err != nil {
			return fail(err)
		}
		return ok(nil)
	case "revive":
		if err := s.mutate(func() (graph.Delta, error) {
			_, d := s.g.AddNode()
			return d, nil
		}); err != nil {
			return fail(err)
		}
		return ok(nil)
	case "shutdown":
		return ok(nil)
	}
	return fail(fmt.Errorf("unknown op %q", req.Op))
}

// mutate applies one graph mutation through the engine's combined
// mutate-and-resync path — so no step observes a half-applied
// topology. Admin mutations are serialized with each other.
func (s *Server) mutate(f func() (graph.Delta, error)) error {
	s.adminMu.Lock()
	defer s.adminMu.Unlock()
	return s.eng.Mutate(f)
}

// status builds the "status" payload.
func (s *Server) status() Status {
	var st Status
	st.Stack = s.fp.Name()
	st.Graph = s.cfg.GraphSpec
	st.Legitimate = s.eng.Legitimate()
	st.Enabled = s.eng.EnabledCount()
	st.Moves = s.eng.Moves()
	st.Clients = s.clients.Load()
	st.UptimeMS = time.Since(s.start).Milliseconds()
	s.eng.Locked(func() {
		st.Nodes = s.g.N()
		st.Edges = s.g.M()
		st.Components = s.g.Components()
		for _, r := range s.fp.ActingRoots() {
			st.ActingRoots = append(st.ActingRoots, int(r))
		}
	})
	return st
}

// legitimacy builds the per-component breakdown. The overall verdict
// is the composed witness answer (O(1)); the breakdown walks the
// component labels once.
func (s *Server) legitimacy() Legitimacy {
	out := Legitimacy{Legitimate: s.eng.Legitimate()}
	s.eng.Locked(func() {
		comps := make(map[int]*Component)
		var labels []int
		for v := 0; v < s.g.N(); v++ {
			id := graph.NodeID(v)
			if !s.g.Alive(id) {
				continue
			}
			c := s.g.ComponentOf(id)
			ci := comps[c]
			if ci == nil {
				ci = &Component{}
				comps[c] = ci
				labels = append(labels, c)
			}
			ci.Size++
			ci.Flaps += s.fp.FlapCount(id)
			if id == s.fp.Root() {
				ci.HasRoot = true
			}
			if s.fp.IsRoot(id) {
				ci.ActingRoots = append(ci.ActingRoots, v)
			}
			if s.fp.Orphaned(id) {
				ci.Orphaned++
			}
		}
		sort.Ints(labels)
		for _, c := range labels {
			out.Components = append(out.Components, *comps[c])
		}
		out.LeaderFlaps = s.fp.LeaderFlaps
	})
	return out
}

// orientation builds the stack-specific structure payload.
func (s *Server) orientation() Orientation {
	out := Orientation{Legitimate: s.eng.Legitimate()}
	type namer interface{ Names() []int }
	type parenter interface {
		Parent(graph.NodeID) graph.NodeID
	}
	s.eng.Locked(func() {
		in := s.fp.Inner()
		if nm, ok := in.(namer); ok {
			out.Names = append(out.Names, nm.Names()...)
		}
		if pt, ok := in.(parenter); ok {
			out.Parents = make([]int, s.g.N())
			for v := 0; v < s.g.N(); v++ {
				out.Parents[v] = int(pt.Parent(graph.NodeID(v)))
			}
		}
	})
	return out
}

// Package orientd is the long-running orientation service: it boots
// any protocol stack from the library — wrapped in the root-failover
// layer — on a graph.Named topology, runs self-stabilization
// underneath on the message-passing actor runtime, and serves queries
// and fault-injection verbs over an admin socket.
//
// The admin protocol is JSON lines: one request object per line, one
// response object per line, over a Unix or TCP stream socket. Query
// verbs (status, legitimacy, orientation, enabled, metrics) are
// read-only and safe to hammer from many clients at once — legitimacy
// answers come off the O(1) witness counters, never an O(n) scan.
// Fault verbs (corrupt, flap, cut, heal, crash-root, revive) perturb
// the running system exactly the way the simulation campaigns do:
// through protocol corruption hooks and graph deltas. The service
// keeps stabilizing underneath; clients watch it re-converge.
package orientd

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"netorient/internal/actor"
	"netorient/internal/core"
	"netorient/internal/failover"
	"netorient/internal/graph"
	"netorient/internal/spantree"
	"netorient/internal/token"
)

// Config describes one orientd instance.
type Config struct {
	// GraphSpec is a graph.Named spec, e.g. "grid:6x6" or
	// "gnp:24:0.2:7".
	GraphSpec string
	// Stack selects the protocol: dftno|stno|token|bfstree|dfstree.
	Stack string
	// Root is the fixed root processor. Defaults to 0.
	Root graph.NodeID
	// Listen is "unix:<path>" or "tcp:<host:port>". Defaults to
	// "tcp:127.0.0.1:0" (ephemeral port; read Addr after New).
	Listen string
	// Seed derives the runtime's RNG streams.
	Seed int64
	// Weighted enables the weighted acting-root election; Pins maps
	// nodes to operator priorities (implies Weighted when non-empty).
	Weighted bool
	Pins     map[graph.NodeID]int64
	// Actor tunes the message runtime (delivery faults, mailbox
	// capacity, tick). Seed is overridden by Config.Seed.
	Actor actor.Config
}

// Request is one admin line.
type Request struct {
	Op   string `json:"op"`
	Node int    `json:"node,omitempty"`
	U    int    `json:"u,omitempty"`
	V    int    `json:"v,omitempty"`
}

// Response is one admin reply line.
type Response struct {
	OK   bool   `json:"ok"`
	Op   string `json:"op,omitempty"`
	Err  string `json:"err,omitempty"`
	Data any    `json:"data,omitempty"`
}

// Status is the "status" verb payload.
type Status struct {
	Stack       string `json:"stack"`
	Graph       string `json:"graph"`
	Nodes       int    `json:"nodes"`
	Edges       int    `json:"edges"`
	Components  int    `json:"components"`
	Legitimate  bool   `json:"legitimate"`
	Enabled     int    `json:"enabled"`
	Moves       int64  `json:"moves"`
	ActingRoots []int  `json:"acting_roots"`
	Clients     int64  `json:"clients"`
	UptimeMS    int64  `json:"uptime_ms"`
}

// Component is one entry of the "legitimacy" verb payload.
type Component struct {
	Size        int   `json:"size"`
	HasRoot     bool  `json:"has_root"`
	ActingRoots []int `json:"acting_roots"`
	Orphaned    int   `json:"orphaned"`
	Flaps       int64 `json:"flaps"`
}

// Legitimacy is the "legitimacy" verb payload: the composed O(1)
// verdict plus the per-component breakdown.
type Legitimacy struct {
	Legitimate  bool        `json:"legitimate"`
	Components  []Component `json:"components"`
	LeaderFlaps int64       `json:"leader_flaps"`
}

// Orientation is the "orientation" verb payload: whatever structure
// the stack exposes — node names for the orientation protocols,
// parent pointers for trees and the circulator.
type Orientation struct {
	Legitimate bool  `json:"legitimate"`
	Names      []int `json:"names,omitempty"`
	Parents    []int `json:"parents,omitempty"`
}

// Metrics is the "metrics" verb payload.
type Metrics struct {
	actor.Metrics
	Requests int64 `json:"admin_requests"`
	Clients  int64 `json:"clients"`
}

// Server is one orientd instance: a stack, its actor runtime, and the
// admin listener.
type Server struct {
	cfg Config
	g   *graph.Graph
	fp  *failover.Protocol
	rt  *actor.Runtime
	ln  net.Listener

	adminMu  sync.Mutex // serializes graph-mutating verbs
	start    time.Time
	clients  atomic.Int64
	requests atomic.Int64

	closeOnce sync.Once
	closed    chan struct{}
	conns     sync.WaitGroup
}

// buildStack constructs the named protocol stack on g.
func buildStack(name string, g *graph.Graph, root graph.NodeID) (failover.Inner, error) {
	switch name {
	case "dftno":
		sub, err := token.NewCirculator(g, root)
		if err != nil {
			return nil, err
		}
		return core.NewDFTNO(g, sub, 0)
	case "stno":
		sub, err := spantree.NewBFSTree(g, root)
		if err != nil {
			return nil, err
		}
		return core.NewSTNO(g, sub, 0)
	case "token":
		return token.NewCirculator(g, root)
	case "bfstree":
		return spantree.NewBFSTree(g, root)
	case "dfstree":
		return spantree.NewDFSTree(g, root)
	}
	return nil, fmt.Errorf("orientd: unknown stack %q (dftno|stno|token|bfstree|dfstree)", name)
}

// New builds the stack, the runtime and the listener. The returned
// server is not yet stabilizing: call Serve.
func New(cfg Config) (*Server, error) {
	if cfg.GraphSpec == "" {
		cfg.GraphSpec = "grid:4x4"
	}
	if cfg.Stack == "" {
		cfg.Stack = "dftno"
	}
	if cfg.Listen == "" {
		cfg.Listen = "tcp:127.0.0.1:0"
	}
	g, err := graph.Named(cfg.GraphSpec)
	if err != nil {
		return nil, err
	}
	if int(cfg.Root) >= g.N() || cfg.Root < 0 {
		return nil, fmt.Errorf("orientd: root %d out of range for %s", cfg.Root, cfg.GraphSpec)
	}
	inner, err := buildStack(cfg.Stack, g, cfg.Root)
	if err != nil {
		return nil, err
	}
	fp := failover.New(g, inner, cfg.Root)
	if cfg.Weighted || len(cfg.Pins) > 0 {
		fp.WeightElection(cfg.Pins)
	}
	acfg := cfg.Actor
	acfg.Seed = cfg.Seed
	rt, err := actor.New(fp, acfg)
	if err != nil {
		return nil, err
	}
	network, addr, ok := strings.Cut(cfg.Listen, ":")
	if !ok || (network != "unix" && network != "tcp") {
		return nil, fmt.Errorf("orientd: listen %q, want unix:<path> or tcp:<host:port>", cfg.Listen)
	}
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	return &Server{
		cfg:    cfg,
		g:      g,
		fp:     fp,
		rt:     rt,
		ln:     ln,
		start:  time.Now(),
		closed: make(chan struct{}),
	}, nil
}

// Addr returns the admin socket address (useful with tcp:...:0).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Runtime exposes the underlying actor runtime (tests, embedding).
func (s *Server) Runtime() *actor.Runtime { return s.rt }

// Close stops accepting, wakes Serve, and shuts the runtime down.
// Safe to call more than once and concurrently with Serve.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.closed)
		s.ln.Close()
	})
}

// Serve starts stabilization and the accept loop, blocking until the
// context is cancelled or a client issues the shutdown verb. Open
// connections are drained before the runtime stops; a graceful
// shutdown returns nil.
func (s *Server) Serve(ctx context.Context) error {
	if err := s.rt.Start(); err != nil {
		return err
	}
	defer s.rt.Stop()
	go func() {
		select {
		case <-ctx.Done():
			s.Close()
		case <-s.closed:
		}
	}()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.conns.Wait()
			select {
			case <-s.closed:
				if ctx.Err() != nil {
					return ctx.Err()
				}
				return nil // graceful shutdown
			default:
				return err
			}
		}
		s.conns.Add(1)
		s.clients.Add(1)
		go func() {
			defer s.conns.Done()
			defer s.clients.Add(-1)
			s.serveConn(conn)
		}()
	}
}

// serveConn runs the JSON-line loop for one client.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	enc := json.NewEncoder(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var req Request
		var resp Response
		if err := json.Unmarshal([]byte(line), &req); err != nil {
			resp = Response{OK: false, Err: "malformed request: " + err.Error()}
		} else {
			resp = s.dispatch(req)
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
		if req.Op == "shutdown" && resp.OK {
			s.Close()
			return
		}
	}
}

// dispatch executes one admin verb.
func (s *Server) dispatch(req Request) Response {
	s.requests.Add(1)
	fail := func(err error) Response {
		return Response{OK: false, Op: req.Op, Err: err.Error()}
	}
	ok := func(data any) Response {
		return Response{OK: true, Op: req.Op, Data: data}
	}
	switch req.Op {
	case "status":
		return ok(s.status())
	case "legitimacy":
		return ok(s.legitimacy())
	case "orientation":
		return ok(s.orientation())
	case "enabled":
		var buf []graph.NodeID
		buf = s.rt.EnabledNodes(buf)
		ids := make([]int, len(buf))
		for i, v := range buf {
			ids[i] = int(v)
		}
		sort.Ints(ids)
		return ok(map[string]any{"enabled": ids})
	case "metrics":
		return ok(Metrics{
			Metrics:  s.rt.Metrics(),
			Requests: s.requests.Load(),
			Clients:  s.clients.Load(),
		})
	case "corrupt":
		if err := s.rt.CorruptNode(graph.NodeID(req.Node)); err != nil {
			return fail(err)
		}
		return ok(nil)
	case "cut":
		if err := s.mutate(func() (graph.Delta, error) {
			return s.g.RemoveEdge(graph.NodeID(req.U), graph.NodeID(req.V))
		}); err != nil {
			return fail(err)
		}
		return ok(nil)
	case "heal":
		if err := s.mutate(func() (graph.Delta, error) {
			return s.g.AddEdge(graph.NodeID(req.U), graph.NodeID(req.V))
		}); err != nil {
			return fail(err)
		}
		return ok(nil)
	case "flap":
		u, v := graph.NodeID(req.U), graph.NodeID(req.V)
		if err := s.mutate(func() (graph.Delta, error) { return s.g.RemoveEdge(u, v) }); err != nil {
			return fail(err)
		}
		if err := s.mutate(func() (graph.Delta, error) { return s.g.AddEdge(u, v) }); err != nil {
			return fail(err)
		}
		return ok(nil)
	case "crash-root":
		if err := s.mutate(func() (graph.Delta, error) {
			return s.g.RemoveNode(s.fp.Root())
		}); err != nil {
			return fail(err)
		}
		return ok(nil)
	case "revive":
		if err := s.mutate(func() (graph.Delta, error) {
			_, d := s.g.AddNode()
			return d, nil
		}); err != nil {
			return fail(err)
		}
		return ok(nil)
	case "shutdown":
		return ok(nil)
	}
	return fail(fmt.Errorf("unknown op %q", req.Op))
}

// mutate applies one graph mutation under the runtime's state lock —
// so no actor observes a half-applied topology — then resynchronizes
// the runtime with the resulting delta. Admin mutations are serialized
// with each other.
func (s *Server) mutate(f func() (graph.Delta, error)) error {
	s.adminMu.Lock()
	defer s.adminMu.Unlock()
	var d graph.Delta
	var err error
	s.rt.Locked(func() { d, err = f() })
	if err != nil {
		return err
	}
	s.rt.ApplyDelta(d)
	return nil
}

// status builds the "status" payload.
func (s *Server) status() Status {
	var st Status
	st.Stack = s.fp.Name()
	st.Graph = s.cfg.GraphSpec
	st.Legitimate = s.rt.Legitimate()
	st.Enabled = s.rt.EnabledCount()
	st.Moves = s.rt.Moves()
	st.Clients = s.clients.Load()
	st.UptimeMS = time.Since(s.start).Milliseconds()
	s.rt.Locked(func() {
		st.Nodes = s.g.N()
		st.Edges = s.g.M()
		st.Components = s.g.Components()
		for _, r := range s.fp.ActingRoots() {
			st.ActingRoots = append(st.ActingRoots, int(r))
		}
	})
	return st
}

// legitimacy builds the per-component breakdown. The overall verdict
// is the composed witness answer (O(1)); the breakdown walks the
// component labels once.
func (s *Server) legitimacy() Legitimacy {
	out := Legitimacy{Legitimate: s.rt.Legitimate()}
	s.rt.Locked(func() {
		comps := make(map[int]*Component)
		var labels []int
		for v := 0; v < s.g.N(); v++ {
			id := graph.NodeID(v)
			if !s.g.Alive(id) {
				continue
			}
			c := s.g.ComponentOf(id)
			ci := comps[c]
			if ci == nil {
				ci = &Component{}
				comps[c] = ci
				labels = append(labels, c)
			}
			ci.Size++
			ci.Flaps += s.fp.FlapCount(id)
			if id == s.fp.Root() {
				ci.HasRoot = true
			}
			if s.fp.IsRoot(id) {
				ci.ActingRoots = append(ci.ActingRoots, v)
			}
			if s.fp.Orphaned(id) {
				ci.Orphaned++
			}
		}
		sort.Ints(labels)
		for _, c := range labels {
			out.Components = append(out.Components, *comps[c])
		}
		out.LeaderFlaps = s.fp.LeaderFlaps
	})
	return out
}

// orientation builds the stack-specific structure payload.
func (s *Server) orientation() Orientation {
	out := Orientation{Legitimate: s.rt.Legitimate()}
	type namer interface{ Names() []int }
	type parenter interface {
		Parent(graph.NodeID) graph.NodeID
	}
	s.rt.Locked(func() {
		in := s.fp.Inner()
		if nm, ok := in.(namer); ok {
			out.Names = append(out.Names, nm.Names()...)
		}
		if pt, ok := in.(parenter); ok {
			out.Parents = make([]int, s.g.N())
			for v := 0; v < s.g.N(); v++ {
				out.Parents[v] = int(pt.Parent(graph.NodeID(v)))
			}
		}
	})
	return out
}

package orientd_test

import (
	"context"
	"testing"
	"time"

	"netorient/internal/graph"
	"netorient/internal/orientd"
)

// TestSmoke is the acceptance driver: boot on a grid, converge, serve
// 8 parallel clients off the witness counters while an edge flap and a
// node corruption land, confirm re-convergence, metrics, clean
// shutdown.
func TestSmoke(t *testing.T) {
	t.Parallel()
	err := orientd.Smoke(orientd.SmokeConfig{
		Config: orientd.Config{
			GraphSpec: "grid:4x4",
			Stack:     "dftno",
			Seed:      7,
		},
		Converge: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSmokeWeightedToken runs the smoke on a second stack/topology
// with the weighted election and a live pin active underneath.
func TestSmokeWeightedToken(t *testing.T) {
	t.Parallel()
	err := orientd.Smoke(orientd.SmokeConfig{
		Config: orientd.Config{
			GraphSpec: "ring:9",
			Stack:     "token",
			Seed:      11,
			Pins:      map[graph.NodeID]int64{4: 5},
		},
		Converge: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
}

// serveTestServer boots a server on an ephemeral TCP port and returns
// a connected client plus a cleanup-registered shutdown.
func serveTestServer(t *testing.T, cfg orientd.Config) *orientd.Client {
	t.Helper()
	srv, err := orientd.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(context.Background()) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("serve exit: %v", err)
		}
	})
	cl, err := orientd.Dial(srv.Addr().Network(), srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// waitLegit polls status until the composed verdict is true.
func waitLegit(t *testing.T, cl *orientd.Client, phase string) orientd.Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st orientd.Status
		if err := cl.Do(orientd.Request{Op: "status"}, &st); err != nil {
			t.Fatalf("%s: %v", phase, err)
		}
		if st.Legitimate {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: not legitimate (moves=%d enabled=%d)", phase, st.Moves, st.Enabled)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestVerbs exercises the admin protocol edge cases and the full
// partition / root-crash / heal cycle against a live server.
func TestVerbs(t *testing.T) {
	t.Parallel()
	cl := serveTestServer(t, orientd.Config{GraphSpec: "path:6", Stack: "bfstree", Seed: 3})
	st := waitLegit(t, cl, "initial")
	if st.Nodes != 6 || st.Components != 1 || len(st.ActingRoots) != 1 || st.ActingRoots[0] != 0 {
		t.Fatalf("status = %+v", st)
	}

	// Error paths: unknown verb, out-of-range node, removing a missing
	// edge. Each must answer ok:false without killing the connection.
	for _, bad := range []orientd.Request{
		{Op: "warp"},
		{Op: "corrupt", Node: 99},
		{Op: "cut", U: 0, V: 5},
	} {
		if err := cl.Do(bad, nil); err == nil {
			t.Fatalf("op %+v should have failed", bad)
		}
	}

	// Orientation on a tree stack exposes parent pointers.
	var or orientd.Orientation
	if err := cl.Do(orientd.Request{Op: "orientation"}, &or); err != nil {
		t.Fatal(err)
	}
	if len(or.Parents) != 6 {
		t.Fatalf("orientation parents = %v", or.Parents)
	}

	// Partition: cut 2-3, the tail elects an acting root; per-component
	// legitimacy reports two components.
	if err := cl.Do(orientd.Request{Op: "cut", U: 2, V: 3}, nil); err != nil {
		t.Fatal(err)
	}
	waitLegit(t, cl, "post-cut")
	var leg orientd.Legitimacy
	if err := cl.Do(orientd.Request{Op: "legitimacy"}, &leg); err != nil {
		t.Fatal(err)
	}
	if len(leg.Components) != 2 || !leg.Legitimate {
		t.Fatalf("legitimacy = %+v", leg)
	}
	var orphan *orientd.Component
	for i := range leg.Components {
		if !leg.Components[i].HasRoot {
			orphan = &leg.Components[i]
		}
	}
	if orphan == nil || orphan.Orphaned != 3 || len(orphan.ActingRoots) != 1 {
		t.Fatalf("orphan component missing or wrong: %+v", leg.Components)
	}

	// Heal and confirm the acting root abdicates.
	if err := cl.Do(orientd.Request{Op: "heal", U: 2, V: 3}, nil); err != nil {
		t.Fatal(err)
	}
	st = waitLegit(t, cl, "post-heal")
	if len(st.ActingRoots) != 1 || st.ActingRoots[0] != 0 {
		t.Fatalf("post-heal acting roots = %v", st.ActingRoots)
	}

	// Root crash: the remaining component elects an acting root; revive
	// brings the fixed root back and it reclaims authority.
	if err := cl.Do(orientd.Request{Op: "crash-root"}, nil); err != nil {
		t.Fatal(err)
	}
	st = waitLegit(t, cl, "post-crash")
	if len(st.ActingRoots) != 1 || st.ActingRoots[0] == 0 {
		t.Fatalf("post-crash acting roots = %v", st.ActingRoots)
	}
	if err := cl.Do(orientd.Request{Op: "revive"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := cl.Do(orientd.Request{Op: "heal", U: 0, V: 1}, nil); err != nil {
		t.Fatal(err)
	}
	st = waitLegit(t, cl, "post-revive")
	if len(st.ActingRoots) != 1 || st.ActingRoots[0] != 0 {
		t.Fatalf("post-revive acting roots = %v", st.ActingRoots)
	}

	// Metrics snapshot is sane.
	var m orientd.Metrics
	if err := cl.Do(orientd.Request{Op: "metrics"}, &m); err != nil {
		t.Fatal(err)
	}
	if m.Moves == 0 || m.Requests == 0 || !m.Legitimate {
		t.Fatalf("metrics = %+v", m)
	}
}

// TestParallelEngine boots the service on the sharded parallel
// stepper (Workers=2, frontier waves, resharding armed), drives a
// fault/churn cycle through the admin verbs, and checks the metrics
// verb's parallel section: per-shard work, frontier/wave counters and
// the rebuild/skip counters are live, and no step error surfaced.
func TestParallelEngine(t *testing.T) {
	t.Parallel()
	cl := serveTestServer(t, orientd.Config{
		GraphSpec:        "grid:6x6",
		Stack:            "bfstree",
		Seed:             5,
		Workers:          2,
		FrontierWaves:    true,
		ReshardImbalance: 1.5,
	})
	waitLegit(t, cl, "initial")

	// Topology churn and a transient fault, exactly like the actor
	// path; the stepper must keep re-converging underneath.
	if err := cl.Do(orientd.Request{Op: "flap", U: 14, V: 15}, nil); err != nil {
		t.Fatal(err)
	}
	waitLegit(t, cl, "post-flap")
	if err := cl.Do(orientd.Request{Op: "corrupt", Node: 21}, nil); err != nil {
		t.Fatal(err)
	}
	st := waitLegit(t, cl, "post-corrupt")
	if st.Moves == 0 || st.Enabled != 0 {
		t.Fatalf("status = %+v", st)
	}

	var m orientd.Metrics
	if err := cl.Do(orientd.Request{Op: "metrics"}, &m); err != nil {
		t.Fatal(err)
	}
	pm := m.Parallel
	if pm == nil {
		t.Fatal("metrics: no parallel section on the stepper engine")
	}
	if pm.Workers != 2 || len(pm.ShardWork) != 2 {
		t.Fatalf("parallel metrics = %+v", pm)
	}
	if pm.Steps == 0 || pm.WorkUnits == 0 || pm.WorkUnits < pm.SpanUnits {
		t.Fatalf("work/span accounting = %+v", pm)
	}
	if pm.ShardWork[0]+pm.ShardWork[1] == 0 {
		t.Fatalf("per-shard work all zero: %+v", pm.ShardWork)
	}
	if pm.FrontierRebuilds+pm.WaveRebuilds+pm.ReclassSkips == 0 {
		t.Fatalf("no classification activity recorded after churn: %+v", pm)
	}
	if pm.LastError != "" {
		t.Fatalf("stepper error: %s", pm.LastError)
	}

	// The enabled verb rides the same engine; at legitimacy it is empty.
	var en struct {
		Enabled []int `json:"enabled"`
	}
	if err := cl.Do(orientd.Request{Op: "enabled"}, &en); err != nil {
		t.Fatal(err)
	}
	if len(en.Enabled) != 0 {
		t.Fatalf("enabled at legitimacy = %v", en.Enabled)
	}
}

// TestServeContextCancel: cancelling the serve context shuts the
// server down and Serve returns the context error.
func TestServeContextCancel(t *testing.T) {
	t.Parallel()
	srv, err := orientd.New(orientd.Config{GraphSpec: "ring:5", Stack: "token"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("Serve returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after cancel")
	}
}

// TestBadConfig: constructor rejections.
func TestBadConfig(t *testing.T) {
	t.Parallel()
	for _, cfg := range []orientd.Config{
		{GraphSpec: "nope:3"},
		{GraphSpec: "ring:5", Stack: "mystery"},
		{GraphSpec: "ring:5", Root: 9},
		{GraphSpec: "ring:5", Listen: "udp:127.0.0.1:0"},
	} {
		if _, err := orientd.New(cfg); err == nil {
			t.Fatalf("config %+v should have been rejected", cfg)
		}
	}
}

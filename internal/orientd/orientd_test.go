package orientd_test

import (
	"context"
	"testing"
	"time"

	"netorient/internal/graph"
	"netorient/internal/orientd"
)

// TestSmoke is the acceptance driver: boot on a grid, converge, serve
// 8 parallel clients off the witness counters while an edge flap and a
// node corruption land, confirm re-convergence, metrics, clean
// shutdown.
func TestSmoke(t *testing.T) {
	t.Parallel()
	err := orientd.Smoke(orientd.SmokeConfig{
		Config: orientd.Config{
			GraphSpec: "grid:4x4",
			Stack:     "dftno",
			Seed:      7,
		},
		Converge: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSmokeWeightedToken runs the smoke on a second stack/topology
// with the weighted election and a live pin active underneath.
func TestSmokeWeightedToken(t *testing.T) {
	t.Parallel()
	err := orientd.Smoke(orientd.SmokeConfig{
		Config: orientd.Config{
			GraphSpec: "ring:9",
			Stack:     "token",
			Seed:      11,
			Pins:      map[graph.NodeID]int64{4: 5},
		},
		Converge: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
}

// serveTestServer boots a server on an ephemeral TCP port and returns
// a connected client plus a cleanup-registered shutdown.
func serveTestServer(t *testing.T, cfg orientd.Config) *orientd.Client {
	t.Helper()
	srv, err := orientd.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(context.Background()) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("serve exit: %v", err)
		}
	})
	cl, err := orientd.Dial(srv.Addr().Network(), srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// waitLegit polls status until the composed verdict is true.
func waitLegit(t *testing.T, cl *orientd.Client, phase string) orientd.Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st orientd.Status
		if err := cl.Do(orientd.Request{Op: "status"}, &st); err != nil {
			t.Fatalf("%s: %v", phase, err)
		}
		if st.Legitimate {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: not legitimate (moves=%d enabled=%d)", phase, st.Moves, st.Enabled)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestVerbs exercises the admin protocol edge cases and the full
// partition / root-crash / heal cycle against a live server.
func TestVerbs(t *testing.T) {
	t.Parallel()
	cl := serveTestServer(t, orientd.Config{GraphSpec: "path:6", Stack: "bfstree", Seed: 3})
	st := waitLegit(t, cl, "initial")
	if st.Nodes != 6 || st.Components != 1 || len(st.ActingRoots) != 1 || st.ActingRoots[0] != 0 {
		t.Fatalf("status = %+v", st)
	}

	// Error paths: unknown verb, out-of-range node, removing a missing
	// edge. Each must answer ok:false without killing the connection.
	for _, bad := range []orientd.Request{
		{Op: "warp"},
		{Op: "corrupt", Node: 99},
		{Op: "cut", U: 0, V: 5},
	} {
		if err := cl.Do(bad, nil); err == nil {
			t.Fatalf("op %+v should have failed", bad)
		}
	}

	// Orientation on a tree stack exposes parent pointers.
	var or orientd.Orientation
	if err := cl.Do(orientd.Request{Op: "orientation"}, &or); err != nil {
		t.Fatal(err)
	}
	if len(or.Parents) != 6 {
		t.Fatalf("orientation parents = %v", or.Parents)
	}

	// Partition: cut 2-3, the tail elects an acting root; per-component
	// legitimacy reports two components.
	if err := cl.Do(orientd.Request{Op: "cut", U: 2, V: 3}, nil); err != nil {
		t.Fatal(err)
	}
	waitLegit(t, cl, "post-cut")
	var leg orientd.Legitimacy
	if err := cl.Do(orientd.Request{Op: "legitimacy"}, &leg); err != nil {
		t.Fatal(err)
	}
	if len(leg.Components) != 2 || !leg.Legitimate {
		t.Fatalf("legitimacy = %+v", leg)
	}
	var orphan *orientd.Component
	for i := range leg.Components {
		if !leg.Components[i].HasRoot {
			orphan = &leg.Components[i]
		}
	}
	if orphan == nil || orphan.Orphaned != 3 || len(orphan.ActingRoots) != 1 {
		t.Fatalf("orphan component missing or wrong: %+v", leg.Components)
	}

	// Heal and confirm the acting root abdicates.
	if err := cl.Do(orientd.Request{Op: "heal", U: 2, V: 3}, nil); err != nil {
		t.Fatal(err)
	}
	st = waitLegit(t, cl, "post-heal")
	if len(st.ActingRoots) != 1 || st.ActingRoots[0] != 0 {
		t.Fatalf("post-heal acting roots = %v", st.ActingRoots)
	}

	// Root crash: the remaining component elects an acting root; revive
	// brings the fixed root back and it reclaims authority.
	if err := cl.Do(orientd.Request{Op: "crash-root"}, nil); err != nil {
		t.Fatal(err)
	}
	st = waitLegit(t, cl, "post-crash")
	if len(st.ActingRoots) != 1 || st.ActingRoots[0] == 0 {
		t.Fatalf("post-crash acting roots = %v", st.ActingRoots)
	}
	if err := cl.Do(orientd.Request{Op: "revive"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := cl.Do(orientd.Request{Op: "heal", U: 0, V: 1}, nil); err != nil {
		t.Fatal(err)
	}
	st = waitLegit(t, cl, "post-revive")
	if len(st.ActingRoots) != 1 || st.ActingRoots[0] != 0 {
		t.Fatalf("post-revive acting roots = %v", st.ActingRoots)
	}

	// Metrics snapshot is sane.
	var m orientd.Metrics
	if err := cl.Do(orientd.Request{Op: "metrics"}, &m); err != nil {
		t.Fatal(err)
	}
	if m.Moves == 0 || m.Requests == 0 || !m.Legitimate {
		t.Fatalf("metrics = %+v", m)
	}
}

// TestServeContextCancel: cancelling the serve context shuts the
// server down and Serve returns the context error.
func TestServeContextCancel(t *testing.T) {
	t.Parallel()
	srv, err := orientd.New(orientd.Config{GraphSpec: "ring:5", Stack: "token"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("Serve returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after cancel")
	}
}

// TestBadConfig: constructor rejections.
func TestBadConfig(t *testing.T) {
	t.Parallel()
	for _, cfg := range []orientd.Config{
		{GraphSpec: "nope:3"},
		{GraphSpec: "ring:5", Stack: "mystery"},
		{GraphSpec: "ring:5", Root: 9},
		{GraphSpec: "ring:5", Listen: "udp:127.0.0.1:0"},
	} {
		if _, err := orientd.New(cfg); err == nil {
			t.Fatalf("config %+v should have been rejected", cfg)
		}
	}
}

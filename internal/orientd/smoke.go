package orientd

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"netorient/internal/graph"
)

// SmokeConfig tunes the self-test run.
type SmokeConfig struct {
	Config
	// Clients is the number of parallel query clients. Defaults to 8
	// (the acceptance floor); values below 8 are raised to it.
	Clients int
	// Converge bounds each wait for (re-)convergence. Defaults to 60s.
	Converge time.Duration
	// Log receives progress lines; nil discards them.
	Log io.Writer
}

// Client is a minimal JSON-line admin client for tests and the smoke
// harness.
type Client struct {
	conn net.Conn
	sc   *bufio.Scanner
	enc  *json.Encoder
}

// Dial connects to an orientd admin socket ("tcp"/"unix" + address).
func Dial(network, addr string) (*Client, error) {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	return &Client{conn: conn, sc: sc, enc: json.NewEncoder(conn)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Do sends one request and decodes the reply into data (may be nil).
// A transport failure or an ok:false reply is an error.
func (c *Client) Do(req Request, data any) error {
	if err := c.enc.Encode(req); err != nil {
		return err
	}
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return err
		}
		return io.EOF
	}
	raw := struct {
		OK   bool            `json:"ok"`
		Err  string          `json:"err"`
		Data json.RawMessage `json:"data"`
	}{}
	if err := json.Unmarshal(c.sc.Bytes(), &raw); err != nil {
		return err
	}
	if !raw.OK {
		return fmt.Errorf("orientd: %s: %s", req.Op, raw.Err)
	}
	if data != nil && len(raw.Data) > 0 {
		return json.Unmarshal(raw.Data, data)
	}
	return nil
}

// Smoke boots a server on cfg, drives it through the acceptance
// scenario — converge, serve parallel clients, inject an edge flap and
// a node corruption while they read, re-converge, snapshot metrics,
// graceful shutdown — and returns the first invariant violation, or
// nil. It is the substance behind `orientd -smoke` in CI.
func Smoke(cfg SmokeConfig) error {
	if cfg.Clients < 8 {
		cfg.Clients = 8
	}
	if cfg.Converge <= 0 {
		cfg.Converge = 60 * time.Second
	}
	logf := func(format string, a ...any) {
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, format+"\n", a...)
		}
	}

	srv, err := New(cfg.Config)
	if err != nil {
		return err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(context.Background()) }()
	network := srv.Addr().Network()
	addr := srv.Addr().String()
	logf("orientd smoke: %s %s on %s %s", srv.fp.Name(), cfg.Config.GraphSpec, network, addr)

	fail := func(err error) error {
		srv.Close()
		<-serveErr
		return err
	}

	admin, err := Dial(network, addr)
	if err != nil {
		return fail(err)
	}
	defer admin.Close()

	waitLegit := func(phase string) error {
		deadline := time.Now().Add(cfg.Converge)
		for {
			var st Status
			if err := admin.Do(Request{Op: "status"}, &st); err != nil {
				return fmt.Errorf("%s: %w", phase, err)
			}
			if st.Legitimate {
				logf("orientd smoke: %s: legitimate after %d moves", phase, st.Moves)
				return nil
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("%s: not legitimate within %v (moves=%d enabled=%d)",
					phase, cfg.Converge, st.Moves, st.Enabled)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	if err := waitLegit("initial convergence"); err != nil {
		return fail(err)
	}

	// Parallel query clients hammer the read verbs off the witness
	// counters while faults land underneath.
	var (
		stop  = make(chan struct{})
		wg    sync.WaitGroup
		reads atomic.Int64
		cerr  = make(chan error, cfg.Clients)
	)
	verbs := []string{"status", "legitimacy", "orientation", "enabled", "metrics"}
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl, err := Dial(network, addr)
			if err != nil {
				cerr <- err
				return
			}
			defer cl.Close()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				op := verbs[(i+n)%len(verbs)]
				var leg Legitimacy
				var payload any
				if op == "legitimacy" {
					payload = &leg
				}
				if err := cl.Do(Request{Op: op}, payload); err != nil {
					cerr <- fmt.Errorf("client %d %s: %w", i, op, err)
					return
				}
				if op == "legitimacy" && leg.Legitimate && len(leg.Components) == 0 {
					cerr <- fmt.Errorf("client %d: legitimate with no components", i)
					return
				}
				reads.Add(1)
			}
		}(i)
	}

	// Fault injection: flap an edge, corrupt a mid node, re-converge
	// with the clients still reading.
	edges := srv.g.Edges()
	if len(edges) == 0 {
		return fail(fmt.Errorf("graph %s has no edges", cfg.Config.GraphSpec))
	}
	e := edges[len(edges)/2]
	if err := admin.Do(Request{Op: "flap", U: int(e.U), V: int(e.V)}, nil); err != nil {
		return fail(err)
	}
	victim := graph.NodeID(srv.g.N() / 2)
	if victim == srv.fp.Root() {
		victim++
	}
	if err := admin.Do(Request{Op: "corrupt", Node: int(victim)}, nil); err != nil {
		return fail(err)
	}
	logf("orientd smoke: injected flap %d-%d and corruption at node %d", e.U, e.V, victim)
	if err := waitLegit("re-convergence after faults"); err != nil {
		return fail(err)
	}

	close(stop)
	wg.Wait()
	select {
	case err := <-cerr:
		return fail(err)
	default:
	}
	logf("orientd smoke: %d clients completed %d reads", cfg.Clients, reads.Load())

	var m Metrics
	if err := admin.Do(Request{Op: "metrics"}, &m); err != nil {
		return fail(err)
	}
	if pm := m.Parallel; pm != nil {
		// Parallel-stepper engine: the actor counters are zero;
		// plausibility lives in the work/span and shard accounting.
		if pm.Steps == 0 || pm.WorkUnits == 0 || pm.WorkUnits < pm.SpanUnits ||
			len(pm.ShardWork) != cfg.Workers || pm.LastError != "" {
			return fail(fmt.Errorf("parallel metrics implausible: %+v", pm))
		}
		logf("orientd smoke: parallel metrics steps=%d work=%d span=%d frontier=%d waves=%d reshards=%d admin_requests=%d",
			pm.Steps, pm.WorkUnits, pm.SpanUnits, pm.Frontier, pm.WaveSets, pm.Reshards, m.Requests)
	} else {
		if m.Moves == 0 || m.Sent == 0 || !m.Legitimate {
			return fail(fmt.Errorf("metrics implausible: moves=%d sent=%d legitimate=%v",
				m.Moves, m.Sent, m.Legitimate))
		}
		logf("orientd smoke: metrics moves=%d sent=%d delivered=%d convergences=%d admin_requests=%d",
			m.Moves, m.Sent, m.Delivered, m.Convergences, m.Requests)
	}

	if err := admin.Do(Request{Op: "shutdown"}, nil); err != nil {
		return fail(err)
	}
	select {
	case err := <-serveErr:
		if err != nil {
			return fmt.Errorf("serve exit: %w", err)
		}
	case <-time.After(cfg.Converge):
		return fmt.Errorf("server did not shut down after the shutdown verb")
	}
	logf("orientd smoke: clean shutdown")
	return nil
}

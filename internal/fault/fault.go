// Package fault runs transient-fault campaigns against
// self-stabilizing protocols: starting from a legitimate
// configuration, corrupt the local state of k random processors, then
// measure the moves and rounds until the system is legitimate again —
// the operational content of Theorems 3.2.3 and 4.2.3.
//
// Campaigns run on the incremental scheduler, so for protocols with a
// program.Witness the per-step legitimacy decision inside each
// recovery is O(1) (the witness re-arms from scratch on the fresh
// System each trial builds after corruption); recovery measurements
// count moves and rounds, which are scheduler-independent.
package fault

import (
	"errors"
	"fmt"
	"math/rand"

	"netorient/internal/graph"
	"netorient/internal/program"
)

// Target is the protocol contract a campaign needs.
type Target interface {
	program.Protocol
	program.Legitimacy
	program.NodeCorruptor
}

// Campaign describes a fault-injection experiment.
type Campaign struct {
	// Faults is the number of distinct processors corrupted per trial
	// (clamped to n).
	Faults int
	// Trials is the number of corrupt-and-recover repetitions.
	Trials int
	// MaxSteps bounds each recovery (and the initial stabilization).
	MaxSteps int64
	// Seed drives node selection, corruption values and daemons.
	Seed int64
	// NewDaemon builds the daemon for a trial; nil is an error (the
	// caller chooses the scheduling model explicitly).
	NewDaemon func(trial int) program.Daemon
}

// Outcome aggregates a campaign's results.
type Outcome struct {
	Trials    int
	Recovered int
	// RecoveryMoves and RecoveryRounds hold one entry per recovered
	// trial.
	RecoveryMoves  []int64
	RecoveryRounds []int64
}

// Errors.
var (
	ErrNoDaemonFactory = errors.New("fault: campaign needs a NewDaemon factory")
)

// Run executes the campaign on t. The protocol is first driven to a
// legitimate configuration; each trial then corrupts Faults distinct
// random processors and runs until legitimacy returns.
func (c Campaign) Run(t Target) (Outcome, error) {
	if c.NewDaemon == nil {
		return Outcome{}, ErrNoDaemonFactory
	}
	rng := rand.New(rand.NewSource(c.Seed))
	n := t.Graph().N()
	faults := c.Faults
	if faults > n {
		faults = n
	}
	if faults < 1 {
		faults = 1
	}

	out := Outcome{Trials: c.Trials}
	sys := program.NewSystem(t, c.NewDaemon(-1))
	if res, err := sys.RunUntilLegitimate(c.MaxSteps); err != nil {
		return out, err
	} else if !res.Converged {
		return out, fmt.Errorf("fault: protocol %q did not stabilize before injection", t.Name())
	}

	for trial := 0; trial < c.Trials; trial++ {
		for _, v := range rng.Perm(n)[:faults] {
			t.CorruptNode(graph.NodeID(v), rng)
		}
		sys = program.NewSystem(t, c.NewDaemon(trial))
		res, err := sys.RunUntilLegitimate(c.MaxSteps)
		if err != nil {
			return out, err
		}
		if !res.Converged {
			// Leave the system unstabilized no longer: restore a
			// legitimate base for the next trial.
			if res2, err2 := sys.RunUntilLegitimate(4 * c.MaxSteps); err2 != nil || !res2.Converged {
				return out, fmt.Errorf("fault: trial %d never recovered", trial)
			}
			continue
		}
		out.Recovered++
		out.RecoveryMoves = append(out.RecoveryMoves, res.Moves)
		out.RecoveryRounds = append(out.RecoveryRounds, res.Rounds)
	}
	return out, nil
}

// Package fault runs transient-fault campaigns against
// self-stabilizing protocols: starting from a legitimate
// configuration, corrupt the local state of k random processors, then
// measure the moves and rounds until the system is legitimate again —
// the operational content of Theorems 3.2.3 and 4.2.3.
//
// Campaigns run on the incremental scheduler by default, so for
// protocols with a program.Witness the per-step legitimacy decision
// inside each recovery is O(1) (the witness re-arms from scratch on
// the fresh System each trial builds after corruption); recovery
// measurements count moves and rounds, which are
// scheduler-independent. Setting Workers > 1 runs each trial on the
// sharded parallel stepper instead.
package fault

import (
	"errors"
	"fmt"
	"math/rand"

	"netorient/internal/churn"
	"netorient/internal/graph"
	"netorient/internal/program"
)

// Target is the protocol contract a campaign needs.
type Target interface {
	program.Protocol
	program.Legitimacy
	program.NodeCorruptor
}

// Campaign describes a fault-injection experiment.
type Campaign struct {
	// Faults is the number of distinct processors corrupted per trial
	// (clamped to n).
	Faults int
	// Trials is the number of corrupt-and-recover repetitions.
	Trials int
	// MaxSteps bounds each recovery (and the initial stabilization).
	MaxSteps int64
	// Seed drives node selection, corruption values and daemons.
	Seed int64
	// NewDaemon builds the daemon for a trial; nil is an error (the
	// caller chooses the scheduling model explicitly).
	NewDaemon func(trial int) program.Daemon
	// Workers > 1 runs each trial on the sharded parallel stepper with
	// that many workers instead of the serial scheduler; the daemon
	// factory is then only used as the explicit opt-in marker (the
	// parallel stepper schedules its own maximal distributed daemon).
	Workers int
}

// Outcome aggregates a campaign's results.
type Outcome struct {
	Trials    int
	Recovered int
	// RecoveryMoves and RecoveryRounds hold one entry per recovered
	// trial.
	RecoveryMoves  []int64
	RecoveryRounds []int64
}

// Errors.
var (
	ErrNoDaemonFactory = errors.New("fault: campaign needs a NewDaemon factory")
)

// Churn is the topology-fault adversary: where Campaign hits processor
// *state*, Churn hits the *network itself*. Each trial starts from a
// legitimate configuration, takes Burst elements down (edge flaps or a
// node crash, chosen seeded and connectivity-preserving), optionally
// corrupts CorruptFaults processors on top — the combined
// state+topology fault — lets the damaged system run DownFor steps,
// restores the elements, and measures moves/rounds until legitimacy
// returns. Topology events flow through System.ApplyDelta (the
// localized-invalidation path); state corruption uses the
// System.Invalidate staleness contract, so the two escape hatches are
// exercised composed, exactly as a real deployment would see them.
type Churn struct {
	// Trials is the number of damage-and-recover repetitions.
	Trials int
	// Burst is the number of elements taken down per trial (≥ 1).
	Burst int
	// Kind selects the element type (churn.EdgeFlap or
	// churn.NodeCrash; a NodeCrash burst is capped at one node down at
	// a time, the rest become flaps). With AllowDisconnect the
	// disconnecting kinds churn.BridgeCut, churn.IslandCrash and
	// churn.Partition are also accepted (one bridge cut / island crash /
	// partition per trial, the rest of the burst becomes flaps).
	Kind churn.Kind
	// AllowDisconnect lifts connectivity preservation: flap and crash
	// picks skip the connectivity check, and the disconnecting kinds
	// become available. Protocol legitimacy is per component, so the
	// damaged system still converges while split.
	AllowDisconnect bool
	// CrashRoot aims the per-trial churn.NodeCrash at the fixed root
	// itself instead of a random non-root node. Only meaningful when
	// the target carries a root-failover wrapper (internal/failover):
	// without one the rooted predicates cannot re-converge while the
	// root is down, and the trial burns its whole step budget.
	// Requires AllowDisconnect when the root is a cut vertex.
	CrashRoot bool
	// PartitionSize bounds the cut-off region for churn.Partition
	// (default n/4, min 1).
	PartitionSize int
	// CorruptFaults additionally corrupts this many random processors
	// while the elements are down (0 = topology-only).
	CorruptFaults int
	// CorruptOrphans aims the corruption at nodes whose component lost
	// the root during the down phase — the worst case for partition
	// tolerance: the orphan region must re-quiesce with no root to
	// anchor it, and the heal must absorb whatever the corruption left.
	// When the take-down islanded nobody, the trial corrupts nobody.
	CorruptOrphans bool
	// CorruptAfterRestore flips the Invalidate/ApplyDelta order: by
	// default corruption (System.Invalidate) lands while the elements
	// are down and the heal's ApplyDelta follows; with this set the
	// heal lands first and the same targets — chosen while the
	// component was split — are corrupted afterwards. Both orders must
	// recover; the composed-escape-hatch tests drive each.
	CorruptAfterRestore bool
	// DownFor is how many steps the elements stay down.
	DownFor int64
	// MaxSteps bounds each recovery and the initial stabilization.
	MaxSteps int64
	// Seed drives element selection, corruption and daemons.
	Seed int64
	// NewDaemon builds the daemon for a trial; nil is an error.
	NewDaemon func(trial int) program.Daemon
	// Workers > 1 runs each trial on the sharded parallel stepper (see
	// Campaign.Workers).
	Workers int
}

// newEngine builds one trial's execution engine: the serial
// incremental scheduler driving d, or — when workers > 1 — the
// sharded parallel stepper (which ignores d and runs its own maximal
// distributed daemon over seeded shards).
func newEngine(t Target, workers int, seed int64, d program.Daemon) program.Stepper {
	if workers > 1 {
		return program.NewParallelSystem(t, program.ParallelConfig{Workers: workers, Seed: seed})
	}
	return program.NewSystem(t, d)
}

// Run executes the churn campaign on t over g (which must be t's
// graph; the campaign mutates it and restores it every trial).
func (c Churn) Run(t Target, root graph.NodeID) (Outcome, error) {
	if c.NewDaemon == nil {
		return Outcome{}, ErrNoDaemonFactory
	}
	g := t.Graph()
	rng := rand.New(rand.NewSource(c.Seed))
	burst := c.Burst
	if burst < 1 {
		burst = 1
	}
	out := Outcome{Trials: c.Trials}
	sys := newEngine(t, c.Workers, c.Seed, c.NewDaemon(-1))
	if res, err := sys.RunUntilLegitimate(c.MaxSteps); err != nil {
		return out, err
	} else if !res.Converged {
		return out, fmt.Errorf("fault: protocol %q did not stabilize before churn", t.Name())
	}

	for trial := 0; trial < c.Trials; trial++ {
		sys = newEngine(t, c.Workers, c.Seed+int64(trial)+1, c.NewDaemon(trial))
		apply := func(d graph.Delta) { sys.ApplyDelta(d) }
		var restores []func() error
		specialDown := false // the per-trial crash/bridge/island/partition fired
		for b := 0; b < burst; b++ {
			var restore func() error
			var err error
			switch {
			case c.Kind == churn.NodeCrash && !specialDown:
				if c.CrashRoot && g.Alive(root) {
					restore, err = churn.CrashDown(g, root, apply)
					specialDown = true
					break
				}
				pick := churn.PickCrashNode
				if c.AllowDisconnect {
					pick = churn.PickAnyNode
				}
				if v, ok := pick(g, root, rng); ok {
					restore, err = churn.CrashDown(g, v, apply)
					specialDown = true
				}
			case c.Kind == churn.IslandCrash && c.AllowDisconnect && !specialDown:
				if v, ok := churn.PickCutVertex(g, root, rng); ok {
					restore, err = churn.CrashDown(g, v, apply)
					specialDown = true
				}
			case c.Kind == churn.BridgeCut && c.AllowDisconnect && !specialDown:
				if u, v, ok := churn.PickBridgeEdge(g, rng); ok {
					restore, err = churn.FlapDown(g, u, v, apply)
					specialDown = true
				}
			case c.Kind == churn.Partition && c.AllowDisconnect && !specialDown:
				size := c.PartitionSize
				if size <= 0 {
					size = g.NAlive() / 4
				}
				if size < 1 {
					size = 1
				}
				if cut, ok := churn.PickPartitionCut(g, root, size, rng); ok {
					restore, err = churn.CutDown(g, cut, apply)
					specialDown = true
				}
			}
			if err != nil {
				return out, err
			}
			if restore == nil {
				pickFlap := churn.PickFlapEdge
				if c.AllowDisconnect {
					pickFlap = churn.PickAnyEdge
				}
				u, v, ok := pickFlap(g, rng)
				if !ok {
					break // tree-like remnant: nothing else can flap
				}
				if restore, err = churn.FlapDown(g, u, v, apply); err != nil {
					return out, err
				}
			}
			restores = append(restores, restore)
		}
		// Corruption targets are chosen now — while the topology damage
		// is in effect — so CorruptOrphans can see which components
		// lost the root; the corruption itself lands before or after
		// the heal depending on CorruptAfterRestore.
		targets := c.corruptionTargets(g, root, rng)
		if len(targets) > 0 && !c.CorruptAfterRestore {
			for _, v := range targets {
				t.CorruptNode(v, rng)
			}
			sys.Invalidate()
		}
		if _, err := sys.RunUntil(func() bool { return false }, c.DownFor); err != nil {
			return out, err
		}
		for i := len(restores) - 1; i >= 0; i-- {
			if err := restores[i](); err != nil {
				return out, err
			}
		}
		if len(targets) > 0 && c.CorruptAfterRestore {
			for _, v := range targets {
				t.CorruptNode(v, rng)
			}
			sys.Invalidate()
		}
		res, err := sys.RunUntilLegitimate(c.MaxSteps)
		if err != nil {
			return out, err
		}
		if !res.Converged {
			if res2, err2 := sys.RunUntilLegitimate(4 * c.MaxSteps); err2 != nil || !res2.Converged {
				return out, fmt.Errorf("fault: churn trial %d never recovered", trial)
			}
			continue
		}
		out.Recovered++
		out.RecoveryMoves = append(out.RecoveryMoves, res.Moves)
		out.RecoveryRounds = append(out.RecoveryRounds, res.Rounds)
	}
	return out, nil
}

// corruptionTargets selects the processors a churn trial corrupts,
// drawn while the take-down is in effect. With CorruptOrphans only
// live nodes in components without the root qualify (possibly fewer
// than CorruptFaults, zero when nothing was islanded); otherwise any
// live node does. Either targeting mode advances the rng by exactly
// one Perm, so the seeded schedule does not depend on it.
func (c Churn) corruptionTargets(g *graph.Graph, root graph.NodeID, rng *rand.Rand) []graph.NodeID {
	if c.CorruptFaults <= 0 {
		return nil
	}
	perm := rng.Perm(g.N())
	k := c.CorruptFaults
	if k > g.N() {
		k = g.N()
	}
	rootComp := -1
	if g.Alive(root) {
		rootComp = g.ComponentOf(root)
	}
	targets := make([]graph.NodeID, 0, k)
	for _, v := range perm {
		if len(targets) == k {
			break
		}
		id := graph.NodeID(v)
		if !g.Alive(id) {
			continue
		}
		if c.CorruptOrphans && g.ComponentOf(id) == rootComp {
			continue
		}
		targets = append(targets, id)
	}
	return targets
}

// Run executes the campaign on t. The protocol is first driven to a
// legitimate configuration; each trial then corrupts Faults distinct
// random processors and runs until legitimacy returns.
func (c Campaign) Run(t Target) (Outcome, error) {
	if c.NewDaemon == nil {
		return Outcome{}, ErrNoDaemonFactory
	}
	rng := rand.New(rand.NewSource(c.Seed))
	n := t.Graph().N()
	faults := c.Faults
	if faults > n {
		faults = n
	}
	if faults < 1 {
		faults = 1
	}

	out := Outcome{Trials: c.Trials}
	sys := newEngine(t, c.Workers, c.Seed, c.NewDaemon(-1))
	if res, err := sys.RunUntilLegitimate(c.MaxSteps); err != nil {
		return out, err
	} else if !res.Converged {
		return out, fmt.Errorf("fault: protocol %q did not stabilize before injection", t.Name())
	}

	for trial := 0; trial < c.Trials; trial++ {
		for _, v := range rng.Perm(n)[:faults] {
			t.CorruptNode(graph.NodeID(v), rng)
		}
		sys = newEngine(t, c.Workers, c.Seed+int64(trial)+1, c.NewDaemon(trial))
		res, err := sys.RunUntilLegitimate(c.MaxSteps)
		if err != nil {
			return out, err
		}
		if !res.Converged {
			// Leave the system unstabilized no longer: restore a
			// legitimate base for the next trial.
			if res2, err2 := sys.RunUntilLegitimate(4 * c.MaxSteps); err2 != nil || !res2.Converged {
				return out, fmt.Errorf("fault: trial %d never recovered", trial)
			}
			continue
		}
		out.Recovered++
		out.RecoveryMoves = append(out.RecoveryMoves, res.Moves)
		out.RecoveryRounds = append(out.RecoveryRounds, res.Rounds)
	}
	return out, nil
}

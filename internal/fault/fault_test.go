package fault

import (
	"errors"
	"testing"

	"netorient/internal/core"
	"netorient/internal/daemon"
	"netorient/internal/graph"
	"netorient/internal/program"
	"netorient/internal/spantree"
	"netorient/internal/token"
)

func centralFactory(trial int) program.Daemon {
	return daemon.NewCentral(int64(trial) + 1000)
}

func TestCampaignNeedsDaemonFactory(t *testing.T) {
	g := graph.Ring(4)
	sub, err := token.NewCirculator(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.NewDFTNO(g, sub, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Campaign{Trials: 1, MaxSteps: 10}).Run(d); !errors.Is(err, ErrNoDaemonFactory) {
		t.Fatalf("got %v, want ErrNoDaemonFactory", err)
	}
}

func TestDFTNORecoversFromSingleFault(t *testing.T) {
	g := graph.Grid(3, 3)
	sub, err := token.NewCirculator(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.NewDFTNO(g, sub, 0)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Campaign{
		Faults:    1,
		Trials:    20,
		MaxSteps:  int64(5000 * (g.N() + g.M())),
		Seed:      1,
		NewDaemon: centralFactory,
	}.Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if out.Recovered != out.Trials {
		t.Fatalf("recovered %d of %d trials", out.Recovered, out.Trials)
	}
}

func TestSTNORecoversFromMultiNodeFaults(t *testing.T) {
	g := graph.Grid(3, 3)
	sub, err := spantree.NewBFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.NewSTNO(g, sub, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 3, g.N()} {
		out, err := Campaign{
			Faults:    k,
			Trials:    15,
			MaxSteps:  int64(5000 * (g.N() + g.M())),
			Seed:      int64(k),
			NewDaemon: centralFactory,
		}.Run(s)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if out.Recovered != out.Trials {
			t.Fatalf("k=%d: recovered %d of %d", k, out.Recovered, out.Trials)
		}
		if len(out.RecoveryMoves) != out.Recovered || len(out.RecoveryRounds) != out.Recovered {
			t.Fatalf("k=%d: inconsistent outcome lengths", k)
		}
	}
}

func TestSmallFaultsRecoverNoSlowerThanFullCorruption(t *testing.T) {
	// Sanity shape check for T4: median recovery from 1 fault should
	// not exceed the median recovery from full corruption by more
	// than noise allows (here: a generous 2x).
	g := graph.Ring(8)
	sub, err := spantree.NewBFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.NewSTNO(g, sub, 0)
	if err != nil {
		t.Fatal(err)
	}
	run := func(k int) float64 {
		out, err := Campaign{
			Faults:    k,
			Trials:    30,
			MaxSteps:  1 << 22,
			Seed:      7,
			NewDaemon: centralFactory,
		}.Run(s)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, m := range out.RecoveryMoves {
			sum += float64(m)
		}
		return sum / float64(len(out.RecoveryMoves))
	}
	small := run(1)
	full := run(g.N())
	if small > 2*full+10 {
		t.Errorf("1-fault mean recovery %.1f moves vs full-corruption %.1f — expected small ≤ ~full", small, full)
	}
}

package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"netorient/internal/churn"
	"netorient/internal/core"
	"netorient/internal/daemon"
	"netorient/internal/failover"
	"netorient/internal/graph"
	"netorient/internal/program"
	"netorient/internal/spantree"
	"netorient/internal/token"
)

// buildTarget constructs one of the five protocol stacks on g.
func buildTarget(name string, g *graph.Graph) (Target, error) {
	switch name {
	case "dftc":
		return token.NewCirculator(g, 0)
	case "bfstree":
		return spantree.NewBFSTree(g, 0)
	case "dfstree":
		return spantree.NewDFSTree(g, 0)
	case "dftno/dftc":
		sub, err := token.NewCirculator(g, 0)
		if err != nil {
			return nil, err
		}
		return core.NewDFTNO(g, sub, 0)
	case "stno/bfstree":
		sub, err := spantree.NewBFSTree(g, 0)
		if err != nil {
			return nil, err
		}
		return core.NewSTNO(g, sub, 0)
	}
	return nil, fmt.Errorf("unknown stack %q", name)
}

var allStacks = []string{"dftc", "bfstree", "dfstree", "dftno/dftc", "stno/bfstree"}

func centralFactory(trial int) program.Daemon {
	return daemon.NewCentral(int64(trial) + 1000)
}

func TestCampaignNeedsDaemonFactory(t *testing.T) {
	g := graph.Ring(4)
	sub, err := token.NewCirculator(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.NewDFTNO(g, sub, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Campaign{Trials: 1, MaxSteps: 10}).Run(d); !errors.Is(err, ErrNoDaemonFactory) {
		t.Fatalf("got %v, want ErrNoDaemonFactory", err)
	}
}

func TestDFTNORecoversFromSingleFault(t *testing.T) {
	g := graph.Grid(3, 3)
	sub, err := token.NewCirculator(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.NewDFTNO(g, sub, 0)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Campaign{
		Faults:    1,
		Trials:    20,
		MaxSteps:  int64(5000 * (g.N() + g.M())),
		Seed:      1,
		NewDaemon: centralFactory,
	}.Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if out.Recovered != out.Trials {
		t.Fatalf("recovered %d of %d trials", out.Recovered, out.Trials)
	}
}

func TestSTNORecoversFromMultiNodeFaults(t *testing.T) {
	g := graph.Grid(3, 3)
	sub, err := spantree.NewBFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.NewSTNO(g, sub, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 3, g.N()} {
		out, err := Campaign{
			Faults:    k,
			Trials:    15,
			MaxSteps:  int64(5000 * (g.N() + g.M())),
			Seed:      int64(k),
			NewDaemon: centralFactory,
		}.Run(s)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if out.Recovered != out.Trials {
			t.Fatalf("k=%d: recovered %d of %d", k, out.Recovered, out.Trials)
		}
		if len(out.RecoveryMoves) != out.Recovered || len(out.RecoveryRounds) != out.Recovered {
			t.Fatalf("k=%d: inconsistent outcome lengths", k)
		}
	}
}

// TestCampaignRecoversAllStacks closes the coverage gap on the
// Campaign path: CorruptNode + System.Invalidate (inside Campaign.Run)
// must recover on every protocol stack, and the outcome must agree
// with the O(n) legitimacy predicate afterwards.
func TestCampaignRecoversAllStacks(t *testing.T) {
	t.Parallel()
	for _, name := range allStacks {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			g := graph.Grid(3, 4)
			p, err := buildTarget(name, g)
			if err != nil {
				t.Fatal(err)
			}
			out, err := Campaign{
				Faults:    2,
				Trials:    10,
				MaxSteps:  int64(5000 * (g.N() + g.M())),
				Seed:      3,
				NewDaemon: centralFactory,
			}.Run(p)
			if err != nil {
				t.Fatal(err)
			}
			if out.Recovered != out.Trials {
				t.Fatalf("recovered %d of %d", out.Recovered, out.Trials)
			}
			if !p.Legitimate() {
				t.Fatal("campaign ended in an illegitimate configuration")
			}
		})
	}
}

// TestCorruptionComposedWithApplyDelta interleaves the two staleness
// escape hatches by hand on every stack: a topology delta repaired
// through ApplyDelta, state corruption repaired through Invalidate,
// in both orders, each followed by full recovery. The armed witness
// must agree with the O(n) predicate at every recovery.
func TestCorruptionComposedWithApplyDelta(t *testing.T) {
	t.Parallel()
	for _, name := range allStacks {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			g := graph.Grid(3, 4)
			p, err := buildTarget(name, g)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(11))
			sys := program.NewSystem(p, daemon.NewCentral(17))
			budget := int64(5000 * (g.N() + g.M()))
			recover := func(ctx string) {
				t.Helper()
				res, err := sys.RunUntilLegitimate(budget)
				if err != nil || !res.Converged {
					t.Fatalf("%s: no recovery: %+v %v", ctx, res, err)
				}
				if !p.Legitimate() {
					t.Fatalf("%s: converged by witness but O(n) predicate disagrees", ctx)
				}
			}
			recover("initial stabilization")

			for round := 0; round < 4; round++ {
				// Order A: topology first (ApplyDelta), corruption second
				// (Invalidate).
				u, v, ok := churn.PickFlapEdge(g, rng)
				if !ok {
					t.Fatal("no flappable edge")
				}
				d, err := g.RemoveEdge(u, v)
				if err != nil {
					t.Fatal(err)
				}
				sys.ApplyDelta(d)
				p.CorruptNode(graph.NodeID(rng.Intn(g.N())), rng)
				sys.Invalidate()
				recover(fmt.Sprintf("round %d order A (edge {%d,%d} down)", round, u, v))

				// Order B: corruption first, then the topology restore
				// through ApplyDelta on the invalidated system.
				p.CorruptNode(graph.NodeID(rng.Intn(g.N())), rng)
				sys.Invalidate()
				d2, err := g.AddEdge(u, v)
				if err != nil {
					t.Fatal(err)
				}
				sys.ApplyDelta(d2)
				recover(fmt.Sprintf("round %d order B (edge {%d,%d} restored)", round, u, v))
			}
		})
	}
}

// TestChurnAdversaryAllStacks runs the Churn campaign — including the
// combined state+topology variant — on every stack.
func TestChurnAdversaryAllStacks(t *testing.T) {
	t.Parallel()
	for _, name := range allStacks {
		for _, corrupt := range []int{0, 2} {
			t.Run(fmt.Sprintf("%s/corrupt=%d", name, corrupt), func(t *testing.T) {
				t.Parallel()
				g := graph.Grid(3, 4)
				p, err := buildTarget(name, g)
				if err != nil {
					t.Fatal(err)
				}
				out, err := Churn{
					Trials:        6,
					Burst:         2,
					Kind:          churn.NodeCrash,
					CorruptFaults: corrupt,
					DownFor:       60,
					MaxSteps:      int64(5000 * (g.N() + g.M())),
					Seed:          21,
					NewDaemon:     centralFactory,
				}.Run(p, 0)
				if err != nil {
					t.Fatal(err)
				}
				if out.Recovered != out.Trials {
					t.Fatalf("recovered %d of %d churn trials", out.Recovered, out.Trials)
				}
				if !p.Legitimate() || !g.Connected() || g.NAlive() != g.N() {
					t.Fatalf("campaign left damage behind: legit=%v %s alive=%d", p.Legitimate(), g, g.NAlive())
				}
			})
		}
	}
}

// TestCorruptionInOrphanComponent is the partition-tolerance worst
// case on every stack: the take-down islands a region from the root
// (bridge cut on a lollipop tail), corruption lands specifically on
// nodes whose component lost the root, and the heal must absorb it —
// in both Invalidate/ApplyDelta orders (corrupt-while-down vs
// corrupt-after-heal).
func TestCorruptionInOrphanComponent(t *testing.T) {
	t.Parallel()
	for _, name := range allStacks {
		for _, after := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/after=%v", name, after), func(t *testing.T) {
				t.Parallel()
				g := graph.Lollipop(5, 4)
				p, err := buildTarget(name, g)
				if err != nil {
					t.Fatal(err)
				}
				out, err := Churn{
					Trials:              6,
					Burst:               1,
					Kind:                churn.BridgeCut,
					AllowDisconnect:     true,
					CorruptFaults:       2,
					CorruptOrphans:      true,
					CorruptAfterRestore: after,
					DownFor:             400,
					MaxSteps:            int64(5000 * (g.N() + g.M())),
					Seed:                13,
					NewDaemon:           centralFactory,
				}.Run(p, 0)
				if err != nil {
					t.Fatal(err)
				}
				if out.Recovered != out.Trials {
					t.Fatalf("recovered %d of %d trials", out.Recovered, out.Trials)
				}
				if !p.Legitimate() || !g.Connected() || g.NAlive() != g.N() {
					t.Fatalf("campaign left damage behind: legit=%v %s alive=%d", p.Legitimate(), g, g.NAlive())
				}
			})
		}
	}
}

// TestChurnDisconnectingKindsAllStacks drives the island-crash and
// partition take-downs (with random corruption on top) through the
// composed escape hatches on every stack.
func TestChurnDisconnectingKindsAllStacks(t *testing.T) {
	t.Parallel()
	for _, name := range allStacks {
		for _, kind := range []churn.Kind{churn.IslandCrash, churn.Partition} {
			t.Run(fmt.Sprintf("%s/%s", name, kind), func(t *testing.T) {
				t.Parallel()
				g := graph.Caterpillar(4, 2)
				p, err := buildTarget(name, g)
				if err != nil {
					t.Fatal(err)
				}
				out, err := Churn{
					Trials:          5,
					Burst:           1,
					Kind:            kind,
					AllowDisconnect: true,
					CorruptFaults:   1,
					DownFor:         300,
					MaxSteps:        int64(5000 * (g.N() + g.M())),
					Seed:            29,
					NewDaemon:       centralFactory,
				}.Run(p, 0)
				if err != nil {
					t.Fatal(err)
				}
				if out.Recovered != out.Trials {
					t.Fatalf("recovered %d of %d trials", out.Recovered, out.Trials)
				}
				if !p.Legitimate() || !g.Connected() || g.NAlive() != g.N() {
					t.Fatalf("campaign left damage behind: legit=%v %s alive=%d", p.Legitimate(), g, g.NAlive())
				}
			})
		}
	}
}

func TestSmallFaultsRecoverNoSlowerThanFullCorruption(t *testing.T) {
	// Sanity shape check for T4: median recovery from 1 fault should
	// not exceed the median recovery from full corruption by more
	// than noise allows (here: a generous 2x).
	g := graph.Ring(8)
	sub, err := spantree.NewBFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.NewSTNO(g, sub, 0)
	if err != nil {
		t.Fatal(err)
	}
	run := func(k int) float64 {
		out, err := Campaign{
			Faults:    k,
			Trials:    30,
			MaxSteps:  1 << 22,
			Seed:      7,
			NewDaemon: centralFactory,
		}.Run(s)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, m := range out.RecoveryMoves {
			sum += float64(m)
		}
		return sum / float64(len(out.RecoveryMoves))
	}
	small := run(1)
	full := run(g.N())
	if small > 2*full+10 {
		t.Errorf("1-fault mean recovery %.1f moves vs full-corruption %.1f — expected small ≤ ~full", small, full)
	}
}

// TestChurnCrashRootFailover drives the CrashRoot knob: with the
// root-failover wrapper on top of the stack, trials that crash the
// fixed root itself still recover — the orphaned remainder re-anchors
// at an acting root while the root is down, and the revive's heal
// abdicates the stand-in again.
func TestChurnCrashRootFailover(t *testing.T) {
	t.Parallel()
	g := graph.Lollipop(5, 4)
	in, err := token.NewCirculator(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := failover.New(g, in, 0)
	out, err := Churn{
		Trials:          4,
		Burst:           2,
		Kind:            churn.NodeCrash,
		CrashRoot:       true,
		AllowDisconnect: true,
		DownFor:         400,
		MaxSteps:        200000,
		Seed:            13,
		NewDaemon:       func(trial int) program.Daemon { return daemon.NewCentral(int64(trial)) },
	}.Run(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Recovered != out.Trials {
		t.Fatalf("recovered %d/%d root-crash trials", out.Recovered, out.Trials)
	}
	if p.LeaderFlaps == 0 {
		t.Fatal("root crashes promoted no acting root")
	}
}

package actor

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"netorient/internal/core"
	"netorient/internal/graph"
	"netorient/internal/program"
	"netorient/internal/spantree"
	"netorient/internal/token"
)

// The differential matrix: stacks × topologies. Each case runs an
// adversarially-initialized protocol on the message runtime and then
// projects the execution onto the serial oracle (CheckProjection).
type stackCase struct {
	name  string
	build func(g *graph.Graph) (program.Protocol, error)
}

func stacks() []stackCase {
	return []stackCase{
		{"bfstree", func(g *graph.Graph) (program.Protocol, error) {
			return spantree.NewBFSTree(g, 0)
		}},
		{"token", func(g *graph.Graph) (program.Protocol, error) {
			return token.NewCirculator(g, 0)
		}},
		{"dftno", func(g *graph.Graph) (program.Protocol, error) {
			sub, err := token.NewCirculator(g, 0)
			if err != nil {
				return nil, err
			}
			return core.NewDFTNO(g, sub, 0)
		}},
		{"stno", func(g *graph.Graph) (program.Protocol, error) {
			sub, err := spantree.NewBFSTree(g, 0)
			if err != nil {
				return nil, err
			}
			return core.NewSTNO(g, sub, 0)
		}},
	}
}

type topoCase struct {
	name  string
	build func() *graph.Graph
}

func topologies() []topoCase {
	return []topoCase{
		{"grid4x4", func() *graph.Graph { return graph.Grid(4, 4) }},
		{"ring9", func() *graph.Graph { return graph.Ring(9) }},
	}
}

func runProjection(t *testing.T, sc stackCase, tc topoCase, cfg Config, seed int64) {
	t.Helper()
	g := tc.build()
	p, err := sc.build(g)
	if err != nil {
		t.Fatal(err)
	}
	if rz, ok := p.(program.Randomizer); ok {
		rz.Randomize(rand.New(rand.NewSource(seed)))
	}
	cfg.Seed = seed
	cfg.Record = true
	rt, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.RunUntilLegitimate(context.Background(), 60*time.Second); err != nil {
		t.Fatalf("convergence: %v", err)
	}
	rt.Stop()
	if leg, ok := p.(program.Legitimacy); ok && !leg.Legitimate() {
		t.Fatal("runtime reported legitimate but O(n) predicate disagrees")
	}
	oracle, err := sc.build(tc.build())
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckProjection(rt, oracle); err != nil {
		t.Fatalf("projection: %v", err)
	}
	m := rt.Metrics()
	if m.Moves == 0 || m.MoveLogLen == 0 {
		t.Fatalf("no moves recorded (moves=%d log=%d)", m.Moves, m.MoveLogLen)
	}
	if int64(m.MoveLogLen) != m.Moves {
		t.Fatalf("move log length %d != move counter %d", m.MoveLogLen, m.Moves)
	}
}

// TestProjectionReliableLinks: every stack × topology under clean FIFO
// delivery projects onto a legal central-daemon execution and replays
// byte-identically on the Θ(n) full-scan oracle.
func TestProjectionReliableLinks(t *testing.T) {
	for _, sc := range stacks() {
		for _, tc := range topologies() {
			t.Run(sc.name+"/"+tc.name, func(t *testing.T) {
				t.Parallel()
				runProjection(t, sc, tc, Config{}, 7)
			})
		}
	}
}

// TestProjectionFaultyLinks: same matrix under seeded message drop and
// reorder plus a tiny mailbox. The projection guarantee is delivery-
// independent: whatever interleaving the faults induce, the fired
// moves still form a legal serial execution.
func TestProjectionFaultyLinks(t *testing.T) {
	for _, sc := range stacks() {
		for _, tc := range topologies() {
			t.Run(sc.name+"/"+tc.name, func(t *testing.T) {
				t.Parallel()
				runProjection(t, sc, tc, Config{
					Drop:    0.3,
					Reorder: 0.3,
					HoldMax: 3,
					Mailbox: 4,
				}, 11)
			})
		}
	}
}

// TestProjectionDetectsTamperedLog: corrupting one recorded move must
// make the oracle replay fail — the differential check has teeth.
func TestProjectionDetectsTamperedLog(t *testing.T) {
	g := graph.Ring(6)
	p, err := spantree.NewBFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.Randomize(rand.New(rand.NewSource(3)))
	rt, err := New(p, Config{Seed: 3, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.RunUntilLegitimate(context.Background(), 30*time.Second); err != nil {
		t.Fatal(err)
	}
	rt.Stop()
	if len(rt.moveLog) == 0 {
		t.Fatal("empty move log")
	}
	rt.moveLog[len(rt.moveLog)/2].Action += 1000
	oracle, err := spantree.NewBFSTree(graph.Ring(6), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckProjection(rt, oracle); err == nil {
		t.Fatal("tampered log replayed cleanly")
	}
}

// TestBackpressureMailboxOne: capacity-1 mailboxes drop most broadcast
// traffic, so convergence leans entirely on the request/reply recovery
// path and supervisor ticks. Sends never block, so no deadlock.
func TestBackpressureMailboxOne(t *testing.T) {
	g := graph.Grid(4, 4)
	p, err := spantree.NewBFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.Randomize(rand.New(rand.NewSource(5)))
	rt, err := New(p, Config{Seed: 5, Mailbox: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.RunUntilLegitimate(context.Background(), 60*time.Second); err != nil {
		t.Fatalf("convergence under backpressure: %v", err)
	}
	rt.Stop()
	if !p.Legitimate() {
		t.Fatal("not legitimate")
	}
}

// TestRunTimeoutMidDelivery: heavy drop slows convergence far past a
// tiny deadline; Run must return ErrTimeout with messages still in
// flight and shut down cleanly (leak check is in TestNoGoroutineLeaks).
func TestRunTimeoutMidDelivery(t *testing.T) {
	g := graph.Grid(5, 5)
	p, err := spantree.NewBFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.Randomize(rand.New(rand.NewSource(9)))
	rt, err := New(p, Config{Seed: 9, Drop: 0.9, Tick: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	err = rt.Run(context.Background(), func() bool { return false }, 30*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("got %v, want ErrTimeout", err)
	}
}

// TestCancelBeforeFirstMessage: a context cancelled before Run is even
// called must abort immediately, before any protocol message lands.
func TestCancelBeforeFirstMessage(t *testing.T) {
	g := graph.Ring(5)
	p, err := spantree.NewBFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(p, Config{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = rt.Run(ctx, func() bool { return false }, 10*time.Second)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestDoubleStartAndIdempotentStop: a Runtime runs at most once;
// Stop is idempotent and safe to call repeatedly.
func TestDoubleStartAndIdempotentStop(t *testing.T) {
	g := graph.Ring(4)
	p, err := spantree.NewBFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(p, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err == nil {
		t.Fatal("second Start succeeded")
	}
	rt.Stop()
	rt.Stop()
	if err := rt.Start(); err == nil {
		t.Fatal("Start after Stop succeeded")
	}
}

// TestCorruptNodeReconverges: service mode — Start, converge, inject a
// corruption through the admin surface, watch the armed witness notice
// and re-converge, and confirm the corruption invalidated the
// projection recording.
func TestCorruptNodeReconverges(t *testing.T) {
	g := graph.Grid(4, 4)
	p, err := spantree.NewBFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.Randomize(rand.New(rand.NewSource(21)))
	rt, err := New(p, Config{Seed: 21, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	waitFor := func(what string) {
		deadline := time.Now().Add(30 * time.Second)
		for !rt.Legitimate() {
			if time.Now().After(deadline) {
				t.Fatalf("timeout waiting for %s", what)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitFor("initial convergence")
	before := rt.Metrics().Convergences
	if err := rt.CorruptNode(5); err != nil {
		t.Fatal(err)
	}
	waitFor("re-convergence after corruption")
	if rt.MoveLog() != nil {
		t.Fatal("corruption did not invalidate the move log")
	}
	_ = before // convergence counting is tick-sampled; presence checked in metrics test
}

// TestApplyDeltaResync: flap an edge through the admin surface while
// the runtime is live; the global version bump forces a resync and the
// protocol re-converges on the new topology both times.
func TestApplyDeltaResync(t *testing.T) {
	g := graph.Grid(4, 4)
	p, err := spantree.NewBFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.Randomize(rand.New(rand.NewSource(31)))
	rt, err := New(p, Config{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	waitFor := func(what string) {
		deadline := time.Now().Add(30 * time.Second)
		for !rt.Legitimate() {
			if time.Now().After(deadline) {
				t.Fatalf("timeout waiting for %s", what)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitFor("initial convergence")
	var d graph.Delta
	rt.Locked(func() {
		var err error
		d, err = g.RemoveEdge(0, 1)
		if err != nil {
			t.Fatal(err)
		}
	})
	rt.ApplyDelta(d)
	waitFor("convergence after edge removal")
	rt.Locked(func() {
		var err error
		d, err = g.AddEdge(0, 1)
		if err != nil {
			t.Fatal(err)
		}
	})
	rt.ApplyDelta(d)
	waitFor("convergence after edge restore")
	if !p.Legitimate() {
		t.Fatal("not legitimate on restored topology")
	}
}

// TestMetricsAccounting: counters move, conservation holds between
// sent and its disposition counters, and the convergence counter
// registers the first illegitimate→legitimate transition.
func TestMetricsAccounting(t *testing.T) {
	g := graph.Grid(4, 4)
	p, err := spantree.NewBFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.Randomize(rand.New(rand.NewSource(41)))
	rt, err := New(p, Config{Seed: 41, Tick: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.RunUntilLegitimate(context.Background(), 60*time.Second); err != nil {
		t.Fatal(err)
	}
	// Let the supervisor observe the legitimate state at least once.
	time.Sleep(20 * time.Millisecond)
	rt.Stop()
	m := rt.Metrics()
	if m.Sent == 0 || m.Delivered == 0 || m.Moves == 0 {
		t.Fatalf("dead counters: %+v", m)
	}
	disposed := m.Delivered + m.DroppedFault + m.DroppedFull + m.DroppedLink + m.Held
	if disposed < m.Sent {
		t.Fatalf("message accounting leak: sent=%d disposed=%d", m.Sent, disposed)
	}
	if !m.Legitimate {
		t.Fatal("metrics say illegitimate after convergence")
	}
	if m.EnabledCount != 0 {
		// BFS tree is silent once legitimate.
		t.Fatalf("enabled count %d after silence", m.EnabledCount)
	}
	if m.Convergences == 0 {
		t.Fatal("no convergence event recorded")
	}
}

// TestNoGoroutineLeaks drives every exit path — success, timeout,
// pre-cancelled context, service Start/Stop with a topology-grown
// actor set — and asserts the goroutine count returns to baseline.
func TestNoGoroutineLeaks(t *testing.T) {
	before := runtime.NumGoroutine()

	mk := func(seed int64) *Runtime {
		g := graph.Grid(4, 4)
		p, err := spantree.NewBFSTree(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		p.Randomize(rand.New(rand.NewSource(seed)))
		rt, err := New(p, Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return rt
	}

	// Success path.
	if err := mk(1).RunUntilLegitimate(context.Background(), 60*time.Second); err != nil {
		t.Fatal(err)
	}
	// Timeout path.
	if err := mk(2).Run(context.Background(), func() bool { return false }, 20*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatal(err)
	}
	// Cancel path.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := mk(3).Run(ctx, func() bool { return false }, 10*time.Second); !errors.Is(err, context.Canceled) {
		t.Fatal(err)
	}
	// Service path with a mid-run delta.
	rt := mk(4)
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	var d graph.Delta
	rt.Locked(func() {
		var err error
		d, err = rt.Protocol().Graph().RemoveEdge(0, 1)
		if err != nil {
			t.Fatal(err)
		}
	})
	rt.ApplyDelta(d)
	rt.Stop()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

// Package actor executes a guarded-command protocol under an
// actor-style asynchronous message-passing runtime: one mailbox and
// one goroutine per node, bounded channels along links, and a
// conservative transformer that turns each protocol's read-neighbor
// guards into explicit state-broadcast / state-request messages.
//
// # The transformer
//
// The paper's algorithms read neighbor variables atomically; a
// message-passing deployment cannot. The runtime bridges the gap the
// way the request/reply transformers of Bernard, Devismes,
// Potop-Butucaru and Tixeuil (arXiv:0805.0851) do: a node may only
// evaluate its guards when its view of every node in its locality ball
// is provably current.
//
// Concretely, the authoritative configuration lives in the protocol
// object, guarded by one state mutex (composite atomicity, exactly the
// shared-memory model's move granularity). Each node v carries a
// version counter ver[v], bumped under the mutex whenever v fires a
// move, and each actor maintains seen[v][q] — the newest version of q
// it has been *told about by a message*. The freshness gate: actor v
// may evaluate and fire only while holding the mutex AND seen[v][q] ==
// ver[q] for every q in v's radius-R influence ball. When the gate
// holds, v's message-derived knowledge of its ball coincides with the
// true configuration, so evaluating the guards on the true state is
// identical to evaluating them on v's local view — the evaluation is
// implementable from messages alone. When it fails, v sends
// state-requests to the stale nodes and yields. After firing, v
// broadcasts its new version to its ball.
//
// # The projection guarantee
//
// Because every fired move re-validated its guard under the state
// mutex, the mutex-order sequence of fired moves is a legal
// central-daemon execution — one enabled processor per step — and the
// central daemon is a special case of the paper's distributed daemon.
// The runtime records that sequence (Config.Record) together with the
// initial configuration snapshot; CheckProjection replays it through a
// program.ScriptDaemon on the Θ(n) full-scan serial oracle, which
// independently re-verifies that every scripted move was enabled when
// selected and that the final configurations agree byte for byte.
// Convergence under this runtime is therefore inherited from the
// shared-memory proof, not re-argued.
//
// # Delivery faults and liveness
//
// Per-link policies inject message-level faults: seeded drop,
// reordering via bounded hold-back queues, and implicit delay (a held
// message is delivered only when later traffic or a supervisor flush
// releases it). Sends never block — a full mailbox drops the message
// and counts it — so the runtime is deadlock-free by construction.
// Lost state is recovered by the request/reply path plus periodic
// supervisor ticks: whenever some processor is enabled, every actor is
// re-prodded, re-requests whatever is stale, and retries. With drop
// probability < 1 every retry eventually succeeds, so enabled moves
// eventually fire and the projection above carries the shared-memory
// convergence proof over to the faulty-delivery runtime.
package actor

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"netorient/internal/graph"
	"netorient/internal/program"
)

// ErrTimeout is returned by Run when the predicate does not hold
// within the deadline.
var ErrTimeout = errors.New("actor: predicate not satisfied before deadline")

// message kinds. State and request messages traverse links and are
// subject to the link fault policy; ticks are supervisor prods
// delivered straight to mailboxes.
type kind uint8

const (
	msgState   kind = iota // from's state reached version ver
	msgRequest             // from asks the receiver to re-broadcast its version
	msgTick                // supervisor prod: re-check staleness and guards
)

type message struct {
	kind kind
	from graph.NodeID
	ver  uint64
}

// Config parameterizes the runtime.
type Config struct {
	// Seed derives every per-actor and per-link RNG stream.
	Seed int64
	// Mailbox is the per-node mailbox capacity (bounded channel).
	// Defaults to 64; minimum 1. Sends to a full mailbox are dropped
	// and counted, never blocked on.
	Mailbox int
	// Tick is the supervisor resync period. Defaults to 1ms.
	Tick time.Duration
	// Drop is the per-message probability that a link discards a
	// protocol message. Must be < 1 for liveness.
	Drop float64
	// Reorder is the per-message probability that a link holds a
	// message back, delivering it after later traffic (bounded by
	// HoldMax per link). Held messages are flushed by the supervisor,
	// so hold-back is delay + reorder, never loss.
	Reorder float64
	// HoldMax bounds the per-link hold-back queue. Defaults to 2 when
	// Reorder > 0.
	HoldMax int
	// Record keeps the initial configuration snapshot and the move log
	// for CheckProjection. Requires the protocol to implement
	// program.Snapshotter. Topology deltas and node corruptions
	// invalidate the recording (the oracle graph would diverge).
	Record bool
}

// Metrics is a point-in-time snapshot of the runtime's counters.
type Metrics struct {
	Sent         int64 // protocol messages offered to links
	Delivered    int64 // protocol messages placed in a mailbox
	DroppedFault int64 // discarded by the seeded link drop policy
	DroppedFull  int64 // discarded because the destination mailbox was full
	DroppedLink  int64 // discarded because the link no longer exists
	Held         int64 // held back by the reorder policy
	Requests     int64 // state-request messages sent
	States       int64 // state-broadcast messages sent
	Ticks        int64 // supervisor prods delivered
	Moves        int64 // protocol moves fired
	Convergences int64 // illegitimate→legitimate transitions observed
	EnabledCount int   // processors currently enabled
	Legitimate   bool  // legitimacy at snapshot time
	MailboxPeak  int64 // high-water mailbox depth
	MoveLogLen   int   // recorded moves (0 unless Config.Record)
}

type link struct {
	mu   sync.Mutex
	rng  *rand.Rand
	hold []message
	dst  chan message
}

type runState int32

const (
	stateIdle runState = iota
	stateRunning
	stateStopped
)

// Runtime executes one protocol instance under the message-passing
// model. Zero or one Run/Start cycle per Runtime.
type Runtime struct {
	proto  program.Protocol
	g      *graph.Graph
	cfg    Config
	radius int
	inf    program.Influencer

	// mu is the state mutex: the protocol configuration, ver, ball,
	// the enabled cache, the witness and the move log all live under
	// it. The graph is only read under it too, because admin topology
	// mutations happen while it is held.
	mu       sync.Mutex
	ver      []uint64
	ball     [][]graph.NodeID // radius-R ball of each node, self excluded
	enabled  []bool
	enabledN int
	witness  program.Witness
	leg      program.Legitimacy
	wasLegit bool
	moveLog  []program.Move
	initSnap []byte
	recordOK bool
	adminRng *rand.Rand
	stopped  bool
	pred     func() bool
	infBuf   []graph.NodeID
	guardBuf []program.ActionID
	taBuf    []graph.NodeID

	// linkMu guards the link map and the mbox slice (both mutated by
	// topology growth). Lock order: mu before linkMu.
	linkMu sync.RWMutex
	links  map[uint64]*link
	mbox   []chan message

	state    atomic.Int32
	stopCh   chan struct{}
	predDone chan struct{}
	predOnce sync.Once
	wg       sync.WaitGroup

	moves        atomic.Int64
	sent         atomic.Int64
	delivered    atomic.Int64
	droppedFault atomic.Int64
	droppedFull  atomic.Int64
	droppedLink  atomic.Int64
	held         atomic.Int64
	requests     atomic.Int64
	statesSent   atomic.Int64
	ticks        atomic.Int64
	convergences atomic.Int64
	mailboxPeak  atomic.Int64
}

func linkKey(u, v graph.NodeID) uint64 { return uint64(u)<<32 | uint64(uint32(v)) }

// New builds a runtime over p. The protocol must not be shared with
// any other engine.
func New(p program.Protocol, cfg Config) (*Runtime, error) {
	if cfg.Mailbox <= 0 {
		cfg.Mailbox = 64
	}
	if cfg.Tick <= 0 {
		cfg.Tick = time.Millisecond
	}
	if cfg.Reorder > 0 && cfg.HoldMax <= 0 {
		cfg.HoldMax = 2
	}
	if cfg.Drop < 0 || cfg.Drop >= 1 || cfg.Reorder < 0 || cfg.Reorder > 1 {
		return nil, fmt.Errorf("actor: fault rates out of range (drop=%v reorder=%v)", cfg.Drop, cfg.Reorder)
	}
	r := &Runtime{
		proto:    p,
		g:        p.Graph(),
		cfg:      cfg,
		radius:   program.ProtocolRadius(p),
		links:    map[uint64]*link{},
		stopCh:   make(chan struct{}),
		predDone: make(chan struct{}),
		adminRng: rand.New(rand.NewSource(cfg.Seed ^ 0x5eed0ad)),
	}
	r.inf, _ = p.(program.Influencer)
	r.leg, _ = p.(program.Legitimacy)
	if cfg.Record {
		sn, ok := p.(program.Snapshotter)
		if !ok {
			return nil, fmt.Errorf("actor: %s does not implement Snapshotter, cannot record for projection", p.Name())
		}
		r.initSnap = sn.Snapshot()
		r.recordOK = true
	}
	n := r.g.N()
	r.ver = make([]uint64, n)
	r.enabled = make([]bool, n)
	r.ball = make([][]graph.NodeID, n)
	r.rebuildBallsLocked()
	r.mbox = make([]chan message, n)
	for v := 0; v < n; v++ {
		r.mbox[v] = make(chan message, cfg.Mailbox)
	}
	r.rebuildLinksLocked()
	return r, nil
}

// Protocol returns the protocol under execution.
func (r *Runtime) Protocol() program.Protocol { return r.proto }

// rebuildBallsLocked recomputes every node's radius-R ball (self
// excluded). Caller holds mu (or is New).
func (r *Runtime) rebuildBallsLocked() {
	for v := 0; v < r.g.N(); v++ {
		id := graph.NodeID(v)
		r.infBuf = program.InfluenceBall(r.g, id, r.radius, r.infBuf[:0])
		b := r.ball[v][:0]
		for _, q := range r.infBuf {
			if q != id && q != graph.None {
				b = append(b, q)
			}
		}
		r.ball[v] = b
	}
}

// rebuildLinksLocked reconciles the directed-link map with the graph's
// current ball structure. Caller holds mu (or is New); takes linkMu.
// Links span the whole ball, not just the 1-hop neighborhood, so
// radius-2 protocols can broadcast and request across two hops; on the
// wire that is a relay, here it is modeled as a (faulty) virtual link.
func (r *Runtime) rebuildLinksLocked() {
	r.linkMu.Lock()
	defer r.linkMu.Unlock()
	want := map[uint64]graph.NodeID{}
	for v := 0; v < r.g.N(); v++ {
		if !r.g.Alive(graph.NodeID(v)) {
			continue
		}
		for _, q := range r.ball[v] {
			if r.g.Alive(q) {
				want[linkKey(graph.NodeID(v), q)] = q
			}
		}
	}
	for k := range r.links {
		if _, ok := want[k]; !ok {
			delete(r.links, k)
		}
	}
	for k, dst := range want {
		if _, ok := r.links[k]; !ok {
			r.links[k] = &link{
				rng: rand.New(rand.NewSource(r.cfg.Seed ^ int64(k*0x9e3779b97f4a7c15))),
				dst: r.mbox[dst],
			}
		}
	}
}

// rescanEnabledLocked recomputes the enabled cache from scratch.
// Caller holds mu.
func (r *Runtime) rescanEnabledLocked() {
	r.enabledN = 0
	for v := 0; v < r.g.N(); v++ {
		id := graph.NodeID(v)
		on := false
		if r.g.Alive(id) {
			r.guardBuf = r.proto.Enabled(id, r.guardBuf[:0])
			on = len(r.guardBuf) > 0
		}
		r.enabled[v] = on
		if on {
			r.enabledN++
		}
	}
}

// refreshEnabledLocked re-evaluates the enabled bit of one node.
// Caller holds mu.
func (r *Runtime) refreshEnabledLocked(v graph.NodeID) {
	on := false
	if r.g.Alive(v) {
		r.guardBuf = r.proto.Enabled(v, r.guardBuf[:0])
		on = len(r.guardBuf) > 0
	}
	if on != r.enabled[v] {
		r.enabled[v] = on
		if on {
			r.enabledN++
		} else {
			r.enabledN--
		}
	}
}

// afterMoveLocked maintains the derived state after v fired action a:
// the move log, the witness counters and the enabled cache, each over
// the move's influence set (the same dirty set the serial scheduler
// uses). Caller holds mu.
func (r *Runtime) afterMoveLocked(v graph.NodeID, a program.ActionID) {
	if r.recordOK {
		r.moveLog = append(r.moveLog, program.Move{Node: v, Action: a})
	}
	if r.inf != nil {
		r.infBuf = r.inf.Influence(v, a, r.infBuf[:0])
	} else {
		r.infBuf = program.InfluenceClosedNeighborhood(r.g, v, r.infBuf[:0])
	}
	if r.witness != nil {
		r.witness.WitnessRefresh(v)
		for _, q := range r.infBuf {
			if q != graph.None {
				r.witness.WitnessRefresh(q)
			}
		}
	}
	r.refreshEnabledLocked(v)
	for _, q := range r.infBuf {
		if q != graph.None && q != v {
			r.refreshEnabledLocked(q)
		}
	}
	// With a witness the legitimacy probe is O(1), so convergence
	// transitions are counted move-accurately here; without one the
	// supervisor counts them at tick granularity.
	if r.witness != nil {
		legit := r.witness.WitnessLegitimate()
		if legit && !r.wasLegit {
			r.convergences.Add(1)
		}
		r.wasLegit = legit
	}
}

// legitimateLocked evaluates legitimacy, O(1) off the witness when
// armed. Caller holds mu.
func (r *Runtime) legitimateLocked() bool {
	if r.witness != nil {
		return r.witness.WitnessLegitimate()
	}
	if r.leg != nil {
		return r.leg.Legitimate()
	}
	return false
}

// Start arms the witness, spawns one actor goroutine per node plus the
// supervisor, and prods every actor once. A Runtime runs at most once.
func (r *Runtime) Start() error {
	if !r.state.CompareAndSwap(int32(stateIdle), int32(stateRunning)) {
		return errors.New("actor: runtime already started")
	}
	r.mu.Lock()
	if w, ok := r.proto.(program.Witness); ok {
		w.WitnessReset()
		r.witness = w
	}
	r.rescanEnabledLocked()
	r.wasLegit = r.legitimateLocked()
	n := r.g.N()
	r.mu.Unlock()

	for v := 0; v < n; v++ {
		r.wg.Add(1)
		go r.actor(graph.NodeID(v), rand.New(rand.NewSource(r.cfg.Seed+int64(v))))
	}
	r.wg.Add(1)
	go r.supervise()
	r.tickAll()
	return nil
}

// Stop shuts the runtime down and waits for every goroutine to exit.
// Idempotent; safe after Start only.
func (r *Runtime) Stop() {
	if !r.state.CompareAndSwap(int32(stateRunning), int32(stateStopped)) {
		return
	}
	r.mu.Lock()
	r.stopped = true
	r.mu.Unlock()
	close(r.stopCh)
	r.wg.Wait()
}

// Run starts the runtime and blocks until pred holds (checked by the
// supervisor under the state mutex every tick), the context is
// cancelled, or the timeout elapses — then stops it. Returns nil,
// ctx.Err() or ErrTimeout respectively.
func (r *Runtime) Run(ctx context.Context, pred func() bool, timeout time.Duration) error {
	r.pred = pred
	if err := r.Start(); err != nil {
		return err
	}
	defer r.Stop()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-r.predDone:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return ErrTimeout
	}
}

// RunUntilLegitimate runs until the protocol's legitimacy predicate
// holds, O(1) per check off the armed witness.
func (r *Runtime) RunUntilLegitimate(ctx context.Context, timeout time.Duration) error {
	return r.Run(ctx, r.legitimateLocked, timeout)
}

// supervise is the liveness pump: every tick it flushes held-back
// messages, re-prods all actors while any processor is enabled (so
// dropped state and request messages are retried), counts convergence
// events, and checks the Run predicate.
func (r *Runtime) supervise() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.Tick)
	defer t.Stop()
	r.checkPred()
	for {
		select {
		case <-r.stopCh:
			return
		case <-t.C:
			r.flushHeld()
			r.mu.Lock()
			prod := r.enabledN > 0
			legit := r.legitimateLocked()
			if legit && !r.wasLegit {
				r.convergences.Add(1)
			}
			r.wasLegit = legit
			r.mu.Unlock()
			if prod {
				r.tickAll()
			}
			r.checkPred()
		}
	}
}

func (r *Runtime) checkPred() {
	if r.pred == nil {
		return
	}
	r.mu.Lock()
	ok := r.pred()
	r.mu.Unlock()
	if ok {
		r.predOnce.Do(func() { close(r.predDone) })
	}
}

// flushHeld delivers every held-back message on every link.
func (r *Runtime) flushHeld() {
	r.linkMu.RLock()
	defer r.linkMu.RUnlock()
	for _, l := range r.links {
		l.mu.Lock()
		for _, m := range l.hold {
			r.deliver(l.dst, m)
		}
		l.hold = l.hold[:0]
		l.mu.Unlock()
	}
}

// tickAll prods every live node's mailbox (best-effort, non-blocking).
func (r *Runtime) tickAll() {
	r.linkMu.RLock()
	defer r.linkMu.RUnlock()
	for v := range r.mbox {
		select {
		case r.mbox[v] <- message{kind: msgTick}:
			r.ticks.Add(1)
		default:
		}
	}
}

// deliver places m in a mailbox without blocking, tracking depth.
func (r *Runtime) deliver(dst chan message, m message) {
	select {
	case dst <- m:
		r.delivered.Add(1)
		d := int64(len(dst))
		for {
			p := r.mailboxPeak.Load()
			if d <= p || r.mailboxPeak.CompareAndSwap(p, d) {
				break
			}
		}
	default:
		r.droppedFull.Add(1)
	}
}

// send routes one protocol message from u to q through the link's
// fault policy. Never blocks.
func (r *Runtime) send(u, q graph.NodeID, m message) {
	r.sent.Add(1)
	if m.kind == msgRequest {
		r.requests.Add(1)
	} else {
		r.statesSent.Add(1)
	}
	r.linkMu.RLock()
	l := r.links[linkKey(u, q)]
	r.linkMu.RUnlock()
	if l == nil {
		r.droppedLink.Add(1)
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if r.cfg.Drop > 0 && l.rng.Float64() < r.cfg.Drop {
		r.droppedFault.Add(1)
		return
	}
	if r.cfg.Reorder > 0 && len(l.hold) < r.cfg.HoldMax && l.rng.Float64() < r.cfg.Reorder {
		l.hold = append(l.hold, m)
		r.held.Add(1)
		return
	}
	r.deliver(l.dst, m)
	// Releasing held messages *after* the one just delivered is what
	// realizes reordering on the FIFO channel.
	for len(l.hold) > 0 && l.rng.Float64() < 0.5 {
		r.deliver(l.dst, l.hold[0])
		copy(l.hold, l.hold[1:])
		l.hold = l.hold[:len(l.hold)-1]
	}
}

// actor is node v's event loop: drain the mailbox, update the local
// view, then try to move.
func (r *Runtime) actor(v graph.NodeID, rng *rand.Rand) {
	defer r.wg.Done()
	seen := map[graph.NodeID]uint64{} // newest version of q that v was told about
	var ballCopy, stale []graph.NodeID
	var guardBuf []program.ActionID
	for {
		select {
		case <-r.stopCh:
			return
		case m := <-r.mbox[v]:
			r.handle(v, m, seen)
		}
		for drained := false; !drained; {
			select {
			case m := <-r.mbox[v]:
				r.handle(v, m, seen)
			default:
				drained = true
			}
		}
		ballCopy, stale, guardBuf = r.tryMove(v, rng, seen, ballCopy, stale, guardBuf)
	}
}

// handle processes one message for v. seen is owned by v's goroutine.
func (r *Runtime) handle(v graph.NodeID, m message, seen map[graph.NodeID]uint64) {
	switch m.kind {
	case msgState:
		if m.ver > seen[m.from] {
			seen[m.from] = m.ver
		}
	case msgRequest:
		r.mu.Lock()
		ver := r.ver[v]
		r.mu.Unlock()
		r.send(v, m.from, message{kind: msgState, from: v, ver: ver})
	case msgTick:
		// Fall through to tryMove.
	}
}

// tryMove runs v's guarded-command step loop: while fresh and enabled,
// fire and broadcast; on staleness, request and yield. The three
// scratch slices are v-owned and returned for reuse.
func (r *Runtime) tryMove(v graph.NodeID, rng *rand.Rand, seen map[graph.NodeID]uint64,
	ballCopy, stale []graph.NodeID, guardBuf []program.ActionID) ([]graph.NodeID, []graph.NodeID, []program.ActionID) {
	for {
		stale = stale[:0]
		ballCopy = ballCopy[:0]
		fired := false
		var verNow uint64

		r.mu.Lock()
		if r.stopped || !r.g.Alive(v) {
			r.mu.Unlock()
			return ballCopy, stale, guardBuf
		}
		ballCopy = append(ballCopy, r.ball[v]...)
		for _, q := range ballCopy {
			if r.ver[q] != seen[q] {
				stale = append(stale, q)
			}
		}
		if len(stale) == 0 {
			// The freshness gate holds: v's view of its ball equals the
			// true configuration, so evaluating on the authoritative
			// state is evaluating on v's local view.
			guardBuf = r.proto.Enabled(v, guardBuf[:0])
			if len(guardBuf) > 0 {
				a := guardBuf[rng.Intn(len(guardBuf))]
				if r.proto.Execute(v, a) {
					fired = true
					r.ver[v]++
					verNow = r.ver[v]
					r.moves.Add(1)
					r.afterMoveLocked(v, a)
				}
			}
		}
		r.mu.Unlock()

		if len(stale) > 0 {
			for _, q := range stale {
				r.send(v, q, message{kind: msgRequest, from: v})
			}
			return ballCopy, stale, guardBuf
		}
		if !fired {
			return ballCopy, stale, guardBuf
		}
		for _, q := range ballCopy {
			r.send(v, q, message{kind: msgState, from: v, ver: verNow})
		}
	}
}

// Legitimate reports legitimacy, O(1) off the witness counters when
// the protocol implements program.Witness.
func (r *Runtime) Legitimate() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.legitimateLocked()
}

// EnabledCount returns the number of currently enabled processors,
// from the incrementally maintained cache.
func (r *Runtime) EnabledCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.enabledN
}

// EnabledNodes appends the currently enabled processors to buf in
// ascending order.
func (r *Runtime) EnabledNodes(buf []graph.NodeID) []graph.NodeID {
	r.mu.Lock()
	defer r.mu.Unlock()
	for v, on := range r.enabled {
		if on {
			buf = append(buf, graph.NodeID(v))
		}
	}
	return buf
}

// Moves returns the number of protocol moves fired so far.
func (r *Runtime) Moves() int64 { return r.moves.Load() }

// Locked runs f while holding the state mutex, giving admin callers a
// consistent read (or fault write) against the protocol configuration.
// f must not call back into the runtime.
func (r *Runtime) Locked(f func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f()
}

// Snapshot returns the protocol's canonical snapshot taken under the
// state mutex, or nil if the protocol is not a Snapshotter.
func (r *Runtime) Snapshot() []byte {
	sn, ok := r.proto.(program.Snapshotter)
	if !ok {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return sn.Snapshot()
}

// InitialSnapshot returns the configuration recorded at New (only
// under Config.Record).
func (r *Runtime) InitialSnapshot() []byte { return r.initSnap }

// MoveLog returns a copy of the recorded move sequence, or nil if
// recording was off or was invalidated by a topology delta or node
// corruption.
func (r *Runtime) MoveLog() []program.Move {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.recordOK {
		return nil
	}
	out := make([]program.Move, len(r.moveLog))
	copy(out, r.moveLog)
	return out
}

// Metrics snapshots the runtime counters.
func (r *Runtime) Metrics() Metrics {
	r.mu.Lock()
	en := r.enabledN
	legit := r.legitimateLocked()
	logLen := len(r.moveLog)
	if !r.recordOK {
		logLen = 0
	}
	r.mu.Unlock()
	return Metrics{
		Sent:         r.sent.Load(),
		Delivered:    r.delivered.Load(),
		DroppedFault: r.droppedFault.Load(),
		DroppedFull:  r.droppedFull.Load(),
		DroppedLink:  r.droppedLink.Load(),
		Held:         r.held.Load(),
		Requests:     r.requests.Load(),
		States:       r.statesSent.Load(),
		Ticks:        r.ticks.Load(),
		Moves:        r.moves.Load(),
		Convergences: r.convergences.Load(),
		EnabledCount: en,
		Legitimate:   legit,
		MailboxPeak:  r.mailboxPeak.Load(),
		MoveLogLen:   logLen,
	}
}

// CorruptNode injects a transient fault into v's local state under the
// state mutex, using the runtime's admin RNG. The witness is re-armed
// conservatively, the enabled cache rescanned, v's version bumped so
// its ball resyncs, and the projection recording invalidated.
func (r *Runtime) CorruptNode(v graph.NodeID) error {
	nc, ok := r.proto.(program.NodeCorruptor)
	if !ok {
		return fmt.Errorf("actor: %s does not implement NodeCorruptor", r.proto.Name())
	}
	r.mu.Lock()
	if v < 0 || int(v) >= r.g.N() {
		r.mu.Unlock()
		return fmt.Errorf("actor: corrupt: node %d out of range", v)
	}
	nc.CorruptNode(v, r.adminRng)
	r.ver[v]++
	if r.witness != nil {
		r.witness.WitnessReset()
	}
	r.rescanEnabledLocked()
	r.recordOK = false
	r.mu.Unlock()
	r.tickAll()
	return nil
}

// ApplyDelta incorporates one topology mutation already applied to the
// protocol's graph: protocol hook, array growth, ball and link
// reconciliation, conservative witness re-arm and enabled rescan, and
// a global version bump so every node resynchronizes its view.
// Topology mutations are admin-rate events; this is deliberately the
// heavyweight safe path, and it invalidates the projection recording.
func (r *Runtime) ApplyDelta(d graph.Delta) {
	r.mu.Lock()
	if ta, ok := r.proto.(program.TopologyAware); ok {
		r.taBuf = ta.TopologyChanged(d, r.taBuf[:0])
	}
	n := r.g.N()
	for len(r.ver) < n {
		r.ver = append(r.ver, 0)
		r.enabled = append(r.enabled, false)
		r.ball = append(r.ball, nil)
	}
	r.rebuildBallsLocked()
	for v := range r.ver {
		r.ver[v]++
	}
	if r.witness != nil {
		r.witness.WitnessReset()
	}
	r.rescanEnabledLocked()
	r.recordOK = false

	r.linkMu.Lock()
	for len(r.mbox) < n {
		v := len(r.mbox)
		r.mbox = append(r.mbox, make(chan message, r.cfg.Mailbox))
		if r.state.Load() == int32(stateRunning) {
			r.wg.Add(1)
			go r.actor(graph.NodeID(v), rand.New(rand.NewSource(r.cfg.Seed+int64(v))))
		}
	}
	r.linkMu.Unlock()
	r.rebuildLinksLocked()
	r.mu.Unlock()
	r.tickAll()
}

package actor

import (
	"bytes"
	"fmt"

	"netorient/internal/program"
)

// CheckProjection verifies the runtime's projection guarantee against
// the serial oracle: the recorded move log of a message-runtime
// execution must be a legal central-daemon execution (every scripted
// move enabled at its step, independently re-derived by the Θ(n)
// full-scan scheduler through a program.ScriptDaemon) and must replay
// to a byte-identical final configuration.
//
// rt must have run with Config.Record and be stopped; oracle must be a
// fresh instance of the same protocol on an identical topology,
// implementing program.Snapshotter. Same lockstep discipline as the
// incremental-vs-fullscan and parallel-vs-serial differential suites.
func CheckProjection(rt *Runtime, oracle program.Protocol) error {
	sn, ok := oracle.(program.Snapshotter)
	if !ok {
		return fmt.Errorf("actor: oracle %s does not implement Snapshotter", oracle.Name())
	}
	initial := rt.InitialSnapshot()
	if initial == nil {
		return fmt.Errorf("actor: runtime did not record (Config.Record off)")
	}
	log := rt.MoveLog()
	if log == nil {
		return fmt.Errorf("actor: move log invalidated (topology delta or corruption during the run)")
	}
	final := rt.Snapshot()
	if err := sn.Restore(initial); err != nil {
		return fmt.Errorf("actor: oracle restore: %w", err)
	}
	sd := program.NewScriptDaemon(log)
	sys := program.NewSystemFullScan(oracle, sd)
	for i := range log {
		n, err := sys.Step()
		if err != nil {
			return fmt.Errorf("actor: oracle step %d: %w", i, err)
		}
		if sd.Err != nil {
			return fmt.Errorf("actor: projection illegal: %w", sd.Err)
		}
		if n != 1 {
			return fmt.Errorf("actor: oracle step %d: scripted move (node %d, action %d) did not fire",
				i, log[i].Node, log[i].Action)
		}
	}
	got := sn.Snapshot()
	if !bytes.Equal(got, final) {
		return fmt.Errorf("actor: replay diverged: oracle snapshot (%d bytes) != runtime snapshot (%d bytes) after %d moves",
			len(got), len(final), len(log))
	}
	return nil
}

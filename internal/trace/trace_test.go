package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	st := Summarize([]float64{4, 1, 3, 2, 5})
	if st.Count != 5 || st.Min != 1 || st.Max != 5 || st.Median != 3 || st.Mean != 3 {
		t.Fatalf("stats %+v wrong", st)
	}
	if math.Abs(st.StdDev-math.Sqrt(2)) > 1e-9 {
		t.Errorf("stddev %v, want √2", st.StdDev)
	}
	if st.P95 < 4.5 || st.P95 > 5 {
		t.Errorf("p95 %v out of range", st.P95)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if st := Summarize(nil); st.Count != 0 {
		t.Error("empty sample should be zero")
	}
	st := Summarize([]float64{7})
	if st.Min != 7 || st.Max != 7 || st.Median != 7 || st.P95 != 7 || st.StdDev != 0 {
		t.Errorf("singleton stats %+v wrong", st)
	}
}

func TestSummarizeInts(t *testing.T) {
	st := SummarizeInts([]int64{10, 20, 30})
	if st.Mean != 20 || st.Median != 20 {
		t.Errorf("int stats %+v wrong", st)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatal("Summarize sorted the caller's slice")
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("T1: demo", "topology", "n", "rounds")
	tb.AddRow("ring", 16, 3.50)
	tb.AddRow("clique", 8, 1.0)
	if tb.Rows() != 2 {
		t.Fatalf("rows %d, want 2", tb.Rows())
	}
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"T1: demo", "topology", "ring", "clique", "3.5", "--"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Title + header + rule + two data rows.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5", len(lines))
	}
}

func TestTableRenderCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(1, 2)
	var buf bytes.Buffer
	if err := tb.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "a,b\n1,2\n" {
		t.Errorf("csv %q", got)
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		1.0:    "1",
		1.5:    "1.5",
		1.25:   "1.25",
		1.2345: "1.23",
	}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

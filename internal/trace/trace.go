// Package trace provides the measurement plumbing of the benchmark
// harness: summary statistics over repeated trials and plain-text
// tables matching the rows the experiment index (DESIGN.md §5)
// promises.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"unicode/utf8"
)

// Stats summarises a sample.
type Stats struct {
	Count  int
	Min    float64
	Max    float64
	Mean   float64
	Median float64
	P95    float64
	StdDev float64
}

// Summarize computes Stats over xs; an empty sample yields zeros.
func Summarize(xs []float64) Stats {
	if len(xs) == 0 {
		return Stats{}
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	st := Stats{
		Count:  len(s),
		Min:    s[0],
		Max:    s[len(s)-1],
		Median: quantile(s, 0.5),
		P95:    quantile(s, 0.95),
	}
	var sum float64
	for _, x := range s {
		sum += x
	}
	st.Mean = sum / float64(len(s))
	var sq float64
	for _, x := range s {
		d := x - st.Mean
		sq += d * d
	}
	st.StdDev = math.Sqrt(sq / float64(len(s)))
	return st
}

// SummarizeInts is Summarize over integer samples.
func SummarizeInts(xs []int64) Stats {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Summarize(fs)
}

// quantile returns the q-quantile of sorted s by linear interpolation.
func quantile(s []float64, q float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Table is a plain-text table with aligned columns.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are rendered with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch x := c.(type) {
		case float64:
			row[i] = trimFloat(x)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// trimFloat renders floats compactly (2 decimals, no trailing zeros).
func trimFloat(x float64) string {
	s := fmt.Sprintf("%.2f", x)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Render writes the table as aligned text. Widths are computed in
// runes so headers with multi-byte symbols (Δ, ⌈log₂N⌉, …) align.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && utf8.RuneCountInString(cell) > widths[i] {
				widths[i] = utf8.RuneCountInString(cell)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - utf8.RuneCountInString(cell); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		_, err := fmt.Fprintln(w, b.String())
		return err
	}
	if err := line(t.Headers); err != nil {
		return err
	}
	rule := make([]string, len(t.Headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if err := line(rule); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// RenderCSV writes the table as CSV (no quoting — cells must not
// contain commas).
func (t *Table) RenderCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Headers, ",")); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// RenderJSON writes the table as a JSON object with title, headers and
// rows (all cells as strings, exactly as rendered). cmd/benchtab uses
// it to commit machine-readable baselines (BENCH_*.json) that future
// performance PRs can diff against.
func (t *Table) RenderJSON(w io.Writer) error {
	rows := t.rows
	if rows == nil {
		rows = [][]string{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Title   string     `json:"title"`
		Headers []string   `json:"headers"`
		Rows    [][]string `json:"rows"`
	}{t.Title, t.Headers, rows})
}

// Package churn drives seeded topology-event schedules over a running
// program.System: edge flaps, node crash/join cycles and network
// partitions with later heals, applied through graph mutation +
// System.ApplyDelta so the incremental machinery survives every event.
// It is the operational test of the headline property: the protocols
// are self-stabilizing, so a topology change is just another transient
// fault, and the system must re-converge from whatever state the event
// leaves behind (Devismes–Ilcinkas–Johnen make exactly this scenario —
// tree maintenance under disconnection/reconnection — the benchmark
// for dynamic self-stabilization).
//
// The engine serialises events: each event takes an element down,
// lets the system run for a configurable number of steps, restores the
// element, then measures re-stabilization inside the recovery window.
// Event selection is seeded and connectivity-preserving (the live
// graph stays connected outside partition-down phases, and the root is
// never crashed — the paper's model has no root failover).
package churn

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"netorient/internal/graph"
	"netorient/internal/program"
)

// Kind selects a churn scenario.
type Kind uint8

// Scenario kinds.
const (
	// EdgeFlap removes one connectivity-preserving edge and restores
	// it DownFor steps later.
	EdgeFlap Kind = iota + 1
	// NodeCrash removes one connectivity-preserving non-root node
	// (with all incident edges) and revives it, with its old edges,
	// DownFor steps later.
	NodeCrash
	// Partition cuts every edge between a random region and the rest
	// of the network, healing the cut DownFor steps later. The down
	// phase intentionally disconnects the live graph.
	Partition
	// BridgeCut removes one bridge — an edge whose removal splits the
	// live graph — and restores it DownFor steps later. Requires
	// Config.AllowDisconnect.
	BridgeCut
	// IslandCrash removes one cut vertex — a non-root node whose
	// removal splits the live graph into islands — and revives it, with
	// its old edges, DownFor steps later. Requires
	// Config.AllowDisconnect.
	IslandCrash
)

// String renders the kind.
func (k Kind) String() string {
	switch k {
	case EdgeFlap:
		return "edge-flap"
	case NodeCrash:
		return "node-crash"
	case Partition:
		return "partition"
	case BridgeCut:
		return "bridge-cut"
	case IslandCrash:
		return "island-crash"
	}
	return "?"
}

// Config parameterises a churn run.
type Config struct {
	// Seed drives event selection.
	Seed int64
	// Events is the number of churn events.
	Events int
	// Period is the recovery window after each restore, in daemon
	// steps: re-stabilization is measured inside it, and the next
	// event fires at its end. It is the inverse churn rate.
	Period int64
	// DownFor is how many steps the removed element stays down.
	DownFor int64
	// Mix cycles through the scenario kinds; default {EdgeFlap}.
	Mix []Kind
	// PartitionSize bounds the cut-off region (default n/4, min 1).
	PartitionSize int
	// MaxSteps bounds the final full recovery (default 50000·(n+m)).
	MaxSteps int64
	// AllowDisconnect lifts the connectivity-preservation restriction:
	// EdgeFlap and NodeCrash pick candidates without a connectivity
	// check, BridgeCut and IslandCrash become available, and the down
	// phase of every event is measured with RunUntilLegitimate — the
	// protocols' legitimacy is decided per component, so a split system
	// can (and must) converge while split, which SplitConverged and
	// SplitSteps record.
	AllowDisconnect bool
}

// Stats aggregates a run.
type Stats struct {
	Events int
	// Deltas is the number of topology deltas applied (a node crash
	// is one delta, a partition one per cut edge).
	Deltas int
	// RecoveredInPeriod counts events whose restore was followed by
	// legitimacy within Period steps.
	RecoveredInPeriod int
	// RecoverySteps/Moves/Rounds hold one entry per in-period
	// recovery, measured from the restore.
	RecoverySteps  []int64
	RecoveryMoves  []int64
	RecoveryRounds []int64
	// SkippedEvents counts events abandoned because the seeded picker
	// found no candidate (e.g. EdgeFlap on a tree, BridgeCut on a
	// 2-edge-connected graph). Skipped events do not abort the run and
	// are excluded from Events.
	SkippedEvents int
	// SplitComponents holds, per AllowDisconnect event, the number of
	// live components during the down phase.
	SplitComponents []int
	// SplitConverged counts AllowDisconnect events whose down phase
	// reached per-component legitimacy within DownFor steps;
	// SplitSteps holds one entry per such event, measured from the
	// take-down.
	SplitConverged int
	SplitSteps     []int64
	// Final reports the run-off recovery after the last event.
	Final program.RunResult
}

// Errors.
var (
	ErrNoCandidate = errors.New("churn: no connectivity-preserving candidate")
)

// Runner binds an execution engine to its graph for a churn run. Any
// program.Stepper works — the serial incremental scheduler, the
// full-scan oracle, or the sharded parallel stepper — so one campaign
// definition runs under every engine. The protocol must be the one the
// engine drives, over exactly this graph.
type Runner struct {
	G    *graph.Graph
	Sys  program.Stepper
	Root graph.NodeID
}

// apply performs one graph mutation result on the system.
func (r *Runner) apply(d graph.Delta, st *Stats) {
	r.Sys.ApplyDelta(d)
	st.Deltas++
}

// idle steps the system without a predicate for exactly n steps (or
// until terminal — silent protocols stop moving once stabilized).
func (r *Runner) idle(n int64) error {
	_, err := r.Sys.RunUntil(func() bool { return false }, n)
	return err
}

// Run executes the configured schedule and measures re-stabilization
// after every restore. The system's protocol must implement
// program.Legitimacy (RunUntilLegitimate errors otherwise) and run on
// exactly r.G.
func (r *Runner) Run(cfg Config) (Stats, error) {
	if r.Sys.Protocol().Graph() != r.G {
		return Stats{}, errors.New("churn: system runs on a different graph than the runner")
	}
	mix := cfg.Mix
	if len(mix) == 0 {
		mix = []Kind{EdgeFlap}
	}
	maxSteps := cfg.MaxSteps
	if maxSteps <= 0 {
		maxSteps = int64(50000 * (r.G.N() + r.G.M()))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var st Stats
	for e := 0; e < cfg.Events; e++ {
		kind := mix[e%len(mix)]
		restore, err := r.takeDown(kind, rng, cfg, &st)
		if errors.Is(err, ErrNoCandidate) {
			// The seeded picker came up empty (no bridge, no spare
			// edge, ...). That is a property of the current topology,
			// not a failure of the run: record it and move on.
			st.SkippedEvents++
			continue
		}
		if err != nil {
			return st, fmt.Errorf("churn: event %d (%s): %w", e, kind, err)
		}
		if cfg.AllowDisconnect {
			// Per-component legitimacy means a split system must
			// converge while split: measure the down phase instead of
			// idling through it.
			st.SplitComponents = append(st.SplitComponents, r.G.Components())
			res, err := r.Sys.RunUntilLegitimate(cfg.DownFor)
			if err != nil {
				return st, err
			}
			if res.Converged {
				st.SplitConverged++
				st.SplitSteps = append(st.SplitSteps, res.Steps)
				if err := r.idle(cfg.DownFor - res.Steps); err != nil {
					return st, err
				}
			}
		} else if err := r.idle(cfg.DownFor); err != nil {
			return st, err
		}
		if err := restore(); err != nil {
			return st, fmt.Errorf("churn: event %d (%s) restore: %w", e, kind, err)
		}
		st.Events++
		res, err := r.Sys.RunUntilLegitimate(cfg.Period)
		if err != nil {
			return st, err
		}
		if res.Converged {
			st.RecoveredInPeriod++
			st.RecoverySteps = append(st.RecoverySteps, res.Steps)
			st.RecoveryMoves = append(st.RecoveryMoves, res.Moves)
			st.RecoveryRounds = append(st.RecoveryRounds, res.Rounds)
			if err := r.idle(cfg.Period - res.Steps); err != nil {
				return st, err
			}
		}
	}
	final, err := r.Sys.RunUntilLegitimate(maxSteps)
	if err != nil {
		return st, err
	}
	st.Final = final
	return st, nil
}

// takeDown applies one event's down phase and returns the closure that
// restores it.
func (r *Runner) takeDown(kind Kind, rng *rand.Rand, cfg Config, st *Stats) (func() error, error) {
	apply := func(d graph.Delta) { r.apply(d, st) }
	switch kind {
	case EdgeFlap:
		pick := PickFlapEdge
		if cfg.AllowDisconnect {
			pick = PickAnyEdge
		}
		u, v, ok := pick(r.G, rng)
		if !ok {
			return nil, ErrNoCandidate
		}
		return FlapDown(r.G, u, v, apply)

	case NodeCrash:
		pick := PickCrashNode
		if cfg.AllowDisconnect {
			pick = PickAnyNode
		}
		v, ok := pick(r.G, r.Root, rng)
		if !ok {
			return nil, ErrNoCandidate
		}
		return CrashDown(r.G, v, apply)

	case BridgeCut:
		if !cfg.AllowDisconnect {
			return nil, fmt.Errorf("churn: %s requires AllowDisconnect", kind)
		}
		u, v, ok := PickBridgeEdge(r.G, rng)
		if !ok {
			return nil, ErrNoCandidate
		}
		return FlapDown(r.G, u, v, apply)

	case IslandCrash:
		if !cfg.AllowDisconnect {
			return nil, fmt.Errorf("churn: %s requires AllowDisconnect", kind)
		}
		v, ok := PickCutVertex(r.G, r.Root, rng)
		if !ok {
			return nil, ErrNoCandidate
		}
		return CrashDown(r.G, v, apply)

	case Partition:
		size := cfg.PartitionSize
		if size <= 0 {
			size = r.G.NAlive() / 4
		}
		if size < 1 {
			size = 1
		}
		cut, ok := PickPartitionCut(r.G, r.Root, size, rng)
		if !ok {
			return nil, ErrNoCandidate
		}
		return CutDown(r.G, cut, apply)
	}
	return nil, fmt.Errorf("churn: unknown kind %d", kind)
}

// FlapDown removes the edge {u,v}, feeding the delta through apply
// (which must call System.ApplyDelta on every system driving a
// protocol over g), and returns the closure that restores the edge the
// same way. The down/restore choreography lives here once; the engine
// and the fault.Churn campaign both consume it.
func FlapDown(g *graph.Graph, u, v graph.NodeID, apply func(graph.Delta)) (func() error, error) {
	d, err := g.RemoveEdge(u, v)
	if err != nil {
		return nil, err
	}
	apply(d)
	return func() error {
		d2, err := g.AddEdge(u, v)
		if err != nil {
			return err
		}
		apply(d2)
		return nil
	}, nil
}

// CrashDown removes node v with every incident edge and returns the
// closure that revives it (AddNode revives the lowest dead slot — v,
// when crashes are restored before the next one drops) and reattaches
// its surviving ex-neighbours.
func CrashDown(g *graph.Graph, v graph.NodeID, apply func(graph.Delta)) (func() error, error) {
	d, err := g.RemoveNode(v)
	if err != nil {
		return nil, err
	}
	ex := append([]graph.NodeID(nil), d.Touched[1:]...)
	apply(d)
	return func() error {
		id, d2 := g.AddNode()
		apply(d2)
		for _, q := range ex {
			if g.Alive(q) && !g.HasEdge(id, q) {
				d3, err := g.AddEdge(id, q)
				if err != nil {
					return err
				}
				apply(d3)
			}
		}
		return nil
	}, nil
}

// CutDown removes every edge of the cut and returns the closure that
// re-adds the ones whose endpoints are still alive.
func CutDown(g *graph.Graph, cut []graph.Edge, apply func(graph.Delta)) (func() error, error) {
	for _, e := range cut {
		d, err := g.RemoveEdge(e.U, e.V)
		if err != nil {
			return nil, err
		}
		apply(d)
	}
	return func() error {
		for _, e := range cut {
			if !g.Alive(e.U) || !g.Alive(e.V) || g.HasEdge(e.U, e.V) {
				continue
			}
			d, err := g.AddEdge(e.U, e.V)
			if err != nil {
				return err
			}
			apply(d)
		}
		return nil
	}, nil
}

// PickFlapEdge returns a uniformly random live edge whose removal
// keeps the live graph connected, by rejection sampling (every
// connected graph that is not a tree has one; on a tree ok is false).
func PickFlapEdge(g *graph.Graph, rng *rand.Rand) (u, v graph.NodeID, ok bool) {
	edges := g.Edges()
	if len(edges) == 0 {
		return graph.None, graph.None, false
	}
	for attempts := 0; attempts < 4*len(edges)+16; attempts++ {
		e := edges[rng.Intn(len(edges))]
		if connectedWithoutEdge(g, e.U, e.V) {
			return e.U, e.V, true
		}
	}
	return graph.None, graph.None, false
}

// PickCrashNode returns a uniformly random live non-root node whose
// removal keeps the rest of the live graph connected.
func PickCrashNode(g *graph.Graph, root graph.NodeID, rng *rand.Rand) (graph.NodeID, bool) {
	n := g.N()
	for attempts := 0; attempts < 4*n+16; attempts++ {
		v := graph.NodeID(rng.Intn(n))
		if v == root || !g.Alive(v) {
			continue
		}
		if connectedWithoutNode(g, root, v) {
			return v, true
		}
	}
	return graph.None, false
}

// PickAnyEdge returns a uniformly random live edge with no
// connectivity check — removals may split the graph.
func PickAnyEdge(g *graph.Graph, rng *rand.Rand) (u, v graph.NodeID, ok bool) {
	edges := g.Edges()
	if len(edges) == 0 {
		return graph.None, graph.None, false
	}
	e := edges[rng.Intn(len(edges))]
	return e.U, e.V, true
}

// PickAnyNode returns a uniformly random live non-root node with no
// connectivity check — crashes may island regions.
func PickAnyNode(g *graph.Graph, root graph.NodeID, rng *rand.Rand) (graph.NodeID, bool) {
	n := g.N()
	for attempts := 0; attempts < 4*n+16; attempts++ {
		v := graph.NodeID(rng.Intn(n))
		if v != root && g.Alive(v) {
			return v, true
		}
	}
	return graph.None, false
}

// PickBridgeEdge returns a uniformly random bridge — a live edge whose
// removal splits its component — by rejection sampling; ok is false
// when the graph has none (2-edge-connected components only).
func PickBridgeEdge(g *graph.Graph, rng *rand.Rand) (u, v graph.NodeID, ok bool) {
	edges := g.Edges()
	if len(edges) == 0 {
		return graph.None, graph.None, false
	}
	perm := rng.Perm(len(edges))
	for _, i := range perm {
		e := edges[i]
		if bridgeEdge(g, e.U, e.V) {
			return e.U, e.V, true
		}
	}
	return graph.None, graph.None, false
}

// bridgeEdge reports whether removing {u,v} splits their component —
// a component-local test, sound on already-disconnected graphs.
func bridgeEdge(g *graph.Graph, u, v graph.NodeID) bool {
	reached := sweep(g, u, func(a, b graph.NodeID) bool {
		return (a == u && b == v) || (a == v && b == u)
	})
	return reached < g.ComponentSize(g.ComponentOf(u))
}

// cutVertex reports whether removing v splits its component.
func cutVertex(g *graph.Graph, v graph.NodeID) bool {
	var start graph.NodeID = graph.None
	for _, q := range g.Neighbors(v) {
		if q != graph.None {
			start = q
			break
		}
	}
	if start == graph.None {
		return false
	}
	reached := sweep(g, start, func(a, b graph.NodeID) bool { return b == v })
	return reached < g.ComponentSize(g.ComponentOf(v))-1
}

// PickCutVertex returns a uniformly random live non-root cut vertex —
// a node whose removal splits its component into islands; ok is false
// when no non-root node is one.
func PickCutVertex(g *graph.Graph, root graph.NodeID, rng *rand.Rand) (graph.NodeID, bool) {
	n := g.N()
	perm := rng.Perm(n)
	for _, i := range perm {
		v := graph.NodeID(i)
		if v == root || !g.Alive(v) || g.Degree(v) < 2 {
			continue
		}
		if cutVertex(g, v) {
			return v, true
		}
	}
	return graph.None, false
}

// PickPartitionCut grows a random connected region of up to `size`
// live nodes not containing root and returns the edges between the
// region and the rest — removing them all disconnects exactly that
// region.
func PickPartitionCut(g *graph.Graph, root graph.NodeID, size int, rng *rand.Rand) ([]graph.Edge, bool) {
	n := g.N()
	var seed graph.NodeID = graph.None
	for attempts := 0; attempts < 4*n+16; attempts++ {
		v := graph.NodeID(rng.Intn(n))
		if v != root && g.Alive(v) {
			seed = v
			break
		}
	}
	if seed == graph.None {
		return nil, false
	}
	inRegion := make(map[graph.NodeID]bool, size)
	inRegion[seed] = true
	frontier := []graph.NodeID{seed}
	for len(frontier) > 0 && len(inRegion) < size {
		v := frontier[0]
		frontier = frontier[1:]
		for _, q := range g.Neighbors(v) {
			if q == graph.None || q == root || inRegion[q] {
				continue
			}
			if len(inRegion) >= size {
				break
			}
			inRegion[q] = true
			frontier = append(frontier, q)
		}
	}
	var cut []graph.Edge
	for v := range inRegion {
		for _, q := range g.Neighbors(v) {
			if q == graph.None || inRegion[q] {
				continue
			}
			e := graph.Edge{U: v, V: q}
			if e.U > e.V {
				e.U, e.V = e.V, e.U
			}
			cut = append(cut, e)
		}
	}
	// Deduplicate (both endpoints in the region never happens, but an
	// edge is discovered once per region endpoint) and sort for seeded
	// determinism independent of map iteration.
	seen := make(map[graph.Edge]bool, len(cut))
	uniq := cut[:0]
	for _, e := range cut {
		if !seen[e] {
			seen[e] = true
			uniq = append(uniq, e)
		}
	}
	sort.Slice(uniq, func(i, j int) bool {
		return uniq[i].U < uniq[j].U || (uniq[i].U == uniq[j].U && uniq[i].V < uniq[j].V)
	})
	return uniq, len(uniq) > 0
}

// connectedWithoutEdge reports whether the live graph stays connected
// with the edge {a,b} ignored.
func connectedWithoutEdge(g *graph.Graph, a, b graph.NodeID) bool {
	return sweep(g, a, func(u, q graph.NodeID) bool {
		return (u == a && q == b) || (u == b && q == a)
	}) == g.NAlive()
}

// connectedWithoutNode reports whether every live node except x is
// reachable from start with x ignored.
func connectedWithoutNode(g *graph.Graph, start, x graph.NodeID) bool {
	if start == x {
		return false
	}
	reached := sweep(g, start, func(u, q graph.NodeID) bool {
		return q == x
	})
	return reached == g.NAlive()-1
}

// sweep BFS-counts the live nodes reachable from start, skipping
// traversals for which skip(from, to) holds.
func sweep(g *graph.Graph, start graph.NodeID, skip func(u, q graph.NodeID) bool) int {
	visited := make([]bool, g.N())
	visited[start] = true
	queue := []graph.NodeID{start}
	count := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, q := range g.Neighbors(u) {
			if q == graph.None || visited[q] || skip(u, q) {
				continue
			}
			visited[q] = true
			count++
			queue = append(queue, q)
		}
	}
	return count
}

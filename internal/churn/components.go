package churn

import (
	"sort"

	"netorient/internal/apps"
	"netorient/internal/graph"
)

// ComponentStatus describes one live component at an instant of a
// churn run: its label, size, whether it contains the protocol root,
// and — for the components that do not (the detected orphan state) —
// a locally elected stand-in leader. The paper's model has no root
// failover, so the stand-in is measurement/bootstrap data, not a
// protocol variable: orphan components quiesce under the per-component
// legitimacy predicates and the stand-in identifies who would re-seed
// them if the operator promoted one.
type ComponentStatus struct {
	Label   int
	Size    int
	HasRoot bool
	Leader  graph.NodeID
}

// ComponentReport enumerates the live components of g, electing a
// stand-in leader per component by flooding max-id election
// (apps.ElectComponentRoots over NodeIDs, which are distinct by
// construction). Results are sorted by label for seeded determinism.
func ComponentReport(g *graph.Graph, root graph.NodeID) ([]ComponentStatus, error) {
	leaders, _, err := apps.ElectComponentRoots(g, nil)
	if err != nil {
		return nil, err
	}
	rootComp := -1
	if g.Alive(root) {
		rootComp = g.ComponentOf(root)
	}
	out := make([]ComponentStatus, 0, len(leaders))
	for label, leader := range leaders {
		out = append(out, ComponentStatus{
			Label:   label,
			Size:    g.ComponentSize(label),
			HasRoot: label == rootComp,
			Leader:  leader,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out, nil
}

package churn

import (
	"sort"

	"netorient/internal/apps"
	"netorient/internal/graph"
)

// ComponentStatus describes one live component at an instant of a
// churn run: its label, size, whether it contains the protocol root,
// and — for the components that do not (the detected orphan state) —
// a locally elected stand-in leader. In the paper's model the
// stand-in is measurement/bootstrap data, not a protocol variable:
// orphan components quiesce under the per-component legitimacy
// predicates. With the internal/failover wrapper the election is a
// protocol variable — the acting root — and FailoverReport adds the
// wrapper's view to the same rows.
type ComponentStatus struct {
	Label   int
	Size    int
	HasRoot bool
	Leader  graph.NodeID

	// Failover columns, filled by FailoverReport (graph.None / zero
	// from plain ComponentReport): the effective root the failover
	// wrapper has acting for the component, the cumulative acting-root
	// promotions its nodes have seen, how many nodes' Orphaned
	// verdicts still disagree with ground truth, and the component's
	// detection latency in steps (−1 when unknown).
	ActingRoot  graph.NodeID
	Flaps       int64
	Lagging     int
	DetectSteps int64
}

// ComponentReport enumerates the live components of g, electing a
// stand-in leader per component by flooding max-id election
// (apps.ElectComponentRoots over NodeIDs, which are distinct by
// construction). Results are sorted by label for seeded determinism.
func ComponentReport(g *graph.Graph, root graph.NodeID) ([]ComponentStatus, error) {
	leaders, _, err := apps.ElectComponentRoots(g, nil)
	if err != nil {
		return nil, err
	}
	rootComp := -1
	if g.Alive(root) {
		rootComp = g.ComponentOf(root)
	}
	out := make([]ComponentStatus, 0, len(leaders))
	for label, leader := range leaders {
		out = append(out, ComponentStatus{
			Label:       label,
			Size:        g.ComponentSize(label),
			HasRoot:     label == rootComp,
			Leader:      leader,
			ActingRoot:  graph.None,
			DetectSteps: -1,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out, nil
}

// FailoverReport is ComponentReport plus the failover wrapper's view:
// the acting root per component (graph.None when the component has
// none or more than one — both transients), the cumulative leader
// flap count across its nodes, and how many nodes still disagree with
// OrphanTruth. detect, when non-nil, supplies per-component detection
// latencies keyed by component label (as measured by Soak phases);
// missing labels stay at −1.
func FailoverReport(g *graph.Graph, root graph.NodeID, p Failover, detect map[int]int64) ([]ComponentStatus, error) {
	out, err := ComponentReport(g, root)
	if err != nil {
		return nil, err
	}
	idx := make(map[int]*ComponentStatus, len(out))
	rootsSeen := make(map[int]int, len(out))
	for i := range out {
		idx[out[i].Label] = &out[i]
	}
	for v := 0; v < g.N(); v++ {
		id := graph.NodeID(v)
		if !g.Alive(id) {
			continue
		}
		label := g.ComponentOf(id)
		c, ok := idx[label]
		if !ok {
			continue
		}
		c.Flaps += p.FlapCount(id)
		if p.Orphaned(id) != p.OrphanTruth(id) {
			c.Lagging++
		}
		if p.IsRoot(id) {
			rootsSeen[label]++
			if rootsSeen[label] == 1 {
				c.ActingRoot = id
			} else {
				c.ActingRoot = graph.None // multiple acting roots mid-merge
			}
		}
	}
	if detect != nil {
		for label, d := range detect {
			if c, ok := idx[label]; ok {
				c.DetectSteps = d
			}
		}
	}
	return out, nil
}

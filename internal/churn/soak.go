package churn

import (
	"fmt"
	"math/rand"
	"time"

	"netorient/internal/graph"
	"netorient/internal/program"
)

// This file implements the long-lived multi-partition soak engine.
// Where Runner.Run drives one fault kind per event and expects the
// graph to reconnect, Soak layers faults: partition cuts overlap (up
// to MaxCuts outstanding at once), heals are partial (one cut at a
// time, in a seeded order, while others stay open), the fixed root
// itself crashes and revives, and LeaveSplit cuts are never healed at
// all — the run must end converged with components that never
// reunite. It therefore requires a protocol with root failover: every
// orphan component must detect its disconnection and re-anchor at an
// acting root, which is exactly the Failover surface below.
//
// After every mutation the engine measures detection latency (steps
// until each component's Orphaned verdicts all match OrphanTruth),
// settles the system, and checks the soak invariants:
//
//   - detection converged and then *keeps holding* for SettleHold
//     steps (no false-orphan flaps after detection settles);
//   - exactly one effective root per live component, and the fixed
//     root — when alive — is its component's root (no stuck acting
//     roots after a heal or revive);
//   - the incremental witness verdict equals the O(n) Legitimate()
//     scan at every settle point.
//
// Violations are collected, not fatal: a soak reports everything it
// saw so cmd/stabsim can exit non-zero with the full list.

// Failover is the introspection surface the soak engine needs from a
// disconnection-detection/root-failover wrapper. *failover.Protocol
// satisfies it; the engine only assumes this interface so alternative
// wrappers can be soaked too.
type Failover interface {
	program.Legitimacy
	program.RootAuthority
	Orphaned(v graph.NodeID) bool
	OrphanTruth(v graph.NodeID) bool
	DetectionAccurate() bool
	ActingRoots() []graph.NodeID
	FlapCount(v graph.NodeID) int64
}

// SoakConfig parameterises a soak run. Zero values select defaults.
type SoakConfig struct {
	// Seed drives every random choice; equal seeds replay the run.
	Seed int64
	// Phases is the number of mutation phases before the final heal
	// sequence (default 12).
	Phases int
	// StepBudget bounds each phase's detection loop and settle run
	// separately (default 20000·(n+m)).
	StepBudget int64
	// WallBudget bounds the whole run's wall-clock time; 0 means
	// unbounded. When exceeded, remaining mutation phases are skipped
	// (Truncated is set) but the final heal sequence still runs.
	WallBudget time.Duration
	// SettleHold is how many steps DetectionAccurate must keep holding
	// after each settle (default 2n).
	SettleHold int64
	// MaxCuts caps how many partition cuts may be outstanding at once
	// (default 3).
	MaxCuts int
	// LeaveSplit is how many cuts the final heal sequence leaves open
	// forever — components that never reunite (default 0).
	LeaveSplit int
	// RootDown is how many phases the fixed root stays crashed per
	// crash (default 2).
	RootDown int
	// CorruptRate is the per-phase probability that a transient fault
	// overwrites the local state of a few random live nodes on top of
	// the phase's topology mutation — composing the state-corruption
	// fault model (package fault) with the partition schedule. The
	// protocol must implement program.NodeCorruptor; the knob is
	// ignored otherwise. Default 0 (off), so existing seeded runs
	// replay unchanged.
	CorruptRate float64
}

func (c SoakConfig) withDefaults(g *graph.Graph) SoakConfig {
	if c.Phases <= 0 {
		c.Phases = 12
	}
	if c.StepBudget <= 0 {
		c.StepBudget = int64(20000 * (g.N() + g.M()))
	}
	if c.SettleHold <= 0 {
		c.SettleHold = int64(2 * g.N())
	}
	if c.MaxCuts <= 0 {
		c.MaxCuts = 3
	}
	if c.MaxCuts < c.LeaveSplit {
		c.MaxCuts = c.LeaveSplit
	}
	if c.RootDown <= 0 {
		c.RootDown = 2
	}
	return c
}

// SoakPhase records one phase of a soak: the mutation applied, the
// detection latency it induced, and the settle that followed.
type SoakPhase struct {
	Index      int
	Op         string
	Components int // live components after the mutation
	// DetectSteps is the global detection latency: steps after the
	// mutation until every live node's Orphaned verdict matched
	// OrphanTruth. −1 when the budget ran out first.
	DetectSteps int64
	// Detect maps component label → that component's own detection
	// latency (first step at which all its verdicts matched truth).
	Detect      map[int]int64
	SettleSteps int64
	SettleMoves int64
	Converged   bool
	ActingRoots int
	// LeaderFlaps is the cumulative acting-root promotion count across
	// all nodes at phase end.
	LeaderFlaps int64
}

// SoakStats aggregates a soak run.
type SoakStats struct {
	Phases     []SoakPhase
	Violations []string
	// FinalComponents is the live component count when the run ended —
	// 1+LeaveSplit on a clean run.
	FinalComponents int
	TotalSteps      int64
	TotalMoves      int64
	Deltas          int64
	// Corruptions counts the nodes hit by CorruptRate transient faults.
	Corruptions int64
	LeaderFlaps int64
	Elapsed     time.Duration
	// Truncated is set when WallBudget expired before all mutation
	// phases ran.
	Truncated bool
}

// Ok reports whether the soak saw no invariant violations.
func (st SoakStats) Ok() bool { return len(st.Violations) == 0 }

// totalFlaps sums promotions over the whole id space (dead nodes keep
// their counts).
func totalFlaps(g *graph.Graph, p Failover) int64 {
	var sum int64
	for v := 0; v < g.N(); v++ {
		sum += p.FlapCount(graph.NodeID(v))
	}
	return sum
}

// Soak runs the multi-partition soak schedule against p, which must
// be the exact protocol r.Sys drives. Any engine works; the
// witness≡scan invariant is only checked when the engine is the serial
// incremental runner (program.NewSystem), the one engine that refreshes
// witness counters move-by-move.
func (r *Runner) Soak(p Failover, cfg SoakConfig) (SoakStats, error) {
	var st SoakStats
	if got, ok := r.Sys.Protocol().(Failover); !ok || got != p {
		return st, fmt.Errorf("churn: soak protocol is not the system's protocol")
	}
	g := r.G
	cfg = cfg.withDefaults(g)
	rng := rand.New(rand.NewSource(cfg.Seed))
	start := time.Now()
	steps0, moves0 := r.Sys.Steps(), r.Sys.Moves()

	viol := func(format, op string, idx int, args ...any) {
		head := fmt.Sprintf("phase %d (%s): ", idx, op)
		st.Violations = append(st.Violations, head+fmt.Sprintf(format, args...))
	}
	apply := func(d graph.Delta) {
		r.Sys.ApplyDelta(d)
		st.Deltas++
	}

	// runPhase measures detection latency for the mutation just
	// applied, settles, and checks every soak invariant.
	runPhase := func(idx int, op string) error {
		ph := SoakPhase{Index: idx, Op: op, Components: g.Components(), Detect: map[int]int64{}, DetectSteps: -1}

		// Component membership is stable until the next mutation; fix
		// the labels now and watch each component agree with truth.
		comps := map[int][]graph.NodeID{}
		for v := 0; v < g.N(); v++ {
			id := graph.NodeID(v)
			if g.Alive(id) {
				c := g.ComponentOf(id)
				comps[c] = append(comps[c], id)
			}
		}
		agreed := func(label int) bool {
			for _, v := range comps[label] {
				if p.Orphaned(v) != p.OrphanTruth(v) {
					return false
				}
			}
			return true
		}
		for s := int64(0); ; s++ {
			for label := range comps {
				if _, done := ph.Detect[label]; !done && agreed(label) {
					ph.Detect[label] = s
				}
			}
			if len(ph.Detect) == len(comps) {
				ph.DetectSteps = s
				break
			}
			if s >= cfg.StepBudget {
				break
			}
			n, err := r.Sys.Step()
			if err != nil {
				return err
			}
			if n == 0 { // quiesced while still disagreeing with truth
				break
			}
		}
		if ph.DetectSteps < 0 {
			viol("detection did not converge within %d steps", op, idx, cfg.StepBudget)
		}

		res, err := r.Sys.RunUntilLegitimate(cfg.StepBudget)
		if err != nil {
			return err
		}
		ph.SettleSteps, ph.SettleMoves, ph.Converged = res.Steps, res.Moves, res.Converged
		if !res.Converged {
			viol("no settle within %d steps", op, idx, cfg.StepBudget)
		}

		// Invariant: witness verdict ≡ O(n) scan at the settle point.
		// Only the serial incremental scheduler refreshes witness
		// counters move-by-move; under the full-scan oracle or the
		// parallel stepper the counters go stale by design, so the
		// check would report false violations there.
		if sys, ok := r.Sys.(*program.System); ok && !sys.FullScan() && res.Converged {
			if w, ok := p.(program.Witness); ok {
				if wit, scan := w.WitnessLegitimate(), p.Legitimate(); wit != scan {
					viol("witness %v but Legitimate() %v at settle", op, idx, wit, scan)
				}
			}
		}

		// Invariant: exactly one effective root per live component, and
		// the fixed root — when alive — anchors its own component.
		roots := p.ActingRoots()
		ph.ActingRoots = len(roots)
		if res.Converged {
			perComp := map[int]int{}
			for _, v := range roots {
				perComp[g.ComponentOf(v)]++
			}
			for label := range comps {
				if perComp[label] != 1 {
					viol("component %d has %d effective roots (want 1)", op, idx, label, perComp[label])
				}
			}
			if len(roots) != len(comps) {
				viol("%d effective roots for %d components", op, idx, len(roots), len(comps))
			}
			if g.Alive(r.Root) && !p.IsRoot(r.Root) {
				viol("fixed root %d alive but not authoritative", op, idx, r.Root)
			}
		}

		// Invariant: no false-orphan flaps once detection settled.
		if res.Converged {
			held, err := r.Sys.HoldsFor(p.DetectionAccurate, cfg.SettleHold)
			if err != nil {
				return err
			}
			if !held {
				viol("Orphaned verdict flapped within %d post-settle steps", op, idx, cfg.SettleHold)
			}
		}

		ph.LeaderFlaps = totalFlaps(g, p)
		st.Phases = append(st.Phases, ph)
		return nil
	}

	// Outstanding faults.
	var cuts []func() error // partition restore closures, FIFO
	var rootRestore func() error
	rootDownLeft := 0

	trySplit := func(force bool) (string, bool, error) {
		if !force && len(cuts) >= cfg.MaxCuts {
			return "", false, nil
		}
		size := 1 + rng.Intn(max(1, g.NAlive()/3))
		cut, ok := PickPartitionCut(g, r.Root, size, rng)
		if !ok {
			return "", false, nil
		}
		restore, err := CutDown(g, cut, apply)
		if err != nil {
			return "", false, err
		}
		cuts = append(cuts, restore)
		return fmt.Sprintf("split:%d-edges", len(cut)), true, nil
	}
	heal := func() (string, bool, error) {
		// Never dip below the LeaveSplit floor: those cuts are the
		// components that never reunite, so the schedule must not heal
		// them by accident either.
		if len(cuts) <= cfg.LeaveSplit {
			return "", false, nil
		}
		i := rng.Intn(len(cuts))
		restore := cuts[i]
		cuts = append(cuts[:i], cuts[i+1:]...)
		if err := restore(); err != nil {
			return "", false, err
		}
		return "heal", true, nil
	}
	crashRoot := func(remaining int) (string, bool, error) {
		if rootRestore != nil || !g.Alive(r.Root) || remaining <= cfg.RootDown {
			return "", false, nil
		}
		// CrashDown's revive reclaims the lowest dead slot; the soak
		// only crashes nodes via this path, so the root id comes back.
		restore, err := CrashDown(g, r.Root, apply)
		if err != nil {
			return "", false, err
		}
		rootRestore = restore
		rootDownLeft = cfg.RootDown
		return "root-crash", true, nil
	}

	// Phase 0: baseline settle — arms the witness and checks the
	// invariants before any fault.
	phase := 0
	if err := runPhase(phase, "baseline"); err != nil {
		return st, err
	}
	phase++

	for i := 0; i < cfg.Phases; i++ {
		if cfg.WallBudget > 0 && time.Since(start) > cfg.WallBudget {
			st.Truncated = true
			break
		}
		op, did, err := "", false, error(nil)
		if rootRestore != nil {
			rootDownLeft--
			if rootDownLeft <= 0 {
				if err := rootRestore(); err != nil {
					return st, err
				}
				rootRestore = nil
				op, did = "root-revive", true
			}
		}
		if !did {
			// Seeded preference: mostly splits, some heals, an
			// occasional root crash; fall through so a phase always
			// mutates when any fault is possible.
			order := [][]int{{0, 1, 2}, {0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 0, 2}, {2, 0, 1}}[rng.Intn(6)]
			for _, k := range order {
				switch k {
				case 0:
					op, did, err = trySplit(false)
				case 1:
					op, did, err = heal()
				case 2:
					op, did, err = crashRoot(cfg.Phases - i)
				}
				if err != nil {
					return st, err
				}
				if did {
					break
				}
			}
		}
		if !did {
			op = "idle"
		}
		// Layer state corruption over the topology fault: transient
		// faults and partition events are independent in the model, so
		// the soak exercises their composition. The corrupted nodes'
		// guards go stale wholesale, hence the Invalidate — same repair
		// path the fault campaigns use.
		if cfg.CorruptRate > 0 && rng.Float64() < cfg.CorruptRate {
			if nc, ok := p.(program.NodeCorruptor); ok {
				k := 1 + rng.Intn(3)
				hit := 0
				for attempts := 0; hit < k && attempts < 8*k; attempts++ {
					v := graph.NodeID(rng.Intn(g.N()))
					if g.Alive(v) {
						nc.CorruptNode(v, rng)
						hit++
					}
				}
				if hit > 0 {
					r.Sys.Invalidate()
					st.Corruptions += int64(hit)
					op = fmt.Sprintf("%s+corrupt:%d", op, hit)
				}
			}
		}
		if err := runPhase(phase, op); err != nil {
			return st, err
		}
		phase++
	}

	// Final sequence: revive the root if it is still down, then heal
	// all but LeaveSplit cuts — one measured phase each, so heal-time
	// abdication is checked at every merge.
	if rootRestore != nil {
		if err := rootRestore(); err != nil {
			return st, err
		}
		rootRestore = nil
		if err := runPhase(phase, "final-root-revive"); err != nil {
			return st, err
		}
		phase++
	}
	for len(cuts) > cfg.LeaveSplit {
		restore := cuts[0]
		cuts = cuts[1:]
		if err := restore(); err != nil {
			return st, err
		}
		if err := runPhase(phase, "final-heal"); err != nil {
			return st, err
		}
		phase++
	}
	// Guarantee the never-reuniting components by actual component
	// count, not by open-cut count: a heal of an *earlier* cut can
	// re-add edges that bridge a later, never-healed cut's region, so
	// an open cut does not always still disconnect. Split until the
	// graph really has 1+LeaveSplit components.
	for attempts := 0; g.Components() < 1+cfg.LeaveSplit && attempts < cfg.LeaveSplit+4; attempts++ {
		op, did, err := trySplit(true)
		if err != nil {
			return st, err
		}
		if !did {
			break
		}
		if err := runPhase(phase, "final-"+op); err != nil {
			return st, err
		}
		phase++
	}

	st.FinalComponents = g.Components()
	if cfg.LeaveSplit == 0 && st.FinalComponents != 1 {
		st.Violations = append(st.Violations,
			fmt.Sprintf("final: %d components after healing every cut (want 1)", st.FinalComponents))
	}
	st.TotalSteps = r.Sys.Steps() - steps0
	st.TotalMoves = r.Sys.Moves() - moves0
	st.LeaderFlaps = totalFlaps(g, p)
	st.Elapsed = time.Since(start)
	return st, nil
}

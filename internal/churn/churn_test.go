package churn_test

import (
	"fmt"
	"math/rand"
	"testing"

	"netorient/internal/churn"
	"netorient/internal/core"
	"netorient/internal/daemon"
	"netorient/internal/graph"
	"netorient/internal/program"
	"netorient/internal/spantree"
	"netorient/internal/token"
)

type target interface {
	program.Protocol
	program.Legitimacy
}

func buildStack(name string, g *graph.Graph) (target, error) {
	switch name {
	case "dftc":
		return token.NewCirculator(g, 0)
	case "bfstree":
		return spantree.NewBFSTree(g, 0)
	case "dfstree":
		return spantree.NewDFSTree(g, 0)
	case "dftno":
		sub, err := token.NewCirculator(g, 0)
		if err != nil {
			return nil, err
		}
		return core.NewDFTNO(g, sub, 0)
	case "stno":
		sub, err := spantree.NewBFSTree(g, 0)
		if err != nil {
			return nil, err
		}
		return core.NewSTNO(g, sub, 0)
	}
	return nil, fmt.Errorf("unknown stack %q", name)
}

// TestEngineRecoversAllStacks runs a mixed flap/crash/partition
// schedule over every protocol stack and requires full recovery: after
// the last restore the system must re-stabilize and the O(n) predicate
// must agree.
func TestEngineRecoversAllStacks(t *testing.T) {
	t.Parallel()
	stacks := []string{"dftc", "bfstree", "dfstree", "dftno", "stno"}
	for _, name := range stacks {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			g := graph.Grid(5, 5)
			p, err := buildStack(name, g)
			if err != nil {
				t.Fatal(err)
			}
			if r, ok := p.(program.Randomizer); ok {
				r.Randomize(rand.New(rand.NewSource(6)))
			}
			sys := program.NewSystem(p, daemon.NewCentral(2))
			run := &churn.Runner{G: g, Sys: sys, Root: 0}
			st, err := run.Run(churn.Config{
				Seed:    3,
				Events:  9,
				Period:  4000,
				DownFor: 150,
				Mix:     []churn.Kind{churn.EdgeFlap, churn.NodeCrash, churn.Partition},
			})
			if err != nil {
				t.Fatal(err)
			}
			if st.Events != 9 {
				t.Fatalf("ran %d events, want 9", st.Events)
			}
			if st.Deltas < 9 {
				t.Fatalf("only %d deltas applied", st.Deltas)
			}
			if !st.Final.Converged {
				t.Fatalf("no final recovery: %+v", st.Final)
			}
			if !p.Legitimate() {
				t.Fatal("final configuration not legitimate by the O(n) predicate")
			}
			if !g.Connected() || g.NAlive() != 25 {
				t.Fatalf("engine left the graph damaged: %s, alive %d", g, g.NAlive())
			}
		})
	}
}

// TestEngineDeterminism pins seeded reproducibility: equal seeds give
// equal schedules and equal recovery statistics.
func TestEngineDeterminism(t *testing.T) {
	t.Parallel()
	runOnce := func() churn.Stats {
		g := graph.Grid(4, 4)
		p, err := buildStack("dftno", g)
		if err != nil {
			t.Fatal(err)
		}
		sys := program.NewSystem(p, daemon.NewCentral(8))
		run := &churn.Runner{G: g, Sys: sys, Root: 0}
		st, err := run.Run(churn.Config{Seed: 5, Events: 5, Period: 3000, DownFor: 80})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := runOnce(), runOnce()
	if a.Deltas != b.Deltas || a.RecoveredInPeriod != b.RecoveredInPeriod ||
		fmt.Sprint(a.RecoveryMoves) != fmt.Sprint(b.RecoveryMoves) {
		t.Fatalf("seeded runs diverge: %+v vs %+v", a, b)
	}
}

// TestPickersPreserveConnectivity checks the seeded selection helpers
// directly.
func TestPickersPreserveConnectivity(t *testing.T) {
	t.Parallel()
	g := graph.Grid(4, 4)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		u, v, ok := churn.PickFlapEdge(g, rng)
		if !ok {
			t.Fatal("grid has removable edges")
		}
		if _, err := g.RemoveEdge(u, v); err != nil {
			t.Fatal(err)
		}
		if !g.Connected() {
			t.Fatalf("flap pick {%d,%d} disconnected the graph", u, v)
		}
		if _, err := g.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		v, ok := churn.PickCrashNode(g, 0, rng)
		if !ok {
			t.Fatal("grid has crashable nodes")
		}
		if v == 0 {
			t.Fatal("picked the root")
		}
		d, err := g.RemoveNode(v)
		if err != nil {
			t.Fatal(err)
		}
		if !g.Connected() {
			t.Fatalf("crash pick %d disconnected the live graph", v)
		}
		id, _ := g.AddNode()
		for _, q := range d.Touched[1:] {
			if _, err := g.AddEdge(id, q); err != nil {
				t.Fatal(err)
			}
		}
	}
	// A tree has no removable edge: ok must be false, not a bogus pick.
	tree := graph.KAryTree(7, 2)
	if _, _, ok := churn.PickFlapEdge(tree, rand.New(rand.NewSource(2))); ok {
		t.Fatal("flap pick on a tree should fail")
	}
	// Partition cut really cuts, heal really heals.
	cut, ok := churn.PickPartitionCut(g, 0, 4, rng)
	if !ok || len(cut) == 0 {
		t.Fatal("no partition cut found")
	}
	for _, e := range cut {
		if _, err := g.RemoveEdge(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	if g.Connected() {
		t.Fatal("cut did not disconnect")
	}
	for _, e := range cut {
		if _, err := g.AddEdge(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	if !g.Connected() {
		t.Fatal("heal did not reconnect")
	}
}

package churn_test

import (
	"fmt"
	"math/rand"
	"testing"

	"netorient/internal/churn"
	"netorient/internal/core"
	"netorient/internal/daemon"
	"netorient/internal/graph"
	"netorient/internal/program"
	"netorient/internal/spantree"
	"netorient/internal/token"
)

type target interface {
	program.Protocol
	program.Legitimacy
}

func buildStack(name string, g *graph.Graph) (target, error) {
	switch name {
	case "dftc":
		return token.NewCirculator(g, 0)
	case "bfstree":
		return spantree.NewBFSTree(g, 0)
	case "dfstree":
		return spantree.NewDFSTree(g, 0)
	case "dftno":
		sub, err := token.NewCirculator(g, 0)
		if err != nil {
			return nil, err
		}
		return core.NewDFTNO(g, sub, 0)
	case "stno":
		sub, err := spantree.NewBFSTree(g, 0)
		if err != nil {
			return nil, err
		}
		return core.NewSTNO(g, sub, 0)
	}
	return nil, fmt.Errorf("unknown stack %q", name)
}

// TestEngineRecoversAllStacks runs a mixed flap/crash/partition
// schedule over every protocol stack and requires full recovery: after
// the last restore the system must re-stabilize and the O(n) predicate
// must agree.
func TestEngineRecoversAllStacks(t *testing.T) {
	t.Parallel()
	stacks := []string{"dftc", "bfstree", "dfstree", "dftno", "stno"}
	for _, name := range stacks {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			g := graph.Grid(5, 5)
			p, err := buildStack(name, g)
			if err != nil {
				t.Fatal(err)
			}
			if r, ok := p.(program.Randomizer); ok {
				r.Randomize(rand.New(rand.NewSource(6)))
			}
			sys := program.NewSystem(p, daemon.NewCentral(2))
			run := &churn.Runner{G: g, Sys: sys, Root: 0}
			st, err := run.Run(churn.Config{
				Seed:    3,
				Events:  9,
				Period:  4000,
				DownFor: 150,
				Mix:     []churn.Kind{churn.EdgeFlap, churn.NodeCrash, churn.Partition},
			})
			if err != nil {
				t.Fatal(err)
			}
			if st.Events != 9 {
				t.Fatalf("ran %d events, want 9", st.Events)
			}
			if st.Deltas < 9 {
				t.Fatalf("only %d deltas applied", st.Deltas)
			}
			if !st.Final.Converged {
				t.Fatalf("no final recovery: %+v", st.Final)
			}
			if !p.Legitimate() {
				t.Fatal("final configuration not legitimate by the O(n) predicate")
			}
			if !g.Connected() || g.NAlive() != 25 {
				t.Fatalf("engine left the graph damaged: %s, alive %d", g, g.NAlive())
			}
		})
	}
}

// TestEngineAllowDisconnectAllStacks runs a non-connectivity-
// preserving schedule — bridge cuts, island crashes, partitions and
// unrestricted flaps/crashes — over every stack on a lollipop (whose
// tail is all bridges and cut vertices, so orphan components actually
// happen) and requires per-component convergence while split plus full
// recovery after the heals.
func TestEngineAllowDisconnectAllStacks(t *testing.T) {
	t.Parallel()
	stacks := []string{"dftc", "bfstree", "dfstree", "dftno", "stno"}
	for _, name := range stacks {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			g := graph.Lollipop(6, 5)
			n := g.N()
			p, err := buildStack(name, g)
			if err != nil {
				t.Fatal(err)
			}
			if r, ok := p.(program.Randomizer); ok {
				r.Randomize(rand.New(rand.NewSource(11)))
			}
			sys := program.NewSystem(p, daemon.NewCentral(4))
			run := &churn.Runner{G: g, Sys: sys, Root: 0}
			st, err := run.Run(churn.Config{
				Seed:            7,
				Events:          10,
				Period:          6000,
				DownFor:         4000,
				AllowDisconnect: true,
				Mix: []churn.Kind{
					churn.BridgeCut, churn.Partition, churn.IslandCrash,
					churn.EdgeFlap, churn.NodeCrash,
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if st.Events+st.SkippedEvents != 10 {
				t.Fatalf("events %d + skipped %d != 10", st.Events, st.SkippedEvents)
			}
			split := 0
			for _, c := range st.SplitComponents {
				if c >= 2 {
					split++
				}
			}
			if split == 0 {
				t.Fatalf("schedule never disconnected the graph: components %v", st.SplitComponents)
			}
			if st.SplitConverged == 0 {
				t.Fatal("no down phase reached per-component legitimacy")
			}
			if !st.Final.Converged {
				t.Fatalf("no final recovery: %+v", st.Final)
			}
			if !p.Legitimate() {
				t.Fatal("final configuration not legitimate by the O(n) predicate")
			}
			if !g.Connected() || g.NAlive() != n {
				t.Fatalf("engine left the graph damaged: %s, alive %d", g, g.NAlive())
			}
		})
	}
}

// TestSkippedEventsDoNotAbort pins the ErrNoCandidate handling: a
// flap-only schedule on a tree (no removable edge) records every event
// as skipped instead of aborting the campaign.
func TestSkippedEventsDoNotAbort(t *testing.T) {
	t.Parallel()
	g := graph.KAryTree(7, 2)
	p, err := buildStack("bfstree", g)
	if err != nil {
		t.Fatal(err)
	}
	sys := program.NewSystem(p, daemon.NewCentral(3))
	run := &churn.Runner{G: g, Sys: sys, Root: 0}
	st, err := run.Run(churn.Config{Seed: 2, Events: 4, Period: 500, DownFor: 50})
	if err != nil {
		t.Fatalf("campaign aborted on a candidate-free topology: %v", err)
	}
	if st.SkippedEvents != 4 || st.Events != 0 {
		t.Fatalf("skipped %d / ran %d, want 4 / 0", st.SkippedEvents, st.Events)
	}
	if !st.Final.Converged {
		t.Fatal("no final recovery")
	}
}

// TestDisconnectingPickers checks the new seeded helpers: bridges and
// cut vertices are found where they exist and refused where they
// cannot.
func TestDisconnectingPickers(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(3))
	g := graph.Lollipop(5, 4)
	u, v, ok := churn.PickBridgeEdge(g, rng)
	if !ok {
		t.Fatal("lollipop tail is all bridges")
	}
	if _, err := g.RemoveEdge(u, v); err != nil {
		t.Fatal(err)
	}
	if g.Connected() {
		t.Fatalf("bridge pick {%d,%d} did not disconnect", u, v)
	}
	if _, err := g.AddEdge(u, v); err != nil {
		t.Fatal(err)
	}
	cv, ok := churn.PickCutVertex(g, 0, rng)
	if !ok {
		t.Fatal("lollipop tail has cut vertices")
	}
	if _, err := g.RemoveNode(cv); err != nil {
		t.Fatal(err)
	}
	if g.Components() < 2 {
		t.Fatalf("cut-vertex pick %d did not island anything", cv)
	}
	// 2-edge-connected graphs have neither.
	ring := graph.Ring(8)
	if _, _, ok := churn.PickBridgeEdge(ring, rng); ok {
		t.Fatal("ring has no bridge")
	}
	if _, ok := churn.PickCutVertex(ring, 0, rng); ok {
		t.Fatal("ring has no cut vertex")
	}
}

// TestComponentReport pins the per-component degradation report: after
// a bridge cut, the orphan component is detected and a stand-in leader
// (max NodeID) is elected for it.
func TestComponentReport(t *testing.T) {
	t.Parallel()
	g := graph.Lollipop(4, 3) // clique 0-3, tail 4-5-6
	if _, err := g.RemoveEdge(4, 5); err != nil {
		t.Fatal(err)
	}
	rep, err := churn.ComponentReport(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep) != 2 {
		t.Fatalf("report has %d components, want 2", len(rep))
	}
	var withRoot, orphan *churn.ComponentStatus
	for i := range rep {
		if rep[i].HasRoot {
			withRoot = &rep[i]
		} else {
			orphan = &rep[i]
		}
	}
	if withRoot == nil || orphan == nil {
		t.Fatalf("report misclassifies root: %+v", rep)
	}
	if withRoot.Size != 5 || orphan.Size != 2 {
		t.Fatalf("sizes %d/%d, want 5/2", withRoot.Size, orphan.Size)
	}
	if orphan.Leader != 6 {
		t.Fatalf("orphan leader %d, want max id 6", orphan.Leader)
	}
	if withRoot.Leader != 4 {
		t.Fatalf("root-side leader %d, want max id 4", withRoot.Leader)
	}
}

// TestEngineDeterminism pins seeded reproducibility: equal seeds give
// equal schedules and equal recovery statistics.
func TestEngineDeterminism(t *testing.T) {
	t.Parallel()
	runOnce := func() churn.Stats {
		g := graph.Grid(4, 4)
		p, err := buildStack("dftno", g)
		if err != nil {
			t.Fatal(err)
		}
		sys := program.NewSystem(p, daemon.NewCentral(8))
		run := &churn.Runner{G: g, Sys: sys, Root: 0}
		st, err := run.Run(churn.Config{Seed: 5, Events: 5, Period: 3000, DownFor: 80})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := runOnce(), runOnce()
	if a.Deltas != b.Deltas || a.RecoveredInPeriod != b.RecoveredInPeriod ||
		fmt.Sprint(a.RecoveryMoves) != fmt.Sprint(b.RecoveryMoves) {
		t.Fatalf("seeded runs diverge: %+v vs %+v", a, b)
	}
}

// TestPickersPreserveConnectivity checks the seeded selection helpers
// directly.
func TestPickersPreserveConnectivity(t *testing.T) {
	t.Parallel()
	g := graph.Grid(4, 4)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		u, v, ok := churn.PickFlapEdge(g, rng)
		if !ok {
			t.Fatal("grid has removable edges")
		}
		if _, err := g.RemoveEdge(u, v); err != nil {
			t.Fatal(err)
		}
		if !g.Connected() {
			t.Fatalf("flap pick {%d,%d} disconnected the graph", u, v)
		}
		if _, err := g.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		v, ok := churn.PickCrashNode(g, 0, rng)
		if !ok {
			t.Fatal("grid has crashable nodes")
		}
		if v == 0 {
			t.Fatal("picked the root")
		}
		d, err := g.RemoveNode(v)
		if err != nil {
			t.Fatal(err)
		}
		if !g.Connected() {
			t.Fatalf("crash pick %d disconnected the live graph", v)
		}
		id, _ := g.AddNode()
		for _, q := range d.Touched[1:] {
			if _, err := g.AddEdge(id, q); err != nil {
				t.Fatal(err)
			}
		}
	}
	// A tree has no removable edge: ok must be false, not a bogus pick.
	tree := graph.KAryTree(7, 2)
	if _, _, ok := churn.PickFlapEdge(tree, rand.New(rand.NewSource(2))); ok {
		t.Fatal("flap pick on a tree should fail")
	}
	// Partition cut really cuts, heal really heals.
	cut, ok := churn.PickPartitionCut(g, 0, 4, rng)
	if !ok || len(cut) == 0 {
		t.Fatal("no partition cut found")
	}
	for _, e := range cut {
		if _, err := g.RemoveEdge(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	if g.Connected() {
		t.Fatal("cut did not disconnect")
	}
	for _, e := range cut {
		if _, err := g.AddEdge(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	if !g.Connected() {
		t.Fatal("heal did not reconnect")
	}
}

package churn_test

import (
	"fmt"
	"strings"
	"testing"

	"netorient/internal/churn"
	"netorient/internal/core"
	"netorient/internal/daemon"
	"netorient/internal/failover"
	"netorient/internal/graph"
	"netorient/internal/program"
	"netorient/internal/spantree"
	"netorient/internal/token"
)

// buildFailover wraps one of the named stacks in the failover layer.
func buildFailover(name string, g *graph.Graph) (*failover.Protocol, error) {
	var in failover.Inner
	var err error
	switch name {
	case "dftc":
		in, err = token.NewCirculator(g, 0)
	case "bfstree":
		in, err = spantree.NewBFSTree(g, 0)
	case "dftno":
		var sub *token.Circulator
		sub, err = token.NewCirculator(g, 0)
		if err == nil {
			in, err = core.NewDFTNO(g, sub, 0)
		}
	default:
		return nil, fmt.Errorf("unknown stack %q", name)
	}
	if err != nil {
		return nil, err
	}
	return failover.New(g, in, 0), nil
}

func soakRunner(t *testing.T, stack string, g *graph.Graph, seed int64) (*churn.Runner, *failover.Protocol) {
	t.Helper()
	p, err := buildFailover(stack, g)
	if err != nil {
		t.Fatal(err)
	}
	sys := program.NewSystem(p, daemon.NewCentral(seed))
	return &churn.Runner{G: g, Sys: sys, Root: 0}, p
}

// TestSoakAllStacks runs the multi-partition soak — overlapping
// splits, partial heals, root crash/revive, final heal sequence — on
// failover-wrapped stacks and requires a violation-free run that ends
// fully merged.
func TestSoakAllStacks(t *testing.T) {
	t.Parallel()
	for _, stack := range []string{"dftc", "bfstree", "dftno"} {
		stack := stack
		t.Run(stack, func(t *testing.T) {
			t.Parallel()
			g := graph.Lollipop(6, 6) // clique 0..5, bridgy tail 6..11
			r, p := soakRunner(t, stack, g, 7)
			st, err := r.Soak(p, churn.SoakConfig{Seed: 11, Phases: 8})
			if err != nil {
				t.Fatal(err)
			}
			if !st.Ok() {
				t.Fatalf("soak violations:\n%v", st.Violations)
			}
			if st.FinalComponents != 1 {
				t.Fatalf("final components %d, want 1", st.FinalComponents)
			}
			split := false
			for _, ph := range st.Phases {
				if ph.Components > 1 {
					split = true
				}
				if ph.DetectSteps < 0 {
					t.Fatalf("phase %d (%s): detection latency unmeasured", ph.Index, ph.Op)
				}
				if !ph.Converged {
					t.Fatalf("phase %d (%s): no settle", ph.Index, ph.Op)
				}
			}
			if !split {
				t.Fatal("soak schedule never split the graph")
			}
			if st.LeaderFlaps == 0 {
				t.Fatal("no acting-root promotion across a splitting soak")
			}
		})
	}
}

// TestSoakLeaveSplit pins the never-reuniting-components mode: the
// run must end converged with a component that is permanently cut
// off, anchored at its acting root.
func TestSoakLeaveSplit(t *testing.T) {
	t.Parallel()
	g := graph.Lollipop(6, 6)
	r, p := soakRunner(t, "dftc", g, 3)
	st, err := r.Soak(p, churn.SoakConfig{Seed: 5, Phases: 6, LeaveSplit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Ok() {
		t.Fatalf("soak violations:\n%v", st.Violations)
	}
	if st.FinalComponents < 2 {
		t.Fatalf("final components %d, want >= 2 with LeaveSplit=1", st.FinalComponents)
	}
	roots := p.ActingRoots()
	if len(roots) != st.FinalComponents {
		t.Fatalf("%d acting roots for %d final components", len(roots), st.FinalComponents)
	}
}

// TestSoakDeterminism: equal seeds replay the same schedule and the
// same measurements.
func TestSoakDeterminism(t *testing.T) {
	t.Parallel()
	run := func() churn.SoakStats {
		g := graph.Lollipop(5, 4)
		r, p := soakRunner(t, "dftno", g, 9)
		st, err := r.Soak(p, churn.SoakConfig{Seed: 21, Phases: 6})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if len(a.Phases) != len(b.Phases) || a.TotalSteps != b.TotalSteps || a.TotalMoves != b.TotalMoves {
		t.Fatalf("runs diverge: %d/%d phases, %d/%d steps", len(a.Phases), len(b.Phases), a.TotalSteps, b.TotalSteps)
	}
	for i := range a.Phases {
		pa, pb := a.Phases[i], b.Phases[i]
		if pa.Op != pb.Op || pa.DetectSteps != pb.DetectSteps || pa.SettleSteps != pb.SettleSteps {
			t.Fatalf("phase %d diverges: (%s,%d,%d) vs (%s,%d,%d)",
				i, pa.Op, pa.DetectSteps, pa.SettleSteps, pb.Op, pb.DetectSteps, pb.SettleSteps)
		}
	}
}

// TestFailoverReport pins the failover columns of the component
// report: acting root, flap counts, and detection-lag bookkeeping on
// a settled split.
func TestFailoverReport(t *testing.T) {
	t.Parallel()
	g := graph.Lollipop(4, 3) // clique 0-3, tail 4-5-6
	r, p := soakRunner(t, "dftc", g, 1)
	if _, err := r.Sys.RunUntilLegitimate(0); err != nil {
		t.Fatal(err)
	}
	d, err := g.RemoveEdge(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	r.Sys.ApplyDelta(d)
	res, err := r.Sys.RunUntilLegitimate(100000)
	if err != nil || !res.Converged {
		t.Fatalf("no settle after cut: %v %+v", err, res)
	}
	rep, err := churn.FailoverReport(g, 0, p, map[int]int64{g.ComponentOf(5): 17})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep) != 2 {
		t.Fatalf("report has %d components, want 2", len(rep))
	}
	for _, c := range rep {
		if c.Lagging != 0 {
			t.Fatalf("component %d still lagging (%d nodes) after settle", c.Label, c.Lagging)
		}
		if c.HasRoot {
			if c.ActingRoot != 0 {
				t.Fatalf("rooted component acting root %d, want fixed root 0", c.ActingRoot)
			}
			if c.DetectSteps != -1 {
				t.Fatalf("rooted component detect steps %d, want -1 (not supplied)", c.DetectSteps)
			}
		} else {
			if c.ActingRoot != 6 {
				t.Fatalf("orphan acting root %d, want elected max id 6", c.ActingRoot)
			}
			if c.Flaps == 0 {
				t.Fatal("orphan component saw no acting-root promotion")
			}
			if c.DetectSteps != 17 {
				t.Fatalf("orphan detect steps %d, want supplied 17", c.DetectSteps)
			}
		}
	}
}

// TestSoakCorruptRate composes transient state faults with the
// partition schedule: every phase has a chance to overwrite a few
// nodes' local state on top of its topology mutation, and the run
// must still finish violation-free and fully merged.
func TestSoakCorruptRate(t *testing.T) {
	t.Parallel()
	g := graph.Lollipop(6, 6)
	r, p := soakRunner(t, "bfstree", g, 13)
	st, err := r.Soak(p, churn.SoakConfig{Seed: 1, Phases: 8, CorruptRate: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Ok() {
		t.Fatalf("soak violations:\n%v", st.Violations)
	}
	if st.Corruptions == 0 {
		t.Fatal("CorruptRate=0.9 over 8 phases corrupted nothing")
	}
	if st.FinalComponents != 1 {
		t.Fatalf("final components %d, want 1", st.FinalComponents)
	}
	corrupted := false
	for _, ph := range st.Phases {
		if strings.Contains(ph.Op, "+corrupt:") {
			corrupted = true
			if !ph.Converged {
				t.Fatalf("phase %d (%s): no settle after corruption", ph.Index, ph.Op)
			}
		}
	}
	if !corrupted {
		t.Fatal("no phase op records a corruption")
	}
}

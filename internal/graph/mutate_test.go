package graph

import (
	"math/rand"
	"testing"
)

// TestRemoveEdgeKeepsSurvivingPorts pins the port-stability half of the
// mutable-graph contract: removing an edge leaves a hole and every
// other edge keeps its port number; re-adding the edge reclaims the
// hole.
func TestRemoveEdgeKeepsSurvivingPorts(t *testing.T) {
	g := Wheel(6) // hub 0 adjacent to 1..5 on ports 0..4
	before := g.NeighborsCopy(0)
	d, err := g.RemoveEdge(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != EdgeRemoved || d.U != 0 || d.V != 3 {
		t.Fatalf("delta = %+v", d)
	}
	if g.Neighbor(0, d.PortU) != None {
		t.Fatalf("port %d at 0 should be a hole", d.PortU)
	}
	if g.Degree(0) != 4 || g.Ports(0) != 5 {
		t.Fatalf("degree/ports = %d/%d, want 4/5", g.Degree(0), g.Ports(0))
	}
	for p, q := range before {
		if q == 3 {
			continue
		}
		if g.Neighbor(0, p) != q {
			t.Fatalf("surviving port %d moved: %d -> %d", p, q, g.Neighbor(0, p))
		}
		if got, ok := g.PortOf(0, q); !ok || got != p {
			t.Fatalf("PortOf(0,%d) = %d,%v want %d", q, got, ok, p)
		}
	}
	if _, ok := g.PortOf(0, 3); ok {
		t.Fatal("PortOf still reports the removed edge")
	}
	// Re-adding reclaims the lowest hole — the old port.
	d2, err := g.AddEdge(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d2.PortU != d.PortU || d2.PortV != d.PortV {
		t.Fatalf("re-added edge got ports %d/%d, want reclaimed %d/%d", d2.PortU, d2.PortV, d.PortU, d.PortV)
	}
	if g.Degree(0) != 5 || g.Ports(0) != 5 {
		t.Fatalf("degree/ports after re-add = %d/%d", g.Degree(0), g.Ports(0))
	}
	if d2.Version <= d.Version {
		t.Fatalf("version not monotone: %d then %d", d.Version, d2.Version)
	}
}

// TestRemoveNodeAndRevive pins the liveness half: RemoveNode detaches
// all edges, keeps the slot, and AddNode revives it.
func TestRemoveNodeAndRevive(t *testing.T) {
	g := Grid(3, 3)
	n, m := g.N(), g.M()
	d, err := g.RemoveNode(4) // centre, degree 4
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Touched) != 5 {
		t.Fatalf("touched %v, want centre + 4 neighbours", d.Touched)
	}
	if g.Alive(4) || g.NAlive() != n-1 || g.N() != n || g.M() != m-4 {
		t.Fatalf("liveness bookkeeping wrong: alive=%v nAlive=%d n=%d m=%d", g.Alive(4), g.NAlive(), g.N(), g.M())
	}
	for v := 0; v < g.N(); v++ {
		for _, q := range g.Neighbors(NodeID(v)) {
			if q == 4 {
				t.Fatalf("dead node still in %d's adjacency", v)
			}
		}
	}
	if !g.Connected() {
		t.Fatal("3x3 grid minus centre should stay connected (live subgraph)")
	}
	// Revive and reconnect.
	id, d2 := g.AddNode()
	if id != 4 || d2.Kind != NodeAdded {
		t.Fatalf("revive gave node %d delta %+v, want slot 4", id, d2)
	}
	if g.Ports(4) != 0 {
		t.Fatal("revived node should start with an empty port space")
	}
	if g.Connected() {
		t.Fatal("isolated revived node must disconnect the live graph")
	}
	if _, err := g.AddEdge(4, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(4, 7); err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Fatal("reconnected graph should be connected")
	}
}

// TestMutationErrors covers the rejection paths.
func TestMutationErrors(t *testing.T) {
	g := Ring(5)
	if _, err := g.AddEdge(0, 0); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := g.AddEdge(0, 1); err == nil {
		t.Error("duplicate edge accepted")
	}
	if _, err := g.RemoveEdge(0, 2); err == nil {
		t.Error("removing a non-edge accepted")
	}
	if _, err := g.AddEdge(0, 99); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
	if _, err := g.RemoveNode(2); err != nil {
		t.Fatal(err)
	}
	if _, err := g.RemoveNode(2); err == nil {
		t.Error("double removal accepted")
	}
	if _, err := g.AddEdge(2, 0); err == nil {
		t.Error("edge to a dead node accepted")
	}
}

// TestTraversalSkipsHolesAndDead checks BFS/DFS and Edges on a mutated
// graph.
func TestTraversalSkipsHolesAndDead(t *testing.T) {
	g := Grid(3, 3)
	if _, err := g.RemoveEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := g.RemoveNode(8); err != nil {
		t.Fatal(err)
	}
	dist, _ := BFSFrom(g, 0)
	if dist[1] != 3 { // 0-3-4-1 now that 0-1 is gone
		t.Fatalf("dist[1] = %d, want 3", dist[1])
	}
	if dist[8] != -1 {
		t.Fatal("dead node reachable")
	}
	order, _ := DFSPreorder(g, 0)
	if len(order) != 8 {
		t.Fatalf("DFS reached %d nodes, want 8 live", len(order))
	}
	for _, e := range g.Edges() {
		if e.U == None || e.V == None || e.U == 8 || e.V == 8 {
			t.Fatalf("Edges() leaked hole or dead node: %+v", e)
		}
	}
	if len(g.Edges()) != g.M() {
		t.Fatalf("Edges() length %d != M() %d", len(g.Edges()), g.M())
	}
}

// TestMutationFollowedByRandomChurn stress-checks internal consistency
// under a long random mutation sequence.
func TestMutationFollowedByRandomChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := Grid(4, 4)
	type edge struct{ u, v NodeID }
	var removed []edge
	for i := 0; i < 500; i++ {
		switch rng.Intn(3) {
		case 0: // remove a random live edge
			es := g.Edges()
			if len(es) == 0 {
				continue
			}
			e := es[rng.Intn(len(es))]
			if _, err := g.RemoveEdge(e.U, e.V); err != nil {
				t.Fatal(err)
			}
			removed = append(removed, edge{e.U, e.V})
		case 1: // re-add a previously removed edge
			if len(removed) == 0 {
				continue
			}
			k := rng.Intn(len(removed))
			e := removed[k]
			removed = append(removed[:k], removed[k+1:]...)
			if g.Alive(e.u) && g.Alive(e.v) && !g.HasEdge(e.u, e.v) {
				if _, err := g.AddEdge(e.u, e.v); err != nil {
					t.Fatal(err)
				}
			}
		case 2: // crash or revive a node
			if g.NAlive() > 2 && rng.Intn(2) == 0 {
				v := NodeID(rng.Intn(g.N()))
				if g.Alive(v) {
					if _, err := g.RemoveNode(v); err != nil {
						t.Fatal(err)
					}
				}
			} else if g.NAlive() < g.N() {
				g.AddNode()
			}
		}
		// Invariants: degree bookkeeping, port maps, symmetry.
		m := 0
		for v := 0; v < g.N(); v++ {
			id := NodeID(v)
			live := 0
			for p, q := range g.Neighbors(id) {
				if q == None {
					continue
				}
				live++
				if got, ok := g.PortOf(id, q); !ok || got != p {
					t.Fatalf("step %d: port map desync at %d->%d", i, v, q)
				}
				if !g.HasEdge(q, id) {
					t.Fatalf("step %d: asymmetric edge {%d,%d}", i, v, q)
				}
				if !g.Alive(q) {
					t.Fatalf("step %d: dead node %d in adjacency of %d", i, q, v)
				}
			}
			if live != g.Degree(id) {
				t.Fatalf("step %d: degree(%d) = %d, counted %d", i, v, g.Degree(id), live)
			}
			m += live
		}
		if m/2 != g.M() {
			t.Fatalf("step %d: M() = %d, counted %d", i, g.M(), m/2)
		}
	}
}

// TestGnp checks the generator and its disconnection rejection.
func TestGnp(t *testing.T) {
	g, err := Gnp(64, 0.2, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 64 || !g.Connected() {
		t.Fatalf("gnp draw wrong: %s", g)
	}
	if _, err := Gnp(64, 0.001, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("sparse disconnected draw not rejected")
	}
	// Determinism: same seed, same graph.
	g2, _ := Gnp(64, 0.2, rand.New(rand.NewSource(1)))
	if len(g.Edges()) != len(g2.Edges()) {
		t.Fatal("gnp is not deterministic under a fixed seed")
	}
}

// TestBarabasi checks connectivity, size and the degree skew.
func TestBarabasi(t *testing.T) {
	g, err := Barabasi(200, 2, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 200 || !g.Connected() {
		t.Fatalf("barabasi draw wrong: %s", g)
	}
	wantM := 3 + (200-3)*2 // seed triangle + m per later node
	if g.M() != wantM {
		t.Fatalf("M = %d, want %d", g.M(), wantM)
	}
	if g.MaxDegree() < 8 {
		t.Fatalf("max degree %d suspiciously flat for preferential attachment", g.MaxDegree())
	}
	if _, err := Barabasi(2, 2, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("n < m+1 accepted")
	}
}

// TestNamedNewFamilies covers the new spec forms and the parser's size
// guard rails.
func TestNamedNewFamilies(t *testing.T) {
	for _, spec := range []string{"gnp:40:0.2:7", "barabasi:60:2:7"} {
		g, err := Named(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if !g.Connected() {
			t.Fatalf("%s: disconnected", spec)
		}
	}
	for _, spec := range []string{
		"ring:-4", "ring:2", "clique:100000", "grid:0x5", "gnp:10:1.5:1",
		"gnp:10:nan:1", "torus:2x9", "cube:30", "tree:5:0", "barabasi:2:5:1",
		"caterpillar:-1:2", "random:5:-1:0",
	} {
		if _, err := Named(spec); err == nil {
			t.Errorf("%s: accepted, want error", spec)
		}
	}
}

// TestRootEpoch pins the liveness-epoch contract: 0 until the first
// flip, one bump per kill and one per revival, and independence from
// CompVersion — the footgun it exists to fix is a designated node
// dying and reviving between two cache queries without any component
// relabel, which leaves Alive() compare-equal while every fact derived
// from the node's liveness is stale.
func TestRootEpoch(t *testing.T) {
	g := Path(3)
	if g.RootEpoch(0) != 0 || g.RootEpoch(2) != 0 {
		t.Fatalf("fresh graph has nonzero epochs: %d %d", g.RootEpoch(0), g.RootEpoch(2))
	}
	if _, err := g.RemoveNode(2); err != nil {
		t.Fatal(err)
	}
	if g.RootEpoch(2) != 1 {
		t.Fatalf("epoch after kill = %d, want 1", g.RootEpoch(2))
	}
	if g.RootEpoch(0) != 0 || g.RootEpoch(1) != 0 {
		t.Fatal("kill of node 2 bumped a survivor's epoch")
	}
	id, _ := g.AddNode()
	if id != 2 {
		t.Fatalf("revive picked slot %d, want 2", id)
	}
	if g.Alive(2) != true || g.RootEpoch(2) != 2 {
		t.Fatalf("epoch after revive = %d (alive=%v), want 2", g.RootEpoch(2), g.Alive(2))
	}
	// A die/revive pair is invisible to Alive but not to RootEpoch.
	before := g.RootEpoch(2)
	if _, err := g.RemoveNode(2); err != nil {
		t.Fatal(err)
	}
	if _, d := g.AddNode(); d.Kind != NodeAdded {
		t.Fatalf("revive delta kind %v", d.Kind)
	}
	if g.RootEpoch(2) != before+2 {
		t.Fatalf("die/revive pair moved epoch %d→%d, want +2", before, g.RootEpoch(2))
	}
	// Appending a brand-new slot starts at epoch 0 (it never flipped).
	id, _ = g.AddNode()
	if int(id) != 3 || g.RootEpoch(id) != 0 {
		t.Fatalf("fresh slot %d has epoch %d, want 0", id, g.RootEpoch(id))
	}
	// Out-of-range queries are safe.
	if g.RootEpoch(-1) != 0 || g.RootEpoch(NodeID(99)) != 0 {
		t.Fatal("out-of-range RootEpoch not zero")
	}
}

package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes the graph as "n" on the first line followed by
// one "u v" pair per edge, in a stable order.
func WriteEdgeList(w io.Writer, g *Graph) error {
	if _, err := fmt.Fprintf(w, "%d\n", g.N()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(w, "%d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return nil
}

// ParseEdgeList reads the format written by WriteEdgeList. Blank lines
// and lines starting with '#' are ignored.
func ParseEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	var b *Builder
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if b == nil {
			if len(fields) != 1 {
				return nil, fmt.Errorf("graph: line %d: want node count, got %q", line, text)
			}
			n, err := strconv.Atoi(fields[0])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("graph: line %d: bad node count %q", line, fields[0])
			}
			b = NewBuilder(n)
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: line %d: want \"u v\", got %q", line, text)
		}
		u, err1 := strconv.Atoi(fields[0])
		v, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("graph: line %d: bad edge %q", line, text)
		}
		if err := b.AddEdge(NodeID(u), NodeID(v)); err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("graph: empty input")
	}
	return b.Build(), nil
}

// DOTOptions customises WriteDOT output.
type DOTOptions struct {
	// NodeLabel returns the display label for a node; nil uses the id.
	NodeLabel func(NodeID) string
	// EdgeLabel returns the display label for an edge; nil omits labels.
	EdgeLabel func(u, v NodeID) string
	// Name is the graph name; empty uses "G".
	Name string
}

// WriteDOT writes the graph in Graphviz DOT format.
func WriteDOT(w io.Writer, g *Graph, opts DOTOptions) error {
	name := opts.Name
	if name == "" {
		name = "G"
	}
	if _, err := fmt.Fprintf(w, "graph %s {\n", name); err != nil {
		return err
	}
	for v := 0; v < g.N(); v++ {
		label := strconv.Itoa(v)
		if opts.NodeLabel != nil {
			label = opts.NodeLabel(NodeID(v))
		}
		if _, err := fmt.Fprintf(w, "  %d [label=%q];\n", v, label); err != nil {
			return err
		}
	}
	for _, e := range g.Edges() {
		if opts.EdgeLabel != nil {
			if _, err := fmt.Fprintf(w, "  %d -- %d [label=%q];\n", e.U, e.V, opts.EdgeLabel(e.U, e.V)); err != nil {
				return err
			}
		} else if _, err := fmt.Fprintf(w, "  %d -- %d;\n", e.U, e.V); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

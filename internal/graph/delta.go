package graph

import (
	"errors"
	"fmt"
)

// This file implements the dynamic-topology substrate: in-place
// mutation of a Graph with stable port numbering, plus the Delta
// change records the execution layer consumes (program.System.
// ApplyDelta) to repair its caches locally instead of rescanning the
// whole network.
//
// # The mutable-graph contract
//
//   - Port stability. Removing the edge {u,v} leaves a *hole* at its
//     port on both endpoints: Neighbors(u)[p] becomes None and the
//     port numbers of every surviving edge are unchanged. Port-indexed
//     protocol state (edge labels, Start arrays, exploration pointers)
//     therefore stays bound to the right edges across removals.
//     AddEdge fills the lowest hole at each endpoint before growing
//     the port space, so a removed-and-restored edge reclaims its old
//     ports and the port space of a node stays bounded by its largest
//     concurrent degree. Port spaces never shrink while a node lives.
//   - Iteration. Neighbors(v) may contain None entries on a mutated
//     graph; all iteration must skip them. Degree(v) counts live
//     edges; Ports(v) is the size of the port space (live + holes).
//     Graphs that were only ever built through a Builder contain no
//     holes, so pre-existing callers observe identical behaviour.
//   - Liveness. RemoveNode detaches every incident edge and marks the
//     node dead; the slot (and its NodeID) survives so that per-node
//     protocol arrays keep their indexing. Dead nodes never appear in
//     any adjacency list, are skipped by the execution layer, and are
//     excluded from Connected and from legitimacy predicates. AddNode
//     revives the lowest dead slot (with an empty port space) before
//     appending a fresh one.
//   - Versioning. Every successful mutation increments Version, a
//     monotone counter letting caches detect staleness.
//   - Delta soundness. Every mutation returns a Delta whose Touched
//     set lists exactly the nodes whose local view (adjacency,
//     liveness) changed. A consumer that refreshes every derived fact
//     readable within its declared locality radius of the Touched set
//     is guaranteed consistency — the contract System.ApplyDelta and
//     the TopologyAware protocol hooks are built on. Applying the
//     mutation and telling the System are two halves of one operation:
//     any cache consulted in between (or a Delta that is dropped
//     instead of applied) sees stale guards, the same staleness rule
//     as Snapshotter.Restore and System.Invalidate.
type DeltaKind uint8

// Delta kinds.
const (
	// EdgeAdded: the edge {U,V} now exists, at PortU on U and PortV on V.
	EdgeAdded DeltaKind = iota + 1
	// EdgeRemoved: the edge {U,V} is gone; its ports are holes.
	EdgeRemoved
	// NodeAdded: node U is now alive, with an empty port space.
	NodeAdded
	// NodeRemoved: node U is dead and every incident edge was removed.
	NodeRemoved
)

// String renders the kind for traces.
func (k DeltaKind) String() string {
	switch k {
	case EdgeAdded:
		return "edge+"
	case EdgeRemoved:
		return "edge-"
	case NodeAdded:
		return "node+"
	case NodeRemoved:
		return "node-"
	}
	return "?"
}

// Delta records one topology mutation. Touched lists every node whose
// local view changed: the endpoints for edge events, the node itself
// for NodeAdded, and the node plus all its ex-neighbours for
// NodeRemoved.
type Delta struct {
	Kind    DeltaKind
	Version uint64 // graph version after the mutation
	U, V    NodeID // edge endpoints; U is the node for node events
	PortU   int    // port of the edge at U (-1 for node events)
	PortV   int    // port of the edge at V (-1 for node events)
	Touched []NodeID

	// Components is the number of connected components of the live
	// subgraph after the mutation, and CompChanged reports whether the
	// mutation relabelled components beyond the Touched set (an edge
	// addition merged two components, or a removal split one) — the
	// events that bump Graph.CompVersion. Consumers caching
	// component-derived facts must rebuild them when CompChanged is
	// set; everything else refreshes through Touched as usual.
	Components  int
	CompChanged bool
}

// String renders the delta for traces.
func (d Delta) String() string {
	switch d.Kind {
	case EdgeAdded, EdgeRemoved:
		return fmt.Sprintf("%s{%d,%d}@v%d", d.Kind, d.U, d.V, d.Version)
	default:
		return fmt.Sprintf("%s{%d}@v%d", d.Kind, d.U, d.Version)
	}
}

// Mutation errors.
var (
	ErrEdgeMissing = errors.New("graph: edge does not exist")
	ErrNodeDead    = errors.New("graph: node is not alive")
	ErrNodeAlive   = errors.New("graph: node is already alive")
)

// Version returns the monotone topology version: 0 for a freshly built
// graph, incremented by every successful mutation.
func (g *Graph) Version() uint64 { return g.version }

// Alive reports whether v is a live node. Graphs without node removals
// have every node alive.
func (g *Graph) Alive(v NodeID) bool { return g.alive == nil || g.alive[v] }

// NAlive returns the number of live nodes.
func (g *Graph) NAlive() int { return len(g.adj) - g.dead }

// RootEpoch returns the liveness epoch of v: a counter bumped every
// time v's liveness flips (RemoveNode kills it, AddNode revives it).
// It is 0 for a node that has never flipped. Consumers caching facts
// derived from a designated node's liveness must key the cache on this
// counter, not on Alive(v) itself: a die/revive pair between two cache
// queries restores Alive to true while the derived facts are garbage,
// and CompVersion does not help — component labels need not change
// when, say, a degree-one root dies. (That is the footgun this
// accessor exists to fix.)
func (g *Graph) RootEpoch(v NodeID) uint64 {
	if g.liveEpoch == nil || int(v) >= len(g.liveEpoch) || v < 0 {
		return 0
	}
	return g.liveEpoch[v]
}

// bumpLiveEpoch records a liveness flip at v.
func (g *Graph) bumpLiveEpoch(v NodeID) {
	if g.liveEpoch == nil {
		g.liveEpoch = make([]uint64, g.N())
	}
	for int(v) >= len(g.liveEpoch) {
		g.liveEpoch = append(g.liveEpoch, 0)
	}
	g.liveEpoch[v]++
}

// Ports returns the size of v's port space — live edges plus holes.
// Port-indexed per-node state must be sized by Ports, not Degree.
func (g *Graph) Ports(v NodeID) int { return len(g.adj[v]) }

// attach binds q to the lowest free port of v (reusing holes before
// growing the port space) and returns the port.
func (g *Graph) attach(v, q NodeID) int {
	for p, w := range g.adj[v] {
		if w == None {
			g.adj[v][p] = q
			g.ports[v][q] = p
			g.deg[v]++
			return p
		}
	}
	g.adj[v] = append(g.adj[v], q)
	p := len(g.adj[v]) - 1
	g.ports[v][q] = p
	g.deg[v]++
	return p
}

// AddEdge inserts the undirected edge {u,v} into the live graph,
// filling the lowest hole in each endpoint's port space (or extending
// it). It returns the change record.
func (g *Graph) AddEdge(u, v NodeID) (Delta, error) {
	for _, x := range []NodeID{u, v} {
		if x < 0 || int(x) >= g.N() {
			return Delta{}, &NodeRangeError{Node: x, N: g.N()}
		}
		if !g.Alive(x) {
			return Delta{}, fmt.Errorf("%w: node %d", ErrNodeDead, x)
		}
	}
	if u == v {
		return Delta{}, fmt.Errorf("%w at node %d", ErrSelfLoop, u)
	}
	if g.HasEdge(u, v) {
		return Delta{}, fmt.Errorf("%w {%d,%d}", ErrDuplicateEdge, u, v)
	}
	g.ensureComp()
	pu := g.attach(u, v)
	pv := g.attach(v, u)
	g.edges++
	g.version++
	merged := g.compAddEdge(u, v)
	return Delta{
		Kind: EdgeAdded, Version: g.version,
		U: u, V: v, PortU: pu, PortV: pv,
		Touched:    []NodeID{u, v},
		Components: g.ncomp, CompChanged: merged,
	}, nil
}

// RemoveEdge deletes the edge {u,v}, leaving holes at its ports so
// every surviving edge keeps its port number.
func (g *Graph) RemoveEdge(u, v NodeID) (Delta, error) {
	for _, x := range []NodeID{u, v} {
		if x < 0 || int(x) >= g.N() {
			return Delta{}, &NodeRangeError{Node: x, N: g.N()}
		}
	}
	pu, ok := g.ports[u][v]
	if !ok {
		return Delta{}, fmt.Errorf("%w {%d,%d}", ErrEdgeMissing, u, v)
	}
	g.ensureComp()
	pv := g.ports[v][u]
	g.adj[u][pu] = None
	delete(g.ports[u], v)
	g.deg[u]--
	g.adj[v][pv] = None
	delete(g.ports[v], u)
	g.deg[v]--
	g.edges--
	g.version++
	split := g.compRemoveEdge(u, v)
	return Delta{
		Kind: EdgeRemoved, Version: g.version,
		U: u, V: v, PortU: pu, PortV: pv,
		Touched:    []NodeID{u, v},
		Components: g.ncomp, CompChanged: split,
	}, nil
}

// AddNode makes a node available: it revives the lowest dead slot if
// one exists (keeping N() and every existing NodeID stable), otherwise
// appends a fresh slot, growing N() by one. The node starts with an
// empty port space; connect it with AddEdge.
func (g *Graph) AddNode() (NodeID, Delta) {
	g.ensureComp()
	if g.dead > 0 {
		for v := range g.alive {
			if !g.alive[v] {
				g.alive[v] = true
				g.dead--
				g.version++
				id := NodeID(v)
				g.bumpLiveEpoch(id)
				g.compAddNode(id)
				return id, Delta{
					Kind: NodeAdded, Version: g.version,
					U: id, V: None, PortU: -1, PortV: -1,
					Touched:    []NodeID{id},
					Components: g.ncomp,
				}
			}
		}
	}
	g.adj = append(g.adj, nil)
	g.ports = append(g.ports, make(map[NodeID]int))
	g.deg = append(g.deg, 0)
	if g.alive != nil {
		g.alive = append(g.alive, true)
	}
	g.version++
	id := NodeID(len(g.adj) - 1)
	g.compAddNode(id)
	return id, Delta{
		Kind: NodeAdded, Version: g.version,
		U: id, V: None, PortU: -1, PortV: -1,
		Touched:    []NodeID{id},
		Components: g.ncomp,
	}
}

// RemoveNode detaches every edge incident on v and marks v dead. The
// slot and its NodeID survive (AddNode can revive it); the Touched set
// is v plus all its ex-neighbours.
func (g *Graph) RemoveNode(v NodeID) (Delta, error) {
	if v < 0 || int(v) >= g.N() {
		return Delta{}, &NodeRangeError{Node: v, N: g.N()}
	}
	if !g.Alive(v) {
		return Delta{}, fmt.Errorf("%w: node %d", ErrNodeDead, v)
	}
	g.ensureComp()
	touched := []NodeID{v}
	for _, q := range g.adj[v] {
		if q == None {
			continue
		}
		pq := g.ports[q][v]
		g.adj[q][pq] = None
		delete(g.ports[q], v)
		g.deg[q]--
		g.edges--
		touched = append(touched, q)
	}
	g.adj[v] = g.adj[v][:0]
	g.ports[v] = make(map[NodeID]int)
	g.deg[v] = 0
	if g.alive == nil {
		g.alive = make([]bool, g.N())
		for i := range g.alive {
			g.alive[i] = true
		}
	}
	g.alive[v] = false
	g.dead++
	g.version++
	g.bumpLiveEpoch(v)
	split := g.compRemoveNode(v, touched[1:])
	return Delta{
		Kind: NodeRemoved, Version: g.version,
		U: v, V: None, PortU: -1, PortV: -1,
		Touched:    touched,
		Components: g.ncomp, CompChanged: split,
	}, nil
}

package graph

import "testing"

// churnedGraph builds a ring with removed edges (port holes) and one
// dead node, the shape Reorder and ReorderNodes must survive.
func churnedGraph(t *testing.T) *Graph {
	t.Helper()
	g := Ring(8)
	if _, err := g.AddEdge(0, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := g.RemoveEdge(2, 3); err != nil { // leaves holes at 2 and 3
		t.Fatal(err)
	}
	if _, err := g.RemoveNode(6); err != nil { // dead slot, holes at 5 and 7
		t.Fatal(err)
	}
	return g
}

// TestReorderChurned checks the port-space contract on a mutated
// graph: permutations cover holes, holes travel to their new port, and
// the copy carries the version and liveness epochs of the original.
func TestReorderChurned(t *testing.T) {
	g := churnedGraph(t)
	perm := make([][]int, g.N())
	for v := 0; v < g.N(); v++ {
		p := g.Ports(NodeID(v))
		perm[v] = make([]int, p)
		for i := 0; i < p; i++ {
			perm[v][i] = p - 1 - i // reverse the port space, holes included
		}
	}
	ng, err := g.Reorder(perm)
	if err != nil {
		t.Fatal(err)
	}
	if ng.Version() != g.Version() {
		t.Fatalf("version not carried: %d != %d", ng.Version(), g.Version())
	}
	if ng.N() != g.N() || ng.M() != g.M() || ng.NAlive() != g.NAlive() {
		t.Fatalf("shape changed: n=%d/%d m=%d/%d alive=%d/%d",
			ng.N(), g.N(), ng.M(), g.M(), ng.NAlive(), g.NAlive())
	}
	for v := 0; v < g.N(); v++ {
		id := NodeID(v)
		if ng.Alive(id) != g.Alive(id) {
			t.Fatalf("node %d: liveness flipped", v)
		}
		if ng.RootEpoch(id) != g.RootEpoch(id) {
			t.Fatalf("node %d: liveness epoch not carried", v)
		}
		if ng.Ports(id) != g.Ports(id) || ng.Degree(id) != g.Degree(id) {
			t.Fatalf("node %d: port space %d/%d degree %d/%d",
				v, ng.Ports(id), g.Ports(id), ng.Degree(id), g.Degree(id))
		}
		old, now := g.Neighbors(id), ng.Neighbors(id)
		for p := range old {
			if now[len(now)-1-p] != old[p] {
				t.Fatalf("node %d: old port %d (%d) did not travel to new port %d (got %d)",
					v, p, old[p], len(now)-1-p, now[len(now)-1-p])
			}
		}
		for p, q := range now {
			if q == None {
				continue
			}
			back, ok := ng.PortOf(id, q)
			if !ok || back != p {
				t.Fatalf("node %d: PortOf(%d) = %d,%v; want %d", v, q, back, ok, p)
			}
		}
	}
	// Length mismatch (live degree instead of port space) must be
	// rejected: node 2 has a hole, so its live degree undercounts.
	bad := make([][]int, g.N())
	for v := range bad {
		bad[v] = make([]int, g.Degree(NodeID(v)))
		for i := range bad[v] {
			bad[v][i] = i
		}
	}
	if _, err := g.Reorder(bad); err == nil {
		t.Fatal("Reorder accepted live-degree-sized permutations on a holed graph")
	}
}

// TestReorderNodesChurned relabels a churned graph by a BFS order and
// checks the relabeling is a port-preserving isomorphism that carries
// dead slots, holes, version and liveness epochs.
func TestReorderNodesChurned(t *testing.T) {
	g := churnedGraph(t)
	order, err := BFSOrder(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != g.N() {
		t.Fatalf("order covers %d of %d slots", len(order), g.N())
	}
	if order[0] != 4 {
		t.Fatalf("BFS order starts at %d, want root 4", order[0])
	}
	ng, inv, err := g.ReorderNodes(order)
	if err != nil {
		t.Fatal(err)
	}
	for old, nw := range inv {
		if order[nw] != NodeID(old) {
			t.Fatalf("inv is not the inverse of order at old id %d", old)
		}
	}
	if ng.Version() != g.Version() || ng.N() != g.N() || ng.M() != g.M() || ng.NAlive() != g.NAlive() {
		t.Fatal("shape or version not carried")
	}
	for old := 0; old < g.N(); old++ {
		oldID, newID := NodeID(old), inv[old]
		if ng.Alive(newID) != g.Alive(oldID) {
			t.Fatalf("old %d / new %d: liveness flipped", old, newID)
		}
		if ng.RootEpoch(newID) != g.RootEpoch(oldID) {
			t.Fatalf("old %d / new %d: liveness epoch not carried", old, newID)
		}
		oldAdj, newAdj := g.Neighbors(oldID), ng.Neighbors(newID)
		if len(oldAdj) != len(newAdj) {
			t.Fatalf("old %d: port space changed", old)
		}
		for p := range oldAdj {
			want := None
			if oldAdj[p] != None {
				want = inv[oldAdj[p]]
			}
			if newAdj[p] != want {
				t.Fatalf("old %d port %d: neighbour %d, want %d", old, p, newAdj[p], want)
			}
		}
	}
	// BFS discovery order keeps live distance monotone: every non-root
	// live node's new id is greater than some neighbour's new id that
	// was discovered before it (contiguity is what Reorder buys the
	// sharded stepper; exact layout is the builder's business).
	if !ng.Connected() == g.Connected() {
		t.Fatal("connectivity changed under relabeling")
	}
}

func TestReorderNodesRejects(t *testing.T) {
	g := Ring(5)
	if _, _, err := g.ReorderNodes([]NodeID{0, 1, 2}); err == nil {
		t.Fatal("short order accepted")
	}
	if _, _, err := g.ReorderNodes([]NodeID{0, 1, 2, 3, 3}); err == nil {
		t.Fatal("duplicate order accepted")
	}
	if _, _, err := g.ReorderNodes([]NodeID{0, 1, 2, 3, 9}); err == nil {
		t.Fatal("out-of-range order accepted")
	}
	if _, err := BFSOrder(g, 9); err == nil {
		t.Fatal("out-of-range BFS root accepted")
	}
	gg := churnedGraph(t)
	if _, err := BFSOrder(gg, 6); err == nil {
		t.Fatal("dead BFS root accepted")
	}
}

package graph

// This file implements incremental connected-component tracking over
// the mutable graph: every live node carries a component label,
// maintained across AddEdge/RemoveEdge/AddNode/RemoveNode in time
// proportional to the affected region rather than the whole graph.
//
//   - AddEdge joining two components merges them by relabelling the
//     smaller side (O(min component)).
//   - RemoveEdge runs a bounded bidirectional search from both
//     endpoints of the removed edge, expanding the two frontiers in
//     lockstep; the searches either meet (no split, cost bounded by
//     the reconnecting path neighbourhood) or one side exhausts first
//     and becomes a fresh component (O(min side)).
//   - RemoveNode can split its component into several parts, one per
//     group of ex-neighbours; the first part keeps the old label and
//     every further part is relabelled fresh.
//   - AddNode starts a fresh singleton component.
//
// Labels are arbitrary small ints, recycled through a free list; they
// are NOT stable across mutations — a merge or split relabels nodes
// that the mutation's Touched set does not mention. CompVersion()
// increments exactly on those relabelling events, so a consumer that
// caches per-node component-derived facts (the per-component witness
// counters in internal/token and internal/core) can detect staleness
// with one comparison and rebuild lazily. Single-node birth/death
// (AddNode, RemoveNode of a then-singleton) changes the component
// *count* but no surviving node's label, and does not bump the
// version.

// ComponentOf returns the component label of v, or -1 when v is dead.
// Labels partition the live nodes: u and v are connected iff their
// labels are equal. The first call initialises tracking in O(n+m);
// subsequent queries are O(1).
func (g *Graph) ComponentOf(v NodeID) int {
	g.ensureComp()
	return int(g.comp[v])
}

// Components returns the number of connected components of the live
// subgraph (0 when no node is alive).
func (g *Graph) Components() int {
	g.ensureComp()
	return g.ncomp
}

// ComponentSize returns the number of live nodes carrying label c, or
// 0 for a freed or never-allocated label.
func (g *Graph) ComponentSize(c int) int {
	g.ensureComp()
	if c < 0 || c >= len(g.compSize) {
		return 0
	}
	return g.compSize[c]
}

// SameComponent reports whether live nodes u and v are connected.
func (g *Graph) SameComponent(u, v NodeID) bool {
	g.ensureComp()
	return g.comp[u] >= 0 && g.comp[u] == g.comp[v]
}

// CompVersion returns the component-relabelling version: it increments
// exactly when a mutation changes component labels beyond its Touched
// set (a merge or a split). Consumers caching component-derived
// per-node facts compare it to decide between incremental refresh and
// full rebuild.
func (g *Graph) CompVersion() uint64 {
	g.ensureComp()
	return g.compVer
}

// ensureComp initialises the component labelling from scratch.
func (g *Graph) ensureComp() {
	if g.comp != nil {
		return
	}
	n := g.N()
	g.comp = make([]int32, n)
	for v := range g.comp {
		g.comp[v] = -1
	}
	g.compSize = g.compSize[:0]
	g.compFree = g.compFree[:0]
	g.ncomp = 0
	for v := 0; v < n; v++ {
		if !g.Alive(NodeID(v)) || g.comp[v] >= 0 {
			continue
		}
		c := g.allocLabel()
		size := 0
		q := append(g.queueA[:0], NodeID(v))
		g.comp[v] = c
		for len(q) > 0 {
			x := q[len(q)-1]
			q = q[:len(q)-1]
			size++
			for _, w := range g.adj[x] {
				if w != None && g.comp[w] < 0 {
					g.comp[w] = c
					q = append(q, w)
				}
			}
		}
		g.queueA = q[:0]
		g.compSize[c] = size
		g.ncomp++
	}
}

// allocLabel returns a fresh (or recycled) component label with size 0.
func (g *Graph) allocLabel() int32 {
	if k := len(g.compFree); k > 0 {
		c := g.compFree[k-1]
		g.compFree = g.compFree[:k-1]
		g.compSize[c] = 0
		return c
	}
	g.compSize = append(g.compSize, 0)
	return int32(len(g.compSize) - 1)
}

func (g *Graph) freeLabel(c int32) {
	g.compSize[c] = 0
	g.compFree = append(g.compFree, c)
}

// compAddEdge merges the endpoints' components after {u,v} was
// inserted, relabelling the smaller side. It reports whether two
// distinct components merged.
func (g *Graph) compAddEdge(u, v NodeID) bool {
	cu, cv := g.comp[u], g.comp[v]
	if cu == cv {
		return false
	}
	start, from, into := u, cu, cv
	if g.compSize[cu] >= g.compSize[cv] {
		start, from, into = v, cv, cu
	}
	// Relabel `from`'s component to `into`, walking only nodes still
	// carrying the old label (the new edge leads out of it).
	q := append(g.queueA[:0], start)
	g.comp[start] = into
	moved := 1
	for len(q) > 0 {
		x := q[len(q)-1]
		q = q[:len(q)-1]
		for _, w := range g.adj[x] {
			if w != None && g.comp[w] == from {
				g.comp[w] = into
				moved++
				q = append(q, w)
			}
		}
	}
	g.queueA = q[:0]
	g.compSize[into] += moved
	g.freeLabel(from)
	g.ncomp--
	g.compVer++
	return true
}

// compRemoveEdge checks whether removing {u,v} split their component,
// using a bounded bidirectional search: frontiers from u and v expand
// in lockstep until they meet (still connected) or one side exhausts
// (that side — the smaller — becomes a fresh component). Runs after
// the edge is structurally gone.
func (g *Graph) compRemoveEdge(u, v NodeID) bool {
	c := g.comp[u]
	n := g.N()
	for len(g.stampA) < n {
		g.stampA = append(g.stampA, 0)
		g.stampB = append(g.stampB, 0)
	}
	g.stampEpoch++
	if g.stampEpoch == 0 {
		for i := range g.stampA {
			g.stampA[i] = 0
			g.stampB[i] = 0
		}
		g.stampEpoch = 1
	}
	ep := g.stampEpoch
	qa := append(g.queueA[:0], u)
	qb := append(g.queueB[:0], v)
	g.stampA[u] = ep
	g.stampB[v] = ep
	ha, hb := 0, 0
	defer func() { g.queueA, g.queueB = qa[:0], qb[:0] }()
	for {
		if ha == len(qa) {
			g.relabelSplit(qa, c)
			return true
		}
		x := qa[ha]
		ha++
		for _, w := range g.adj[x] {
			if w == None {
				continue
			}
			if g.stampB[w] == ep {
				return false
			}
			if g.stampA[w] != ep {
				g.stampA[w] = ep
				qa = append(qa, w)
			}
		}
		if hb == len(qb) {
			g.relabelSplit(qb, c)
			return true
		}
		y := qb[hb]
		hb++
		for _, w := range g.adj[y] {
			if w == None {
				continue
			}
			if g.stampA[w] == ep {
				return false
			}
			if g.stampB[w] != ep {
				g.stampB[w] = ep
				qb = append(qb, w)
			}
		}
	}
}

// relabelSplit moves the given fully-enumerated node set out of
// component old into a fresh component.
func (g *Graph) relabelSplit(nodes []NodeID, old int32) {
	nc := g.allocLabel()
	for _, v := range nodes {
		g.comp[v] = nc
	}
	g.compSize[nc] = len(nodes)
	g.compSize[old] -= len(nodes)
	g.ncomp++
	g.compVer++
}

// compRemoveNode fixes the labelling after v was detached and marked
// dead; exn are v's ex-neighbours. The part of the old component
// containing the first ex-neighbour keeps the old label; every part
// not reachable from it is relabelled fresh. Reports whether the
// partition changed beyond v's own death.
func (g *Graph) compRemoveNode(v NodeID, exn []NodeID) bool {
	c := g.comp[v]
	g.comp[v] = -1
	g.compSize[c]--
	if g.compSize[c] == 0 {
		g.freeLabel(c)
		g.ncomp--
		return false
	}
	if len(exn) < 2 {
		return false
	}
	n := g.N()
	for len(g.stampA) < n {
		g.stampA = append(g.stampA, 0)
		g.stampB = append(g.stampB, 0)
	}
	g.stampEpoch++
	if g.stampEpoch == 0 {
		for i := range g.stampA {
			g.stampA[i] = 0
			g.stampB[i] = 0
		}
		g.stampEpoch = 1
	}
	ep := g.stampEpoch
	// Enumerate the part containing exn[0]; it keeps label c.
	q := append(g.queueA[:0], exn[0])
	g.stampA[exn[0]] = ep
	for len(q) > 0 {
		x := q[len(q)-1]
		q = q[:len(q)-1]
		for _, w := range g.adj[x] {
			if w != None && g.stampA[w] != ep {
				g.stampA[w] = ep
				q = append(q, w)
			}
		}
	}
	split := false
	for _, s := range exn[1:] {
		if g.stampA[s] == ep || g.comp[s] != c {
			continue // reachable from exn[0], or already relabelled below
		}
		// A separated part: relabel it fresh.
		nc := g.allocLabel()
		size := 0
		q = append(q[:0], s)
		g.comp[s] = nc
		for len(q) > 0 {
			x := q[len(q)-1]
			q = q[:len(q)-1]
			size++
			for _, w := range g.adj[x] {
				if w != None && g.comp[w] == c {
					g.comp[w] = nc
					q = append(q, w)
				}
			}
		}
		g.compSize[nc] = size
		g.compSize[c] -= size
		g.ncomp++
		split = true
	}
	g.queueA = q[:0]
	if split {
		g.compVer++
	}
	return split
}

// compAddNode registers the (re)born node as a fresh singleton
// component. Runs after the node is alive; for an appended slot the
// comp array is grown here.
func (g *Graph) compAddNode(id NodeID) {
	for len(g.comp) < g.N() {
		g.comp = append(g.comp, -1)
	}
	c := g.allocLabel()
	g.comp[id] = c
	g.compSize[c] = 1
	g.ncomp++
}

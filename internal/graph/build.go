package graph

import (
	"fmt"
	"math/rand"
)

// Ring returns the n-cycle 0-1-…-(n-1)-0. n must be ≥ 3.
func Ring(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.MustAddEdge(NodeID(i), NodeID((i+1)%n))
	}
	return b.Build()
}

// Path returns the path 0-1-…-(n-1). n must be ≥ 1.
func Path(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.MustAddEdge(NodeID(i), NodeID(i+1))
	}
	return b.Build()
}

// Star returns the star with centre 0 and leaves 1..n-1.
func Star(n int) *Graph {
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.MustAddEdge(0, NodeID(i))
	}
	return b.Build()
}

// Complete returns the clique K_n.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.MustAddEdge(NodeID(i), NodeID(j))
		}
	}
	return b.Build()
}

// Wheel returns a cycle on nodes 1..n-1 plus a hub 0 adjacent to all.
// n must be ≥ 4.
func Wheel(n int) *Graph {
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.MustAddEdge(0, NodeID(i))
	}
	for i := 1; i < n; i++ {
		next := i + 1
		if next == n {
			next = 1
		}
		b.MustAddEdge(NodeID(i), NodeID(next))
	}
	return b.Build()
}

// Grid returns the rows×cols grid graph, node (r,c) = r*cols+c.
func Grid(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.MustAddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.MustAddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Build()
}

// Torus returns the rows×cols torus (grid with wraparound). rows and
// cols must be ≥ 3 to avoid duplicate edges.
func Torus(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	id := func(r, c int) NodeID { return NodeID(((r+rows)%rows)*cols + (c+cols)%cols) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.MustAddEdge(id(r, c), id(r, c+1))
			b.MustAddEdge(id(r, c), id(r+1, c))
		}
	}
	return b.Build()
}

// Hypercube returns the dim-dimensional hypercube on 2^dim nodes.
func Hypercube(dim int) *Graph {
	n := 1 << dim
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		for bit := 0; bit < dim; bit++ {
			u := v ^ (1 << bit)
			if v < u {
				b.MustAddEdge(NodeID(v), NodeID(u))
			}
		}
	}
	return b.Build()
}

// KAryTree returns a complete k-ary tree with n nodes rooted at 0;
// node i has parent (i-1)/k.
func KAryTree(n, k int) *Graph {
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.MustAddEdge(NodeID((i-1)/k), NodeID(i))
	}
	return b.Build()
}

// Caterpillar returns a path of spineLen nodes with legsPerSpine leaves
// attached to every spine node. It provides trees of controllable height
// at a given size for the T2 experiment.
func Caterpillar(spineLen, legsPerSpine int) *Graph {
	n := spineLen * (1 + legsPerSpine)
	b := NewBuilder(n)
	for i := 0; i+1 < spineLen; i++ {
		b.MustAddEdge(NodeID(i), NodeID(i+1))
	}
	next := spineLen
	for i := 0; i < spineLen; i++ {
		for l := 0; l < legsPerSpine; l++ {
			b.MustAddEdge(NodeID(i), NodeID(next))
			next++
		}
	}
	return b.Build()
}

// Lollipop returns a clique of cliqueSize nodes with a path of tailLen
// nodes attached to clique node 0.
func Lollipop(cliqueSize, tailLen int) *Graph {
	n := cliqueSize + tailLen
	b := NewBuilder(n)
	for i := 0; i < cliqueSize; i++ {
		for j := i + 1; j < cliqueSize; j++ {
			b.MustAddEdge(NodeID(i), NodeID(j))
		}
	}
	prev := NodeID(0)
	for i := 0; i < tailLen; i++ {
		v := NodeID(cliqueSize + i)
		b.MustAddEdge(prev, v)
		prev = v
	}
	return b.Build()
}

// Circulant returns the circulant graph C_n(offsets): node i is
// adjacent to i±d (mod n) for every d in offsets — the chordal rings
// the chordal sense of direction is named after (§2.2). Offsets must
// be distinct values in 1..n/2.
func Circulant(n int, offsets []int) (*Graph, error) {
	b := NewBuilder(n)
	seen := make(map[int]bool, len(offsets))
	for _, d := range offsets {
		if d < 1 || d > n/2 {
			return nil, fmt.Errorf("graph: circulant offset %d outside 1..%d", d, n/2)
		}
		if seen[d] {
			return nil, fmt.Errorf("graph: duplicate circulant offset %d", d)
		}
		seen[d] = true
		for i := 0; i < n; i++ {
			j := (i + d) % n
			if !b.HasEdge(NodeID(i), NodeID(j)) {
				b.MustAddEdge(NodeID(i), NodeID(j))
			}
		}
	}
	return b.BuildConnected()
}

// RandomTree returns a uniformly random labelled tree on n nodes
// (random Prüfer-like attachment: node i attaches to a uniform earlier
// node), using rng for all randomness.
func RandomTree(n int, rng *rand.Rand) *Graph {
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.MustAddEdge(NodeID(rng.Intn(i)), NodeID(i))
	}
	return b.Build()
}

// RandomConnected returns a connected graph on n nodes: a random
// spanning tree plus extra distinct random edges.
func RandomConnected(n, extraEdges int, rng *rand.Rand) *Graph {
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.MustAddEdge(NodeID(rng.Intn(i)), NodeID(i))
	}
	maxExtra := n*(n-1)/2 - (n - 1)
	if extraEdges > maxExtra {
		extraEdges = maxExtra
	}
	for added := 0; added < extraEdges; {
		u := NodeID(rng.Intn(n))
		v := NodeID(rng.Intn(n))
		if u == v || b.HasEdge(u, v) {
			continue
		}
		b.MustAddEdge(u, v)
		added++
	}
	return b.Build()
}

// PaperTokenExample returns the 5-node rooted graph of Figure 3.1.1
// (nodes r,a,b,c,d mapped to ids 0,4,1,3,2 in DFS-preorder so that the
// paper's labels match the ids) — edges r–b, b–d, d–c, r–a with the
// root's port order (b, a), reproducing the paper's naming trace
// r=0, b=1, d=2, c=3, a=4.
//
// Returned ids: r=0, b=1, d=2, c=3, a=4.
func PaperTokenExample() *Graph {
	const (
		r = NodeID(0)
		b = NodeID(1)
		d = NodeID(2)
		c = NodeID(3)
		a = NodeID(4)
	)
	bd := NewBuilder(5)
	bd.MustAddEdge(r, b) // root's port 0 → b (visited first)
	bd.MustAddEdge(r, a) // root's port 1 → a (visited last)
	bd.MustAddEdge(b, d)
	bd.MustAddEdge(d, c)
	return bd.Build()
}

// PaperTreeExample returns the 5-node rooted tree of Figure 4.1.1: the
// root (0) has an internal child (1, weight 3) and a leaf child (4,
// weight 1); the internal child has two leaves (2, 3). The STNO naming
// is 0,1,2,3,4 in preorder.
func PaperTreeExample() *Graph {
	b := NewBuilder(5)
	b.MustAddEdge(0, 1) // root → internal
	b.MustAddEdge(1, 2) // internal → leaf
	b.MustAddEdge(1, 3) // internal → leaf
	b.MustAddEdge(0, 4) // root → leaf
	return b.Build()
}

// PaperChordalExample returns a 5-node cycle with one chord — a small
// graph in the spirit of Figure 2.2.1 used to illustrate the chordal
// sense of direction (the figure's exact topology is not recoverable
// from the text; any graph exhibits the labeling).
func PaperChordalExample() *Graph {
	b := NewBuilder(5)
	for i := 0; i < 5; i++ {
		b.MustAddEdge(NodeID(i), NodeID((i+1)%5))
	}
	b.MustAddEdge(0, 2) // chord
	return b.Build()
}

// Named returns a generator by name, for the CLI tools. Supported:
// ring:n path:n star:n clique:n wheel:n grid:RxC torus:RxC cube:d
// tree:n:k caterpillar:S:L lollipop:C:T random:n:extra:seed
// rtree:n:seed paper-token paper-tree paper-chordal.
func Named(spec string) (*Graph, error) {
	var (
		a, b2, c int
	)
	switch {
	case spec == "paper-token":
		return PaperTokenExample(), nil
	case spec == "paper-tree":
		return PaperTreeExample(), nil
	case spec == "paper-chordal":
		return PaperChordalExample(), nil
	case scan(spec, "ring:%d", &a):
		return Ring(a), nil
	case scan(spec, "path:%d", &a):
		return Path(a), nil
	case scan(spec, "star:%d", &a):
		return Star(a), nil
	case scan(spec, "clique:%d", &a):
		return Complete(a), nil
	case scan(spec, "wheel:%d", &a):
		return Wheel(a), nil
	case scan(spec, "grid:%dx%d", &a, &b2):
		return Grid(a, b2), nil
	case scan(spec, "torus:%dx%d", &a, &b2):
		return Torus(a, b2), nil
	case scan(spec, "cube:%d", &a):
		return Hypercube(a), nil
	case scan(spec, "tree:%d:%d", &a, &b2):
		return KAryTree(a, b2), nil
	case scan(spec, "caterpillar:%d:%d", &a, &b2):
		return Caterpillar(a, b2), nil
	case scan(spec, "lollipop:%d:%d", &a, &b2):
		return Lollipop(a, b2), nil
	case scan(spec, "random:%d:%d:%d", &a, &b2, &c):
		return RandomConnected(a, b2, rand.New(rand.NewSource(int64(c)))), nil
	case scan(spec, "rtree:%d:%d", &a, &b2):
		return RandomTree(a, rand.New(rand.NewSource(int64(b2)))), nil
	case scan(spec, "circulant:%d:%d", &a, &b2):
		return Circulant(a, []int{1, b2})
	}
	return nil, fmt.Errorf("graph: unknown spec %q", spec)
}

func scan(s, format string, args ...interface{}) bool {
	n, err := fmt.Sscanf(s, format, args...)
	return err == nil && n == len(args)
}

package graph

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Ring returns the n-cycle 0-1-…-(n-1)-0. n must be ≥ 3.
func Ring(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.MustAddEdge(NodeID(i), NodeID((i+1)%n))
	}
	return b.Build()
}

// Path returns the path 0-1-…-(n-1). n must be ≥ 1.
func Path(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.MustAddEdge(NodeID(i), NodeID(i+1))
	}
	return b.Build()
}

// Star returns the star with centre 0 and leaves 1..n-1.
func Star(n int) *Graph {
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.MustAddEdge(0, NodeID(i))
	}
	return b.Build()
}

// Complete returns the clique K_n.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.MustAddEdge(NodeID(i), NodeID(j))
		}
	}
	return b.Build()
}

// Wheel returns a cycle on nodes 1..n-1 plus a hub 0 adjacent to all.
// n must be ≥ 4.
func Wheel(n int) *Graph {
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.MustAddEdge(0, NodeID(i))
	}
	for i := 1; i < n; i++ {
		next := i + 1
		if next == n {
			next = 1
		}
		b.MustAddEdge(NodeID(i), NodeID(next))
	}
	return b.Build()
}

// Grid returns the rows×cols grid graph, node (r,c) = r*cols+c.
func Grid(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.MustAddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.MustAddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Build()
}

// Torus returns the rows×cols torus (grid with wraparound). rows and
// cols must be ≥ 3 to avoid duplicate edges.
func Torus(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	id := func(r, c int) NodeID { return NodeID(((r+rows)%rows)*cols + (c+cols)%cols) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.MustAddEdge(id(r, c), id(r, c+1))
			b.MustAddEdge(id(r, c), id(r+1, c))
		}
	}
	return b.Build()
}

// Hypercube returns the dim-dimensional hypercube on 2^dim nodes.
func Hypercube(dim int) *Graph {
	n := 1 << dim
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		for bit := 0; bit < dim; bit++ {
			u := v ^ (1 << bit)
			if v < u {
				b.MustAddEdge(NodeID(v), NodeID(u))
			}
		}
	}
	return b.Build()
}

// KAryTree returns a complete k-ary tree with n nodes rooted at 0;
// node i has parent (i-1)/k.
func KAryTree(n, k int) *Graph {
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.MustAddEdge(NodeID((i-1)/k), NodeID(i))
	}
	return b.Build()
}

// Caterpillar returns a path of spineLen nodes with legsPerSpine leaves
// attached to every spine node. It provides trees of controllable height
// at a given size for the T2 experiment.
func Caterpillar(spineLen, legsPerSpine int) *Graph {
	n := spineLen * (1 + legsPerSpine)
	b := NewBuilder(n)
	for i := 0; i+1 < spineLen; i++ {
		b.MustAddEdge(NodeID(i), NodeID(i+1))
	}
	next := spineLen
	for i := 0; i < spineLen; i++ {
		for l := 0; l < legsPerSpine; l++ {
			b.MustAddEdge(NodeID(i), NodeID(next))
			next++
		}
	}
	return b.Build()
}

// Lollipop returns a clique of cliqueSize nodes with a path of tailLen
// nodes attached to clique node 0.
func Lollipop(cliqueSize, tailLen int) *Graph {
	n := cliqueSize + tailLen
	b := NewBuilder(n)
	for i := 0; i < cliqueSize; i++ {
		for j := i + 1; j < cliqueSize; j++ {
			b.MustAddEdge(NodeID(i), NodeID(j))
		}
	}
	prev := NodeID(0)
	for i := 0; i < tailLen; i++ {
		v := NodeID(cliqueSize + i)
		b.MustAddEdge(prev, v)
		prev = v
	}
	return b.Build()
}

// Circulant returns the circulant graph C_n(offsets): node i is
// adjacent to i±d (mod n) for every d in offsets — the chordal rings
// the chordal sense of direction is named after (§2.2). Offsets must
// be distinct values in 1..n/2.
func Circulant(n int, offsets []int) (*Graph, error) {
	b := NewBuilder(n)
	seen := make(map[int]bool, len(offsets))
	for _, d := range offsets {
		if d < 1 || d > n/2 {
			return nil, fmt.Errorf("graph: circulant offset %d outside 1..%d", d, n/2)
		}
		if seen[d] {
			return nil, fmt.Errorf("graph: duplicate circulant offset %d", d)
		}
		seen[d] = true
		for i := 0; i < n; i++ {
			j := (i + d) % n
			if !b.HasEdge(NodeID(i), NodeID(j)) {
				b.MustAddEdge(NodeID(i), NodeID(j))
			}
		}
	}
	return b.BuildConnected()
}

// RandomTree returns a uniformly random labelled tree on n nodes
// (random Prüfer-like attachment: node i attaches to a uniform earlier
// node), using rng for all randomness.
func RandomTree(n int, rng *rand.Rand) *Graph {
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.MustAddEdge(NodeID(rng.Intn(i)), NodeID(i))
	}
	return b.Build()
}

// RandomConnected returns a connected graph on n nodes: a random
// spanning tree plus extra distinct random edges.
func RandomConnected(n, extraEdges int, rng *rand.Rand) *Graph {
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.MustAddEdge(NodeID(rng.Intn(i)), NodeID(i))
	}
	maxExtra := n*(n-1)/2 - (n - 1)
	if extraEdges > maxExtra {
		extraEdges = maxExtra
	}
	for added := 0; added < extraEdges; {
		u := NodeID(rng.Intn(n))
		v := NodeID(rng.Intn(n))
		if u == v || b.HasEdge(u, v) {
			continue
		}
		b.MustAddEdge(u, v)
		added++
	}
	return b.Build()
}

// Gnp returns an Erdős–Rényi G(n,p) draw, each of the n·(n-1)/2
// possible edges present independently with probability p. The draw is
// rejected with a wrapped ErrNotConnected when it is disconnected —
// churn experiments need a connected base graph, and silently patching
// the draw would bias the degree distribution; raise p (the sharp
// connectivity threshold is p ≈ ln(n)/n) or reseed instead.
func Gnp(n int, p float64, rng *rand.Rand) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("graph: gnp needs n ≥ 1, got %d", n)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("graph: gnp probability %g outside [0,1]", p)
	}
	if p == 1 {
		return Complete(n), nil
	}
	b := NewBuilder(n)
	if p > 0 {
		// Geometric skip-sampling: instead of flipping one coin per
		// candidate pair (Θ(n²)), draw the gap to the next present
		// edge directly — O(n+m) total, which is what lets churn
		// experiments use sparse draws at realistic sizes.
		lq := math.Log(1 - p)
		for i := 0; i < n; i++ {
			j := i
			for {
				j += 1 + int(math.Log(1-rng.Float64())/lq)
				if j >= n || j < 0 { // j<0 guards int overflow on tiny p
					break
				}
				b.MustAddEdge(NodeID(i), NodeID(j))
			}
		}
	}
	g := b.Build()
	if !g.Connected() {
		return nil, fmt.Errorf("graph: G(n=%d, p=%g) draw is disconnected — raise p above ln(n)/n ≈ %.4f or use another seed: %w",
			n, p, math.Log(float64(n))/float64(n), ErrNotConnected)
	}
	return g, nil
}

// GnpAny returns an Erdős–Rényi G(n,p) draw like Gnp but *without* the
// connectivity rejection: the draw is returned as sampled, possibly
// disconnected. This is the constructor for partition-tolerance work —
// per-component legitimacy, orphan detection, churn with
// -allow-disconnect — where a disconnected topology is the point, not
// a sampling accident.
func GnpAny(n int, p float64, rng *rand.Rand) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("graph: gnp-any needs n ≥ 1, got %d", n)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("graph: gnp-any probability %g outside [0,1]", p)
	}
	if p == 1 {
		return Complete(n), nil
	}
	b := NewBuilder(n)
	if p > 0 {
		lq := math.Log(1 - p)
		for i := 0; i < n; i++ {
			j := i
			for {
				j += 1 + int(math.Log(1-rng.Float64())/lq)
				if j >= n || j < 0 {
					break
				}
				b.MustAddEdge(NodeID(i), NodeID(j))
			}
		}
	}
	return b.Build(), nil
}

// Barabasi returns a Barabási–Albert preferential-attachment graph:
// nodes 0..m form a seed clique; every later node attaches to m
// distinct existing nodes chosen proportionally to their current
// degree. The result is connected by construction and has the
// heavy-tailed degree distribution churn experiments want (hub loss is
// the interesting fault). Requires n ≥ m+1 and m ≥ 1.
func Barabasi(n, m int, rng *rand.Rand) (*Graph, error) {
	if m < 1 {
		return nil, fmt.Errorf("graph: barabasi needs m ≥ 1, got %d", m)
	}
	if n < m+1 {
		return nil, fmt.Errorf("graph: barabasi needs n ≥ m+1, got n=%d m=%d", n, m)
	}
	b := NewBuilder(n)
	// targets holds one entry per edge endpoint, so uniform sampling
	// from it is degree-proportional sampling of nodes.
	targets := make([]NodeID, 0, 2*(m*(m+1)/2+(n-m-1)*m))
	for i := 0; i <= m; i++ {
		for j := i + 1; j <= m; j++ {
			b.MustAddEdge(NodeID(i), NodeID(j))
			targets = append(targets, NodeID(i), NodeID(j))
		}
	}
	chosen := make(map[NodeID]bool, m)
	attach := make([]NodeID, 0, m)
	for v := m + 1; v < n; v++ {
		for q := range chosen {
			delete(chosen, q)
		}
		for len(chosen) < m {
			chosen[targets[rng.Intn(len(targets))]] = true
		}
		// Attach in ascending id order so equal seeds give equal
		// graphs regardless of map iteration. Sorting the m chosen
		// targets (not scanning 0..v probing the map) keeps the
		// generator O(n·m log m); the scan made n = 2¹⁸ builds take
		// minutes.
		attach = attach[:0]
		for q := range chosen {
			attach = append(attach, q)
		}
		sort.Slice(attach, func(i, j int) bool { return attach[i] < attach[j] })
		for _, q := range attach {
			b.MustAddEdge(NodeID(v), q)
			targets = append(targets, NodeID(v), q)
		}
	}
	return b.Build(), nil
}

// PaperTokenExample returns the 5-node rooted graph of Figure 3.1.1
// (nodes r,a,b,c,d mapped to ids 0,4,1,3,2 in DFS-preorder so that the
// paper's labels match the ids) — edges r–b, b–d, d–c, r–a with the
// root's port order (b, a), reproducing the paper's naming trace
// r=0, b=1, d=2, c=3, a=4.
//
// Returned ids: r=0, b=1, d=2, c=3, a=4.
func PaperTokenExample() *Graph {
	const (
		r = NodeID(0)
		b = NodeID(1)
		d = NodeID(2)
		c = NodeID(3)
		a = NodeID(4)
	)
	bd := NewBuilder(5)
	bd.MustAddEdge(r, b) // root's port 0 → b (visited first)
	bd.MustAddEdge(r, a) // root's port 1 → a (visited last)
	bd.MustAddEdge(b, d)
	bd.MustAddEdge(d, c)
	return bd.Build()
}

// PaperTreeExample returns the 5-node rooted tree of Figure 4.1.1: the
// root (0) has an internal child (1, weight 3) and a leaf child (4,
// weight 1); the internal child has two leaves (2, 3). The STNO naming
// is 0,1,2,3,4 in preorder.
func PaperTreeExample() *Graph {
	b := NewBuilder(5)
	b.MustAddEdge(0, 1) // root → internal
	b.MustAddEdge(1, 2) // internal → leaf
	b.MustAddEdge(1, 3) // internal → leaf
	b.MustAddEdge(0, 4) // root → leaf
	return b.Build()
}

// PaperChordalExample returns a 5-node cycle with one chord — a small
// graph in the spirit of Figure 2.2.1 used to illustrate the chordal
// sense of direction (the figure's exact topology is not recoverable
// from the text; any graph exhibits the labeling).
func PaperChordalExample() *Graph {
	b := NewBuilder(5)
	for i := 0; i < 5; i++ {
		b.MustAddEdge(NodeID(i), NodeID((i+1)%5))
	}
	b.MustAddEdge(0, 2) // chord
	return b.Build()
}

// Spec-parser guard rails: Named is fed by CLI flags and fuzzers, so
// before invoking a generator it bounds the node and edge counts the
// spec implies. Bigger graphs are for programmatic construction, where
// the caller owns the memory decision.
const (
	maxSpecNodes = 1 << 21
	maxSpecEdges = 1 << 23
)

// checkSpecSize validates the node/edge counts a spec implies, with
// the per-family minimum node count.
func checkSpecSize(family string, n, m, minN int64) error {
	if n < minN {
		return fmt.Errorf("graph: %s needs at least %d nodes, got %d", family, minN, n)
	}
	if n > maxSpecNodes {
		return fmt.Errorf("graph: %s spec asks for %d nodes, parser cap is %d", family, n, maxSpecNodes)
	}
	if m > maxSpecEdges {
		return fmt.Errorf("graph: %s spec implies %d edges, parser cap is %d", family, m, maxSpecEdges)
	}
	return nil
}

// Named returns a generator by name, for the CLI tools. Supported:
// ring:n path:n star:n clique:n wheel:n grid:RxC torus:RxC cube:d
// tree:n:k caterpillar:S:L lollipop:C:T random:n:extra:seed
// rtree:n:seed circulant:n:chord gnp:n:p:seed gnp-any:n:p:seed
// barabasi:n:m:seed paper-token paper-tree paper-chordal.
// gnp-any is the G(n,p) draw without the connectivity rejection —
// possibly disconnected by design.
//
// Named rejects specs implying absurd sizes (see maxSpecNodes /
// maxSpecEdges) and sizes below each family's minimum, so arbitrary
// input cannot drive it into a panic or an unbounded allocation; the
// FuzzNamed fuzz target pins this.
func Named(spec string) (*Graph, error) {
	var (
		a, b2, c int
		f        float64
	)
	sz := func(family string, n, m, minN int64) error { return checkSpecSize(family, n, m, minN) }
	switch {
	case spec == "paper-token":
		return PaperTokenExample(), nil
	case spec == "paper-tree":
		return PaperTreeExample(), nil
	case spec == "paper-chordal":
		return PaperChordalExample(), nil
	case scan(spec, "ring:%d", &a):
		if err := sz("ring", int64(a), int64(a), 3); err != nil {
			return nil, err
		}
		return Ring(a), nil
	case scan(spec, "path:%d", &a):
		if err := sz("path", int64(a), int64(a), 1); err != nil {
			return nil, err
		}
		return Path(a), nil
	case scan(spec, "star:%d", &a):
		if err := sz("star", int64(a), int64(a), 1); err != nil {
			return nil, err
		}
		return Star(a), nil
	case scan(spec, "clique:%d", &a):
		if err := sz("clique", int64(a), int64(a)*int64(a-1)/2, 1); err != nil {
			return nil, err
		}
		return Complete(a), nil
	case scan(spec, "wheel:%d", &a):
		if err := sz("wheel", int64(a), 2*int64(a), 4); err != nil {
			return nil, err
		}
		return Wheel(a), nil
	case scan(spec, "grid:%dx%d", &a, &b2):
		// Bound each dimension before multiplying: the n = rows·cols
		// product of two unchecked ints can wrap int64 past the cap.
		if a < 1 || b2 < 1 || a > maxSpecNodes || b2 > maxSpecNodes {
			return nil, fmt.Errorf("graph: grid dimensions outside 1..%d, got %dx%d", maxSpecNodes, a, b2)
		}
		if err := sz("grid", int64(a)*int64(b2), 2*int64(a)*int64(b2), 1); err != nil {
			return nil, err
		}
		return Grid(a, b2), nil
	case scan(spec, "torus:%dx%d", &a, &b2):
		if a < 3 || b2 < 3 || a > maxSpecNodes || b2 > maxSpecNodes {
			return nil, fmt.Errorf("graph: torus dimensions outside 3..%d, got %dx%d", maxSpecNodes, a, b2)
		}
		if err := sz("torus", int64(a)*int64(b2), 2*int64(a)*int64(b2), 9); err != nil {
			return nil, err
		}
		return Torus(a, b2), nil
	case scan(spec, "cube:%d", &a):
		if a < 0 || a > 19 {
			return nil, fmt.Errorf("graph: cube dimension %d outside 0..19", a)
		}
		return Hypercube(a), nil
	case scan(spec, "tree:%d:%d", &a, &b2):
		if b2 < 1 {
			return nil, fmt.Errorf("graph: tree arity must be ≥ 1, got %d", b2)
		}
		if err := sz("tree", int64(a), int64(a), 1); err != nil {
			return nil, err
		}
		return KAryTree(a, b2), nil
	case scan(spec, "caterpillar:%d:%d", &a, &b2):
		if b2 < 0 || b2 > maxSpecNodes || a > maxSpecNodes {
			return nil, fmt.Errorf("graph: caterpillar shape outside bounds, got %d:%d", a, b2)
		}
		n := int64(a) * int64(1+b2)
		if err := sz("caterpillar", n, n, 1); err != nil {
			return nil, err
		}
		return Caterpillar(a, b2), nil
	case scan(spec, "lollipop:%d:%d", &a, &b2):
		if b2 < 0 {
			return nil, fmt.Errorf("graph: lollipop tail must be ≥ 0, got %d", b2)
		}
		if err := sz("lollipop", int64(a)+int64(b2), int64(a)*int64(a-1)/2+int64(b2), 1); err != nil {
			return nil, err
		}
		return Lollipop(a, b2), nil
	case scan(spec, "random:%d:%d:%d", &a, &b2, &c):
		if b2 < 0 {
			return nil, fmt.Errorf("graph: random extra edges must be ≥ 0, got %d", b2)
		}
		if err := sz("random", int64(a), int64(a)+int64(b2), 1); err != nil {
			return nil, err
		}
		return RandomConnected(a, b2, rand.New(rand.NewSource(int64(c)))), nil
	case scan(spec, "rtree:%d:%d", &a, &b2):
		if err := sz("rtree", int64(a), int64(a), 1); err != nil {
			return nil, err
		}
		return RandomTree(a, rand.New(rand.NewSource(int64(b2)))), nil
	case scan(spec, "circulant:%d:%d", &a, &b2):
		if err := sz("circulant", int64(a), 2*int64(a), 3); err != nil {
			return nil, err
		}
		return Circulant(a, []int{1, b2})
	case scan(spec, "gnp-any:%d:%g:%d", &a, &f, &c):
		if !(f >= 0 && f <= 1) { // also rejects NaN
			return nil, fmt.Errorf("graph: gnp-any probability %g outside [0,1]", f)
		}
		if err := sz("gnp-any", int64(a), int64(float64(a)*float64(a)/2*f)+int64(a), 1); err != nil {
			return nil, err
		}
		return GnpAny(a, f, rand.New(rand.NewSource(int64(c))))
	case scan(spec, "gnp:%d:%g:%d", &a, &f, &c):
		if !(f >= 0 && f <= 1) { // also rejects NaN
			return nil, fmt.Errorf("graph: gnp probability %g outside [0,1]", f)
		}
		if err := sz("gnp", int64(a), int64(float64(a)*float64(a)/2*f)+int64(a), 1); err != nil {
			return nil, err
		}
		return Gnp(a, f, rand.New(rand.NewSource(int64(c))))
	case scan(spec, "barabasi:%d:%d:%d", &a, &b2, &c):
		if err := sz("barabasi", int64(a), int64(a)*int64(b2), 1); err != nil {
			return nil, err
		}
		return Barabasi(a, b2, rand.New(rand.NewSource(int64(c))))
	}
	return nil, fmt.Errorf("graph: unknown spec %q", spec)
}

func scan(s, format string, args ...interface{}) bool {
	n, err := fmt.Sscanf(s, format, args...)
	return err == nil && n == len(args)
}

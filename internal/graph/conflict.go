package graph

// ConflictAdjacency computes the conflict graph of a member set under a
// distance bound: members[i] and members[j] conflict iff their graph
// distance is at most radius. The result is indexed like members —
// adj[i] lists the member *indices* j≠i within the bound, each edge
// appearing in both directions.
//
// The sharded parallel stepper uses it with radius = 2R over the
// frontier: two radius-R influence balls intersect exactly when their
// centres are within distance 2R, so an independent set of this
// conflict graph is a set of frontier moves with pairwise-disjoint
// balls — simultaneously fireable under the paper's daemon model. A
// greedy coloring of the conflict graph therefore partitions the
// frontier into concurrently executable waves.
//
// Cost is one depth-bounded BFS per member, O(Σ |B(m, radius)| edges)
// total, with O(n) scratch reused across members via epoch stamps.
// Dead members and holes in mutated port spaces are skipped the same
// way every traversal in this package skips them.
func ConflictAdjacency(g *Graph, members []NodeID, radius int) [][]int32 {
	n := g.N()
	adj := make([][]int32, len(members))
	if len(members) == 0 || radius <= 0 {
		return adj
	}
	// memberIdx maps node id -> index in members (-1 otherwise).
	memberIdx := make([]int32, n)
	for i := range memberIdx {
		memberIdx[i] = -1
	}
	for i, m := range members {
		memberIdx[m] = int32(i)
	}
	// Depth-bounded BFS per member with epoch-stamped visited marks:
	// stamp[v] == epoch(i) means v was reached in member i's search.
	stamp := make([]int32, n)
	for i := range stamp {
		stamp[i] = -1
	}
	queue := make([]NodeID, 0, 64)
	for i, m := range members {
		if !g.Alive(m) {
			continue
		}
		src := int32(i)
		stamp[m] = src
		queue = append(queue[:0], m)
		for hop, lo := 0, 0; hop < radius; hop++ {
			hi := len(queue)
			for _, u := range queue[lo:hi] {
				for _, q := range g.Neighbors(u) {
					if q == None || stamp[q] == src {
						continue
					}
					stamp[q] = src
					queue = append(queue, q)
					if j := memberIdx[q]; j >= 0 {
						adj[i] = append(adj[i], j)
					}
				}
			}
			if len(queue) == hi {
				break
			}
			lo = hi
		}
	}
	return adj
}

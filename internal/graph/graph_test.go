package graph

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuilderRejectsBadEdges(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddEdge(0, 0); !errors.Is(err, ErrSelfLoop) {
		t.Errorf("self-loop: got %v", err)
	}
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 0); !errors.Is(err, ErrDuplicateEdge) {
		t.Errorf("duplicate: got %v", err)
	}
	var rangeErr *NodeRangeError
	if err := b.AddEdge(0, 7); !errors.As(err, &rangeErr) {
		t.Errorf("out of range: got %v", err)
	}
}

func TestBuildConnected(t *testing.T) {
	b := NewBuilder(4)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(2, 3)
	if _, err := b.BuildConnected(); !errors.Is(err, ErrNotConnected) {
		t.Errorf("got %v, want ErrNotConnected", err)
	}
	b.MustAddEdge(1, 2)
	if _, err := b.BuildConnected(); err != nil {
		t.Errorf("connected build failed: %v", err)
	}
}

func TestPortNumbersFollowInsertionOrder(t *testing.T) {
	b := NewBuilder(4)
	b.MustAddEdge(0, 2)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(0, 3)
	g := b.Build()
	want := []NodeID{2, 1, 3}
	for port, q := range g.Neighbors(0) {
		if q != want[port] {
			t.Fatalf("port %d = node %d, want %d", port, q, want[port])
		}
	}
	for port, q := range want {
		if p, ok := g.PortOf(0, q); !ok || p != port {
			t.Errorf("PortOf(0,%d) = %d,%v want %d,true", q, p, ok, port)
		}
	}
	if _, ok := g.PortOf(1, 3); ok {
		t.Error("PortOf on non-edge should report false")
	}
}

func TestGeneratorShapes(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		n, m int
		dia  int // -1 to skip
	}{
		{"ring5", Ring(5), 5, 5, 2},
		{"path6", Path(6), 6, 5, 5},
		{"star7", Star(7), 7, 6, 2},
		{"K5", Complete(5), 5, 10, 1},
		{"wheel6", Wheel(6), 6, 10, 2},
		{"grid3x4", Grid(3, 4), 12, 17, 5},
		{"torus3x3", Torus(3, 3), 9, 18, 2},
		{"cube3", Hypercube(3), 8, 12, 3},
		{"tree7", KAryTree(7, 2), 7, 6, -1},
		{"caterpillar", Caterpillar(3, 2), 9, 8, -1},
		{"lollipop", Lollipop(4, 3), 7, 9, 4},
		{"paper-token", PaperTokenExample(), 5, 4, -1},
		{"paper-tree", PaperTreeExample(), 5, 4, -1},
		{"paper-chordal", PaperChordalExample(), 5, 6, -1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if c.g.N() != c.n || c.g.M() != c.m {
				t.Fatalf("n=%d m=%d, want n=%d m=%d", c.g.N(), c.g.M(), c.n, c.m)
			}
			if !c.g.Connected() {
				t.Fatal("generator produced a disconnected graph")
			}
			if c.dia >= 0 {
				if d := Diameter(c.g); d != c.dia {
					t.Errorf("diameter %d, want %d", d, c.dia)
				}
			}
		})
	}
}

func TestCirculant(t *testing.T) {
	g, err := Circulant(16, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 16 || g.M() != 32 {
		t.Fatalf("C16(1,4): got %s, want n=16 m=32", g)
	}
	for v := 0; v < 16; v++ {
		for _, d := range []int{1, 4} {
			if !g.HasEdge(NodeID(v), NodeID((v+d)%16)) {
				t.Fatalf("missing chord %d→%d", v, (v+d)%16)
			}
		}
	}
	// n even and offset n/2: each diameter chord appears once, so
	// C6(1,3) has 6 ring edges plus 3 chords.
	g2, err := Circulant(6, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if g2.M() != 9 {
		t.Fatalf("C6(1,3): m=%d, want 9", g2.M())
	}
	// A lone n/2 offset yields a disconnected matching and is refused.
	if _, err := Circulant(6, []int{3}); err == nil {
		t.Error("disconnected circulant accepted")
	}
	if _, err := Circulant(8, []int{0}); err == nil {
		t.Error("offset 0 accepted")
	}
	if _, err := Circulant(8, []int{5}); err == nil {
		t.Error("offset beyond n/2 accepted")
	}
	if _, err := Circulant(8, []int{2, 2}); err == nil {
		t.Error("duplicate offset accepted")
	}
	if g3, err := Named("circulant:12:3"); err != nil || g3.N() != 12 {
		t.Errorf("named circulant: %v %v", g3, err)
	}
}

func TestRandomGeneratorsProduceConnectedGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(30)
		g := RandomTree(n, rng)
		if !IsTree(g) {
			t.Fatalf("RandomTree(%d) is not a tree", n)
		}
		g2 := RandomConnected(n, rng.Intn(2*n), rng)
		if !g2.Connected() {
			t.Fatalf("RandomConnected(%d) is not connected", n)
		}
	}
}

func TestBFSAndDFSAgreeOnReachability(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		g := RandomConnected(3+rng.Intn(20), rng.Intn(10), rng)
		dist, bfsPar := BFSFrom(g, 0)
		order, dfsPar := DFSPreorder(g, 0)
		if len(order) != g.N() {
			t.Fatalf("DFS visited %d of %d nodes", len(order), g.N())
		}
		for v := 0; v < g.N(); v++ {
			if dist[v] < 0 {
				t.Fatalf("BFS missed node %d in a connected graph", v)
			}
			if v != 0 && (bfsPar[v] == None || dfsPar[v] == None) {
				t.Fatalf("missing parent for node %d", v)
			}
		}
		if !SpanningParent(g, bfsPar, 0) || !SpanningParent(g, dfsPar, 0) {
			t.Fatal("BFS/DFS parents do not span")
		}
	}
}

func TestDFSPreorderFollowsPortOrder(t *testing.T) {
	g := PaperTokenExample()
	order, parent := DFSPreorder(g, 0)
	wantOrder := []NodeID{0, 1, 2, 3, 4} // r, b, d, c, a by construction
	for i := range wantOrder {
		if order[i] != wantOrder[i] {
			t.Fatalf("order %v, want %v", order, wantOrder)
		}
	}
	wantParent := []NodeID{None, 0, 1, 2, 0}
	for v := range wantParent {
		if parent[v] != wantParent[v] {
			t.Fatalf("parent %v, want %v", parent, wantParent)
		}
	}
}

func TestTreeHeight(t *testing.T) {
	// Path: height n-1 from the end.
	_, par := BFSFrom(Path(6), 0)
	if h := TreeHeight(par, 0); h != 5 {
		t.Errorf("path height %d, want 5", h)
	}
	// Balanced binary tree of 7 nodes: height 2.
	_, par = BFSFrom(KAryTree(7, 2), 0)
	if h := TreeHeight(par, 0); h != 2 {
		t.Errorf("tree height %d, want 2", h)
	}
	// Cycle in the parent vector is rejected.
	bad := []NodeID{None, 2, 1}
	if h := TreeHeight(bad, 0); h != -1 {
		t.Errorf("cyclic parent vector: height %d, want -1", h)
	}
}

func TestChildrenOfPortOrder(t *testing.T) {
	g := Star(5)
	_, par := BFSFrom(g, 0)
	kids := ChildrenOf(g, par)
	if len(kids[0]) != 4 {
		t.Fatalf("root children %d, want 4", len(kids[0]))
	}
	for i, q := range kids[0] {
		if q != g.Neighbor(0, i) {
			t.Errorf("child %d = %d, want %d (port order)", i, q, g.Neighbor(0, i))
		}
	}
}

func TestReorderPreservesStructure(t *testing.T) {
	g := Complete(4)
	perm := make([][]int, g.N())
	for v := range perm {
		perm[v] = []int{2, 0, 1} // rotate ports
	}
	ng, err := g.Reorder(perm)
	if err != nil {
		t.Fatal(err)
	}
	if ng.N() != g.N() || ng.M() != g.M() {
		t.Fatal("reorder changed size")
	}
	for v := 0; v < g.N(); v++ {
		for _, q := range g.Neighbors(NodeID(v)) {
			if !ng.HasEdge(NodeID(v), q) {
				t.Fatalf("edge {%d,%d} lost", v, q)
			}
		}
		if ng.Neighbor(NodeID(v), 0) != g.Neighbor(NodeID(v), 2) {
			t.Fatal("port permutation not applied")
		}
	}
	// Invalid permutations are rejected.
	if _, err := g.Reorder(perm[:2]); err == nil {
		t.Error("expected error for wrong permutation count")
	}
	badPerm := [][]int{{0, 0, 1}, {0, 1, 2}, {0, 1, 2}, {0, 1, 2}}
	if _, err := g.Reorder(badPerm); err == nil {
		t.Error("expected error for non-permutation")
	}
}

func TestNamedSpecs(t *testing.T) {
	specs := []struct {
		spec string
		n    int
	}{
		{"ring:7", 7}, {"path:4", 4}, {"star:5", 5}, {"clique:4", 4},
		{"wheel:6", 6}, {"grid:2x3", 6}, {"torus:3x3", 9}, {"cube:3", 8},
		{"tree:7:2", 7}, {"caterpillar:3:1", 6}, {"lollipop:3:2", 5},
		{"random:10:5:1", 10}, {"rtree:9:2", 9},
		{"paper-token", 5}, {"paper-tree", 5}, {"paper-chordal", 5},
	}
	for _, s := range specs {
		g, err := Named(s.spec)
		if err != nil {
			t.Errorf("%s: %v", s.spec, err)
			continue
		}
		if g.N() != s.n {
			t.Errorf("%s: n=%d, want %d", s.spec, g.N(), s.n)
		}
	}
	if _, err := Named("nonsense:1:2"); err == nil {
		t.Error("expected error for unknown spec")
	}
}

// TestEdgesPropertyBased: for random graphs, Edges() lists each edge
// once with U<V and is consistent with HasEdge.
func TestEdgesPropertyBased(t *testing.T) {
	f := func(seed int64, nRaw uint8, extraRaw uint8) bool {
		n := 2 + int(nRaw%20)
		rng := rand.New(rand.NewSource(seed))
		g := RandomConnected(n, int(extraRaw%16), rng)
		edges := g.Edges()
		if len(edges) != g.M() {
			return false
		}
		seen := make(map[Edge]bool)
		for _, e := range edges {
			if e.U >= e.V || seen[e] || !g.HasEdge(e.U, e.V) || !g.HasEdge(e.V, e.U) {
				return false
			}
			seen[e] = true
		}
		// Degree sum equals 2m.
		sum := 0
		for v := 0; v < g.N(); v++ {
			sum += g.Degree(NodeID(v))
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestBFSDistanceTriangleInequality (property): BFS distances obey
// |d(u)-d(v)| ≤ 1 across every edge.
func TestBFSDistanceTriangleInequality(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 2 + int(nRaw%25)
		rng := rand.New(rand.NewSource(seed))
		g := RandomConnected(n, n/2, rng)
		dist, _ := BFSFrom(g, 0)
		for _, e := range g.Edges() {
			d := dist[e.U] - dist[e.V]
			if d < -1 || d > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestNeighborsCopyIsPrivate(t *testing.T) {
	g := Ring(4)
	cp := g.NeighborsCopy(0)
	cp[0] = 99
	if g.Neighbors(0)[0] == 99 {
		t.Fatal("NeighborsCopy aliases internal storage")
	}
}

package graph

import (
	"math/rand"
	"testing"
)

func BenchmarkRandomConnected(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := RandomConnected(256, 128, rng)
		if g.N() != 256 {
			b.Fatal("bad graph")
		}
	}
}

func BenchmarkDFSPreorder(b *testing.B) {
	g := Grid(16, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		order, _ := DFSPreorder(g, 0)
		if len(order) != g.N() {
			b.Fatal("incomplete DFS")
		}
	}
}

func BenchmarkBFSFrom(b *testing.B) {
	g := Grid(16, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dist, _ := BFSFrom(g, 0)
		if dist[g.N()-1] < 0 {
			b.Fatal("unreachable")
		}
	}
}

func BenchmarkPortOf(b *testing.B) {
	g := Complete(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := g.PortOf(NodeID(i%64), NodeID((i+1)%64)); !ok {
			b.Fatal("missing edge")
		}
	}
}

package graph

import (
	"math/rand"
	"testing"
)

// scratchComponents recomputes the component partition of the live
// subgraph from scratch: labels[v] = -1 for dead nodes, otherwise an
// arbitrary-but-consistent component id; returns labels and count.
func scratchComponents(g *Graph) ([]int, int) {
	labels := make([]int, g.N())
	for v := range labels {
		labels[v] = -1
	}
	count := 0
	for v := 0; v < g.N(); v++ {
		if !g.Alive(NodeID(v)) || labels[v] >= 0 {
			continue
		}
		q := []NodeID{NodeID(v)}
		labels[v] = count
		for len(q) > 0 {
			x := q[len(q)-1]
			q = q[:len(q)-1]
			for _, w := range g.Neighbors(x) {
				if w != None && labels[w] < 0 {
					labels[w] = count
					q = append(q, w)
				}
			}
		}
		count++
	}
	return labels, count
}

// checkComponents is the incremental-vs-scratch differential: the
// maintained labelling must induce exactly the scratch partition, the
// component count must match, and every label's size must equal its
// class size.
func checkComponents(t *testing.T, g *Graph) {
	t.Helper()
	want, count := scratchComponents(g)
	if g.Components() != count {
		t.Fatalf("Components() = %d, scratch says %d", g.Components(), count)
	}
	// The maintained labels must induce the same partition: build the
	// scratch-label → maintained-label correspondence and check it is a
	// bijection.
	fwd := make(map[int]int)
	sizes := make(map[int]int)
	for v := 0; v < g.N(); v++ {
		got := g.ComponentOf(NodeID(v))
		if want[v] < 0 {
			if got != -1 {
				t.Fatalf("dead node %d has component %d", v, got)
			}
			continue
		}
		if got < 0 {
			t.Fatalf("live node %d has no component", v)
		}
		if prev, ok := fwd[want[v]]; ok {
			if prev != got {
				t.Fatalf("scratch class %d maps to labels %d and %d", want[v], prev, got)
			}
		} else {
			fwd[want[v]] = got
		}
		sizes[got]++
	}
	rev := make(map[int]bool)
	for _, l := range fwd {
		if rev[l] {
			t.Fatalf("two scratch classes share maintained label %d", l)
		}
		rev[l] = true
	}
	for l, n := range sizes {
		if g.ComponentSize(l) != n {
			t.Fatalf("ComponentSize(%d) = %d, counted %d", l, g.ComponentSize(l), n)
		}
	}
}

// TestComponentsOnBuiltGraphs checks the lazy initial labelling.
func TestComponentsOnBuiltGraphs(t *testing.T) {
	g := Grid(3, 3)
	if g.Components() != 1 {
		t.Fatalf("grid has %d components", g.Components())
	}
	checkComponents(t, g)

	// Two disjoint triangles.
	b := NewBuilder(6)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(1, 2)
	b.MustAddEdge(2, 0)
	b.MustAddEdge(3, 4)
	b.MustAddEdge(4, 5)
	b.MustAddEdge(5, 3)
	g2 := b.Build()
	if g2.Components() != 2 {
		t.Fatalf("disjoint triangles: %d components", g2.Components())
	}
	if g2.SameComponent(0, 3) || !g2.SameComponent(0, 2) {
		t.Fatal("SameComponent wrong on disjoint triangles")
	}
	if g2.ComponentSize(g2.ComponentOf(0)) != 3 {
		t.Fatalf("triangle size %d", g2.ComponentSize(g2.ComponentOf(0)))
	}
	checkComponents(t, g2)
}

// TestComponentSplitAndMerge pins the delta reporting: cutting the
// bridge of a barbell splits (CompChanged), healing merges
// (CompChanged), and a cycle-edge removal does neither.
func TestComponentSplitAndMerge(t *testing.T) {
	// Two triangles joined by a bridge 2-3.
	b := NewBuilder(6)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(1, 2)
	b.MustAddEdge(2, 0)
	b.MustAddEdge(3, 4)
	b.MustAddEdge(4, 5)
	b.MustAddEdge(5, 3)
	b.MustAddEdge(2, 3)
	g := b.Build()
	if g.Components() != 1 {
		t.Fatalf("barbell: %d components", g.Components())
	}
	ver := g.CompVersion()

	// Cycle-edge removal: no split, no relabel.
	d, err := g.RemoveEdge(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.CompChanged || d.Components != 1 {
		t.Fatalf("cycle-edge removal reported %+v", d)
	}
	if g.CompVersion() != ver {
		t.Fatal("cycle-edge removal bumped CompVersion")
	}
	checkComponents(t, g)

	// Bridge cut: split.
	d, err = g.RemoveEdge(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !d.CompChanged || d.Components != 2 {
		t.Fatalf("bridge cut reported %+v", d)
	}
	if g.CompVersion() == ver {
		t.Fatal("bridge cut did not bump CompVersion")
	}
	if g.SameComponent(2, 3) {
		t.Fatal("still same component after bridge cut")
	}
	checkComponents(t, g)

	// Heal: merge.
	ver = g.CompVersion()
	d, err = g.AddEdge(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !d.CompChanged || d.Components != 1 {
		t.Fatalf("heal reported %+v", d)
	}
	if g.CompVersion() == ver || !g.SameComponent(0, 5) {
		t.Fatal("heal did not merge")
	}
	checkComponents(t, g)
}

// TestComponentNodeEvents pins node birth/death semantics: a crash
// that islands a region splits, an isolated revive is a fresh
// singleton, and neither a plain crash nor a revive bumps CompVersion.
func TestComponentNodeEvents(t *testing.T) {
	g := Path(5) // 0-1-2-3-4
	if g.Components() != 1 {
		t.Fatal("path disconnected?")
	}
	ver := g.CompVersion()

	// Removing the middle of the path splits {0,1} from {3,4}.
	d, err := g.RemoveNode(2)
	if err != nil {
		t.Fatal(err)
	}
	if !d.CompChanged || d.Components != 2 {
		t.Fatalf("middle crash reported %+v", d)
	}
	if g.ComponentOf(2) != -1 {
		t.Fatal("dead node kept a component")
	}
	checkComponents(t, g)

	// Reviving it gives a fresh singleton without relabelling others.
	ver = g.CompVersion()
	id, d2 := g.AddNode()
	if id != 2 || d2.Components != 3 || d2.CompChanged {
		t.Fatalf("revive gave id=%d delta %+v", id, d2)
	}
	if g.CompVersion() != ver {
		t.Fatal("revive bumped CompVersion")
	}
	if g.ComponentSize(g.ComponentOf(2)) != 1 {
		t.Fatal("revived node not a singleton component")
	}
	checkComponents(t, g)

	// Re-attaching merges both sides back.
	if d3, err := g.AddEdge(2, 1); err != nil || !d3.CompChanged || d3.Components != 2 {
		t.Fatalf("reattach 2-1: %v %+v", err, d3)
	}
	if d4, err := g.AddEdge(2, 3); err != nil || !d4.CompChanged || d4.Components != 1 {
		t.Fatalf("reattach 2-3: %v %+v", err, d4)
	}
	checkComponents(t, g)

	// A leaf crash removes a then-singleton cleanly.
	g2 := Path(2)
	if _, err := g2.RemoveNode(1); err != nil {
		t.Fatal(err)
	}
	if g2.Components() != 1 {
		t.Fatalf("after leaf crash: %d components", g2.Components())
	}
	if _, err := g2.RemoveNode(0); err != nil {
		t.Fatal(err)
	}
	if g2.Components() != 0 {
		t.Fatalf("empty live graph has %d components", g2.Components())
	}
	checkComponents(t, g2)
}

// TestComponentsUnderRandomChurn is the long differential: a random
// mutation stream over a graph that is allowed to shatter arbitrarily,
// with the incremental labelling checked against a scratch recompute
// after every mutation.
func TestComponentsUnderRandomChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g, err := GnpAny(24, 0.08, rng)
	if err != nil {
		t.Fatal(err)
	}
	type edge struct{ u, v NodeID }
	var removed []edge
	for i := 0; i < 600; i++ {
		switch rng.Intn(4) {
		case 0: // remove a random live edge — splits allowed
			es := g.Edges()
			if len(es) == 0 {
				continue
			}
			e := es[rng.Intn(len(es))]
			if _, err := g.RemoveEdge(e.U, e.V); err != nil {
				t.Fatal(err)
			}
			removed = append(removed, edge{e.U, e.V})
		case 1: // re-add a removed edge or a fresh random one
			if len(removed) > 0 && rng.Intn(2) == 0 {
				k := rng.Intn(len(removed))
				e := removed[k]
				removed = append(removed[:k], removed[k+1:]...)
				if g.Alive(e.u) && g.Alive(e.v) && !g.HasEdge(e.u, e.v) {
					if _, err := g.AddEdge(e.u, e.v); err != nil {
						t.Fatal(err)
					}
				}
			} else {
				u := NodeID(rng.Intn(g.N()))
				v := NodeID(rng.Intn(g.N()))
				if u != v && g.Alive(u) && g.Alive(v) && !g.HasEdge(u, v) {
					if _, err := g.AddEdge(u, v); err != nil {
						t.Fatal(err)
					}
				}
			}
		case 2: // crash a random node — islands allowed
			if g.NAlive() > 1 {
				v := NodeID(rng.Intn(g.N()))
				if g.Alive(v) {
					if _, err := g.RemoveNode(v); err != nil {
						t.Fatal(err)
					}
				}
			}
		case 3: // revive
			if g.NAlive() < g.N() {
				g.AddNode()
			}
		}
		checkComponents(t, g)
	}
}

// TestGnpAny checks the no-rejection G(n,p) draw: seed-deterministic,
// same edge stream as Gnp, and disconnected draws pass through.
func TestGnpAny(t *testing.T) {
	// A draw sparse enough that Gnp rejects must come back from GnpAny.
	g, err := GnpAny(64, 0.001, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if g.Connected() {
		t.Skip("unexpectedly connected sparse draw; seed drift")
	}
	if g.Components() < 2 {
		t.Fatalf("disconnected draw reports %d components", g.Components())
	}
	// Same seed and p as a Gnp draw ⇒ identical edge set.
	ga, err := GnpAny(64, 0.2, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	gb, err := Gnp(64, 0.2, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := ga.Edges(), gb.Edges()
	if len(ea) != len(eb) {
		t.Fatalf("edge streams diverge: %d vs %d edges", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, ea[i], eb[i])
		}
	}
	// Named arm round-trips and rejects garbage.
	if _, err := Named("gnp-any:40:0.05:7"); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"gnp-any:10:1.5:1", "gnp-any:10:nan:1", "gnp-any:-3:0.5:1"} {
		if _, err := Named(bad); err == nil {
			t.Errorf("%s accepted", bad)
		}
	}
}

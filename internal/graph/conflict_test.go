package graph

import (
	"sort"
	"testing"
)

// bruteConflicts computes the reference answer with per-pair BFS
// distances.
func bruteConflicts(g *Graph, members []NodeID, radius int) [][]int32 {
	adj := make([][]int32, len(members))
	for i, a := range members {
		if !g.Alive(a) {
			continue
		}
		dist, _ := BFSFrom(g, a)
		for j, b := range members {
			if i == j || !g.Alive(b) {
				continue
			}
			if d := dist[b]; d >= 0 && d <= radius {
				adj[i] = append(adj[i], int32(j))
			}
		}
	}
	return adj
}

func assertSameAdjacency(t *testing.T, got, want [][]int32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("length %d vs %d", len(got), len(want))
	}
	for i := range got {
		a := append([]int32(nil), got[i]...)
		b := append([]int32(nil), want[i]...)
		sort.Slice(a, func(x, y int) bool { return a[x] < a[y] })
		sort.Slice(b, func(x, y int) bool { return b[x] < b[y] })
		if len(a) != len(b) {
			t.Fatalf("member %d: %v vs %v", i, a, b)
		}
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("member %d: %v vs %v", i, a, b)
			}
		}
	}
}

// TestConflictAdjacency checks the distance-bounded conflict graph
// against brute-force BFS distances on a ring, a grid, and a mutated
// graph with a dead node — including the symmetry the greedy wave
// coloring relies on.
func TestConflictAdjacency(t *testing.T) {
	for _, spec := range []string{"ring:12", "grid:5x5", "gnp:18:0.25:3"} {
		for _, radius := range []int{1, 2, 4} {
			g, err := Named(spec)
			if err != nil {
				t.Fatal(err)
			}
			// Every third node is a member — a frontier-like subset.
			var members []NodeID
			for v := 0; v < g.N(); v += 3 {
				members = append(members, NodeID(v))
			}
			got := ConflictAdjacency(g, members, radius)
			assertSameAdjacency(t, got, bruteConflicts(g, members, radius))
			for i := range got {
				for _, j := range got[i] {
					found := false
					for _, k := range got[j] {
						if int(k) == i {
							found = true
						}
					}
					if !found {
						t.Fatalf("%s r=%d: conflict %d->%d not symmetric", spec, radius, i, j)
					}
				}
			}
		}
	}
	// Dead members conflict with nobody.
	g, err := Named("grid:4x4")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.RemoveNode(5); err != nil {
		t.Fatal(err)
	}
	members := []NodeID{0, 5, 6}
	got := ConflictAdjacency(g, members, 2)
	if len(got[1]) != 0 {
		t.Fatalf("dead member has conflicts: %v", got[1])
	}
	assertSameAdjacency(t, got, bruteConflicts(g, members, 2))
}

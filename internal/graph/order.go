package graph

import "fmt"

// This file implements whole-graph node relabeling: ReorderNodes
// produces a copy of the graph under a node-id permutation, and
// BFSOrder computes the breadth-first relabeling the sharded parallel
// stepper uses so that contiguous id ranges are topologically close
// (cache-friendly shards with thin boundaries). Relabeling obeys the
// mutable-graph contract of delta.go: port order is preserved exactly
// (only the *names* in the adjacency lists change), None holes stay at
// their ports, dead nodes keep a slot, and the copy carries the
// original's version and liveness epochs.

// ReorderNodes returns a copy of g whose node ids are relabeled by
// order: order[new] = old, a permutation of 0..N()-1 covering every
// slot, dead or alive. The second result is the inverse map
// (inv[old] = new) for translating roots and per-node protocol state.
// Each node's port numbering is untouched — Neighbors(new)[p] names
// the same physical edge (or the same hole) as Neighbors(old)[p] did —
// so a protocol rebuilt on the copy sees an isomorphic network with an
// identical ψ-ordering.
func (g *Graph) ReorderNodes(order []NodeID) (*Graph, []NodeID, error) {
	n := g.N()
	if len(order) != n {
		return nil, nil, fmt.Errorf("graph: reorder-nodes wants %d ids, got %d", n, len(order))
	}
	inv := make([]NodeID, n)
	for i := range inv {
		inv[i] = None
	}
	for newID, oldID := range order {
		if oldID < 0 || int(oldID) >= n {
			return nil, nil, &NodeRangeError{Node: oldID, N: n}
		}
		if inv[oldID] != None {
			return nil, nil, fmt.Errorf("graph: reorder-nodes order repeats node %d", oldID)
		}
		inv[oldID] = NodeID(newID)
	}
	ng := &Graph{
		adj:     make([][]NodeID, n),
		ports:   make([]map[NodeID]int, n),
		edges:   g.edges,
		deg:     make([]int, n),
		dead:    g.dead,
		version: g.version,
	}
	if g.alive != nil {
		ng.alive = make([]bool, n)
	}
	if g.liveEpoch != nil {
		ng.liveEpoch = make([]uint64, len(g.liveEpoch))
	}
	for newID, oldID := range order {
		old := g.adj[oldID]
		ng.adj[newID] = make([]NodeID, len(old))
		ng.ports[newID] = make(map[NodeID]int, len(old))
		for p, q := range old {
			if q == None {
				ng.adj[newID][p] = None
				continue
			}
			nq := inv[q]
			ng.adj[newID][p] = nq
			ng.ports[newID][nq] = p
		}
		ng.deg[newID] = g.deg[oldID]
		if g.alive != nil {
			ng.alive[newID] = g.alive[oldID]
		}
		if g.liveEpoch != nil && int(oldID) < len(g.liveEpoch) {
			ng.liveEpoch[newID] = g.liveEpoch[oldID]
		}
	}
	return ng, inv, nil
}

// BFSOrder returns a relabeling order for ReorderNodes that lists root
// first, then the rest of root's component in breadth-first discovery
// order (neighbours in port order), then any remaining slots — other
// components and dead nodes — in ascending old-id order. Under the
// resulting ids, nodes at similar BFS depth are numbered contiguously,
// which is what makes contiguous-range shards topologically thin.
func BFSOrder(g *Graph, root NodeID) ([]NodeID, error) {
	n := g.N()
	if root < 0 || int(root) >= n {
		return nil, &NodeRangeError{Node: root, N: n}
	}
	if !g.Alive(root) {
		return nil, fmt.Errorf("%w: node %d", ErrNodeDead, root)
	}
	order := make([]NodeID, 0, n)
	seen := make([]bool, n)
	order = append(order, root)
	seen[root] = true
	for head := 0; head < len(order); head++ {
		for _, q := range g.adj[order[head]] {
			if q == None || seen[q] || !g.Alive(q) {
				continue
			}
			seen[q] = true
			order = append(order, q)
		}
	}
	for v := 0; v < n; v++ {
		if !seen[v] {
			order = append(order, NodeID(v))
		}
	}
	return order, nil
}

package graph

// BFSFrom runs breadth-first search from root, visiting neighbours in
// port order. It returns the distance of every node from root (-1 if
// unreachable) and the BFS parent of every node (None for the root and
// unreachable nodes).
func BFSFrom(g *Graph, root NodeID) (dist []int, parent []NodeID) {
	n := g.N()
	dist = make([]int, n)
	parent = make([]NodeID, n)
	for i := range dist {
		dist[i] = -1
		parent[i] = None
	}
	dist[root] = 0
	queue := make([]NodeID, 0, n)
	queue = append(queue, root)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, q := range g.Neighbors(v) {
			if q != None && dist[q] < 0 {
				dist[q] = dist[v] + 1
				parent[q] = v
				queue = append(queue, q)
			}
		}
	}
	return dist, parent
}

// DFSPreorder runs the deterministic depth-first traversal from root,
// exploring neighbours in port order — the reference order the token
// circulation substrate realises. It returns the visit order and the
// DFS parent of every reached node.
func DFSPreorder(g *Graph, root NodeID) (order []NodeID, parent []NodeID) {
	n := g.N()
	parent = make([]NodeID, n)
	visited := make([]bool, n)
	for i := range parent {
		parent[i] = None
	}
	order = make([]NodeID, 0, n)

	// Iterative DFS keeping per-node next-port cursors, to stay
	// faithful to "first unvisited neighbour in port order".
	cursor := make([]int, n)
	stack := make([]NodeID, 0, n)
	visited[root] = true
	order = append(order, root)
	stack = append(stack, root)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		adv := false
		for cursor[v] < g.Ports(v) {
			q := g.Neighbor(v, cursor[v])
			cursor[v]++
			if q != None && !visited[q] {
				visited[q] = true
				parent[q] = v
				order = append(order, q)
				stack = append(stack, q)
				adv = true
				break
			}
		}
		if !adv {
			stack = stack[:len(stack)-1]
		}
	}
	return order, parent
}

// Eccentricity returns the maximum BFS distance from v to any node;
// the graph must be connected.
func Eccentricity(g *Graph, v NodeID) int {
	dist, _ := BFSFrom(g, v)
	ecc := 0
	for _, d := range dist {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter returns the graph diameter (max eccentricity); the graph
// must be connected. O(n·m).
func Diameter(g *Graph) int {
	d := 0
	for v := 0; v < g.N(); v++ {
		if e := Eccentricity(g, NodeID(v)); e > d {
			d = e
		}
	}
	return d
}

// IsTree reports whether g is a tree (connected with n-1 edges).
func IsTree(g *Graph) bool {
	return g.N() > 0 && g.M() == g.N()-1 && g.Connected()
}

// TreeHeight returns the height of the tree described by the parent
// vector rooted at root: the maximum number of edges on a root-to-node
// path. It returns -1 if the parent vector does not describe a tree
// spanning all nodes (cycle, unreachable node, or wrong root).
func TreeHeight(parent []NodeID, root NodeID) int {
	n := len(parent)
	depth := make([]int, n)
	for i := range depth {
		depth[i] = -1
	}
	if root < 0 || int(root) >= n || parent[root] != None {
		return -1
	}
	depth[root] = 0
	h := 0
	for v := 0; v < n; v++ {
		if depth[v] >= 0 {
			continue
		}
		// Walk up to a known-depth ancestor, guarding against cycles.
		path := []NodeID{}
		u := NodeID(v)
		for depth[u] < 0 {
			path = append(path, u)
			u = parent[u]
			if u == None || len(path) > n {
				return -1
			}
		}
		d := depth[u]
		for i := len(path) - 1; i >= 0; i-- {
			d++
			depth[path[i]] = d
			if d > h {
				h = d
			}
		}
	}
	return h
}

// ChildrenOf inverts a parent vector into per-node child lists; each
// child list is ordered by the parent's port order so that "descendants
// in local order" is well defined.
func ChildrenOf(g *Graph, parent []NodeID) [][]NodeID {
	children := make([][]NodeID, g.N())
	for v := 0; v < g.N(); v++ {
		for _, q := range g.Neighbors(NodeID(v)) {
			if q != None && parent[q] == NodeID(v) {
				children[v] = append(children[v], q)
			}
		}
	}
	return children
}

// SpanningParent reports whether parent describes a spanning tree of g
// rooted at root: every non-root has a parent that is a neighbour, the
// root has none, and every node reaches the root.
func SpanningParent(g *Graph, parent []NodeID, root NodeID) bool {
	if len(parent) != g.N() {
		return false
	}
	if parent[root] != None {
		return false
	}
	for v := 0; v < g.N(); v++ {
		if NodeID(v) == root {
			continue
		}
		p := parent[v]
		if p == None || !g.HasEdge(NodeID(v), p) {
			return false
		}
	}
	return TreeHeight(parent, root) >= 0
}

package graph

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzNamed drives the spec parser with arbitrary input: it must never
// panic, never allocate past the parser caps, and every graph it does
// return must satisfy the structural invariants (symmetric edges,
// consistent port maps, degree bookkeeping). The seed corpus under
// testdata/fuzz/FuzzNamed covers every topology family.
func FuzzNamed(f *testing.F) {
	for _, spec := range []string{
		"ring:8", "path:5", "star:6", "clique:5", "wheel:6", "grid:3x4",
		"torus:3x3", "cube:3", "tree:7:2", "caterpillar:3:2", "lollipop:4:3",
		"random:9:4:7", "rtree:9:7", "circulant:8:3", "gnp:12:0.4:3",
		"gnp-any:12:0.08:3", "gnp-any:16:0:1", "gnp-any:24:0.05:9",
		"barabasi:12:2:3", "paper-token", "paper-tree", "paper-chordal",
		"ring:-1", "grid:99999999x99999999", "gnp:10:nan:1",
		"gnp-any:10:nan:1", "bogus:1",
	} {
		f.Add(spec)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		if len(spec) > 64 {
			return // CLI specs are short; bound parse work, not safety
		}
		g, err := Named(spec)
		if err != nil {
			if g != nil {
				t.Fatal("error with non-nil graph")
			}
			return
		}
		if g.N() > maxSpecNodes || g.M() > maxSpecEdges {
			t.Fatalf("spec %q escaped the size caps: %s", spec, g)
		}
		checkGraphInvariants(t, g)
	})
}

// checkGraphInvariants validates the structural contract of a Graph.
func checkGraphInvariants(t *testing.T, g *Graph) {
	t.Helper()
	m := 0
	for v := 0; v < g.N(); v++ {
		id := NodeID(v)
		live := 0
		for p, q := range g.Neighbors(id) {
			if q == None {
				continue
			}
			live++
			if q < 0 || int(q) >= g.N() {
				t.Fatalf("neighbour %d of %d out of range", q, v)
			}
			if got, ok := g.PortOf(id, q); !ok || got != p {
				t.Fatalf("port map desync at %d->%d", v, q)
			}
			if !g.HasEdge(q, id) {
				t.Fatalf("asymmetric edge {%d,%d}", v, q)
			}
		}
		if live != g.Degree(id) {
			t.Fatalf("degree(%d)=%d but %d live ports", v, g.Degree(id), live)
		}
		m += live
	}
	if m/2 != g.M() {
		t.Fatalf("M()=%d but counted %d", g.M(), m/2)
	}
	checkComponents(t, g)
}

// seedCorpusSpecs reads the string seeds from the committed corpus
// under testdata/fuzz/FuzzNamed.
func seedCorpusSpecs(t *testing.T) []string {
	t.Helper()
	files, err := os.ReadDir(filepath.Join("testdata", "fuzz", "FuzzNamed"))
	if err != nil {
		t.Fatalf("seed corpus missing: %v", err)
	}
	var specs []string
	for _, fe := range files {
		data, err := os.ReadFile(filepath.Join("testdata", "fuzz", "FuzzNamed", fe.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if rest, ok := strings.CutPrefix(line, `string("`); ok {
				if spec, ok := strings.CutSuffix(rest, `")`); ok {
					specs = append(specs, spec)
				}
			}
		}
	}
	return specs
}

// TestNamedSeedCorpusCoversFamilies keeps the committed corpus honest:
// every family keyword must appear in at least one seed file (so the
// 2-second CI fuzz smoke exercises every parse arm from its first
// iteration), and every seed must either parse cleanly or be rejected
// without panicking.
func TestNamedSeedCorpusCoversFamilies(t *testing.T) {
	entries := seedCorpusSpecs(t)
	joined := strings.Join(entries, "\n")
	for _, family := range []string{
		"ring:", "path:", "star:", "clique:", "wheel:", "grid:", "torus:",
		"cube:", "tree:", "caterpillar:", "lollipop:", "random:", "rtree:",
		"circulant:", "gnp:", "gnp-any:", "barabasi:", "paper-token",
		"paper-tree", "paper-chordal",
	} {
		if !strings.Contains(joined, family) {
			t.Errorf("seed corpus misses family %q", family)
		}
	}
	for _, spec := range entries {
		if g, err := Named(spec); err == nil {
			checkGraphInvariants(t, g)
		}
	}
}

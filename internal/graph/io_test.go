package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestEdgeListRoundTrip(t *testing.T) {
	g := Grid(3, 3)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ParseEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round trip changed size: %s vs %s", g, g2)
	}
	for _, e := range g.Edges() {
		if !g2.HasEdge(e.U, e.V) {
			t.Errorf("edge {%d,%d} lost", e.U, e.V)
		}
	}
}

func TestParseEdgeListComments(t *testing.T) {
	in := "# a comment\n4\n\n0 1\n# another\n1 2\n2 3\n"
	g, err := ParseEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 3 {
		t.Fatalf("got %s, want n=4 m=3", g)
	}
}

func TestParseEdgeListErrors(t *testing.T) {
	cases := []string{
		"",              // empty
		"x\n",           // bad count
		"3\n0\n",        // bad edge arity
		"3\n0 a\n",      // bad edge value
		"3\n0 0\n",      // self-loop
		"2\n0 1\n0 1\n", // duplicate
		"2\n0 5\n",      // out of range
	}
	for _, in := range cases {
		if _, err := ParseEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	g := Path(3)
	var buf bytes.Buffer
	err := WriteDOT(&buf, g, DOTOptions{
		Name:      "P3",
		NodeLabel: func(v NodeID) string { return "n" },
		EdgeLabel: func(u, v NodeID) string { return "e" },
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"graph P3 {", `0 [label="n"]`, `0 -- 1 [label="e"]`, "}"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := WriteDOT(&buf, g, DOTOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "graph G {") {
		t.Error("default DOT name missing")
	}
}

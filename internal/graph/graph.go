// Package graph provides the network substrate for the orientation
// protocols: undirected connected graphs with *ordered* adjacency lists.
//
// The order of a node's adjacency list defines its local port numbering
// (the ψ-ordering of the paper, §2.2); protocols that traverse neighbours
// "in local order" depend on it, so the order is part of the graph's
// identity and is preserved by all operations.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// NodeID identifies a processor. Valid IDs are 0..N()-1.
type NodeID int

// None is the sentinel "no node" value used for absent parents and
// unset pointers.
const None NodeID = -1

// Graph is an undirected graph with ordered adjacency lists. The zero
// value is an empty graph; use a Builder or a generator to create one.
//
// A freshly built Graph is safe for concurrent readers. Graphs can
// also be mutated in place after construction — AddEdge, RemoveEdge,
// AddNode, RemoveNode in delta.go — under the mutable-graph contract
// documented there: removed edges leave None holes in the adjacency
// lists so surviving ports keep their numbers, and removed nodes keep
// their slot (dead) so NodeIDs stay stable. Mutation is not safe
// concurrently with readers.
type Graph struct {
	adj   [][]NodeID
	ports []map[NodeID]int
	edges int

	deg       []int    // live degree per node (holes excluded)
	alive     []bool   // nil ⇒ every node alive
	dead      int      // number of dead nodes
	version   uint64   // monotone topology version
	liveEpoch []uint64 // nil ⇒ no liveness flip ever; per-node flip counter

	// Incremental connected-component tracking (components.go). comp is
	// nil until the first query or mutation initialises it; from then on
	// it is maintained across every mutation.
	comp     []int32 // component label per node; -1 for dead nodes
	compSize []int   // live size per label (stale entries for freed labels)
	compFree []int32 // freed labels available for reuse
	ncomp    int     // number of live components
	compVer  uint64  // bumped whenever labels change beyond the touched set

	// Scratch for the bounded split search (components.go).
	stampA, stampB []uint32
	stampEpoch     uint32
	queueA, queueB []NodeID
}

// Builder accumulates edges for a Graph.
type Builder struct {
	n   int
	adj [][]NodeID
	set []map[NodeID]bool
}

// Errors reported by Builder and parsers.
var (
	ErrSelfLoop      = errors.New("graph: self-loop")
	ErrDuplicateEdge = errors.New("graph: duplicate edge")
	ErrNotConnected  = errors.New("graph: not connected")
)

// NodeRangeError reports a node id outside 0..N-1.
type NodeRangeError struct {
	Node NodeID
	N    int
}

func (e *NodeRangeError) Error() string {
	return fmt.Sprintf("graph: node %d out of range [0,%d)", e.Node, e.N)
}

// NewBuilder returns a builder for a graph on n nodes (ids 0..n-1).
func NewBuilder(n int) *Builder {
	return &Builder{
		n:   n,
		adj: make([][]NodeID, n),
		set: make([]map[NodeID]bool, n),
	}
}

// AddEdge appends the undirected edge {u,v}. The edge becomes port
// len(adj[u]) at u and port len(adj[v]) at v, so insertion order defines
// the local ψ-ordering at both endpoints.
func (b *Builder) AddEdge(u, v NodeID) error {
	for _, x := range []NodeID{u, v} {
		if x < 0 || int(x) >= b.n {
			return &NodeRangeError{Node: x, N: b.n}
		}
	}
	if u == v {
		return fmt.Errorf("%w at node %d", ErrSelfLoop, u)
	}
	if b.set[u] != nil && b.set[u][v] {
		return fmt.Errorf("%w {%d,%d}", ErrDuplicateEdge, u, v)
	}
	if b.set[u] == nil {
		b.set[u] = make(map[NodeID]bool)
	}
	if b.set[v] == nil {
		b.set[v] = make(map[NodeID]bool)
	}
	b.set[u][v] = true
	b.set[v][u] = true
	b.adj[u] = append(b.adj[u], v)
	b.adj[v] = append(b.adj[v], u)
	return nil
}

// MustAddEdge is AddEdge for statically-known-good edges in generators
// and tests; it panics on error.
func (b *Builder) MustAddEdge(u, v NodeID) {
	if err := b.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// HasEdge reports whether {u,v} has been added.
func (b *Builder) HasEdge(u, v NodeID) bool {
	if u < 0 || int(u) >= b.n {
		return false
	}
	return b.set[u] != nil && b.set[u][v]
}

// Build finalises the graph. It does not require connectivity; call
// BuildConnected when the protocols demand a connected network.
func (b *Builder) Build() *Graph {
	g := &Graph{
		adj:   make([][]NodeID, b.n),
		ports: make([]map[NodeID]int, b.n),
		deg:   make([]int, b.n),
	}
	for v := range b.adj {
		g.adj[v] = make([]NodeID, len(b.adj[v]))
		copy(g.adj[v], b.adj[v])
		g.ports[v] = make(map[NodeID]int, len(b.adj[v]))
		for i, q := range b.adj[v] {
			g.ports[v][q] = i
		}
		g.deg[v] = len(b.adj[v])
		g.edges += len(b.adj[v])
	}
	g.edges /= 2
	return g
}

// BuildConnected is Build plus a connectivity check.
func (b *Builder) BuildConnected() (*Graph, error) {
	g := b.Build()
	if !g.Connected() {
		return nil, ErrNotConnected
	}
	return g, nil
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.edges }

// Degree returns the number of live edges incident on v (Δ_v in the
// paper). On a mutated graph this may be smaller than Ports(v), the
// size of v's port space.
func (g *Graph) Degree(v NodeID) int { return g.deg[v] }

// MaxDegree returns Δ, the maximum live degree over all nodes.
func (g *Graph) MaxDegree() int {
	d := 0
	for v := range g.adj {
		if g.deg[v] > d {
			d = g.deg[v]
		}
	}
	return d
}

// Neighbors returns v's adjacency list in port order. The returned slice
// is shared with the graph and must not be modified; use NeighborsCopy
// for a private copy. On a mutated graph entries may be None (the holes
// removed edges leave behind); iteration must skip them.
func (g *Graph) Neighbors(v NodeID) []NodeID { return g.adj[v] }

// NeighborsCopy returns a private copy of v's adjacency list.
func (g *Graph) NeighborsCopy(v NodeID) []NodeID {
	out := make([]NodeID, len(g.adj[v]))
	copy(out, g.adj[v])
	return out
}

// Neighbor returns the neighbour of v on the given port, or None when
// the port is a hole left by a removed edge.
func (g *Graph) Neighbor(v NodeID, port int) NodeID { return g.adj[v][port] }

// PortOf returns the port number of q at v, i.e. the index of q in v's
// adjacency list, and whether the edge {v,q} exists.
func (g *Graph) PortOf(v, q NodeID) (int, bool) {
	p, ok := g.ports[v][q]
	return p, ok
}

// HasEdge reports whether {u,v} is an edge.
func (g *Graph) HasEdge(u, v NodeID) bool {
	_, ok := g.ports[u][v]
	return ok
}

// Edge is an undirected edge with U < V.
type Edge struct {
	U, V NodeID
}

// Edges returns every edge exactly once, sorted by (U,V).
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.edges)
	for u := range g.adj {
		for _, v := range g.adj[u] {
			if v != None && NodeID(u) < v {
				out = append(out, Edge{U: NodeID(u), V: v})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// Connected reports whether the live subgraph is connected (vacuously
// true when no node is alive). Dead nodes are ignored.
func (g *Graph) Connected() bool {
	start := NodeID(-1)
	for v := 0; v < g.N(); v++ {
		if g.Alive(NodeID(v)) {
			start = NodeID(v)
			break
		}
	}
	if start < 0 {
		return true
	}
	dist, _ := BFSFrom(g, start)
	for v, d := range dist {
		if d < 0 && g.Alive(NodeID(v)) {
			return false
		}
	}
	return true
}

// Reorder returns a copy of g in which every node's adjacency list is
// permuted by perm[v], a permutation of 0..Ports(v)-1 mapping new port
// index to old port index — the *port space*, not the live degree: on a
// mutated graph the permutation covers the None holes removed edges
// left behind, and each hole travels to its new port so port-indexed
// protocol state stays bound to the right (absent) edge. Dead nodes
// keep their slot, their (empty) port space and their liveness epoch.
// The copy carries the original's topology version and per-node
// liveness epochs, so version-keyed caches treat it as the same
// mutation history. It is used by the ψ-ordering ablation (T8).
func (g *Graph) Reorder(perm [][]int) (*Graph, error) {
	if len(perm) != g.N() {
		return nil, fmt.Errorf("graph: reorder wants %d permutations, got %d", g.N(), len(perm))
	}
	ng := &Graph{
		adj:     make([][]NodeID, g.N()),
		ports:   make([]map[NodeID]int, g.N()),
		edges:   g.edges,
		deg:     make([]int, g.N()),
		dead:    g.dead,
		version: g.version,
	}
	if g.alive != nil {
		ng.alive = make([]bool, len(g.alive))
		copy(ng.alive, g.alive)
	}
	if g.liveEpoch != nil {
		ng.liveEpoch = make([]uint64, len(g.liveEpoch))
		copy(ng.liveEpoch, g.liveEpoch)
	}
	for v := range g.adj {
		if len(perm[v]) != len(g.adj[v]) {
			return nil, fmt.Errorf("graph: node %d permutation length %d != degree %d", v, len(perm[v]), len(g.adj[v]))
		}
		seen := make([]bool, len(perm[v]))
		ng.adj[v] = make([]NodeID, len(g.adj[v]))
		ng.ports[v] = make(map[NodeID]int, len(g.adj[v]))
		for newPort, oldPort := range perm[v] {
			if oldPort < 0 || oldPort >= len(g.adj[v]) || seen[oldPort] {
				return nil, fmt.Errorf("graph: node %d permutation is not a permutation", v)
			}
			seen[oldPort] = true
			q := g.adj[v][oldPort]
			ng.adj[v][newPort] = q
			if q != None {
				ng.ports[v][q] = newPort
				ng.deg[v]++
			}
		}
	}
	return ng, nil
}

// String returns a compact human-readable description.
func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d, m=%d, Δ=%d)", g.N(), g.M(), g.MaxDegree())
}

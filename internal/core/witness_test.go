package core

import (
	"math/rand"
	"testing"

	"netorient/internal/daemon"
	"netorient/internal/graph"
	"netorient/internal/program"
	"netorient/internal/sod"
	"netorient/internal/spantree"
	"netorient/internal/token"
)

// TestOrientationWitnessesMatchLegitimate audits both orientation
// layers' incremental legitimacy witnesses against their O(n)
// predicates, over every substrate combination: from random
// configurations of the full stack, armed executions must report the
// identical verdict after every step.
func TestOrientationWitnessesMatchLegitimate(t *testing.T) {
	t.Parallel()
	graphs := map[string]*graph.Graph{
		"ring6":   graph.Ring(6),
		"grid3x3": graph.Grid(3, 3),
		"paper":   graph.PaperTokenExample(),
	}
	stacks := map[string]func(g *graph.Graph) (program.Protocol, error){
		"dftno/dftc": func(g *graph.Graph) (program.Protocol, error) {
			sub, err := token.NewCirculator(g, 0)
			if err != nil {
				return nil, err
			}
			return NewDFTNO(g, sub, 0)
		},
		"dftno/oracle": func(g *graph.Graph) (program.Protocol, error) {
			sub, err := token.NewOracle(g, 0)
			if err != nil {
				return nil, err
			}
			return NewDFTNO(g, sub, 0)
		},
		"stno/bfstree": func(g *graph.Graph) (program.Protocol, error) {
			sub, err := spantree.NewBFSTree(g, 0)
			if err != nil {
				return nil, err
			}
			return NewSTNO(g, sub, 0)
		},
		"stno/dfstree": func(g *graph.Graph) (program.Protocol, error) {
			sub, err := spantree.NewDFSTree(g, 0)
			if err != nil {
				return nil, err
			}
			return NewSTNO(g, sub, 0)
		},
		"stno/oracle": func(g *graph.Graph) (program.Protocol, error) {
			sub, err := spantree.NewBFSOracle(g, 0)
			if err != nil {
				return nil, err
			}
			return NewSTNO(g, sub, 0)
		},
	}
	configs, steps := 8, 500
	if testing.Short() {
		configs, steps = 3, 150
	}
	for gname, g := range graphs {
		for sname, build := range stacks {
			g, build := g, build
			t.Run(gname+"/"+sname, func(t *testing.T) {
				t.Parallel()
				p, err := build(g)
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(41))
				if err := program.CheckWitness(p, configs, steps, func() program.Daemon { return daemon.NewCentral(41) }, rng); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// recordedCycle reconstructs the pre-invariant legitimacy reference:
// the snapshot→Max-vector map over one full legitimate circulation
// cycle, recorded exactly as the deleted DFTNO recording phase did —
// by driving the substrate's sole enabled move until the composed
// configuration repeats.
// soleLegitimateMove returns the unique enabled move of a legitimate
// composed configuration (the circulation is deterministic there).
func soleLegitimateMove(t *testing.T, d *DFTNO) program.Move {
	t.Helper()
	g := d.Graph()
	var found program.Move
	count := 0
	var buf []program.ActionID
	for v := 0; v < g.N(); v++ {
		buf = d.Enabled(graph.NodeID(v), buf[:0])
		for _, a := range buf {
			found = program.Move{Node: graph.NodeID(v), Action: a}
			count++
		}
	}
	if count != 1 {
		t.Fatalf("legitimate configuration has %d enabled moves, want 1", count)
	}
	return found
}

func recordedCycle(t *testing.T, d *DFTNO) map[string][]int {
	t.Helper()
	g := d.Graph()
	soleMove := func() program.Move { return soleLegitimateMove(t, d) }
	sub := d.Substrate()
	// Phase 1 (as the deleted recording did): drive until a substrate
	// configuration repeats — the entry of the steady cycle. The fresh
	// constructor state is one settling round away from it (par/lev
	// pointers only take their steady values once the token has
	// visited everyone).
	seen := make(map[string]bool)
	for i := 0; ; i++ {
		if i > 3*(40*(g.N()+g.M())+40) {
			t.Fatal("no steady cycle entry within the recording budget")
		}
		key := string(sub.Snapshot())
		if seen[key] {
			break
		}
		seen[key] = true
		mv := soleMove()
		if !d.Execute(mv.Node, mv.Action) {
			t.Fatal("settling move refused to fire")
		}
	}
	// Phase 2: record the Max vector at every cycle configuration.
	cycle := make(map[string][]int)
	start := string(sub.Snapshot())
	for i := 0; ; i++ {
		if i > 40*(g.N()+g.M())+40 {
			t.Fatal("no cycle within the recording budget")
		}
		mx := make([]int, g.N())
		for v := 0; v < g.N(); v++ {
			mx[v] = d.MaxOf(graph.NodeID(v))
		}
		cycle[string(sub.Snapshot())] = mx
		mv := soleMove()
		if !d.Execute(mv.Node, mv.Action) {
			t.Fatal("recorded move refused to fire")
		}
		if string(sub.Snapshot()) == start {
			return cycle
		}
	}
}

// oldLegitimate is the pre-invariant predicate, verbatim: substrate
// legitimate, names equal the reference naming, the substrate snapshot
// on the recorded cycle with the recorded Max vector, labels valid.
func oldLegitimate(d *DFTNO, cycle map[string][]int) bool {
	if !d.sub.Legitimate() {
		return false
	}
	for v := 0; v < d.g.N(); v++ {
		if d.eta[v] != d.refNames[v] {
			return false
		}
	}
	wantMax, ok := cycle[string(d.sub.Snapshot())]
	if !ok {
		return false
	}
	for v := 0; v < d.g.N(); v++ {
		if d.max[v] != wantMax[v] {
			return false
		}
		if d.invalidEdgeLabel(graph.NodeID(v)) {
			return false
		}
	}
	return true
}

// TestDFTNOLegitimacyMatchesRecordedCycle is the differential proof
// that the recomputable cycle invariant decides the predicate the
// O(n²)-byte recorded-cycle map used to, up to dead state: over the
// entire reachable configuration space from randomized seeds (the same
// exploration the model checker performs),
//
//  1. every recorded-cycle-legitimate configuration satisfies the
//     invariant (no legitimate configuration was lost), and
//  2. every configuration the invariant accepts but the map rejected
//     differs from the recorded orbit only in dead variables — the
//     par/lev leftovers of unvisited (or between-rounds) processors,
//     which the next round overwrites without ever reading. Witness:
//     the deterministic execution from such a configuration stays
//     invariant-legitimate at every step and lands exactly on the
//     recorded orbit within one circulation round.
//
// The map pinned those dead variables because it compared whole
// snapshots; the invariant deliberately quotients them away, exactly
// as the substrate's own Legitimate() does between rounds. Closure and
// convergence of the (slightly larger) legitimate set are machine-
// verified exhaustively by TestDFTNOModelCheck.
func TestDFTNOLegitimacyMatchesRecordedCycle(t *testing.T) {
	t.Parallel()
	graphs := map[string]*graph.Graph{
		"path3":    graph.Path(3),
		"triangle": graph.Complete(3),
		"ring4":    graph.Ring(4),
	}
	maxStates := 250000
	seedCount := 20
	if testing.Short() {
		delete(graphs, "ring4")
		maxStates = 60000
		seedCount = 8
	}
	for name, g := range graphs {
		g := g
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			sub, err := token.NewCirculator(g, 0)
			if err != nil {
				t.Fatal(err)
			}
			d, err := NewDFTNO(g, sub, 0)
			if err != nil {
				t.Fatal(err)
			}
			cycle := recordedCycle(t, d)

			rng := rand.New(rand.NewSource(13))
			seen := make(map[string]bool)
			var queue [][]byte
			push := func(snap []byte) {
				key := string(snap)
				if !seen[key] {
					seen[key] = true
					queue = append(queue, snap)
				}
			}
			push(d.Snapshot())
			for i := 0; i < seedCount; i++ {
				d.Randomize(rng)
				push(d.Snapshot())
			}
			var buf []program.ActionID
			checked, widened := 0, 0
			roundBudget := 2*len(cycle) + 2
			for len(queue) > 0 && checked < maxStates {
				snap := queue[len(queue)-1]
				queue = queue[:len(queue)-1]
				if err := d.Restore(snap); err != nil {
					t.Fatal(err)
				}
				inv, rec := d.Legitimate(), oldLegitimate(d, cycle)
				if rec && !inv {
					t.Fatal("invariant rejects a recorded-cycle-legitimate configuration")
				}
				if inv && !rec {
					// Dead-state check: the run must stay legitimate
					// and join the recorded orbit within one round.
					widened++
					joined := false
					for i := 0; i < roundBudget; i++ {
						mv := soleLegitimateMove(t, d)
						if !d.Execute(mv.Node, mv.Action) {
							t.Fatal("legitimate move refused to fire")
						}
						if !d.Legitimate() {
							t.Fatal("invariant-legitimate configuration escaped the legitimate set")
						}
						if oldLegitimate(d, cycle) {
							joined = true
							break
						}
					}
					if !joined {
						t.Fatalf("invariant-legitimate configuration did not join the recorded orbit within %d moves", roundBudget)
					}
					if err := d.Restore(snap); err != nil {
						t.Fatal(err)
					}
				}
				checked++
				var moves []program.Move
				for v := 0; v < g.N(); v++ {
					buf = d.Enabled(graph.NodeID(v), buf[:0])
					for _, a := range buf {
						moves = append(moves, program.Move{Node: graph.NodeID(v), Action: a})
					}
				}
				for _, mv := range moves {
					if err := d.Restore(snap); err != nil {
						t.Fatal(err)
					}
					if !d.Execute(mv.Node, mv.Action) {
						t.Fatalf("enabled move (%d,%d) refused", mv.Node, mv.Action)
					}
					push(d.Snapshot())
				}
			}
			t.Logf("%s: %d states compared, %d on the dead-state quotient (frontier %d unexplored)", name, checked, widened, len(queue))
		})
	}
}

// TestDFTNOPositionInvariantTracksIdealCycle drives the composed
// system deterministically through several full rounds and asserts
// the invariant holds at every configuration of the ideal cycle —
// the closure half of the invariant's correctness, config by config.
func TestDFTNOPositionInvariantTracksIdealCycle(t *testing.T) {
	t.Parallel()
	for name, g := range map[string]*graph.Graph{
		"grid3x3":  graph.Grid(3, 3),
		"lollipop": graph.Lollipop(4, 4),
		"wheel7":   graph.Wheel(7),
	} {
		g := g
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			sub, err := token.NewCirculator(g, 0)
			if err != nil {
				t.Fatal(err)
			}
			d, err := NewDFTNO(g, sub, 0)
			if err != nil {
				t.Fatal(err)
			}
			sys := program.NewSystem(d, daemon.NewDeterministic())
			for i := 0; i < 6*(2*g.N()+2); i++ {
				if !d.Legitimate() {
					t.Fatalf("invariant broken at step %d of the ideal cycle", i)
				}
				if _, err := sys.Step(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestSTNOWitnessZeroAllocGuards pins the nameInvalid scratch reuse:
// evaluating every guard of a stabilized STNO allocates nothing.
func TestSTNOWitnessZeroAllocGuards(t *testing.T) {
	g := graph.Grid(4, 4)
	sub, err := spantree.NewBFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSTNO(g, sub, 0)
	if err != nil {
		t.Fatal(err)
	}
	sys := program.NewSystem(s, daemon.NewCentral(1))
	if res, err := sys.RunUntilLegitimate(int64(1000 * (g.N() + g.M()))); err != nil || !res.Converged {
		t.Fatalf("setup: %v %+v", err, res)
	}
	var buf []program.ActionID
	allocs := testing.AllocsPerRun(50, func() {
		for v := 0; v < g.N(); v++ {
			buf = s.Enabled(graph.NodeID(v), buf[:0])
		}
	})
	if allocs != 0 {
		t.Errorf("full guard sweep allocates %.1f times, want 0", allocs)
	}
}

// TestDFTNOConstructionIsSnapshotFree pins the constructor rewrite:
// building the stack on a large graph must not materialise recorded
// snapshots (the deleted map cost O(n²) bytes — ~1.4 GB transient on
// this 64×64 grid), and the result must start legitimate with the
// DFS-preorder naming.
func TestDFTNOConstructionIsSnapshotFree(t *testing.T) {
	if testing.Short() {
		t.Skip("large-graph construction skipped in short mode")
	}
	t.Parallel()
	g := graph.Grid(64, 64)
	sub, err := token.NewCirculator(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDFTNO(g, sub, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Legitimate() {
		t.Fatal("freshly constructed 64×64 DFTNO not legitimate")
	}
	order, _ := graph.DFSPreorder(g, 0)
	names := d.ReferenceNames()
	for idx, v := range order {
		if names[v] != idx {
			t.Fatalf("node %d named %d, want preorder index %d", v, names[v], idx)
		}
	}
	// Spot-check SP2 on a few nodes instead of allocating a full
	// Labeling copy.
	for _, v := range []graph.NodeID{0, 63, 4095} {
		for port, q := range g.Neighbors(v) {
			if d.pi[v][port] != sod.ChordalLabel(d.eta[v], d.eta[q], d.modulus) {
				t.Fatalf("edge label at node %d port %d violates SP2", v, port)
			}
		}
	}
}

package core

import (
	"errors"
	"math/rand"
	"testing"

	"netorient/internal/check"
	"netorient/internal/graph"
	"netorient/internal/token"
)

// TestDFTNOEdgeLabelNeedsStrongFairness pins down a reproduction
// finding the model checker surfaced (documented in DESIGN.md §4 and
// EXPERIMENTS.md): DFTNO's edge-labeling rule is guarded by
// ¬Forward ∧ ¬Backtrack, so a node can only fix its labels while it
// does NOT hold the token — yet the node moves every round anyway
// (its token actions), satisfying processor-level *weak* fairness.
// An adversarial weakly-fair daemon can therefore select the node
// only at token-holding moments and starve the edge-label move
// forever. Under *strong* fairness (a move enabled infinitely often
// eventually executes) — or any randomized daemon, with probability
// one — the starvation is impossible and DFTNO converges, which the
// exhaustive check confirms.
func TestDFTNOEdgeLabelNeedsStrongFairness(t *testing.T) {
	t.Parallel()
	g := graph.Path(3)
	sub, err := token.NewCirculator(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDFTNO(g, sub, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	seeds, err := check.RandomSeeds(d, 25, rng)
	if err != nil {
		t.Fatal(err)
	}

	// Under weak fairness the starvation schedule is admissible: the
	// checker must find the illegitimate fair cycle.
	_, err = check.Verify(d, check.Options{Seeds: seeds, MaxStates: 3_000_000, Fairness: check.WeakFair})
	var ce *check.ConvergenceError
	if !errors.As(err, &ce) || ce.Kind != "cycle" {
		t.Fatalf("weak fairness: got %v, want an illegitimate-cycle ConvergenceError", err)
	}

	// Under strong fairness DFTNO is self-stabilizing.
	if _, err := check.Verify(d, check.Options{Seeds: seeds, MaxStates: 3_000_000, Fairness: check.StrongFair}); err != nil {
		t.Fatalf("strong fairness: %v", err)
	}
}

package core

import (
	"netorient/internal/graph"
	"netorient/internal/program"
)

// This file implements program.Witness for both orientation layers.
// Each layer's legitimacy predicate is "substrate legitimate ∧ a
// per-node conjunction", so the witness is one
// program.ViolationCounter over the layer's own clauses, conjoined
// with the substrate's witness verdict (or its Legitimate()/Stable()
// when the substrate has no witness — the token Oracle's and tree
// Oracle's are O(1) anyway). Every clause reads at most as far as the
// layer's declared Influence sets, so the runner's dirty-set refreshes
// keep the counter exact; WitnessRefresh forwards each refresh to the
// substrate witness, which keeps the composed verdict exact too.

// Compile-time interface compliance.
var (
	_ program.Witness = (*DFTNO)(nil)
	_ program.Witness = (*STNO)(nil)
)

// dftnoViolates is DFTNO's per-node clause of Legitimate(). Dead nodes
// (topology churn) are outside the predicate; orphan nodes (refName
// −1, unreachable from the root) carry only the SP2 clause. Deltas
// that change reachability rebuild refNames and invalidate the
// counter, so the orphan classification is never stale here.
func (d *DFTNO) dftnoViolates(v graph.NodeID) bool {
	if !d.g.Alive(v) {
		return false
	}
	if d.refNames[v] < 0 {
		return d.invalidEdgeLabel(v)
	}
	return d.eta[v] != d.refNames[v] || !d.positionOK(v) || d.invalidEdgeLabel(v)
}

// WitnessReset implements program.Witness.
func (d *DFTNO) WitnessReset() {
	if d.subWit != nil {
		d.subWit.WitnessReset()
	}
	d.wit.Reset(d.g.N(), d.dftnoViolates)
}

// WitnessRefresh implements program.Witness.
func (d *DFTNO) WitnessRefresh(v graph.NodeID) {
	if !d.wit.Valid() {
		return
	}
	if d.subWit != nil {
		d.subWit.WitnessRefresh(v)
	}
	d.wit.Refresh(v, d.dftnoViolates(v))
}

// WitnessLegitimate implements program.Witness. ensureRef first: an
// IsRoot flip under a bound authority re-anchors the reference naming
// without touching any node, invalidating the counters.
func (d *DFTNO) WitnessLegitimate() bool {
	d.ensureRef()
	if !d.wit.Valid() {
		d.WitnessReset()
	}
	if !d.wit.Zero() {
		return false
	}
	if d.subWit != nil {
		return d.subWit.WitnessLegitimate()
	}
	return d.sub.Legitimate()
}

// stnoViolates is STNO's per-node clause of Legitimate(). Dead nodes
// (topology churn) are outside the predicate.
func (s *STNO) stnoViolates(v graph.NodeID) bool {
	if !s.g.Alive(v) {
		return false
	}
	return s.weight[v] != s.expectedWeight(v) || s.nameInvalid(v) || s.invalidEdgeLabel(v)
}

// WitnessReset implements program.Witness.
func (s *STNO) WitnessReset() {
	if s.subWit != nil {
		s.subWit.WitnessReset()
	}
	s.wit.Reset(s.g.N(), s.stnoViolates)
}

// WitnessRefresh implements program.Witness.
func (s *STNO) WitnessRefresh(v graph.NodeID) {
	if !s.wit.Valid() {
		return
	}
	if s.subWit != nil {
		s.subWit.WitnessRefresh(v)
	}
	s.wit.Refresh(v, s.stnoViolates(v))
}

// WitnessLegitimate implements program.Witness; ensureAuth as for
// DFTNO's ensureRef.
func (s *STNO) WitnessLegitimate() bool {
	s.ensureAuth()
	if !s.wit.Valid() {
		s.WitnessReset()
	}
	if !s.wit.Zero() {
		return false
	}
	if s.subWit != nil {
		return s.subWit.WitnessLegitimate()
	}
	return s.sub.Stable()
}

package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"

	"netorient/internal/graph"
	"netorient/internal/program"
	"netorient/internal/sod"
	"netorient/internal/token"
)

// TokenSubstrate is the contract DFTNO needs from its underlying
// depth-first token circulation protocol: the guarded-command
// behaviour, a legitimacy predicate, canonical snapshots, and the
// token-layer interface (parent pointers, token location, event
// hooks).
type TokenSubstrate interface {
	program.Protocol
	program.Legitimacy
	program.Snapshotter
	token.Substrate
}

// ActEdgeLabel is DFTNO's own action (Algorithm 3.1.1's third rule):
// with no token present and an inconsistent edge label, recompute
// every label π_p[l] := (η_p − η_q) mod N. Substrate actions keep
// their own IDs; this one is offset far above them.
const ActEdgeLabel program.ActionID = 1 << 20

// DFTNO is Algorithm 3.1.1: network orientation by depth-first token
// circulation. The composed protocol exposes the substrate's actions
// (whose Forward/Backtrack/round-start events atomically run the
// paper's Nodelabel and UpdateMax macros, mirroring the paper's macro
// expansion) plus the edge-labeling correction action.
//
// Per-node state beyond the substrate: η (name), Max (largest name the
// node is aware of) and π (one label per incident edge) — 2·⌈log₂N⌉ +
// Δ_p·⌈log₂N⌉ bits, the paper's O(Δ×log N).
type DFTNO struct {
	g       *graph.Graph
	sub     TokenSubstrate
	modulus int

	eta []int
	max []int
	pi  [][]int

	// refNames is the stable naming (DFS preorder in port order);
	// cycle maps each substrate configuration of the legitimate
	// circulation cycle to the Max vector the ideal execution holds
	// there. Together they decide the legitimacy predicate
	// L_NO = L_TC ∧ SP1 ∧ SP2 (§3.2).
	refNames []int
	cycle    map[string][]int
}

// Compile-time interface compliance.
var (
	_ program.Protocol    = (*DFTNO)(nil)
	_ program.Legitimacy  = (*DFTNO)(nil)
	_ program.Snapshotter = (*DFTNO)(nil)
	_ program.Randomizer  = (*DFTNO)(nil)
	_ program.SpaceMeter  = (*DFTNO)(nil)
	_ program.ActionNamer = (*DFTNO)(nil)
	_ program.Influencer  = (*DFTNO)(nil)
	_ token.Events        = (*DFTNO)(nil)
)

// NewDFTNO layers the orientation protocol over sub. modulus is N,
// the agreed bound on the network size (0 means exactly n). The
// substrate must be in a legitimate configuration (freshly constructed
// substrates are); the constructor derives the reference naming by
// running one circulation round, after which the composed system is in
// a stabilized configuration — use Randomize or Restore for
// adversarial starts.
func NewDFTNO(g *graph.Graph, sub TokenSubstrate, modulus int) (*DFTNO, error) {
	if modulus == 0 {
		modulus = g.N()
	}
	if modulus < g.N() {
		return nil, fmt.Errorf("core: modulus %d below node count %d", modulus, g.N())
	}
	if !sub.Legitimate() {
		return nil, errors.New("core: token substrate must start legitimate")
	}
	d := &DFTNO{
		g:       g,
		sub:     sub,
		modulus: modulus,
		eta:     make([]int, g.N()),
		max:     make([]int, g.N()),
		pi:      make([][]int, g.N()),
	}
	for v := 0; v < g.N(); v++ {
		d.pi[v] = make([]int, g.Degree(graph.NodeID(v)))
	}
	sub.SetObserver(d)
	if err := d.record(); err != nil {
		return nil, err
	}
	return d, nil
}

// record derives the reference naming and the legitimate circulation
// cycle by driving the substrate deterministically until it revisits a
// configuration (the steady cycle entry), then recording one full
// cycle. The first settled round already assigns the final names.
func (d *DFTNO) record() error {
	limit := 40*(d.g.N()+d.g.M()) + 40

	step := func() error {
		mv, err := d.soleSubstrateMove()
		if err != nil {
			return err
		}
		if !d.sub.Execute(mv.Node, mv.Action) {
			return fmt.Errorf("core: substrate move refused during recording")
		}
		return nil
	}

	// Phase 1: run until a configuration repeats — the entry point of
	// the substrate's steady circulation cycle. By then a complete
	// round has run, so the names are settled.
	seen := make(map[string]bool)
	for i := 0; ; i++ {
		if i > 3*limit {
			return fmt.Errorf("core: substrate %q found no steady cycle within %d moves", d.sub.Name(), 3*limit)
		}
		key := string(d.sub.Snapshot())
		if seen[key] {
			break
		}
		seen[key] = true
		if err := step(); err != nil {
			return err
		}
	}
	d.refNames = make([]int, d.g.N())
	copy(d.refNames, d.eta)
	for v := 0; v < d.g.N(); v++ {
		for port, q := range d.g.Neighbors(graph.NodeID(v)) {
			d.pi[v][port] = sod.ChordalLabel(d.eta[v], d.eta[q], d.modulus)
		}
	}

	// Phase 2: record the Max vector at every configuration of one
	// full cycle.
	d.cycle = make(map[string][]int)
	start := string(d.sub.Snapshot())
	for i := 0; ; i++ {
		if i > limit {
			return fmt.Errorf("core: substrate %q cycle exceeds %d configurations", d.sub.Name(), limit)
		}
		key := string(d.sub.Snapshot())
		mx := make([]int, len(d.max))
		copy(mx, d.max)
		d.cycle[key] = mx
		if err := step(); err != nil {
			return err
		}
		if string(d.sub.Snapshot()) == start {
			return nil
		}
	}
}

// soleSubstrateMove returns the unique enabled substrate move; the
// legitimate circulation must be deterministic.
func (d *DFTNO) soleSubstrateMove() (program.Move, error) {
	var found program.Move
	count := 0
	var buf []program.ActionID
	for v := 0; v < d.g.N(); v++ {
		buf = d.sub.Enabled(graph.NodeID(v), buf[:0])
		for _, a := range buf {
			found = program.Move{Node: graph.NodeID(v), Action: a}
			count++
		}
	}
	if count != 1 {
		return found, fmt.Errorf("core: substrate %q has %d enabled moves in a legitimate configuration, want 1", d.sub.Name(), count)
	}
	return found, nil
}

// Name implements program.Protocol.
func (d *DFTNO) Name() string { return "dftno/" + d.sub.Name() }

// Graph implements program.Protocol.
func (d *DFTNO) Graph() *graph.Graph { return d.g }

// Modulus returns N.
func (d *DFTNO) Modulus() int { return d.modulus }

// Substrate returns the underlying token layer.
func (d *DFTNO) Substrate() TokenSubstrate { return d.sub }

// Names returns a copy of the current η vector.
func (d *DFTNO) Names() []int {
	out := make([]int, len(d.eta))
	copy(out, d.eta)
	return out
}

// ReferenceNames returns a copy of the stabilized naming (the DFS
// preorder of the network in port order).
func (d *DFTNO) ReferenceNames() []int {
	out := make([]int, len(d.refNames))
	copy(out, d.refNames)
	return out
}

// MaxOf returns node v's Max variable (exposed for tests and traces).
func (d *DFTNO) MaxOf(v graph.NodeID) int { return d.max[v] }

// Labeling exports the current orientation.
func (d *DFTNO) Labeling() *sod.Labeling {
	l := &sod.Labeling{
		Modulus: d.modulus,
		Names:   d.Names(),
		Labels:  make([][]int, d.g.N()),
	}
	for v := range d.pi {
		l.Labels[v] = make([]int, len(d.pi[v]))
		copy(l.Labels[v], d.pi[v])
	}
	return l
}

// OnRootStart implements token.Events: the root names itself 0 when
// it generates the token (Nodelabel_r).
func (d *DFTNO) OnRootStart(r graph.NodeID) {
	d.eta[r] = 0
	d.max[r] = 0
}

// OnForward implements token.Events: Nodelabel_p — consult the parent
// for the current maximum and take the next name.
func (d *DFTNO) OnForward(v, parent graph.NodeID) {
	d.eta[v] = d.max[parent] + 1
	d.max[v] = d.eta[v]
}

// OnBacktrack implements token.Events: UpdateMax_p — adopt the
// returning descendant's maximum.
func (d *DFTNO) OnBacktrack(v, child graph.NodeID) {
	d.max[v] = d.max[child]
}

// invalidEdgeLabel is the paper's InvalidEdgelabel(p) predicate.
func (d *DFTNO) invalidEdgeLabel(v graph.NodeID) bool {
	for port, q := range d.g.Neighbors(v) {
		if d.pi[v][port] != sod.ChordalLabel(d.eta[v], d.eta[q], d.modulus) {
			return true
		}
	}
	return false
}

// Enabled implements program.Protocol: the substrate's actions plus
// the edge-labeling rule ¬Forward ∧ ¬Backtrack ∧ InvalidEdgelabel.
func (d *DFTNO) Enabled(v graph.NodeID, buf []program.ActionID) []program.ActionID {
	buf = d.sub.Enabled(v, buf)
	if !d.sub.HasToken(v) && d.invalidEdgeLabel(v) {
		buf = append(buf, ActEdgeLabel)
	}
	return buf
}

// Execute implements program.Protocol.
func (d *DFTNO) Execute(v graph.NodeID, a program.ActionID) bool {
	if a == ActEdgeLabel {
		if d.sub.HasToken(v) || !d.invalidEdgeLabel(v) {
			return false
		}
		for port, q := range d.g.Neighbors(v) {
			d.pi[v][port] = sod.ChordalLabel(d.eta[v], d.eta[q], d.modulus)
		}
		return true
	}
	return d.sub.Execute(v, a)
}

// Influence implements program.Influencer, documenting the locality
// audit for the composed protocol: substrate statements write only v's
// substrate variables, and the event hooks they trigger (Nodelabel,
// UpdateMax) write only η_v and Max_v — OnForward reads the parent's
// Max but writes at v, OnBacktrack reads the child's Max but writes at
// v. The edge-labeling statement writes only π_v. Every composed guard
// at a node reads one hop at most: the substrate's own guards and
// HasToken are 1-hop by the substrate's declaration, and
// InvalidEdgelabel compares π_v against the η of v and its
// neighbours. A move at v therefore changes guards in v's closed
// 1-hop neighbourhood only.
func (d *DFTNO) Influence(v graph.NodeID, _ program.ActionID, buf []graph.NodeID) []graph.NodeID {
	return program.InfluenceClosedNeighborhood(d.g, v, buf)
}

// ActionName implements program.ActionNamer.
func (d *DFTNO) ActionName(a program.ActionID) string {
	if a == ActEdgeLabel {
		return "EdgeLabel"
	}
	return program.ActionName(d.sub, a)
}

// Legitimate implements program.Legitimacy: L_NO = L_TC ∧ SP1 ∧ SP2.
// Concretely, the substrate must be on its legitimate circulation
// cycle, the names must equal the reference naming, the Max vector
// must match what the ideal execution holds at this exact substrate
// configuration, and every edge label must satisfy SP2 — precisely the
// configurations the ideal system visits forever after stabilization.
func (d *DFTNO) Legitimate() bool {
	if !d.sub.Legitimate() {
		return false
	}
	// Cheap necessary conditions first: the predicate runs after every
	// step in RunUntilLegitimate loops, and the name comparison fails
	// fast without the substrate snapshot the Max check needs.
	for v := 0; v < d.g.N(); v++ {
		if d.eta[v] != d.refNames[v] {
			return false
		}
	}
	wantMax, ok := d.cycle[string(d.sub.Snapshot())]
	if !ok {
		return false
	}
	for v := 0; v < d.g.N(); v++ {
		if d.max[v] != wantMax[v] {
			return false
		}
		if d.invalidEdgeLabel(graph.NodeID(v)) {
			return false
		}
	}
	return true
}

// Snapshot implements program.Snapshotter: the substrate snapshot
// followed by η, Max and π.
func (d *DFTNO) Snapshot() []byte {
	sub := d.sub.Snapshot()
	buf := make([]byte, 0, len(sub)+10+12*d.g.N())
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(sub)))
	buf = append(buf, tmp[:n]...)
	buf = append(buf, sub...)
	put := func(x int) {
		n := binary.PutVarint(tmp[:], int64(x))
		buf = append(buf, tmp[:n]...)
	}
	for v := 0; v < d.g.N(); v++ {
		put(d.eta[v])
		put(d.max[v])
		for _, l := range d.pi[v] {
			put(l)
		}
	}
	return buf
}

// Restore implements program.Snapshotter.
func (d *DFTNO) Restore(data []byte) error {
	subLen, n := binary.Uvarint(data)
	if n <= 0 || uint64(len(data)-n) < subLen {
		return errors.New("core: malformed dftno snapshot header")
	}
	if err := d.sub.Restore(data[n : n+int(subLen)]); err != nil {
		return fmt.Errorf("core: restore substrate: %w", err)
	}
	rest := data[n+int(subLen):]
	get := func() (int, error) {
		x, n := binary.Varint(rest)
		if n <= 0 {
			return 0, errors.New("core: truncated dftno snapshot")
		}
		rest = rest[n:]
		return int(x), nil
	}
	for v := 0; v < d.g.N(); v++ {
		var err error
		if d.eta[v], err = get(); err != nil {
			return err
		}
		if d.max[v], err = get(); err != nil {
			return err
		}
		for port := range d.pi[v] {
			if d.pi[v][port], err = get(); err != nil {
				return err
			}
		}
	}
	if len(rest) != 0 {
		return errors.New("core: trailing dftno snapshot bytes")
	}
	return nil
}

// CorruptNode implements program.NodeCorruptor: v's orientation
// variables and its substrate state take arbitrary values of their
// domains (η, Max ∈ 0..N−1 and π entries ∈ 0..N−1, per §3.2.3).
// Out-of-domain values also heal — every variable is overwritten
// within one clean round — which TestDFTNOHealsOutOfDomainValues
// exercises separately.
func (d *DFTNO) CorruptNode(v graph.NodeID, rng *rand.Rand) {
	if c, ok := d.sub.(program.NodeCorruptor); ok {
		c.CorruptNode(v, rng)
	}
	d.eta[v] = rng.Intn(d.modulus)
	d.max[v] = rng.Intn(d.modulus)
	for port := range d.pi[v] {
		d.pi[v][port] = rng.Intn(d.modulus)
	}
}

// Randomize implements program.Randomizer: the substrate and every
// orientation variable take arbitrary values of their domains.
func (d *DFTNO) Randomize(rng *rand.Rand) {
	for v := 0; v < d.g.N(); v++ {
		d.CorruptNode(graph.NodeID(v), rng)
	}
}

// OrientationBits returns the orientation layer's own footprint at v:
// η and Max (⌈log₂N⌉ each) plus Δ_v edge labels (⌈log₂N⌉ each).
func (d *DFTNO) OrientationBits(v graph.NodeID) int {
	lg := program.Log2Ceil(d.modulus)
	return 2*lg + d.g.Degree(v)*lg
}

// StateBits implements program.SpaceMeter: orientation plus substrate.
func (d *DFTNO) StateBits(v graph.NodeID) int {
	bits := d.OrientationBits(v)
	if m, ok := d.sub.(program.SpaceMeter); ok {
		bits += m.StateBits(v)
	}
	return bits
}

package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"

	"netorient/internal/graph"
	"netorient/internal/program"
	"netorient/internal/sod"
	"netorient/internal/token"
)

// TokenSubstrate is the contract DFTNO needs from its underlying
// depth-first token circulation protocol: the guarded-command
// behaviour, a legitimacy predicate, canonical snapshots, and the
// token-layer interface (parent pointers, token location, event
// hooks).
type TokenSubstrate interface {
	program.Protocol
	program.Legitimacy
	program.Snapshotter
	token.Substrate
}

// ActEdgeLabel is DFTNO's own action (Algorithm 3.1.1's third rule):
// with no token present and an inconsistent edge label, recompute
// every label π_p[l] := (η_p − η_q) mod N. Substrate actions keep
// their own IDs; this one is offset far above them.
const ActEdgeLabel program.ActionID = 1 << 20

// DFTNO is Algorithm 3.1.1: network orientation by depth-first token
// circulation. The composed protocol exposes the substrate's actions
// (whose Forward/Backtrack/round-start events atomically run the
// paper's Nodelabel and UpdateMax macros, mirroring the paper's macro
// expansion) plus the edge-labeling correction action.
//
// Per-node state beyond the substrate: η (name), Max (largest name the
// node is aware of) and π (one label per incident edge) — 2·⌈log₂N⌉ +
// Δ_p·⌈log₂N⌉ bits, the paper's O(Δ×log N).
type DFTNO struct {
	g       *graph.Graph
	sub     TokenSubstrate
	modulus int
	auth    program.RootAuthority // nil ⇒ the substrate's fixed root anchors the reference
	authVer uint64                // RootsVersion the reference naming was derived at

	eta []int
	max []int
	pi  [][]int

	// refNames is the stable naming: the preorder of the
	// deterministic port-order DFS from the root, which is exactly
	// the order the legitimate circulation visits (and names) the
	// nodes. maxSub[v] is the largest reference name in v's DFS
	// subtree — refNames[v] + |subtree(v)| − 1, preorder numbering a
	// subtree contiguously. Together with the substrate's traversal
	// introspection they decide the legitimacy predicate
	// L_NO = L_TC ∧ SP1 ∧ SP2 (§3.2) as a per-node position
	// invariant (see positionOK), replacing the recorded-cycle
	// snapshot map that previously cost O(n²) bytes.
	//
	// refParent is the DFS-tree parent vector backing the incremental
	// maintenance of refNames under topology churn: removing an edge
	// that is NOT a tree edge of the reference DFS cannot change the
	// traversal (when the walk scans that port the far endpoint is
	// already visited either way), so rebindReference skips the
	// O(n+m) rebuild in that case. RefRebuilds counts the rebuilds
	// that did run, so churn experiments can prove they are rare
	// relative to steps.
	refNames  []int
	maxSub    []int
	refParent []graph.NodeID

	// RefRebuilds counts O(n+m) reference-naming rebuilds triggered
	// by topology deltas (see rebindReference).
	RefRebuilds int64

	// wit is the incremental legitimacy witness (program.Witness):
	// a violation counter over the per-node clauses of Legitimate,
	// conjoined with the substrate's own witness (see witness.go).
	wit    program.ViolationCounter
	subWit program.Witness // type-asserted from sub; nil ⇒ fall back to sub.Legitimate
}

// Compile-time interface compliance.
var (
	_ program.Protocol      = (*DFTNO)(nil)
	_ program.Legitimacy    = (*DFTNO)(nil)
	_ program.Snapshotter   = (*DFTNO)(nil)
	_ program.Randomizer    = (*DFTNO)(nil)
	_ program.SpaceMeter    = (*DFTNO)(nil)
	_ program.ActionNamer   = (*DFTNO)(nil)
	_ program.Influencer    = (*DFTNO)(nil)
	_ program.TopologyAware = (*DFTNO)(nil)
	_ program.Rootable      = (*DFTNO)(nil)
	_ token.Events          = (*DFTNO)(nil)
)

// NewDFTNO layers the orientation protocol over sub. modulus is N,
// the agreed bound on the network size (0 means exactly n). The
// substrate must be in a legitimate configuration (freshly constructed
// substrates are). The constructor derives the reference naming — the
// deterministic port-order DFS preorder the legitimate circulation
// assigns — directly from the graph, in O(n+m) with no substrate
// snapshots, and initialises the orientation variables to the
// stabilized values for the substrate's current position, so the
// composed system starts in a legitimate configuration — use Randomize
// or Restore for adversarial starts.
func NewDFTNO(g *graph.Graph, sub TokenSubstrate, modulus int) (*DFTNO, error) {
	if modulus == 0 {
		modulus = g.N()
	}
	if modulus < g.N() {
		return nil, fmt.Errorf("core: modulus %d below node count %d", modulus, g.N())
	}
	if !sub.Legitimate() {
		return nil, errors.New("core: token substrate must start legitimate")
	}
	d := &DFTNO{
		g:       g,
		sub:     sub,
		modulus: modulus,
		eta:     make([]int, g.N()),
		max:     make([]int, g.N()),
		pi:      make([][]int, g.N()),
	}
	for v := 0; v < g.N(); v++ {
		d.pi[v] = make([]int, g.Ports(graph.NodeID(v)))
	}

	// Reference naming: the legitimate circulation is the
	// deterministic port-order DFS from the root (the Substrate
	// contract), whose Nodelabel macro assigns exactly the preorder
	// index. Subtree sizes give maxSub by the contiguity of preorder.
	d.rebuildReference()

	// Stabilized orientation state for the substrate's position.
	copy(d.eta, d.refNames)
	for v := 0; v < g.N(); v++ {
		id := graph.NodeID(v)
		d.max[v] = d.expectedMax(id)
		for port, q := range g.Neighbors(id) {
			if q == graph.None {
				continue
			}
			d.pi[v][port] = sod.ChordalLabel(d.eta[v], d.eta[q], d.modulus)
		}
	}

	d.subWit, _ = sub.(program.Witness)
	sub.SetObserver(d)

	// Construction-time contract validation (the deleted recording
	// phase caught these by driving the substrate; validate cheaply
	// instead of silently mis-deriving a naming the substrate never
	// realizes). Full traversal-order conformance — the circulation
	// visits in port-order DFS — is the Substrate contract, pinned by
	// the naming tests; here we catch the loud violations in O(n·Δ):
	// a legitimate configuration must enable exactly one move (the
	// circulation is deterministic), and the substrate's reported
	// position must satisfy the cycle invariant we just initialised
	// the orientation variables from.
	enabled := 0
	var ebuf []program.ActionID
	for v := 0; v < g.N(); v++ {
		ebuf = d.Enabled(graph.NodeID(v), ebuf[:0])
		enabled += len(ebuf)
	}
	if enabled != 1 {
		return nil, fmt.Errorf("core: substrate %q has %d enabled moves in a legitimate configuration, want 1 (deterministic circulation)", sub.Name(), enabled)
	}
	if !d.Legitimate() {
		return nil, fmt.Errorf("core: substrate %q reports a traversal position inconsistent with the port-order DFS circulation contract", sub.Name())
	}
	return d, nil
}

// rebuildReference recomputes the reference naming (refNames, maxSub,
// refParent) from the current graph in O(n+m) and reports whether the
// naming changed. Nodes the DFS does not reach (dead, or live but cut
// off mid-partition) get refName −1, which no live reachable node ever
// holds, so stale positions compare unequal.
func (d *DFTNO) rebuildReference() bool {
	n := d.g.N()
	names := make([]int, n)
	maxSub := make([]int, n)
	parent := make([]graph.NodeID, n)
	for v := range names {
		names[v], maxSub[v], parent[v] = -1, -1, graph.None
	}
	size := make([]int, n)
	runRoot := func(root graph.NodeID) {
		if names[root] >= 0 {
			// A second effective root inside an already-traversed
			// component (transient multi-root configuration): keep the
			// first traversal's naming; the circulator's own multi-root
			// veto keeps the composed predicate false until the
			// authority settles on one root per component.
			return
		}
		order, par := graph.DFSPreorder(d.g, root)
		for idx, v := range order {
			names[v] = idx
			if p := par[v]; p != graph.None {
				parent[v] = p
			}
		}
		for i := len(order) - 1; i >= 0; i-- {
			v := order[i]
			size[v]++
			if p := par[v]; p != graph.None {
				size[p] += size[v]
			}
		}
		for _, v := range order {
			maxSub[v] = names[v] + size[v] - 1
		}
	}
	if d.auth == nil {
		runRoot(d.sub.Root())
	} else {
		// Per-component preorders from every effective root, each
		// naming its component 0..|C|−1 — consistent with OnRootStart
		// naming an acting root 0 when it regenerates the token.
		for v := 0; v < n; v++ {
			id := graph.NodeID(v)
			if d.g.Alive(id) && d.auth.IsRoot(id) {
				runRoot(id)
			}
		}
	}
	changed := len(names) != len(d.refNames)
	if !changed {
		for v := range names {
			if names[v] != d.refNames[v] || maxSub[v] != d.maxSub[v] {
				changed = true
				break
			}
		}
	}
	d.refNames, d.maxSub, d.refParent = names, maxSub, parent
	return changed
}

// BindRootAuthority implements program.Rootable: the reference naming
// re-anchors at the authority's effective roots (one preorder per
// rooted component), and the binding is forwarded to the substrate so
// the circulation itself restarts from the same roots. A nil binding
// keeps the fixed-root naming bit-identical.
func (d *DFTNO) BindRootAuthority(a program.RootAuthority) {
	if r, ok := d.sub.(program.Rootable); ok {
		r.BindRootAuthority(a)
	}
	d.auth = a
	if a != nil {
		d.authVer = a.RootsVersion()
	}
	if d.rebuildReference() {
		d.wit.Invalidate()
	}
}

// ensureRef re-derives the reference naming when the bound authority's
// root set has moved since the last derivation. Root flips rewrite no
// node state, so nothing else invalidates the witness counters — every
// legitimacy decision funnels through here first.
func (d *DFTNO) ensureRef() {
	if d.auth == nil || d.authVer == d.auth.RootsVersion() {
		return
	}
	d.authVer = d.auth.RootsVersion()
	d.RefRebuilds++
	if d.rebuildReference() {
		d.wit.Invalidate()
	}
}

// expectedMax returns the Max value the ideal execution holds at v
// given the substrate's current traversal position: a finished subtree
// has folded all its names (maxSub), a node exploring child q has
// folded everything named before q (refNames[q]−1), and a freshly
// visited node only its own name.
func (d *DFTNO) expectedMax(v graph.NodeID) int {
	if d.sub.Finished(v) {
		return d.maxSub[v]
	}
	if q := d.sub.Pointing(v); q != graph.None {
		return d.refNames[q] - 1
	}
	return d.refNames[v]
}

// Name implements program.Protocol.
func (d *DFTNO) Name() string { return "dftno/" + d.sub.Name() }

// Graph implements program.Protocol.
func (d *DFTNO) Graph() *graph.Graph { return d.g }

// Modulus returns N.
func (d *DFTNO) Modulus() int { return d.modulus }

// Substrate returns the underlying token layer.
func (d *DFTNO) Substrate() TokenSubstrate { return d.sub }

// Names returns a copy of the current η vector.
func (d *DFTNO) Names() []int {
	out := make([]int, len(d.eta))
	copy(out, d.eta)
	return out
}

// ReferenceNames returns a copy of the stabilized naming (the DFS
// preorder of the network in port order).
func (d *DFTNO) ReferenceNames() []int {
	out := make([]int, len(d.refNames))
	copy(out, d.refNames)
	return out
}

// MaxOf returns node v's Max variable (exposed for tests and traces).
func (d *DFTNO) MaxOf(v graph.NodeID) int { return d.max[v] }

// Labeling exports the current orientation.
func (d *DFTNO) Labeling() *sod.Labeling {
	l := &sod.Labeling{
		Modulus: d.modulus,
		Names:   d.Names(),
		Labels:  make([][]int, d.g.N()),
	}
	for v := range d.pi {
		l.Labels[v] = make([]int, len(d.pi[v]))
		copy(l.Labels[v], d.pi[v])
	}
	return l
}

// OnRootStart implements token.Events: the root names itself 0 when
// it generates the token (Nodelabel_r).
func (d *DFTNO) OnRootStart(r graph.NodeID) {
	d.eta[r] = 0
	d.max[r] = 0
}

// OnForward implements token.Events: Nodelabel_p — consult the parent
// for the current maximum and take the next name.
func (d *DFTNO) OnForward(v, parent graph.NodeID) {
	d.eta[v] = d.max[parent] + 1
	d.max[v] = d.eta[v]
}

// OnBacktrack implements token.Events: UpdateMax_p — adopt the
// returning descendant's maximum.
func (d *DFTNO) OnBacktrack(v, child graph.NodeID) {
	d.max[v] = d.max[child]
}

// invalidEdgeLabel is the paper's InvalidEdgelabel(p) predicate. Hole
// ports have no edge to label and are skipped; their stale π entries
// are dead state the next labeling of a re-added edge overwrites.
func (d *DFTNO) invalidEdgeLabel(v graph.NodeID) bool {
	for port, q := range d.g.Neighbors(v) {
		if q == graph.None {
			continue
		}
		if d.pi[v][port] != sod.ChordalLabel(d.eta[v], d.eta[q], d.modulus) {
			return true
		}
	}
	return false
}

// Enabled implements program.Protocol: the substrate's actions plus
// the edge-labeling rule ¬Forward ∧ ¬Backtrack ∧ InvalidEdgelabel.
func (d *DFTNO) Enabled(v graph.NodeID, buf []program.ActionID) []program.ActionID {
	buf = d.sub.Enabled(v, buf)
	if !d.sub.HasToken(v) && d.invalidEdgeLabel(v) {
		buf = append(buf, ActEdgeLabel)
	}
	return buf
}

// Execute implements program.Protocol.
func (d *DFTNO) Execute(v graph.NodeID, a program.ActionID) bool {
	if a == ActEdgeLabel {
		if d.sub.HasToken(v) || !d.invalidEdgeLabel(v) {
			return false
		}
		for port, q := range d.g.Neighbors(v) {
			if q == graph.None {
				continue
			}
			d.pi[v][port] = sod.ChordalLabel(d.eta[v], d.eta[q], d.modulus)
		}
		return true
	}
	return d.sub.Execute(v, a)
}

// Influence implements program.Influencer, documenting the locality
// audit for the composed protocol: substrate statements write only v's
// substrate variables, and the event hooks they trigger (Nodelabel,
// UpdateMax) write only η_v and Max_v — OnForward reads the parent's
// Max but writes at v, OnBacktrack reads the child's Max but writes at
// v. The edge-labeling statement writes only π_v. Every composed guard
// at a node reads one hop at most: the substrate's own guards and
// HasToken are 1-hop by the substrate's declaration, and
// InvalidEdgelabel compares π_v against the η of v and its
// neighbours. A move at v therefore changes guards in v's closed
// 1-hop neighbourhood only.
func (d *DFTNO) Influence(v graph.NodeID, _ program.ActionID, buf []graph.NodeID) []graph.NodeID {
	return program.InfluenceClosedNeighborhood(d.g, v, buf)
}

// ActionName implements program.ActionNamer.
func (d *DFTNO) ActionName(a program.ActionID) string {
	if a == ActEdgeLabel {
		return "EdgeLabel"
	}
	return program.ActionName(d.sub, a)
}

// positionOK is the recomputable cycle invariant at v: the Max value
// matches what the ideal execution holds at the substrate's current
// traversal position, and the position itself is one the deterministic
// port-order circulation visits. Concretely:
//
//   - a finished node holds maxSub[v], and none of its neighbours is a
//     round behind (a DFS subtree only closes after every neighbour of
//     its nodes has been visited);
//   - an unfinished node with a retracted pointer was just visited and
//     holds its own name;
//   - an unfinished node exploring (or arrowing to) child q holds
//     refNames[q]−1, and every neighbour on an earlier port is already
//     visited (the circulation advances in port order).
//
// Each clause reads one hop, which is what lets the witness maintain
// it from the scheduler's dirty sets. Together with eta ≡ refNames,
// SP2 labels and L_TC, the clauses hold exactly on the configurations
// the ideal system visits forever after stabilization — the predicate
// the recorded-cycle snapshot map (O(n²) bytes) used to decide by
// lookup. TestDFTNOLegitimacyMatchesRecordedCycle pins the equality
// against a recorded reference over exhaustively explored reachable
// spaces, and the model-checking suite re-proves closure+convergence.
func (d *DFTNO) positionOK(v graph.NodeID) bool {
	if d.sub.Finished(v) {
		if d.max[v] != d.maxSub[v] {
			return false
		}
		for _, w := range d.g.Neighbors(v) {
			if w != graph.None && d.sub.Behind(w, v) {
				return false
			}
		}
		return true
	}
	q := d.sub.Pointing(v)
	if q == graph.None {
		return d.max[v] == d.refNames[v]
	}
	if d.max[v] != d.refNames[q]-1 {
		return false
	}
	for _, w := range d.g.Neighbors(v) {
		if w == q {
			break
		}
		if w == graph.None {
			continue
		}
		if !d.sub.SameRound(w, v) {
			return false
		}
	}
	return true
}

// Legitimate implements program.Legitimacy: L_NO = L_TC ∧ SP1 ∧ SP2.
// Concretely, the substrate must be legitimate, the names must equal
// the reference naming, the Max vector and traversal position must
// satisfy the cycle invariant (positionOK), and every edge label must
// satisfy SP2 — precisely the configurations the ideal system visits
// forever after stabilization.
//
// Orphan nodes — live but unreachable from the root, refName −1 —
// cannot satisfy the naming clause (η is drawn from 0..N−1), and the
// circulation never reaches them to assign one; their condition is
// SP2 consistency alone: labels derived from whatever names the
// partition froze. That is exactly the terminal state of an orphan
// component (the substrate quiesces there per its own predicate, then
// EdgeLabel fires at most once per node), so closure holds.
func (d *DFTNO) Legitimate() bool {
	d.ensureRef()
	if !d.sub.Legitimate() {
		return false
	}
	// Cheap necessary condition first: the predicate runs after every
	// step in RunUntilLegitimate loops without a witness, and the name
	// comparison fails fast. Dead nodes are outside the predicate.
	for v := 0; v < d.g.N(); v++ {
		if d.g.Alive(graph.NodeID(v)) && d.refNames[v] >= 0 && d.eta[v] != d.refNames[v] {
			return false
		}
	}
	for v := 0; v < d.g.N(); v++ {
		id := graph.NodeID(v)
		if !d.g.Alive(id) {
			continue
		}
		if d.refNames[v] < 0 {
			if d.invalidEdgeLabel(id) {
				return false
			}
			continue
		}
		if !d.positionOK(id) || d.invalidEdgeLabel(id) {
			return false
		}
	}
	return true
}

// TopologyChanged implements program.TopologyAware for the composed
// stack: forward the delta to the substrate first (its hook clamps the
// circulation state and contributes its ball), grow the per-node
// arrays if the id space grew, rebind the port-indexed π array of
// every touched node to its current port space, and maintain the
// reference naming — incrementally where the delta provably cannot
// change the port-order DFS (a removed non-tree edge), by an O(n+m)
// rebuild otherwise, counted in RefRebuilds. A rebuild that actually
// changed the naming invalidates the witness counters (their clauses
// compare η and Max against refNames/maxSub at every node), which
// lazily re-arm on the next legitimacy query. The returned ball adds
// the touched set's closed neighbourhoods: all of DFTNO's own guards
// read one hop, like the substrate's.
func (d *DFTNO) TopologyChanged(dlt graph.Delta, buf []graph.NodeID) []graph.NodeID {
	if ta, ok := d.sub.(program.TopologyAware); ok {
		buf = ta.TopologyChanged(dlt, buf)
	}
	if n := d.g.N(); len(d.eta) < n {
		for len(d.eta) < n {
			d.eta = append(d.eta, 0)
			d.max = append(d.max, 0)
			d.pi = append(d.pi, nil)
		}
		if d.modulus < n {
			// The agreed size bound N must cover the grown network;
			// every SP2 label is stale under the new modulus, which the
			// edge-labeling action rewrites during re-stabilization.
			d.modulus = n
		}
		d.wit.Invalidate()
	}
	for _, v := range dlt.Touched {
		for len(d.pi[v]) < d.g.Ports(v) {
			d.pi[v] = append(d.pi[v], 0)
		}
	}
	rebuild := true
	if dlt.Kind == graph.EdgeRemoved {
		// Removing a non-tree edge of the reference DFS keeps the
		// traversal unchanged: parent(U)≠V and parent(V)≠U mean both
		// endpoints were first reached around this edge, so the walk
		// skipped its ports (far endpoint already visited) — exactly
		// what it does for the holes they became.
		if d.refParent[dlt.U] != dlt.V && d.refParent[dlt.V] != dlt.U {
			rebuild = false
		}
	}
	if rebuild {
		d.RefRebuilds++
		if d.auth != nil {
			d.authVer = d.auth.RootsVersion()
		}
		if d.rebuildReference() {
			d.wit.Invalidate()
		}
	}
	for _, v := range dlt.Touched {
		buf = program.InfluenceClosedNeighborhood(d.g, v, buf)
	}
	return buf
}

// Snapshot implements program.Snapshotter: the substrate snapshot
// followed by η, Max and π.
func (d *DFTNO) Snapshot() []byte {
	sub := d.sub.Snapshot()
	buf := make([]byte, 0, len(sub)+10+12*d.g.N())
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(sub)))
	buf = append(buf, tmp[:n]...)
	buf = append(buf, sub...)
	put := func(x int) {
		n := binary.PutVarint(tmp[:], int64(x))
		buf = append(buf, tmp[:n]...)
	}
	for v := 0; v < d.g.N(); v++ {
		put(d.eta[v])
		put(d.max[v])
		for _, l := range d.pi[v] {
			put(l)
		}
	}
	return buf
}

// Restore implements program.Snapshotter.
func (d *DFTNO) Restore(data []byte) error {
	subLen, n := binary.Uvarint(data)
	if n <= 0 || uint64(len(data)-n) < subLen {
		return errors.New("core: malformed dftno snapshot header")
	}
	if err := d.sub.Restore(data[n : n+int(subLen)]); err != nil {
		return fmt.Errorf("core: restore substrate: %w", err)
	}
	rest := data[n+int(subLen):]
	get := func() (int, error) {
		x, n := binary.Varint(rest)
		if n <= 0 {
			return 0, errors.New("core: truncated dftno snapshot")
		}
		rest = rest[n:]
		return int(x), nil
	}
	for v := 0; v < d.g.N(); v++ {
		var err error
		if d.eta[v], err = get(); err != nil {
			return err
		}
		if d.max[v], err = get(); err != nil {
			return err
		}
		for port := range d.pi[v] {
			if d.pi[v][port], err = get(); err != nil {
				return err
			}
		}
	}
	if len(rest) != 0 {
		return errors.New("core: trailing dftno snapshot bytes")
	}
	return nil
}

// CorruptNode implements program.NodeCorruptor: v's orientation
// variables and its substrate state take arbitrary values of their
// domains (η, Max ∈ 0..N−1 and π entries ∈ 0..N−1, per §3.2.3).
// Out-of-domain values also heal — every variable is overwritten
// within one clean round — which TestDFTNOHealsOutOfDomainValues
// exercises separately.
func (d *DFTNO) CorruptNode(v graph.NodeID, rng *rand.Rand) {
	if c, ok := d.sub.(program.NodeCorruptor); ok {
		c.CorruptNode(v, rng)
	}
	d.eta[v] = rng.Intn(d.modulus)
	d.max[v] = rng.Intn(d.modulus)
	for port := range d.pi[v] {
		d.pi[v][port] = rng.Intn(d.modulus)
	}
}

// Randomize implements program.Randomizer: the substrate and every
// orientation variable take arbitrary values of their domains.
func (d *DFTNO) Randomize(rng *rand.Rand) {
	for v := 0; v < d.g.N(); v++ {
		d.CorruptNode(graph.NodeID(v), rng)
	}
}

// OrientationBits returns the orientation layer's own footprint at v:
// η and Max (⌈log₂N⌉ each) plus Δ_v edge labels (⌈log₂N⌉ each).
func (d *DFTNO) OrientationBits(v graph.NodeID) int {
	lg := program.Log2Ceil(d.modulus)
	return 2*lg + d.g.Degree(v)*lg
}

// StateBits implements program.SpaceMeter: orientation plus substrate.
func (d *DFTNO) StateBits(v graph.NodeID) int {
	bits := d.OrientationBits(v)
	if m, ok := d.sub.(program.SpaceMeter); ok {
		bits += m.StateBits(v)
	}
	return bits
}

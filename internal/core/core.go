// Package core implements the paper's primary contribution: the two
// self-stabilizing network orientation protocols.
//
//   - DFTNO (Algorithm 3.1.1) rides a depth-first token circulation
//     substrate: the circulating token acts as a counter, naming each
//     node on its first visit of a round; backtracking propagates the
//     running maximum; once names are stable each node locally fixes
//     its chordal edge labels. It stabilizes in O(n) steps after the
//     substrate does.
//
//   - STNO (Algorithm 4.1.2) rides a spanning-tree substrate: leaves
//     report weight 1, internal nodes aggregate subtree weights
//     bottom-up, and the root then distributes disjoint name ranges
//     top-down, each node taking the smallest name of its range; edge
//     labels (tree and non-tree alike) follow locally. It stabilizes
//     in O(h) steps after the substrate does.
//
// Both establish the specification SP_NO of §2.3 — SP1 (globally
// unique names η_p ∈ 0..N−1) and SP2 (π_p[(p,q)] = (η_p − η_q) mod N)
// — i.e. a chordal sense of direction, and both occupy O(Δ·log N) bits
// per node beyond their substrate.
package core

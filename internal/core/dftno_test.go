package core

import (
	"math/rand"
	"testing"

	"netorient/internal/daemon"
	"netorient/internal/graph"
	"netorient/internal/program"
	"netorient/internal/token"
)

// newDFTNOOracle builds DFTNO over the oracle substrate.
func newDFTNOOracle(t *testing.T, g *graph.Graph, root graph.NodeID) *DFTNO {
	t.Helper()
	sub, err := token.NewOracle(g, root)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDFTNO(g, sub, 0)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// newDFTNOCirculator builds DFTNO over the self-stabilizing substrate.
func newDFTNOCirculator(t *testing.T, g *graph.Graph, root graph.NodeID) *DFTNO {
	t.Helper()
	sub, err := token.NewCirculator(g, root)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDFTNO(g, sub, 0)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestDFTNOPaperTrace reproduces Figure 3.1.1: on the paper's 5-node
// rooted graph the token names r=0, b=1, d=2, c=3, a=4, and the Max
// values propagate 3 back to the root before a is named 4.
func TestDFTNOPaperTrace(t *testing.T) {
	g := graph.PaperTokenExample()
	for _, build := range []struct {
		name string
		mk   func(*testing.T, *graph.Graph, graph.NodeID) *DFTNO
	}{
		{"oracle", newDFTNOOracle},
		{"circulator", newDFTNOCirculator},
	} {
		t.Run(build.name, func(t *testing.T) {
			d := build.mk(t, g, 0)
			// PaperTokenExample ids are chosen so the preorder naming
			// is the identity: r=0, b=1, d=2, c=3, a=4.
			want := []int{0, 1, 2, 3, 4}
			got := d.ReferenceNames()
			for v, name := range got {
				if name != want[v] {
					t.Fatalf("reference naming %v, want %v (paper Figure 3.1.1)", got, want)
				}
			}
			if !d.Legitimate() {
				t.Fatal("constructed DFTNO is not legitimate")
			}
			if err := d.Labeling().Validate(g); err != nil {
				t.Fatalf("orientation invalid: %v", err)
			}
		})
	}
}

// TestDFTNOPaperMaxPropagation follows the Max variable through the
// steps (ii)–(x) of Figure 3.1.1 on the oracle substrate.
func TestDFTNOPaperMaxPropagation(t *testing.T) {
	g := graph.PaperTokenExample()
	sub, err := token.NewOracle(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDFTNO(g, sub, 0)
	if err != nil {
		t.Fatal(err)
	}
	const (
		r  = graph.NodeID(0)
		b  = graph.NodeID(1)
		dd = graph.NodeID(2)
		c  = graph.NodeID(3)
		a  = graph.NodeID(4)
	)
	type expect struct {
		node graph.NodeID
		max  int
	}
	// One move at a time; after each, the listed node must hold the
	// listed Max value (paper steps ii..x).
	steps := []expect{
		{r, 0},  // (ii) root generates token, names itself 0
		{b, 1},  // (iii) b gets token, names itself 1
		{dd, 2}, // (iv) d names itself 2
		{c, 3},  // (v) c names itself 3
		{dd, 3}, // (vi) token backtracks to d with max 3
		{b, 3},  // (vii) b sets max 3
		{r, 3},  // (viii) root learns max 3
		{a, 4},  // (ix) a names itself 4
		{r, 4},  // (x) backtrack: root ends round with max 4
	}
	sys := program.NewSystem(d, daemon.NewDeterministic())
	for i, st := range steps {
		if _, err := sys.Step(); err != nil {
			t.Fatal(err)
		}
		if got := d.MaxOf(st.node); got != st.max {
			t.Fatalf("after step %d (paper step %s): Max[%d]=%d, want %d",
				i+1, []string{"ii", "iii", "iv", "v", "vi", "vii", "viii", "ix", "x"}[i], st.node, got, st.max)
		}
	}
}

// TestDFTNONamesAreDFSPreorder checks SP1 and the naming's identity
// with the deterministic DFS preorder on a spread of topologies.
func TestDFTNONamesAreDFSPreorder(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"ring8":    graph.Ring(8),
		"clique5":  graph.Complete(5),
		"grid3x4":  graph.Grid(3, 4),
		"tree15":   graph.KAryTree(15, 2),
		"lollipop": graph.Lollipop(4, 4),
		"wheel7":   graph.Wheel(7),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			d := newDFTNOOracle(t, g, 0)
			order, _ := graph.DFSPreorder(g, 0)
			names := d.ReferenceNames()
			for idx, v := range order {
				if names[v] != idx {
					t.Fatalf("node %d named %d, want DFS preorder index %d", v, names[v], idx)
				}
			}
			if err := d.Labeling().Validate(g); err != nil {
				t.Fatalf("orientation invalid: %v", err)
			}
		})
	}
}

// TestDFTNOConvergesOverOracle corrupts only the orientation layer
// (the substrate stays ideal) and checks O(n)-flavoured convergence —
// the paper's layered claim: after the token circulation stabilizes,
// DFTNO stabilizes within a bounded number of rounds.
func TestDFTNOConvergesOverOracle(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"paper":   graph.PaperTokenExample(),
		"ring6":   graph.Ring(6),
		"grid3x3": graph.Grid(3, 3),
		"clique5": graph.Complete(5),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			d := newDFTNOOracle(t, g, 0)
			rng := rand.New(rand.NewSource(99))
			for trial := 0; trial < 20; trial++ {
				d.Randomize(rng)
				sys := program.NewSystem(d, daemon.NewCentral(int64(trial)))
				res, err := sys.RunUntilLegitimate(int64(400 * (g.N() + g.M())))
				if err != nil {
					t.Fatal(err)
				}
				if !res.Converged {
					t.Fatalf("trial %d: no convergence", trial)
				}
				if err := d.Labeling().Validate(g); err != nil {
					t.Fatalf("trial %d: orientation invalid after convergence: %v", trial, err)
				}
			}
		})
	}
}

// TestDFTNOConvergesFullStack randomizes substrate and orientation
// together — full self-stabilization of the composed system.
func TestDFTNOConvergesFullStack(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"paper":   graph.PaperTokenExample(),
		"ring5":   graph.Ring(5),
		"tree7":   graph.KAryTree(7, 2),
		"clique4": graph.Complete(4),
	}
	daemons := map[string]func(int64) program.Daemon{
		"central":     func(s int64) program.Daemon { return daemon.NewCentral(s) },
		"distributed": func(s int64) program.Daemon { return daemon.NewDistributed(s, 0.5) },
	}
	for name, g := range graphs {
		for dn, mk := range daemons {
			t.Run(name+"/"+dn, func(t *testing.T) {
				d := newDFTNOCirculator(t, g, 0)
				rng := rand.New(rand.NewSource(5))
				for trial := 0; trial < 10; trial++ {
					d.Randomize(rng)
					sys := program.NewSystem(d, mk(int64(trial)))
					res, err := sys.RunUntilLegitimate(int64(3000 * (g.N() + g.M())))
					if err != nil {
						t.Fatal(err)
					}
					if !res.Converged {
						t.Fatalf("trial %d: no convergence", trial)
					}
				}
			})
		}
	}
}

// TestDFTNOLegitimacyClosedAlongRun verifies closure empirically: once
// legitimate, the system stays legitimate while the token keeps
// circulating and re-assigning the same names.
func TestDFTNOLegitimacyClosedAlongRun(t *testing.T) {
	g := graph.Grid(3, 3)
	d := newDFTNOCirculator(t, g, 0)
	sys := program.NewSystem(d, daemon.NewDeterministic())
	ok, err := sys.HoldsFor(d.Legitimate, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("legitimacy not closed along a clean run")
	}
}

// TestDFTNOSnapshotRoundTrip exercises Snapshot/Restore on randomized
// configurations.
func TestDFTNOSnapshotRoundTrip(t *testing.T) {
	g := graph.Ring(5)
	d := newDFTNOCirculator(t, g, 0)
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 40; i++ {
		d.Randomize(rng)
		snap := d.Snapshot()
		d.Randomize(rng)
		if err := d.Restore(snap); err != nil {
			t.Fatal(err)
		}
		if string(d.Snapshot()) != string(snap) {
			t.Fatal("dftno snapshot round-trip mismatch")
		}
	}
	if err := d.Restore([]byte{0xff}); err == nil {
		t.Error("expected error for malformed snapshot")
	}
}

// TestDFTNOModulusLargerThanN checks SP1/SP2 with a loose upper bound
// N > n, which the paper explicitly permits.
func TestDFTNOModulusLargerThanN(t *testing.T) {
	g := graph.Ring(6)
	sub, err := token.NewOracle(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDFTNO(g, sub, 10)
	if err != nil {
		t.Fatal(err)
	}
	if d.Modulus() != 10 {
		t.Fatalf("modulus %d, want 10", d.Modulus())
	}
	if err := d.Labeling().Validate(g); err != nil {
		t.Fatalf("orientation with N=10 invalid: %v", err)
	}
}

func TestDFTNORejectsBadModulus(t *testing.T) {
	g := graph.Ring(6)
	sub, err := token.NewOracle(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDFTNO(g, sub, 3); err == nil {
		t.Error("expected error for modulus below n")
	}
}

// TestDFTNOStabilizationIsLinearAfterSubstrate measures the paper's
// headline complexity claim (§3.2.3): orientation completes within
// O(n) moves after the substrate is stable — concretely, within one
// circulation round plus one correction move per node.
func TestDFTNOStabilizationIsLinearAfterSubstrate(t *testing.T) {
	for _, n := range []int{4, 8, 16, 32} {
		g := graph.Ring(n)
		d := newDFTNOOracle(t, g, 0)
		rng := rand.New(rand.NewSource(int64(n)))
		d.Randomize(rng) // orientation garbage; substrate legitimacy unaffected
		sys := program.NewSystem(d, daemon.NewRoundRobin())
		res, err := sys.RunUntilLegitimate(int64(1000 * n))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("n=%d: no convergence", n)
		}
		// One full round is 2n-1 substrate moves; allow two rounds
		// plus n label corrections — still Θ(n).
		bound := int64(2*(2*n-1) + n + 4)
		if res.Moves > bound {
			t.Errorf("n=%d: took %d moves, want ≤ %d (O(n))", n, res.Moves, bound)
		}
	}
}

package core

import (
	"math/rand"
	"testing"

	"netorient/internal/daemon"
	"netorient/internal/graph"
	"netorient/internal/program"
	"netorient/internal/spantree"
)

// TestSTNOConvergesUnderAdversarialDaemons stresses STNO with
// deliberately hostile (but legal) schedulers — the paper only asks
// for an unfair daemon for STNO's substrate, so any scheduler that
// keeps selecting enabled processors must do.
func TestSTNOConvergesUnderAdversarialDaemons(t *testing.T) {
	t.Parallel()
	g := graph.Grid(3, 3)
	adversaries := map[string]program.Daemon{
		// Always pick the highest-id enabled processor (starves low
		// ids as long as legally possible), executing its first
		// enabled action — substrate before orientation, respecting
		// the fair composition of the layers.
		"highest-id": daemon.NewAdversarial("highest-id", func(set program.EnabledSet) []program.Move {
			i := set.Len() - 1 // ascending order: the last index is the highest id
			return []program.Move{{Node: set.At(i), Action: set.Actions(i, nil)[0]}}
		}),
		// Always pick the processor farthest from the root.
		"farthest": daemon.NewAdversarial("farthest", func(set program.EnabledSet) []program.Move {
			dist, _ := graph.BFSFrom(g, 0)
			best := 0
			for i := 1; i < set.Len(); i++ {
				if dist[set.At(i)] > dist[set.At(best)] {
					best = i
				}
			}
			return []program.Move{{Node: set.At(best), Action: set.Actions(best, nil)[0]}}
		}),
		// Activate everyone but execute in reverse id order.
		"reverse-sync": daemon.NewAdversarial("reverse-sync", func(set program.EnabledSet) []program.Move {
			moves := make([]program.Move, 0, set.Len())
			for i := set.Len() - 1; i >= 0; i-- {
				moves = append(moves, program.Move{Node: set.At(i), Action: set.Actions(i, nil)[0]})
			}
			return moves
		}),
	}
	rng := rand.New(rand.NewSource(6))
	for name, adv := range adversaries {
		t.Run(name, func(t *testing.T) {
			sub, err := spantree.NewBFSTree(g, 0)
			if err != nil {
				t.Fatal(err)
			}
			s, err := NewSTNO(g, sub, 0)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 5; trial++ {
				s.Randomize(rng)
				sys := program.NewSystem(s, adv)
				res, err := sys.RunUntilLegitimate(int64(5000 * (g.N() + g.M())))
				if err != nil || !res.Converged {
					t.Fatalf("trial %d under %s: %v %+v", trial, name, err, res)
				}
			}
		})
	}
}

// TestSTNOComposedNeedsFairComposition documents the composition
// counterpart of the fairness finding (see fairness_test.go and
// DESIGN.md §4): the paper composes STNO with its tree protocol under
// *fair composition* — both layers keep executing. A daemon that
// always serves a node's orientation actions and never its substrate
// action keeps processor-level fairness (the node moves constantly)
// yet can preserve a corrupted parent-pointer cycle forever, with the
// name ranges chasing each other around it. The run below livelocks
// by construction; serving the substrate first (as in the test above)
// or any randomized daemon converges.
func TestSTNOComposedNeedsFairComposition(t *testing.T) {
	t.Parallel()
	g := graph.Grid(3, 3)
	starveSubstrate := daemon.NewAdversarial("orientation-first", func(set program.EnabledSet) []program.Move {
		i := set.Len() - 1 // highest enabled id
		acts := set.Actions(i, nil)
		return []program.Move{{Node: set.At(i), Action: acts[len(acts)-1]}}
	})
	rng := rand.New(rand.NewSource(6))
	sub, err := spantree.NewBFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSTNO(g, sub, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Randomize(rng) // seed 6 yields a parent cycle among nodes 4,5,7,8
	sys := program.NewSystem(s, starveSubstrate)
	res, err := sys.RunUntilLegitimate(200000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Skip("this corruption healed; the livelock needs a substrate parent cycle")
	}
	if sub.Stable() {
		t.Fatal("substrate stabilized yet orientation did not — unexpected livelock cause")
	}
}

// TestSTNORunsOnReorderedPorts combines the ψ ablation with the
// protocols: STNO on a port-shuffled graph still orients validly, and
// the DFS-tree equivalence with DFTNO still holds under the new
// ordering (both derive their order from the same ports).
func TestSTNORunsOnReorderedPorts(t *testing.T) {
	t.Parallel()
	base := graph.Grid(3, 3)
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 5; trial++ {
		perm := make([][]int, base.N())
		for v := 0; v < base.N(); v++ {
			perm[v] = rng.Perm(base.Degree(graph.NodeID(v)))
		}
		g, err := base.Reorder(perm)
		if err != nil {
			t.Fatal(err)
		}
		s := newSTNOOracleDFS(t, g, 0)
		stabilize(t, s, daemon.NewCentral(int64(trial)), int64(5000*(g.N()+g.M())))
		if err := s.Labeling().Validate(g); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		d := newDFTNOOracle(t, g, 0)
		sn, dn := s.Names(), d.ReferenceNames()
		for v := range sn {
			if sn[v] != dn[v] {
				t.Fatalf("trial %d: DFS-tree STNO %v != DFTNO %v on shuffled ports", trial, sn, dn)
			}
		}
	}
}

package core

import (
	"math/rand"
	"testing"

	"netorient/internal/daemon"
	"netorient/internal/graph"
	"netorient/internal/program"
	"netorient/internal/spantree"
)

// newSTNOOracleDFS builds STNO over a fixed DFS tree.
func newSTNOOracleDFS(t *testing.T, g *graph.Graph, root graph.NodeID) *STNO {
	t.Helper()
	sub, err := spantree.NewDFSOracle(g, root)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSTNO(g, sub, 0)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// newSTNOBFS builds STNO over the self-stabilizing BFS tree.
func newSTNOBFS(t *testing.T, g *graph.Graph, root graph.NodeID) *STNO {
	t.Helper()
	sub, err := spantree.NewBFSTree(g, root)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSTNO(g, sub, 0)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// stabilize runs the system to legitimacy and fails the test otherwise.
func stabilize(t *testing.T, p program.Protocol, d program.Daemon, maxSteps int64) program.RunResult {
	t.Helper()
	sys := program.NewSystem(p, d)
	res, err := sys.RunUntilLegitimate(maxSteps)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("%s: no convergence within %d steps", p.Name(), maxSteps)
	}
	return res
}

// TestSTNOPaperTrace reproduces Figure 4.1.1: on the paper's example
// tree the weights aggregate to (leaves 1, internal 3, root 5) and the
// naming is the preorder 0..4.
func TestSTNOPaperTrace(t *testing.T) {
	g := graph.PaperTreeExample()
	s := newSTNOOracleDFS(t, g, 0)
	stabilize(t, s, daemon.NewRoundRobin(), 10000)

	wantWeights := []int{5, 3, 1, 1, 1}
	for v, w := range wantWeights {
		if got := s.WeightOf(graph.NodeID(v)); got != w {
			t.Errorf("weight[%d] = %d, want %d (Figure 4.1.1)", v, got, w)
		}
	}
	wantNames := []int{0, 1, 2, 3, 4}
	names := s.Names()
	for v, want := range wantNames {
		if names[v] != want {
			t.Fatalf("names %v, want %v (Figure 4.1.1)", names, wantNames)
		}
	}
	if err := s.Labeling().Validate(g); err != nil {
		t.Fatalf("orientation invalid: %v", err)
	}
}

// TestSTNOWeightsAreSubtreeSizes checks the weight phase on assorted
// trees and graphs.
func TestSTNOWeightsAreSubtreeSizes(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"tree15":  graph.KAryTree(15, 2),
		"path8":   graph.Path(8),
		"star7":   graph.Star(7),
		"grid3x3": graph.Grid(3, 3),
		"ring7":   graph.Ring(7),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			s := newSTNOOracleDFS(t, g, 0)
			stabilize(t, s, daemon.NewRoundRobin(), int64(10000*(g.N()+g.M())))
			// Compute reference subtree sizes on the oracle's tree.
			_, parent := graph.DFSPreorder(g, 0)
			size := make([]int, g.N())
			order, _ := graph.DFSPreorder(g, 0)
			for i := len(order) - 1; i >= 0; i-- {
				v := order[i]
				size[v]++
				if parent[v] != graph.None {
					size[parent[v]] += size[v]
				}
			}
			for v := 0; v < g.N(); v++ {
				if got := s.WeightOf(graph.NodeID(v)); got != size[v] {
					t.Errorf("weight[%d] = %d, want subtree size %d", v, got, size[v])
				}
			}
			if s.WeightOf(0) != g.N() {
				t.Errorf("root weight %d, want n=%d", s.WeightOf(0), g.N())
			}
		})
	}
}

// TestSTNOOrientsNonTreeEdges checks the paper's point that STNO
// labels all edges, tree and non-tree alike.
func TestSTNOOrientsNonTreeEdges(t *testing.T) {
	g := graph.Complete(6) // n-1 tree edges, the rest non-tree
	s := newSTNOOracleDFS(t, g, 0)
	stabilize(t, s, daemon.NewRoundRobin(), 100000)
	if err := s.Labeling().Validate(g); err != nil {
		t.Fatalf("orientation invalid on clique: %v", err)
	}
}

// TestSTNOOverBFSTreeConverges randomizes the full stack (tree +
// orientation) and verifies convergence and SP1/SP2 under several
// daemons — STNO's substrate only needs an unfair daemon.
func TestSTNOOverBFSTreeConverges(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"paperTree": graph.PaperTreeExample(),
		"ring6":     graph.Ring(6),
		"grid3x3":   graph.Grid(3, 3),
		"clique5":   graph.Complete(5),
		"lollipop":  graph.Lollipop(4, 3),
	}
	daemons := map[string]func(int64) program.Daemon{
		"central":     func(s int64) program.Daemon { return daemon.NewCentral(s) },
		"distributed": func(s int64) program.Daemon { return daemon.NewDistributed(s, 0.5) },
		"synchronous": func(s int64) program.Daemon { return daemon.NewSynchronous(s) },
	}
	for name, g := range graphs {
		for dn, mk := range daemons {
			t.Run(name+"/"+dn, func(t *testing.T) {
				s := newSTNOBFS(t, g, 0)
				rng := rand.New(rand.NewSource(13))
				for trial := 0; trial < 8; trial++ {
					s.Randomize(rng)
					sys := program.NewSystem(s, mk(int64(trial)))
					res, err := sys.RunUntilLegitimate(int64(2000 * (g.N() + g.M())))
					if err != nil {
						t.Fatal(err)
					}
					if !res.Converged {
						t.Fatalf("trial %d: no convergence", trial)
					}
					if err := s.Labeling().Validate(g); err != nil {
						t.Fatalf("trial %d: orientation invalid: %v", trial, err)
					}
				}
			})
		}
	}
}

// TestSTNOSilentAfterStabilization: STNO is a silent protocol — once
// legitimate, nothing is enabled.
func TestSTNOSilentAfterStabilization(t *testing.T) {
	g := graph.Grid(3, 3)
	s := newSTNOBFS(t, g, 0)
	sys := program.NewSystem(s, daemon.NewRoundRobin())
	if res, err := sys.RunUntilLegitimate(100000); err != nil || !res.Converged {
		t.Fatalf("stabilization failed: %v %+v", err, res)
	}
	if !sys.Silent() {
		t.Fatal("legitimate STNO configuration still has enabled actions")
	}
}

// TestSTNODFSTreeMatchesDFTNO verifies the paper's Chapter 5
// observation: if STNO's spanning tree is the DFS tree (with the same
// local port order), both protocols produce the same naming.
func TestSTNODFSTreeMatchesDFTNO(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 12; trial++ {
		g := graph.RandomConnected(3+rng.Intn(15), rng.Intn(12), rng)
		s := newSTNOOracleDFS(t, g, 0)
		stabilize(t, s, daemon.NewCentral(int64(trial)), int64(10000*(g.N()+g.M())))
		d := newDFTNOOracle(t, g, 0)
		sn, dn := s.Names(), d.ReferenceNames()
		for v := range sn {
			if sn[v] != dn[v] {
				t.Fatalf("trial %d on %s: STNO names %v differ from DFTNO names %v", trial, g, sn, dn)
			}
		}
	}
}

// TestSTNOBFSTreeDiffersFromDFSNamingSometimes documents the converse:
// over a non-DFS tree the namings generally differ (sanity check that
// the equivalence above is not vacuous).
func TestSTNOBFSTreeDiffersFromDFSNamingSometimes(t *testing.T) {
	g := graph.Ring(6) // BFS tree from 0 differs from the DFS path
	s := newSTNOBFS(t, g, 0)
	stabilize(t, s, daemon.NewRoundRobin(), 100000)
	d := newDFTNOOracle(t, g, 0)
	same := true
	sn, dn := s.Names(), d.ReferenceNames()
	for v := range sn {
		if sn[v] != dn[v] {
			same = false
		}
	}
	if same {
		t.Fatal("BFS-tree STNO unexpectedly matches DFTNO naming on the 6-ring")
	}
}

// TestSTNOStabilizationScalesWithHeight is the §4.2.3 claim: after the
// tree is stable, STNO stabilizes in O(h) rounds — so at fixed n, a
// shallow tree must stabilize in fewer rounds than a deep one.
func TestSTNOStabilizationScalesWithHeight(t *testing.T) {
	measure := func(g *graph.Graph) int64 {
		sub, err := spantree.NewDFSOracle(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewSTNO(g, sub, 0)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(1))
		s.Randomize(rng)
		sys := program.NewSystem(s, daemon.NewSynchronous(1))
		res, err := sys.RunUntilLegitimate(1 << 20)
		if err != nil || !res.Converged {
			t.Fatalf("no convergence: %v %+v", err, res)
		}
		return res.Rounds
	}
	const n = 31
	deep := measure(graph.Path(n))           // height n-1
	shallow := measure(graph.KAryTree(n, 2)) // height ⌊log₂ n⌋
	if shallow >= deep {
		t.Errorf("shallow tree took %d rounds, deep path took %d — expected O(h) separation", shallow, deep)
	}
}

// TestSTNOSnapshotRoundTrip exercises Snapshot/Restore.
func TestSTNOSnapshotRoundTrip(t *testing.T) {
	g := graph.Grid(2, 3)
	s := newSTNOBFS(t, g, 0)
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 40; i++ {
		s.Randomize(rng)
		snap := s.Snapshot()
		s.Randomize(rng)
		if err := s.Restore(snap); err != nil {
			t.Fatal(err)
		}
		if string(s.Snapshot()) != string(snap) {
			t.Fatal("stno snapshot round-trip mismatch")
		}
	}
	if err := s.Restore([]byte{0x01}); err == nil {
		t.Error("expected error for malformed snapshot")
	}
}

// TestSTNORejectsBadModulus mirrors the DFTNO constructor check.
func TestSTNORejectsBadModulus(t *testing.T) {
	g := graph.Ring(6)
	sub, err := spantree.NewBFSOracle(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSTNO(g, sub, 2); err == nil {
		t.Error("expected error for modulus below n")
	}
}

// TestSTNOModulusLargerThanN checks SP1/SP2 with N > n.
func TestSTNOModulusLargerThanN(t *testing.T) {
	g := graph.Ring(5)
	sub, err := spantree.NewDFSOracle(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSTNO(g, sub, 12)
	if err != nil {
		t.Fatal(err)
	}
	stabilize(t, s, daemon.NewRoundRobin(), 100000)
	if err := s.Labeling().Validate(g); err != nil {
		t.Fatalf("orientation with N=12 invalid: %v", err)
	}
}

// TestSTNOOverFullSelfStabilizingStackWithDFTNOSubstrate sanity-checks
// composition breadth: STNO over the stabilizing DFS tree protocol.
func TestSTNOOverDFSTreeProtocol(t *testing.T) {
	g := graph.Grid(2, 3)
	sub, err := spantree.NewDFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSTNO(g, sub, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		s.Randomize(rng)
		sys := program.NewSystem(s, daemon.NewCentral(int64(trial)))
		res, err := sys.RunUntilLegitimate(int64(4000 * (g.N() + g.M())))
		if err != nil || !res.Converged {
			t.Fatalf("trial %d: %v %+v", trial, err, res)
		}
		// DFS-tree STNO must match DFTNO naming (Chapter 5).
		d := newDFTNOOracle(t, g, 0)
		sn, dn := s.Names(), d.ReferenceNames()
		for v := range sn {
			if sn[v] != dn[v] {
				t.Fatalf("trial %d: names %v != %v", trial, sn, dn)
			}
		}
	}
}

// TestDFTNOAndSTNOOverSameGraphBothValid cross-checks both protocols
// against the shared validator.
func TestDFTNOAndSTNOOverSameGraphBothValid(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 8; trial++ {
		g := graph.RandomConnected(4+rng.Intn(10), rng.Intn(8), rng)
		d := newDFTNOOracle(t, g, 0)
		if err := d.Labeling().Validate(g); err != nil {
			t.Fatalf("dftno: %v", err)
		}
		s := newSTNOBFS(t, g, 0)
		stabilize(t, s, daemon.NewCentral(int64(trial)), int64(4000*(g.N()+g.M())))
		if err := s.Labeling().Validate(g); err != nil {
			t.Fatalf("stno: %v", err)
		}
	}
}

package core

import (
	"math/rand"
	"testing"

	"netorient/internal/check"
	"netorient/internal/graph"
	"netorient/internal/program"
	"netorient/internal/spantree"
	"netorient/internal/token"
)

// TestDFTNOModelCheck machine-verifies self-stabilization of the full
// DFTNO stack (orientation + token circulation) on small graphs: from
// randomized seeds, the whole reachable configuration space is
// explored under the central daemon and checked for convergence and
// closure — the mechanical counterpart of Theorem 3.2.3.
func TestDFTNOModelCheck(t *testing.T) {
	t.Parallel()
	graphs := map[string]*graph.Graph{
		"path3":    graph.Path(3),
		"triangle": graph.Complete(3),
	}
	if testing.Short() {
		delete(graphs, "triangle") // the larger instance; path3 keeps the theorem machine-checked
	}
	for name, g := range graphs {
		g := g
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			sub, err := token.NewCirculator(g, 0)
			if err != nil {
				t.Fatal(err)
			}
			d, err := NewDFTNO(g, sub, 0)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(9))
			seeds, err := check.RandomSeeds(d, 25, rng)
			if err != nil {
				t.Fatal(err)
			}
			// DFTNO's daemon is weakly fair (§3.1 / Chapter 5): the
			// unfair criterion is genuinely violated — the edge-label
			// move can be starved forever by the circulating token.
			rep, err := check.Verify(d, check.Options{Seeds: seeds, MaxStates: 3_000_000, Fairness: check.StrongFair})
			if err != nil {
				t.Fatalf("Theorem 3.2.3 violated on %s: %v", name, err)
			}
			if rep.LegitStates == 0 {
				t.Fatal("no legitimate configuration reachable")
			}
			t.Logf("%s: %d states (%d legitimate), %d transitions, worst distance %d",
				name, rep.States, rep.LegitStates, rep.Transitions, rep.MaxStepsToLegit)
		})
	}
}

// TestSTNOModelCheckOverOracle machine-verifies the orientation layer
// of Theorem 4.2.3 in the paper's own proof structure — "after the
// spanning tree protocol stabilizes" — by fixing a legitimate tree
// substrate and exhaustively exploring the orientation variables from
// randomized seeds. (The composed stack multiplies every interleaving
// of tree corrections into the space; TestSTNOModelCheckComposed
// covers it exhaustively on the smallest network.)
func TestSTNOModelCheckOverOracle(t *testing.T) {
	t.Parallel()
	graphs := map[string]*graph.Graph{
		"path3":    graph.Path(3),
		"triangle": graph.Complete(3),
	}
	if testing.Short() {
		delete(graphs, "triangle")
	}
	for name, g := range graphs {
		g := g
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			sub, err := spantree.NewBFSOracle(g, 0)
			if err != nil {
				t.Fatal(err)
			}
			s, err := NewSTNO(g, sub, 0)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(10))
			seeds, err := check.RandomSeeds(s, 25, rng)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := check.Verify(s, check.Options{Seeds: seeds, MaxStates: 4_000_000, Fairness: check.StrongFair})
			if err != nil {
				t.Fatalf("Theorem 4.2.3 violated on %s: %v", name, err)
			}
			if rep.LegitStates == 0 {
				t.Fatal("no legitimate configuration reachable")
			}
			t.Logf("%s: %d states (%d legitimate), %d transitions, worst distance %d",
				name, rep.States, rep.LegitStates, rep.Transitions, rep.MaxStepsToLegit)
		})
	}
}

// TestSTNOModelCheckComposed explores the full STNO-over-BFS-tree
// stack exhaustively on the smallest non-trivial network.
func TestSTNOModelCheckComposed(t *testing.T) {
	t.Parallel()
	g := graph.Path(2)
	sub, err := spantree.NewBFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSTNO(g, sub, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	seeds, err := check.RandomSeeds(s, 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := check.Verify(s, check.Options{Seeds: seeds, MaxStates: 2_000_000, Fairness: check.StrongFair})
	if err != nil {
		t.Fatalf("Theorem 4.2.3 violated: %v", err)
	}
	t.Logf("path2 composed: %d states (%d legitimate), worst distance %d",
		rep.States, rep.LegitStates, rep.MaxStepsToLegit)
}

// TestProtocolContracts runs the generic Enabled/Execute/Snapshot
// contract checker over every protocol in the library. The composed
// layers' own actions sit at a 1<<20 offset, so they are probed with
// an explicit sparse action set rather than the dense range (which
// would cost a million snapshot comparisons per node).
func TestProtocolContracts(t *testing.T) {
	t.Parallel()
	g := graph.PaperChordalExample()
	rng := rand.New(rand.NewSource(4))

	tok, err := token.NewCirculator(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	bfs, err := spantree.NewBFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	dfs, err := spantree.NewDFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}

	tokSub, err := token.NewCirculator(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	dftno, err := NewDFTNO(g, tokSub, 0)
	if err != nil {
		t.Fatal(err)
	}
	bfsSub, err := spantree.NewBFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	stno, err := NewSTNO(g, bfsSub, 0)
	if err != nil {
		t.Fatal(err)
	}

	configs := 60
	if testing.Short() {
		configs = 15
	}
	cases := []struct {
		proto program.Protocol
		space program.ActionID
	}{
		{tok, 8},
		{bfs, 3},
		{dfs, 3},
		{dftno, 8}, // substrate ids; ActEdgeLabel probed separately below
		{stno, 3},
	}
	for _, c := range cases {
		if err := program.CheckContract(c.proto, c.space, configs, rng); err != nil {
			t.Errorf("%s: %v", c.proto.Name(), err)
		}
	}
	// The orientation layers' own high-offset actions, plus a few ids
	// beyond every declared action, probed sparsely.
	dftnoProbes := []program.ActionID{0, 1, 2, 3, 4, 8, ActEdgeLabel, ActEdgeLabel + 1}
	if err := program.CheckContractActions(dftno, dftnoProbes, configs, rng); err != nil {
		t.Errorf("dftno edge action: %v", err)
	}
	stnoProbes := []program.ActionID{0, 1, 3, ActWeight, ActName, ActSTNOEdge, ActSTNOEdge + 1}
	if err := program.CheckContractActions(stno, stnoProbes, configs, rng); err != nil {
		t.Errorf("stno own actions: %v", err)
	}
}

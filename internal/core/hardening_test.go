package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"netorient/internal/daemon"
	"netorient/internal/graph"
	"netorient/internal/program"
	"netorient/internal/spantree"
	"netorient/internal/token"
)

// TestDFTNOHealsOutOfDomainValues injects values far outside the
// variables' domains (a stronger corruption than the paper's
// arbitrary-state model, where a log N-bit variable physically cannot
// exceed its domain) and verifies convergence anyway: every
// orientation variable is overwritten within one clean round.
func TestDFTNOHealsOutOfDomainValues(t *testing.T) {
	t.Parallel()
	g := graph.Grid(3, 3)
	sub, err := token.NewCirculator(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDFTNO(g, sub, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		d.eta[v] = 1 << 40
		d.max[v] = -(1 << 40)
		for port := range d.pi[v] {
			d.pi[v][port] = 1<<40 + v
		}
	}
	sys := program.NewSystem(d, daemon.NewCentral(1))
	res, err := sys.RunUntilLegitimate(1 << 22)
	if err != nil || !res.Converged {
		t.Fatalf("no convergence from out-of-domain values: %v %+v", err, res)
	}
	if err := d.Labeling().Validate(g); err != nil {
		t.Fatal(err)
	}
}

// TestSTNOHealsOutOfDomainValues is the STNO counterpart.
func TestSTNOHealsOutOfDomainValues(t *testing.T) {
	t.Parallel()
	g := graph.Grid(3, 3)
	sub, err := spantree.NewBFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSTNO(g, sub, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		s.weight[v] = -(1 << 40)
		s.eta[v] = 1 << 40
		for port := range s.start[v] {
			s.start[v][port] = -(1 << 30)
		}
		for port := range s.pi[v] {
			s.pi[v][port] = 1 << 30
		}
	}
	sys := program.NewSystem(s, daemon.NewCentral(2))
	res, err := sys.RunUntilLegitimate(1 << 22)
	if err != nil || !res.Converged {
		t.Fatalf("no convergence from out-of-domain values: %v %+v", err, res)
	}
	if err := s.Labeling().Validate(g); err != nil {
		t.Fatal(err)
	}
}

// TestRestoreRejectsGarbageBytes feeds random byte strings to the
// Restore implementations: they must either reject them or accept
// them without panicking, never crash.
func TestRestoreRejectsGarbageBytes(t *testing.T) {
	t.Parallel()
	g := graph.Ring(5)
	sub, err := token.NewCirculator(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDFTNO(g, sub, 0)
	if err != nil {
		t.Fatal(err)
	}
	treeSub, err := spantree.NewBFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSTNO(g, treeSub, 0)
	if err != nil {
		t.Fatal(err)
	}
	f := func(data []byte) bool {
		// Restoring garbage either errors or yields *some* state; it
		// must never panic. (quick.Check turns panics into failures.)
		_ = d.Restore(data)
		_ = s.Restore(data)
		_ = sub.Restore(data)
		_ = treeSub.Restore(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestConvergencePropertyRandomGraphs is the umbrella property test:
// for random graphs, random corruption and random daemon seeds, both
// stacks converge and produce the same deterministic naming as a
// fresh construction.
func TestConvergencePropertyRandomGraphs(t *testing.T) {
	t.Parallel()
	f := func(seed int64, nRaw, extraRaw uint8) bool {
		n := 3 + int(nRaw%10)
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomConnected(n, int(extraRaw%8), rng)

		sub, err := token.NewCirculator(g, 0)
		if err != nil {
			return false
		}
		d, err := NewDFTNO(g, sub, 0)
		if err != nil {
			return false
		}
		ref := d.ReferenceNames()
		d.Randomize(rng)
		sys := program.NewSystem(d, daemon.NewCentral(seed))
		res, err := sys.RunUntilLegitimate(int64(5000 * (g.N() + g.M())))
		if err != nil || !res.Converged {
			return false
		}
		for v, name := range d.Names() {
			if name != ref[v] {
				return false
			}
		}
		return d.Labeling().Validate(g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"

	"netorient/internal/graph"
	"netorient/internal/program"
	"netorient/internal/sod"
	"netorient/internal/spantree"
)

// TreeSubstrate is the contract STNO needs from its underlying
// spanning-tree protocol.
type TreeSubstrate interface {
	program.Protocol
	spantree.Substrate
}

// STNO's own actions (Algorithm 4.1.2). The paper writes the rules
// three times — for the root (R*), internal (I*) and leaf (L*)
// processors; the roles emerge here from the substrate's parent
// pointers, so each rule is stated once with identical semantics
// (leaves have no children, so their expected weight is 1; the root
// has no parent, so its expected name is 0).
const (
	// ActWeight is RW/IW/LW: Weight_p := 1 + Σ_{q∈D_p} Weight_q.
	ActWeight program.ActionID = 1<<20 + iota
	// ActName is RN/IN/LN plus the Distribute macro: take the name
	// the parent allocated (the root takes 0) and carve the remaining
	// range into per-child sub-ranges by weight.
	ActName
	// ActSTNOEdge is RE/IE/LE: recompute every incident edge label —
	// tree and non-tree edges alike.
	ActSTNOEdge
)

// STNO is Algorithm 4.1.2: network orientation over a spanning tree.
// Weights flow bottom-up (O(h) rounds), name ranges flow top-down
// (O(h) rounds), and every node then labels all incident edges — tree
// and non-tree — with the chordal labels of SP2.
//
// Per-node state beyond the substrate: Weight and η (⌈log₂N⌉ bits
// each) plus the Start array and π (Δ_p·⌈log₂N⌉ bits each) — the
// O(Δ×log N) of §4.2.3, and the source of the extra O(Δ×log N) the
// paper charges STNO compared to DFTNO in Chapter 5.
type STNO struct {
	g       *graph.Graph
	sub     TreeSubstrate
	modulus int
	auth    program.RootAuthority // nil ⇒ the substrate's fixed root names itself 0
	authVer uint64                // RootsVersion the witness counters were armed under

	weight []int
	eta    []int
	start  [][]int // per node, per port; meaningful on child ports, 0 elsewhere
	pi     [][]int

	// subBall lazily caches, per node, the influence ball substrate
	// moves need (radius 1 + Substrate.ParentLocality); nil entries are
	// unbuilt. Unused (and unallocated) when the radius is 1.
	subBall    [][]graph.NodeID
	subBallRad int

	// wit is the incremental legitimacy witness (see witness.go).
	wit    program.ViolationCounter
	subWit program.Witness // type-asserted from sub; nil ⇒ fall back to sub.Stable
}

// Compile-time interface compliance.
var (
	_ program.Protocol      = (*STNO)(nil)
	_ program.Legitimacy    = (*STNO)(nil)
	_ program.Snapshotter   = (*STNO)(nil)
	_ program.Randomizer    = (*STNO)(nil)
	_ program.SpaceMeter    = (*STNO)(nil)
	_ program.ActionNamer   = (*STNO)(nil)
	_ program.Influencer    = (*STNO)(nil)
	_ program.TopologyAware = (*STNO)(nil)
	_ program.Rootable      = (*STNO)(nil)
)

// NewSTNO layers the orientation protocol over sub. modulus is N (0
// means exactly n). The composed protocol starts with zeroed
// orientation variables; it is self-stabilizing, so any start works —
// use Randomize for adversarial ones.
func NewSTNO(g *graph.Graph, sub TreeSubstrate, modulus int) (*STNO, error) {
	if modulus == 0 {
		modulus = g.N()
	}
	if modulus < g.N() {
		return nil, fmt.Errorf("core: modulus %d below node count %d", modulus, g.N())
	}
	s := &STNO{
		g:       g,
		sub:     sub,
		modulus: modulus,
		weight:  make([]int, g.N()),
		eta:     make([]int, g.N()),
		start:   make([][]int, g.N()),
		pi:      make([][]int, g.N()),
	}
	for v := 0; v < g.N(); v++ {
		deg := g.Ports(graph.NodeID(v))
		s.start[v] = make([]int, deg)
		s.pi[v] = make([]int, deg)
	}
	s.subBallRad = 1 + sub.ParentLocality()
	if s.subBallRad > 1 {
		s.subBall = make([][]graph.NodeID, g.N())
	}
	s.subWit, _ = sub.(program.Witness)
	return s, nil
}

// Name implements program.Protocol.
func (s *STNO) Name() string { return "stno/" + s.sub.Name() }

// Graph implements program.Protocol.
func (s *STNO) Graph() *graph.Graph { return s.g }

// Modulus returns N.
func (s *STNO) Modulus() int { return s.modulus }

// Substrate returns the underlying tree layer.
func (s *STNO) Substrate() TreeSubstrate { return s.sub }

// Names returns a copy of the current η vector.
func (s *STNO) Names() []int {
	out := make([]int, len(s.eta))
	copy(out, s.eta)
	return out
}

// WeightOf returns node v's Weight variable.
func (s *STNO) WeightOf(v graph.NodeID) int { return s.weight[v] }

// Labeling exports the current orientation.
func (s *STNO) Labeling() *sod.Labeling {
	l := &sod.Labeling{
		Modulus: s.modulus,
		Names:   s.Names(),
		Labels:  make([][]int, s.g.N()),
	}
	for v := range s.pi {
		l.Labels[v] = make([]int, len(s.pi[v]))
		copy(l.Labels[v], s.pi[v])
	}
	return l
}

// isRoot is the effective-root test STNO's naming rules anchor at: a
// root takes name 0 and owns no parent slot. Without a bound
// authority it is the substrate's fixed root, bit-identical to the
// pre-failover behaviour.
func (s *STNO) isRoot(v graph.NodeID) bool {
	if s.auth == nil {
		return v == s.sub.Root()
	}
	return s.g.Alive(v) && s.auth.IsRoot(v)
}

// BindRootAuthority implements program.Rootable: the binding is
// forwarded to the tree substrate (which re-anchors its reference
// structure) and recorded here so expectedEta names every effective
// root 0. The witness counters are invalidated — a root flip changes
// clause verdicts without touching any node.
func (s *STNO) BindRootAuthority(a program.RootAuthority) {
	if r, ok := s.sub.(program.Rootable); ok {
		r.BindRootAuthority(a)
	}
	s.auth = a
	if a != nil {
		s.authVer = a.RootsVersion()
	}
	s.wit.Invalidate()
}

// ensureAuth invalidates the witness counters when the bound
// authority's root set moved since they were armed; every legitimacy
// decision funnels through here first (root flips rewrite no node
// state, so nothing else re-arms the counters).
func (s *STNO) ensureAuth() {
	if s.auth == nil || s.authVer == s.auth.RootsVersion() {
		return
	}
	s.authVer = s.auth.RootsVersion()
	s.wit.Invalidate()
}

// expectedWeight is CalcWeight: 1 + Σ_{q∈D_v} Weight_q (1 for leaves).
// D_v is enumerated inline rather than through a shared scratch
// buffer: guards and statements of distinct nodes run concurrently in
// the parallel stepper, so per-instance mutable scratch is off-limits
// on any path Enabled or Execute can reach.
func (s *STNO) expectedWeight(v graph.NodeID) int {
	w := 1
	for _, q := range s.g.Neighbors(v) {
		if q != graph.None && s.sub.Parent(q) == v {
			w += s.weight[q]
		}
	}
	return w
}

// expectedEta returns the name v's parent currently allocates to it
// (Start_{A_v}[v]); ok is false when v is not the root and has no
// valid parent. The root's name is 0.
func (s *STNO) expectedEta(v graph.NodeID) (int, bool) {
	if s.isRoot(v) {
		return 0, true
	}
	p := s.sub.Parent(v)
	if p == graph.None {
		return 0, false
	}
	port, ok := s.g.PortOf(p, v)
	if !ok {
		return 0, false
	}
	return s.start[p][port], true
}

// wantStart computes the Distribute macro's target Start array for v:
// given := η_v; each child q (in port order) receives Start_v[q] :=
// given+1 and given advances by Weight_q; non-child entries are zero.
func (s *STNO) wantStart(v graph.NodeID, out []int) []int {
	out = out[:0]
	given := s.eta[v]
	for _, q := range s.g.Neighbors(v) {
		if q != graph.None && s.sub.Parent(q) == v {
			out = append(out, given+1)
			given += s.weight[q]
		} else {
			// Non-child and hole ports alike hold zero, keeping the
			// array port-aligned.
			out = append(out, 0)
		}
	}
	return out
}

// nameInvalid is InvalidNodelabel ∨ a stale Start array. The
// Distribute comparison runs inline against Start_v instead of
// materialising the target array: it keeps the guard allocation-free
// (it runs on every evaluation of every node) without a shared
// scratch buffer, which concurrent guard evaluations in the parallel
// stepper could not tolerate.
func (s *STNO) nameInvalid(v graph.NodeID) bool {
	if want, ok := s.expectedEta(v); ok && s.eta[v] != want {
		return true
	}
	given := s.eta[v]
	for port, q := range s.g.Neighbors(v) {
		want := 0
		if q != graph.None && s.sub.Parent(q) == v {
			want = given + 1
			given += s.weight[q]
		}
		if s.start[v][port] != want {
			return true
		}
	}
	return false
}

// invalidEdgeLabel is InvalidEdgelabel(p). Hole ports have no edge to
// label and are skipped.
func (s *STNO) invalidEdgeLabel(v graph.NodeID) bool {
	for port, q := range s.g.Neighbors(v) {
		if q == graph.None {
			continue
		}
		if s.pi[v][port] != sod.ChordalLabel(s.eta[v], s.eta[q], s.modulus) {
			return true
		}
	}
	return false
}

// Enabled implements program.Protocol.
func (s *STNO) Enabled(v graph.NodeID, buf []program.ActionID) []program.ActionID {
	buf = s.sub.Enabled(v, buf)
	if s.weight[v] != s.expectedWeight(v) {
		buf = append(buf, ActWeight)
	}
	if s.nameInvalid(v) {
		buf = append(buf, ActName)
	}
	if s.invalidEdgeLabel(v) {
		buf = append(buf, ActSTNOEdge)
	}
	return buf
}

// Execute implements program.Protocol.
func (s *STNO) Execute(v graph.NodeID, a program.ActionID) bool {
	switch a {
	case ActWeight:
		w := s.expectedWeight(v)
		if s.weight[v] == w {
			return false
		}
		s.weight[v] = w
		return true
	case ActName:
		if !s.nameInvalid(v) {
			return false
		}
		if want, ok := s.expectedEta(v); ok {
			s.eta[v] = want
		}
		s.start[v] = s.wantStart(v, s.start[v][:0])
		return true
	case ActSTNOEdge:
		if !s.invalidEdgeLabel(v) {
			return false
		}
		for port, q := range s.g.Neighbors(v) {
			if q == graph.None {
				continue
			}
			s.pi[v][port] = sod.ChordalLabel(s.eta[v], s.eta[q], s.modulus)
		}
		return true
	default:
		return s.sub.Execute(v, a)
	}
}

// Influence implements program.Influencer, documenting the locality
// audit for the composed protocol. STNO's own statements (CalcWeight,
// NameAndDistribute, EdgeLabel) write only Weight_v, η_v, Start_v and
// π_v, all of which are read one hop away at most (a neighbour's
// weight/name guards, the Start entry a child copies its name from,
// the η that edge labels compare against), so those actions influence
// the closed 1-hop neighbourhood. Substrate moves are the non-local
// case: STNO guards consult Parent(q) for each neighbour q, and
// Parent itself may read ParentLocality() hops around q (a DFS tree
// derives the parent from the neighbours' path variables), so a
// substrate move at v reaches guards up to 1+ParentLocality() hops
// out. The balls are precomputed per node on first use.
func (s *STNO) Influence(v graph.NodeID, a program.ActionID, buf []graph.NodeID) []graph.NodeID {
	if a >= ActWeight || s.subBallRad <= 1 {
		return program.InfluenceClosedNeighborhood(s.g, v, buf)
	}
	if s.subBall[v] == nil {
		s.subBall[v] = program.InfluenceBall(s.g, v, s.subBallRad, nil)
	}
	return append(buf, s.subBall[v]...)
}

// LocalityRadius implements program.LocalityRadius for the sharded
// parallel stepper: STNO's guards read up to 1+ParentLocality() hops
// (the substrate-parent argument of the Influence audit above), its
// statements write only v's own variables, and every influence set is
// a ball of that radius, so the declared radius is subBallRad.
func (s *STNO) LocalityRadius() int { return s.subBallRad }

// ActionName implements program.ActionNamer.
func (s *STNO) ActionName(a program.ActionID) string {
	switch a {
	case ActWeight:
		return "CalcWeight"
	case ActName:
		return "NameAndDistribute"
	case ActSTNOEdge:
		return "EdgeLabel"
	}
	return program.ActionName(s.sub, a)
}

// Legitimate implements program.Legitimacy: L_NO = L_ST ∧ SP1 ∧ SP2.
// STNO is silent, so legitimacy is exactly "the substrate is stable
// and no orientation action is enabled": on a stable tree the weight
// equations force the true subtree sizes, the range distribution then
// forces the preorder naming (SP1), and the label equations force SP2.
func (s *STNO) Legitimate() bool {
	s.ensureAuth()
	if !s.sub.Stable() {
		return false
	}
	for v := 0; v < s.g.N(); v++ {
		id := graph.NodeID(v)
		if !s.g.Alive(id) {
			continue
		}
		if s.weight[v] != s.expectedWeight(id) || s.nameInvalid(id) || s.invalidEdgeLabel(id) {
			return false
		}
	}
	return true
}

// TopologyChanged implements program.TopologyAware for the composed
// stack: forward to the substrate, grow node-indexed arrays if the id
// space grew, rebind the port-indexed Start and π arrays of touched
// nodes, and drop the memoised influence balls of every node whose
// ball can contain the changed region. The returned ball is the radius
// 1+ParentLocality() ball around the touched set: STNO guards read
// their neighbours' substrate-derived Parent, which itself reads
// ParentLocality() hops, so a topology event is visible that far out —
// the same widening the Influence declaration applies to substrate
// moves.
func (s *STNO) TopologyChanged(d graph.Delta, buf []graph.NodeID) []graph.NodeID {
	if ta, ok := s.sub.(program.TopologyAware); ok {
		buf = ta.TopologyChanged(d, buf)
	}
	if n := s.g.N(); len(s.eta) < n {
		for len(s.eta) < n {
			s.eta = append(s.eta, 0)
			s.weight = append(s.weight, 0)
			s.start = append(s.start, nil)
			s.pi = append(s.pi, nil)
		}
		if s.subBall != nil {
			s.subBall = append(s.subBall, make([][]graph.NodeID, n-len(s.subBall))...)
		}
		if s.modulus < n {
			s.modulus = n // see the DFTNO hook: the size bound must cover the grown network
		}
		s.wit.Invalidate()
	}
	for _, v := range d.Touched {
		for len(s.start[v]) < s.g.Ports(v) {
			s.start[v] = append(s.start[v], 0)
		}
		for len(s.pi[v]) < s.g.Ports(v) {
			s.pi[v] = append(s.pi[v], 0)
		}
	}
	mark := len(buf)
	for _, v := range d.Touched {
		buf = program.InfluenceBall(s.g, v, s.subBallRad, buf)
	}
	if s.subBall != nil {
		for _, u := range buf[mark:] {
			s.subBall[u] = nil
		}
	}
	return buf
}

// Snapshot implements program.Snapshotter: the substrate snapshot (if
// it supports snapshots) followed by Weight, η, Start and π.
func (s *STNO) Snapshot() []byte {
	var sub []byte
	if sn, ok := s.sub.(program.Snapshotter); ok {
		sub = sn.Snapshot()
	}
	buf := make([]byte, 0, len(sub)+16*s.g.N())
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(sub)))
	buf = append(buf, tmp[:n]...)
	buf = append(buf, sub...)
	put := func(x int) {
		n := binary.PutVarint(tmp[:], int64(x))
		buf = append(buf, tmp[:n]...)
	}
	for v := 0; v < s.g.N(); v++ {
		put(s.weight[v])
		put(s.eta[v])
		for _, x := range s.start[v] {
			put(x)
		}
		for _, x := range s.pi[v] {
			put(x)
		}
	}
	return buf
}

// Restore implements program.Snapshotter.
func (s *STNO) Restore(data []byte) error {
	subLen, n := binary.Uvarint(data)
	if n <= 0 || uint64(len(data)-n) < subLen {
		return errors.New("core: malformed stno snapshot header")
	}
	if sn, ok := s.sub.(program.Snapshotter); ok {
		if err := sn.Restore(data[n : n+int(subLen)]); err != nil {
			return fmt.Errorf("core: restore substrate: %w", err)
		}
	} else if subLen != 0 {
		return errors.New("core: snapshot has substrate bytes but substrate cannot restore")
	}
	rest := data[n+int(subLen):]
	get := func() (int, error) {
		x, n := binary.Varint(rest)
		if n <= 0 {
			return 0, errors.New("core: truncated stno snapshot")
		}
		rest = rest[n:]
		return int(x), nil
	}
	for v := 0; v < s.g.N(); v++ {
		var err error
		if s.weight[v], err = get(); err != nil {
			return err
		}
		if s.eta[v], err = get(); err != nil {
			return err
		}
		for port := range s.start[v] {
			if s.start[v][port], err = get(); err != nil {
				return err
			}
		}
		for port := range s.pi[v] {
			if s.pi[v][port], err = get(); err != nil {
				return err
			}
		}
	}
	if len(rest) != 0 {
		return errors.New("core: trailing stno snapshot bytes")
	}
	return nil
}

// CorruptNode implements program.NodeCorruptor: v's variables take
// arbitrary values of their domains (Weight ∈ 1..N, η ∈ 0..N−1,
// Start and π entries ∈ 0..N−1, per Algorithm 4.1.2's declarations).
func (s *STNO) CorruptNode(v graph.NodeID, rng *rand.Rand) {
	if c, ok := s.sub.(program.NodeCorruptor); ok {
		c.CorruptNode(v, rng)
	}
	s.weight[v] = 1 + rng.Intn(s.modulus)
	s.eta[v] = rng.Intn(s.modulus)
	for port := range s.start[v] {
		s.start[v][port] = rng.Intn(s.modulus)
	}
	for port := range s.pi[v] {
		s.pi[v][port] = rng.Intn(s.modulus)
	}
}

// Randomize implements program.Randomizer.
func (s *STNO) Randomize(rng *rand.Rand) {
	for v := 0; v < s.g.N(); v++ {
		s.CorruptNode(graph.NodeID(v), rng)
	}
}

// OrientationBits returns the orientation layer's own footprint at v:
// Weight and η (⌈log₂N⌉ each) plus the Start array and π
// (Δ_v·⌈log₂N⌉ each).
func (s *STNO) OrientationBits(v graph.NodeID) int {
	lg := program.Log2Ceil(s.modulus)
	return 2*lg + 2*s.g.Degree(v)*lg
}

// StateBits implements program.SpaceMeter: orientation plus substrate.
func (s *STNO) StateBits(v graph.NodeID) int {
	bits := s.OrientationBits(v)
	if m, ok := s.sub.(program.SpaceMeter); ok {
		bits += m.StateBits(v)
	}
	return bits
}

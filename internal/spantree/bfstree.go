package spantree

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"netorient/internal/graph"
	"netorient/internal/program"
)

// BFSTree is the classic self-stabilizing breadth-first spanning tree:
// the root holds distance 0; every other node sets its distance to one
// more than its smallest neighbouring distance (capped at n, the
// "infinite" value) and adopts the first such neighbour in port order
// as its parent. The protocol is silent and self-stabilizing under the
// unfair distributed daemon: distances converge level by level to the
// true BFS distances, after which no action is enabled.
type BFSTree struct {
	g    *graph.Graph
	root graph.NodeID
	auth program.RootAuthority // nil ⇒ the fixed root is the only root

	dist []int
	par  []graph.NodeID

	// wantDist caches the true BFS distances for the legitimacy
	// predicate: single-source from the fixed root, or multi-source
	// from every effective root when an authority is bound. authVer is
	// the RootsVersion the cache was computed at (the staleness key —
	// an IsRoot flip re-anchors distances without touching any node).
	wantDist []int
	authVer  uint64

	// wit is the incremental legitimacy witness (see witness.go).
	wit program.ViolationCounter
}

// ActFix is BFSTree's single action: recompute distance and parent.
const ActFix program.ActionID = 0

// Compile-time interface compliance.
var (
	_ program.Protocol      = (*BFSTree)(nil)
	_ program.Legitimacy    = (*BFSTree)(nil)
	_ program.Snapshotter   = (*BFSTree)(nil)
	_ program.Randomizer    = (*BFSTree)(nil)
	_ program.SpaceMeter    = (*BFSTree)(nil)
	_ program.ActionNamer   = (*BFSTree)(nil)
	_ program.Influencer    = (*BFSTree)(nil)
	_ program.TopologyAware = (*BFSTree)(nil)
	_ program.Rootable      = (*BFSTree)(nil)
	_ Substrate             = (*BFSTree)(nil)
)

// NewBFSTree returns a BFSTree on g rooted at root, starting from the
// all-infinite configuration (a worst case; use Randomize for
// adversarial starts).
func NewBFSTree(g *graph.Graph, root graph.NodeID) (*BFSTree, error) {
	if root < 0 || int(root) >= g.N() {
		return nil, fmt.Errorf("spantree: root %d out of range for %s", root, g)
	}
	t := &BFSTree{
		g:    g,
		root: root,
		dist: make([]int, g.N()),
		par:  make([]graph.NodeID, g.N()),
	}
	for v := range t.dist {
		t.dist[v] = g.N()
		t.par[v] = graph.None
	}
	t.wantDist = t.computeWant()
	return t, nil
}

// computeWant returns the reference distances the legitimacy predicate
// compares against: BFS from the fixed root, or multi-source BFS from
// every live effective root under a bound authority. Unreachable nodes
// get the "infinite" value n — the locally detectable orphan state.
func (t *BFSTree) computeWant() []int {
	n := t.g.N()
	if t.auth == nil {
		want, _ := graph.BFSFrom(t.g, t.root)
		for v := range want {
			if want[v] < 0 {
				want[v] = n
			}
		}
		return want
	}
	want := make([]int, n)
	for v := range want {
		want[v] = -1
	}
	queue := make([]graph.NodeID, 0, n)
	for v := 0; v < n; v++ {
		id := graph.NodeID(v)
		if t.g.Alive(id) && t.auth.IsRoot(id) {
			want[v] = 0
			queue = append(queue, id)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, q := range t.g.Neighbors(u) {
			if q != graph.None && want[q] < 0 {
				want[q] = want[u] + 1
				queue = append(queue, q)
			}
		}
	}
	for v := range want {
		if want[v] < 0 {
			want[v] = n
		}
	}
	return want
}

// setWant installs freshly computed reference distances, invalidating
// the witness when they actually changed.
func (t *BFSTree) setWant(want []int) {
	changed := len(want) != len(t.wantDist)
	if !changed {
		for v := range want {
			if want[v] != t.wantDist[v] {
				changed = true
				break
			}
		}
	}
	t.wantDist = want
	if changed {
		t.wit.Invalidate()
	}
}

// ensureWant lazily recomputes the reference distances when the bound
// authority's root set moved since they were cached.
func (t *BFSTree) ensureWant() {
	if t.auth == nil || t.authVer == t.auth.RootsVersion() {
		return
	}
	t.authVer = t.auth.RootsVersion()
	t.setWant(t.computeWant())
}

// BindRootAuthority implements program.Rootable: the root test in
// desired and Parent defers to the authority, and the reference
// distances become the multi-source BFS from the effective root set,
// re-derived lazily whenever RootsVersion moves. A nil authority keeps
// the fixed-root behaviour bit-exact.
func (t *BFSTree) BindRootAuthority(a program.RootAuthority) {
	t.auth = a
	if a != nil {
		t.authVer = a.RootsVersion()
	}
	t.setWant(t.computeWant())
}

// isRoot reports whether v currently acts as a root.
func (t *BFSTree) isRoot(v graph.NodeID) bool {
	if t.auth == nil {
		return v == t.root
	}
	return t.auth.IsRoot(v)
}

// Name implements program.Protocol.
func (t *BFSTree) Name() string { return "bfstree" }

// Graph implements program.Protocol.
func (t *BFSTree) Graph() *graph.Graph { return t.g }

// Root implements Substrate.
func (t *BFSTree) Root() graph.NodeID { return t.root }

// Parent implements Substrate.
func (t *BFSTree) Parent(v graph.NodeID) graph.NodeID {
	if t.isRoot(v) {
		return graph.None
	}
	return t.par[v]
}

// ParentLocality implements Substrate: par[v] is v's own variable.
func (t *BFSTree) ParentLocality() int { return 0 }

// Influence implements program.Influencer, documenting the locality
// audit: ActFix writes only dist[v] and par[v], and the guard at any
// node reads only its own and its neighbours' distances, so a move at
// v can change guards in the closed 1-hop neighbourhood only — the
// scheduler's default, declared here explicitly.
func (t *BFSTree) Influence(v graph.NodeID, _ program.ActionID, buf []graph.NodeID) []graph.NodeID {
	return program.InfluenceClosedNeighborhood(t.g, v, buf)
}

// Dist returns v's current distance variable.
func (t *BFSTree) Dist(v graph.NodeID) int { return t.dist[v] }

// desired returns the distance and parent v's action would write.
func (t *BFSTree) desired(v graph.NodeID) (int, graph.NodeID) {
	if t.isRoot(v) {
		return 0, graph.None
	}
	min := t.g.N()
	for _, q := range t.g.Neighbors(v) {
		if q != graph.None && t.dist[q] < min {
			min = t.dist[q]
		}
	}
	if min >= t.g.N() {
		return t.g.N(), graph.None
	}
	d := min + 1
	if d > t.g.N() {
		d = t.g.N()
	}
	for _, q := range t.g.Neighbors(v) {
		if q != graph.None && t.dist[q] == min {
			return d, q
		}
	}
	return d, graph.None
}

// Enabled implements program.Protocol.
func (t *BFSTree) Enabled(v graph.NodeID, buf []program.ActionID) []program.ActionID {
	d, p := t.desired(v)
	if t.dist[v] != d || t.par[v] != p {
		buf = append(buf, ActFix)
	}
	return buf
}

// Execute implements program.Protocol.
func (t *BFSTree) Execute(v graph.NodeID, a program.ActionID) bool {
	if a != ActFix {
		return false
	}
	d, p := t.desired(v)
	if t.dist[v] == d && t.par[v] == p {
		return false
	}
	t.dist[v] = d
	t.par[v] = p
	return true
}

// ActionName implements program.ActionNamer.
func (t *BFSTree) ActionName(a program.ActionID) string { return "FixDist" }

// Stable implements Substrate.
func (t *BFSTree) Stable() bool { return t.Legitimate() }

// Legitimate implements program.Legitimacy: every live node holds the
// true BFS distance and the first minimal neighbour as parent. On a
// disconnected graph the true distance of a node whose component lost
// the root is the "infinite" value n with no parent — any smaller
// value strictly increases under desired, so the orphan fixpoint is
// all-n: a locally detectable orphan state. Under a bound authority
// the reference is the multi-source BFS from the effective root set,
// so a component with an acting root converges to *local* legitimacy
// instead of the degraded all-n fixpoint.
func (t *BFSTree) Legitimate() bool {
	t.ensureWant()
	for v := 0; v < t.g.N(); v++ {
		if !t.g.Alive(graph.NodeID(v)) {
			continue
		}
		d, p := t.desired(graph.NodeID(v))
		if t.dist[v] != d || t.par[v] != p || t.dist[v] != t.wantDist[v] {
			return false
		}
	}
	return true
}

// TopologyChanged implements program.TopologyAware: clamp parents that
// stopped being neighbours and out-of-range distances at the touched
// nodes, and recompute the reference BFS distances the legitimacy
// predicate compares against (O(n+m) — the distances are a global
// derived fact; the guards themselves stay 1-hop local, so the
// returned influence ball is the touched set's closed neighbourhoods).
// When the reference distances actually changed, the witness counters
// built on them are invalidated and lazily re-arm.
func (t *BFSTree) TopologyChanged(d graph.Delta, buf []graph.NodeID) []graph.NodeID {
	if n := t.g.N(); len(t.dist) < n {
		for len(t.dist) < n {
			t.dist = append(t.dist, n)
			t.par = append(t.par, graph.None)
		}
		t.wit.Invalidate()
	}
	for _, v := range d.Touched {
		if t.par[v] != graph.None && !t.g.HasEdge(v, t.par[v]) {
			t.par[v] = graph.None
		}
		if t.dist[v] > t.g.N() {
			t.dist[v] = t.g.N()
		}
	}
	if t.auth != nil {
		t.authVer = t.auth.RootsVersion()
	}
	t.setWant(t.computeWant())
	for _, v := range d.Touched {
		buf = program.InfluenceClosedNeighborhood(t.g, v, buf)
	}
	return buf
}

// Snapshot implements program.Snapshotter.
func (t *BFSTree) Snapshot() []byte {
	buf := make([]byte, 0, t.g.N()*8)
	var tmp [4]byte
	for v := 0; v < t.g.N(); v++ {
		binary.LittleEndian.PutUint32(tmp[:], uint32(int32(t.dist[v])))
		buf = append(buf, tmp[:]...)
		binary.LittleEndian.PutUint32(tmp[:], uint32(int32(t.par[v])))
		buf = append(buf, tmp[:]...)
	}
	return buf
}

// Restore implements program.Snapshotter.
func (t *BFSTree) Restore(data []byte) error {
	if len(data) != t.g.N()*8 {
		return fmt.Errorf("spantree: snapshot length %d, want %d", len(data), t.g.N()*8)
	}
	off := 0
	for v := 0; v < t.g.N(); v++ {
		t.dist[v] = int(int32(binary.LittleEndian.Uint32(data[off:])))
		off += 4
		t.par[v] = graph.NodeID(int32(binary.LittleEndian.Uint32(data[off:])))
		off += 4
		if t.dist[v] < 0 {
			t.dist[v] = 0
		}
		if t.dist[v] > t.g.N() {
			t.dist[v] = t.g.N()
		}
		if t.par[v] != graph.None && !t.g.HasEdge(graph.NodeID(v), t.par[v]) {
			t.par[v] = graph.None
		}
	}
	return nil
}

// CorruptNode implements program.NodeCorruptor.
func (t *BFSTree) CorruptNode(v graph.NodeID, rng *rand.Rand) {
	t.dist[v] = rng.Intn(t.g.N() + 1)
	if rng.Intn(2) == 0 || t.g.Ports(v) == 0 {
		t.par[v] = graph.None
	} else {
		// Drawing over the port space keeps seeded streams identical
		// on hole-free graphs; a draw landing on a hole yields None.
		t.par[v] = t.g.Neighbor(v, rng.Intn(t.g.Ports(v)))
	}
}

// Randomize implements program.Randomizer.
func (t *BFSTree) Randomize(rng *rand.Rand) {
	for v := 0; v < t.g.N(); v++ {
		t.CorruptNode(graph.NodeID(v), rng)
	}
}

// StateBits implements program.SpaceMeter: dist costs ⌈log₂(N+1)⌉
// bits, the parent pointer ⌈log₂(Δ_v+1)⌉ — the O(Δ×log N) extra space
// Chapter 5 charges STNO for maintaining the tree comes from the
// orientation layer's per-child Start array, not from this substrate.
func (t *BFSTree) StateBits(v graph.NodeID) int {
	return program.Log2Ceil(t.g.N()+1) + program.Log2Ceil(t.g.Degree(v)+2)
}

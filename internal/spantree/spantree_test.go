package spantree

import (
	"math/rand"
	"testing"

	"netorient/internal/check"
	"netorient/internal/daemon"
	"netorient/internal/graph"
	"netorient/internal/program"
)

func testGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"path5":    graph.Path(5),
		"ring6":    graph.Ring(6),
		"star6":    graph.Star(6),
		"clique5":  graph.Complete(5),
		"grid3x3":  graph.Grid(3, 3),
		"tree7":    graph.KAryTree(7, 2),
		"lollipop": graph.Lollipop(4, 3),
		"wheel7":   graph.Wheel(7),
	}
}

func TestBFSTreeConvergesToBFSDistances(t *testing.T) {
	for name, g := range testGraphs() {
		t.Run(name, func(t *testing.T) {
			tr, err := NewBFSTree(g, 0)
			if err != nil {
				t.Fatal(err)
			}
			sys := program.NewSystem(tr, daemon.NewRoundRobin())
			res, err := sys.RunUntilLegitimate(int64(1000 * g.N() * g.N()))
			if err != nil || !res.Converged {
				t.Fatalf("no convergence: %v %+v", err, res)
			}
			wantDist, _ := graph.BFSFrom(g, 0)
			for v := 0; v < g.N(); v++ {
				if tr.Dist(graph.NodeID(v)) != wantDist[v] {
					t.Errorf("dist[%d] = %d, want %d", v, tr.Dist(graph.NodeID(v)), wantDist[v])
				}
			}
			if !graph.SpanningParent(g, ParentVector(g, tr), 0) {
				t.Error("parent pointers do not form a spanning tree")
			}
			if !sys.Silent() {
				t.Error("BFS tree not silent after stabilization")
			}
		})
	}
}

func TestBFSTreeConvergesFromRandomStates(t *testing.T) {
	daemons := map[string]func(int64) program.Daemon{
		"central":     func(s int64) program.Daemon { return daemon.NewCentral(s) },
		"distributed": func(s int64) program.Daemon { return daemon.NewDistributed(s, 0.5) },
		"synchronous": func(s int64) program.Daemon { return daemon.NewSynchronous(s) },
	}
	for name, g := range testGraphs() {
		for dn, mk := range daemons {
			t.Run(name+"/"+dn, func(t *testing.T) {
				tr, err := NewBFSTree(g, 0)
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(8))
				for trial := 0; trial < 15; trial++ {
					tr.Randomize(rng)
					sys := program.NewSystem(tr, mk(int64(trial)))
					res, err := sys.RunUntilLegitimate(int64(2000 * g.N()))
					if err != nil || !res.Converged {
						t.Fatalf("trial %d: %v %+v", trial, err, res)
					}
				}
			})
		}
	}
}

// TestBFSTreeModelCheck machine-verifies self-stabilization of the
// BFS tree on small graphs.
func TestBFSTreeModelCheck(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"path3":    graph.Path(3),
		"triangle": graph.Complete(3),
		"path4":    graph.Path(4),
		"ring4":    graph.Ring(4),
		"star4":    graph.Star(4),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			tr, err := NewBFSTree(g, 0)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(4))
			seeds, err := check.RandomSeeds(tr, 200, rng)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := check.Verify(tr, check.Options{Seeds: seeds, MaxStates: 2_000_000})
			if err != nil {
				t.Fatalf("self-stabilization violated: %v", err)
			}
			t.Logf("%s: %d states (%d legitimate), worst distance %d",
				name, rep.States, rep.LegitStates, rep.MaxStepsToLegit)
		})
	}
}

func TestBFSTreeStabilizesInDiameterRounds(t *testing.T) {
	// The classic bound: O(D) rounds under the synchronous daemon.
	g := graph.Path(20)
	tr, err := NewBFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	tr.Randomize(rng)
	sys := program.NewSystem(tr, daemon.NewSynchronous(2))
	res, err := sys.RunUntilLegitimate(1 << 20)
	if err != nil || !res.Converged {
		t.Fatalf("no convergence: %v %+v", err, res)
	}
	if res.Rounds > int64(3*g.N()) {
		t.Errorf("took %d rounds, want O(n)=%d", res.Rounds, 3*g.N())
	}
}

func TestDFSTreeConvergesToDFSTree(t *testing.T) {
	for name, g := range testGraphs() {
		t.Run(name, func(t *testing.T) {
			tr, err := NewDFSTree(g, 0)
			if err != nil {
				t.Fatal(err)
			}
			sys := program.NewSystem(tr, daemon.NewRoundRobin())
			res, err := sys.RunUntilLegitimate(int64(2000 * g.N() * g.N()))
			if err != nil || !res.Converged {
				t.Fatalf("no convergence: %v %+v", err, res)
			}
			_, wantParent := graph.DFSPreorder(g, 0)
			for v := 1; v < g.N(); v++ {
				if got := tr.Parent(graph.NodeID(v)); got != wantParent[v] {
					t.Errorf("parent[%d] = %d, want DFS parent %d", v, got, wantParent[v])
				}
			}
			if !sys.Silent() {
				t.Error("DFS tree not silent after stabilization")
			}
		})
	}
}

func TestDFSTreeConvergesFromRandomStates(t *testing.T) {
	for name, g := range testGraphs() {
		t.Run(name, func(t *testing.T) {
			tr, err := NewDFSTree(g, 0)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(16))
			for trial := 0; trial < 10; trial++ {
				tr.Randomize(rng)
				sys := program.NewSystem(tr, daemon.NewCentral(int64(trial)))
				res, err := sys.RunUntilLegitimate(int64(4000 * g.N()))
				if err != nil || !res.Converged {
					t.Fatalf("trial %d: %v %+v", trial, err, res)
				}
			}
		})
	}
}

// TestDFSTreeModelCheck machine-verifies self-stabilization of the
// DFS tree on small graphs.
func TestDFSTreeModelCheck(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"path3":    graph.Path(3),
		"triangle": graph.Complete(3),
		"star4":    graph.Star(4),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			tr, err := NewDFSTree(g, 0)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(6))
			seeds, err := check.RandomSeeds(tr, 150, rng)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := check.Verify(tr, check.Options{Seeds: seeds, MaxStates: 2_000_000})
			if err != nil {
				t.Fatalf("self-stabilization violated: %v", err)
			}
			t.Logf("%s: %d states (%d legitimate), worst distance %d",
				name, rep.States, rep.LegitStates, rep.MaxStepsToLegit)
		})
	}
}

func TestDFSTreeLexLess(t *testing.T) {
	cases := []struct {
		a, b []int
		want bool
	}{
		{[]int{0}, []int{1}, true},
		{[]int{1}, []int{0}, false},
		{[]int{0, 5}, []int{1}, true},
		{[]int{0}, []int{0, 1}, true},  // prefix smaller
		{[]int{0, 1}, []int{0}, false}, // extension larger
		{nil, []int{9, 9, 9}, false},   // ⊥ greatest
		{[]int{9, 9, 9}, nil, true},
		{nil, nil, false},
		{[]int{}, []int{0}, true}, // root path smallest
		{[]int{2, 3}, []int{2, 3}, false},
	}
	for i, c := range cases {
		if got := lexLess(c.a, c.b); got != c.want {
			t.Errorf("case %d: lexLess(%v,%v) = %v, want %v", i, c.a, c.b, got, c.want)
		}
	}
}

func TestOracleSubstrate(t *testing.T) {
	g := graph.Grid(3, 3)
	o, err := NewDFSOracle(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Stable() || !o.Legitimate() {
		t.Fatal("oracle must be stable")
	}
	_, wantParent := graph.DFSPreorder(g, 0)
	for v := 0; v < g.N(); v++ {
		if o.Parent(graph.NodeID(v)) != wantParent[v] {
			t.Errorf("oracle parent[%d] = %d, want %d", v, o.Parent(graph.NodeID(v)), wantParent[v])
		}
	}
	var buf []program.ActionID
	for v := 0; v < g.N(); v++ {
		if len(o.Enabled(graph.NodeID(v), buf[:0])) != 0 {
			t.Error("oracle has enabled actions")
		}
	}
	// Invalid parent vectors are rejected.
	bad := make([]graph.NodeID, g.N())
	for i := range bad {
		bad[i] = graph.None
	}
	if _, err := NewOracle(g, 0, bad); err == nil {
		t.Error("expected error for non-spanning parent vector")
	}
}

func TestChildrenAreInPortOrder(t *testing.T) {
	g := graph.Star(6)
	o, err := NewBFSOracle(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	kids := Children(g, o, 0, nil)
	if len(kids) != 5 {
		t.Fatalf("root of star has %d children, want 5", len(kids))
	}
	for i, q := range kids {
		if q != g.Neighbor(0, i) {
			t.Errorf("child %d = %d, want port order %d", i, q, g.Neighbor(0, i))
		}
	}
}

package spantree

import (
	"netorient/internal/graph"
	"netorient/internal/program"
)

// This file implements program.Witness for both self-stabilizing tree
// substrates. Their legitimacy predicates are plain per-node
// conjunctions, so each witness is one program.ViolationCounter: node
// v contributes a violation iff its clause of Legitimate() fails, and
// the clause reads at most v's closed 1-hop neighbourhood — within
// both protocols' declared influence sets, so the runner's dirty-set
// refreshes keep the counter exact.

// Compile-time interface compliance.
var (
	_ program.Witness = (*BFSTree)(nil)
	_ program.Witness = (*DFSTree)(nil)
	_ program.Witness = (*Oracle)(nil)
)

// bfsViolates is BFSTree's Legitimate() clause at v: the action is
// enabled, or the distance disagrees with the true BFS distance. Dead
// nodes (topology churn) are outside the predicate.
func (t *BFSTree) bfsViolates(v graph.NodeID) bool {
	if !t.g.Alive(v) {
		return false
	}
	d, p := t.desired(v)
	return t.dist[v] != d || t.par[v] != p || t.dist[v] != t.wantDist[v]
}

// WitnessReset implements program.Witness.
func (t *BFSTree) WitnessReset() { t.wit.Reset(t.g.N(), t.bfsViolates) }

// WitnessRefresh implements program.Witness.
func (t *BFSTree) WitnessRefresh(v graph.NodeID) {
	if t.wit.Valid() {
		t.wit.Refresh(v, t.bfsViolates(v))
	}
}

// WitnessLegitimate implements program.Witness. ensureWant first: an
// IsRoot flip under a bound authority re-anchors the reference
// distances without touching any node, invalidating the counters.
func (t *BFSTree) WitnessLegitimate() bool {
	t.ensureWant()
	if !t.wit.Valid() {
		t.WitnessReset()
	}
	return t.wit.Zero()
}

// dfsViolates is DFSTree's Legitimate() clause at v: the path differs
// from the true minimal path. It reads only v's own variable. Dead
// nodes are outside the predicate.
func (t *DFSTree) dfsViolates(v graph.NodeID) bool {
	if !t.g.Alive(v) {
		return false
	}
	return !pathEqual(t.path[v], t.want[v])
}

// WitnessReset implements program.Witness.
func (t *DFSTree) WitnessReset() { t.wit.Reset(t.g.N(), t.dfsViolates) }

// WitnessRefresh implements program.Witness.
func (t *DFSTree) WitnessRefresh(v graph.NodeID) {
	if t.wit.Valid() {
		t.wit.Refresh(v, t.dfsViolates(v))
	}
}

// WitnessLegitimate implements program.Witness; ensureWant as for the
// BFS tree.
func (t *DFSTree) WitnessLegitimate() bool {
	t.ensureWant()
	if !t.wit.Valid() {
		t.WitnessReset()
	}
	return t.wit.Zero()
}

// The fixed Oracle is legitimate by construction; its witness is the
// constant true, giving layers composed over it an O(1) substrate
// verdict.

// WitnessReset implements program.Witness.
func (o *Oracle) WitnessReset() {}

// WitnessRefresh implements program.Witness.
func (o *Oracle) WitnessRefresh(graph.NodeID) {}

// WitnessLegitimate implements program.Witness.
func (o *Oracle) WitnessLegitimate() bool { return true }

package spantree_test

import (
	"math/rand"
	"testing"

	"netorient/internal/daemon"
	"netorient/internal/graph"
	"netorient/internal/program"
	"netorient/internal/spantree"
)

// TestTreeWitnessesMatchLegitimate audits both tree substrates'
// incremental legitimacy witnesses against their O(n) predicates on
// random executions across topologies and daemons.
func TestTreeWitnessesMatchLegitimate(t *testing.T) {
	t.Parallel()
	graphs := map[string]*graph.Graph{
		"ring8":    graph.Ring(8),
		"grid3x4":  graph.Grid(3, 4),
		"lollipop": graph.Lollipop(4, 4),
	}
	protos := map[string]func(g *graph.Graph) (program.Protocol, error){
		"bfstree": func(g *graph.Graph) (program.Protocol, error) { return spantree.NewBFSTree(g, 0) },
		"dfstree": func(g *graph.Graph) (program.Protocol, error) { return spantree.NewDFSTree(g, 0) },
	}
	daemons := map[string]func(int64) program.Daemon{
		"central":     func(s int64) program.Daemon { return daemon.NewCentral(s) },
		"distributed": func(s int64) program.Daemon { return daemon.NewDistributed(s, 0.5) },
	}
	configs, steps := 10, 400
	if testing.Short() {
		configs, steps = 3, 150
	}
	for gname, g := range graphs {
		for pname, build := range protos {
			for dname, mk := range daemons {
				g, build, mk := g, build, mk
				t.Run(gname+"/"+pname+"/"+dname, func(t *testing.T) {
					t.Parallel()
					p, err := build(g)
					if err != nil {
						t.Fatal(err)
					}
					rng := rand.New(rand.NewSource(17))
					if err := program.CheckWitness(p, configs, steps, func() program.Daemon { return mk(17) }, rng); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}

package spantree

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"netorient/internal/graph"
	"netorient/internal/program"
)

// DFSTree is a Collin–Dolev style self-stabilizing depth-first
// spanning tree. Every node maintains the port-path from the root that
// is minimal in lexicographic order (element-wise on outgoing port
// numbers, with a proper prefix smaller than its extensions); the
// minimal path to each node is exactly the path the deterministic
// depth-first traversal first reaches it by, so the resulting parent
// pointers form the DFS tree of the network in port order — the tree
// under which STNO reproduces DFTNO's naming (Chapter 5).
//
// The protocol is a monotone fixpoint computation: each node
// repeatedly recomputes the minimum over its neighbours' paths
// extended by one hop; paths longer than n−1 hops are invalid (⊥).
// It is silent and self-stabilizing under the unfair daemon.
type DFSTree struct {
	g    *graph.Graph
	root graph.NodeID
	auth program.RootAuthority // nil ⇒ the fixed root is the only root

	// path[v] is v's current port-path; nil means ⊥ (invalid).
	path [][]int

	// want caches the true minimal paths for the legitimacy predicate:
	// one reference traversal per effective root when an authority is
	// bound, re-derived lazily when its RootsVersion moves past authVer.
	want    [][]int
	authVer uint64

	// wit is the incremental legitimacy witness (see witness.go).
	wit program.ViolationCounter
}

// Compile-time interface compliance.
var (
	_ program.Protocol      = (*DFSTree)(nil)
	_ program.Legitimacy    = (*DFSTree)(nil)
	_ program.Snapshotter   = (*DFSTree)(nil)
	_ program.Randomizer    = (*DFSTree)(nil)
	_ program.SpaceMeter    = (*DFSTree)(nil)
	_ program.ActionNamer   = (*DFSTree)(nil)
	_ program.Influencer    = (*DFSTree)(nil)
	_ program.TopologyAware = (*DFSTree)(nil)
	_ program.Rootable      = (*DFSTree)(nil)
	_ Substrate             = (*DFSTree)(nil)
)

// NewDFSTree returns a DFSTree on g rooted at root, starting from the
// all-⊥ configuration.
func NewDFSTree(g *graph.Graph, root graph.NodeID) (*DFSTree, error) {
	if root < 0 || int(root) >= g.N() {
		return nil, fmt.Errorf("spantree: root %d out of range for %s", root, g)
	}
	t := &DFSTree{
		g:    g,
		root: root,
		path: make([][]int, g.N()),
	}
	t.want = referencePaths(g, root)
	return t, nil
}

// referencePaths computes the true lexicographically-minimal port
// paths by simulating the deterministic DFS traversal: the first path
// the traversal reaches a node by is its minimal path.
func referencePaths(g *graph.Graph, root graph.NodeID) [][]int {
	want := make([][]int, g.N())
	visited := make([]bool, g.N())
	visited[root] = true
	want[root] = []int{}
	var visit func(v graph.NodeID)
	visit = func(v graph.NodeID) {
		for port, q := range g.Neighbors(v) {
			if q == graph.None || visited[q] {
				continue
			}
			visited[q] = true
			p := make([]int, len(want[v])+1)
			copy(p, want[v])
			p[len(p)-1] = port
			want[q] = p
			visit(q)
		}
	}
	visit(root)
	return want
}

// computeWant returns the reference minimal paths: from the fixed
// root, or one traversal per live effective root when an authority is
// bound (components are disjoint, so the traversals never collide; a
// transient multi-root component keeps only the first root's paths and
// therefore never reads legitimate, matching the failover contract).
func (t *DFSTree) computeWant() [][]int {
	if t.auth == nil {
		return referencePaths(t.g, t.root)
	}
	want := make([][]int, t.g.N())
	visited := make([]bool, t.g.N())
	var visit func(v graph.NodeID)
	visit = func(v graph.NodeID) {
		for port, q := range t.g.Neighbors(v) {
			if q == graph.None || visited[q] {
				continue
			}
			visited[q] = true
			p := make([]int, len(want[v])+1)
			copy(p, want[v])
			p[len(p)-1] = port
			want[q] = p
			visit(q)
		}
	}
	for v := 0; v < t.g.N(); v++ {
		id := graph.NodeID(v)
		if !t.g.Alive(id) || !t.auth.IsRoot(id) || visited[v] {
			continue
		}
		visited[v] = true
		want[v] = []int{}
		visit(id)
	}
	return want
}

// setWant installs freshly computed reference paths, invalidating the
// witness when they actually changed.
func (t *DFSTree) setWant(want [][]int) {
	changed := len(want) != len(t.want)
	if !changed {
		for v := range want {
			if !pathEqual(want[v], t.want[v]) {
				changed = true
				break
			}
		}
	}
	t.want = want
	if changed {
		t.wit.Invalidate()
	}
}

// ensureWant lazily recomputes the reference paths when the bound
// authority's root set moved since they were cached.
func (t *DFSTree) ensureWant() {
	if t.auth == nil || t.authVer == t.auth.RootsVersion() {
		return
	}
	t.authVer = t.auth.RootsVersion()
	t.setWant(t.computeWant())
}

// BindRootAuthority implements program.Rootable; a nil authority keeps
// the fixed-root behaviour bit-exact.
func (t *DFSTree) BindRootAuthority(a program.RootAuthority) {
	t.auth = a
	if a != nil {
		t.authVer = a.RootsVersion()
	}
	t.setWant(t.computeWant())
}

// isRoot reports whether v currently acts as a root.
func (t *DFSTree) isRoot(v graph.NodeID) bool {
	if t.auth == nil {
		return v == t.root
	}
	return t.auth.IsRoot(v)
}

// lexLess compares two paths; nil (⊥) is greater than everything, and
// a proper prefix is smaller than its extensions.
func lexLess(a, b []int) bool {
	if a == nil {
		return false
	}
	if b == nil {
		return true
	}
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func pathEqual(a, b []int) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// desired returns the path v's action would write: the root writes the
// empty path; every other node writes the minimal one-hop extension of
// a neighbour's path, or ⊥ when every candidate is ⊥ or too long.
func (t *DFSTree) desired(v graph.NodeID) []int {
	if t.isRoot(v) {
		return []int{}
	}
	var best []int
	for _, q := range t.g.Neighbors(v) {
		if q == graph.None {
			continue
		}
		pq := t.path[q]
		if pq == nil || len(pq)+1 > t.g.N()-1 {
			continue
		}
		port, _ := t.g.PortOf(q, v)
		cand := make([]int, len(pq)+1)
		copy(cand, pq)
		cand[len(cand)-1] = port
		if lexLess(cand, best) {
			best = cand
		}
	}
	return best
}

// Enabled implements program.Protocol.
func (t *DFSTree) Enabled(v graph.NodeID, buf []program.ActionID) []program.ActionID {
	if !pathEqual(t.path[v], t.desired(v)) {
		buf = append(buf, ActFix)
	}
	return buf
}

// Execute implements program.Protocol.
func (t *DFSTree) Execute(v graph.NodeID, a program.ActionID) bool {
	if a != ActFix {
		return false
	}
	d := t.desired(v)
	if pathEqual(t.path[v], d) {
		return false
	}
	t.path[v] = d
	return true
}

// Name implements program.Protocol.
func (t *DFSTree) Name() string { return "dfstree" }

// Graph implements program.Protocol.
func (t *DFSTree) Graph() *graph.Graph { return t.g }

// ActionName implements program.ActionNamer.
func (t *DFSTree) ActionName(a program.ActionID) string { return "FixPath" }

// Root implements Substrate.
func (t *DFSTree) Root() graph.NodeID { return t.root }

// Parent implements Substrate: the neighbour whose path v's path
// extends, i.e. the neighbour q with path_v = path_q ++ [port of v at
// q]; None while v's path is ⊥ or inconsistent.
func (t *DFSTree) Parent(v graph.NodeID) graph.NodeID {
	if t.isRoot(v) || t.path[v] == nil || len(t.path[v]) == 0 {
		return graph.None
	}
	last := t.path[v][len(t.path[v])-1]
	prefix := t.path[v][:len(t.path[v])-1]
	for _, q := range t.g.Neighbors(v) {
		if q == graph.None || t.path[q] == nil || len(t.path[q]) != len(prefix) {
			continue
		}
		port, _ := t.g.PortOf(q, v)
		if port == last && pathEqual(t.path[q], prefix) {
			return q
		}
	}
	return graph.None
}

// ParentLocality implements Substrate: Parent(v) is derived by
// matching the path variables of v's neighbours, so it reads one hop
// around v. Layers whose guards call Parent on their neighbours (STNO)
// therefore see this substrate's moves two hops away and must widen
// their influence declaration accordingly.
func (t *DFSTree) ParentLocality() int { return 1 }

// Influence implements program.Influencer, documenting the locality
// audit for the protocol run stand-alone: ActFix writes only path[v],
// and the guard at any node compares its own path against the minimal
// extension of its neighbours' paths, so a move at v changes guards in
// the closed 1-hop neighbourhood only. (The non-local part of this
// substrate is the derived Parent function, covered by ParentLocality,
// not its own guards.)
func (t *DFSTree) Influence(v graph.NodeID, _ program.ActionID, buf []graph.NodeID) []graph.NodeID {
	return program.InfluenceClosedNeighborhood(t.g, v, buf)
}

// Path returns v's current port-path (nil for ⊥). The slice is shared;
// callers must not modify it.
func (t *DFSTree) Path(v graph.NodeID) []int { return t.path[v] }

// Stable implements Substrate.
func (t *DFSTree) Stable() bool { return t.Legitimate() }

// Legitimate implements program.Legitimacy: every live node holds the
// true minimal path (per effective root under a bound authority).
func (t *DFSTree) Legitimate() bool {
	t.ensureWant()
	for v := 0; v < t.g.N(); v++ {
		if !t.g.Alive(graph.NodeID(v)) {
			continue
		}
		if !pathEqual(t.path[v], t.want[v]) {
			return false
		}
	}
	return true
}

// TopologyChanged implements program.TopologyAware. The per-node state
// is a port-path compared by value, so nothing can dangle — desired()
// recomputes against the current adjacency and hole ports are skipped
// — and rebinding is only recomputing the reference minimal paths the
// legitimacy predicate compares against (invalidating the witness when
// they changed). Guards read one hop, so the influence ball is the
// touched set's closed neighbourhoods. Note the *derived* Parent
// function still reads ParentLocality() hops; layers over this
// substrate widen their own balls accordingly, exactly as they do for
// moves.
func (t *DFSTree) TopologyChanged(d graph.Delta, buf []graph.NodeID) []graph.NodeID {
	if n := t.g.N(); len(t.path) < n {
		t.path = append(t.path, make([][]int, n-len(t.path))...)
		t.wit.Invalidate()
	}
	if t.auth != nil {
		t.authVer = t.auth.RootsVersion()
	}
	t.setWant(t.computeWant())
	for _, v := range d.Touched {
		buf = program.InfluenceClosedNeighborhood(t.g, v, buf)
	}
	return buf
}

// Snapshot implements program.Snapshotter.
func (t *DFSTree) Snapshot() []byte {
	var buf []byte
	var tmp [4]byte
	for v := 0; v < t.g.N(); v++ {
		if t.path[v] == nil {
			binary.LittleEndian.PutUint32(tmp[:], uint32(0xffffffff))
			buf = append(buf, tmp[:]...)
			continue
		}
		binary.LittleEndian.PutUint32(tmp[:], uint32(len(t.path[v])))
		buf = append(buf, tmp[:]...)
		for _, p := range t.path[v] {
			binary.LittleEndian.PutUint32(tmp[:], uint32(int32(p)))
			buf = append(buf, tmp[:]...)
		}
	}
	return buf
}

// Restore implements program.Snapshotter.
func (t *DFSTree) Restore(data []byte) error {
	off := 0
	read := func() (uint32, error) {
		if off+4 > len(data) {
			return 0, fmt.Errorf("spantree: truncated snapshot")
		}
		x := binary.LittleEndian.Uint32(data[off:])
		off += 4
		return x, nil
	}
	for v := 0; v < t.g.N(); v++ {
		l, err := read()
		if err != nil {
			return err
		}
		if l == 0xffffffff {
			t.path[v] = nil
			continue
		}
		if int(l) > t.g.N() {
			return fmt.Errorf("spantree: path length %d too large", l)
		}
		p := make([]int, l)
		for i := range p {
			x, err := read()
			if err != nil {
				return err
			}
			p[i] = int(int32(x))
		}
		t.path[v] = p
	}
	if off != len(data) {
		return fmt.Errorf("spantree: trailing snapshot bytes")
	}
	return nil
}

// CorruptNode implements program.NodeCorruptor: v takes a random
// (possibly infeasible) path of bounded length, or ⊥.
func (t *DFSTree) CorruptNode(v graph.NodeID, rng *rand.Rand) {
	maxLen := t.g.N() - 1
	if maxLen < 1 {
		maxLen = 1
	}
	if rng.Intn(3) == 0 {
		t.path[v] = nil
		return
	}
	l := rng.Intn(maxLen + 1)
	p := make([]int, l)
	maxPort := t.g.MaxDegree()
	if maxPort < 1 {
		maxPort = 1
	}
	for i := range p {
		p[i] = rng.Intn(maxPort)
	}
	t.path[v] = p
}

// Randomize implements program.Randomizer.
func (t *DFSTree) Randomize(rng *rand.Rand) {
	for v := 0; v < t.g.N(); v++ {
		t.CorruptNode(graph.NodeID(v), rng)
	}
}

// StateBits implements program.SpaceMeter: a path stores up to n−1
// port numbers — the O(n·log Δ) cost known for Collin–Dolev trees.
func (t *DFSTree) StateBits(v graph.NodeID) int {
	return (t.g.N() - 1) * program.Log2Ceil(t.g.MaxDegree()+1)
}

// Package spantree implements the spanning-tree substrates that STNO
// (Chapter 4 of the paper) is layered on. The paper allows "any
// self-stabilizing spanning tree construction algorithm"; this package
// provides three:
//
//   - BFSTree — the classic min-distance breadth-first spanning tree
//     (Chen–Yu–Huang / Dolev–Israeli–Moran style), self-stabilizing
//     under the unfair daemon, which is exactly the daemon the paper
//     prescribes for STNO's substrate.
//   - DFSTree — a Collin–Dolev style lexicographic depth-first
//     spanning tree, used to reproduce the paper's Chapter 5
//     observation that STNO over a DFS tree names nodes exactly like
//     DFTNO.
//   - Oracle — a fixed, correct-by-construction tree with no actions,
//     for testing the orientation layer in isolation.
package spantree

import "netorient/internal/graph"

// Substrate is the read interface the orientation layer needs from a
// spanning-tree protocol: the parent pointer A_p of every node (§2.1.1)
// and the substrate's own legitimacy, used in L_ST ∧ SP1 ∧ SP2.
type Substrate interface {
	// Root returns the distinguished root processor r.
	Root() graph.NodeID
	// Parent returns A_v under the current configuration (None for
	// the root or an unset pointer). Orientation-layer guards read
	// this on every evaluation, so it must be cheap.
	Parent(v graph.NodeID) graph.NodeID
	// Stable reports the substrate's legitimacy predicate L_ST.
	Stable() bool
	// ParentLocality returns the radius of the ball around v that
	// Parent(v) reads: 0 when Parent(v) is a function of v's own
	// variables only (BFSTree's explicit pointer, Oracle's fixed
	// tree), 1 when it also consults v's neighbours (DFSTree derives
	// the parent by matching the neighbours' path variables). The
	// orientation layer widens its program.Influencer declaration by
	// this amount: a substrate move at v can change Parent(q) for
	// q within ParentLocality hops of v, and hence guards one hop
	// further out.
	ParentLocality() int
}

// Children collects, in the parent's port order, the current children
// of v under the substrate's parent pointers: the paper's D_p set.
// The result is appended to buf.
func Children(g *graph.Graph, sub Substrate, v graph.NodeID, buf []graph.NodeID) []graph.NodeID {
	for _, q := range g.Neighbors(v) {
		if q != graph.None && sub.Parent(q) == v {
			buf = append(buf, q)
		}
	}
	return buf
}

// ParentVector materialises the substrate's parent pointers.
func ParentVector(g *graph.Graph, sub Substrate) []graph.NodeID {
	out := make([]graph.NodeID, g.N())
	for v := 0; v < g.N(); v++ {
		out[v] = sub.Parent(graph.NodeID(v))
	}
	return out
}

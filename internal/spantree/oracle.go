package spantree

import (
	"fmt"

	"netorient/internal/graph"
	"netorient/internal/program"
)

// Oracle is a correct-by-construction tree substrate: a fixed spanning
// tree with no actions, legitimate by definition. It lets the
// orientation layer be tested in isolation, matching the paper's
// layered proofs ("after the spanning tree protocol stabilizes…").
type Oracle struct {
	g    *graph.Graph
	root graph.NodeID
	par  []graph.NodeID
}

// Compile-time interface compliance.
var (
	_ program.Protocol   = (*Oracle)(nil)
	_ program.Legitimacy = (*Oracle)(nil)
	_ Substrate          = (*Oracle)(nil)
)

// NewOracle wraps the given parent vector (which must describe a
// spanning tree of g rooted at root) as a static substrate.
func NewOracle(g *graph.Graph, root graph.NodeID, parent []graph.NodeID) (*Oracle, error) {
	if !graph.SpanningParent(g, parent, root) {
		return nil, fmt.Errorf("spantree: parent vector is not a spanning tree of %s rooted at %d", g, root)
	}
	par := make([]graph.NodeID, len(parent))
	copy(par, parent)
	return &Oracle{g: g, root: root, par: par}, nil
}

// NewBFSOracle returns an Oracle holding the BFS tree of g from root.
func NewBFSOracle(g *graph.Graph, root graph.NodeID) (*Oracle, error) {
	_, par := graph.BFSFrom(g, root)
	return NewOracle(g, root, par)
}

// NewDFSOracle returns an Oracle holding the deterministic
// port-ordered DFS tree of g from root — the tree under which STNO
// names nodes exactly like DFTNO.
func NewDFSOracle(g *graph.Graph, root graph.NodeID) (*Oracle, error) {
	_, par := graph.DFSPreorder(g, root)
	return NewOracle(g, root, par)
}

// Name implements program.Protocol.
func (o *Oracle) Name() string { return "tree-oracle" }

// Graph implements program.Protocol.
func (o *Oracle) Graph() *graph.Graph { return o.g }

// Enabled implements program.Protocol; the oracle never moves.
func (o *Oracle) Enabled(v graph.NodeID, buf []program.ActionID) []program.ActionID {
	return buf
}

// Execute implements program.Protocol.
func (o *Oracle) Execute(v graph.NodeID, a program.ActionID) bool { return false }

// Legitimate implements program.Legitimacy.
func (o *Oracle) Legitimate() bool { return true }

// Root implements Substrate.
func (o *Oracle) Root() graph.NodeID { return o.root }

// Parent implements Substrate.
func (o *Oracle) Parent(v graph.NodeID) graph.NodeID { return o.par[v] }

// Stable implements Substrate.
func (o *Oracle) Stable() bool { return true }

// ParentLocality implements Substrate: the tree is fixed, so Parent
// reads no mutable state at all.
func (o *Oracle) ParentLocality() int { return 0 }

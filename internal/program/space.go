package program

import (
	"math/bits"

	"netorient/internal/graph"
)

// Log2Ceil returns ⌈log₂ n⌉ for n ≥ 1 — the bit cost of a variable
// ranging over n values under the paper's space accounting.
func Log2Ceil(n int) int {
	if n <= 1 {
		return 1 // even a constant-range variable occupies one bit
	}
	return bits.Len(uint(n - 1))
}

// SpaceReport summarises the memory footprint of a protocol under the
// paper's accounting (§3.2.3, §4.2.3).
type SpaceReport struct {
	TotalBits   int
	MaxNodeBits int
	MinNodeBits int
	AvgNodeBits float64
}

// MeasureSpace computes a SpaceReport for a protocol implementing
// SpaceMeter.
func MeasureSpace(p Protocol) (SpaceReport, bool) {
	m, ok := p.(SpaceMeter)
	if !ok {
		return SpaceReport{}, false
	}
	g := p.Graph()
	var r SpaceReport
	r.MinNodeBits = int(^uint(0) >> 1)
	for v := 0; v < g.N(); v++ {
		b := m.StateBits(graph.NodeID(v))
		r.TotalBits += b
		if b > r.MaxNodeBits {
			r.MaxNodeBits = b
		}
		if b < r.MinNodeBits {
			r.MinNodeBits = b
		}
	}
	if g.N() > 0 {
		r.AvgNodeBits = float64(r.TotalBits) / float64(g.N())
	} else {
		r.MinNodeBits = 0
	}
	return r, true
}

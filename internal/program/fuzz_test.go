package program_test

import (
	"math/rand"
	"testing"

	"netorient/internal/core"
	"netorient/internal/daemon"
	"netorient/internal/failover"
	"netorient/internal/graph"
	"netorient/internal/program"
	"netorient/internal/token"
)

// FuzzApplyDelta feeds arbitrary op streams — daemon steps interleaved
// with edge toggles and node crash/revive cycles — to a
// failover-wrapped DFTNO stack running under both schedulers,
// asserting the incremental runner stays bit-identical to the
// full-scan oracle and the armed witness agrees with the O(n)
// predicate after every delta. The stream may disconnect the live
// graph outright (the partition scenario): edge toggles are
// unrestricted, so splits, orphan components and heal-time merges all
// occur — and with the failover wrapper on top, every split starts a
// disconnection-detection count-up and an acting-root election, so
// heals land mid-election and acting roots merge whenever the stream
// times them that way. Only the fixed root is immortal. A leading
// byte ≡ 3 (mod 7) swaps the base grid for a bridgy lollipop where
// every tail toggle is a split or a merge. Every mutation flows
// through ApplyDelta — including ones that later reverse, since a
// remove/re-add pair can legitimately renumber ports when older holes
// exist below.
func FuzzApplyDelta(f *testing.F) {
	f.Add([]byte{0, 1, 4, 0, 2, 9, 0, 0, 1, 4})
	f.Add([]byte{2, 4, 0, 0, 0, 2, 4, 1, 11, 1, 11})
	f.Add([]byte{1, 0, 1, 1, 1, 2, 1, 3, 0, 0, 0, 0})
	// Isolate grid corner 8 (toggle its two incident edges), step,
	// crash node 7 next to the hole, step again.
	f.Add([]byte{1, 9, 1, 11, 0, 2, 6, 0, 0})
	// Lollipop base (leading 10 ≡ 3 mod 7): cut tail bridge {4,5},
	// crash orphaned node 5, then cut bridge {0,4} for a three-way
	// split.
	f.Add([]byte{10, 7, 0, 2, 4, 0, 10, 3, 0, 0})
	// Heal mid-election: cut tail bridge {4,5} (edge 7), take three
	// steps — the orphan {5,6} is mid detection/election — then re-add
	// the same edge and let the interrupted election unwind.
	f.Add([]byte{10, 7, 0, 4, 7, 0, 0})
	// Two acting roots merge: cut {4,5} and {5,6}, orphaning 5 and 6
	// separately (each elects itself), heal {5,6} so the two acting
	// roots contend, then heal {4,5} back into the rooted component.
	f.Add([]byte{10, 7, 4, 8, 0, 4, 8, 0, 0, 4, 7, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 256 {
			data = data[:256]
		}
		g := graph.Grid(3, 3)
		if len(data) > 0 && data[0]%7 == 3 {
			g = graph.Lollipop(4, 3) // bridges everywhere: splits are one toggle away
		}
		baseEdges := g.Edges()
		mkStack := func() (*failover.Protocol, error) {
			sub, err := token.NewCirculator(g, 0)
			if err != nil {
				return nil, err
			}
			d, err := core.NewDFTNO(g, sub, 0)
			if err != nil {
				return nil, err
			}
			return failover.New(g, d, 0), nil
		}
		pInc, err := mkStack()
		if err != nil {
			t.Fatal(err)
		}
		pFull, err := mkStack()
		if err != nil {
			t.Fatal(err)
		}
		pInc.Randomize(rand.New(rand.NewSource(1)))
		pFull.Randomize(rand.New(rand.NewSource(1)))
		inc := program.NewSystem(pInc, daemon.NewCentral(2))
		full := program.NewSystemFullScan(pFull, daemon.NewCentral(2))
		if _, err := inc.RunUntilLegitimate(0); err != nil {
			t.Fatal(err) // arms the witness
		}

		apply := func(d graph.Delta) {
			inc.ApplyDelta(d)
			full.ApplyDelta(d)
		}

		i := 0
		next := func() byte {
			if i >= len(data) {
				return 0
			}
			b := data[i]
			i++
			return b
		}
		for i < len(data) {
			switch next() % 3 {
			case 0: // a few lockstep daemon steps
				for s := 0; s < 3; s++ {
					nInc, errInc := inc.Step()
					nFull, errFull := full.Step()
					if errInc != nil || errFull != nil || nInc != nFull {
						t.Fatalf("step: inc=(%d,%v) full=(%d,%v)", nInc, errInc, nFull, errFull)
					}
				}
			case 1: // toggle an edge of the base grid
				e := baseEdges[int(next())%len(baseEdges)]
				if !g.Alive(e.U) || !g.Alive(e.V) {
					continue
				}
				if g.HasEdge(e.U, e.V) {
					d, err := g.RemoveEdge(e.U, e.V)
					if err != nil {
						t.Fatal(err)
					}
					apply(d)
				} else {
					d, err := g.AddEdge(e.U, e.V)
					if err != nil {
						t.Fatal(err)
					}
					apply(d)
				}
			case 2: // crash a non-root node, or revive the dead one
				if g.NAlive() < g.N() {
					id, d := g.AddNode()
					apply(d)
					for _, e := range baseEdges {
						if (e.U == id || e.V == id) && g.Alive(e.U) && g.Alive(e.V) && !g.HasEdge(e.U, e.V) {
							d2, err := g.AddEdge(e.U, e.V)
							if err != nil {
								t.Fatal(err)
							}
							apply(d2)
						}
					}
					continue
				}
				v := graph.NodeID(1 + int(next())%(g.N()-1)) // never the root
				d, err := g.RemoveNode(v)
				if err != nil {
					t.Fatal(err)
				}
				apply(d)
			}
			if string(pInc.Snapshot()) != string(pFull.Snapshot()) {
				t.Fatal("configurations diverge")
			}
			if inc.EnabledCount() != full.EnabledCount() {
				t.Fatalf("enabled counts diverge: %d vs %d", inc.EnabledCount(), full.EnabledCount())
			}
			if got, want := pInc.WitnessLegitimate(), pInc.Legitimate(); got != want {
				t.Fatalf("witness %v vs Legitimate %v", got, want)
			}
		}
		if inc.Moves() != full.Moves() || inc.Rounds() != full.Rounds() {
			t.Fatalf("counters diverge: inc (m=%d r=%d) vs full (m=%d r=%d)",
				inc.Moves(), inc.Rounds(), full.Moves(), full.Rounds())
		}
	})
}

package program_test

// Dynamic-topology differential tests: the incremental scheduler must
// stay bit-identical to the full-scan oracle across interleaved
// topology deltas (edge flaps, node crash/revive), the armed witnesses
// must agree with the O(n) predicates immediately after every
// ApplyDelta, and the CheckLocality/CheckWitness audits must pass on
// churned graphs — the acceptance criteria of the mutable-topology
// refactor.

import (
	"fmt"
	"math/rand"
	"testing"

	"netorient/internal/churn"
	"netorient/internal/core"
	"netorient/internal/daemon"
	"netorient/internal/graph"
	"netorient/internal/program"
	"netorient/internal/token"
)

// churnBuilders is protoBuilders restricted to the five protocol
// stacks that implement program.TopologyAware (the oracle substrates
// are fixed structures and sit churn out).
func churnBuilders() map[string]func(g *graph.Graph) (diffTarget, error) {
	all := protoBuilders()
	delete(all, "dftc-oracle")
	return all
}

// churnScript mutates g with a seeded, connectivity-preserving event
// and applies the delta to every given system. It returns a
// description for failure messages. At most one edge and one node are
// down at any time; down elements are restored before new ones drop.
type churnScript struct {
	rng       *rand.Rand
	downEdge  [2]graph.NodeID
	edgeDown  bool
	downNode  graph.NodeID
	nodeDown  bool
	exNbrs    []graph.NodeID
	deltaSeen int
}

func (c *churnScript) mutate(t *testing.T, g *graph.Graph, systems ...*program.System) string {
	t.Helper()
	apply := func(d graph.Delta) {
		c.deltaSeen++
		for _, s := range systems {
			s.ApplyDelta(d)
		}
	}
	switch {
	case c.edgeDown:
		d, err := g.AddEdge(c.downEdge[0], c.downEdge[1])
		if err != nil {
			t.Fatalf("restore edge: %v", err)
		}
		apply(d)
		c.edgeDown = false
		return fmt.Sprintf("edge-up %v", c.downEdge)
	case c.nodeDown:
		id, d := g.AddNode()
		apply(d)
		for _, q := range c.exNbrs {
			if g.Alive(q) && !g.HasEdge(id, q) {
				d2, err := g.AddEdge(id, q)
				if err != nil {
					t.Fatalf("reattach: %v", err)
				}
				apply(d2)
			}
		}
		c.nodeDown = false
		return fmt.Sprintf("node-up %d", id)
	case c.rng.Intn(3) == 0:
		v, ok := churn.PickCrashNode(g, 0, c.rng)
		if !ok {
			return "skip"
		}
		d, err := g.RemoveNode(v)
		if err != nil {
			t.Fatalf("crash: %v", err)
		}
		c.exNbrs = append(c.exNbrs[:0], d.Touched[1:]...)
		apply(d)
		c.downNode, c.nodeDown = v, true
		return fmt.Sprintf("node-down %d", v)
	default:
		u, v, ok := churn.PickFlapEdge(g, c.rng)
		if !ok {
			return "skip"
		}
		d, err := g.RemoveEdge(u, v)
		if err != nil {
			t.Fatalf("flap: %v", err)
		}
		apply(d)
		c.downEdge, c.edgeDown = [2]graph.NodeID{u, v}, true
		return fmt.Sprintf("edge-down {%d,%d}", u, v)
	}
}

// TestSchedulerEquivalenceUnderChurn locksteps the incremental and
// full-scan runners from identical random configurations across a long
// interleaving of daemon steps and topology deltas, asserting
// bit-identical executions and (on the incremental side) witness ≡
// Legitimate() immediately after every ApplyDelta.
func TestSchedulerEquivalenceUnderChurn(t *testing.T) {
	t.Parallel()
	daemons := diffDaemons(13)
	if testing.Short() {
		daemons = map[string]func() program.Daemon{
			"central":     daemons["central"],
			"distributed": daemons["distributed"],
		}
	}
	for pname, build := range churnBuilders() {
		for dname, mkDaemon := range daemons {
			t.Run(fmt.Sprintf("%s/%s", pname, dname), func(t *testing.T) {
				t.Parallel()
				g := graph.Grid(4, 4) // fresh per subtest: the script mutates it
				pInc, err := build(g)
				if err != nil {
					t.Fatal(err)
				}
				pFull, err := build(g)
				if err != nil {
					t.Fatal(err)
				}
				pInc.Randomize(rand.New(rand.NewSource(42)))
				pFull.Randomize(rand.New(rand.NewSource(42)))
				inc := program.NewSystem(pInc, mkDaemon())
				full := program.NewSystemFullScan(pFull, mkDaemon())

				// Arm the incremental witness so the per-delta audit
				// exercises counter maintenance, not lazy resets only.
				wInc, hasWit := pInc.(program.Witness)
				legInc, hasLeg := pInc.(program.Legitimacy)
				if hasWit && hasLeg {
					if _, err := inc.RunUntilLegitimate(0); err != nil {
						t.Fatal(err)
					}
				}

				script := &churnScript{rng: rand.New(rand.NewSource(99))}
				for phase := 0; phase < 24; phase++ {
					for i := 0; i < 25; i++ {
						nInc, errInc := inc.Step()
						nFull, errFull := full.Step()
						if errInc != nil || errFull != nil || nInc != nFull {
							t.Fatalf("phase %d step %d: inc=(%d,%v) full=(%d,%v)",
								phase, i, nInc, errInc, nFull, errFull)
						}
					}
					desc := script.mutate(t, g, inc, full)
					if string(pInc.Snapshot()) != string(pFull.Snapshot()) {
						t.Fatalf("phase %d (%s): configurations diverge after delta", phase, desc)
					}
					if inc.EnabledCount() != full.EnabledCount() {
						t.Fatalf("phase %d (%s): enabled counts diverge: %d vs %d",
							phase, desc, inc.EnabledCount(), full.EnabledCount())
					}
					if hasWit && hasLeg {
						if got, want := wInc.WitnessLegitimate(), legInc.Legitimate(); got != want {
							t.Fatalf("phase %d (%s): witness says %v, Legitimate() says %v",
								phase, desc, got, want)
						}
					}
				}
				if script.deltaSeen < 10 {
					t.Fatalf("script only produced %d deltas; churn coverage too thin", script.deltaSeen)
				}
				if inc.Moves() != full.Moves() || inc.Steps() != full.Steps() || inc.Rounds() != full.Rounds() {
					t.Fatalf("counters diverge: inc (m=%d s=%d r=%d) vs full (m=%d s=%d r=%d)",
						inc.Moves(), inc.Steps(), inc.Rounds(), full.Moves(), full.Steps(), full.Rounds())
				}
			})
		}
	}
}

// TestAuditsAfterApplyDelta runs the CheckLocality and CheckWitness
// audits on every stack over a graph that has been churned through the
// ApplyDelta path: influence declarations and witness maintenance must
// hold on mutated graphs (holes, dead slot) exactly as on built ones.
func TestAuditsAfterApplyDelta(t *testing.T) {
	t.Parallel()
	configs := 12
	steps := 60
	if testing.Short() {
		configs, steps = 4, 25
	}
	for pname, build := range churnBuilders() {
		t.Run(pname, func(t *testing.T) {
			t.Parallel()
			g := graph.Grid(4, 4)
			p, err := build(g)
			if err != nil {
				t.Fatal(err)
			}
			sys := program.NewSystem(p, daemon.NewCentral(5))
			script := &churnScript{rng: rand.New(rand.NewSource(7))}
			for i := 0; i < 6; i++ {
				for s := 0; s < 10; s++ {
					if _, err := sys.Step(); err != nil {
						t.Fatal(err)
					}
				}
				script.mutate(t, g, sys)
			}
			// The graph now has holes and possibly a dead slot; audit.
			if err := program.CheckLocality(p, configs, rand.New(rand.NewSource(23))); err != nil {
				t.Fatal(err)
			}
			if _, ok := p.(program.Witness); ok {
				mk := func() program.Daemon { return daemon.NewCentral(11) }
				if err := program.CheckWitness(p, configs, steps, mk, rand.New(rand.NewSource(29))); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// guardCounter counts Enabled evaluations, forwarding every optional
// contract of the wrapped stack that the scheduler type-asserts.
type guardCounter struct {
	*core.DFTNO
	evals int
}

func (p *guardCounter) Enabled(v graph.NodeID, buf []program.ActionID) []program.ActionID {
	p.evals++
	return p.DFTNO.Enabled(v, buf)
}

// TestApplyDeltaIsLocal pins the cost claim: a single edge flap on a
// mid-size grid re-evaluates O(deg·Δ) guards through ApplyDelta, far
// below the Θ(n) a whole-system Invalidate pays, and re-stabilization
// afterwards completes without a single O(n) Legitimate() scan
// (witness path).
func TestApplyDeltaIsLocal(t *testing.T) {
	t.Parallel()
	g := graph.Grid(16, 16)
	sub, err := token.NewCirculator(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.NewDFTNO(g, sub, 0)
	if err != nil {
		t.Fatal(err)
	}
	w := &guardCounter{DFTNO: d}
	sys := program.NewSystem(w, daemon.NewCentral(3))
	if _, err := sys.RunUntilLegitimate(10); err != nil {
		t.Fatal(err) // constructed legitimate; arms the witness
	}
	if _, err := sys.RunUntil(func() bool { return false }, 500); err != nil {
		t.Fatal(err)
	}

	// Flap a known non-tree edge of the reference DFS so the naming is
	// provably unchanged and the skip path is exercised.
	_, par := graph.DFSPreorder(g, 0)
	var eu, ev graph.NodeID = graph.None, graph.None
	for _, e := range g.Edges() {
		if par[e.U] != e.V && par[e.V] != e.U {
			eu, ev = e.U, e.V
			break
		}
	}
	if eu == graph.None {
		t.Fatal("grid has no non-tree edge?")
	}
	rebuildsBefore := d.RefRebuilds
	w.evals = 0
	dl, err := g.RemoveEdge(eu, ev)
	if err != nil {
		t.Fatal(err)
	}
	sys.ApplyDelta(dl)
	dl2, err := g.AddEdge(eu, ev)
	if err != nil {
		t.Fatal(err)
	}
	sys.ApplyDelta(dl2)
	if w.evals == 0 || w.evals > 64 {
		t.Fatalf("edge flap re-evaluated %d guards; want O(deg·Δ), got %s of n=%d", w.evals, "a fraction", g.N())
	}
	if d.RefRebuilds-rebuildsBefore > 1 {
		t.Fatalf("non-tree flap triggered %d reference rebuilds; removal must take the incremental skip", d.RefRebuilds-rebuildsBefore)
	}

	// Re-stabilize on the witness path: zero O(n) legitimacy scans.
	scans := 0
	leg := func() bool { scans++; return d.Legitimate() }
	_ = leg // the runner uses the witness; Legitimate is not consulted
	res, err := sys.RunUntilLegitimate(int64(100000))
	if err != nil || !res.Converged {
		t.Fatalf("no re-stabilization after flap: %+v %v", res, err)
	}
	if scans != 0 {
		t.Fatalf("witness path still performed %d O(n) scans", scans)
	}
	if !d.Legitimate() {
		t.Fatal("legitimate by witness but not by scan")
	}
}

// TestApplyDeltaMatchesInvalidate checks that ApplyDelta and a full
// Invalidate lead the incremental scheduler to identical executions
// (moves and configurations; round bookkeeping legitimately differs —
// Invalidate restarts it) after the same topology change.
func TestApplyDeltaMatchesInvalidate(t *testing.T) {
	t.Parallel()
	for pname, build := range churnBuilders() {
		t.Run(pname, func(t *testing.T) {
			t.Parallel()
			g := graph.Grid(3, 4)
			pA, err := build(g)
			if err != nil {
				t.Fatal(err)
			}
			pB, err := build(g)
			if err != nil {
				t.Fatal(err)
			}
			pA.Randomize(rand.New(rand.NewSource(4)))
			pB.Randomize(rand.New(rand.NewSource(4)))
			sysA := program.NewSystem(pA, daemon.NewCentral(9))
			sysB := program.NewSystem(pB, daemon.NewCentral(9))
			step := func() {
				nA, errA := sysA.Step()
				nB, errB := sysB.Step()
				if errA != nil || errB != nil || nA != nB {
					t.Fatalf("diverged: A=(%d,%v) B=(%d,%v)", nA, errA, nB, errB)
				}
			}
			for i := 0; i < 40; i++ {
				step()
			}
			d, err := g.RemoveEdge(0, 1)
			if err != nil {
				t.Fatal(err)
			}
			sysA.ApplyDelta(d)
			// B takes the blunt path: hook manually (it is B's protocol
			// instance that must rebind), then invalidate everything.
			if ta, ok := pB.(program.TopologyAware); ok {
				ta.TopologyChanged(d, nil)
			}
			sysB.Invalidate()
			for i := 0; i < 80; i++ {
				step()
				if string(pA.Snapshot()) != string(pB.Snapshot()) {
					t.Fatalf("configurations diverge at step %d after delta", i)
				}
			}
			if sysA.Moves() != sysB.Moves() {
				t.Fatalf("move counts diverge: %d vs %d", sysA.Moves(), sysB.Moves())
			}
		})
	}
}

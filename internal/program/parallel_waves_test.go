package program_test

// Wave-mode differential suite: with ParallelConfig.FrontierWaves the
// boundary pass fires in batched concurrent waves whose radius-R balls
// are pairwise disjoint. Everything the serial boundary pass promised
// must survive: every execution replays byte-identically on the serial
// shadow oracle, equal seeds give equal traces, churn recomputes the
// cached wave schedule with the same locality discipline as the
// frontier classification, and a protocol that under-declares its
// locality radius is *detected* (a breach error), not absorbed. The
// -race CI matrix runs this file at GOMAXPROCS 2 and 8 — the wave
// worker pool is a new race surface on top of phase A's.

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"netorient/internal/graph"
	"netorient/internal/program"
)

func waveTopologies(t *testing.T) map[string]func() *graph.Graph {
	build := func(spec string) func() *graph.Graph {
		return func() *graph.Graph {
			g, err := graph.Named(spec)
			if err != nil {
				t.Fatalf("graph %q: %v", spec, err)
			}
			return g
		}
	}
	return map[string]func() *graph.Graph{
		"grid:6x6":     build("grid:6x6"),
		"gnp:24:0.2:7": build("gnp:24:0.2:7"),
	}
}

// TestParallelWaveSerialOracle is the wave-mode differential
// acceptance suite: 4 protocol stacks × grid/gnp × {1,2,4,8} workers,
// each run to legitimacy with FrontierWaves on and replayed
// move-for-move on the serial shadow oracle.
func TestParallelWaveSerialOracle(t *testing.T) {
	workerCounts := []int{1, 2, 4, 8}
	if testing.Short() {
		workerCounts = []int{2, 8}
	}
	builders := protoBuilders()
	for _, pname := range parallelProtos() {
		for gname, mkGraph := range waveTopologies(t) {
			for _, w := range workerCounts {
				t.Run(fmt.Sprintf("%s/%s/w%d", pname, gname, w), func(t *testing.T) {
					g := mkGraph()
					p, err := builders[pname](g)
					if err != nil {
						t.Fatal(err)
					}
					p.Randomize(rand.New(rand.NewSource(int64(13*w + len(gname)))))
					initial := p.Snapshot()
					ps := program.NewParallelSystem(p, program.ParallelConfig{
						Workers: w, Seed: 77, Record: true, FrontierWaves: true,
					})
					budget := int64(2000 * (g.N() + g.M()))
					res, err := ps.RunUntilLegitimate(budget)
					if err != nil {
						t.Fatal(err)
					}
					if !res.Converged {
						t.Fatalf("no convergence within %d parallel steps (%d moves)", budget, res.Moves)
					}
					if ps.FrontierSize() > 0 && ps.WaveCount() == 0 {
						t.Fatalf("frontier of %d nodes but no waves scheduled", ps.FrontierSize())
					}
					if ps.WaveCount() > ps.FrontierSize() {
						t.Fatalf("wave count %d exceeds frontier size %d", ps.WaveCount(), ps.FrontierSize())
					}
					if ps.WorkUnits() < ps.SpanUnits() {
						t.Fatalf("work %d < span %d — critical path exceeds total work", ps.WorkUnits(), ps.SpanUnits())
					}
					if ps.BoundarySpanUnits() > ps.SpanUnits() {
						t.Fatalf("boundary span %d exceeds total span %d", ps.BoundarySpanUnits(), ps.SpanUnits())
					}
					shadow, err := builders[pname](g)
					if err != nil {
						t.Fatal(err)
					}
					replayOracle(t, shadow, initial, p.Snapshot(), ps.Trace())
					if int64(len(ps.Trace())) != ps.Moves() {
						t.Fatalf("trace length %d != move count %d", len(ps.Trace()), ps.Moves())
					}
				})
			}
		}
	}
}

// TestParallelWaveDeterminism pins the RNG contract in wave mode, with
// the resharding policy armed on one of the stacks: same seed + same
// worker count + same wave setting ⇒ bit-identical trace and final
// configuration, even across automatic boundary moves.
func TestParallelWaveDeterminism(t *testing.T) {
	builders := protoBuilders()
	for _, tc := range []struct {
		pname   string
		reshard program.ReshardPolicy
	}{
		{"bfstree", program.ReshardPolicy{}},
		{"dftno/dftc", program.ReshardPolicy{Imbalance: 1.1, MinInterval: 4}},
	} {
		t.Run(tc.pname, func(t *testing.T) {
			g1, err := graph.Named("grid:5x5")
			if err != nil {
				t.Fatal(err)
			}
			g2, _ := graph.Named("grid:5x5")
			p1, err := builders[tc.pname](g1)
			if err != nil {
				t.Fatal(err)
			}
			p2, err := builders[tc.pname](g2)
			if err != nil {
				t.Fatal(err)
			}
			p1.Randomize(rand.New(rand.NewSource(6)))
			if err := p2.Restore(p1.Snapshot()); err != nil {
				t.Fatal(err)
			}
			cfg := program.ParallelConfig{
				Workers: 3, Seed: 42, Activation: 0.6, Record: true,
				FrontierWaves: true, Reshard: tc.reshard,
			}
			ps1 := program.NewParallelSystem(p1, cfg)
			ps2 := program.NewParallelSystem(p2, cfg)
			for i := 0; i < 120; i++ {
				n1, err1 := ps1.Step()
				n2, err2 := ps2.Step()
				if err1 != nil || err2 != nil {
					t.Fatal(err1, err2)
				}
				if n1 != n2 {
					t.Fatalf("step %d: fired %d vs %d moves", i, n1, n2)
				}
			}
			if ps1.Reshards() != ps2.Reshards() {
				t.Fatalf("reshard counts diverge: %d vs %d", ps1.Reshards(), ps2.Reshards())
			}
			tr1, tr2 := ps1.Trace(), ps2.Trace()
			if len(tr1) != len(tr2) {
				t.Fatalf("trace lengths diverge: %d vs %d", len(tr1), len(tr2))
			}
			for i := range tr1 {
				if tr1[i] != tr2[i] {
					t.Fatalf("traces diverge at move %d: %v vs %v", i, tr1[i], tr2[i])
				}
			}
			if !bytes.Equal(p1.Snapshot(), p2.Snapshot()) {
				t.Fatal("equal seeds and configs produced different configurations")
			}
		})
	}
}

// TestParallelWaveChurn composes wave execution with topology
// mutations and both reshard paths (explicit and policy-driven): the
// cached wave schedule must be recomputed exactly when the frontier or
// the topology within 2R of it changes, and the cache invariant must
// hold throughout. Mirrors TestParallelChurn with waves on.
func TestParallelWaveChurn(t *testing.T) {
	builders := protoBuilders()
	g, err := graph.Named("grid:5x5")
	if err != nil {
		t.Fatal(err)
	}
	p, err := builders["bfstree"](g)
	if err != nil {
		t.Fatal(err)
	}
	p.Randomize(rand.New(rand.NewSource(3)))
	ps := program.NewParallelSystem(p, program.ParallelConfig{
		Workers: 4, Seed: 17, Record: true, FrontierWaves: true,
		Reshard: program.ReshardPolicy{Imbalance: 1.5, MinInterval: 8},
	})
	apply := func(d graph.Delta, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		ps.ApplyDelta(d)
	}
	step := func(k int) {
		t.Helper()
		for i := 0; i < k; i++ {
			if _, err := ps.Step(); err != nil {
				t.Fatal(err)
			}
		}
	}
	step(5)
	d, err := g.RemoveEdge(11, 12)
	apply(d, err)
	step(3)
	d, err = g.AddEdge(11, 12)
	apply(d, err)
	step(3)
	d, err = g.RemoveNode(7)
	apply(d, err)
	step(3)
	id, d := g.AddNode()
	if id != 7 {
		t.Fatalf("expected revive of slot 7, got %d", id)
	}
	ps.ApplyDelta(d)
	d, err = g.AddEdge(7, 6)
	apply(d, err)
	d, err = g.AddEdge(7, 8)
	apply(d, err)
	step(3)
	for i := 0; i < 2; i++ {
		nid, d := g.AddNode()
		if int(nid) != 25+i {
			t.Fatalf("expected appended id %d, got %d", 25+i, nid)
		}
		ps.ApplyDelta(d)
		dd, err := g.AddEdge(nid, graph.NodeID(i*10))
		apply(dd, err)
		step(2)
	}
	if ps.WaveRebuilds() == 0 {
		t.Fatal("a churn campaign on a 5x5 grid never rebuilt the wave schedule")
	}
	parallelCacheInvariant(t, ps, p)
	ps.Reshard()
	parallelCacheInvariant(t, ps, p)
	res, err := ps.RunUntilLegitimate(int64(2000 * (g.N() + g.M())))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("no convergence after churn")
	}
	parallelCacheInvariant(t, ps, p)
}

// TestParallelWaveReclassSkip proves the ApplyDelta classification
// skip (and its counters): a delta whose 2R ball contains no frontier
// node leaves both the frontier list and the wave schedule untouched;
// a delta near the frontier recomputes only the waves; a delta that
// flips a membership rebuilds both. grid:12x12 at 3 workers puts the
// shard seams at rows 3/4 and 7/8, so row 0 is deep interior.
func TestParallelWaveReclassSkip(t *testing.T) {
	builders := protoBuilders()
	g, err := graph.Named("grid:12x12")
	if err != nil {
		t.Fatal(err)
	}
	p, err := builders["bfstree"](g)
	if err != nil {
		t.Fatal(err)
	}
	p.Randomize(rand.New(rand.NewSource(8)))
	ps := program.NewParallelSystem(p, program.ParallelConfig{
		Workers: 3, Seed: 21, FrontierWaves: true,
	})
	step := func(k int) {
		t.Helper()
		for i := 0; i < k; i++ {
			if _, err := ps.Step(); err != nil {
				t.Fatal(err)
			}
		}
	}
	flap := func(a, b graph.NodeID) {
		t.Helper()
		d, err := g.RemoveEdge(a, b)
		if err != nil {
			t.Fatal(err)
		}
		ps.ApplyDelta(d)
		d, err = g.AddEdge(a, b)
		if err != nil {
			t.Fatal(err)
		}
		ps.ApplyDelta(d)
	}
	step(3)

	// Deep-interior flap: ids 5,6 sit in row 0, distance 3 from the
	// nearest frontier row — both deltas must skip everything.
	skips, waveRb, frontRb := ps.ReclassSkips(), ps.WaveRebuilds(), ps.FrontierRebuilds()
	flap(5, 6)
	if got := ps.ReclassSkips() - skips; got != 2 {
		t.Fatalf("deep flap: want 2 classification skips, got %d", got)
	}
	if ps.WaveRebuilds() != waveRb || ps.FrontierRebuilds() != frontRb {
		t.Fatal("deep flap rebuilt the frontier or the waves")
	}

	// Near-frontier flap: ids 41,42 are frontier row-3 nodes; the
	// horizontal flap flips no membership (the vertical cross-seam
	// edges are untouched) but rewires distances among frontier nodes,
	// so only the wave schedule is recomputed.
	skips, waveRb, frontRb = ps.ReclassSkips(), ps.WaveRebuilds(), ps.FrontierRebuilds()
	flap(41, 42)
	if ps.FrontierRebuilds() != frontRb {
		t.Fatal("near-frontier flap flipped a membership — seam geometry changed?")
	}
	if got := ps.WaveRebuilds() - waveRb; got != 2 {
		t.Fatalf("near-frontier flap: want 2 wave rebuilds, got %d", got)
	}
	if ps.ReclassSkips() != skips {
		t.Fatal("near-frontier flap was wrongly counted as a skip")
	}

	// Cross-seam flap: removing 41–53 cuts the only ball crossing of
	// both endpoints, flipping them interior — full rebuild both ways.
	frontRb = ps.FrontierRebuilds()
	flap(41, 53)
	if got := ps.FrontierRebuilds() - frontRb; got != 2 {
		t.Fatalf("cross-seam flap: want 2 frontier rebuilds, got %d", got)
	}

	step(3)
	parallelCacheInvariant(t, ps, p)
	res, err := ps.RunUntilLegitimate(int64(2000 * (g.N() + g.M())))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("no convergence after the flap campaign")
	}
}

// overreach is the adversarial under-declaration case: its guards and
// statements are honestly radius-1 (guards read only the node's own
// flag, statements write it), but its Influence set names the whole
// 2-hop ball while the protocol declares the default radius 1. The
// serial boundary pass absorbs that — it may write any cache slot —
// but a wave worker's ownership region is the mover's radius-1 ball,
// so wave mode must refuse the foreign write and report a breach
// instead of racing.
type overreach struct {
	g *graph.Graph
	x []byte
}

func (o *overreach) Name() string        { return "overreach" }
func (o *overreach) Graph() *graph.Graph { return o.g }

func (o *overreach) Enabled(v graph.NodeID, buf []program.ActionID) []program.ActionID {
	if o.x[v] == 0 {
		buf = append(buf, 0)
	}
	return buf
}

func (o *overreach) Execute(v graph.NodeID, a program.ActionID) bool {
	if o.x[v] != 0 {
		return false
	}
	o.x[v] = 1
	return true
}

func (o *overreach) Influence(v graph.NodeID, a program.ActionID, buf []graph.NodeID) []graph.NodeID {
	return program.InfluenceBall(o.g, v, 2, buf)
}

// TestParallelWaveBreachDetection: on a ring with 2-node shards every
// node is frontier, so the whole execution goes through the wave path;
// the first fired move's 2-hop influence set escapes its radius-1 ball
// and must surface as an under-declaration error from Step.
func TestParallelWaveBreachDetection(t *testing.T) {
	g, err := graph.Named("ring:8")
	if err != nil {
		t.Fatal(err)
	}
	o := &overreach{g: g, x: make([]byte, g.N())}
	ps := program.NewParallelSystem(o, program.ParallelConfig{
		Workers: 4, Seed: 1, FrontierWaves: true,
	})
	if ps.FrontierSize() != g.N() {
		t.Fatalf("expected an all-frontier split, got %d/%d", ps.FrontierSize(), g.N())
	}
	var firstErr error
	for i := 0; i < 4 && firstErr == nil; i++ {
		_, firstErr = ps.Step()
	}
	if firstErr == nil {
		t.Fatal("wave mode absorbed a foreign influence write instead of detecting it")
	}
	if !strings.Contains(firstErr.Error(), "under-declared") || !strings.Contains(firstErr.Error(), "wave") {
		t.Fatalf("breach error does not name the wave under-declaration: %v", firstErr)
	}

	// The serialized boundary pass, by contrast, tolerates the
	// over-reported set: it owns every cache slot.
	o2 := &overreach{g: g, x: make([]byte, g.N())}
	ps2 := program.NewParallelSystem(o2, program.ParallelConfig{Workers: 4, Seed: 1})
	for i := 0; i < 4; i++ {
		if _, err := ps2.Step(); err != nil {
			t.Fatalf("serial boundary pass rejected an over-reported influence set: %v", err)
		}
	}
	if ps2.EnabledCount() != 0 {
		t.Fatal("overreach did not quiesce under the serial boundary pass")
	}
}

// TestParallelReshardPolicy drives a genuinely skewed workload — a
// converged configuration re-corrupted only inside the last shard —
// and asserts the policy actually moves the boundaries, that the
// execution stays oracle-replayable across the move, and that the
// cache invariant survives.
func TestParallelReshardPolicy(t *testing.T) {
	builders := protoBuilders()
	g, err := graph.Named("grid:8x8")
	if err != nil {
		t.Fatal(err)
	}
	p, err := builders["bfstree"](g)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(14))
	p.Randomize(rng)
	pre := program.NewParallelSystem(p, program.ParallelConfig{Workers: 1, Seed: 5})
	if res, err := pre.RunUntilLegitimate(int64(2000 * (g.N() + g.M()))); err != nil || !res.Converged {
		t.Fatalf("pre-convergence failed: %v %+v", err, res)
	}
	corruptor, ok := p.(program.NodeCorruptor)
	if !ok {
		t.Fatal("bfstree lost its NodeCorruptor")
	}
	for v := 48; v < 64; v++ {
		corruptor.CorruptNode(graph.NodeID(v), rng)
	}
	initial := p.Snapshot()
	ps := program.NewParallelSystem(p, program.ParallelConfig{
		Workers: 4, Seed: 9, Record: true, FrontierWaves: true,
		Reshard: program.ReshardPolicy{Imbalance: 1.01, MinInterval: 1},
	})
	res, err := ps.RunUntilLegitimate(int64(2000 * (g.N() + g.M())))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("no convergence under the reshard policy")
	}
	if ps.Reshards() == 0 {
		t.Fatal("a last-shard-only fault never triggered the reshard policy")
	}
	work := ps.ShardWork(nil)
	if len(work) != 4 {
		t.Fatalf("want 4 per-shard work counters, got %d", len(work))
	}
	shadow, err := builders["bfstree"](g)
	if err != nil {
		t.Fatal(err)
	}
	replayOracle(t, shadow, initial, p.Snapshot(), ps.Trace())
	parallelCacheInvariant(t, ps, p)
}

package program

import (
	"fmt"
	"math/rand"

	"netorient/internal/graph"
)

// Witness is the incremental legitimacy contract: a protocol that can
// decide its legitimacy predicate L_P in O(1) from violation counters
// maintained per node, instead of the O(n) scan Legitimacy costs.
//
// The model: each node contributes a handful of booleans ("this node
// locally violates L_P in way X") that are functions of the node's
// closed neighbourhood — more precisely, of a ball no wider than the
// protocol's declared Influence sets. The protocol aggregates the
// contributions into counters; WitnessLegitimate decides L_P from the
// counters alone. Because a move can only change the contributions of
// nodes inside its influence set, the runner keeps the counters exact
// by calling WitnessRefresh on exactly the dirty set it already
// computes for guard re-evaluation.
//
// Contract, in force whenever the runner has armed the witness (see
// System.RunUntilLegitimate):
//
//   - WitnessReset fully recomputes the witness state from the current
//     configuration in O(n·Δ); afterwards WitnessLegitimate() must
//     equal Legitimate().
//   - WitnessRefresh(v) re-derives node v's contribution. After a move
//     whose influence set has been entirely refreshed, the equality
//     must hold again. Refreshing a node whose neighbourhood did not
//     change must be a no-op (idempotence).
//   - WitnessLegitimate decides L_P in O(1) from the counters. Calling
//     it before any WitnessReset, or after mutating the configuration
//     through any channel other than Protocol.Execute + refreshes,
//     yields garbage — the same staleness contract as the scheduler's
//     guard cache (System.Invalidate disarms the witness; the next
//     RunUntilLegitimate re-arms it with a fresh reset).
//
// Layered protocols compose witnesses: an orientation layer refreshes
// its own contribution and forwards the refresh to its substrate's
// witness, and conjoins the substrate's O(1) verdict with its own.
//
// CheckWitness audits the equality empirically; the differential and
// model-checking suites pin Legitimate() itself.
type Witness interface {
	WitnessReset()
	WitnessRefresh(v graph.NodeID)
	WitnessLegitimate() bool
}

// ViolationCounter is the Witness building block for protocols whose
// legitimacy predicate is a per-node conjunction: it counts the nodes
// whose clause currently fails, caching each node's flag so a refresh
// is an O(1) delta. Protocols embed one per layer, derive the clause
// in a closure, and decide legitimacy by Zero() (conjoined with a
// substrate verdict where applicable).
type ViolationCounter struct {
	valid bool
	viol  int
	node  []bool
}

// Valid reports whether the counter has been Reset since construction
// or invalidation and is being maintained.
func (w *ViolationCounter) Valid() bool { return w.valid }

// Zero reports whether no node currently violates its clause. Only
// meaningful while Valid.
func (w *ViolationCounter) Zero() bool { return w.viol == 0 }

// Invalidate marks the counter stale. The next Reset rebuilds it;
// witnesses whose WitnessLegitimate lazily Resets when not Valid use
// this to re-arm after a topology delta rewrote a derived fact their
// clauses read (a reference naming, a target distance vector).
func (w *ViolationCounter) Invalidate() { w.valid = false }

// Reset rebuilds the counter from the per-node evaluator, O(n) calls.
func (w *ViolationCounter) Reset(n int, bad func(graph.NodeID) bool) {
	if len(w.node) < n {
		w.node = make([]bool, n)
	}
	w.viol = 0
	for v := 0; v < n; v++ {
		b := bad(graph.NodeID(v))
		w.node[v] = b
		if b {
			w.viol++
		}
	}
	w.valid = true
}

// Refresh updates node v's cached flag from the fresh evaluation bad.
// A no-op while the counter is not Valid.
func (w *ViolationCounter) Refresh(v graph.NodeID, bad bool) {
	if !w.valid || w.node[v] == bad {
		return
	}
	w.node[v] = bad
	if bad {
		w.viol++
	} else {
		w.viol--
	}
}

// CheckWitness audits a protocol's Witness implementation against its
// O(n) Legitimate() predicate: from `configs` random configurations it
// arms the witness on a fresh incremental System and locksteps up to
// `steps` daemon steps, asserting WitnessLegitimate() == Legitimate()
// after the reset and after every step (including past the point of
// convergence, which exercises closure of the counters). The protocol
// must implement Legitimacy, Witness and Randomizer.
func CheckWitness(p Protocol, configs, steps int, mkDaemon func() Daemon, rng *rand.Rand) error {
	leg, ok := p.(Legitimacy)
	if !ok {
		return fmt.Errorf("program: %s has no legitimacy predicate; cannot check witness", p.Name())
	}
	w, ok := p.(Witness)
	if !ok {
		return fmt.Errorf("program: %s has no legitimacy witness; cannot check witness", p.Name())
	}
	rnd, ok := p.(Randomizer)
	if !ok {
		return fmt.Errorf("program: %s has no randomizer; cannot check witness", p.Name())
	}
	for c := 0; c < configs; c++ {
		rnd.Randomize(rng)
		sys := NewSystem(p, mkDaemon())
		sys.armWitness(w)
		for i := 0; ; i++ {
			if got, want := w.WitnessLegitimate(), leg.Legitimate(); got != want {
				return fmt.Errorf("program: %s witness says legitimate=%v but Legitimate() says %v (config %d, step %d)",
					p.Name(), got, want, c, i)
			}
			if i >= steps {
				break
			}
			n, err := sys.Step()
			if err != nil {
				return fmt.Errorf("program: %s witness check: %w", p.Name(), err)
			}
			if n == 0 {
				break // terminal; agreement was just checked
			}
		}
	}
	return nil
}

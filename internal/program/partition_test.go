package program_test

// Partition-tolerance differential tests: with the connectivity
// restriction lifted, the incremental scheduler must stay bit-identical
// to the full-scan oracle on graphs that are disconnected from the
// start, across a bridge cut that orphans part of the network, and
// across the heal that merges the components back. Per-component
// legitimacy must be reached while split (root component circulating /
// oriented, orphan components quiesced in their detected-orphan
// fixpoints), and the heal must re-stabilize through localized
// invalidation, not a whole-system reset.

import (
	"fmt"
	"math/rand"
	"testing"

	"netorient/internal/core"
	"netorient/internal/daemon"
	"netorient/internal/graph"
	"netorient/internal/program"
	"netorient/internal/token"
)

// lockstepUntil drives both systems in lockstep until goal() holds,
// asserting identical per-step move counts and identical snapshots
// throughout. It fails on divergence, on quiescence before the goal,
// and on budget exhaustion; it returns the number of steps taken.
func lockstepUntil(t *testing.T, inc, full *program.System, pInc, pFull diffTarget, max int, goal func() bool) int {
	t.Helper()
	for i := 0; i < max; i++ {
		if goal() {
			return i
		}
		nInc, errInc := inc.Step()
		nFull, errFull := full.Step()
		if errInc != nil || errFull != nil || nInc != nFull {
			t.Fatalf("lockstep step %d: inc=(%d,%v) full=(%d,%v)", i, nInc, errInc, nFull, errFull)
		}
		if string(pInc.Snapshot()) != string(pFull.Snapshot()) {
			t.Fatalf("lockstep step %d: configurations diverge", i)
		}
		if nInc == 0 && !goal() {
			t.Fatalf("lockstep step %d: both systems quiesced before the goal", i)
		}
	}
	t.Fatalf("goal not reached within %d lockstep steps", max)
	return 0
}

// disconnectedGraphs builds the disconnected test topologies fresh per
// call (parallel subtests must not share a graph: component labels are
// maintained lazily inside it).
func disconnectedGraphs() map[string]func() *graph.Graph {
	return map[string]func() *graph.Graph{
		// An Erdős–Rényi draw kept as sampled: components of sizes
		// 6/6/2 at this seed (pinned by the assertion below).
		"gnp-any": func() *graph.Graph {
			g, err := graph.Named("gnp-any:14:0.10:12")
			if err != nil {
				panic(err)
			}
			return g
		},
		// A lollipop whose tail bridge has been cut: the root's
		// component keeps the clique, nodes 7-8 are orphaned.
		"cut-lollipop": func() *graph.Graph {
			g := graph.Lollipop(5, 4)
			if _, err := g.RemoveEdge(6, 7); err != nil {
				panic(err)
			}
			return g
		},
		// A path plus a degree-0 orphan: the smallest orphan component.
		"isolated-node": func() *graph.Graph {
			b := graph.NewBuilder(6)
			for i := 0; i < 4; i++ {
				b.MustAddEdge(graph.NodeID(i), graph.NodeID(i+1))
			}
			return b.Build()
		},
	}
}

// TestSchedulerEquivalenceDisconnected locksteps the incremental and
// full-scan runners on graphs that are disconnected from construction:
// every stack must accept them (the lifted restriction), converge to
// per-component legitimacy from an adversarial start, and do so
// bit-identically under both schedulers.
func TestSchedulerEquivalenceDisconnected(t *testing.T) {
	t.Parallel()
	daemons := map[string]func() program.Daemon{
		"central":     func() program.Daemon { return daemon.NewCentral(17) },
		"synchronous": func() program.Daemon { return daemon.NewSynchronous(17) },
	}
	for gname, mkGraph := range disconnectedGraphs() {
		for pname, build := range churnBuilders() {
			for dname, mkDaemon := range daemons {
				t.Run(fmt.Sprintf("%s/%s/%s", gname, pname, dname), func(t *testing.T) {
					t.Parallel()
					g := mkGraph()
					if g.Components() < 2 {
						t.Fatalf("test graph %s is connected; the premise is gone", gname)
					}
					pInc, err := build(g)
					if err != nil {
						t.Fatalf("stack %s rejected a disconnected graph: %v", pname, err)
					}
					pFull, err := build(g)
					if err != nil {
						t.Fatal(err)
					}
					pInc.Randomize(rand.New(rand.NewSource(31)))
					pFull.Randomize(rand.New(rand.NewSource(31)))
					inc := program.NewSystem(pInc, mkDaemon())
					full := program.NewSystemFullScan(pFull, mkDaemon())
					leg := pInc.(program.Legitimacy)
					steps := lockstepUntil(t, inc, full, pInc, pFull, 8000, leg.Legitimate)
					if inc.Moves() != full.Moves() || inc.Rounds() != full.Rounds() {
						t.Fatalf("counters diverge after %d steps: inc (m=%d r=%d) vs full (m=%d r=%d)",
							steps, inc.Moves(), inc.Rounds(), full.Moves(), full.Rounds())
					}
					if inc.EnabledCount() != full.EnabledCount() {
						t.Fatalf("enabled counts diverge: %d vs %d", inc.EnabledCount(), full.EnabledCount())
					}
					if w, ok := pInc.(program.Witness); ok {
						if !w.WitnessLegitimate() {
							t.Fatal("O(n) predicate legitimate but witness disagrees")
						}
					}
				})
			}
		}
	}
}

// TestPartitionHealLockstep is the partition/heal campaign in
// differential form, run over every stack: stabilize connected, cut
// the lollipop's tail bridge (orphaning two nodes), converge to
// per-component legitimacy while split, heal the bridge, and converge
// again — with the incremental scheduler lockstepped against the
// full-scan oracle through both ApplyDelta events and every step in
// between.
func TestPartitionHealLockstep(t *testing.T) {
	t.Parallel()
	for pname, build := range churnBuilders() {
		t.Run(pname, func(t *testing.T) {
			t.Parallel()
			g := graph.Lollipop(5, 4) // clique 0-4, tail 5-8; bridge 6-7
			pInc, err := build(g)
			if err != nil {
				t.Fatal(err)
			}
			pFull, err := build(g)
			if err != nil {
				t.Fatal(err)
			}
			pInc.Randomize(rand.New(rand.NewSource(21)))
			pFull.Randomize(rand.New(rand.NewSource(21)))
			inc := program.NewSystem(pInc, daemon.NewCentral(6))
			full := program.NewSystemFullScan(pFull, daemon.NewCentral(6))
			leg := pInc.(program.Legitimacy)
			wInc, hasWit := pInc.(program.Witness)
			if hasWit {
				// Arm the incremental witness (zero steps) so the
				// post-delta audits exercise counter maintenance.
				if _, err := inc.RunUntilLegitimate(0); err != nil {
					t.Fatal(err)
				}
			}

			apply := func(d graph.Delta, what string) {
				inc.ApplyDelta(d)
				full.ApplyDelta(d)
				if string(pInc.Snapshot()) != string(pFull.Snapshot()) {
					t.Fatalf("%s: configurations diverge after delta", what)
				}
				if inc.EnabledCount() != full.EnabledCount() {
					t.Fatalf("%s: enabled counts diverge: %d vs %d",
						what, inc.EnabledCount(), full.EnabledCount())
				}
				if hasWit {
					if got, want := wInc.WitnessLegitimate(), leg.Legitimate(); got != want {
						t.Fatalf("%s: witness says %v, Legitimate() says %v", what, got, want)
					}
				}
			}

			// Phase 1: stabilize the connected network.
			lockstepUntil(t, inc, full, pInc, pFull, 8000, leg.Legitimate)

			// Phase 2: cut the bridge; nodes 7-8 lose the root.
			d, err := g.RemoveEdge(6, 7)
			if err != nil {
				t.Fatal(err)
			}
			if !d.CompChanged || d.Components != 2 {
				t.Fatalf("bridge cut reported %+v; want a split to 2 components", d)
			}
			apply(d, "cut")
			if g.SameComponent(0, 7) {
				t.Fatal("nodes 0 and 7 still share a component after the cut")
			}

			// Phase 3: converge while split. Legitimate() now means the
			// root component satisfies the classic predicate restricted
			// to it AND the orphan component has quiesced.
			lockstepUntil(t, inc, full, pInc, pFull, 8000, leg.Legitimate)
			if g.Components() != 2 {
				t.Fatalf("component count drifted to %d during the split phase", g.Components())
			}

			// Phase 4: heal the bridge and converge on the merged
			// network.
			d2, err := g.AddEdge(6, 7)
			if err != nil {
				t.Fatal(err)
			}
			if !d2.CompChanged || d2.Components != 1 {
				t.Fatalf("heal reported %+v; want a merge to 1 component", d2)
			}
			apply(d2, "heal")
			lockstepUntil(t, inc, full, pInc, pFull, 8000, leg.Legitimate)
			if inc.Moves() != full.Moves() || inc.Rounds() != full.Rounds() {
				t.Fatalf("counters diverge: inc (m=%d r=%d) vs full (m=%d r=%d)",
					inc.Moves(), inc.Rounds(), full.Moves(), full.Rounds())
			}
		})
	}
}

// TestHealInvalidationIsLocal pins the heal-time cost claim on the
// DFTNO stack: cutting and healing a bridge deep in a lollipop's tail
// re-evaluates only the boundary ball plus the (small) renamed orphan
// region — a handful of guards, far below the Θ(n) a whole-system
// Invalidate would pay on the 38-node graph.
func TestHealInvalidationIsLocal(t *testing.T) {
	t.Parallel()
	g := graph.Lollipop(30, 8) // clique 0-29, tail 30-37
	sub, err := token.NewCirculator(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.NewDFTNO(g, sub, 0)
	if err != nil {
		t.Fatal(err)
	}
	w := &guardCounter{DFTNO: d}
	sys := program.NewSystem(w, daemon.NewCentral(3))
	if _, err := sys.RunUntilLegitimate(10); err != nil {
		t.Fatal(err) // constructed legitimate; arms the witness
	}
	// Circulate for a while: the guard cache bootstraps on the first
	// step, and ApplyDelta repairs nothing before that.
	if _, err := sys.RunUntil(func() bool { return false }, 500); err != nil {
		t.Fatal(err)
	}

	// Cut between the last two tail nodes: nodes 36-37 are orphaned.
	w.evals = 0
	dl, err := g.RemoveEdge(35, 36)
	if err != nil {
		t.Fatal(err)
	}
	sys.ApplyDelta(dl)
	cutEvals := w.evals
	if res, err := sys.RunUntilLegitimate(100000); err != nil || !res.Converged {
		t.Fatalf("no per-component re-stabilization after cut: %+v %v", res, err)
	}

	w.evals = 0
	dl2, err := g.AddEdge(35, 36)
	if err != nil {
		t.Fatal(err)
	}
	sys.ApplyDelta(dl2)
	healEvals := w.evals
	if res, err := sys.RunUntilLegitimate(100000); err != nil || !res.Converged {
		t.Fatalf("no re-stabilization after heal: %+v %v", res, err)
	}
	// The ball around the bridge has 4 nodes and the orphan region 2;
	// a generous constant still separates this sharply from n=38.
	if cutEvals == 0 || cutEvals > 16 {
		t.Fatalf("bridge cut re-evaluated %d guards; want a boundary ball, not Θ(n)=%d", cutEvals, g.N())
	}
	if healEvals == 0 || healEvals > 16 {
		t.Fatalf("bridge heal re-evaluated %d guards; want a boundary ball, not Θ(n)=%d", healEvals, g.N())
	}
	if !d.Legitimate() {
		t.Fatal("legitimate by witness but not by scan")
	}
}

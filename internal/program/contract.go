package program

import (
	"fmt"
	"math/rand"

	"netorient/internal/graph"
)

// CheckLocality verifies a protocol's locality contract empirically on
// random configurations: for every node v and every enabled action a,
// executing a at v must change the enabled-action set of no node
// outside the declared influence set (Influencer.Influence, or the
// closed 1-hop neighbourhood by default — the assumption the
// incremental scheduler's dirty-set invariant rests on). The protocol
// must implement Snapshotter (to rewind between probes) and Randomizer
// (to sample configurations).
func CheckLocality(p Protocol, configs int, rng *rand.Rand) error {
	snap, ok := p.(Snapshotter)
	if !ok {
		return fmt.Errorf("program: %s has no snapshots; cannot check locality", p.Name())
	}
	rnd, ok := p.(Randomizer)
	if !ok {
		return fmt.Errorf("program: %s has no randomizer; cannot check locality", p.Name())
	}
	inf, _ := p.(Influencer)
	g := p.Graph()
	n := g.N()

	// scan materialises every node's enabled-action list.
	scan := func(dst [][]ActionID) [][]ActionID {
		dst = dst[:0]
		for v := 0; v < n; v++ {
			dst = append(dst, p.Enabled(graph.NodeID(v), nil))
		}
		return dst
	}
	actsEqual := func(a, b []ActionID) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}

	var before, after [][]ActionID
	var infBuf []graph.NodeID
	allowed := make([]bool, n)
	for c := 0; c < configs; c++ {
		rnd.Randomize(rng)
		base := snap.Snapshot()
		before = scan(before)
		for v := 0; v < n; v++ {
			id := graph.NodeID(v)
			for _, a := range before[v] {
				if !p.Execute(id, a) {
					return fmt.Errorf("program: %s enabled action %s at node %d refused to fire (config %d)",
						p.Name(), ActionName(p, a), v, c)
				}
				if inf != nil {
					infBuf = inf.Influence(id, a, infBuf[:0])
				} else {
					infBuf = InfluenceClosedNeighborhood(g, id, infBuf[:0])
				}
				for i := range allowed {
					allowed[i] = false
				}
				allowed[v] = true
				for _, u := range infBuf {
					allowed[u] = true
				}
				after = scan(after)
				for u := 0; u < n; u++ {
					if !allowed[u] && !actsEqual(before[u], after[u]) {
						return fmt.Errorf(
							"program: %s move %s at node %d changed the guards of node %d outside its declared influence set (config %d): %v -> %v",
							p.Name(), ActionName(p, a), v, u, c, before[u], after[u])
					}
				}
				if err := snap.Restore(base); err != nil {
					return fmt.Errorf("program: %s restore: %w", p.Name(), err)
				}
			}
		}
	}
	return nil
}

// CheckContract verifies the Protocol contract on random
// configurations and reports the first violation:
//
//  1. every action reported by Enabled fires when Executed on the
//     unchanged configuration;
//  2. actions not reported by Enabled refuse to fire;
//  3. Enabled itself does not mutate the configuration;
//  4. snapshots round-trip (Restore(Snapshot()) is the identity).
//
// The protocol must implement Snapshotter (to rewind between probes)
// and Randomizer (to sample configurations). actionSpace is the
// (inclusive) largest action ID to probe for rule 2; for protocols
// with sparse high-offset action IDs (the orientation layers offset
// their own actions by 1<<20), probing the dense range is quadratic
// waste — use CheckContractActions with an explicit probe set instead.
func CheckContract(p Protocol, actionSpace ActionID, configs int, rng *rand.Rand) error {
	probes := make([]ActionID, 0, int(actionSpace)+1)
	for a := ActionID(0); a <= actionSpace; a++ {
		probes = append(probes, a)
	}
	return CheckContractActions(p, probes, configs, rng)
}

// CheckContractActions is CheckContract probing exactly the given
// action IDs for rule 2 (enabled actions are always checked for rule 1
// regardless of the probe set).
func CheckContractActions(p Protocol, probes []ActionID, configs int, rng *rand.Rand) error {
	snap, ok := p.(Snapshotter)
	if !ok {
		return fmt.Errorf("program: %s has no snapshots; cannot check contract", p.Name())
	}
	rnd, ok := p.(Randomizer)
	if !ok {
		return fmt.Errorf("program: %s has no randomizer; cannot check contract", p.Name())
	}
	g := p.Graph()
	var buf []ActionID
	for c := 0; c < configs; c++ {
		rnd.Randomize(rng)
		base := snap.Snapshot()

		// Rule 4: snapshot round-trip.
		if err := snap.Restore(base); err != nil {
			return fmt.Errorf("program: %s restore own snapshot: %w", p.Name(), err)
		}
		if got := snap.Snapshot(); string(got) != string(base) {
			return fmt.Errorf("program: %s snapshot does not round-trip (config %d)", p.Name(), c)
		}

		for v := 0; v < g.N(); v++ {
			id := graph.NodeID(v)
			buf = p.Enabled(id, buf[:0])

			// Rule 3: Enabled is read-only.
			if got := snap.Snapshot(); string(got) != string(base) {
				return fmt.Errorf("program: %s Enabled(%d) mutated the configuration (config %d)", p.Name(), v, c)
			}

			enabled := make(map[ActionID]bool, len(buf))
			for _, a := range buf {
				enabled[a] = true
			}

			// Rule 1: enabled actions fire.
			for _, a := range buf {
				if !p.Execute(id, a) {
					return fmt.Errorf("program: %s enabled action %s at node %d refused to fire (config %d)",
						p.Name(), ActionName(p, a), v, c)
				}
				if err := snap.Restore(base); err != nil {
					return fmt.Errorf("program: %s restore: %w", p.Name(), err)
				}
			}

			// Rule 2: disabled actions refuse and leave no trace.
			for _, a := range probes {
				if enabled[a] {
					continue
				}
				if p.Execute(id, a) {
					return fmt.Errorf("program: %s disabled action %s at node %d fired (config %d)",
						p.Name(), ActionName(p, a), v, c)
				}
				if got := snap.Snapshot(); string(got) != string(base) {
					return fmt.Errorf("program: %s refused action %s at node %d still mutated state (config %d)",
						p.Name(), ActionName(p, a), v, c)
				}
			}
		}
	}
	return nil
}

package program

import (
	"fmt"
	"math/rand"

	"netorient/internal/graph"
)

// CheckContract verifies the Protocol contract on random
// configurations and reports the first violation:
//
//  1. every action reported by Enabled fires when Executed on the
//     unchanged configuration;
//  2. actions not reported by Enabled refuse to fire;
//  3. Enabled itself does not mutate the configuration;
//  4. snapshots round-trip (Restore(Snapshot()) is the identity).
//
// The protocol must implement Snapshotter (to rewind between probes)
// and Randomizer (to sample configurations). actionSpace is the
// (inclusive) largest action ID to probe for rule 2.
func CheckContract(p Protocol, actionSpace ActionID, configs int, rng *rand.Rand) error {
	snap, ok := p.(Snapshotter)
	if !ok {
		return fmt.Errorf("program: %s has no snapshots; cannot check contract", p.Name())
	}
	rnd, ok := p.(Randomizer)
	if !ok {
		return fmt.Errorf("program: %s has no randomizer; cannot check contract", p.Name())
	}
	g := p.Graph()
	var buf []ActionID
	for c := 0; c < configs; c++ {
		rnd.Randomize(rng)
		base := snap.Snapshot()

		// Rule 4: snapshot round-trip.
		if err := snap.Restore(base); err != nil {
			return fmt.Errorf("program: %s restore own snapshot: %w", p.Name(), err)
		}
		if got := snap.Snapshot(); string(got) != string(base) {
			return fmt.Errorf("program: %s snapshot does not round-trip (config %d)", p.Name(), c)
		}

		for v := 0; v < g.N(); v++ {
			id := graph.NodeID(v)
			buf = p.Enabled(id, buf[:0])

			// Rule 3: Enabled is read-only.
			if got := snap.Snapshot(); string(got) != string(base) {
				return fmt.Errorf("program: %s Enabled(%d) mutated the configuration (config %d)", p.Name(), v, c)
			}

			enabled := make(map[ActionID]bool, len(buf))
			for _, a := range buf {
				enabled[a] = true
			}

			// Rule 1: enabled actions fire.
			for _, a := range buf {
				if !p.Execute(id, a) {
					return fmt.Errorf("program: %s enabled action %s at node %d refused to fire (config %d)",
						p.Name(), ActionName(p, a), v, c)
				}
				if err := snap.Restore(base); err != nil {
					return fmt.Errorf("program: %s restore: %w", p.Name(), err)
				}
			}

			// Rule 2: disabled actions refuse and leave no trace.
			for a := ActionID(0); a <= actionSpace; a++ {
				if enabled[a] {
					continue
				}
				if p.Execute(id, a) {
					return fmt.Errorf("program: %s disabled action %s at node %d fired (config %d)",
						p.Name(), ActionName(p, a), v, c)
				}
				if got := snap.Snapshot(); string(got) != string(base) {
					return fmt.Errorf("program: %s refused action %s at node %d still mutated state (config %d)",
						p.Name(), ActionName(p, a), v, c)
				}
			}
		}
	}
	return nil
}

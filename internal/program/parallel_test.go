package program_test

// Parallel stepper tests: every execution of the sharded parallel
// engine (program.ParallelSystem) must be bit-identical to *some*
// legal serial interleaving of the same moves — the canonical one its
// trace records. The serial oracle replays the trace through
// Protocol.Execute on a shadow instance restored to the same initial
// configuration: every move must fire (its guard held at its turn in
// the serialization), and the final snapshots must match byte for
// byte. The suite crosses protocol stacks (radius-1 and radius-2
// declarations) with topologies and worker counts, checks per-shard
// RNG determinism, and composes the engine with topology churn —
// running it under -race is part of the CI matrix (GOMAXPROCS 2 and
// 8), because ownership violations manifest as either oracle
// divergence or detector reports.

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"netorient/internal/daemon"
	"netorient/internal/graph"
	"netorient/internal/program"
)

// parallelProtos is the differential subset: three stacks with default
// radius 1 plus the radius-2 STNO-over-DFS case.
func parallelProtos() []string {
	return []string{"dftc", "bfstree", "dftno/dftc", "stno/dfstree"}
}

func parallelTopologies(t *testing.T) map[string]func() *graph.Graph {
	build := func(spec string) func() *graph.Graph {
		return func() *graph.Graph {
			g, err := graph.Named(spec)
			if err != nil {
				t.Fatalf("graph %q: %v", spec, err)
			}
			return g
		}
	}
	return map[string]func() *graph.Graph{
		"ring:24":  build("ring:24"),
		"grid:6x6": build("grid:6x6"),
	}
}

// replayOracle verifies that trace is a legal serial execution from
// the initial snapshot and reproduces the final snapshot.
func replayOracle(t *testing.T, shadow diffTarget, initial, final []byte, trace []program.Move) {
	t.Helper()
	if err := shadow.Restore(initial); err != nil {
		t.Fatalf("oracle restore: %v", err)
	}
	for i, mv := range trace {
		if !shadow.Execute(mv.Node, mv.Action) {
			t.Fatalf("oracle: move %d/%d (%v@%d) did not fire — not a legal serial interleaving",
				i, len(trace), mv.Action, mv.Node)
		}
	}
	if !bytes.Equal(shadow.Snapshot(), final) {
		t.Fatalf("oracle: serial replay of %d moves diverges from the parallel final configuration", len(trace))
	}
}

// TestParallelSerialOracle is the differential acceptance suite:
// protocols × topologies × worker counts, each run to legitimacy and
// replayed through the serial oracle.
func TestParallelSerialOracle(t *testing.T) {
	workerCounts := []int{1, 2, 3, 8}
	if testing.Short() {
		workerCounts = []int{2, 8}
	}
	builders := protoBuilders()
	for _, pname := range parallelProtos() {
		for gname, mkGraph := range parallelTopologies(t) {
			for _, w := range workerCounts {
				t.Run(fmt.Sprintf("%s/%s/w%d", pname, gname, w), func(t *testing.T) {
					g := mkGraph()
					p, err := builders[pname](g)
					if err != nil {
						t.Fatal(err)
					}
					p.Randomize(rand.New(rand.NewSource(int64(11*w + len(gname)))))
					initial := p.Snapshot()
					ps := program.NewParallelSystem(p, program.ParallelConfig{
						Workers: w, Seed: 99, Record: true,
					})
					budget := int64(2000 * (g.N() + g.M()))
					res, err := ps.RunUntilLegitimate(budget)
					if err != nil {
						t.Fatal(err)
					}
					if !res.Converged {
						t.Fatalf("no convergence within %d parallel steps (%d moves)", budget, res.Moves)
					}
					shadow, err := builders[pname](g)
					if err != nil {
						t.Fatal(err)
					}
					replayOracle(t, shadow, initial, p.Snapshot(), ps.Trace())
					if int64(len(ps.Trace())) != ps.Moves() {
						t.Fatalf("trace length %d != move count %d", len(ps.Trace()), ps.Moves())
					}
					if ps.WorkUnits() < ps.SpanUnits() {
						t.Fatalf("work %d < span %d — critical path exceeds total work", ps.WorkUnits(), ps.SpanUnits())
					}
				})
			}
		}
	}
}

// TestParallelDeterminism pins the per-shard RNG contract: same seed +
// same worker count ⇒ bit-identical trace and final configuration;
// the sub-maximal activation probability makes every shard consume
// randomness on every sweep, so a desynchronised stream cannot hide.
func TestParallelDeterminism(t *testing.T) {
	builders := protoBuilders()
	for _, pname := range []string{"bfstree", "dftno/dftc"} {
		t.Run(pname, func(t *testing.T) {
			g1, err := graph.Named("grid:5x5")
			if err != nil {
				t.Fatal(err)
			}
			g2, _ := graph.Named("grid:5x5")
			p1, err := builders[pname](g1)
			if err != nil {
				t.Fatal(err)
			}
			p2, err := builders[pname](g2)
			if err != nil {
				t.Fatal(err)
			}
			p1.Randomize(rand.New(rand.NewSource(5)))
			if err := p2.Restore(p1.Snapshot()); err != nil {
				t.Fatal(err)
			}
			cfg := program.ParallelConfig{Workers: 3, Seed: 42, Activation: 0.6, Record: true}
			ps1 := program.NewParallelSystem(p1, cfg)
			ps2 := program.NewParallelSystem(p2, cfg)
			for i := 0; i < 120; i++ {
				n1, err1 := ps1.Step()
				n2, err2 := ps2.Step()
				if err1 != nil || err2 != nil {
					t.Fatal(err1, err2)
				}
				if n1 != n2 {
					t.Fatalf("step %d: fired %d vs %d moves", i, n1, n2)
				}
			}
			tr1, tr2 := ps1.Trace(), ps2.Trace()
			if len(tr1) != len(tr2) {
				t.Fatalf("trace lengths diverge: %d vs %d", len(tr1), len(tr2))
			}
			for i := range tr1 {
				if tr1[i] != tr2[i] {
					t.Fatalf("traces diverge at move %d: %v vs %v", i, tr1[i], tr2[i])
				}
			}
			if !bytes.Equal(p1.Snapshot(), p2.Snapshot()) {
				t.Fatal("equal seeds and worker counts produced different configurations")
			}
		})
	}
}

// TestParallelWorkerCountsDiverge documents the other half of the
// determinism contract: different worker counts are different (still
// legal) schedules. Both runs must be oracle-accepted even though
// their traces may differ.
func TestParallelWorkerCountsDiverge(t *testing.T) {
	builders := protoBuilders()
	g, err := graph.Named("grid:5x5")
	if err != nil {
		t.Fatal(err)
	}
	p, err := builders["bfstree"](g)
	if err != nil {
		t.Fatal(err)
	}
	p.Randomize(rand.New(rand.NewSource(9)))
	initial := p.Snapshot()
	for _, w := range []int{1, 4} {
		if err := p.Restore(initial); err != nil {
			t.Fatal(err)
		}
		ps := program.NewParallelSystem(p, program.ParallelConfig{Workers: w, Seed: 4, Record: true})
		res, err := ps.RunUntilLegitimate(int64(2000 * (g.N() + g.M())))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("w=%d: no convergence", w)
		}
		shadow, err := builders["bfstree"](g)
		if err != nil {
			t.Fatal(err)
		}
		replayOracle(t, shadow, initial, p.Snapshot(), ps.Trace())
	}
}

// parallelCacheInvariant asserts the engine's enabled count equals a
// fresh full guard scan — the dirty-set invariant, observable through
// the public surface.
func parallelCacheInvariant(t *testing.T, ps *program.ParallelSystem, p program.Protocol) {
	t.Helper()
	g := p.Graph()
	want := 0
	var buf []program.ActionID
	for v := 0; v < g.N(); v++ {
		if !g.Alive(graph.NodeID(v)) {
			continue
		}
		buf = p.Enabled(graph.NodeID(v), buf[:0])
		if len(buf) > 0 {
			want++
		}
	}
	if got := ps.EnabledCount(); got != want {
		t.Fatalf("cached enabled count %d != fresh scan %d", got, want)
	}
}

// TestParallelChurn composes the parallel engine with topology
// mutations, including id-space growth: steps quiesce the workers, so
// ApplyDelta repairs the cache and the shard classification in place.
// The -race CI matrix runs this at GOMAXPROCS 2 and 8.
func TestParallelChurn(t *testing.T) {
	builders := protoBuilders()
	g, err := graph.Named("grid:5x5")
	if err != nil {
		t.Fatal(err)
	}
	p, err := builders["bfstree"](g)
	if err != nil {
		t.Fatal(err)
	}
	p.Randomize(rand.New(rand.NewSource(3)))
	ps := program.NewParallelSystem(p, program.ParallelConfig{Workers: 4, Seed: 17, Record: true})
	apply := func(d graph.Delta, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		ps.ApplyDelta(d)
	}
	step := func(k int) {
		t.Helper()
		for i := 0; i < k; i++ {
			if _, err := ps.Step(); err != nil {
				t.Fatal(err)
			}
		}
	}
	step(5)
	// Edge flap across a shard boundary region.
	d, err := g.RemoveEdge(11, 12)
	apply(d, err)
	step(3)
	d, err = g.AddEdge(11, 12)
	apply(d, err)
	step(3)
	// Node crash and revive.
	d, err = g.RemoveNode(7)
	apply(d, err)
	step(3)
	id, d := g.AddNode() // revives slot 7
	if id != 7 {
		t.Fatalf("expected revive of slot 7, got %d", id)
	}
	ps.ApplyDelta(d)
	d, err = g.AddEdge(7, 6)
	apply(d, err)
	d, err = g.AddEdge(7, 8)
	apply(d, err)
	step(3)
	// Id-space growth: append two fresh nodes and wire them in.
	for i := 0; i < 2; i++ {
		nid, d := g.AddNode()
		if int(nid) != 25+i {
			t.Fatalf("expected appended id %d, got %d", 25+i, nid)
		}
		ps.ApplyDelta(d)
		dd, err := g.AddEdge(nid, graph.NodeID(i*10))
		apply(dd, err)
		step(2)
	}
	parallelCacheInvariant(t, ps, p)
	ps.Reshard()
	parallelCacheInvariant(t, ps, p)
	res, err := ps.RunUntilLegitimate(int64(2000 * (g.N() + g.M())))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("no convergence after churn")
	}
	parallelCacheInvariant(t, ps, p)
}

// TestSystemGrowthAppend locksteps the serial incremental scheduler
// against the full-scan oracle across an AddNode growth campaign — the
// append growth path must keep the caches and the round accounting
// bit-identical to a full rescan.
func TestSystemGrowthAppend(t *testing.T) {
	builders := protoBuilders()
	gi, err := graph.Named("ring:8")
	if err != nil {
		t.Fatal(err)
	}
	gf, _ := graph.Named("ring:8")
	pi, err := builders["bfstree"](gi)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := builders["bfstree"](gf)
	if err != nil {
		t.Fatal(err)
	}
	pi.Randomize(rand.New(rand.NewSource(21)))
	if err := pf.Restore(pi.Snapshot()); err != nil {
		t.Fatal(err)
	}
	inc := program.NewSystem(pi, daemon.NewSynchronous(77))
	full := program.NewSystemFullScan(pf, daemon.NewSynchronous(77))
	stepBoth := func(k int) {
		t.Helper()
		for i := 0; i < k; i++ {
			ni, err := inc.Step()
			if err != nil {
				t.Fatal(err)
			}
			nf, err := full.Step()
			if err != nil {
				t.Fatal(err)
			}
			if ni != nf {
				t.Fatalf("fired %d vs %d moves", ni, nf)
			}
		}
	}
	stepBoth(6)
	for round := 0; round < 4; round++ {
		idI, dI := gi.AddNode()
		idF, dF := gf.AddNode()
		if idI != idF {
			t.Fatalf("divergent ids %d vs %d", idI, idF)
		}
		inc.ApplyDelta(dI)
		full.ApplyDelta(dF)
		anchor := graph.NodeID(round * 2)
		dI2, err := gi.AddEdge(idI, anchor)
		if err != nil {
			t.Fatal(err)
		}
		dF2, _ := gf.AddEdge(idF, anchor)
		inc.ApplyDelta(dI2)
		full.ApplyDelta(dF2)
		stepBoth(5)
		if inc.EnabledCount() != full.EnabledCount() {
			t.Fatalf("enabled counts diverge: %d vs %d", inc.EnabledCount(), full.EnabledCount())
		}
	}
	if inc.Moves() != full.Moves() || inc.Rounds() != full.Rounds() {
		t.Fatalf("accounting diverges: moves %d/%d rounds %d/%d",
			inc.Moves(), full.Moves(), inc.Rounds(), full.Rounds())
	}
	if !bytes.Equal(pi.Snapshot(), pf.Snapshot()) {
		t.Fatal("growth campaign diverged from the full-scan oracle")
	}
}

package program

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"netorient/internal/graph"
)

// This file implements the sharded parallel stepper: a multi-core
// execution mode for the distributed daemon. The paper's daemon model
// already legitimizes simultaneous activation of any enabled subset —
// a parallel batch needs no new semantics, only a proof that it equals
// some legal serial interleaving. The engine manufactures that proof
// by construction:
//
//   - The node id space is split into contiguous ranges, one shard per
//     worker (graph.BFSOrder + graph.ReorderNodes give relabelings
//     under which contiguous ranges are topologically thin, so the
//     boundary between shards is small).
//   - A node v is *interior* to its shard iff its closed locality ball
//     B(v,R) — R from the protocol's LocalityRadius declaration,
//     default 1 — lies entirely inside the shard. Balls are symmetric,
//     so if v is interior, no node outside v's shard can read v's
//     variables or have its guard influenced by a move at v: interior
//     moves of different shards commute, and the workers execute them
//     concurrently without locks. Every other node is *frontier* and
//     is executed in a serialized boundary pass — cross-shard
//     conflicts are thereby excluded by the disjointness test, not
//     assumed away, and a protocol that under-declares its radius is
//     caught by the ownership breach check below.
//   - Each parallel step is: phase A — every worker sweeps its shard
//     in ascending id order, fires each enabled interior node (subject
//     to the distributed daemon's seeded activation draw) and eagerly
//     repairs the guard cache of the influenced ball, which ownership
//     confines to its own shard; barrier; phase B — one goroutine
//     sweeps the frontier in ascending global order and fires enabled
//     frontier nodes the same way, repairing caches across shard
//     boundaries. The equivalent serial interleaving is canonical:
//     shard 0's move sequence, then shard 1's, …, then the boundary
//     moves. Replaying that sequence through Protocol.Execute from the
//     same initial configuration fires every move and reproduces the
//     final configuration bit-for-bit (the differential suite checks
//     exactly this).
//   - Determinism: shard s draws from its own rand.Rand seeded from
//     (Seed, s); the boundary pass has its own. Same seed + same
//     worker count ⇒ bit-identical trace; a different worker count is
//     a different (still legal) schedule.
//
// Topology churn composes by quiescence: workers only exist inside
// Step, so ApplyDelta always runs with no worker active. It repairs
// the guard cache locally (same contract as System.ApplyDelta, growth
// included) and re-classifies interior/frontier membership only inside
// the radius-R ball of the touched set.
//
// Work/span accounting: the engine counts one work unit per guard
// evaluation and per executed move. The span of a step is the largest
// per-shard phase-A count plus the whole serial phase-B count — the
// critical path of the step under perfect worker overlap. The ratio
// work/span is the schedule's available parallelism; experiment T16
// reports counted moves per span unit, a same-process, hardware- and
// core-count-independent throughput measure (the committed baseline is
// reproducible on a single-core runner).

// ParallelConfig parameterises a ParallelSystem.
type ParallelConfig struct {
	// Workers is the shard/worker count; ≤0 means runtime.GOMAXPROCS.
	Workers int
	// Seed drives the per-shard and boundary RNGs.
	Seed int64
	// Activation is the distributed daemon's per-candidate inclusion
	// probability; 0 means 1.0 (every enabled node is activated — the
	// maximal distributed daemon).
	Activation float64
	// Record keeps the move trace (canonical serialization order) for
	// the serial-oracle differential suite. Off by default: a trace on
	// a million-node run is the dominant allocation.
	Record bool
}

// ParallelSystem drives one protocol with sharded parallel
// distributed-daemon steps. It is not safe for concurrent use by
// multiple goroutines — parallelism lives inside Step, and every other
// method (ApplyDelta, Legitimate checks, accessors) must be called
// from the owning goroutine between steps, exactly where the engine
// quiesces.
type ParallelSystem struct {
	proto  Protocol
	inf    Influencer
	g      *graph.Graph
	radius int

	workers    int
	seed       int64
	activation float64
	record     bool

	// Shard geometry: shard s owns ids [bounds[s], bounds[s+1]).
	bounds   []int
	shardOf  []int32
	interior []bool
	frontier []graph.NodeID // ascending non-interior ids
	shards   []*pshard
	brng     *rand.Rand

	// Guard cache, same invariant as System: after every Step and
	// ApplyDelta, acts[v] equals a fresh Protocol.Enabled(v).
	inited  bool
	arena   []ActionID
	acts    [][]ActionID
	enabled []bool
	count   int
	seenN   int

	// Serial-phase dirty scratch (boundary pass, ApplyDelta).
	mark   []int64
	epoch  int64
	dirty  []graph.NodeID
	infBuf []graph.NodeID

	// Round bookkeeping (same definition as System's incremental mode).
	pending      []bool
	pendingCount int
	roundOpen    bool
	startRound   bool

	moves  int64
	steps  int64
	rounds int64

	work int64 // Σ guard evals + moves, all phases
	span int64 // Σ per-step (max shard phase-A work + serial phase-B work)

	trace []Move
}

// pshard is one worker's shard: a contiguous id range plus the
// worker-private scratch that keeps phase A lock-free. All fields are
// touched only by the owning worker during phase A and only by the
// serial phases otherwise.
type pshard struct {
	ps     *ParallelSystem
	id     int
	lo, hi int
	rng    *rand.Rand

	dirty  []graph.NodeID
	infBuf []graph.NodeID
	trace  []Move

	stepEvals int64
	stepMoves int64
	countD    int
	pendingD  int
	breach    graph.NodeID // first foreign node an influence set named; None if clean
}

// NewParallelSystem returns a sharded parallel stepper for proto.
func NewParallelSystem(proto Protocol, cfg ParallelConfig) *ParallelSystem {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if n := proto.Graph().N(); w > n && n > 0 {
		w = n
	}
	act := cfg.Activation
	if act <= 0 || act > 1 {
		act = 1
	}
	inf, _ := proto.(Influencer)
	return &ParallelSystem{
		proto:      proto,
		inf:        inf,
		g:          proto.Graph(),
		radius:     ProtocolRadius(proto),
		workers:    w,
		seed:       cfg.Seed,
		activation: act,
		record:     cfg.Record,
		seenN:      proto.Graph().N(),
	}
}

// Protocol returns the protocol under execution.
func (ps *ParallelSystem) Protocol() Protocol { return ps.proto }

// Workers returns the worker/shard count.
func (ps *ParallelSystem) Workers() int { return ps.workers }

// Moves returns the number of executed moves so far.
func (ps *ParallelSystem) Moves() int64 { return ps.moves }

// Steps returns the number of parallel steps so far.
func (ps *ParallelSystem) Steps() int64 { return ps.steps }

// Rounds returns the number of completed rounds so far (same
// definition as System: every processor continuously enabled since the
// round began has moved or been seen disabled).
func (ps *ParallelSystem) Rounds() int64 { return ps.rounds }

// WorkUnits returns the counted work so far: one unit per guard
// evaluation and per executed move, summed over all phases of all
// steps (the bootstrap scan is excluded — it is a one-time serial cost
// every worker count pays identically).
func (ps *ParallelSystem) WorkUnits() int64 { return ps.work }

// SpanUnits returns the counted critical path so far: per step, the
// largest per-shard phase-A work plus the serial phase-B work. With
// one worker span equals work; the ratio work/span is the schedule's
// available parallelism, independent of wall-clock and core count.
func (ps *ParallelSystem) SpanUnits() int64 { return ps.span }

// Trace returns the recorded move trace in canonical serialization
// order (per step: shard 0's moves, shard 1's, …, boundary moves).
// Empty unless ParallelConfig.Record was set.
func (ps *ParallelSystem) Trace() []Move { return ps.trace }

// FrontierSize returns how many live nodes are currently classified
// frontier (executed in the serialized boundary pass).
func (ps *ParallelSystem) FrontierSize() int {
	ps.ensureInit()
	return len(ps.frontier)
}

// EnabledCount returns the number of currently enabled processors.
func (ps *ParallelSystem) EnabledCount() int {
	ps.ensureInit()
	return ps.count
}

// Silent reports whether no action is enabled anywhere.
func (ps *ParallelSystem) Silent() bool { return ps.EnabledCount() == 0 }

// ensureInit builds the shard geometry and bootstraps the guard cache
// with one full scan.
func (ps *ParallelSystem) ensureInit() {
	if ps.inited {
		return
	}
	n := ps.g.N()
	ps.bounds = make([]int, ps.workers+1)
	for s := 0; s <= ps.workers; s++ {
		ps.bounds[s] = s * n / ps.workers
	}
	ps.shardOf = make([]int32, n)
	for s := 0; s < ps.workers; s++ {
		for v := ps.bounds[s]; v < ps.bounds[s+1]; v++ {
			ps.shardOf[v] = int32(s)
		}
	}
	ps.interior = make([]bool, n)
	ps.classifyAll()
	ps.shards = make([]*pshard, ps.workers)
	for s := 0; s < ps.workers; s++ {
		ps.shards[s] = &pshard{
			ps:     ps,
			id:     s,
			lo:     ps.bounds[s],
			hi:     ps.bounds[s+1],
			rng:    rand.New(rand.NewSource(shardSeed(ps.seed, s))),
			breach: graph.None,
		}
	}
	ps.brng = rand.New(rand.NewSource(shardSeed(ps.seed, -1)))

	if ps.acts == nil {
		ps.arena = make([]ActionID, n*actionStride)
		ps.acts = make([][]ActionID, n)
		for v := 0; v < n; v++ {
			ps.acts[v] = ps.arena[v*actionStride : v*actionStride : (v+1)*actionStride]
		}
		ps.enabled = make([]bool, n)
		ps.mark = make([]int64, n)
		ps.pending = make([]bool, n)
	}
	ps.count = 0
	for v := 0; v < n; v++ {
		id := graph.NodeID(v)
		if ps.g.Alive(id) {
			ps.acts[v] = ps.proto.Enabled(id, ps.acts[v][:0])
		} else {
			ps.acts[v] = ps.acts[v][:0]
		}
		on := len(ps.acts[v]) > 0
		ps.enabled[v] = on
		if on {
			ps.count++
		}
	}
	ps.roundOpen = false
	ps.inited = true
}

// shardSeed derives a per-shard RNG seed (s = -1 is the boundary pass)
// with a splitmix64-style mix so nearby seeds do not correlate.
func shardSeed(seed int64, s int) int64 {
	z := uint64(seed) + uint64(s+2)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// isInterior recomputes the disjointness test for v: B(v,R) inside
// v's shard.
func (ps *ParallelSystem) isInterior(v graph.NodeID) bool {
	lo, hi := ps.bounds[ps.shardOf[v]], ps.bounds[ps.shardOf[v]+1]
	ps.infBuf = InfluenceBall(ps.g, v, ps.radius, ps.infBuf[:0])
	for _, u := range ps.infBuf {
		if int(u) < lo || int(u) >= hi {
			return false
		}
	}
	return true
}

// classifyAll recomputes interior membership for every node and
// rebuilds the frontier list.
func (ps *ParallelSystem) classifyAll() {
	for v := range ps.interior {
		ps.interior[v] = ps.isInterior(graph.NodeID(v))
	}
	ps.rebuildFrontier()
}

// rebuildFrontier regenerates the ascending frontier list from the
// interior bitmap.
func (ps *ParallelSystem) rebuildFrontier() {
	ps.frontier = ps.frontier[:0]
	for v, in := range ps.interior {
		if !in {
			ps.frontier = append(ps.frontier, graph.NodeID(v))
		}
	}
}

// Step performs one parallel distributed-daemon step: concurrent
// interior sweeps per shard, a barrier, then the serialized boundary
// pass. It returns the number of moves that fired; 0 with a nil error
// and EnabledCount()==0 means the configuration is terminal (with an
// activation probability below 1 a step can also fire 0 moves by
// chance, so terminality is EnabledCount, not the return value).
func (ps *ParallelSystem) Step() (int, error) {
	ps.ensureInit()
	if !ps.roundOpen {
		ps.startRound = true
		ps.roundOpen = true
	}
	if ps.count == 0 {
		return 0, nil
	}

	// Phase A: concurrent interior sweeps. Workers share ps.epoch as
	// the dirty-stamp value — safe because ownership makes their mark
	// writes disjoint.
	ps.epoch++
	var wg sync.WaitGroup
	for _, sh := range ps.shards {
		wg.Add(1)
		go func(sh *pshard) {
			defer wg.Done()
			sh.sweep()
		}(sh)
	}
	wg.Wait()

	fired := 0
	maxShard := int64(0)
	for _, sh := range ps.shards {
		if sh.breach != graph.None {
			return fired, fmt.Errorf(
				"program: protocol %q influenced node %d outside shard %d [%d,%d) — locality radius %d is under-declared",
				ps.proto.Name(), sh.breach, sh.id, sh.lo, sh.hi, ps.radius)
		}
		w := sh.stepEvals + sh.stepMoves
		if w > maxShard {
			maxShard = w
		}
		ps.work += w
		ps.moves += sh.stepMoves
		fired += int(sh.stepMoves)
		ps.count += sh.countD
		ps.pendingCount += sh.pendingD
		if ps.record {
			ps.trace = append(ps.trace, sh.trace...)
		}
		sh.stepEvals, sh.stepMoves, sh.countD, sh.pendingD = 0, 0, 0, 0
		sh.trace = sh.trace[:0]
	}
	ps.startRound = false

	// Phase B: serialized boundary pass in ascending global order.
	ps.epoch++
	ps.dirty = ps.dirty[:0]
	bWork := int64(0)
	for _, u := range ps.frontier {
		if !ps.enabled[u] {
			continue
		}
		if ps.activation < 1 && ps.brng.Float64() >= ps.activation {
			continue
		}
		a := ps.acts[u][0]
		if len(ps.acts[u]) > 1 {
			a = ps.acts[u][ps.brng.Intn(len(ps.acts[u]))]
		}
		bWork++
		if !ps.proto.Execute(u, a) {
			continue
		}
		fired++
		ps.moves++
		if ps.record {
			ps.trace = append(ps.trace, Move{Node: u, Action: a})
		}
		if ps.pending[u] {
			ps.pending[u] = false
			ps.pendingCount--
		}
		ps.markDirtySerial(u)
		if ps.inf != nil {
			ps.infBuf = ps.inf.Influence(u, a, ps.infBuf[:0])
			for _, q := range ps.infBuf {
				ps.markDirtySerial(q)
			}
		} else {
			for _, q := range ps.g.Neighbors(u) {
				if q != graph.None {
					ps.markDirtySerial(q)
				}
			}
		}
		bWork += ps.refreshSerial()
	}
	ps.work += bWork
	ps.span += maxShard + bWork
	ps.steps++

	if ps.pendingCount == 0 {
		ps.rounds++
		ps.roundOpen = false
	}
	return fired, nil
}

// sweep is one worker's phase A: fire every enabled interior node of
// the shard in ascending order, eagerly repairing the influenced guard
// caches (ownership keeps every touched index inside the shard).
func (sh *pshard) sweep() {
	ps := sh.ps
	if ps.startRound {
		for v := sh.lo; v < sh.hi; v++ {
			if ps.enabled[v] && !ps.pending[v] {
				ps.pending[v] = true
				sh.pendingD++
			}
		}
	}
	for v := sh.lo; v < sh.hi; v++ {
		if !ps.enabled[v] || !ps.interior[v] {
			continue
		}
		if ps.activation < 1 && sh.rng.Float64() >= ps.activation {
			continue
		}
		id := graph.NodeID(v)
		a := ps.acts[v][0]
		if len(ps.acts[v]) > 1 {
			a = ps.acts[v][sh.rng.Intn(len(ps.acts[v]))]
		}
		if !ps.proto.Execute(id, a) {
			// The cache invariant makes this unreachable for a
			// well-declared protocol; fire nothing and move on.
			continue
		}
		sh.stepMoves++
		if ps.record {
			sh.trace = append(sh.trace, Move{Node: id, Action: a})
		}
		if ps.pending[v] {
			ps.pending[v] = false
			sh.pendingD--
		}
		sh.mark(id)
		if ps.inf != nil {
			sh.infBuf = ps.inf.Influence(id, a, sh.infBuf[:0])
			for _, q := range sh.infBuf {
				sh.mark(q)
			}
		} else {
			for _, q := range ps.g.Neighbors(id) {
				if q != graph.None {
					sh.mark(q)
				}
			}
		}
		sh.refresh()
	}
}

// mark queues u for guard re-evaluation. A node outside the shard is
// never written (that would be the data race ownership exists to
// prevent); it is recorded as a breach and reported by Step.
func (sh *pshard) mark(u graph.NodeID) {
	if int(u) < sh.lo || int(u) >= sh.hi {
		if sh.breach == graph.None {
			sh.breach = u
		}
		return
	}
	if sh.ps.mark[u] != sh.ps.epoch {
		sh.ps.mark[u] = sh.ps.epoch
		sh.dirty = append(sh.dirty, u)
	}
}

// refresh re-evaluates the guards of the shard's dirty nodes, keeping
// the cache invariant inside the shard during phase A.
func (sh *pshard) refresh() {
	ps := sh.ps
	for _, u := range sh.dirty {
		was := ps.enabled[u]
		if ps.g.Alive(u) {
			ps.acts[u] = ps.proto.Enabled(u, ps.acts[u][:0])
			sh.stepEvals++
		} else {
			ps.acts[u] = ps.acts[u][:0]
		}
		now := len(ps.acts[u]) > 0
		if now != was {
			ps.enabled[u] = now
			if now {
				sh.countD++
			} else {
				sh.countD--
			}
		}
		if !now && ps.pending[u] {
			ps.pending[u] = false
			sh.pendingD--
		}
	}
	// Re-arm the dedup stamps: a later move of the same sweep may
	// influence these nodes again, and the refresh just performed must
	// not swallow that re-evaluation. Epochs start at 1, so 0 never
	// matches. Ownership keeps these writes inside the shard.
	for _, u := range sh.dirty {
		ps.mark[u] = 0
	}
	sh.dirty = sh.dirty[:0]
}

// markDirtySerial queues u for the serial refresh (boundary pass and
// ApplyDelta) — any shard, no ownership restriction.
func (ps *ParallelSystem) markDirtySerial(u graph.NodeID) {
	if ps.mark[u] != ps.epoch {
		ps.mark[u] = ps.epoch
		ps.dirty = append(ps.dirty, u)
	}
}

// refreshSerial re-evaluates the guards of the serial dirty set and
// returns the number of evaluations performed.
func (ps *ParallelSystem) refreshSerial() int64 {
	evals := int64(0)
	for _, u := range ps.dirty {
		was := ps.enabled[u]
		if ps.g.Alive(u) {
			ps.acts[u] = ps.proto.Enabled(u, ps.acts[u][:0])
			evals++
		} else {
			ps.acts[u] = ps.acts[u][:0]
		}
		now := len(ps.acts[u]) > 0
		if now != was {
			ps.enabled[u] = now
			if now {
				ps.count++
			} else {
				ps.count--
			}
		}
		if !now && ps.pending[u] {
			ps.pending[u] = false
			ps.pendingCount--
		}
	}
	// Re-arm the dedup stamps, as in pshard.refresh: the boundary pass
	// refreshes eagerly after every move, and a later move may dirty
	// the same nodes again within this epoch.
	for _, u := range ps.dirty {
		ps.mark[u] = 0
	}
	ps.dirty = ps.dirty[:0]
	return evals
}

// ApplyDelta incorporates one topology mutation — already applied to
// the protocol's graph — into the running parallel system. Workers
// only exist inside Step, so the call always finds the engine
// quiesced; it runs the protocol's TopologyChanged hook, repairs the
// guard cache for the touched set plus the returned influence ball
// (appending cache slots when the delta grew the id space — new ids
// join the last shard), and re-classifies interior/frontier membership
// inside the radius-R ball of the touched set, since only nodes that
// close to the mutation can change sides of the disjointness test.
func (ps *ParallelSystem) ApplyDelta(d graph.Delta) {
	var ball []graph.NodeID
	if ta, ok := ps.proto.(TopologyAware); ok {
		ps.infBuf = ta.TopologyChanged(d, ps.infBuf[:0])
		ball = ps.infBuf
	} else {
		ps.infBuf = ps.infBuf[:0]
		for _, u := range d.Touched {
			ps.infBuf = InfluenceClosedNeighborhood(ps.g, u, ps.infBuf)
		}
		ball = ps.infBuf
	}
	if n := ps.g.N(); n != ps.seenN {
		if ps.inited {
			ps.grow(n)
		}
		ps.seenN = n
	}
	if !ps.inited {
		return
	}
	ps.epoch++
	ps.dirty = ps.dirty[:0]
	for _, u := range d.Touched {
		ps.markDirtySerial(u)
	}
	for _, u := range ball {
		ps.markDirtySerial(u)
	}
	ps.work += ps.refreshSerial()
	ps.reclassify(d.Touched)
}

// grow appends cache and geometry slots for a grown id space: the new
// ids extend the last shard, the arena doubles when exhausted, and the
// new slots start disabled until their deltas' refresh evaluates them
// — amortised O(1) per appended node, the same growth contract as
// System.growCaches.
func (ps *ParallelSystem) grow(n int) {
	old := len(ps.acts)
	if need := n * actionStride; need > cap(ps.arena) {
		newCap := 2 * cap(ps.arena)
		if newCap < need {
			newCap = need
		}
		arena := make([]ActionID, newCap)
		for v := 0; v < old; v++ {
			slot := arena[v*actionStride : v*actionStride : (v+1)*actionStride]
			ps.acts[v] = append(slot, ps.acts[v]...)
		}
		ps.arena = arena
	}
	last := int32(ps.workers - 1)
	for v := old; v < n; v++ {
		ps.acts = append(ps.acts, ps.arena[v*actionStride:v*actionStride:(v+1)*actionStride])
		ps.enabled = append(ps.enabled, false)
		ps.mark = append(ps.mark, 0)
		ps.pending = append(ps.pending, false)
		ps.shardOf = append(ps.shardOf, last)
		// A fresh node is isolated, so its radius ball is itself:
		// interior to the last shard until an AddEdge delta
		// re-classifies it.
		ps.interior = append(ps.interior, true)
	}
	ps.bounds[ps.workers] = n
	ps.shards[ps.workers-1].hi = n
}

// reclassify recomputes interior membership for every node within
// radius R of the touched set and rebuilds the frontier list when any
// membership flipped.
func (ps *ParallelSystem) reclassify(touched []graph.NodeID) {
	changed := false
	for _, t := range touched {
		ball := InfluenceBall(ps.g, t, ps.radius, nil)
		for _, u := range ball {
			in := ps.isInterior(u)
			if in != ps.interior[u] {
				ps.interior[u] = in
				changed = true
			}
		}
	}
	if changed {
		ps.rebuildFrontier()
	}
}

// Reshard re-partitions the id space evenly across the workers and
// re-classifies every node — O(n·R). Call it after a growth campaign
// has bloated the last shard; the engine never reshards implicitly, so
// step costs stay predictable.
func (ps *ParallelSystem) Reshard() {
	if !ps.inited {
		return
	}
	n := ps.g.N()
	for s := 0; s <= ps.workers; s++ {
		ps.bounds[s] = s * n / ps.workers
	}
	for s := 0; s < ps.workers; s++ {
		ps.shards[s].lo = ps.bounds[s]
		ps.shards[s].hi = ps.bounds[s+1]
		for v := ps.bounds[s]; v < ps.bounds[s+1]; v++ {
			ps.shardOf[v] = int32(s)
		}
	}
	ps.classifyAll()
}

// Invalidate discards the guard cache and round state; the next Step
// re-scans every guard. Call it after mutating the protocol's
// configuration behind the engine's back (Restore, Randomize,
// CorruptNode), exactly as with System.
func (ps *ParallelSystem) Invalidate() {
	ps.inited = false
	ps.roundOpen = false
	if ps.pendingCount > 0 {
		for v := range ps.pending {
			ps.pending[v] = false
		}
		ps.pendingCount = 0
	}
}

// RunUntil steps the system until pred returns true, the configuration
// becomes terminal, or maxSteps parallel steps have been taken. pred
// runs serially between steps.
func (ps *ParallelSystem) RunUntil(pred func() bool, maxSteps int64) (RunResult, error) {
	start := RunResult{Moves: ps.moves, Steps: ps.steps, Rounds: ps.rounds}
	mk := func(conv bool) RunResult {
		return RunResult{
			Converged: conv,
			Moves:     ps.moves - start.Moves,
			Steps:     ps.steps - start.Steps,
			Rounds:    ps.rounds - start.Rounds,
		}
	}
	if pred() {
		return mk(true), nil
	}
	for i := int64(0); i < maxSteps; i++ {
		_, err := ps.Step()
		if err != nil {
			return mk(false), err
		}
		if pred() {
			return mk(true), nil
		}
		if ps.count == 0 {
			return mk(false), nil
		}
	}
	return mk(false), nil
}

// RunUntilLegitimate runs until the protocol's legitimacy predicate
// holds, checking it serially between parallel steps (incremental
// witnesses keep global counters and are therefore a serial-phase
// tool; the parallel engine never arms one).
func (ps *ParallelSystem) RunUntilLegitimate(maxSteps int64) (RunResult, error) {
	leg, ok := ps.proto.(Legitimacy)
	if !ok {
		return RunResult{}, fmt.Errorf("program: protocol %q has no legitimacy predicate", ps.proto.Name())
	}
	return ps.RunUntil(leg.Legitimate, maxSteps)
}

package program

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"netorient/internal/graph"
)

// This file implements the sharded parallel stepper: a multi-core
// execution mode for the distributed daemon. The paper's daemon model
// already legitimizes simultaneous activation of any enabled subset —
// a parallel batch needs no new semantics, only a proof that it equals
// some legal serial interleaving. The engine manufactures that proof
// by construction:
//
//   - The node id space is split into contiguous ranges, one shard per
//     worker (graph.BFSOrder + graph.ReorderNodes give relabelings
//     under which contiguous ranges are topologically thin, so the
//     boundary between shards is small).
//   - A node v is *interior* to its shard iff its closed locality ball
//     B(v,R) — R from the protocol's LocalityRadius declaration,
//     default 1 — lies entirely inside the shard. Balls are symmetric,
//     so if v is interior, no node outside v's shard can read v's
//     variables or have its guard influenced by a move at v: interior
//     moves of different shards commute, and the workers execute them
//     concurrently without locks. Every other node is *frontier* and
//     is executed in a serialized boundary pass — cross-shard
//     conflicts are thereby excluded by the disjointness test, not
//     assumed away, and a protocol that under-declares its radius is
//     caught by the ownership breach check below.
//   - Each parallel step is: phase A — every worker sweeps its shard
//     in ascending id order, fires each enabled interior node (subject
//     to the distributed daemon's seeded activation draw) and eagerly
//     repairs the guard cache of the influenced ball, which ownership
//     confines to its own shard; barrier; phase B — the boundary pass
//     over the frontier. By default phase B is one goroutine sweeping
//     the frontier in ascending global order; with
//     ParallelConfig.FrontierWaves it becomes batched concurrent
//     *waves* (below). The equivalent serial interleaving is
//     canonical: shard 0's move sequence, then shard 1's, …, then the
//     boundary moves (wave 0's ascending, wave 1's, … when waves are
//     on). Replaying that sequence through Protocol.Execute from the
//     same initial configuration fires every move and reproduces the
//     final configuration bit-for-bit (the differential suite checks
//     exactly this).
//   - Wave scheduling: the daemon model already permits simultaneous
//     activation of any enabled set with pairwise-disjoint influence
//     balls, so the serialized frontier sweep is pessimistic. The
//     engine greedily colors the frontier conflict graph — two
//     frontier nodes conflict iff their distance is ≤ 2R, the exact
//     condition for their radius-R balls to intersect
//     (graph.ConflictAdjacency) — and caches the color classes as
//     waves, invalidated with the same locality discipline as the
//     interior/frontier classification itself. Per step and wave, the
//     activation/action draws are made serially from the boundary RNG
//     in ascending member order, then the chosen moves are fired
//     across the worker pool; disjoint balls make the concurrent
//     executes and cache repairs race-free by the same symmetry
//     argument that makes interior moves of different shards commute.
//     A protocol that under-declares its radius is caught here too:
//     an influence set escaping the mover's ball is a breach, never a
//     write.
//   - Determinism: shard s draws from its own rand.Rand seeded from
//     (Seed, s); the boundary pass has its own, consumed in the same
//     ascending frontier order whether the execution is serial or in
//     waves (wave order is itself a deterministic function of the
//     topology). Same seed + same worker count + same wave setting ⇒
//     bit-identical trace; a different worker count — or toggling
//     waves — is a different (still legal) schedule.
//
// Topology churn composes by quiescence: workers only exist inside
// Step, so ApplyDelta always runs with no worker active. It repairs
// the guard cache locally (same contract as System.ApplyDelta, growth
// included) and re-classifies interior/frontier membership only inside
// the radius-R ball of the touched set; the wave schedule additionally
// watches the 2R ball, because an edge flap can rewire frontier
// conflicts without flipping any membership (see reclassify).
//
// Work-driven resharding: ParallelConfig.Reshard arms a policy that
// watches the per-shard phase-A work counters and, when their max/mean
// skew exceeds the threshold, re-partitions the shard boundaries by
// prefix sums of recent work through the same quiesced path an
// explicit Reshard takes. See ReshardPolicy for the determinism
// contract.
//
// Work/span accounting: the engine counts one work unit per guard
// evaluation and per executed move. The span of a step is the largest
// per-shard phase-A count plus the phase-B critical path — the whole
// boundary count when phase B is serial, or Σ over waves of the
// largest per-worker chunk when waves are on. (The two phases are
// barrier-separated, so the step span is their sum, not their max.)
// The ratio work/span is the schedule's available parallelism;
// experiments T16/T17 report counted moves per span unit, a
// same-process, hardware- and core-count-independent throughput
// measure (the committed baselines are reproducible on a single-core
// runner).

// ParallelConfig parameterises a ParallelSystem.
type ParallelConfig struct {
	// Workers is the shard/worker count; ≤0 means runtime.GOMAXPROCS.
	Workers int
	// Seed drives the per-shard and boundary RNGs.
	Seed int64
	// Activation is the distributed daemon's per-candidate inclusion
	// probability; 0 means 1.0 (every enabled node is activated — the
	// maximal distributed daemon).
	Activation float64
	// Record keeps the move trace (canonical serialization order) for
	// the serial-oracle differential suite. Off by default: a trace on
	// a million-node run is the dominant allocation.
	Record bool
	// FrontierWaves executes phase B as batched concurrent waves
	// instead of one serial sweep: the frontier is partitioned by a
	// greedy distance-2R coloring into sets with pairwise-disjoint
	// radius-R balls, and each wave fires across the worker pool. Off
	// by default; see the wave-scheduling notes above.
	FrontierWaves bool
	// Reshard enables work-driven dynamic resharding; the zero value
	// keeps boundaries fixed (reshard only on explicit Reshard calls).
	Reshard ReshardPolicy
}

// ReshardPolicy is the work-driven dynamic resharding contract: after
// every step the engine compares the per-shard phase-A work
// accumulated since the last boundary move; when max/mean exceeds
// Imbalance (and at least MinInterval steps have passed), it
// re-partitions the id space by prefix sums of that recent work,
// reusing the explicit Reshard quiesce path. Boundaries therefore move
// only between steps, never under a running worker, and the trace
// stays a pure function of (snapshot, seed, workers) — the work
// counters that trigger the move are themselves deterministic.
type ReshardPolicy struct {
	// Imbalance is the max/mean per-shard work ratio that triggers a
	// reshard; values ≤ 1 disable the policy.
	Imbalance float64
	// MinInterval is the minimum number of steps between automatic
	// reshards (default 32 when the policy is enabled), bounding the
	// amortised cost of the O(n·R) reclassification each move costs.
	MinInterval int64
}

func (rp ReshardPolicy) enabled() bool { return rp.Imbalance > 1 }

func (rp ReshardPolicy) minInterval() int64 {
	if rp.MinInterval <= 0 {
		return 32
	}
	return rp.MinInterval
}

// ParallelSystem drives one protocol with sharded parallel
// distributed-daemon steps. It is not safe for concurrent use by
// multiple goroutines — parallelism lives inside Step, and every other
// method (ApplyDelta, Legitimate checks, accessors) must be called
// from the owning goroutine between steps, exactly where the engine
// quiesces.
type ParallelSystem struct {
	proto  Protocol
	inf    Influencer
	g      *graph.Graph
	radius int

	workers    int
	seed       int64
	activation float64
	record     bool
	waves      bool
	reshard    ReshardPolicy

	// Shard geometry: shard s owns ids [bounds[s], bounds[s+1]).
	bounds   []int
	shardOf  []int32
	interior []bool
	frontier []graph.NodeID // ascending non-interior ids
	shards   []*pshard
	brng     *rand.Rand

	// Wave schedule: waveSets partitions the frontier into greedy
	// distance-2R color classes (ascending ids within each wave),
	// cached like the interior/frontier classification and recomputed
	// only when the frontier or the topology near it changes.
	waveSets [][]graph.NodeID
	waveDraw []Move   // per-wave pre-drawn (node, action) firing list
	wwork    []*wwave // per-worker wave execution scratch

	// Work-driven resharding state: recentA accumulates per-shard
	// phase-A work since the last boundary move, shardWork since the
	// beginning (for observability).
	recentA      []int64
	shardWork    []int64
	sinceReshard int64
	reshards     int64

	// Classification bookkeeping counters (see reclassify).
	frontierRebuilds int64
	waveRebuilds     int64
	reclassSkips     int64

	// Guard cache, same invariant as System: after every Step and
	// ApplyDelta, acts[v] equals a fresh Protocol.Enabled(v).
	inited  bool
	arena   []ActionID
	acts    [][]ActionID
	enabled []bool
	count   int
	seenN   int

	// Serial-phase dirty scratch (boundary pass, ApplyDelta).
	mark     []int64
	epoch    int64
	dirty    []graph.NodeID
	infBuf   []graph.NodeID
	classBuf []graph.NodeID // reclassify scratch, disjoint from infBuf

	// Round bookkeeping (same definition as System's incremental mode).
	pending      []bool
	pendingCount int
	roundOpen    bool
	startRound   bool

	moves  int64
	steps  int64
	rounds int64

	work  int64 // Σ guard evals + moves, all phases
	span  int64 // Σ per-step (max shard phase-A work + phase-B critical path)
	spanB int64 // phase-B share of span (serial: its whole work; waves: Σ per-wave max chunk)

	trace []Move
}

// wwave is one worker's wave-execution scratch: the frontier analogue
// of pshard. During a wave the worker fires a contiguous chunk of the
// wave's pre-drawn moves; ball disjointness (the wave invariant) makes
// its cache writes disjoint from every other worker's, so the scratch
// needs no locks — exactly the phase-A argument with "shard ownership"
// replaced by "ball ownership".
type wwave struct {
	ps      *ParallelSystem
	dirty   []graph.NodeID
	infBuf  []graph.NodeID
	ballBuf []graph.NodeID
	trace   []Move

	work     int64 // execute attempts + refresh evals, serial-phase-B-comparable
	moves    int64
	countD   int
	pendingD int
	breach   graph.NodeID // first node influenced outside the mover's ball
	breachBy graph.NodeID // the mover that did it
}

// pshard is one worker's shard: a contiguous id range plus the
// worker-private scratch that keeps phase A lock-free. All fields are
// touched only by the owning worker during phase A and only by the
// serial phases otherwise.
type pshard struct {
	ps     *ParallelSystem
	id     int
	lo, hi int
	rng    *rand.Rand

	dirty  []graph.NodeID
	infBuf []graph.NodeID
	trace  []Move

	stepEvals int64
	stepMoves int64
	countD    int
	pendingD  int
	breach    graph.NodeID // first foreign node an influence set named; None if clean
}

// NewParallelSystem returns a sharded parallel stepper for proto.
func NewParallelSystem(proto Protocol, cfg ParallelConfig) *ParallelSystem {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if n := proto.Graph().N(); w > n && n > 0 {
		w = n
	}
	act := cfg.Activation
	if act <= 0 || act > 1 {
		act = 1
	}
	inf, _ := proto.(Influencer)
	return &ParallelSystem{
		proto:      proto,
		inf:        inf,
		g:          proto.Graph(),
		radius:     ProtocolRadius(proto),
		workers:    w,
		seed:       cfg.Seed,
		activation: act,
		record:     cfg.Record,
		waves:      cfg.FrontierWaves,
		reshard:    cfg.Reshard,
		seenN:      proto.Graph().N(),
	}
}

// Protocol returns the protocol under execution.
func (ps *ParallelSystem) Protocol() Protocol { return ps.proto }

// Workers returns the worker/shard count.
func (ps *ParallelSystem) Workers() int { return ps.workers }

// Moves returns the number of executed moves so far.
func (ps *ParallelSystem) Moves() int64 { return ps.moves }

// Steps returns the number of parallel steps so far.
func (ps *ParallelSystem) Steps() int64 { return ps.steps }

// Rounds returns the number of completed rounds so far (same
// definition as System: every processor continuously enabled since the
// round began has moved or been seen disabled).
func (ps *ParallelSystem) Rounds() int64 { return ps.rounds }

// WorkUnits returns the counted work so far: one unit per guard
// evaluation and per executed move, summed over all phases of all
// steps (the bootstrap scan is excluded — it is a one-time serial cost
// every worker count pays identically).
func (ps *ParallelSystem) WorkUnits() int64 { return ps.work }

// SpanUnits returns the counted critical path so far: per step, the
// largest per-shard phase-A work plus the serial phase-B work. With
// one worker span equals work; the ratio work/span is the schedule's
// available parallelism, independent of wall-clock and core count.
func (ps *ParallelSystem) SpanUnits() int64 { return ps.span }

// Trace returns the recorded move trace in canonical serialization
// order (per step: shard 0's moves, shard 1's, …, boundary moves).
// Empty unless ParallelConfig.Record was set.
func (ps *ParallelSystem) Trace() []Move { return ps.trace }

// FrontierSize returns how many live nodes are currently classified
// frontier (executed by the boundary pass — serial, or in waves when
// FrontierWaves is on).
func (ps *ParallelSystem) FrontierSize() int {
	ps.ensureInit()
	return len(ps.frontier)
}

// WaveCount returns how many waves the current frontier schedule has —
// the chromatic number the greedy distance-2R coloring achieved. Zero
// when wave execution is off or the frontier is empty.
func (ps *ParallelSystem) WaveCount() int {
	ps.ensureInit()
	return len(ps.waveSets)
}

// Reshards returns how many automatic boundary moves the ReshardPolicy
// has performed (explicit Reshard calls are not counted).
func (ps *ParallelSystem) Reshards() int64 { return ps.reshards }

// FrontierRebuilds returns how many times a delta's reclassification
// actually flipped a membership and rebuilt the frontier list.
func (ps *ParallelSystem) FrontierRebuilds() int64 { return ps.frontierRebuilds }

// WaveRebuilds returns how many times the wave schedule was recomputed
// (frontier rebuilds plus wave-only recomputations after deltas that
// changed the topology within 2R of the frontier).
func (ps *ParallelSystem) WaveRebuilds() int64 { return ps.waveRebuilds }

// ReclassSkips returns how many ApplyDelta calls left both the
// frontier list and the wave schedule untouched — deltas whose 2R ball
// missed the frontier entirely, the cheap common case on relabeled
// graphs that deep-interior churn should hit almost always.
func (ps *ParallelSystem) ReclassSkips() int64 { return ps.reclassSkips }

// ShardWork appends the cumulative per-shard phase-A work counters
// (one per worker) to buf — the imbalance signal the ReshardPolicy
// watches, exposed for observability (orientd metrics).
func (ps *ParallelSystem) ShardWork(buf []int64) []int64 {
	ps.ensureInit()
	return append(buf, ps.shardWork...)
}

// BoundarySpanUnits returns the phase-B share of the counted span: the
// whole boundary work when the pass is serial, the Σ of per-wave
// maximum chunk work when waves are on. The seam cost T17 measures.
func (ps *ParallelSystem) BoundarySpanUnits() int64 { return ps.spanB }

// EnabledNodes appends the ids of all currently enabled processors in
// ascending order and returns the extended slice.
func (ps *ParallelSystem) EnabledNodes(buf []graph.NodeID) []graph.NodeID {
	ps.ensureInit()
	for v, on := range ps.enabled {
		if on {
			buf = append(buf, graph.NodeID(v))
		}
	}
	return buf
}

// EnabledCount returns the number of currently enabled processors.
func (ps *ParallelSystem) EnabledCount() int {
	ps.ensureInit()
	return ps.count
}

// Silent reports whether no action is enabled anywhere.
func (ps *ParallelSystem) Silent() bool { return ps.EnabledCount() == 0 }

// ensureInit builds the shard geometry and bootstraps the guard cache
// with one full scan.
func (ps *ParallelSystem) ensureInit() {
	if ps.inited {
		return
	}
	n := ps.g.N()
	ps.bounds = make([]int, ps.workers+1)
	for s := 0; s <= ps.workers; s++ {
		ps.bounds[s] = s * n / ps.workers
	}
	ps.shardOf = make([]int32, n)
	for s := 0; s < ps.workers; s++ {
		for v := ps.bounds[s]; v < ps.bounds[s+1]; v++ {
			ps.shardOf[v] = int32(s)
		}
	}
	ps.interior = make([]bool, n)
	ps.classifyAll()
	ps.shards = make([]*pshard, ps.workers)
	for s := 0; s < ps.workers; s++ {
		ps.shards[s] = &pshard{
			ps:     ps,
			id:     s,
			lo:     ps.bounds[s],
			hi:     ps.bounds[s+1],
			rng:    rand.New(rand.NewSource(shardSeed(ps.seed, s))),
			breach: graph.None,
		}
	}
	ps.brng = rand.New(rand.NewSource(shardSeed(ps.seed, -1)))
	if ps.recentA == nil {
		ps.recentA = make([]int64, ps.workers)
		ps.shardWork = make([]int64, ps.workers)
	}
	for s := range ps.recentA {
		ps.recentA[s] = 0
	}
	ps.sinceReshard = 0
	if ps.waves && ps.wwork == nil {
		ps.wwork = make([]*wwave, ps.workers)
		for s := range ps.wwork {
			ps.wwork[s] = &wwave{ps: ps, breach: graph.None, breachBy: graph.None}
		}
	}

	if ps.acts == nil {
		ps.arena = make([]ActionID, n*actionStride)
		ps.acts = make([][]ActionID, n)
		for v := 0; v < n; v++ {
			ps.acts[v] = ps.arena[v*actionStride : v*actionStride : (v+1)*actionStride]
		}
		ps.enabled = make([]bool, n)
		ps.mark = make([]int64, n)
		ps.pending = make([]bool, n)
	}
	ps.count = 0
	for v := 0; v < n; v++ {
		id := graph.NodeID(v)
		if ps.g.Alive(id) {
			ps.acts[v] = ps.proto.Enabled(id, ps.acts[v][:0])
		} else {
			ps.acts[v] = ps.acts[v][:0]
		}
		on := len(ps.acts[v]) > 0
		ps.enabled[v] = on
		if on {
			ps.count++
		}
	}
	ps.roundOpen = false
	ps.inited = true
}

// shardSeed derives a per-shard RNG seed (s = -1 is the boundary pass)
// with a splitmix64-style mix so nearby seeds do not correlate.
func shardSeed(seed int64, s int) int64 {
	z := uint64(seed) + uint64(s+2)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// isInterior recomputes the disjointness test for v: B(v,R) inside
// v's shard.
func (ps *ParallelSystem) isInterior(v graph.NodeID) bool {
	lo, hi := ps.bounds[ps.shardOf[v]], ps.bounds[ps.shardOf[v]+1]
	ps.infBuf = InfluenceBall(ps.g, v, ps.radius, ps.infBuf[:0])
	for _, u := range ps.infBuf {
		if int(u) < lo || int(u) >= hi {
			return false
		}
	}
	return true
}

// classifyAll recomputes interior membership for every node and
// rebuilds the frontier list.
func (ps *ParallelSystem) classifyAll() {
	for v := range ps.interior {
		ps.interior[v] = ps.isInterior(graph.NodeID(v))
	}
	ps.rebuildFrontier()
}

// rebuildFrontier regenerates the ascending frontier list from the
// interior bitmap, and with it the wave schedule — a frontier change
// always invalidates the coloring.
func (ps *ParallelSystem) rebuildFrontier() {
	ps.frontier = ps.frontier[:0]
	for v, in := range ps.interior {
		if !in {
			ps.frontier = append(ps.frontier, graph.NodeID(v))
		}
	}
	ps.rebuildWaves()
}

// rebuildWaves recomputes the cached wave schedule: a greedy coloring
// of the frontier conflict graph in ascending id order, where two
// frontier nodes conflict iff their distance is ≤ 2R — exactly the
// condition under which their radius-R balls can intersect. Every
// color class ("wave") therefore has pairwise-disjoint balls: its
// moves read and influence disjoint state, commute, and may fire
// concurrently under the paper's daemon model. Ascending-order greedy
// makes the schedule deterministic and each wave's member list
// ascending, which is what keeps the canonical trace order (shard
// 0..k, wave 0, wave 1, …) a pure function of (snapshot, seed,
// workers).
func (ps *ParallelSystem) rebuildWaves() {
	ps.waveSets = ps.waveSets[:0]
	if !ps.waves || len(ps.frontier) == 0 {
		return
	}
	ps.waveRebuilds++
	adj := graph.ConflictAdjacency(ps.g, ps.frontier, 2*ps.radius)
	color := make([]int32, len(ps.frontier))
	for i := range color {
		color[i] = -1
	}
	var used []bool
	for i := range ps.frontier {
		used = used[:0]
		for range ps.waveSets {
			used = append(used, false)
		}
		for _, j := range adj[i] {
			if c := color[j]; c >= 0 {
				used[c] = true
			}
		}
		c := int32(len(ps.waveSets))
		for k, u := range used {
			if !u {
				c = int32(k)
				break
			}
		}
		if int(c) == len(ps.waveSets) {
			// Open a new color class, reusing capacity left over from
			// the previous schedule when there is any.
			if len(ps.waveSets) < cap(ps.waveSets) {
				ps.waveSets = ps.waveSets[:len(ps.waveSets)+1]
				ps.waveSets[c] = ps.waveSets[c][:0]
			} else {
				ps.waveSets = append(ps.waveSets, nil)
			}
		}
		color[i] = c
		ps.waveSets[c] = append(ps.waveSets[c], ps.frontier[i])
	}
}

// Step performs one parallel distributed-daemon step: concurrent
// interior sweeps per shard, a barrier, then the serialized boundary
// pass. It returns the number of moves that fired; 0 with a nil error
// and EnabledCount()==0 means the configuration is terminal (with an
// activation probability below 1 a step can also fire 0 moves by
// chance, so terminality is EnabledCount, not the return value).
func (ps *ParallelSystem) Step() (int, error) {
	ps.ensureInit()
	if !ps.roundOpen {
		ps.startRound = true
		ps.roundOpen = true
	}
	if ps.count == 0 {
		return 0, nil
	}

	// Phase A: concurrent interior sweeps. Workers share ps.epoch as
	// the dirty-stamp value — safe because ownership makes their mark
	// writes disjoint.
	ps.epoch++
	var wg sync.WaitGroup
	for _, sh := range ps.shards {
		wg.Add(1)
		go func(sh *pshard) {
			defer wg.Done()
			sh.sweep()
		}(sh)
	}
	wg.Wait()

	fired := 0
	maxShard := int64(0)
	for _, sh := range ps.shards {
		if sh.breach != graph.None {
			return fired, fmt.Errorf(
				"program: protocol %q influenced node %d outside shard %d [%d,%d) — locality radius %d is under-declared",
				ps.proto.Name(), sh.breach, sh.id, sh.lo, sh.hi, ps.radius)
		}
		w := sh.stepEvals + sh.stepMoves
		if w > maxShard {
			maxShard = w
		}
		ps.work += w
		ps.recentA[sh.id] += w
		ps.shardWork[sh.id] += w
		ps.moves += sh.stepMoves
		fired += int(sh.stepMoves)
		ps.count += sh.countD
		ps.pendingCount += sh.pendingD
		if ps.record {
			ps.trace = append(ps.trace, sh.trace...)
		}
		sh.stepEvals, sh.stepMoves, sh.countD, sh.pendingD = 0, 0, 0, 0
		sh.trace = sh.trace[:0]
	}
	ps.startRound = false

	// Phase B: the boundary pass — serialized sweep, or batched
	// concurrent waves when FrontierWaves is on. Both account bWork
	// (total boundary work) and bSpan (its critical-path share: equal
	// for the serial pass, Σ per-wave max chunk for waves). The phases
	// are barrier-separated, so the step's span is their sum, not the
	// max — phase B cannot overlap a still-running shard.
	var bWork, bSpan int64
	if ps.waves {
		var bFired int
		bWork, bSpan, bFired = ps.waveSweep()
		fired += bFired
		for _, ww := range ps.wwork {
			if ww.breach != graph.None {
				breach, by := ww.breach, ww.breachBy
				ww.breach, ww.breachBy = graph.None, graph.None
				return fired, fmt.Errorf(
					"program: protocol %q influenced node %d outside the radius-%d ball of wave mover %d — locality radius is under-declared",
					ps.proto.Name(), breach, ps.radius, by)
			}
		}
	} else {
		bWork = ps.serialBoundary(&fired)
		bSpan = bWork
	}
	ps.work += bWork
	ps.span += maxShard + bSpan
	ps.spanB += bSpan
	ps.steps++

	if ps.pendingCount == 0 {
		ps.rounds++
		ps.roundOpen = false
	}

	// Work-driven resharding: move the boundaries when the recent
	// per-shard phase-A work is skewed enough and the amortisation
	// window has passed. Runs after all accounting — the decision is a
	// deterministic function of counters the trace already fixes.
	ps.sinceReshard++
	if ps.reshard.enabled() && ps.sinceReshard >= ps.reshard.minInterval() && ps.imbalanced() {
		ps.reshardByWork()
	}
	return fired, nil
}

// serialBoundary is the serialized phase B: sweep the frontier in
// ascending global order, firing enabled nodes under the boundary RNG
// and eagerly repairing caches across shard boundaries. Returns the
// boundary work performed.
func (ps *ParallelSystem) serialBoundary(fired *int) int64 {
	ps.epoch++
	ps.dirty = ps.dirty[:0]
	bWork := int64(0)
	for _, u := range ps.frontier {
		if !ps.enabled[u] {
			continue
		}
		if ps.activation < 1 && ps.brng.Float64() >= ps.activation {
			continue
		}
		a := ps.acts[u][0]
		if len(ps.acts[u]) > 1 {
			a = ps.acts[u][ps.brng.Intn(len(ps.acts[u]))]
		}
		bWork++
		if !ps.proto.Execute(u, a) {
			continue
		}
		*fired++
		ps.moves++
		if ps.record {
			ps.trace = append(ps.trace, Move{Node: u, Action: a})
		}
		if ps.pending[u] {
			ps.pending[u] = false
			ps.pendingCount--
		}
		ps.markDirtySerial(u)
		if ps.inf != nil {
			ps.infBuf = ps.inf.Influence(u, a, ps.infBuf[:0])
			for _, q := range ps.infBuf {
				ps.markDirtySerial(q)
			}
		} else {
			for _, q := range ps.g.Neighbors(u) {
				if q != graph.None {
					ps.markDirtySerial(q)
				}
			}
		}
		bWork += ps.refreshSerial()
	}
	return bWork
}

// waveSweep is the batched phase B: fire each cached wave across the
// worker pool. Per wave, the activation and action draws are made
// serially from the boundary RNG in ascending member order *before*
// dispatch — so the trace stays a pure function of (snapshot, seed,
// workers) no matter how the scheduler interleaves the workers — and
// the selected moves are split into contiguous chunks, one goroutine
// per chunk. Ball disjointness inside a wave is what makes the
// concurrent Execute+refresh race-free: a worker only writes caches
// inside its movers' balls, and two wave members' balls never
// intersect (the breach check enforces exactly this at runtime for
// protocols that declare an Influence set).
//
// The draws deliberately read the post-previous-wave cache: a move in
// wave k may enable or disable a member of wave k+1, and the pre-draw
// sees that — equivalent to the serial sweep's "check enabled at your
// turn" rule, coarsened to wave granularity.
func (ps *ParallelSystem) waveSweep() (bWork, bSpan int64, fired int) {
	for _, wave := range ps.waveSets {
		ps.waveDraw = ps.waveDraw[:0]
		for _, u := range wave {
			if !ps.enabled[u] {
				continue
			}
			if ps.activation < 1 && ps.brng.Float64() >= ps.activation {
				continue
			}
			a := ps.acts[u][0]
			if len(ps.acts[u]) > 1 {
				a = ps.acts[u][ps.brng.Intn(len(ps.acts[u]))]
			}
			ps.waveDraw = append(ps.waveDraw, Move{Node: u, Action: a})
		}
		if len(ps.waveDraw) == 0 {
			continue
		}
		chunks := ps.workers
		if len(ps.waveDraw) < chunks {
			chunks = len(ps.waveDraw)
		}
		ps.epoch++
		if chunks == 1 {
			ps.wwork[0].fire(ps.waveDraw)
		} else {
			var wg sync.WaitGroup
			for c := 0; c < chunks; c++ {
				lo := c * len(ps.waveDraw) / chunks
				hi := (c + 1) * len(ps.waveDraw) / chunks
				wg.Add(1)
				go func(ww *wwave, moves []Move) {
					defer wg.Done()
					ww.fire(moves)
				}(ps.wwork[c], ps.waveDraw[lo:hi])
			}
			wg.Wait()
		}
		waveMax := int64(0)
		for c := 0; c < chunks; c++ {
			ww := ps.wwork[c]
			if ww.work > waveMax {
				waveMax = ww.work
			}
			bWork += ww.work
			fired += int(ww.moves)
			ps.moves += ww.moves
			ps.count += ww.countD
			ps.pendingCount += ww.pendingD
			if ps.record {
				ps.trace = append(ps.trace, ww.trace...)
			}
			ww.work, ww.moves, ww.countD, ww.pendingD = 0, 0, 0, 0
			ww.trace = ww.trace[:0]
		}
		bSpan += waveMax
	}
	return bWork, bSpan, fired
}

// fire executes one contiguous chunk of a wave's pre-drawn moves,
// eagerly repairing the influenced guard caches. The mover's radius-R
// ball is the worker's ownership region: influenced nodes outside it
// are never written — they are recorded as a breach and reported by
// Step, exactly like phase A's shard-ownership check.
func (ww *wwave) fire(moves []Move) {
	ps := ww.ps
	for _, mv := range moves {
		u, a := mv.Node, mv.Action
		ww.work++
		if !ps.proto.Execute(u, a) {
			// Unreachable for a well-declared protocol: the pre-draw
			// saw the guard enabled and no disjoint-ball move can have
			// disabled it since.
			continue
		}
		ww.moves++
		if ps.record {
			ww.trace = append(ww.trace, mv)
		}
		if ps.pending[u] {
			ps.pending[u] = false
			ww.pendingD--
		}
		ww.mark(u)
		if ps.inf != nil {
			ww.ballBuf = InfluenceBall(ps.g, u, ps.radius, ww.ballBuf[:0])
			ww.infBuf = ps.inf.Influence(u, a, ww.infBuf[:0])
			for _, q := range ww.infBuf {
				if !containsNode(ww.ballBuf, q) {
					if ww.breach == graph.None {
						ww.breach, ww.breachBy = q, u
					}
					continue
				}
				ww.mark(q)
			}
		} else {
			// Default locality: influence = closed neighbourhood =
			// the radius-1 ball exactly, so no breach is possible.
			for _, q := range ps.g.Neighbors(u) {
				if q != graph.None {
					ww.mark(q)
				}
			}
		}
		evals, countD, pendingD := ps.refreshList(ww.dirty)
		ww.work += evals
		ww.countD += countD
		ww.pendingD += pendingD
		ww.dirty = ww.dirty[:0]
	}
}

// mark queues u for the worker's next guard refresh. The shared stamp
// array is safe: within a wave, two workers' movers have disjoint
// balls, so their marked sets are disjoint.
func (ww *wwave) mark(u graph.NodeID) {
	if ww.ps.mark[u] != ww.ps.epoch {
		ww.ps.mark[u] = ww.ps.epoch
		ww.dirty = append(ww.dirty, u)
	}
}

// containsNode reports whether ball (a small BFS-ordered slice)
// contains q.
func containsNode(ball []graph.NodeID, q graph.NodeID) bool {
	for _, u := range ball {
		if u == q {
			return true
		}
	}
	return false
}

// imbalanced reports whether the per-shard work accumulated since the
// last boundary move is skewed beyond the policy threshold.
func (ps *ParallelSystem) imbalanced() bool {
	var total, max int64
	for _, w := range ps.recentA {
		total += w
		if w > max {
			max = w
		}
	}
	if total == 0 {
		return false
	}
	mean := float64(total) / float64(ps.workers)
	return float64(max) > ps.reshard.Imbalance*mean
}

// reshardByWork re-partitions the id space so each shard carries an
// equal share of (recent work + one unit per node) — the +1 smoothing
// keeps cold regions from collapsing a shard to zero width — and
// reuses the quiesce path of the explicit Reshard.
func (ps *ParallelSystem) reshardByWork() {
	n := ps.g.N()
	total := float64(n)
	for s := 0; s < ps.workers; s++ {
		total += float64(ps.recentA[s])
	}
	per := total / float64(ps.workers)
	bounds := make([]int, ps.workers+1)
	bounds[ps.workers] = n
	k := 1
	cum := 0.0
	for v := 0; v < n && k < ps.workers; v++ {
		s := ps.shardOf[v]
		width := ps.bounds[s+1] - ps.bounds[s]
		cum += 1 + float64(ps.recentA[s])/float64(width)
		for k < ps.workers && cum >= float64(k)*per {
			bounds[k] = v + 1
			k++
		}
	}
	for ; k < ps.workers; k++ {
		bounds[k] = n
	}
	ps.reshards++
	ps.applyBounds(bounds)
}

// sweep is one worker's phase A: fire every enabled interior node of
// the shard in ascending order, eagerly repairing the influenced guard
// caches (ownership keeps every touched index inside the shard).
func (sh *pshard) sweep() {
	ps := sh.ps
	if ps.startRound {
		for v := sh.lo; v < sh.hi; v++ {
			if ps.enabled[v] && !ps.pending[v] {
				ps.pending[v] = true
				sh.pendingD++
			}
		}
	}
	for v := sh.lo; v < sh.hi; v++ {
		if !ps.enabled[v] || !ps.interior[v] {
			continue
		}
		if ps.activation < 1 && sh.rng.Float64() >= ps.activation {
			continue
		}
		id := graph.NodeID(v)
		a := ps.acts[v][0]
		if len(ps.acts[v]) > 1 {
			a = ps.acts[v][sh.rng.Intn(len(ps.acts[v]))]
		}
		if !ps.proto.Execute(id, a) {
			// The cache invariant makes this unreachable for a
			// well-declared protocol; fire nothing and move on.
			continue
		}
		sh.stepMoves++
		if ps.record {
			sh.trace = append(sh.trace, Move{Node: id, Action: a})
		}
		if ps.pending[v] {
			ps.pending[v] = false
			sh.pendingD--
		}
		sh.mark(id)
		if ps.inf != nil {
			sh.infBuf = ps.inf.Influence(id, a, sh.infBuf[:0])
			for _, q := range sh.infBuf {
				sh.mark(q)
			}
		} else {
			for _, q := range ps.g.Neighbors(id) {
				if q != graph.None {
					sh.mark(q)
				}
			}
		}
		sh.refresh()
	}
}

// mark queues u for guard re-evaluation. A node outside the shard is
// never written (that would be the data race ownership exists to
// prevent); it is recorded as a breach and reported by Step.
func (sh *pshard) mark(u graph.NodeID) {
	if int(u) < sh.lo || int(u) >= sh.hi {
		if sh.breach == graph.None {
			sh.breach = u
		}
		return
	}
	if sh.ps.mark[u] != sh.ps.epoch {
		sh.ps.mark[u] = sh.ps.epoch
		sh.dirty = append(sh.dirty, u)
	}
}

// refreshList re-evaluates the guards of the given dirty nodes and
// re-arms their dedup stamps, returning the evaluation count and the
// enabled/pending deltas. It is the shared core of the phase-A shard
// refresh, the wave refresh and the serial refresh; each caller's
// ownership argument (shard ranges, disjoint balls, or quiescence)
// makes its dirty set disjoint from every concurrent caller's, so the
// per-node writes never race.
//
// The stamp re-arm matters: a later move of the same epoch may
// influence these nodes again, and the refresh just performed must not
// swallow that re-evaluation. Epochs start at 1, so 0 never matches.
func (ps *ParallelSystem) refreshList(dirty []graph.NodeID) (evals int64, countD, pendingD int) {
	for _, u := range dirty {
		was := ps.enabled[u]
		if ps.g.Alive(u) {
			ps.acts[u] = ps.proto.Enabled(u, ps.acts[u][:0])
			evals++
		} else {
			ps.acts[u] = ps.acts[u][:0]
		}
		now := len(ps.acts[u]) > 0
		if now != was {
			ps.enabled[u] = now
			if now {
				countD++
			} else {
				countD--
			}
		}
		if !now && ps.pending[u] {
			ps.pending[u] = false
			pendingD--
		}
	}
	for _, u := range dirty {
		ps.mark[u] = 0
	}
	return evals, countD, pendingD
}

// refresh re-evaluates the guards of the shard's dirty nodes, keeping
// the cache invariant inside the shard during phase A.
func (sh *pshard) refresh() {
	evals, countD, pendingD := sh.ps.refreshList(sh.dirty)
	sh.stepEvals += evals
	sh.countD += countD
	sh.pendingD += pendingD
	sh.dirty = sh.dirty[:0]
}

// markDirtySerial queues u for the serial refresh (boundary pass and
// ApplyDelta) — any shard, no ownership restriction.
func (ps *ParallelSystem) markDirtySerial(u graph.NodeID) {
	if ps.mark[u] != ps.epoch {
		ps.mark[u] = ps.epoch
		ps.dirty = append(ps.dirty, u)
	}
}

// refreshSerial re-evaluates the guards of the serial dirty set and
// returns the number of evaluations performed.
func (ps *ParallelSystem) refreshSerial() int64 {
	evals, countD, pendingD := ps.refreshList(ps.dirty)
	ps.count += countD
	ps.pendingCount += pendingD
	ps.dirty = ps.dirty[:0]
	return evals
}

// ApplyDelta incorporates one topology mutation — already applied to
// the protocol's graph — into the running parallel system. Workers
// only exist inside Step, so the call always finds the engine
// quiesced; it runs the protocol's TopologyChanged hook, repairs the
// guard cache for the touched set plus the returned influence ball
// (appending cache slots when the delta grew the id space — new ids
// join the last shard), and re-classifies interior/frontier membership
// inside the radius-R ball of the touched set, since only nodes that
// close to the mutation can change sides of the disjointness test.
func (ps *ParallelSystem) ApplyDelta(d graph.Delta) {
	var ball []graph.NodeID
	if ta, ok := ps.proto.(TopologyAware); ok {
		ps.infBuf = ta.TopologyChanged(d, ps.infBuf[:0])
		ball = ps.infBuf
	} else {
		ps.infBuf = ps.infBuf[:0]
		for _, u := range d.Touched {
			ps.infBuf = InfluenceClosedNeighborhood(ps.g, u, ps.infBuf)
		}
		ball = ps.infBuf
	}
	if n := ps.g.N(); n != ps.seenN {
		if ps.inited {
			ps.grow(n)
		}
		ps.seenN = n
	}
	if !ps.inited {
		return
	}
	ps.epoch++
	ps.dirty = ps.dirty[:0]
	for _, u := range d.Touched {
		ps.markDirtySerial(u)
	}
	for _, u := range ball {
		ps.markDirtySerial(u)
	}
	ps.work += ps.refreshSerial()
	ps.reclassify(d.Touched)
}

// grow appends cache and geometry slots for a grown id space: the new
// ids extend the last shard, the arena doubles when exhausted, and the
// new slots start disabled until their deltas' refresh evaluates them
// — amortised O(1) per appended node, the same growth contract as
// System.growCaches.
func (ps *ParallelSystem) grow(n int) {
	old := len(ps.acts)
	if need := n * actionStride; need > cap(ps.arena) {
		newCap := 2 * cap(ps.arena)
		if newCap < need {
			newCap = need
		}
		arena := make([]ActionID, newCap)
		for v := 0; v < old; v++ {
			slot := arena[v*actionStride : v*actionStride : (v+1)*actionStride]
			ps.acts[v] = append(slot, ps.acts[v]...)
		}
		ps.arena = arena
	}
	last := int32(ps.workers - 1)
	for v := old; v < n; v++ {
		ps.acts = append(ps.acts, ps.arena[v*actionStride:v*actionStride:(v+1)*actionStride])
		ps.enabled = append(ps.enabled, false)
		ps.mark = append(ps.mark, 0)
		ps.pending = append(ps.pending, false)
		ps.shardOf = append(ps.shardOf, last)
		// A fresh node is isolated, so its radius ball is itself:
		// interior to the last shard until an AddEdge delta
		// re-classifies it.
		ps.interior = append(ps.interior, true)
	}
	ps.bounds[ps.workers] = n
	ps.shards[ps.workers-1].hi = n
}

// reclassify recomputes interior membership for every node within
// radius R of the touched set and rebuilds the frontier list when any
// membership flipped. Membership can only flip within R of a touched
// node (the disjointness test reads a radius-R ball), so a delta whose
// R ball confirms every classification skips the rebuild entirely —
// ReclassSkips counts those, the cheap common case for deep-interior
// churn on a relabeled graph.
//
// The wave schedule needs a strictly wider test: an edge flap can
// shorten or lengthen paths *between* two frontier nodes without
// flipping anyone's membership, changing the distance-2R conflict
// graph. Any such conflict change runs through a touched endpoint, so
// it implies a frontier node within 2R of the touched set — when the
// 2R ball contains no frontier node, the cached coloring stays valid
// and is kept; otherwise it is recomputed even if the frontier list
// itself did not change.
func (ps *ParallelSystem) reclassify(touched []graph.NodeID) {
	changed := false
	for _, t := range touched {
		ps.classBuf = InfluenceBall(ps.g, t, ps.radius, ps.classBuf[:0])
		for _, u := range ps.classBuf {
			in := ps.isInterior(u)
			if in != ps.interior[u] {
				ps.interior[u] = in
				changed = true
			}
		}
	}
	if changed {
		ps.frontierRebuilds++
		ps.rebuildFrontier()
		return
	}
	if ps.waves {
		for _, t := range touched {
			ps.classBuf = InfluenceBall(ps.g, t, 2*ps.radius, ps.classBuf[:0])
			for _, u := range ps.classBuf {
				if !ps.interior[u] {
					ps.rebuildWaves()
					return
				}
			}
		}
	}
	ps.reclassSkips++
}

// Reshard re-partitions the id space evenly across the workers and
// re-classifies every node — O(n·R). Call it after a growth campaign
// has bloated the last shard; without a ReshardPolicy the engine never
// reshards implicitly, so step costs stay predictable.
func (ps *ParallelSystem) Reshard() {
	if !ps.inited {
		return
	}
	n := ps.g.N()
	bounds := make([]int, ps.workers+1)
	for s := 0; s <= ps.workers; s++ {
		bounds[s] = s * n / ps.workers
	}
	ps.applyBounds(bounds)
}

// applyBounds installs a new shard partition (monotone bounds with
// bounds[0]=0 and bounds[workers]=n), re-classifies every node and
// resets the recent-work window. Callers run between steps, so no
// worker observes the move — per-shard RNG streams are untouched, and
// determinism survives because the triggering counters are themselves
// pure functions of (snapshot, seed, workers).
func (ps *ParallelSystem) applyBounds(bounds []int) {
	copy(ps.bounds, bounds)
	for s := 0; s < ps.workers; s++ {
		ps.shards[s].lo = ps.bounds[s]
		ps.shards[s].hi = ps.bounds[s+1]
		for v := ps.bounds[s]; v < ps.bounds[s+1]; v++ {
			ps.shardOf[v] = int32(s)
		}
	}
	for s := range ps.recentA {
		ps.recentA[s] = 0
	}
	ps.sinceReshard = 0
	ps.classifyAll()
}

// Invalidate discards the guard cache and round state; the next Step
// re-scans every guard. Call it after mutating the protocol's
// configuration behind the engine's back (Restore, Randomize,
// CorruptNode), exactly as with System.
func (ps *ParallelSystem) Invalidate() {
	ps.inited = false
	ps.roundOpen = false
	if ps.pendingCount > 0 {
		for v := range ps.pending {
			ps.pending[v] = false
		}
		ps.pendingCount = 0
	}
}

// RunUntil steps the system until pred returns true, the configuration
// becomes terminal, or maxSteps parallel steps have been taken. pred
// runs serially between steps.
func (ps *ParallelSystem) RunUntil(pred func() bool, maxSteps int64) (RunResult, error) {
	start := RunResult{Moves: ps.moves, Steps: ps.steps, Rounds: ps.rounds}
	mk := func(conv bool) RunResult {
		return RunResult{
			Converged: conv,
			Moves:     ps.moves - start.Moves,
			Steps:     ps.steps - start.Steps,
			Rounds:    ps.rounds - start.Rounds,
		}
	}
	if pred() {
		return mk(true), nil
	}
	for i := int64(0); i < maxSteps; i++ {
		_, err := ps.Step()
		if err != nil {
			return mk(false), err
		}
		if pred() {
			return mk(true), nil
		}
		if ps.count == 0 {
			return mk(false), nil
		}
	}
	return mk(false), nil
}

// RunUntilLegitimate runs until the protocol's legitimacy predicate
// holds, checking it serially between parallel steps (incremental
// witnesses keep global counters and are therefore a serial-phase
// tool; the parallel engine never arms one).
func (ps *ParallelSystem) RunUntilLegitimate(maxSteps int64) (RunResult, error) {
	leg, ok := ps.proto.(Legitimacy)
	if !ok {
		return RunResult{}, fmt.Errorf("program: protocol %q has no legitimacy predicate", ps.proto.Name())
	}
	return ps.RunUntil(leg.Legitimate, maxSteps)
}

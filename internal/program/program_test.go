package program

import (
	"errors"
	"testing"

	"netorient/internal/graph"
)

// counterProto is a toy silent protocol: every node must reach the
// value of its smallest-id neighbour plus one (node 0 wants 0); it
// converges like a distance computation and is handy for exercising
// the runner.
type counterProto struct {
	g   *graph.Graph
	val []int
}

func newCounterProto(g *graph.Graph) *counterProto {
	return &counterProto{g: g, val: make([]int, g.N())}
}

func (p *counterProto) Name() string        { return "counter" }
func (p *counterProto) Graph() *graph.Graph { return p.g }

func (p *counterProto) want(v graph.NodeID) int {
	if v == 0 {
		return 0
	}
	min := 1 << 30
	for _, q := range p.g.Neighbors(v) {
		if p.val[q] < min {
			min = p.val[q]
		}
	}
	return min + 1
}

func (p *counterProto) Enabled(v graph.NodeID, buf []ActionID) []ActionID {
	if p.val[v] != p.want(v) {
		buf = append(buf, 0)
	}
	return buf
}

func (p *counterProto) Execute(v graph.NodeID, a ActionID) bool {
	if a != 0 || p.val[v] == p.want(v) {
		return false
	}
	p.val[v] = p.want(v)
	return true
}

func (p *counterProto) Legitimate() bool {
	for v := range p.val {
		if p.val[v] != p.want(graph.NodeID(v)) {
			return false
		}
	}
	return true
}

// pickFirst is a minimal daemon for runner tests.
type pickFirst struct{}

func (pickFirst) Name() string { return "pick-first" }
func (pickFirst) Select(set EnabledSet) []Move {
	return []Move{{Node: set.At(0), Action: set.Actions(0, nil)[0]}}
}

// pickAll activates everything.
type pickAll struct{}

func (pickAll) Name() string { return "pick-all" }
func (pickAll) Select(set EnabledSet) []Move {
	out := make([]Move, set.Len())
	for i := range out {
		out[i] = Move{Node: set.At(i), Action: set.Actions(i, nil)[0]}
	}
	return out
}

func TestSystemRunsToSilence(t *testing.T) {
	g := graph.Path(5)
	p := newCounterProto(g)
	for v := range p.val {
		p.val[v] = 42 // corrupt
	}
	sys := NewSystem(p, pickFirst{})
	res, err := sys.RunUntilLegitimate(10000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("no convergence")
	}
	if !sys.Silent() {
		t.Fatal("converged but not silent")
	}
	if sys.Moves() == 0 || sys.Steps() == 0 {
		t.Fatal("counters not advanced")
	}
}

func TestSystemCountsMovesAndSteps(t *testing.T) {
	g := graph.Path(3)
	p := newCounterProto(g)
	p.val = []int{9, 9, 9}
	sys := NewSystem(p, pickAll{})
	fired, err := sys.Step()
	if err != nil {
		t.Fatal(err)
	}
	if fired == 0 {
		t.Fatal("no moves fired")
	}
	if sys.Steps() != 1 {
		t.Fatalf("steps %d, want 1", sys.Steps())
	}
	if sys.Moves() != int64(fired) {
		t.Fatalf("moves %d, want %d", sys.Moves(), fired)
	}
}

func TestSystemRoundsUnderSynchronousLikeDaemon(t *testing.T) {
	// Under pick-all with guard re-validation, the counter protocol on
	// a path of length L needs about L rounds (information flows one
	// hop per round at worst).
	g := graph.Path(10)
	p := newCounterProto(g)
	for v := range p.val {
		p.val[v] = 99
	}
	sys := NewSystem(p, pickAll{})
	res, err := sys.RunUntilLegitimate(100000)
	if err != nil || !res.Converged {
		t.Fatalf("no convergence: %v %+v", err, res)
	}
	if res.Rounds == 0 {
		t.Fatal("rounds not counted")
	}
	if res.Rounds > int64(3*g.N()) {
		t.Fatalf("rounds %d, want O(n)", res.Rounds)
	}
}

func TestSystemTerminalWithoutLegitimacy(t *testing.T) {
	// RunUntil with an unsatisfiable predicate on a silent protocol
	// reports non-convergence once terminal.
	g := graph.Path(3)
	p := newCounterProto(g)
	sys := NewSystem(p, pickFirst{})
	res, err := sys.RunUntil(func() bool { return false }, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("converged on an unsatisfiable predicate")
	}
	if !sys.Silent() {
		t.Fatal("system should be terminal")
	}
}

func TestSystemNoDaemon(t *testing.T) {
	g := graph.Path(2)
	p := newCounterProto(g)
	sys := NewSystem(p, nil)
	if _, err := sys.Step(); !errors.Is(err, ErrNoDaemon) {
		t.Fatalf("got %v, want ErrNoDaemon", err)
	}
}

func TestRunUntilLegitimateRequiresPredicate(t *testing.T) {
	// A protocol without Legitimacy cannot be run to legitimacy.
	g := graph.Path(2)
	sys := NewSystem(struct{ Protocol }{newCounterProto(g)}, pickFirst{})
	if _, err := sys.RunUntilLegitimate(10); err == nil {
		t.Fatal("expected error for protocol without legitimacy predicate")
	}
}

func TestHoldsFor(t *testing.T) {
	g := graph.Path(4)
	p := newCounterProto(g)
	sys := NewSystem(p, pickFirst{})
	if res, err := sys.RunUntilLegitimate(1000); err != nil || !res.Converged {
		t.Fatalf("setup failed: %v %+v", err, res)
	}
	ok, err := sys.HoldsFor(p.Legitimate, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("closure violated for a silent legitimate protocol")
	}
	// A predicate that is currently false fails immediately.
	ok, err = sys.HoldsFor(func() bool { return false }, 5)
	if err != nil || ok {
		t.Fatalf("HoldsFor(false) = %v,%v; want false,nil", ok, err)
	}
}

func TestResetCounters(t *testing.T) {
	g := graph.Path(4)
	p := newCounterProto(g)
	p.val = []int{5, 5, 5, 5}
	sys := NewSystem(p, pickFirst{})
	if _, err := sys.RunUntilLegitimate(1000); err != nil {
		t.Fatal(err)
	}
	sys.ResetCounters()
	if sys.Moves() != 0 || sys.Steps() != 0 || sys.Rounds() != 0 {
		t.Fatal("counters not reset")
	}
}

func TestMoveHook(t *testing.T) {
	g := graph.Path(3)
	p := newCounterProto(g)
	p.val = []int{7, 7, 7}
	sys := NewSystem(p, pickFirst{})
	var seen []Move
	sys.MoveHook = func(m Move) { seen = append(seen, m) }
	if _, err := sys.RunUntilLegitimate(1000); err != nil {
		t.Fatal(err)
	}
	if int64(len(seen)) != sys.Moves() {
		t.Fatalf("hook saw %d moves, system counted %d", len(seen), sys.Moves())
	}
}

// wideProto enables more actions per node than the scheduler's arena
// stride, exercising the private-growth fallback: node v has val[v]+2
// enabled actions until it executes one, which zeroes it.
type wideProto struct {
	g   *graph.Graph
	val []int
}

func (p *wideProto) Name() string        { return "wide" }
func (p *wideProto) Graph() *graph.Graph { return p.g }

func (p *wideProto) Enabled(v graph.NodeID, buf []ActionID) []ActionID {
	for a := 0; a < p.val[v]+2 && p.val[v] > 0; a++ {
		buf = append(buf, ActionID(a))
	}
	return buf
}

func (p *wideProto) Execute(v graph.NodeID, a ActionID) bool {
	if p.val[v] <= 0 || int(a) >= p.val[v]+2 {
		return false
	}
	p.val[v] = 0
	return true
}

func TestArenaStrideOverflow(t *testing.T) {
	// Nodes expose up to 2+2·actionStride enabled actions — far past
	// the arena stride — and the incremental scheduler must neither
	// clobber a neighbour's slot nor lose actions.
	g := graph.Path(4)
	mk := func() *wideProto {
		p := &wideProto{g: g, val: make([]int, g.N())}
		for v := range p.val {
			p.val[v] = 2 * actionStride
		}
		return p
	}
	inc := NewSystem(mk(), pickFirst{})
	full := NewSystemFullScan(mk(), pickFirst{})
	for i := 0; i < 20; i++ {
		nInc, errInc := inc.Step()
		nFull, errFull := full.Step()
		if errInc != nil || errFull != nil || nInc != nFull {
			t.Fatalf("step %d: inc=(%d,%v) full=(%d,%v)", i, nInc, errInc, nFull, errFull)
		}
		if inc.EnabledCount() != full.EnabledCount() {
			t.Fatalf("step %d: enabled %d vs %d", i, inc.EnabledCount(), full.EnabledCount())
		}
		if nInc == 0 {
			break
		}
	}
	if !inc.Silent() || !full.Silent() {
		t.Fatal("wide protocol did not silence")
	}
}

func TestInvalidateResyncsAfterExternalMutation(t *testing.T) {
	g := graph.Path(4)
	p := newCounterProto(g)
	for v := range p.val {
		p.val[v] = 7
	}
	sys := NewSystem(p, pickFirst{})
	if res, err := sys.RunUntilLegitimate(1000); err != nil || !res.Converged {
		t.Fatalf("setup: %v %+v", err, res)
	}
	if !sys.Silent() {
		t.Fatal("not silent after convergence")
	}
	// Mutate behind the system's back; the cache is stale by contract
	// until Invalidate.
	p.val[2] = 99
	sys.Invalidate()
	if sys.Silent() {
		t.Fatal("Invalidate did not pick up the external mutation")
	}
	if res, err := sys.RunUntilLegitimate(1000); err != nil || !res.Converged {
		t.Fatalf("re-convergence: %v %+v", err, res)
	}
	if !sys.Silent() {
		t.Fatal("not silent after re-convergence")
	}
}

func TestFullScanCountersMatchIncremental(t *testing.T) {
	mk := func() *counterProto {
		p := newCounterProto(graph.Path(6))
		for v := range p.val {
			p.val[v] = 31
		}
		return p
	}
	inc := NewSystem(mk(), pickAll{})
	full := NewSystemFullScan(mk(), pickAll{})
	rInc, err := inc.RunUntilLegitimate(10000)
	if err != nil {
		t.Fatal(err)
	}
	rFull, err := full.RunUntilLegitimate(10000)
	if err != nil {
		t.Fatal(err)
	}
	if rInc != rFull {
		t.Fatalf("results diverge: incremental %+v, full scan %+v", rInc, rFull)
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {1024, 10}, {1025, 11},
	}
	for _, c := range cases {
		if got := Log2Ceil(c.n); got != c.want {
			t.Errorf("Log2Ceil(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

// spacedProto wraps counterProto with a SpaceMeter.
type spacedProto struct{ *counterProto }

func (p spacedProto) StateBits(v graph.NodeID) int { return 8 + int(v) }

func TestMeasureSpace(t *testing.T) {
	g := graph.Path(3)
	p := spacedProto{newCounterProto(g)}
	rep, ok := MeasureSpace(p)
	if !ok {
		t.Fatal("SpaceMeter not detected")
	}
	if rep.TotalBits != 8+9+10 {
		t.Errorf("total %d, want 27", rep.TotalBits)
	}
	if rep.MinNodeBits != 8 || rep.MaxNodeBits != 10 {
		t.Errorf("min/max %d/%d, want 8/10", rep.MinNodeBits, rep.MaxNodeBits)
	}
	if _, ok := MeasureSpace(newCounterProto(g)); ok {
		t.Error("non-metered protocol should report !ok")
	}
}

func TestActionNameFallback(t *testing.T) {
	g := graph.Path(2)
	p := newCounterProto(g)
	if got := ActionName(p, 3); got != "A3" {
		t.Errorf("fallback name %q, want A3", got)
	}
}

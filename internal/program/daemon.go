package program

import "netorient/internal/graph"

// Candidate lists the enabled actions of one enabled processor at the
// start of a step.
type Candidate struct {
	Node    graph.NodeID
	Actions []ActionID
}

// Daemon selects which enabled processors move in each step (§2.1.2).
// Select receives every enabled processor with its enabled actions, in
// ascending node order, and returns a non-empty sequence of moves, at
// most one per processor; the runner executes them in order with guard
// re-validation. Select must not retain cands or the Actions slices
// past the call (the incremental runner reuses their backing storage),
// and symmetrically the runner consumes the returned slice within the
// step, so a daemon may reuse its selection buffer across calls.
type Daemon interface {
	Name() string
	Select(cands []Candidate) []Move
}

package program

import (
	"sort"

	"netorient/internal/graph"
)

// Candidate lists the enabled actions of one enabled processor. The
// scheduler's hot path no longer materialises candidate lists (see
// EnabledSet); the type remains as the currency of the legacy daemon
// contract and of explicit sets built for tests (CandidateSet).
type Candidate struct {
	Node    graph.NodeID
	Actions []ActionID
}

// EnabledSet is the daemon's view of the enabled processors at the
// start of a step (§2.1.2): an indexable, ascending-ordered set backed
// by the runner's cached enabled-action lists.
//
// The contract:
//
//   - Len returns the number of enabled processors.
//   - At(i) returns the i-th enabled processor; indices enumerate the
//     set in strictly ascending node order (exactly the order a full
//     guard scan would enumerate), so seeded daemons behave
//     identically under every scheduler.
//   - Actions(i, buf) appends the enabled actions of At(i) to buf and
//     returns the extended slice, letting daemons reuse a private
//     buffer across steps.
//   - Contains reports membership of an arbitrary node in O(1).
//
// Costs under the incremental runner: Len and Contains are O(1), At
// and Actions are O(log n) (an order-statistic query over the runner's
// Fenwick index) for random ranks, and amortized O(1+gap) for
// ascending sequential ranks (the runner memoises the last answer and
// scans for its successor). A sampling daemon (pick one of Len()
// processors) therefore costs O(log n) per step instead of the
// Ω(#enabled) slice handed to the legacy contract; an
// enumerate-everything daemon pays O(n + #enabled), matching the old
// materialised slice.
//
// The view is only valid for the duration of the Select call that
// received it: the runner mutates the underlying caches as soon as the
// selected moves execute. Daemons must not retain it, nor the slices
// Actions returns into caller-owned buffers.
type EnabledSet interface {
	Len() int
	At(i int) graph.NodeID
	Actions(i int, buf []ActionID) []ActionID
	Contains(v graph.NodeID) bool
}

// Daemon selects which enabled processors move in each step (§2.1.2).
// Select receives the enabled set and returns a non-empty sequence of
// moves, at most one per processor; the runner executes them in order
// with guard re-validation. The runner consumes the returned slice
// within the step, so a daemon may reuse its selection buffer across
// calls.
type Daemon interface {
	Name() string
	Select(set EnabledSet) []Move
}

// LegacyDaemon is the pre-EnabledSet daemon contract: Select receives
// every enabled processor with its enabled actions as a materialised
// slice, in ascending node order. It survives as a migration aid —
// wrap implementations with AdaptLegacy — and as the shape of the
// differential tests that pin the new daemons to the old behaviour.
// Materialising the slice costs Ω(#enabled) per step, which is exactly
// the overhead the EnabledSet contract removes; new daemons should
// implement Daemon directly.
type LegacyDaemon interface {
	Name() string
	Select(cands []Candidate) []Move
}

// legacyAdapter materialises an EnabledSet into the candidate slice a
// LegacyDaemon expects. Buffers are reused across steps, so adapting
// adds no steady-state allocations — only the Ω(#enabled) walk.
type legacyAdapter struct {
	d     LegacyDaemon
	cands []Candidate
	nodes []graph.NodeID
	arena []ActionID
	spans []int // arena offsets; spans[i]..spans[i+1] is candidate i's slice
}

// AdaptLegacy wraps a LegacyDaemon as a Daemon. The wrapped daemon
// sees bit-identical candidate lists to the pre-EnabledSet runner, so
// seeded executions are preserved exactly.
func AdaptLegacy(d LegacyDaemon) Daemon { return &legacyAdapter{d: d} }

// Name implements Daemon.
func (a *legacyAdapter) Name() string { return a.d.Name() }

// Select implements Daemon.
func (a *legacyAdapter) Select(set EnabledSet) []Move {
	n := set.Len()
	a.spans = a.spans[:0]
	a.nodes = a.nodes[:0]
	a.arena = a.arena[:0]
	// One ascending pass over the set (At then Actions per rank hits
	// the runner's sequential fast path); nodes and spans are recorded
	// now, the arena sliced only after it has stopped growing —
	// appends may reallocate, which would invalidate eagerly-taken
	// sub-slices.
	for i := 0; i < n; i++ {
		a.nodes = append(a.nodes, set.At(i))
		a.spans = append(a.spans, len(a.arena))
		a.arena = set.Actions(i, a.arena)
	}
	a.spans = append(a.spans, len(a.arena))
	a.cands = a.cands[:0]
	for i := 0; i < n; i++ {
		lo, hi := a.spans[i], a.spans[i+1]
		a.cands = append(a.cands, Candidate{Node: a.nodes[i], Actions: a.arena[lo:hi:hi]})
	}
	return a.d.Select(a.cands)
}

// CandidateSet wraps an explicit candidate list as an EnabledSet. The
// list must be in strictly ascending node order. Contains costs
// O(log n) by binary search; the incremental runner's native view is
// O(1). It backs the full-scan oracle and hand-built sets in tests.
type CandidateSet []Candidate

// Len implements EnabledSet.
func (c CandidateSet) Len() int { return len(c) }

// At implements EnabledSet.
func (c CandidateSet) At(i int) graph.NodeID { return c[i].Node }

// Actions implements EnabledSet.
func (c CandidateSet) Actions(i int, buf []ActionID) []ActionID {
	return append(buf, c[i].Actions...)
}

// Contains implements EnabledSet.
func (c CandidateSet) Contains(v graph.NodeID) bool {
	i := sort.Search(len(c), func(i int) bool { return c[i].Node >= v })
	return i < len(c) && c[i].Node == v
}

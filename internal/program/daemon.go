package program

import "netorient/internal/graph"

// Candidate lists the enabled actions of one enabled processor at the
// start of a step.
type Candidate struct {
	Node    graph.NodeID
	Actions []ActionID
}

// Daemon selects which enabled processors move in each step (§2.1.2).
// Select receives every enabled processor with its enabled actions and
// returns a non-empty sequence of moves, at most one per processor; the
// runner executes them in order with guard re-validation. Select must
// not retain cands or the Actions slices past the call.
type Daemon interface {
	Name() string
	Select(cands []Candidate) []Move
}

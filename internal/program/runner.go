package program

import (
	"errors"
	"fmt"

	"netorient/internal/graph"
)

// ErrNoDaemon is returned by System methods when no daemon was set.
var ErrNoDaemon = errors.New("program: system has no daemon")

// actionStride is the per-node slot width of the enabled-action arena.
// Every protocol in this library exposes at most six simultaneously
// enabled actions per node; a node that exceeds the stride transparently
// falls back to a privately grown buffer (the three-index slice below
// caps capacity, so append reallocates instead of clobbering the next
// node's slot).
const actionStride = 8

// System drives one protocol under one daemon and accounts for moves
// and rounds. It is not safe for concurrent use.
//
// # Scheduling
//
// By default the System runs an event-driven incremental scheduler: it
// caches every node's enabled-action list and, after a move at v,
// re-evaluates guards only for the nodes the move can influence — v's
// closed 1-hop neighbourhood unless the protocol declares a wider set
// via the Influencer contract. The enabled set handed to the daemon is
// an indexable EnabledSet view over a Fenwick (binary indexed) tree of
// enabled bits, maintained with O(log n) work per enabledness flip, so
// a step costs O(Δ·log n) bookkeeping plus the daemon's own queries —
// there is no per-step candidate-slice rebuild, and a sampling daemon
// makes steps sublinear in the enabled count outright.
// NewSystemFullScan still provides the Θ(n)-scan seed runner as a
// differential-testing oracle. Both schedulers produce bit-identical
// executions: EnabledSet enumerates processors in ascending node
// order, exactly as a full scan does, so a deterministic (or seeded)
// daemon makes the same selections either way.
//
// The dirty-set invariant the incremental scheduler maintains: after
// every Step, the cached action list of every node equals what
// Protocol.Enabled would report on the current configuration. The
// invariant holds because guards read only locally-shared variables:
// any guard change is attributable to a fired move whose Influence set
// covers the changed node. Mutating the protocol's configuration
// behind the System's back (Restore, Randomize, CorruptNode) breaks
// the invariant; call Invalidate afterwards — or create a fresh System,
// or call ResetCounters, both of which invalidate implicitly.
//
// # Legitimacy
//
// RunUntilLegitimate consults the protocol's incremental legitimacy
// witness (the Witness contract) when one is available: the witness's
// violation counters are refreshed from the same dirty sets the guard
// cache uses, so the per-step legitimacy decision is O(1) instead of
// the O(n) Legitimate() scan. Witness state obeys the same invariant
// and the same Invalidate contract as the guard cache.
type System struct {
	proto  Protocol
	inf    Influencer // cached type assertion; nil ⇒ default 1-hop locality
	g      *graph.Graph
	daemon Daemon

	moves  int64
	steps  int64
	rounds int64

	fullScan bool

	// Incremental scheduler state (valid iff inited).
	inited  bool
	arena   []ActionID     // backing storage for acts, one stride per node
	acts    [][]ActionID   // per-node cached enabled-action lists
	enabled []bool         // enabled[v] ⇔ len(acts[v]) > 0
	count   int            // number of enabled nodes
	fen     []int32        // Fenwick tree over enabled bits, 1-indexed
	fenHigh int            // largest power of two ≤ n, for select queries
	dirty   []graph.NodeID // nodes to re-evaluate this step
	mark    []int64        // epoch stamps deduplicating dirty
	epoch   int64
	infBuf  []graph.NodeID

	// Rank-query memo: the last At(i) answered, so the At/Actions pair
	// every daemon issues costs one Fenwick select, not two.
	memoIdx  int
	memoNode graph.NodeID

	// Round bookkeeping, incremental flavour: pending[v] holds the
	// processors that were enabled when the current round began and
	// have neither moved nor been seen disabled since.
	pending      []bool
	pendingCount int
	roundOpen    bool

	// Round bookkeeping, full-scan flavour (legacy map form, kept
	// untouched so the oracle stays byte-for-byte the seed algorithm).
	pendingMap map[graph.NodeID]bool

	// Armed incremental legitimacy witness (nil when disarmed); the
	// dirty-set refresh keeps it synchronised with the configuration.
	witness Witness

	// seenN is the node count the caches were sized for; ApplyDelta
	// appends fresh slots (amortised O(1) each) when a delta grew the
	// id space.
	seenN int

	// Reusable buffers.
	fullCands []Candidate
	selBuf    []ActionID

	// MoveHook, when non-nil, observes every executed move.
	MoveHook func(Move)
}

// NewSystem returns a System for proto under d, using the incremental
// enabled-set scheduler.
func NewSystem(proto Protocol, d Daemon) *System {
	inf, _ := proto.(Influencer)
	return &System{proto: proto, daemon: d, g: proto.Graph(), inf: inf, seenN: proto.Graph().N()}
}

// NewSystemFullScan returns a System that re-evaluates every node's
// guards on every step — the seed algorithm. It is asymptotically
// slower than NewSystem and exists as the reference oracle for
// differential tests and benchmarks.
func NewSystemFullScan(proto Protocol, d Daemon) *System {
	s := NewSystem(proto, d)
	s.fullScan = true
	return s
}

// Protocol returns the protocol under execution.
func (s *System) Protocol() Protocol { return s.proto }

// Moves returns the number of action executions so far.
func (s *System) Moves() int64 { return s.moves }

// Steps returns the number of daemon steps so far.
func (s *System) Steps() int64 { return s.steps }

// Rounds returns the number of completed rounds so far. A round is the
// minimal computation segment in which every processor that was
// continuously enabled since the segment began has executed a move or
// become disabled — the standard asynchronous time unit.
func (s *System) Rounds() int64 { return s.rounds }

// ResetCounters zeroes the move/step/round counters and restarts round
// tracking from the current configuration. Use it to measure the cost
// of a phase that starts "now" (e.g. orientation after the substrate
// has stabilized, as in §3.2.3). It also invalidates the cached
// enabled sets, so it is safe to call after mutating the protocol's
// configuration directly.
func (s *System) ResetCounters() {
	s.moves, s.steps, s.rounds = 0, 0, 0
	s.Invalidate()
}

// Invalidate discards the cached enabled sets, the armed legitimacy
// witness and the round-pending state (round tracking restarts from
// the current configuration at the next Step, in both scheduler
// modes). Call it after changing the protocol's configuration through
// any channel other than Step — Snapshotter.Restore,
// Randomizer.Randomize, NodeCorruptor.CorruptNode, or direct variable
// manipulation. The next Step (or Silent/EnabledCount) re-evaluates
// every guard once and resumes incremental maintenance from there; the
// next RunUntilLegitimate re-arms the witness from scratch.
func (s *System) Invalidate() {
	s.inited = false
	s.roundOpen = false
	s.pendingMap = nil
	s.witness = nil
	if s.pendingCount > 0 {
		for v := range s.pending {
			s.pending[v] = false
		}
		s.pendingCount = 0
	}
}

// ApplyDelta incorporates one topology mutation — already applied to
// the protocol's graph — into the running system, at O(deg·Δ) instead
// of the Θ(n) rescan Invalidate costs. It is the mutation's second
// half: mutate the graph, then immediately ApplyDelta the returned
// record on every System driving a protocol over that graph, before
// any other System method runs.
//
// The call first gives the protocol its TopologyChanged hook (once per
// System — a protocol driven by several Systems must only be repaired
// through one of them), which rebinds port-indexed state, clamps
// dangling references, and returns the delta's influence ball. The
// incremental scheduler then re-evaluates guards, Fenwick bits, round
// bookkeeping and witness counters for exactly the touched set plus
// that ball; the full-scan oracle, which has no guard cache, only
// discharges round-pending processors the delta disabled, so both
// schedulers remain bit-identical across interleaved topology events
// (the differential suite locksteps this).
//
// A protocol without the TopologyAware hook gets the default ball —
// the closed 1-hop neighbourhoods of the delta's Touched set — which
// is sound only for protocols whose guards and derived facts are
// 1-hop local and hole-tolerant; anything else should either implement
// the hook or use Invalidate. A delta that grew the node id space
// (AddNode past every dead slot) takes the append growth path: the
// per-node cache geometry is extended in place with capacity doubling
// (the Fenwick index is kept sized to a power-of-two capacity with a
// zero tail, so a grown leaf is one O(log n) flip, not a rebuild), the
// new node's guards join the delta's dirty set, and round tracking
// stays open — amortised O(1) per appended node, which is what lets a
// graph grow live to 10⁶–10⁷ nodes without Θ(n) per AddNode. Witnesses
// stay armed across ApplyDelta, except across growth (their per-node
// counters are sized to the old id space); a dropped witness lazily
// re-arms on the next legitimacy query. If the hook invalidated the
// protocol's counters they likewise re-arm lazily.
func (s *System) ApplyDelta(d graph.Delta) {
	var ball []graph.NodeID
	if ta, ok := s.proto.(TopologyAware); ok {
		s.infBuf = ta.TopologyChanged(d, s.infBuf[:0])
		ball = s.infBuf
	} else {
		s.infBuf = s.infBuf[:0]
		for _, u := range d.Touched {
			s.infBuf = InfluenceClosedNeighborhood(s.g, u, s.infBuf)
		}
		ball = s.infBuf
	}
	if n := s.g.N(); n != s.seenN {
		// The id space grew. Append cache slots for the new ids (the
		// new nodes are isolated until their AddEdge deltas arrive, so
		// the touched set below covers every guard the growth can
		// change); the witness is dropped — its counters are per-node —
		// and re-arms on the next legitimacy query.
		if s.acts != nil {
			s.growCaches(n)
		}
		s.seenN = n
		s.witness = nil
	}
	if s.fullScan {
		// No guard cache to repair; the delta is a settle point for
		// round tracking, mirroring the dirty-set discharge below so
		// round accounting stays identical across schedulers.
		for v := range s.pendingMap {
			if !s.g.Alive(v) {
				delete(s.pendingMap, v)
				continue
			}
			s.selBuf = s.proto.Enabled(v, s.selBuf[:0])
			if len(s.selBuf) == 0 {
				delete(s.pendingMap, v)
			}
		}
		return
	}
	if !s.inited {
		// No guard cache to repair yet — the bootstrap scan will see
		// the new topology. But a witness armed before any step
		// (RunUntilLegitimate on an already-legitimate start) has no
		// dirty-set refresh to ride, so refresh its contributions for
		// the delta's ball here; otherwise its counters go stale and
		// the next legitimacy verdict is garbage.
		if s.witness != nil {
			for _, u := range d.Touched {
				s.witness.WitnessRefresh(u)
			}
			for _, u := range ball {
				s.witness.WitnessRefresh(u)
			}
		}
		return
	}
	s.epoch++
	s.dirty = s.dirty[:0]
	for _, u := range d.Touched {
		s.markDirty(u)
	}
	for _, u := range ball {
		s.markDirty(u)
	}
	s.refreshDirty()
}

// ensureInit performs the one full guard scan the incremental scheduler
// needs to bootstrap its cache.
func (s *System) ensureInit() {
	if s.inited {
		return
	}
	n := s.g.N()
	if s.acts == nil {
		s.arena = make([]ActionID, n*actionStride)
		s.acts = make([][]ActionID, n)
		for v := 0; v < n; v++ {
			s.acts[v] = s.arena[v*actionStride : v*actionStride : (v+1)*actionStride]
		}
		s.enabled = make([]bool, n)
		s.mark = make([]int64, n)
		s.pending = make([]bool, n)
		// The Fenwick index is sized to a power-of-two capacity ≥ n
		// with an all-zero tail, so an AddNode that grows the id space
		// extends it with one leaf flip instead of a rebuild
		// (growCaches re-doubles the capacity when the tail runs out).
		s.fenHigh = 1
		for s.fenHigh < n {
			s.fenHigh <<= 1
		}
		s.fen = make([]int32, s.fenHigh+1)
	}
	for i := range s.fen {
		s.fen[i] = 0
	}
	s.count = 0
	for v := 0; v < n; v++ {
		id := graph.NodeID(v)
		if s.g.Alive(id) {
			s.acts[v] = s.proto.Enabled(id, s.acts[v][:0])
		} else {
			// Dead processors execute nothing; the scheduler owns this
			// rule so protocols keep their guards liveness-oblivious.
			s.acts[v] = s.acts[v][:0]
		}
		on := len(s.acts[v]) > 0
		s.enabled[v] = on
		if on {
			s.fen[v+1] = 1
			s.count++
		}
	}
	// Linear Fenwick build from the leaf bits (the capacity tail past
	// n holds zero leaves and stays zero).
	for i := 1; i < len(s.fen); i++ {
		if j := i + (i & -i); j < len(s.fen) {
			s.fen[j] += s.fen[i]
		}
	}
	s.memoIdx = -1
	s.inited = true
}

// growCaches extends the per-node cache geometry from len(acts) to n
// slots, in place: the arena doubles its capacity when exhausted
// (rebasing every cached list so steady-state guard refreshes stay
// allocation-free), per-node arrays append zero slots, and the Fenwick
// index re-doubles only when n outgrows its power-of-two capacity —
// otherwise the new leaves land in its existing zero tail for free.
// Amortised over a growth campaign this is O(1) per appended node,
// versus the Θ(n) invalidate-and-rescan the seed runner paid. The new
// slots start disabled; the caller marks the grown ids dirty so their
// guards are evaluated before the next selection.
func (s *System) growCaches(n int) {
	old := len(s.acts)
	if need := n * actionStride; need > cap(s.arena) {
		newCap := 2 * cap(s.arena)
		if newCap < need {
			newCap = need
		}
		arena := make([]ActionID, newCap)
		for v := 0; v < old; v++ {
			slot := arena[v*actionStride : v*actionStride : (v+1)*actionStride]
			s.acts[v] = append(slot, s.acts[v]...)
		}
		s.arena = arena
	}
	for v := old; v < n; v++ {
		s.acts = append(s.acts, s.arena[v*actionStride:v*actionStride:(v+1)*actionStride])
		s.enabled = append(s.enabled, false)
		s.mark = append(s.mark, 0)
		s.pending = append(s.pending, false)
	}
	if n > s.fenHigh {
		capN := s.fenHigh
		if capN < 1 {
			capN = 1
		}
		for capN < n {
			capN <<= 1
		}
		fen := make([]int32, capN+1)
		for v := 0; v < old; v++ {
			if s.enabled[v] {
				fen[v+1] = 1
			}
		}
		for i := 1; i < len(fen); i++ {
			if j := i + (i & -i); j < len(fen) {
				fen[j] += fen[i]
			}
		}
		s.fen, s.fenHigh = fen, capN
	}
}

// fenFlip adds delta (±1) to node v's enabled bit.
func (s *System) fenFlip(v graph.NodeID, delta int32) {
	for i := int(v) + 1; i < len(s.fen); i += i & -i {
		s.fen[i] += delta
	}
}

// selectEnabled returns the node with exactly k enabled nodes before
// it — the k-th (0-based) element of the ascending enabled set — in
// O(log n) by binary lifting over the Fenwick tree. k must be in
// [0, count).
func (s *System) selectEnabled(k int) graph.NodeID {
	idx := 0
	rem := int32(k + 1)
	for bit := s.fenHigh; bit > 0; bit >>= 1 {
		if next := idx + bit; next < len(s.fen) && s.fen[next] < rem {
			rem -= s.fen[next]
			idx = next
		}
	}
	return graph.NodeID(idx)
}

// at resolves rank i to a node id, memoising the last query so the
// At+Actions pair daemons issue per index costs one lookup. A request
// for the next rank scans the bitmap for the successor instead of
// re-descending the Fenwick tree: enabled sets are dense exactly when
// daemons enumerate them front to back (synchronous/distributed
// scheduling mid-stabilization), so the gap is short and a full
// enumeration costs O(n + count) like the pre-EnabledSet candidate
// slice did; the scan is bounded so sparse sets still fall back to
// the O(log n) select.
func (s *System) at(i int) graph.NodeID {
	if i == s.memoIdx {
		return s.memoNode
	}
	if s.memoIdx >= 0 && i == s.memoIdx+1 {
		for v, limit := int(s.memoNode)+1, int(s.memoNode)+64; v < len(s.enabled) && v <= limit; v++ {
			if s.enabled[v] {
				s.memoIdx, s.memoNode = i, graph.NodeID(v)
				return s.memoNode
			}
		}
	}
	v := s.selectEnabled(i)
	s.memoIdx, s.memoNode = i, v
	return v
}

// incView is the incremental scheduler's EnabledSet: rank queries over
// the Fenwick index, O(1) membership from the enabled bitmap.
type incView struct{ s *System }

// Len implements EnabledSet.
func (w incView) Len() int { return w.s.count }

// At implements EnabledSet.
func (w incView) At(i int) graph.NodeID { return w.s.at(i) }

// Actions implements EnabledSet.
func (w incView) Actions(i int, buf []ActionID) []ActionID {
	return append(buf, w.s.acts[w.s.at(i)]...)
}

// Contains implements EnabledSet.
func (w incView) Contains(v graph.NodeID) bool { return w.s.enabled[v] }

// markDirty queues u for guard re-evaluation at the end of the step.
func (s *System) markDirty(u graph.NodeID) {
	if s.mark[u] != s.epoch {
		s.mark[u] = s.epoch
		s.dirty = append(s.dirty, u)
	}
}

// markInfluence queues every node whose guard the fired move (v, a)
// may have changed: the protocol's declared Influence set, or the
// closed 1-hop neighbourhood by default. v itself is always queued.
func (s *System) markInfluence(v graph.NodeID, a ActionID) {
	s.markDirty(v)
	if s.inf != nil {
		s.infBuf = s.inf.Influence(v, a, s.infBuf[:0])
		for _, u := range s.infBuf {
			s.markDirty(u)
		}
		return
	}
	for _, q := range s.g.Neighbors(v) {
		if q != graph.None {
			s.markDirty(q)
		}
	}
}

// beginRoundIncremental records the currently enabled processors as the
// new round's pending set. Sparse sets walk the Fenwick index
// (O(count·log n) — steady-state rounds close every few steps, so a
// Θ(n) sweep per round would dominate stepping); dense sets sweep the
// bitmap instead (O(n) beats count root-to-leaf descents once count
// is a fair fraction of n).
func (s *System) beginRoundIncremental() {
	if s.count*8 >= len(s.enabled) {
		for v, on := range s.enabled {
			if on {
				s.pending[v] = true
			}
		}
	} else {
		for i := 0; i < s.count; i++ {
			s.pending[s.selectEnabled(i)] = true
		}
	}
	s.pendingCount = s.count
	s.roundOpen = true
}

// Step performs one daemon step: hand the enabled set to the daemon,
// execute its selection in order with guard re-validation, then
// restore the dirty-set invariant. It returns the number of moves that
// fired; 0 with a nil error means the configuration is terminal (no
// enabled actions).
func (s *System) Step() (int, error) {
	if s.daemon == nil {
		return 0, ErrNoDaemon
	}
	if s.fullScan {
		return s.stepFullScan()
	}
	s.ensureInit()
	if !s.roundOpen {
		s.beginRoundIncremental()
	}
	if s.count == 0 {
		return 0, nil
	}
	s.memoIdx = -1
	selected := s.daemon.Select(incView{s})
	if len(selected) == 0 {
		return 0, fmt.Errorf("program: daemon %q selected no move from %d candidates", s.daemon.Name(), s.count)
	}
	s.epoch++
	s.dirty = s.dirty[:0]
	fired := 0
	for _, mv := range selected {
		if s.proto.Execute(mv.Node, mv.Action) {
			fired++
			s.moves++
			if s.pending[mv.Node] {
				s.pending[mv.Node] = false
				s.pendingCount--
			}
			s.markInfluence(mv.Node, mv.Action)
			if s.MoveHook != nil {
				s.MoveHook(mv)
			}
		}
	}
	s.steps++
	s.refreshDirty()
	if s.pendingCount == 0 {
		s.rounds++
		s.beginRoundIncremental()
	}
	return fired, nil
}

// refreshDirty re-evaluates the guards of every dirty node, updates the
// cached action lists and the Fenwick index, discharges pending
// processors seen disabled, and refreshes the armed witness's per-node
// contributions — O(log n) per enabledness flip, no global rebuild.
func (s *System) refreshDirty() {
	if len(s.dirty) == 0 {
		return
	}
	for _, v := range s.dirty {
		was := s.enabled[v]
		if s.g.Alive(v) {
			s.acts[v] = s.proto.Enabled(v, s.acts[v][:0])
		} else {
			s.acts[v] = s.acts[v][:0]
		}
		now := len(s.acts[v]) > 0
		if now != was {
			s.enabled[v] = now
			if now {
				s.fenFlip(v, 1)
				s.count++
			} else {
				s.fenFlip(v, -1)
				s.count--
			}
		}
		if !now && s.pending[v] {
			s.pending[v] = false
			s.pendingCount--
		}
		if s.witness != nil {
			s.witness.WitnessRefresh(v)
		}
	}
	s.memoIdx = -1
}

// enabledCandidates gathers the enabled processors into s.fullCands by
// scanning every node — the legacy full-scan path.
func (s *System) enabledCandidates() []Candidate {
	s.fullCands = s.fullCands[:0]
	for v := 0; v < s.g.N(); v++ {
		if !s.g.Alive(graph.NodeID(v)) {
			continue
		}
		s.selBuf = s.proto.Enabled(graph.NodeID(v), s.selBuf[:0])
		if len(s.selBuf) == 0 {
			continue
		}
		actions := make([]ActionID, len(s.selBuf))
		copy(actions, s.selBuf)
		s.fullCands = append(s.fullCands, Candidate{Node: graph.NodeID(v), Actions: actions})
	}
	return s.fullCands
}

// stepFullScan is the seed algorithm: gather enabled processors by
// scanning all guards, let the daemon select, execute with guard
// re-validation, then rescan the pending set.
func (s *System) stepFullScan() (int, error) {
	cands := s.enabledCandidates()
	if s.pendingMap == nil {
		s.beginRoundFullScan(cands)
	}
	if len(cands) == 0 {
		return 0, nil
	}
	selected := s.daemon.Select(CandidateSet(cands))
	if len(selected) == 0 {
		return 0, fmt.Errorf("program: daemon %q selected no move from %d candidates", s.daemon.Name(), len(cands))
	}
	fired := 0
	for _, mv := range selected {
		if s.proto.Execute(mv.Node, mv.Action) {
			fired++
			s.moves++
			delete(s.pendingMap, mv.Node)
			if s.MoveHook != nil {
				s.MoveHook(mv)
			}
		}
	}
	s.steps++
	s.settleRoundFullScan()
	return fired, nil
}

// beginRoundFullScan records the processors enabled at round start.
func (s *System) beginRoundFullScan(cands []Candidate) {
	s.pendingMap = make(map[graph.NodeID]bool, len(cands))
	for _, c := range cands {
		s.pendingMap[c.Node] = true
	}
}

// settleRoundFullScan discharges pending processors that are now
// disabled and closes the round when none remain.
func (s *System) settleRoundFullScan() {
	for v := range s.pendingMap {
		if !s.g.Alive(v) {
			delete(s.pendingMap, v)
			continue
		}
		s.selBuf = s.proto.Enabled(v, s.selBuf[:0])
		if len(s.selBuf) == 0 {
			delete(s.pendingMap, v)
		}
	}
	if len(s.pendingMap) == 0 {
		s.rounds++
		s.beginRoundFullScan(s.enabledCandidates())
	}
}

// RunResult reports the outcome of a Run* call.
type RunResult struct {
	Converged bool
	Moves     int64
	Steps     int64
	Rounds    int64
}

// RunUntil steps the system until pred returns true, the configuration
// becomes terminal, or maxSteps steps have been taken. pred is checked
// on the initial configuration and after every step.
func (s *System) RunUntil(pred func() bool, maxSteps int64) (RunResult, error) {
	start := RunResult{Moves: s.moves, Steps: s.steps, Rounds: s.rounds}
	mk := func(conv bool) RunResult {
		return RunResult{
			Converged: conv,
			Moves:     s.moves - start.Moves,
			Steps:     s.steps - start.Steps,
			Rounds:    s.rounds - start.Rounds,
		}
	}
	if pred() {
		return mk(true), nil
	}
	for i := int64(0); i < maxSteps; i++ {
		n, err := s.Step()
		if err != nil {
			return mk(false), err
		}
		if pred() {
			return mk(true), nil
		}
		if n == 0 {
			// Terminal configuration that does not satisfy pred.
			return mk(false), nil
		}
	}
	return mk(false), nil
}

// RunUntilLegitimate runs until the protocol's legitimacy predicate
// holds. The protocol must implement Legitimacy. If the protocol also
// implements Witness (and the system is the incremental scheduler),
// the per-step decision comes from the incrementally-maintained
// witness in O(1) instead of an O(n) Legitimate() scan; the two are
// equivalent by the Witness contract (CheckWitness audits it).
func (s *System) RunUntilLegitimate(maxSteps int64) (RunResult, error) {
	leg, ok := s.proto.(Legitimacy)
	if !ok {
		return RunResult{}, fmt.Errorf("program: protocol %q has no legitimacy predicate", s.proto.Name())
	}
	if w, ok := s.proto.(Witness); ok && !s.fullScan {
		s.armWitness(w)
		return s.RunUntil(w.WitnessLegitimate, maxSteps)
	}
	return s.RunUntil(leg.Legitimate, maxSteps)
}

// armWitness (re)synchronises w with the current configuration and
// registers it for dirty-set refreshes. Idempotent while armed.
func (s *System) armWitness(w Witness) {
	if s.witness == nil {
		w.WitnessReset()
		s.witness = w
	}
}

// HoldsFor verifies closure empirically: it steps the system extra
// times and reports whether the predicate held after every step. The
// system must currently satisfy pred.
func (s *System) HoldsFor(pred func() bool, steps int64) (bool, error) {
	if !pred() {
		return false, nil
	}
	for i := int64(0); i < steps; i++ {
		n, err := s.Step()
		if err != nil {
			return false, err
		}
		if !pred() {
			return false, nil
		}
		if n == 0 {
			return true, nil
		}
	}
	return true, nil
}

// Silent reports whether no action is enabled anywhere.
func (s *System) Silent() bool {
	return s.EnabledCount() == 0
}

// EnabledCount returns the number of currently enabled processors.
func (s *System) EnabledCount() int {
	if s.fullScan {
		return len(s.enabledCandidates())
	}
	s.ensureInit()
	return s.count
}

package program

import (
	"errors"
	"fmt"

	"netorient/internal/graph"
)

// ErrNoDaemon is returned by System methods when no daemon was set.
var ErrNoDaemon = errors.New("program: system has no daemon")

// System drives one protocol under one daemon and accounts for moves
// and rounds. It is not safe for concurrent use.
type System struct {
	proto  Protocol
	daemon Daemon

	moves  int64
	steps  int64
	rounds int64

	// Round bookkeeping: pending holds the processors that were
	// enabled when the current round began and have neither moved nor
	// been seen disabled since.
	pending map[graph.NodeID]bool

	// Reusable buffers.
	cands  []Candidate
	selBuf []ActionID

	// MoveHook, when non-nil, observes every executed move.
	MoveHook func(Move)
}

// NewSystem returns a System for proto under d.
func NewSystem(proto Protocol, d Daemon) *System {
	return &System{proto: proto, daemon: d}
}

// Protocol returns the protocol under execution.
func (s *System) Protocol() Protocol { return s.proto }

// Moves returns the number of action executions so far.
func (s *System) Moves() int64 { return s.moves }

// Steps returns the number of daemon steps so far.
func (s *System) Steps() int64 { return s.steps }

// Rounds returns the number of completed rounds so far. A round is the
// minimal computation segment in which every processor that was
// continuously enabled since the segment began has executed a move or
// become disabled — the standard asynchronous time unit.
func (s *System) Rounds() int64 { return s.rounds }

// ResetCounters zeroes the move/step/round counters and restarts round
// tracking from the current configuration. Use it to measure the cost
// of a phase that starts "now" (e.g. orientation after the substrate
// has stabilized, as in §3.2.3).
func (s *System) ResetCounters() {
	s.moves, s.steps, s.rounds = 0, 0, 0
	s.pending = nil
}

// enabledCandidates gathers the enabled processors into s.cands.
func (s *System) enabledCandidates() []Candidate {
	g := s.proto.Graph()
	s.cands = s.cands[:0]
	for v := 0; v < g.N(); v++ {
		s.selBuf = s.proto.Enabled(graph.NodeID(v), s.selBuf[:0])
		if len(s.selBuf) == 0 {
			continue
		}
		actions := make([]ActionID, len(s.selBuf))
		copy(actions, s.selBuf)
		s.cands = append(s.cands, Candidate{Node: graph.NodeID(v), Actions: actions})
	}
	return s.cands
}

// Step performs one daemon step: gather enabled processors, let the
// daemon select, execute the selection in order with guard
// re-validation. It returns the number of moves that fired; 0 with a
// nil error means the configuration is terminal (no enabled actions).
func (s *System) Step() (int, error) {
	if s.daemon == nil {
		return 0, ErrNoDaemon
	}
	cands := s.enabledCandidates()
	if s.pending == nil {
		s.beginRound(cands)
	}
	if len(cands) == 0 {
		return 0, nil
	}
	selected := s.daemon.Select(cands)
	if len(selected) == 0 {
		return 0, fmt.Errorf("program: daemon %q selected no move from %d candidates", s.daemon.Name(), len(cands))
	}
	fired := 0
	for _, mv := range selected {
		if s.proto.Execute(mv.Node, mv.Action) {
			fired++
			s.moves++
			delete(s.pending, mv.Node)
			if s.MoveHook != nil {
				s.MoveHook(mv)
			}
		}
	}
	s.steps++
	s.settleRound()
	return fired, nil
}

// beginRound records the processors enabled at round start.
func (s *System) beginRound(cands []Candidate) {
	s.pending = make(map[graph.NodeID]bool, len(cands))
	for _, c := range cands {
		s.pending[c.Node] = true
	}
}

// settleRound discharges pending processors that are now disabled and
// closes the round when none remain.
func (s *System) settleRound() {
	for v := range s.pending {
		s.selBuf = s.proto.Enabled(v, s.selBuf[:0])
		if len(s.selBuf) == 0 {
			delete(s.pending, v)
		}
	}
	if len(s.pending) == 0 {
		s.rounds++
		s.beginRound(s.enabledCandidates())
	}
}

// RunResult reports the outcome of a Run* call.
type RunResult struct {
	Converged bool
	Moves     int64
	Steps     int64
	Rounds    int64
}

// RunUntil steps the system until pred returns true, the configuration
// becomes terminal, or maxSteps steps have been taken. pred is checked
// on the initial configuration and after every step.
func (s *System) RunUntil(pred func() bool, maxSteps int64) (RunResult, error) {
	start := RunResult{Moves: s.moves, Steps: s.steps, Rounds: s.rounds}
	mk := func(conv bool) RunResult {
		return RunResult{
			Converged: conv,
			Moves:     s.moves - start.Moves,
			Steps:     s.steps - start.Steps,
			Rounds:    s.rounds - start.Rounds,
		}
	}
	if pred() {
		return mk(true), nil
	}
	for i := int64(0); i < maxSteps; i++ {
		n, err := s.Step()
		if err != nil {
			return mk(false), err
		}
		if pred() {
			return mk(true), nil
		}
		if n == 0 {
			// Terminal configuration that does not satisfy pred.
			return mk(false), nil
		}
	}
	return mk(false), nil
}

// RunUntilLegitimate runs until the protocol's legitimacy predicate
// holds. The protocol must implement Legitimacy.
func (s *System) RunUntilLegitimate(maxSteps int64) (RunResult, error) {
	leg, ok := s.proto.(Legitimacy)
	if !ok {
		return RunResult{}, fmt.Errorf("program: protocol %q has no legitimacy predicate", s.proto.Name())
	}
	return s.RunUntil(leg.Legitimate, maxSteps)
}

// HoldsFor verifies closure empirically: it steps the system extra
// times and reports whether the predicate held after every step. The
// system must currently satisfy pred.
func (s *System) HoldsFor(pred func() bool, steps int64) (bool, error) {
	if !pred() {
		return false, nil
	}
	for i := int64(0); i < steps; i++ {
		n, err := s.Step()
		if err != nil {
			return false, err
		}
		if !pred() {
			return false, nil
		}
		if n == 0 {
			return true, nil
		}
	}
	return true, nil
}

// Silent reports whether no action is enabled anywhere.
func (s *System) Silent() bool {
	return len(s.enabledCandidates()) == 0
}

// EnabledCount returns the number of currently enabled processors.
func (s *System) EnabledCount() int {
	return len(s.enabledCandidates())
}

package program

import (
	"fmt"

	"netorient/internal/graph"
)

// Stepper is the execution-engine contract shared by the serial
// runners (System, in either scheduler mode) and the sharded parallel
// stepper (ParallelSystem). Campaign drivers — churn schedules, soak
// engines, fault injectors — program against this interface so one
// campaign definition runs under any engine; cmd/stabsim's -workers
// flag picks the engine at the CLI.
//
// The staleness contracts carry over unchanged from the concrete
// types: topology mutations flow through ApplyDelta immediately after
// the graph mutation, and any out-of-band configuration change
// (Restore, Randomize, CorruptNode) requires Invalidate before the
// next call.
type Stepper interface {
	// Protocol returns the protocol under execution.
	Protocol() Protocol
	// Step performs one engine step and reports how many moves fired;
	// 0 with a nil error means the configuration is terminal.
	Step() (int, error)
	// ApplyDelta incorporates one topology mutation already applied to
	// the protocol's graph.
	ApplyDelta(d graph.Delta)
	// Invalidate discards cached guard/witness state after an
	// out-of-band configuration change.
	Invalidate()
	// RunUntil steps until pred holds, the configuration is terminal,
	// or maxSteps elapse.
	RunUntil(pred func() bool, maxSteps int64) (RunResult, error)
	// RunUntilLegitimate runs until the protocol's legitimacy
	// predicate holds.
	RunUntilLegitimate(maxSteps int64) (RunResult, error)
	// HoldsFor verifies closure empirically: pred must hold now and
	// after each of the next `steps` steps.
	HoldsFor(pred func() bool, steps int64) (bool, error)
	// Moves, Steps and Rounds report the engine's counters.
	Moves() int64
	Steps() int64
	Rounds() int64
	// EnabledCount returns the number of currently enabled processors;
	// Silent reports whether it is zero.
	EnabledCount() int
	Silent() bool
}

// Compile-time checks: both engines satisfy the shared contract.
var (
	_ Stepper = (*System)(nil)
	_ Stepper = (*ParallelSystem)(nil)
)

// FullScan reports whether this System is the Θ(n)-rescan differential
// oracle (NewSystemFullScan) rather than the incremental scheduler.
// Campaign drivers use it to decide whether incrementally-maintained
// witness counters are meaningful on this engine.
func (s *System) FullScan() bool { return s.fullScan }

// HoldsFor verifies closure empirically on the parallel engine: it
// steps the system extra times and reports whether the predicate held
// after every step (checked serially between parallel steps). The
// system must currently satisfy pred.
func (ps *ParallelSystem) HoldsFor(pred func() bool, steps int64) (bool, error) {
	if !pred() {
		return false, nil
	}
	for i := int64(0); i < steps; i++ {
		n, err := ps.Step()
		if err != nil {
			return false, err
		}
		if !pred() {
			return false, nil
		}
		if n == 0 {
			return true, nil
		}
	}
	return true, nil
}

// ScriptDaemon replays a recorded move sequence, one move per step,
// verifying at selection time that each scripted move is legal — its
// processor is in the step's enabled set and the scripted action is
// among that processor's enabled actions. It is the projection half of
// the message-runtime differential check (package actor): an
// asynchronous execution projects onto a legal central-daemon
// execution exactly when its move log replays through a ScriptDaemon
// without a legality error, and the central daemon is a special case
// of the distributed daemon, so legality here is legality under the
// paper's scheduling model.
//
// A legality violation is recorded in Err and the daemon re-selects
// the scripted move anyway, so the runner surfaces a diagnosable
// failure (the guard-revalidating Execute will refuse to fire it)
// instead of a deadlock.
type ScriptDaemon struct {
	script []Move
	next   int
	sel    [1]Move
	// Err holds the first legality violation the replay hit, nil when
	// the whole script was legal so far.
	Err error
	buf []ActionID
}

// NewScriptDaemon returns a daemon that replays script in order.
func NewScriptDaemon(script []Move) *ScriptDaemon {
	return &ScriptDaemon{script: script}
}

// Name implements Daemon.
func (d *ScriptDaemon) Name() string { return "script" }

// Remaining returns how many scripted moves have not been selected yet.
func (d *ScriptDaemon) Remaining() int { return len(d.script) - d.next }

// Select implements Daemon.
func (d *ScriptDaemon) Select(set EnabledSet) []Move {
	if d.next >= len(d.script) {
		// Script exhausted but the runner asked for another step; the
		// caller drives exactly len(script) steps, so this is a usage
		// error surfaced as a legality error on a sentinel move.
		if d.Err == nil {
			d.Err = fmt.Errorf("program: script daemon exhausted after %d moves", len(d.script))
		}
		d.sel[0] = Move{}
		return d.sel[:]
	}
	mv := d.script[d.next]
	d.next++
	if d.Err == nil {
		if !set.Contains(mv.Node) {
			d.Err = fmt.Errorf("program: scripted move %d at node %d: processor not enabled", d.next-1, mv.Node)
		} else {
			// The set is ascending; binary search for the rank of
			// mv.Node to fetch its action list.
			lo, hi := 0, set.Len()
			for lo < hi {
				mid := (lo + hi) / 2
				if set.At(mid) < mv.Node {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			ok := false
			if lo < set.Len() && set.At(lo) == mv.Node {
				d.buf = set.Actions(lo, d.buf[:0])
				for _, a := range d.buf {
					if a == mv.Action {
						ok = true
						break
					}
				}
			}
			if !ok {
				d.Err = fmt.Errorf("program: scripted move %d (node %d, action %d): action not enabled", d.next-1, mv.Node, mv.Action)
			}
		}
	}
	d.sel[0] = mv
	return d.sel[:]
}

package program_test

// Differential scheduler tests: the incremental enabled-set scheduler
// (program.NewSystem) must produce bit-identical executions to the
// legacy full-scan oracle (program.NewSystemFullScan) — identical
// fired-move counts per step, identical move/step/round totals, and
// identical final snapshots — for every protocol stack in the library
// under every daemon. Because the daemons are seeded and consume
// randomness per Select call, any divergence in candidate enumeration
// (ordering, membership, action lists) desynchronises the executions
// and the test fails loudly.

import (
	"fmt"
	"math/rand"
	"testing"

	"netorient/internal/core"
	"netorient/internal/daemon"
	"netorient/internal/graph"
	"netorient/internal/program"
	"netorient/internal/spantree"
	"netorient/internal/token"
)

// diffTarget is what the differential harness needs from a protocol.
type diffTarget interface {
	program.Protocol
	program.Snapshotter
	program.Randomizer
}

// protoBuilders constructs two independent instances of every protocol
// stack on g; both instances of a pair must behave identically given
// identical configurations.
func protoBuilders() map[string]func(g *graph.Graph) (diffTarget, error) {
	return map[string]func(g *graph.Graph) (diffTarget, error){
		"dftc": func(g *graph.Graph) (diffTarget, error) {
			return token.NewCirculator(g, 0)
		},
		"dftc-oracle": func(g *graph.Graph) (diffTarget, error) {
			return token.NewOracle(g, 0)
		},
		"bfstree": func(g *graph.Graph) (diffTarget, error) {
			return spantree.NewBFSTree(g, 0)
		},
		"dfstree": func(g *graph.Graph) (diffTarget, error) {
			return spantree.NewDFSTree(g, 0)
		},
		"dftno/dftc": func(g *graph.Graph) (diffTarget, error) {
			sub, err := token.NewCirculator(g, 0)
			if err != nil {
				return nil, err
			}
			return core.NewDFTNO(g, sub, 0)
		},
		"stno/bfstree": func(g *graph.Graph) (diffTarget, error) {
			sub, err := spantree.NewBFSTree(g, 0)
			if err != nil {
				return nil, err
			}
			return core.NewSTNO(g, sub, 0)
		},
		// The radius-2 influence case: STNO guards read Parent() of
		// their neighbours, and the DFS tree derives Parent from the
		// neighbours' path variables.
		"stno/dfstree": func(g *graph.Graph) (diffTarget, error) {
			sub, err := spantree.NewDFSTree(g, 0)
			if err != nil {
				return nil, err
			}
			return core.NewSTNO(g, sub, 0)
		},
	}
}

// diffDaemons builds one seeded daemon per scheduling model. The two
// systems get daemons from separate calls with the same seed, so their
// random streams match move for move.
func diffDaemons(seed int64) map[string]func() program.Daemon {
	return map[string]func() program.Daemon{
		"central":       func() program.Daemon { return daemon.NewCentral(seed) },
		"synchronous":   func() program.Daemon { return daemon.NewSynchronous(seed) },
		"distributed":   func() program.Daemon { return daemon.NewDistributed(seed, 0.5) },
		"round-robin":   func() program.Daemon { return daemon.NewRoundRobin() },
		"deterministic": func() program.Daemon { return daemon.NewDeterministic() },
	}
}

// TestSchedulerEquivalence locksteps the incremental and full-scan
// runners from identical random configurations and asserts identical
// executions.
func TestSchedulerEquivalence(t *testing.T) {
	t.Parallel()
	graphs := map[string]*graph.Graph{
		"grid3x4": graph.Grid(3, 4),
		"ring7":   graph.Ring(7),
	}
	const maxSteps = 1500
	for gname, g := range graphs {
		for pname, build := range protoBuilders() {
			for dname, mkDaemon := range diffDaemons(11) {
				t.Run(fmt.Sprintf("%s/%s/%s", gname, pname, dname), func(t *testing.T) {
					t.Parallel()
					pInc, err := build(g)
					if err != nil {
						t.Fatal(err)
					}
					pFull, err := build(g)
					if err != nil {
						t.Fatal(err)
					}
					// Identical adversarial starts on both instances.
					pInc.Randomize(rand.New(rand.NewSource(99)))
					pFull.Randomize(rand.New(rand.NewSource(99)))
					if string(pInc.Snapshot()) != string(pFull.Snapshot()) {
						t.Fatal("instances disagree before any step; Randomize is not deterministic")
					}

					inc := program.NewSystem(pInc, mkDaemon())
					full := program.NewSystemFullScan(pFull, mkDaemon())
					for i := 0; i < maxSteps; i++ {
						nInc, errInc := inc.Step()
						nFull, errFull := full.Step()
						if errInc != nil || errFull != nil {
							t.Fatalf("step %d: errors inc=%v full=%v", i, errInc, errFull)
						}
						if nInc != nFull {
							t.Fatalf("step %d: fired %d moves incrementally, %d under full scan", i, nInc, nFull)
						}
						if nInc == 0 {
							break
						}
					}
					if inc.Moves() != full.Moves() || inc.Steps() != full.Steps() || inc.Rounds() != full.Rounds() {
						t.Fatalf("counters diverge: incremental (moves=%d steps=%d rounds=%d) vs full scan (moves=%d steps=%d rounds=%d)",
							inc.Moves(), inc.Steps(), inc.Rounds(), full.Moves(), full.Steps(), full.Rounds())
					}
					if string(pInc.Snapshot()) != string(pFull.Snapshot()) {
						t.Fatalf("final configurations diverge after %d steps", inc.Steps())
					}
					if inc.EnabledCount() != full.EnabledCount() {
						t.Fatalf("enabled counts diverge: %d vs %d", inc.EnabledCount(), full.EnabledCount())
					}
				})
			}
		}
	}
}

// TestSchedulerEquivalenceAcrossInvalidate mutates the protocol behind
// the system's back mid-run and checks that Invalidate resynchronises
// the incremental cache with the full-scan oracle.
func TestSchedulerEquivalenceAcrossInvalidate(t *testing.T) {
	t.Parallel()
	g := graph.Grid(3, 3)
	build := protoBuilders()["dftno/dftc"]
	pInc, err := build(g)
	if err != nil {
		t.Fatal(err)
	}
	pFull, err := build(g)
	if err != nil {
		t.Fatal(err)
	}
	pInc.Randomize(rand.New(rand.NewSource(5)))
	pFull.Randomize(rand.New(rand.NewSource(5)))
	inc := program.NewSystem(pInc, daemon.NewCentral(3))
	full := program.NewSystemFullScan(pFull, daemon.NewCentral(3))
	corrupt := rand.New(rand.NewSource(17))
	corrupt2 := rand.New(rand.NewSource(17))
	for phase := 0; phase < 4; phase++ {
		for i := 0; i < 50; i++ {
			nInc, errInc := inc.Step()
			nFull, errFull := full.Step()
			if errInc != nil || errFull != nil || nInc != nFull {
				t.Fatalf("phase %d step %d: inc=(%d,%v) full=(%d,%v)", phase, i, nInc, errInc, nFull, errFull)
			}
		}
		pInc.(program.NodeCorruptor).CorruptNode(graph.NodeID(phase), corrupt)
		pFull.(program.NodeCorruptor).CorruptNode(graph.NodeID(phase), corrupt2)
		inc.Invalidate()
		// In both modes Invalidate restarts round tracking from the
		// corrupted configuration; the rounds assertion below depends
		// on both runners restarting together.
		full.Invalidate()
	}
	if string(pInc.Snapshot()) != string(pFull.Snapshot()) {
		t.Fatal("configurations diverge after interleaved corruption")
	}
	// Invalidate restarts round tracking in both schedulers, so the
	// counters must still agree.
	if inc.Moves() != full.Moves() || inc.Rounds() != full.Rounds() {
		t.Fatalf("counters diverge: inc moves=%d rounds=%d, full moves=%d rounds=%d",
			inc.Moves(), inc.Rounds(), full.Moves(), full.Rounds())
	}
}

// Legacy daemons: verbatim re-implementations of the pre-EnabledSet
// schedulers over materialised candidate slices, wrapped with
// program.AdaptLegacy. TestDaemonEquivalenceAcrossAPI locksteps them
// against the sampling daemons and asserts bit-identical executions,
// pinning both halves of the API migration: the new daemons consume
// randomness exactly as the old ones did, and the adapter reproduces
// the old candidate lists exactly.

type legacyCentral struct {
	rng *rand.Rand
	buf []program.Move
}

func (d *legacyCentral) Name() string { return "central" }
func (d *legacyCentral) Select(cands []program.Candidate) []program.Move {
	c := cands[d.rng.Intn(len(cands))]
	d.buf = append(d.buf[:0], program.Move{Node: c.Node, Action: c.Actions[d.rng.Intn(len(c.Actions))]})
	return d.buf
}

type legacySynchronous struct {
	rng *rand.Rand
	buf []program.Move
}

func (d *legacySynchronous) Name() string { return "synchronous" }
func (d *legacySynchronous) Select(cands []program.Candidate) []program.Move {
	moves := d.buf[:0]
	for _, c := range cands {
		moves = append(moves, program.Move{Node: c.Node, Action: c.Actions[d.rng.Intn(len(c.Actions))]})
	}
	d.rng.Shuffle(len(moves), func(i, j int) { moves[i], moves[j] = moves[j], moves[i] })
	d.buf = moves
	return moves
}

type legacyDistributed struct {
	rng *rand.Rand
	buf []program.Move
	p   float64
}

func (d *legacyDistributed) Name() string { return "distributed" }
func (d *legacyDistributed) Select(cands []program.Candidate) []program.Move {
	moves := d.buf[:0]
	for _, c := range cands {
		if d.rng.Float64() < d.p {
			moves = append(moves, program.Move{Node: c.Node, Action: c.Actions[d.rng.Intn(len(c.Actions))]})
		}
	}
	if len(moves) == 0 {
		c := cands[d.rng.Intn(len(cands))]
		moves = append(moves, program.Move{Node: c.Node, Action: c.Actions[d.rng.Intn(len(c.Actions))]})
	}
	d.rng.Shuffle(len(moves), func(i, j int) { moves[i], moves[j] = moves[j], moves[i] })
	d.buf = moves
	return moves
}

type legacyRoundRobin struct {
	next int
	buf  []program.Move
}

func (d *legacyRoundRobin) Name() string { return "round-robin" }
func (d *legacyRoundRobin) Select(cands []program.Candidate) []program.Move {
	rrKey := func(node, from int) int {
		const large = 1 << 30
		if node >= from {
			return node - from
		}
		return node - from + large
	}
	best := cands[0]
	bestKey := rrKey(int(best.Node), d.next)
	for _, c := range cands[1:] {
		if k := rrKey(int(c.Node), d.next); k < bestKey {
			best, bestKey = c, k
		}
	}
	d.next = int(best.Node) + 1
	d.buf = append(d.buf[:0], program.Move{Node: best.Node, Action: best.Actions[0]})
	return d.buf
}

type legacyDeterministic struct{ buf []program.Move }

func (d *legacyDeterministic) Name() string { return "deterministic" }
func (d *legacyDeterministic) Select(cands []program.Candidate) []program.Move {
	best := cands[0]
	for _, c := range cands[1:] {
		if c.Node < best.Node {
			best = c
		}
	}
	a := best.Actions[0]
	for _, x := range best.Actions[1:] {
		if x < a {
			a = x
		}
	}
	d.buf = append(d.buf[:0], program.Move{Node: best.Node, Action: a})
	return d.buf
}

// legacyDiffDaemons pairs each new-API daemon with its legacy
// re-implementation under the same seed.
func legacyDiffDaemons(seed int64) map[string]func() (program.Daemon, program.Daemon) {
	return map[string]func() (program.Daemon, program.Daemon){
		"central": func() (program.Daemon, program.Daemon) {
			return daemon.NewCentral(seed), program.AdaptLegacy(&legacyCentral{rng: rand.New(rand.NewSource(seed))})
		},
		"synchronous": func() (program.Daemon, program.Daemon) {
			return daemon.NewSynchronous(seed), program.AdaptLegacy(&legacySynchronous{rng: rand.New(rand.NewSource(seed))})
		},
		"distributed": func() (program.Daemon, program.Daemon) {
			return daemon.NewDistributed(seed, 0.5), program.AdaptLegacy(&legacyDistributed{rng: rand.New(rand.NewSource(seed)), p: 0.5})
		},
		"round-robin": func() (program.Daemon, program.Daemon) {
			return daemon.NewRoundRobin(), program.AdaptLegacy(&legacyRoundRobin{})
		},
		"deterministic": func() (program.Daemon, program.Daemon) {
			return daemon.NewDeterministic(), program.AdaptLegacy(&legacyDeterministic{})
		},
	}
}

// TestDaemonEquivalenceAcrossAPI locksteps every new-API daemon
// against its adapted legacy re-implementation across every protocol
// stack and several seeds, asserting identical executions step for
// step. Both sides run on the incremental scheduler, so any divergence
// is attributable to daemon selection alone.
func TestDaemonEquivalenceAcrossAPI(t *testing.T) {
	t.Parallel()
	g := graph.Grid(3, 4)
	const maxSteps = 1200
	seeds := []int64{3, 11}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for pname, build := range protoBuilders() {
		for _, seed := range seeds {
			for dname, mk := range legacyDiffDaemons(seed) {
				t.Run(fmt.Sprintf("%s/%s/seed%d", pname, dname, seed), func(t *testing.T) {
					t.Parallel()
					pNew, err := build(g)
					if err != nil {
						t.Fatal(err)
					}
					pOld, err := build(g)
					if err != nil {
						t.Fatal(err)
					}
					pNew.Randomize(rand.New(rand.NewSource(seed * 7)))
					pOld.Randomize(rand.New(rand.NewSource(seed * 7)))
					dNew, dOld := mk()
					sysNew := program.NewSystem(pNew, dNew)
					sysOld := program.NewSystem(pOld, dOld)
					for i := 0; i < maxSteps; i++ {
						nNew, errNew := sysNew.Step()
						nOld, errOld := sysOld.Step()
						if errNew != nil || errOld != nil || nNew != nOld {
							t.Fatalf("step %d: new=(%d,%v) legacy=(%d,%v)", i, nNew, errNew, nOld, errOld)
						}
						if nNew == 0 {
							break
						}
					}
					if sysNew.Moves() != sysOld.Moves() || sysNew.Rounds() != sysOld.Rounds() {
						t.Fatalf("counters diverge: new moves=%d rounds=%d, legacy moves=%d rounds=%d",
							sysNew.Moves(), sysNew.Rounds(), sysOld.Moves(), sysOld.Rounds())
					}
					if string(pNew.Snapshot()) != string(pOld.Snapshot()) {
						t.Fatal("final configurations diverge between new and legacy daemon APIs")
					}
				})
			}
		}
	}
}

// TestLocalityDeclarations audits every protocol's influence
// declaration empirically: executing any enabled action must not
// change guards outside the declared set, on random configurations.
func TestLocalityDeclarations(t *testing.T) {
	t.Parallel()
	g := graph.Grid(3, 4)
	configs := 25
	if testing.Short() {
		configs = 6
	}
	for pname, build := range protoBuilders() {
		t.Run(pname, func(t *testing.T) {
			t.Parallel()
			p, err := build(g)
			if err != nil {
				t.Fatal(err)
			}
			if err := program.CheckLocality(p, configs, rand.New(rand.NewSource(23))); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Package program defines the execution model of the paper (§2.1): a
// protocol is a finite set of guarded actions over locally-shared
// variables; a daemon repeatedly selects enabled processors; the
// selected processors atomically execute one enabled action each.
//
// Protocols expose their guards through Enabled and their statements
// through Execute; a System drives a protocol under a Daemon and
// accounts for moves (single action executions) and rounds (minimal
// computation segments in which every continuously-enabled processor
// moves or becomes disabled).
package program

import (
	"math/rand"
	"sync"

	"netorient/internal/graph"
)

// ActionID identifies one guarded action of a protocol. IDs are
// protocol-specific and contiguous from 0.
type ActionID int

// Move is one atomic action execution by one processor.
type Move struct {
	Node   graph.NodeID
	Action ActionID
}

// Protocol is a distributed guarded-command program in the paper's
// locally-shared-variable model. Implementations keep all per-node
// state internally; Enabled must be read-only.
type Protocol interface {
	// Name identifies the protocol in traces and tables.
	Name() string
	// Graph returns the communication graph the protocol runs on.
	Graph() *graph.Graph
	// Enabled appends to buf the IDs of the actions whose guards hold
	// at node v, and returns the extended slice. Passing a reused
	// buffer avoids per-step allocations.
	Enabled(v graph.NodeID, buf []ActionID) []ActionID
	// Execute atomically re-evaluates the guard of action a at node v
	// and, if it still holds, runs the action's statement. It reports
	// whether the action fired. Re-evaluation makes sequentialised
	// distributed-daemon steps safe: a sub-move whose guard was
	// invalidated by an earlier sub-move of the same step is skipped.
	Execute(v graph.NodeID, a ActionID) bool
}

// Influencer is the locality contract of the incremental scheduler.
// Influence appends to buf every node whose enabled-action set may
// differ after executing action a at node v, and returns the extended
// slice. The set must cover v itself (the runner adds v defensively)
// and must be sound on every reachable configuration: a node omitted
// from the set keeps its cached guards, so under-reporting silently
// corrupts executions. Over-reporting only costs time.
//
// Protocols that do not implement Influencer get the default locality
// of the shared-memory model: a move at v can only change guards in
// v's closed 1-hop neighbourhood, because statements write only v's
// own variables and guards read only the variables of the evaluating
// node and its neighbours. Implement Influencer when either half of
// that argument fails — e.g. a layered protocol whose guards consult a
// substrate function that itself reads neighbour state (STNO over a
// DFS tree reads two hops away) — and document the audit next to the
// implementation. CheckLocality verifies declarations empirically.
type Influencer interface {
	Influence(v graph.NodeID, a ActionID, buf []graph.NodeID) []graph.NodeID
}

// LocalityRadius is the symmetric, distance-based strengthening of the
// Influencer contract that the sharded parallel stepper
// (ParallelSystem) relies on. A protocol declaring radius R promises,
// for every reachable configuration, every node v and every action a:
//
//   - the guard and statement of (v, a) read only variables of nodes
//     in the closed ball B(v,R) = {u : dist(u,v) ≤ R};
//   - the statement writes only v's own variables;
//   - Influence(v, a, ·) ⊆ B(v,R).
//
// Unlike an Influence set, a ball is symmetric — u ∈ B(v,R) ⟺
// v ∈ B(u,R) — which is what turns the locality declaration into a
// commutativity rule: if B(v,R) lies entirely inside one shard, no
// node outside that shard can read or be influenced by a move at v,
// so such moves from different shards commute and may execute
// concurrently. Protocols without the interface get the model's
// default, radius 1 (guards read the closed neighbourhood, statements
// write the mover). Declaring too small a radius silently corrupts
// parallel executions — the same soundness rule as Influencer, audited
// by the parallel-vs-serial differential suite.
//
// "Variables" above means state that moves can write. Derived facts
// that only change in the engine's serial phases — reference namings
// and target vectors rebuilt by TopologyChanged or an authority
// rebinding, never by Execute — are exempt: guards may read them from
// any distance, because they are constant while workers run (DFTNO's
// guards read the global reference naming and still declare the
// default radius 1 for exactly this reason).
type LocalityRadius interface {
	LocalityRadius() int
}

// ProtocolRadius returns p's declared locality radius, defaulting to 1.
func ProtocolRadius(p Protocol) int {
	if lr, ok := p.(LocalityRadius); ok {
		if r := lr.LocalityRadius(); r > 1 {
			return r
		}
	}
	return 1
}

// TopologyAware is the dynamic-topology half of the locality story: a
// protocol that can keep running across in-place mutations of its
// communication graph (graph.AddEdge / RemoveEdge / AddNode /
// RemoveNode).
//
// TopologyChanged is called by System.ApplyDelta after the graph has
// been mutated, exactly once per delta per protocol instance. It must
//
//  1. rebind port-indexed per-node state: arrays indexed by port must
//     cover the (possibly grown) port space graph.Ports(v) of every
//     touched node, and arrays indexed by node must cover graph.N();
//  2. clamp dangling references: exploration pointers aimed at removed
//     ports, parent pointers to ex-neighbours, and similar fields must
//     be reset to in-bounds values. The *semantic* content of the
//     resulting state is deliberately unconstrained — a topology event
//     is a transient fault and stabilization is the protocols' job —
//     but every index must be safe to dereference;
//  3. refresh derived topology facts (reference namings, cached target
//     vectors, memoised influence balls), invalidating any incremental
//     legitimacy witness whose per-node clauses those facts feed when
//     they changed (the witness lazily re-arms);
//  4. append to buf and return the delta's influence ball: every node
//     whose Enabled set or witness contribution may differ after the
//     delta plus the protocol's own clamps. The same soundness rule as
//     Influencer applies — omissions silently corrupt executions,
//     over-reporting only costs time — and the ball must stay local
//     (O(deg·Δ) around the touched set), because keeping topology
//     events cheaper than a whole-system Invalidate is the point.
//
// Layered protocols forward the call to their substrate first and
// merge the balls. Protocols without the interface can still run on a
// mutated graph via System.Invalidate, at Θ(n) per event.
type TopologyAware interface {
	TopologyChanged(d graph.Delta, buf []graph.NodeID) []graph.NodeID
}

// InfluenceClosedNeighborhood appends the default influence set — v
// plus its neighbours in port order — to buf. Protocols that implement
// Influencer for documentation purposes but have standard locality can
// delegate to it. Holes in a mutated graph's port space are skipped.
func InfluenceClosedNeighborhood(g *graph.Graph, v graph.NodeID, buf []graph.NodeID) []graph.NodeID {
	buf = append(buf, v)
	for _, q := range g.Neighbors(v) {
		if q != graph.None {
			buf = append(buf, q)
		}
	}
	return buf
}

// ballMarks is the reusable visited scratch of InfluenceBall: an
// epoch-stamped array, so marking is O(1) per node and clearing is one
// counter increment instead of a wipe. Pooled because InfluenceBall is
// a package-level function with no receiver to hang state off.
type ballMarks struct {
	stamp []uint32
	epoch uint32
}

var ballPool = sync.Pool{New: func() interface{} { return new(ballMarks) }}

// InfluenceBall appends the closed ball of the given radius around v
// (in BFS order) to buf. Radius 1 equals the closed neighbourhood.
// Membership during the BFS is decided by an O(1) stamp lookup against
// a pooled scratch array (not a scan of the output slice), so the cost
// is O(ball edges), linear in the ball — BenchmarkInfluenceBall tracks
// it at radius 2 on a 64×64 grid.
func InfluenceBall(g *graph.Graph, v graph.NodeID, radius int, buf []graph.NodeID) []graph.NodeID {
	if radius <= 1 {
		return InfluenceClosedNeighborhood(g, v, buf)
	}
	m := ballPool.Get().(*ballMarks)
	if len(m.stamp) < g.N() {
		m.stamp = make([]uint32, g.N())
		m.epoch = 0
	}
	m.epoch++
	if m.epoch == 0 { // stamp wrap: stale stamps could collide, wipe once
		for i := range m.stamp {
			m.stamp[i] = 0
		}
		m.epoch = 1
	}
	start := len(buf)
	buf = append(buf, v)
	m.stamp[v] = m.epoch
	for hop, lo := 0, start; hop < radius; hop++ {
		hi := len(buf)
		for _, u := range buf[lo:hi] {
			for _, q := range g.Neighbors(u) {
				if q == graph.None {
					continue
				}
				if m.stamp[q] != m.epoch {
					m.stamp[q] = m.epoch
					buf = append(buf, q)
				}
			}
		}
		if len(buf) == hi {
			break
		}
		lo = hi
	}
	ballPool.Put(m)
	return buf
}

// Legitimacy is implemented by protocols that can decide their
// legitimacy predicate L_P on the current configuration.
type Legitimacy interface {
	Legitimate() bool
}

// RootAuthority decides, per node, whether it currently acts as a root.
// It is the indirection point of the root-failover layer: a rooted
// protocol that consults an authority instead of comparing against its
// fixed root re-anchors itself whenever the authority's verdict
// changes — an orphan component's elected acting root starts rounds,
// anchors reference traversals and terminates parent chains exactly
// like the designated root does in its own component.
//
// Contract:
//
//   - IsRoot(v) must be a function of v's own protocol-visible state
//     (plus immutable identity), so that a flip at v perturbs guards
//     only within the influence ball of the move that caused it. The
//     failover layer satisfies this by deriving IsRoot(v) from v's own
//     detection and election variables.
//   - RootsVersion is a monotone counter bumped whenever IsRoot's
//     verdict changes for any node, letting consumers cache facts
//     derived from the whole root set (reference traversals, target
//     vectors, witness bucketings) and rebuild them lazily on
//     mismatch — the same staleness discipline as graph.CompVersion.
//   - Exactly one node per component satisfies IsRoot in any settled
//     configuration; transient configurations may have zero or several
//     (legitimacy predicates treat those components as not yet
//     converged or degraded).
type RootAuthority interface {
	IsRoot(v graph.NodeID) bool
	RootsVersion() uint64
}

// Rootable is implemented by rooted protocols that can defer their
// root test to a RootAuthority. Binding a nil authority (or never
// binding one) leaves the protocol's fixed-root behaviour bit-exact;
// layered protocols forward the binding to their substrates so the
// whole stack re-anchors coherently.
type Rootable interface {
	BindRootAuthority(a RootAuthority)
}

// Snapshotter is implemented by protocols whose configuration can be
// captured and restored. Snapshots must be canonical: two equal
// configurations yield identical bytes. The model checker and the
// fault injector both rely on this.
type Snapshotter interface {
	Snapshot() []byte
	Restore(data []byte) error
}

// Randomizer is implemented by protocols that can re-initialise
// themselves to an arbitrary (adversarial) configuration, exercising
// the "starting from an arbitrary state" half of self-stabilization.
type Randomizer interface {
	Randomize(rng *rand.Rand)
}

// NodeCorruptor is implemented by protocols that can hit a single
// processor with a transient fault, i.e. overwrite its local
// variables with arbitrary values of their domains. Fault-injection
// campaigns (package fault) measure recovery from k-node corruption.
type NodeCorruptor interface {
	CorruptNode(v graph.NodeID, rng *rand.Rand)
}

// SpaceMeter is implemented by protocols that report the size of their
// per-node state, in bits, under the paper's accounting (variables
// ranging over 0..N-1 cost ⌈log₂N⌉ bits, per-edge variables cost
// Δ_v·⌈log₂N⌉, …).
type SpaceMeter interface {
	StateBits(v graph.NodeID) int
}

// ActionNamer is implemented by protocols that can render action IDs
// for traces.
type ActionNamer interface {
	ActionName(a ActionID) string
}

// ActionName renders action a of p, falling back to a numeric form.
func ActionName(p Protocol, a ActionID) string {
	if n, ok := p.(ActionNamer); ok {
		return n.ActionName(a)
	}
	return "A" + itoa(int(a))
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

package program

import (
	"testing"

	"netorient/internal/graph"
)

// ballReference is the quadratic-membership implementation the scratch
// rewrite replaced, kept as the behavioural reference: InfluenceBall
// must return the identical slice (same nodes, same BFS order).
func ballReference(g *graph.Graph, v graph.NodeID, radius int, buf []graph.NodeID) []graph.NodeID {
	if radius <= 1 {
		return InfluenceClosedNeighborhood(g, v, buf)
	}
	start := len(buf)
	buf = append(buf, v)
	frontier := buf[start:]
	for hop := 0; hop < radius; hop++ {
		next := len(buf)
		for _, u := range frontier {
			for _, q := range g.Neighbors(u) {
				seen := false
				for _, w := range buf[start:] {
					if w == q {
						seen = true
						break
					}
				}
				if !seen {
					buf = append(buf, q)
				}
			}
		}
		frontier = buf[next:]
		if len(frontier) == 0 {
			break
		}
	}
	return buf
}

func TestInfluenceBallMatchesReference(t *testing.T) {
	t.Parallel()
	graphs := map[string]*graph.Graph{
		"grid8x8":  graph.Grid(8, 8),
		"ring9":    graph.Ring(9),
		"clique6":  graph.Complete(6),
		"lollipop": graph.Lollipop(4, 4),
	}
	for name, g := range graphs {
		for radius := 0; radius <= 4; radius++ {
			for v := 0; v < g.N(); v++ {
				got := InfluenceBall(g, graph.NodeID(v), radius, nil)
				want := ballReference(g, graph.NodeID(v), radius, nil)
				if len(got) != len(want) {
					t.Fatalf("%s r=%d v=%d: %d nodes, want %d", name, radius, v, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s r=%d v=%d: order diverges at %d: %v vs %v", name, radius, v, i, got, want)
					}
				}
			}
		}
	}
}

func TestInfluenceBallAppendsAfterPrefix(t *testing.T) {
	t.Parallel()
	g := graph.Grid(4, 4)
	prefix := []graph.NodeID{99, 98}
	out := InfluenceBall(g, 5, 2, append([]graph.NodeID(nil), prefix...))
	if out[0] != 99 || out[1] != 98 {
		t.Fatalf("prefix clobbered: %v", out[:2])
	}
	if out[2] != 5 {
		t.Fatalf("ball must start at the centre, got %v", out[2:])
	}
}

// BenchmarkInfluenceBall measures the radius-2 ball on a 64×64 grid —
// the exact query STNO-over-DFS-tree issues per node. The membership
// scratch makes it linear in the ball; the replaced implementation
// re-scanned the output slice per enqueue (quadratic in the ball, and
// the ball at radius 2 on a grid is 13 nodes, so the constant matters
// at scale).
func BenchmarkInfluenceBall(b *testing.B) {
	g := graph.Grid(64, 64)
	var buf []graph.NodeID
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = InfluenceBall(g, graph.NodeID(i%g.N()), 2, buf[:0])
	}
}

// BenchmarkInfluenceBallReference is the pre-rewrite comparison point.
func BenchmarkInfluenceBallReference(b *testing.B) {
	g := graph.Grid(64, 64)
	var buf []graph.NodeID
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = ballReference(g, graph.NodeID(i%g.N()), 2, buf[:0])
	}
}

// BenchmarkInfluenceBallWide stresses the linearity claim where it
// actually bites: radius 4 on the grid (41-node balls).
func BenchmarkInfluenceBallWide(b *testing.B) {
	g := graph.Grid(64, 64)
	var buf []graph.NodeID
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = InfluenceBall(g, graph.NodeID(i%g.N()), 4, buf[:0])
	}
}

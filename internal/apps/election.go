package apps

import (
	"errors"
	"fmt"

	"netorient/internal/graph"
	"netorient/internal/sod"
)

// Leader election on rings, with and without a sense of direction —
// the comparison the paper's related work points at ([25]: election
// on rings "can be solved more efficiently in presence of the SoD",
// and Chapter 5: processors can "refer to the other processors by
// locally unique names").
//
// Three regimes:
//
//   - Un-oriented ring, distinct ids: Hirschberg–Sinclair, the classic
//     O(n log n) bidirectional algorithm that needs no direction.
//   - Oriented ring (every node knows its clockwise port — one bit of
//     the sense of direction): Chang–Roberts, unidirectional.
//   - Chordally oriented ring (the full SP1∧SP2 labeling): no messages
//     at all — the names are globally unique and the range 0..N−1 is
//     common knowledge, so "the node named 0" is already elected;
//     announcing it costs one broadcast.

// Election errors.
var (
	ErrNotRing      = errors.New("apps: election needs a ring (every degree 2)")
	ErrDuplicateIDs = errors.New("apps: election needs distinct ids")
)

// ringOrder walks the ring from node 0 and returns the nodes in
// cyclic order.
func ringOrder(g *graph.Graph) ([]graph.NodeID, error) {
	n := g.N()
	if n < 3 {
		return nil, ErrNotRing
	}
	for v := 0; v < n; v++ {
		if g.Degree(graph.NodeID(v)) != 2 {
			return nil, ErrNotRing
		}
	}
	order := make([]graph.NodeID, 0, n)
	prev, cur := graph.None, graph.NodeID(0)
	for i := 0; i < n; i++ {
		order = append(order, cur)
		next := g.Neighbor(cur, 0)
		if next == prev {
			next = g.Neighbor(cur, 1)
		}
		prev, cur = cur, next
	}
	if cur != 0 {
		return nil, ErrNotRing
	}
	return order, nil
}

func checkDistinct(ids []int) error {
	seen := make(map[int]bool, len(ids))
	for _, id := range ids {
		if seen[id] {
			return fmt.Errorf("%w: %d appears twice", ErrDuplicateIDs, id)
		}
		seen[id] = true
	}
	return nil
}

// ElectChangRoberts simulates Chang–Roberts on an oriented ring: each
// node forwards election messages clockwise, discarding ids smaller
// than the largest seen; the maximum id's message returns to its
// originator, which becomes the leader. Requires the one-directional
// sense of direction an orientation provides. Returns the winner and
// the total message count (between n and n(n+1)/2 plus the n-message
// victory lap, depending on the id arrangement).
func ElectChangRoberts(g *graph.Graph, ids []int) (leader graph.NodeID, messages int, err error) {
	order, err := ringOrder(g)
	if err != nil {
		return graph.None, 0, err
	}
	if len(ids) != g.N() {
		return graph.None, 0, fmt.Errorf("apps: %d ids for %d nodes", len(ids), g.N())
	}
	if err := checkDistinct(ids); err != nil {
		return graph.None, 0, err
	}
	n := g.N()
	// token[i] is the id currently waiting at ring position i (or -1).
	// Initially every node emits its own id; a node forwards ids
	// larger than its own and swallows the rest.
	type msg struct {
		pos int
		id  int
	}
	var queue []msg
	for i, v := range order {
		_ = v
		queue = append(queue, msg{pos: (i + 1) % n, id: ids[order[i]]})
		messages++
	}
	best := ids[order[0]]
	for _, id := range ids {
		if id > best {
			best = id
		}
	}
	for len(queue) > 0 {
		m := queue[0]
		queue = queue[1:]
		at := order[m.pos]
		switch {
		case m.id == ids[at]:
			// The id made a full loop: its owner is the leader; it
			// announces with one final lap.
			messages += n
			return at, messages, nil
		case m.id > ids[at]:
			queue = append(queue, msg{pos: (m.pos + 1) % n, id: m.id})
			messages++
		default:
			// Swallowed.
		}
	}
	return graph.None, messages, fmt.Errorf("apps: chang-roberts did not elect (max id %d)", best)
}

// ElectHirschbergSinclair simulates Hirschberg–Sinclair on an
// un-oriented bidirectional ring: candidates probe 2^k hops in both
// directions per phase, surviving only if their id beats everyone in
// the neighbourhood; O(n log n) messages, no direction needed.
// Returns the winner and the message count.
func ElectHirschbergSinclair(g *graph.Graph, ids []int) (leader graph.NodeID, messages int, err error) {
	order, err := ringOrder(g)
	if err != nil {
		return graph.None, 0, err
	}
	if len(ids) != g.N() {
		return graph.None, 0, fmt.Errorf("apps: %d ids for %d nodes", len(ids), g.N())
	}
	if err := checkDistinct(ids); err != nil {
		return graph.None, 0, err
	}
	n := g.N()
	pos := make([]int, n) // ring position by node
	for i, v := range order {
		pos[v] = i
	}
	candidate := make([]bool, n)
	for i := range candidate {
		candidate[i] = true
	}
	for dist := 1; ; dist *= 2 {
		survivors := 0
		var winner graph.NodeID
		for i := 0; i < n; i++ {
			if !candidate[order[i]] {
				continue
			}
			id := ids[order[i]]
			// Probe dist hops each way: a probe travels out up to
			// dist hops (stopping early at a larger id) and, if it
			// survives, an ok travels back the same distance.
			beaten := false
			for _, dir := range []int{1, -1} {
				hops := 0
				for h := 1; h <= dist; h++ {
					hops++
					at := order[((i+dir*h)%n+n)%n]
					if ids[at] > id {
						beaten = true
						break
					}
					if at == order[i] {
						break // wrapped the whole ring
					}
				}
				messages += hops // outbound probe
				if !beaten {
					messages += hops // ok reply
				}
				if beaten {
					break
				}
			}
			if !beaten {
				survivors++
				winner = order[i]
			} else {
				candidate[order[i]] = false
			}
		}
		if survivors == 1 && dist >= n {
			// Victory lap to announce.
			messages += n
			return winner, messages, nil
		}
		if survivors == 0 {
			return graph.None, messages, errors.New("apps: hirschberg-sinclair eliminated everyone")
		}
	}
}

// ElectComponentRoots runs a flooding max-id election independently in
// every connected component of the live subgraph: each node starts by
// announcing its own id, re-announces to all neighbours whenever its
// best-known id improves, and the owner of a component's maximum id
// becomes that component's root. This is the degradation path for
// partition tolerance — a component that lost the protocol root can
// locally agree on a stand-in without any global knowledge, at
// O(m·diam) messages per component (counted synchronously). The
// self-stabilizing, guarded-command promotion of this election is the
// acting-root layer in internal/failover, whose (lid, ldist) flood
// converges to the same max-id winner per orphan component; this
// message-passing version stays the engine-side oracle
// (churn.ComponentReport) those acting roots are audited against.
//
// ids maps node → id; nil means "use the NodeID" (distinct by
// construction). Live nodes must carry distinct ids. Returns the
// elected root per component label (graph.ComponentOf keys) and the
// total message count across all components.
func ElectComponentRoots(g *graph.Graph, ids []int) (map[int]graph.NodeID, int, error) {
	n := g.N()
	if ids == nil {
		ids = make([]int, n)
		for v := range ids {
			ids[v] = v
		}
	}
	if len(ids) != n {
		return nil, 0, fmt.Errorf("apps: %d ids for %d nodes", len(ids), n)
	}
	seen := make(map[int]graph.NodeID, n)
	for v := 0; v < n; v++ {
		if !g.Alive(graph.NodeID(v)) {
			continue
		}
		if u, dup := seen[ids[v]]; dup {
			return nil, 0, fmt.Errorf("%w: %d held by nodes %d and %d", ErrDuplicateIDs, ids[v], u, v)
		}
		seen[ids[v]] = graph.NodeID(v)
	}
	// Synchronous flooding: best[v] is the largest id v has heard of;
	// a node whose best improved last round announces to every
	// neighbour this round.
	best := make([]int, n)
	announce := make([]bool, n)
	for v := 0; v < n; v++ {
		best[v] = ids[v]
		announce[v] = g.Alive(graph.NodeID(v))
	}
	messages := 0
	for {
		next := make([]bool, n)
		improved := false
		for v := 0; v < n; v++ {
			if !announce[v] {
				continue
			}
			for _, q := range g.Neighbors(graph.NodeID(v)) {
				if q == graph.None {
					continue
				}
				messages++
				if best[v] > best[q] {
					best[q] = best[v]
					next[q] = true
					improved = true
				}
			}
		}
		if !improved {
			break
		}
		announce = next
	}
	roots := make(map[int]graph.NodeID)
	for v := 0; v < n; v++ {
		id := graph.NodeID(v)
		if g.Alive(id) && best[v] == ids[v] {
			roots[g.ComponentOf(id)] = id
		}
	}
	return roots, messages, nil
}

// ElectWithOrientation elects on a network that already carries a
// valid chordal orientation: the node named 0 is the leader by common
// knowledge — zero election messages — and announcing it costs one
// SoD broadcast (2(n−1) messages; n−1 on a clique).
func ElectWithOrientation(g *graph.Graph, l *sod.Labeling) (leader graph.NodeID, messages int, err error) {
	if err := l.Validate(g); err != nil {
		return graph.None, 0, fmt.Errorf("apps: election needs a valid orientation: %w", err)
	}
	leader = l.NodeByName(0)
	if leader == graph.None {
		return graph.None, 0, errors.New("apps: no node named 0")
	}
	messages, err = BroadcastWithSoD(g, l, leader)
	return leader, messages, err
}

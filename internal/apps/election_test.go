package apps

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"netorient/internal/graph"
	"netorient/internal/sod"
)

func seqIDs(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

func TestChangRobertsElectsMaxID(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(20)
		g := graph.Ring(n)
		ids := rng.Perm(n)
		leader, msgs, err := ElectChangRoberts(g, ids)
		if err != nil {
			t.Fatal(err)
		}
		if ids[leader] != n-1 {
			t.Fatalf("leader id %d, want max %d", ids[leader], n-1)
		}
		// Bounds: between 2n (n start + n lap) and n(n+1)/2 + n.
		if msgs < 2*n || msgs > n*(n+1)/2+n {
			t.Fatalf("n=%d: %d messages out of Chang-Roberts bounds", n, msgs)
		}
	}
}

func TestChangRobertsWorstCase(t *testing.T) {
	// Decreasing ids along the direction of travel give the classic
	// O(n^2) worst case: id k travels k+1 hops... totalling
	// n(n+1)/2, plus the victory lap.
	n := 8
	g := graph.Ring(n)
	ids := make([]int, n)
	for i := 0; i < n; i++ {
		ids[i] = n - 1 - i // node 0 has the max; messages travel 0→1→…
	}
	_, msgs, err := ElectChangRoberts(g, ids)
	if err != nil {
		t.Fatal(err)
	}
	want := n*(n+1)/2 + n
	if msgs != want {
		t.Fatalf("worst case: %d messages, want %d", msgs, want)
	}
}

func TestHirschbergSinclairElectsMaxID(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(30)
		g := graph.Ring(n)
		ids := rng.Perm(n)
		leader, msgs, err := ElectHirschbergSinclair(g, ids)
		if err != nil {
			t.Fatal(err)
		}
		if ids[leader] != n-1 {
			t.Fatalf("leader id %d, want max %d", ids[leader], n-1)
		}
		// O(n log n) bound with the textbook constant 8, plus laps.
		bound := int(8*float64(n)*(math.Log2(float64(n))+2)) + 2*n
		if msgs > bound {
			t.Fatalf("n=%d: %d messages exceed O(n log n) bound %d", n, msgs, bound)
		}
	}
}

func TestElectWithOrientationPicksNameZero(t *testing.T) {
	g := graph.Ring(9)
	names := []int{3, 4, 5, 6, 7, 8, 0, 1, 2}
	l := sod.FromNames(g, names, 9)
	leader, msgs, err := ElectWithOrientation(g, l)
	if err != nil {
		t.Fatal(err)
	}
	if leader != 6 {
		t.Fatalf("leader %d, want node 6 (named 0)", leader)
	}
	if msgs != 2*(g.N()-1) {
		t.Fatalf("announcement cost %d, want %d", msgs, 2*(g.N()-1))
	}
}

func TestElectWithOrientationBeatsMessagePassing(t *testing.T) {
	// The point of T9: once oriented, election costs only the
	// announcement — strictly less than either message-passing
	// algorithm on the same ring.
	n := 32
	g := graph.Ring(n)
	l := sod.FromNames(g, seqIDs(n), n)
	_, withSoD, err := ElectWithOrientation(g, l)
	if err != nil {
		t.Fatal(err)
	}
	_, cr, err := ElectChangRoberts(g, seqIDs(n))
	if err != nil {
		t.Fatal(err)
	}
	_, hs, err := ElectHirschbergSinclair(g, seqIDs(n))
	if err != nil {
		t.Fatal(err)
	}
	if withSoD >= cr || withSoD >= hs {
		t.Fatalf("oriented election %d not cheaper than CR %d / HS %d", withSoD, cr, hs)
	}
}

func TestElectionRejectsBadInputs(t *testing.T) {
	if _, _, err := ElectChangRoberts(graph.Star(5), seqIDs(5)); !errors.Is(err, ErrNotRing) {
		t.Errorf("star: got %v, want ErrNotRing", err)
	}
	if _, _, err := ElectChangRoberts(graph.Ring(5), []int{1, 1, 2, 3, 4}); !errors.Is(err, ErrDuplicateIDs) {
		t.Errorf("dup ids: got %v, want ErrDuplicateIDs", err)
	}
	if _, _, err := ElectHirschbergSinclair(graph.Ring(5), seqIDs(4)); err == nil {
		t.Error("id count mismatch accepted")
	}
	bad := sod.FromNames(graph.Ring(5), []int{0, 0, 1, 2, 3}, 5)
	if _, _, err := ElectWithOrientation(graph.Ring(5), bad); err == nil {
		t.Error("invalid labeling accepted")
	}
}

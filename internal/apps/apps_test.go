package apps

import (
	"math/rand"
	"testing"
	"testing/quick"

	"netorient/internal/graph"
	"netorient/internal/sod"
)

func identityLabeling(g *graph.Graph) *sod.Labeling {
	names := make([]int, g.N())
	for i := range names {
		names[i] = i
	}
	return sod.FromNames(g, names, g.N())
}

func TestFloodBroadcastMessageCount(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"ring8", graph.Ring(8)},
		{"clique6", graph.Complete(6)},
		{"grid3x3", graph.Grid(3, 3)},
		{"tree7", graph.KAryTree(7, 2)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			msgs, rounds := FloodBroadcast(c.g, 0)
			want := 2*c.g.M() - (c.g.N() - 1)
			if msgs != want {
				t.Errorf("flooding used %d messages, want 2m-(n-1)=%d", msgs, want)
			}
			if rounds < 1 || rounds > c.g.N() {
				t.Errorf("rounds %d out of range", rounds)
			}
		})
	}
}

func TestTraverseNoSoDUsesTwoMessagesPerEdge(t *testing.T) {
	f := func(seed int64, nRaw, extraRaw uint8) bool {
		n := 2 + int(nRaw%15)
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomConnected(n, int(extraRaw%10), rng)
		return TraverseNoSoD(g, 0) == 2*g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTraverseWithSoDUsesTreeEdgesOnly(t *testing.T) {
	f := func(seed int64, nRaw, extraRaw uint8) bool {
		n := 2 + int(nRaw%15)
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomConnected(n, int(extraRaw%10), rng)
		msgs, err := TraverseWithSoD(g, identityLabeling(g), 0)
		return err == nil && msgs == 2*(g.N()-1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTraverseWithSoDRejectsInvalidLabeling(t *testing.T) {
	g := graph.Ring(5)
	l := identityLabeling(g)
	l.Labels[0][0] = (l.Labels[0][0] + 1) % 5
	if _, err := TraverseWithSoD(g, l, 0); err == nil {
		t.Fatal("expected error for invalid labeling")
	}
}

func TestOrientationReducesTraversalMessages(t *testing.T) {
	// The T5 claim: on any graph denser than a tree, oriented
	// traversal (2(n-1)) beats unoriented traversal (2m).
	for _, g := range []*graph.Graph{
		graph.Complete(8),
		graph.Torus(4, 4),
		graph.Hypercube(4),
		graph.Wheel(9),
	} {
		with, err := TraverseWithSoD(g, identityLabeling(g), 0)
		if err != nil {
			t.Fatal(err)
		}
		without := TraverseNoSoD(g, 0)
		if with >= without {
			t.Errorf("%s: oriented %d ≥ unoriented %d messages", g, with, without)
		}
	}
}

func TestDirectBroadcast(t *testing.T) {
	g := graph.Complete(7)
	msgs, ok := DirectBroadcastMessages(g, 0)
	if !ok || msgs != 6 {
		t.Fatalf("clique direct broadcast = %d,%v want 6,true", msgs, ok)
	}
	if _, ok := DirectBroadcastMessages(graph.Ring(5), 0); ok {
		t.Error("ring node is not adjacent to everyone")
	}
	if msgs, ok := DirectBroadcastMessages(graph.Star(6), 0); !ok || msgs != 5 {
		t.Errorf("star hub direct broadcast = %d,%v want 5,true", msgs, ok)
	}
}

func TestBroadcastWithSoDDeliversToAll(t *testing.T) {
	g := graph.Grid(3, 4)
	msgs, err := BroadcastWithSoD(g, identityLabeling(g), 0)
	if err != nil {
		t.Fatal(err)
	}
	if msgs != 2*(g.N()-1) {
		t.Errorf("broadcast used %d messages, want %d", msgs, 2*(g.N()-1))
	}
}

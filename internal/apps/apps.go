// Package apps implements the message-passing applications the paper
// motivates network orientation with (§1.3, §1.4, Chapter 5): Santoro
// showed that an available orientation decreases the message
// complexity of fundamental computations. The functions here simulate
// broadcast and depth-first traversal with and without a chordal sense
// of direction and report exact message counts, which experiment T5
// compares.
//
// Locality audit (program.Influencer): nothing to declare here — the
// broadcast, traversal and election procedures (including the ring
// elections in election.go) are one-shot message-passing simulations,
// not guarded-command protocols, so they never run under a
// program.System and the incremental scheduler's locality contract
// does not apply to them.
package apps

import (
	"fmt"

	"netorient/internal/graph"
	"netorient/internal/sod"
)

// FloodBroadcast simulates broadcast by flooding on an un-oriented
// network: the source sends to every neighbour; every other node, on
// its first reception, forwards to every neighbour except the sender.
// It returns the total messages (the classic 2m − (n−1)) and the
// number of communication rounds until quiescence.
func FloodBroadcast(g *graph.Graph, source graph.NodeID) (messages, rounds int) {
	informed := make([]bool, g.N())
	informed[source] = true
	type send struct{ from, to graph.NodeID }
	frontier := []send{}
	for _, q := range g.Neighbors(source) {
		frontier = append(frontier, send{source, q})
	}
	for len(frontier) > 0 {
		rounds++
		messages += len(frontier)
		var next []send
		for _, s := range frontier {
			if informed[s.to] {
				continue
			}
			informed[s.to] = true
			for _, q := range g.Neighbors(s.to) {
				if q != s.from {
					next = append(next, send{s.to, q})
				}
			}
		}
		frontier = next
	}
	return messages, rounds
}

// TraverseNoSoD simulates the classic depth-first traversal of an
// anonymous un-oriented network (Tarry's algorithm): the token must
// probe every incident edge because a node cannot tell which
// neighbours were already visited. Every edge carries the token
// exactly twice, so the message count is 2m.
func TraverseNoSoD(g *graph.Graph, root graph.NodeID) (messages int) {
	visited := make([]bool, g.N())
	used := make(map[[2]graph.NodeID]bool, 2*g.M())
	parent := make([]graph.NodeID, g.N())
	for i := range parent {
		parent[i] = graph.None
	}
	visited[root] = true
	cur := root
	for {
		moved := false
		for _, q := range g.Neighbors(cur) {
			if q == parent[cur] {
				// Tarry's rule: the parent edge is only used to
				// backtrack, after every other edge is exhausted.
				continue
			}
			if used[[2]graph.NodeID{cur, q}] {
				continue
			}
			// Send the token over an unused edge direction.
			used[[2]graph.NodeID{cur, q}] = true
			messages++
			if visited[q] {
				// Immediately bounced back by the DFS rule.
				used[[2]graph.NodeID{q, cur}] = true
				messages++
				continue
			}
			visited[q] = true
			parent[q] = cur
			cur = q
			moved = true
			break
		}
		if moved {
			continue
		}
		if cur == root {
			return messages
		}
		// Backtrack to the parent.
		used[[2]graph.NodeID{cur, parent[cur]}] = true
		messages++
		cur = parent[cur]
	}
}

// TraverseWithSoD simulates depth-first traversal exploiting a chordal
// sense of direction: the token carries the set of visited names, and
// a node translates every incident label into the neighbour's name
// locally (sod.Labeling.TranslateName), so it never probes an edge to
// an already-visited node. The token moves only over tree edges:
// 2(n−1) messages.
func TraverseWithSoD(g *graph.Graph, l *sod.Labeling, root graph.NodeID) (messages int, err error) {
	if err := l.Validate(g); err != nil {
		return 0, fmt.Errorf("apps: traversal needs a valid orientation: %w", err)
	}
	visitedName := make(map[int]bool, g.N())
	visitedName[l.Names[root]] = true
	parent := make([]graph.NodeID, g.N())
	for i := range parent {
		parent[i] = graph.None
	}
	cur := root
	for {
		moved := false
		for port, q := range g.Neighbors(cur) {
			if visitedName[l.TranslateName(cur, port)] {
				continue
			}
			messages++
			visitedName[l.Names[q]] = true
			parent[q] = cur
			cur = q
			moved = true
			break
		}
		if moved {
			continue
		}
		if cur == root {
			if len(visitedName) != g.N() {
				return messages, fmt.Errorf("apps: traversal visited %d of %d nodes", len(visitedName), g.N())
			}
			return messages, nil
		}
		messages++
		cur = parent[cur]
	}
}

// BroadcastWithSoD simulates broadcast over the oriented network: the
// source performs the SoD traversal and delivers the payload as the
// token travels, so the message count equals the traversal's 2(n−1) —
// compared against flooding's 2m − (n−1). On a clique the orientation
// even allows direct addressing (n−1 messages), reported separately
// by DirectBroadcastMessages.
func BroadcastWithSoD(g *graph.Graph, l *sod.Labeling, source graph.NodeID) (messages int, err error) {
	return TraverseWithSoD(g, l, source)
}

// DirectBroadcastMessages returns the message count of direct
// per-neighbour addressing, applicable when the source is adjacent to
// every other node (cliques, stars from the hub): n−1.
func DirectBroadcastMessages(g *graph.Graph, source graph.NodeID) (int, bool) {
	if g.Degree(source) != g.N()-1 {
		return 0, false
	}
	return g.N() - 1, true
}

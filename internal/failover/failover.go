// Package failover layers self-stabilizing disconnection detection
// and root failover over any rootable protocol stack.
//
// The paper's algorithms assume one distinguished root processor. A
// partition strands components without one (the token circulation
// quiesces, the trees freeze), and a root crash strands the whole
// network. This package closes that gap with a composable wrapper
// running two classic self-stabilizing layers alongside the wrapped
// stack:
//
//   - Detection: every node maintains a bounded root-distance
//     (dist ∈ 0..N) plus a root-epoch it inherits down the distance
//     gradient. The fixed root anchors (0, RootEpoch); everyone else
//     wants min-neighbour+1. In a component without the live root the
//     distances count up to the bound N (they cannot exceed the
//     component size when a root is present), so Orphaned(v) ≔
//     dist_v = N converges to the ground truth "v's component does
//     not contain the live fixed root" — a purely local predicate of
//     v's own variable.
//
//   - Election: every node maintains a leader candidate (lid, ldist),
//     the flooding max-id election of apps.ElectComponentRoots recast
//     as a guarded-command layer. Own id at distance 0 is always a
//     candidate; a neighbour's strictly larger lid is adopted at
//     ldist+1 while ldist+1 < N, so stale ids of dead leaders decay by
//     counting up (the same bound as detection). At the fixpoint lid_v
//     is the largest live id in v's component. WeightElection switches
//     the contest to the lexicographic (priority, degree, id) key so
//     operator-pinned or highly connected nodes win acting-root duty;
//     candidates advertise their own key and adopters copy it, keeping
//     guards one-hop local.
//
// An orphaned node that elects itself — Orphaned(v) ∧ lid_v = v — is
// an acting root. The wrapper exposes the verdict to the wrapped stack
// through program.RootAuthority: the stack re-anchors its circulation
// or tree at the acting root and converges to component-local
// legitimacy (ActingLegitimate). On heal the distance gradient from
// the true root floods back, Orphaned flips off, the acting root
// abdicates, and the stack re-converges on the merged component —
// acting-root state washes out because IsRoot is derived, never
// stored.
package failover

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"

	"netorient/internal/graph"
	"netorient/internal/program"
)

// Inner is what the wrapper needs from the wrapped stack: the
// guarded-command behaviour, a legitimacy predicate, and the
// root-authority binding point.
type Inner interface {
	program.Protocol
	program.Legitimacy
	program.Rootable
}

// The wrapper's own actions, offset above every stack's id space
// (substrates use small ids, orientation layers 1<<20).
const (
	// ActDetect: (dist, epoch) := the root-distance rule.
	ActDetect program.ActionID = 1<<21 + iota
	// ActElect: (lid, ldist) := the max-id flooding rule.
	ActElect
)

// Protocol is the composed stack: detection + election + the wrapped
// protocol, bound to this wrapper as its root authority.
type Protocol struct {
	g    *graph.Graph
	in   Inner
	root graph.NodeID

	dist  []int
	epoch []uint64
	lid   []int
	ldist []int

	// Weighted acting-root election (WeightElection): candidates
	// compete on the lexicographic key (priority, degree, id) instead
	// of bare id. prio holds the operator pins; lprio/ldeg carry the
	// *advertised* priority and degree of the candidate in lid — the
	// origin re-derives its own advertisement from its true priority
	// and degree, adopters copy it verbatim, so election guards still
	// read one hop only (a remote degree lookup would break the
	// incremental scheduler's locality contract). Stale or fabricated
	// advertisements decay exactly like stale ids: they are never
	// re-anchored at distance 0, so adoption counts their ldist up to
	// the bound. Off by default — the bare max-id path is bit-identical
	// to the unweighted wrapper.
	weighted bool
	prio     []int64
	lprio    []int64
	ldeg     []int

	// rootsVer is the program.RootAuthority staleness key: bumped on
	// every IsRoot verdict flip an Execute causes, and conservatively
	// on every node-liveness delta (which can flip verdicts without
	// any Execute: the fixed root dying, the bound N growing).
	rootsVer uint64

	// LeaderFlaps counts acting-root promotions (IsRoot flipping true
	// at a non-fixed-root node); flaps records them per node so churn
	// reports can aggregate flap counts per component.
	LeaderFlaps int64
	flaps       []int64

	wit   program.ViolationCounter
	inWit program.Witness // type-asserted from in; nil ⇒ fall back to in.Legitimate
}

// Compile-time interface compliance.
var (
	_ program.Protocol      = (*Protocol)(nil)
	_ program.Legitimacy    = (*Protocol)(nil)
	_ program.Snapshotter   = (*Protocol)(nil)
	_ program.Randomizer    = (*Protocol)(nil)
	_ program.NodeCorruptor = (*Protocol)(nil)
	_ program.SpaceMeter    = (*Protocol)(nil)
	_ program.ActionNamer   = (*Protocol)(nil)
	_ program.Influencer    = (*Protocol)(nil)
	_ program.TopologyAware = (*Protocol)(nil)
	_ program.Witness       = (*Protocol)(nil)
	_ program.RootAuthority = (*Protocol)(nil)
)

// New wraps inner, anchored at the fixed root. The wrapper's own
// variables are initialised to their fixpoint for the current graph
// (distances up from the bound, candidates from own ids), so wrapping
// a legitimate stack on a connected graph yields a legitimate composed
// system; use Randomize for adversarial starts. Binding the authority
// is the last step — on a connected graph the effective root set is
// exactly {root}, so the stack's reference structures are unchanged.
func New(g *graph.Graph, inner Inner, root graph.NodeID) *Protocol {
	n := g.N()
	p := &Protocol{
		g:     g,
		in:    inner,
		root:  root,
		dist:  make([]int, n),
		epoch: make([]uint64, n),
		lid:   make([]int, n),
		ldist: make([]int, n),
		prio:  make([]int64, n),
		lprio: make([]int64, n),
		ldeg:  make([]int, n),
		flaps: make([]int64, n),
	}
	for v := 0; v < n; v++ {
		p.dist[v] = p.cap()
		p.lid[v] = v
	}
	p.stabilizeOwn()
	p.inWit, _ = inner.(program.Witness)
	inner.BindRootAuthority(p)
	return p
}

// WeightElection switches the acting-root election to the weighted
// (priority, degree, id) key and re-stabilizes the wrapper layers to
// the new fixpoint synchronously. pins maps nodes to operator
// priorities (unpinned nodes compete at priority 0, so with a nil map
// the highest-degree node wins, ties broken by id). A configuration
// call like New, not a protocol move: invoke it before handing the
// stack to an engine, or follow it with the engine's Invalidate.
func (p *Protocol) WeightElection(pins map[graph.NodeID]int64) {
	p.weighted = true
	for v := range p.prio {
		p.prio[v] = 0
	}
	for v, w := range pins {
		if int(v) < len(p.prio) {
			p.prio[v] = w
		}
	}
	p.stabilizeOwn()
	p.rootsVer++
	p.wit.Invalidate()
}

// Weighted reports whether the weighted election is active.
func (p *Protocol) Weighted() bool { return p.weighted }

// Priority returns node v's operator pin (0 unless pinned).
func (p *Protocol) Priority(v graph.NodeID) int64 { return p.prio[v] }

// stabilizeOwn runs synchronous sweeps of both layers' assignment
// rules to their fixpoint — O(diam) sweeps from the constructor's
// monotone start, O(N) worst case.
func (p *Protocol) stabilizeOwn() {
	for changed := true; changed; {
		changed = false
		for v := 0; v < p.g.N(); v++ {
			id := graph.NodeID(v)
			if !p.g.Alive(id) {
				continue
			}
			if d, e := p.desiredDetect(id); d != p.dist[v] || e != p.epoch[v] {
				p.dist[v], p.epoch[v] = d, e
				changed = true
			}
			if p.weighted {
				l, lp, lg, ld := p.desiredElectW(id)
				if l != p.lid[v] || lp != p.lprio[v] || lg != p.ldeg[v] || ld != p.ldist[v] {
					p.lid[v], p.lprio[v], p.ldeg[v], p.ldist[v] = l, lp, lg, ld
					changed = true
				}
			} else if l, ld := p.desiredElect(id); l != p.lid[v] || ld != p.ldist[v] {
				p.lid[v], p.ldist[v] = l, ld
				changed = true
			}
		}
	}
}

// cap is the agreed network-size bound N the counters count up to: no
// node in a component containing the live root is N or more hops from
// it, so dist = cap certifies orphanhood once detection settles.
func (p *Protocol) cap() int { return p.g.N() }

// clampDist maps a (possibly corrupted) stored distance into 0..cap.
func (p *Protocol) clampDist(d int) int {
	if d < 0 {
		return 0
	}
	if c := p.cap(); d > c {
		return c
	}
	return d
}

// desiredDetect is the detection rule at v: the live fixed root
// anchors (0, its liveness epoch); everyone else takes the smallest
// live-neighbour distance plus one — inheriting that neighbour's epoch
// — or saturates at the bound.
func (p *Protocol) desiredDetect(v graph.NodeID) (int, uint64) {
	if v == p.root {
		return 0, p.g.RootEpoch(v)
	}
	c := p.cap()
	m, me := c, uint64(0)
	for _, q := range p.g.Neighbors(v) {
		if q == graph.None || !p.g.Alive(q) {
			continue
		}
		if dq := p.clampDist(p.dist[q]); dq < m {
			m, me = dq, p.epoch[q]
		}
	}
	if m+1 < c {
		return m + 1, me
	}
	return c, 0
}

// desiredElect is the election rule at v: own id at distance 0 always
// competes; a neighbour's strictly larger candidate wins at ldist+1
// while that stays below the bound (stale ids of dead leaders decay by
// counting up); among equal candidates the shortest distance wins.
func (p *Protocol) desiredElect(v graph.NodeID) (int, int) {
	best, bd := int(v), 0
	c := p.cap()
	for _, q := range p.g.Neighbors(v) {
		if q == graph.None || !p.g.Alive(q) {
			continue
		}
		lq, dq := p.lid[q], p.clampDist(p.ldist[q])+1
		if dq >= c {
			continue
		}
		if lq > best || (lq == best && dq < bd) {
			best, bd = lq, dq
		}
	}
	return best, bd
}

// keyLess orders weighted-election keys lexicographically:
// (priority, degree, id), larger wins.
func keyLess(pa int64, da, ia int, pb int64, db, ib int) bool {
	if pa != pb {
		return pa < pb
	}
	if da != db {
		return da < db
	}
	return ia < ib
}

// desiredElectW is the weighted election rule at v: own candidacy
// advertises v's true (priority, degree, id) at distance 0; a
// neighbour's strictly larger advertised key is adopted verbatim at
// ldist+1 while that stays below the bound. Among equal keys the
// shortest distance wins. Fabricated self-advertisements (lid = v with
// a wrong key) are repaired directly by the origin's base case; every
// other stale advertisement decays by the same count-to-the-bound
// argument as bare max-id.
func (p *Protocol) desiredElectW(v graph.NodeID) (int, int64, int, int) {
	best, bp, bg, bd := int(v), p.prio[v], p.g.Degree(v), 0
	c := p.cap()
	for _, q := range p.g.Neighbors(v) {
		if q == graph.None || !p.g.Alive(q) {
			continue
		}
		dq := p.clampDist(p.ldist[q]) + 1
		if dq >= c {
			continue
		}
		lq, pq, gq := p.lid[q], p.lprio[q], p.ldeg[q]
		if keyLess(bp, bg, best, pq, gq, lq) ||
			(lq == best && pq == bp && gq == bg && dq < bd) {
			best, bp, bg, bd = lq, pq, gq, dq
		}
	}
	return best, bp, bg, bd
}

// Orphaned reports node v's own verdict on whether its component has
// lost the fixed root: its bounded distance counter has saturated. A
// function of v's own variable only, so a flip influences guards no
// further than the wrapper's declared balls.
func (p *Protocol) Orphaned(v graph.NodeID) bool { return p.clampDist(p.dist[v]) >= p.cap() }

// IsRoot implements program.RootAuthority: the live fixed root, or an
// orphaned node that elected itself.
func (p *Protocol) IsRoot(v graph.NodeID) bool {
	if !p.g.Alive(v) {
		return false
	}
	return v == p.root || (p.Orphaned(v) && p.lid[v] == int(v))
}

// RootsVersion implements program.RootAuthority.
func (p *Protocol) RootsVersion() uint64 { return p.rootsVer }

// Root returns the fixed root the wrapper is anchored at.
func (p *Protocol) Root() graph.NodeID { return p.root }

// Inner returns the wrapped stack.
func (p *Protocol) Inner() Inner { return p.in }

// ActingRoots returns the current effective roots in ascending order.
func (p *Protocol) ActingRoots() []graph.NodeID {
	var out []graph.NodeID
	for v := 0; v < p.g.N(); v++ {
		if p.IsRoot(graph.NodeID(v)) {
			out = append(out, graph.NodeID(v))
		}
	}
	return out
}

// FlapCount returns how many times node v was promoted to acting
// root (telemetry for churn reports; not protocol state).
func (p *Protocol) FlapCount(v graph.NodeID) int64 { return p.flaps[v] }

// OrphanTruth is the ground truth Orphaned converges to: v is live
// and its component does not contain the live fixed root.
func (p *Protocol) OrphanTruth(v graph.NodeID) bool {
	if !p.g.Alive(v) {
		return false
	}
	return !p.g.Alive(p.root) || p.g.ComponentOf(v) != p.g.ComponentOf(p.root)
}

// DetectionAccurate reports whether every live node's Orphaned verdict
// agrees with graph truth — the differential audit's settle predicate.
func (p *Protocol) DetectionAccurate() bool {
	for v := 0; v < p.g.N(); v++ {
		id := graph.NodeID(v)
		if p.g.Alive(id) && p.Orphaned(id) != p.OrphanTruth(id) {
			return false
		}
	}
	return true
}

// Name implements program.Protocol.
func (p *Protocol) Name() string { return "failover/" + p.in.Name() }

// Graph implements program.Protocol.
func (p *Protocol) Graph() *graph.Graph { return p.g }

// Enabled implements program.Protocol.
func (p *Protocol) Enabled(v graph.NodeID, buf []program.ActionID) []program.ActionID {
	buf = p.in.Enabled(v, buf)
	if !p.g.Alive(v) {
		return buf
	}
	if d, e := p.desiredDetect(v); d != p.dist[v] || e != p.epoch[v] {
		buf = append(buf, ActDetect)
	}
	if p.weighted {
		l, lp, lg, ld := p.desiredElectW(v)
		if l != p.lid[v] || lp != p.lprio[v] || lg != p.ldeg[v] || ld != p.ldist[v] {
			buf = append(buf, ActElect)
		}
	} else if l, ld := p.desiredElect(v); l != p.lid[v] || ld != p.ldist[v] {
		buf = append(buf, ActElect)
	}
	return buf
}

// Execute implements program.Protocol. A wrapper move that flips v's
// IsRoot verdict bumps the authority version (the wrapped stack's
// reference structures re-derive lazily on their next legitimacy
// query) and records the flap.
func (p *Protocol) Execute(v graph.NodeID, a program.ActionID) bool {
	switch a {
	case ActDetect:
		d, e := p.desiredDetect(v)
		if d == p.dist[v] && e == p.epoch[v] {
			return false
		}
		pre := p.IsRoot(v)
		p.dist[v], p.epoch[v] = d, e
		p.noteFlip(v, pre)
		return true
	case ActElect:
		if p.weighted {
			l, lp, lg, ld := p.desiredElectW(v)
			if l == p.lid[v] && lp == p.lprio[v] && lg == p.ldeg[v] && ld == p.ldist[v] {
				return false
			}
			pre := p.IsRoot(v)
			p.lid[v], p.lprio[v], p.ldeg[v], p.ldist[v] = l, lp, lg, ld
			p.noteFlip(v, pre)
			return true
		}
		l, ld := p.desiredElect(v)
		if l == p.lid[v] && ld == p.ldist[v] {
			return false
		}
		pre := p.IsRoot(v)
		p.lid[v], p.ldist[v] = l, ld
		p.noteFlip(v, pre)
		return true
	default:
		return p.in.Execute(v, a)
	}
}

// noteFlip bumps the authority version when v's verdict changed from
// pre, counting promotions of non-fixed-root nodes as leader flaps.
func (p *Protocol) noteFlip(v graph.NodeID, pre bool) {
	post := p.IsRoot(v)
	if post == pre {
		return
	}
	p.rootsVer++
	if post && v != p.root {
		p.LeaderFlaps++
		p.flaps[v]++
	}
}

// Influence implements program.Influencer. The wrapper's own moves
// write only v's (dist, epoch, lid, ldist), read one hop away by
// detection/election guards — but they can also flip IsRoot(v), which
// the wrapped stack's guards consult through substrate functions that
// read a neighbour's derived parent or token position. The radius-2
// ball covers both: guard holders one hop from any reader of v's
// verdict. Inner moves delegate to the stack's own declaration (they
// never write the wrapper's variables).
func (p *Protocol) Influence(v graph.NodeID, a program.ActionID, buf []graph.NodeID) []graph.NodeID {
	if a >= ActDetect {
		return program.InfluenceBall(p.g, v, 2, buf)
	}
	if inf, ok := p.in.(program.Influencer); ok {
		return inf.Influence(v, a, buf)
	}
	return program.InfluenceClosedNeighborhood(p.g, v, buf)
}

// LocalityRadius implements program.LocalityRadius for the sharded
// parallel stepper: the wrapper's radius-2 influence balls (above) and
// the inner stack's reads through substrate functions are both covered
// by two hops, taking the maximum of 2 and the stack's own
// declaration.
func (p *Protocol) LocalityRadius() int {
	r := 2
	if ir := program.ProtocolRadius(p.in); ir > r {
		r = ir
	}
	return r
}

// ActionName implements program.ActionNamer.
func (p *Protocol) ActionName(a program.ActionID) string {
	switch a {
	case ActDetect:
		return "Detect"
	case ActElect:
		return "Elect"
	}
	return program.ActionName(p.in, a)
}

// settled reports whether both wrapper layers are at their fixpoint.
func (p *Protocol) settled() bool {
	for v := 0; v < p.g.N(); v++ {
		if p.violates(graph.NodeID(v)) {
			return false
		}
	}
	return true
}

// Legitimate implements program.Legitimacy: the wrapper layers are at
// their fixpoint and the wrapped stack is legitimate under the
// authority's verdicts — which, when orphan components exist, is
// exactly per-component local legitimacy anchored at the acting roots.
func (p *Protocol) Legitimate() bool {
	return p.settled() && p.in.Legitimate()
}

// ActingLegitimate is the paper-facing name for the composed
// predicate: every component — rooted at the fixed root or at its
// acting root — has locally converged, and detection/election agree
// with graph truth (settled detection is truthful by the counting
// bound). Identical to Legitimate; exported for call sites that want
// the failover semantics spelled out.
func (p *Protocol) ActingLegitimate() bool { return p.Legitimate() }

// violates is the wrapper's per-node witness clause: a live node whose
// detection or election variable disagrees with its rule. Reads v's
// closed 1-hop neighbourhood only.
func (p *Protocol) violates(v graph.NodeID) bool {
	if !p.g.Alive(v) {
		return false
	}
	if d, e := p.desiredDetect(v); d != p.dist[v] || e != p.epoch[v] {
		return true
	}
	if p.weighted {
		l, lp, lg, ld := p.desiredElectW(v)
		return l != p.lid[v] || lp != p.lprio[v] || lg != p.ldeg[v] || ld != p.ldist[v]
	}
	l, ld := p.desiredElect(v)
	return l != p.lid[v] || ld != p.ldist[v]
}

// WitnessReset implements program.Witness.
func (p *Protocol) WitnessReset() {
	if p.inWit != nil {
		p.inWit.WitnessReset()
	}
	p.wit.Reset(p.g.N(), p.violates)
}

// WitnessRefresh implements program.Witness.
func (p *Protocol) WitnessRefresh(v graph.NodeID) {
	if !p.wit.Valid() {
		return
	}
	if p.inWit != nil {
		p.inWit.WitnessRefresh(v)
	}
	p.wit.Refresh(v, p.violates(v))
}

// WitnessLegitimate implements program.Witness. The wrapper's own
// verdict is checked first and short-circuits: while detection or
// election is still converging there is no point paying the wrapped
// stack's witness re-arm (root flips keep invalidating its reference
// structures).
func (p *Protocol) WitnessLegitimate() bool {
	if !p.wit.Valid() {
		p.WitnessReset()
	}
	if !p.wit.Zero() {
		return false
	}
	if p.inWit != nil {
		return p.inWit.WitnessLegitimate()
	}
	return p.in.Legitimate()
}

// TopologyChanged implements program.TopologyAware: forward to the
// wrapped stack first, grow node-indexed arrays if the id space grew,
// and conservatively treat every node-liveness delta as a potential
// verdict flip — the fixed root dying or reviving, the bound N
// growing, a RootEpoch bump — by bumping the authority version and
// invalidating the wrapper's witness (its clauses read the bound and
// the root's epoch). The returned ball is the radius-2 ball of the
// touched set, matching the Influence declaration.
func (p *Protocol) TopologyChanged(d graph.Delta, buf []graph.NodeID) []graph.NodeID {
	if ta, ok := p.in.(program.TopologyAware); ok {
		buf = ta.TopologyChanged(d, buf)
	}
	if n := p.g.N(); len(p.dist) < n {
		for len(p.dist) < n {
			p.dist = append(p.dist, 0)
			p.epoch = append(p.epoch, 0)
			p.lid = append(p.lid, len(p.lid))
			p.ldist = append(p.ldist, 0)
			p.prio = append(p.prio, 0)
			p.lprio = append(p.lprio, 0)
			p.ldeg = append(p.ldeg, 0)
			p.flaps = append(p.flaps, 0)
		}
		p.rootsVer++ // the bound N grew: saturated counters are no longer saturated
		p.wit.Invalidate()
	}
	if d.Kind == graph.NodeAdded || d.Kind == graph.NodeRemoved {
		p.rootsVer++
		p.wit.Invalidate()
	}
	for _, v := range d.Touched {
		buf = program.InfluenceBall(p.g, v, 2, buf)
	}
	return buf
}

// Snapshot implements program.Snapshotter: the wrapped stack's
// snapshot followed by the wrapper's per-node variables. Telemetry
// (flap counts, the authority version) is not state and is excluded,
// keeping lockstep snapshot comparisons meaningful across systems
// with different rebuild histories.
func (p *Protocol) Snapshot() []byte {
	var in []byte
	if sn, ok := p.in.(program.Snapshotter); ok {
		in = sn.Snapshot()
	}
	buf := make([]byte, 0, len(in)+10+16*p.g.N())
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(in)))
	buf = append(buf, tmp[:n]...)
	buf = append(buf, in...)
	for v := 0; v < p.g.N(); v++ {
		n = binary.PutVarint(tmp[:], int64(p.dist[v]))
		buf = append(buf, tmp[:n]...)
		n = binary.PutUvarint(tmp[:], p.epoch[v])
		buf = append(buf, tmp[:n]...)
		n = binary.PutVarint(tmp[:], int64(p.lid[v]))
		buf = append(buf, tmp[:n]...)
		n = binary.PutVarint(tmp[:], int64(p.ldist[v]))
		buf = append(buf, tmp[:n]...)
		n = binary.PutVarint(tmp[:], p.lprio[v])
		buf = append(buf, tmp[:n]...)
		n = binary.PutVarint(tmp[:], int64(p.ldeg[v]))
		buf = append(buf, tmp[:n]...)
	}
	return buf
}

// Restore implements program.Snapshotter. Restored state may hold any
// verdict pattern, so the authority version bumps unconditionally.
func (p *Protocol) Restore(data []byte) error {
	inLen, n := binary.Uvarint(data)
	if n <= 0 || uint64(len(data)-n) < inLen {
		return errors.New("failover: malformed snapshot header")
	}
	if sn, ok := p.in.(program.Snapshotter); ok {
		if err := sn.Restore(data[n : n+int(inLen)]); err != nil {
			return fmt.Errorf("failover: restore inner: %w", err)
		}
	} else if inLen != 0 {
		return errors.New("failover: snapshot has inner bytes but inner cannot restore")
	}
	rest := data[n+int(inLen):]
	getInt := func() (int, error) {
		x, n := binary.Varint(rest)
		if n <= 0 {
			return 0, errors.New("failover: truncated snapshot")
		}
		rest = rest[n:]
		return int(x), nil
	}
	for v := 0; v < p.g.N(); v++ {
		var err error
		if p.dist[v], err = getInt(); err != nil {
			return err
		}
		e, m := binary.Uvarint(rest)
		if m <= 0 {
			return errors.New("failover: truncated snapshot")
		}
		p.epoch[v], rest = e, rest[m:]
		if p.lid[v], err = getInt(); err != nil {
			return err
		}
		if p.ldist[v], err = getInt(); err != nil {
			return err
		}
		lp, m := binary.Varint(rest)
		if m <= 0 {
			return errors.New("failover: truncated snapshot")
		}
		p.lprio[v], rest = lp, rest[m:]
		if p.ldeg[v], err = getInt(); err != nil {
			return err
		}
	}
	if len(rest) != 0 {
		return errors.New("failover: trailing snapshot bytes")
	}
	p.rootsVer++
	p.wit.Invalidate()
	return nil
}

// CorruptNode implements program.NodeCorruptor: v's wrapper variables
// take arbitrary values of their domains (dist, ldist ∈ 0..N; lid,
// epoch over the id/epoch spaces) on top of the stack's corruption.
func (p *Protocol) CorruptNode(v graph.NodeID, rng *rand.Rand) {
	if c, ok := p.in.(program.NodeCorruptor); ok {
		c.CorruptNode(v, rng)
	}
	pre := p.IsRoot(v)
	p.dist[v] = rng.Intn(p.cap() + 1)
	p.epoch[v] = uint64(rng.Intn(4))
	p.lid[v] = rng.Intn(p.g.N())
	p.ldist[v] = rng.Intn(p.cap() + 1)
	if p.weighted {
		// Extra draws only in weighted mode, so bare-mode seeded
		// schedules (soak/churn replays) consume exactly four values
		// per corruption, unchanged.
		p.lprio[v] = int64(rng.Intn(5)) - 1
		p.ldeg[v] = rng.Intn(p.cap() + 1)
	}
	p.noteFlip(v, pre)
}

// Randomize implements program.Randomizer.
func (p *Protocol) Randomize(rng *rand.Rand) {
	for v := 0; v < p.g.N(); v++ {
		p.CorruptNode(graph.NodeID(v), rng)
	}
}

// StateBits implements program.SpaceMeter: two bounded counters, an
// id, and an epoch word per node on top of the stack.
func (p *Protocol) StateBits(v graph.NodeID) int {
	bits := 2*program.Log2Ceil(p.cap()+1) + program.Log2Ceil(p.g.N()) + 64
	if p.weighted {
		// Advertised candidate key: a priority word plus a degree
		// counter bounded by N.
		bits += 64 + program.Log2Ceil(p.cap()+1)
	}
	if m, ok := p.in.(program.SpaceMeter); ok {
		bits += m.StateBits(v)
	}
	return bits
}

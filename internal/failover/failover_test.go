package failover_test

import (
	"fmt"
	"math/rand"
	"testing"

	"netorient/internal/core"
	"netorient/internal/daemon"
	"netorient/internal/failover"
	"netorient/internal/graph"
	"netorient/internal/program"
	"netorient/internal/spantree"
	"netorient/internal/token"
)

// stacks builds every protocol stack wrapped in the failover layer,
// anchored at root 0.
func stacks() map[string]func(g *graph.Graph) (*failover.Protocol, error) {
	wrap := func(in failover.Inner, err error) (*failover.Protocol, error) {
		if err != nil {
			return nil, err
		}
		return failover.New(in.Graph(), in, 0), nil
	}
	return map[string]func(g *graph.Graph) (*failover.Protocol, error){
		"token": func(g *graph.Graph) (*failover.Protocol, error) {
			return wrap(token.NewCirculator(g, 0))
		},
		"bfs": func(g *graph.Graph) (*failover.Protocol, error) {
			return wrap(spantree.NewBFSTree(g, 0))
		},
		"dfs": func(g *graph.Graph) (*failover.Protocol, error) {
			return wrap(spantree.NewDFSTree(g, 0))
		},
		"dftno": func(g *graph.Graph) (*failover.Protocol, error) {
			sub, err := token.NewCirculator(g, 0)
			if err != nil {
				return nil, err
			}
			return wrap(core.NewDFTNO(g, sub, 0))
		},
		"stno": func(g *graph.Graph) (*failover.Protocol, error) {
			sub, err := spantree.NewDFSTree(g, 0)
			if err != nil {
				return nil, err
			}
			return wrap(core.NewSTNO(g, sub, 0))
		},
	}
}

// path returns the path graph 0–1–…–(n−1).
func path(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.MustAddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	return b.Build()
}

// TestFailoverStartsLegitimate: the wrapper's constructor initialises
// detection and election at their fixpoint, so on a connected graph
// the effective root set is exactly the fixed root and detection
// agrees with component truth from step zero; wrapping must also
// preserve the stack's own starting legitimacy verdict (token and
// dftno construct legitimate; the tree stacks start zeroed and
// converge).
func TestFailoverStartsLegitimate(t *testing.T) {
	t.Parallel()
	startsLegit := map[string]bool{"token": true, "dftno": true}
	for sname, build := range stacks() {
		sname, build := sname, build
		t.Run(sname, func(t *testing.T) {
			t.Parallel()
			p, err := build(graph.Lollipop(4, 3))
			if err != nil {
				t.Fatal(err)
			}
			if roots := p.ActingRoots(); len(roots) != 1 || roots[0] != 0 {
				t.Fatalf("acting roots = %v, want [0]", roots)
			}
			if !p.DetectionAccurate() {
				t.Fatal("fresh detection disagrees with component truth")
			}
			if p.ActingLegitimate() != startsLegit[sname] {
				t.Fatalf("fresh ActingLegitimate = %v, want %v", p.ActingLegitimate(), startsLegit[sname])
			}
			sys := program.NewSystem(p, daemon.NewCentral(3))
			res, err := sys.RunUntilLegitimate(40000)
			if err != nil || !res.Converged {
				t.Fatalf("initial convergence: %+v %v", res, err)
			}
			if roots := p.ActingRoots(); len(roots) != 1 || roots[0] != 0 {
				t.Fatalf("converged acting roots = %v, want [0]", roots)
			}
		})
	}
}

// TestFailoverWitnessAudit: the wrapper's incremental witness must
// agree with its O(n) predicate from random configurations, after
// every step, for every stack flavour.
func TestFailoverWitnessAudit(t *testing.T) {
	t.Parallel()
	configs, steps := 6, 400
	if testing.Short() {
		configs, steps = 2, 120
	}
	graphs := map[string]func() *graph.Graph{
		"ring6":    func() *graph.Graph { return graph.Ring(6) },
		"grid3x3":  func() *graph.Graph { return graph.Grid(3, 3) },
		"lollipop": func() *graph.Graph { return graph.Lollipop(4, 3) },
	}
	for gname, mk := range graphs {
		for sname, build := range stacks() {
			mk, build := mk, build
			t.Run(gname+"/"+sname, func(t *testing.T) {
				t.Parallel()
				p, err := build(mk())
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(7))
				if err := program.CheckWitness(p, configs, steps, func() program.Daemon { return daemon.NewCentral(19) }, rng); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestFailoverLocalityAudit: the wrapper's Influence declaration must
// cover every guard its moves can change — including the wrapped
// stack's guards reacting to IsRoot flips.
func TestFailoverLocalityAudit(t *testing.T) {
	t.Parallel()
	configs := 40
	if testing.Short() {
		configs = 10
	}
	for sname, build := range stacks() {
		build := build
		t.Run(sname, func(t *testing.T) {
			t.Parallel()
			p, err := build(graph.Lollipop(4, 3))
			if err != nil {
				t.Fatal(err)
			}
			if err := program.CheckLocality(p, configs, rand.New(rand.NewSource(11))); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFailoverContractAudit probes the wrapper's own actions through
// the Execute re-evaluation contract.
func TestFailoverContractAudit(t *testing.T) {
	t.Parallel()
	p, err := stacks()["token"](graph.Grid(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	probes := []program.ActionID{failover.ActDetect, failover.ActElect, token.ActStart}
	if err := program.CheckContractActions(p, probes, 30, rand.New(rand.NewSource(13))); err != nil {
		t.Fatal(err)
	}
}

// runDelta mutates the graph and forwards the delta to the system.
func runDelta(t *testing.T, sys *program.System, d graph.Delta, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	sys.ApplyDelta(d)
}

// TestDetectionConvergesToTruth is the tentpole's differential audit:
// after every split and heal in a schedule, the Orphaned verdicts must
// converge to agreement with graph.ComponentOf truth within the step
// budget, and — detection being a stable predicate of a settled
// configuration — must not flap afterwards.
func TestDetectionConvergesToTruth(t *testing.T) {
	t.Parallel()
	for sname, build := range stacks() {
		build := build
		t.Run(sname, func(t *testing.T) {
			t.Parallel()
			g := graph.Lollipop(5, 4) // clique 0..4, tail 5-6-7-8
			p, err := build(g)
			if err != nil {
				t.Fatal(err)
			}
			sys := program.NewSystem(p, daemon.NewCentral(23))
			budget := int64(40000)
			settle := func(ctx string) {
				t.Helper()
				res, err := sys.RunUntilLegitimate(budget)
				if err != nil {
					t.Fatalf("%s: %v", ctx, err)
				}
				if !res.Converged {
					t.Fatalf("%s: not legitimate within %d steps", ctx, budget)
				}
				if !p.DetectionAccurate() {
					t.Fatalf("%s: settled but Orphaned disagrees with component truth", ctx)
				}
				ok, err := sys.HoldsFor(p.DetectionAccurate, 50)
				if err != nil || !ok {
					t.Fatalf("%s: detection flapped after settling (ok=%v err=%v)", ctx, ok, err)
				}
			}
			settle("initial")

			// Split: cut the tail bridge, orphaning 6-7-8.
			d, err := g.RemoveEdge(5, 6)
			runDelta(t, sys, d, err)
			settle("split 5-6")

			// Second split inside the orphan: 8 alone.
			d, err = g.RemoveEdge(7, 8)
			runDelta(t, sys, d, err)
			settle("split 7-8")

			// Partial heal: 8 rejoins the orphan component, which still
			// has no fixed root.
			d, err = g.AddEdge(7, 8)
			runDelta(t, sys, d, err)
			settle("partial heal 7-8")

			// Root crash: the clique loses its anchor too.
			d, err = g.RemoveNode(0)
			runDelta(t, sys, d, err)
			settle("root crash")

			// Root revive, re-attached to the clique and the tail (the
			// crash severed both: the tail hangs off the root).
			_, d = g.AddNode()
			runDelta(t, sys, d, nil)
			d, err = g.AddEdge(0, 1)
			runDelta(t, sys, d, err)
			d, err = g.AddEdge(0, 5)
			runDelta(t, sys, d, err)
			settle("root revive")

			// Full heal.
			d, err = g.AddEdge(5, 6)
			runDelta(t, sys, d, err)
			settle("full heal")
			if roots := p.ActingRoots(); len(roots) != 1 || roots[0] != 0 {
				t.Fatalf("after full heal acting roots = %v, want [0]", roots)
			}
		})
	}
}

// TestActingRootFailoverAndAbdication: a component that loses the root
// re-anchors at its max-id acting root and converges to local
// legitimacy; on heal the acting root abdicates and the merged
// component re-converges under the fixed root — no stuck acting
// roots, acting-root state washed out.
func TestActingRootFailoverAndAbdication(t *testing.T) {
	t.Parallel()
	for sname, build := range stacks() {
		build := build
		t.Run(sname, func(t *testing.T) {
			t.Parallel()
			g := path(7)
			p, err := build(g)
			if err != nil {
				t.Fatal(err)
			}
			sys := program.NewSystem(p, daemon.NewCentral(29))
			if _, err := sys.RunUntilLegitimate(40000); err != nil {
				t.Fatal(err)
			}

			d, err := g.RemoveEdge(3, 4)
			runDelta(t, sys, d, err)
			res, err := sys.RunUntilLegitimate(40000)
			if err != nil || !res.Converged {
				t.Fatalf("post-split convergence: %+v %v", res, err)
			}
			roots := p.ActingRoots()
			if len(roots) != 2 || roots[0] != 0 || roots[1] != 6 {
				t.Fatalf("split acting roots = %v, want [0 6] (max id of orphan 4-5-6)", roots)
			}
			for v := graph.NodeID(4); v <= 6; v++ {
				if !p.Orphaned(v) {
					t.Fatalf("node %d not orphaned after split", v)
				}
			}

			d, err = g.AddEdge(3, 4)
			runDelta(t, sys, d, err)
			res, err = sys.RunUntilLegitimate(40000)
			if err != nil || !res.Converged {
				t.Fatalf("post-heal convergence: %+v %v", res, err)
			}
			if roots := p.ActingRoots(); len(roots) != 1 || roots[0] != 0 {
				t.Fatalf("heal left acting roots %v, want [0]", roots)
			}
			for v := 0; v < g.N(); v++ {
				if p.Orphaned(graph.NodeID(v)) {
					t.Fatalf("node %d still orphaned after heal", v)
				}
			}
			if p.LeaderFlaps == 0 {
				t.Fatal("no leader flap recorded for the failover")
			}
		})
	}
}

// lockstepUntil drives both systems in lockstep until goal() holds,
// asserting identical per-step move counts and identical snapshots
// throughout.
func lockstepUntil(t *testing.T, inc, full *program.System, pInc, pFull program.Snapshotter, max int, goal func() bool) int {
	t.Helper()
	for i := 0; i < max; i++ {
		if goal() {
			return i
		}
		nInc, errInc := inc.Step()
		nFull, errFull := full.Step()
		if errInc != nil || errFull != nil || nInc != nFull {
			t.Fatalf("lockstep step %d: inc=(%d,%v) full=(%d,%v)", i, nInc, errInc, nFull, errFull)
		}
		if string(pInc.Snapshot()) != string(pFull.Snapshot()) {
			t.Fatalf("lockstep step %d: configurations diverge", i)
		}
		if nInc == 0 && !goal() {
			t.Fatalf("lockstep step %d: both systems quiesced before the goal", i)
		}
	}
	t.Fatalf("goal not reached within %d lockstep steps", max)
	return 0
}

// lockstepPair builds two failover stacks over one shared graph and
// the matching incremental/full-scan systems.
func lockstepPair(t *testing.T, g *graph.Graph, sname string) (*failover.Protocol, *failover.Protocol, *program.System, *program.System) {
	t.Helper()
	build := stacks()[sname]
	pInc, err := build(g)
	if err != nil {
		t.Fatal(err)
	}
	pFull, err := build(g)
	if err != nil {
		t.Fatal(err)
	}
	inc := program.NewSystem(pInc, daemon.NewCentral(37))
	full := program.NewSystemFullScan(pFull, daemon.NewCentral(37))
	return pInc, pFull, inc, full
}

// TestActingRootMergeLockstep is the satellite's directed race test:
// two orphan components, each settled under its own acting root, merge
// — the incremental scheduler must track the full-scan oracle
// bit-identically through the double-acting-root election and the
// final re-merge with the fixed root's component.
func TestActingRootMergeLockstep(t *testing.T) {
	t.Parallel()
	for _, sname := range []string{"token", "dftno"} {
		sname := sname
		t.Run(sname, func(t *testing.T) {
			t.Parallel()
			g := path(9)
			pInc, pFull, inc, full := lockstepPair(t, g, sname)
			goal := func() bool { return pInc.Legitimate() && pFull.Legitimate() }
			lockstepUntil(t, inc, full, pInc, pFull, 60000, goal)

			cut := func(u, v graph.NodeID) {
				d, err := g.RemoveEdge(u, v)
				if err != nil {
					t.Fatal(err)
				}
				inc.ApplyDelta(d)
				full.ApplyDelta(d)
			}
			heal := func(u, v graph.NodeID) {
				d, err := g.AddEdge(u, v)
				if err != nil {
					t.Fatal(err)
				}
				inc.ApplyDelta(d)
				full.ApplyDelta(d)
			}

			// Three components: {0,1,2} rooted, {3,4,5} and {6,7,8}
			// orphaned, electing acting roots 5 and 8.
			cut(2, 3)
			cut(5, 6)
			lockstepUntil(t, inc, full, pInc, pFull, 60000, goal)
			if roots := pInc.ActingRoots(); len(roots) != 3 || roots[0] != 0 || roots[1] != 5 || roots[2] != 8 {
				t.Fatalf("split acting roots = %v, want [0 5 8]", roots)
			}

			// Merge the two acting-root components: 8 must win, 5 must
			// abdicate.
			heal(5, 6)
			lockstepUntil(t, inc, full, pInc, pFull, 60000, goal)
			if roots := pInc.ActingRoots(); len(roots) != 2 || roots[0] != 0 || roots[1] != 8 {
				t.Fatalf("merged acting roots = %v, want [0 8]", roots)
			}

			// Re-merge with the fixed root's component.
			heal(2, 3)
			lockstepUntil(t, inc, full, pInc, pFull, 60000, goal)
			if roots := pInc.ActingRoots(); len(roots) != 1 || roots[0] != 0 {
				t.Fatalf("final acting roots = %v, want [0]", roots)
			}
			if inc.Moves() != full.Moves() {
				t.Fatalf("move counters diverge: inc=%d full=%d", inc.Moves(), full.Moves())
			}
		})
	}
}

// TestHealMidElectionLockstep is the satellite's second race: the heal
// delta lands while the orphan component's election is still
// converging. The incremental scheduler must stay bit-identical
// through the interrupted election and the abdication that follows.
func TestHealMidElectionLockstep(t *testing.T) {
	t.Parallel()
	for _, sname := range []string{"token", "stno"} {
		sname := sname
		for midSteps := 1; midSteps <= 9; midSteps += 4 {
			midSteps := midSteps
			t.Run(fmt.Sprintf("%s/mid%d", sname, midSteps), func(t *testing.T) {
				t.Parallel()
				g := path(8)
				pInc, pFull, inc, full := lockstepPair(t, g, sname)
				goal := func() bool { return pInc.Legitimate() && pFull.Legitimate() }
				lockstepUntil(t, inc, full, pInc, pFull, 60000, goal)

				d, err := g.RemoveEdge(3, 4)
				if err != nil {
					t.Fatal(err)
				}
				inc.ApplyDelta(d)
				full.ApplyDelta(d)

				// A few lockstep steps: detection/election mid-flight.
				for i := 0; i < midSteps; i++ {
					nInc, errInc := inc.Step()
					nFull, errFull := full.Step()
					if errInc != nil || errFull != nil || nInc != nFull {
						t.Fatalf("mid step %d: inc=(%d,%v) full=(%d,%v)", i, nInc, errInc, nFull, errFull)
					}
					if string(pInc.Snapshot()) != string(pFull.Snapshot()) {
						t.Fatalf("mid step %d: configurations diverge", i)
					}
				}

				d, err = g.AddEdge(3, 4)
				if err != nil {
					t.Fatal(err)
				}
				inc.ApplyDelta(d)
				full.ApplyDelta(d)
				lockstepUntil(t, inc, full, pInc, pFull, 60000, goal)
				if roots := pInc.ActingRoots(); len(roots) != 1 || roots[0] != 0 {
					t.Fatalf("acting roots = %v, want [0]", roots)
				}
			})
		}
	}
}

// TestFailoverWitnessSettleEquivalence drives the same churn schedule
// on a witness-deciding incremental system and a scan-deciding
// full-scan system: both must settle after identical step counts with
// identical configurations at every settle point — the "witness ≡
// scan at every settle point" invariant the soak engine checks.
func TestFailoverWitnessSettleEquivalence(t *testing.T) {
	t.Parallel()
	g := graph.Lollipop(5, 4)
	pInc, pFull, inc, full := lockstepPair(t, g, "token")
	schedule := []func() (graph.Delta, error){
		func() (graph.Delta, error) { return g.RemoveEdge(5, 6) },
		func() (graph.Delta, error) { return g.RemoveEdge(6, 7) },
		func() (graph.Delta, error) { return g.AddEdge(6, 7) },
		func() (graph.Delta, error) { return g.AddEdge(5, 6) },
	}
	settle := func(ctx string) {
		t.Helper()
		resInc, err := inc.RunUntilLegitimate(60000)
		if err != nil {
			t.Fatalf("%s: %v", ctx, err)
		}
		resFull, err := full.RunUntilLegitimate(60000)
		if err != nil {
			t.Fatalf("%s: %v", ctx, err)
		}
		if !resInc.Converged || !resFull.Converged {
			t.Fatalf("%s: converged inc=%v full=%v", ctx, resInc.Converged, resFull.Converged)
		}
		if resInc.Steps != resFull.Steps || resInc.Moves != resFull.Moves {
			t.Fatalf("%s: witness-decided settle (s=%d m=%d) ≠ scan-decided settle (s=%d m=%d)",
				ctx, resInc.Steps, resInc.Moves, resFull.Steps, resFull.Moves)
		}
		if string(pInc.Snapshot()) != string(pFull.Snapshot()) {
			t.Fatalf("%s: settle configurations diverge", ctx)
		}
		if pInc.WitnessLegitimate() != pInc.Legitimate() {
			t.Fatalf("%s: witness verdict disagrees with scan at settle", ctx)
		}
	}
	settle("initial")
	for i, mut := range schedule {
		d, err := mut()
		if err != nil {
			t.Fatal(err)
		}
		inc.ApplyDelta(d)
		full.ApplyDelta(d)
		settle(fmt.Sprintf("delta %d", i))
	}
}

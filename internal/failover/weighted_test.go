package failover_test

import (
	"math/rand"
	"testing"

	"netorient/internal/daemon"
	"netorient/internal/graph"
	"netorient/internal/program"
)

// hubGraph is the weighted-election fixture: root side 0–1–2, bridge
// 2–3, and an orphan side where node 4 is a degree-4 hub while the
// maximum id 8 dangles off a leaf. Cutting the bridge forces the
// election to choose between connectivity (4) and bare id (8).
//
//	0–1–2 — 3–4(–5)(–6)–7–8
func hubGraph() *graph.Graph {
	b := graph.NewBuilder(9)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(1, 2)
	b.MustAddEdge(2, 3)
	b.MustAddEdge(3, 4)
	b.MustAddEdge(4, 5)
	b.MustAddEdge(4, 6)
	b.MustAddEdge(4, 7)
	b.MustAddEdge(7, 8)
	return b.Build()
}

// TestWeightElectionPreservesLegitimacy: enabling the weighted key on
// a connected, already legitimate stack re-stabilizes the wrapper
// synchronously — the fixed root stays the sole acting root and the
// composed verdict is unchanged.
func TestWeightElectionPreservesLegitimacy(t *testing.T) {
	t.Parallel()
	p, err := stacks()["token"](graph.Lollipop(4, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !p.ActingLegitimate() {
		t.Fatal("token stack should construct legitimate")
	}
	p.WeightElection(map[graph.NodeID]int64{3: 9})
	if !p.Weighted() || p.Priority(3) != 9 {
		t.Fatal("WeightElection did not record the mode or the pin")
	}
	if !p.ActingLegitimate() {
		t.Fatal("weighted re-stabilization lost legitimacy")
	}
	if roots := p.ActingRoots(); len(roots) != 1 || roots[0] != 0 {
		t.Fatalf("acting roots = %v, want [0]", roots)
	}
}

// TestWeightedElectionHighDegreeWins: with no operator pins the
// weighted key is (0, degree, id), so the orphan component elects its
// hub — node 4, degree 4 — over the bare-max id 8; the bare election
// on the same split elects 8 (TestActingRootFailoverAndAbdication
// shape). On heal the hub abdicates to the fixed root.
func TestWeightedElectionHighDegreeWins(t *testing.T) {
	t.Parallel()
	for _, sname := range []string{"token", "dftno"} {
		sname := sname
		t.Run(sname, func(t *testing.T) {
			t.Parallel()
			g := hubGraph()
			p, err := stacks()[sname](g)
			if err != nil {
				t.Fatal(err)
			}
			p.WeightElection(nil)
			sys := program.NewSystem(p, daemon.NewCentral(29))
			if _, err := sys.RunUntilLegitimate(60000); err != nil {
				t.Fatal(err)
			}

			d, err := g.RemoveEdge(2, 3)
			runDelta(t, sys, d, err)
			res, err := sys.RunUntilLegitimate(60000)
			if err != nil || !res.Converged {
				t.Fatalf("post-split convergence: %+v %v", res, err)
			}
			if roots := p.ActingRoots(); len(roots) != 2 || roots[0] != 0 || roots[1] != 4 {
				t.Fatalf("split acting roots = %v, want [0 4] (hub degree beats max id)", roots)
			}

			d, err = g.AddEdge(2, 3)
			runDelta(t, sys, d, err)
			res, err = sys.RunUntilLegitimate(60000)
			if err != nil || !res.Converged {
				t.Fatalf("post-heal convergence: %+v %v", res, err)
			}
			if roots := p.ActingRoots(); len(roots) != 1 || roots[0] != 0 {
				t.Fatalf("heal left acting roots %v, want [0]", roots)
			}
		})
	}
}

// TestWeightedElectionPinnedWins: an operator pin outranks both degree
// and id — leaf node 5 (degree 1, mid id) carries priority 10 and must
// win the orphan election over the hub and the max id.
func TestWeightedElectionPinnedWins(t *testing.T) {
	t.Parallel()
	g := hubGraph()
	p, err := stacks()["token"](g)
	if err != nil {
		t.Fatal(err)
	}
	p.WeightElection(map[graph.NodeID]int64{5: 10})
	sys := program.NewSystem(p, daemon.NewCentral(31))
	if _, err := sys.RunUntilLegitimate(60000); err != nil {
		t.Fatal(err)
	}

	d, err := g.RemoveEdge(2, 3)
	runDelta(t, sys, d, err)
	res, err := sys.RunUntilLegitimate(60000)
	if err != nil || !res.Converged {
		t.Fatalf("post-split convergence: %+v %v", res, err)
	}
	if roots := p.ActingRoots(); len(roots) != 2 || roots[0] != 0 || roots[1] != 5 {
		t.Fatalf("split acting roots = %v, want [0 5] (pin beats degree and id)", roots)
	}
}

// TestWeightedLockstep: from an identically corrupted start, the
// incremental scheduler must track the full-scan oracle bit-identically
// through a weighted election with a live pin — convergence, split,
// pinned-node promotion, heal, abdication.
func TestWeightedLockstep(t *testing.T) {
	t.Parallel()
	for _, sname := range []string{"token", "stno"} {
		sname := sname
		t.Run(sname, func(t *testing.T) {
			t.Parallel()
			g := hubGraph()
			build := stacks()[sname]
			pInc, err := build(g)
			if err != nil {
				t.Fatal(err)
			}
			pFull, err := build(g)
			if err != nil {
				t.Fatal(err)
			}
			pins := map[graph.NodeID]int64{6: 3}
			pInc.WeightElection(pins)
			pFull.WeightElection(pins)
			pInc.Randomize(rand.New(rand.NewSource(11)))
			pFull.Randomize(rand.New(rand.NewSource(11)))
			if string(pInc.Snapshot()) != string(pFull.Snapshot()) {
				t.Fatal("identical corruption seeds produced different configurations")
			}
			inc := program.NewSystem(pInc, daemon.NewCentral(37))
			full := program.NewSystemFullScan(pFull, daemon.NewCentral(37))
			goal := func() bool { return pInc.Legitimate() && pFull.Legitimate() }
			lockstepUntil(t, inc, full, pInc, pFull, 60000, goal)

			d, err := g.RemoveEdge(2, 3)
			if err != nil {
				t.Fatal(err)
			}
			inc.ApplyDelta(d)
			full.ApplyDelta(d)
			lockstepUntil(t, inc, full, pInc, pFull, 60000, goal)
			if roots := pInc.ActingRoots(); len(roots) != 2 || roots[0] != 0 || roots[1] != 6 {
				t.Fatalf("split acting roots = %v, want [0 6] (pinned node)", roots)
			}

			d, err = g.AddEdge(2, 3)
			if err != nil {
				t.Fatal(err)
			}
			inc.ApplyDelta(d)
			full.ApplyDelta(d)
			lockstepUntil(t, inc, full, pInc, pFull, 60000, goal)
			if roots := pInc.ActingRoots(); len(roots) != 1 || roots[0] != 0 {
				t.Fatalf("final acting roots = %v, want [0]", roots)
			}
			if inc.Moves() != full.Moves() {
				t.Fatalf("move counters diverge: inc=%d full=%d", inc.Moves(), full.Moves())
			}
		})
	}
}

// TestWeightedWitnessAudit: the wrapper's incremental witness must
// still agree with its O(n) predicate when the weighted clause (four
// compared fields instead of two) is active.
func TestWeightedWitnessAudit(t *testing.T) {
	t.Parallel()
	configs, steps := 4, 300
	if testing.Short() {
		configs, steps = 2, 100
	}
	p, err := stacks()["token"](hubGraph())
	if err != nil {
		t.Fatal(err)
	}
	p.WeightElection(map[graph.NodeID]int64{2: 5})
	rng := rand.New(rand.NewSource(7))
	if err := program.CheckWitness(p, configs, steps, func() program.Daemon { return daemon.NewCentral(19) }, rng); err != nil {
		t.Fatal(err)
	}
}

// Package msgnet deploys a guarded-command protocol onto real
// concurrency: one goroutine per processor, wake-up channels along the
// communication links, and a global mutex that realises the model's
// composite atomicity (guard evaluation + statement as one atomic
// step).
//
// The mapping is the natural one for the paper's model: the Go
// scheduler plays the weakly-fair daemon (every runnable goroutine is
// eventually scheduled), each node goroutine executes enabled actions
// of its own processor only, and a state change notifies exactly the
// neighbours — the processors whose guards can observe it — over
// buffered channels, so execution is event-driven rather than
// busy-polled.
package msgnet

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"netorient/internal/graph"
	"netorient/internal/program"
)

// Runtime executes one protocol across goroutines. Create with New,
// drive with Run; a Runtime is single-use.
type Runtime struct {
	proto program.Protocol
	seed  int64

	mu    sync.Mutex // guards proto state: composite atomicity
	moves atomic.Int64
}

// ErrTimeout is returned when the predicate does not hold within the
// deadline.
var ErrTimeout = errors.New("msgnet: predicate not satisfied before deadline")

// New returns a Runtime for p. Per-node action choices draw from
// seed, so runs are reproducible up to goroutine scheduling.
func New(p program.Protocol, seed int64) *Runtime {
	return &Runtime{proto: p, seed: seed}
}

// Moves returns the number of actions executed so far.
func (r *Runtime) Moves() int64 { return r.moves.Load() }

// Run spawns one goroutine per processor and lets the system execute
// until pred holds (checked atomically with the protocol state) or
// the timeout elapses. All goroutines have exited when Run returns.
func (r *Runtime) Run(pred func() bool, timeout time.Duration) error {
	return r.RunContext(context.Background(), pred, timeout)
}

// RunContext is Run with caller-driven cancellation: it additionally
// returns ctx.Err() as soon as the context is done, with every
// processor goroutine already joined.
func (r *Runtime) RunContext(ctx context.Context, pred func() bool, timeout time.Duration) error {
	g := r.proto.Graph()
	n := g.N()
	stop := make(chan struct{})
	wake := make([]chan struct{}, n)
	for v := range wake {
		wake[v] = make(chan struct{}, 1)
		wake[v] <- struct{}{} // every processor starts awake
	}
	notify := func(v graph.NodeID) {
		select {
		case wake[v] <- struct{}{}:
		default: // already pending
		}
	}

	var wg sync.WaitGroup
	for v := 0; v < n; v++ {
		wg.Add(1)
		go func(v graph.NodeID, rng *rand.Rand) {
			defer wg.Done()
			var buf []program.ActionID
			for {
				select {
				case <-stop:
					return
				case <-wake[v]:
				}
				for {
					select {
					case <-stop:
						return
					default:
					}
					r.mu.Lock()
					buf = r.proto.Enabled(v, buf[:0])
					if len(buf) == 0 {
						r.mu.Unlock()
						break
					}
					a := buf[rng.Intn(len(buf))]
					fired := r.proto.Execute(v, a)
					r.mu.Unlock()
					if fired {
						r.moves.Add(1)
						// A write to v's variables can enable guards
						// at v's neighbours (and at v itself).
						for _, q := range g.Neighbors(v) {
							notify(q)
						}
						notify(v)
					}
				}
			}
		}(graph.NodeID(v), rand.New(rand.NewSource(r.seed+int64(v))))
	}

	defer func() {
		close(stop)
		wg.Wait()
	}()

	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	tick := time.NewTicker(200 * time.Microsecond)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-deadline.C:
			return ErrTimeout
		case <-tick.C:
			r.mu.Lock()
			ok := pred()
			r.mu.Unlock()
			if ok {
				return nil
			}
		}
	}
}

// RunUntilLegitimate is Run with the protocol's own legitimacy
// predicate; the protocol must implement program.Legitimacy.
func (r *Runtime) RunUntilLegitimate(timeout time.Duration) error {
	leg, ok := r.proto.(program.Legitimacy)
	if !ok {
		return errors.New("msgnet: protocol has no legitimacy predicate")
	}
	return r.Run(leg.Legitimate, timeout)
}

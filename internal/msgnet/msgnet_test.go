package msgnet

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"netorient/internal/core"
	"netorient/internal/graph"
	"netorient/internal/spantree"
	"netorient/internal/token"
)

func TestBFSTreeConvergesOnGoroutines(t *testing.T) {
	g := graph.Grid(4, 4)
	tr, err := spantree.NewBFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr.Randomize(rand.New(rand.NewSource(1)))
	rt := New(tr, 1)
	if err := rt.RunUntilLegitimate(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !tr.Legitimate() {
		t.Fatal("not legitimate after run")
	}
	if rt.Moves() == 0 {
		t.Fatal("no moves executed")
	}
}

func TestSTNOFullStackOnGoroutines(t *testing.T) {
	g := graph.Grid(3, 4)
	sub, err := spantree.NewBFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.NewSTNO(g, sub, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Randomize(rand.New(rand.NewSource(2)))
	rt := New(s, 2)
	if err := rt.RunUntilLegitimate(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := s.Labeling().Validate(g); err != nil {
		t.Fatalf("orientation invalid after goroutine run: %v", err)
	}
}

func TestDFTNOFullStackOnGoroutines(t *testing.T) {
	g := graph.Ring(8)
	sub, err := token.NewCirculator(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.NewDFTNO(g, sub, 0)
	if err != nil {
		t.Fatal(err)
	}
	d.Randomize(rand.New(rand.NewSource(3)))
	rt := New(d, 3)
	if err := rt.RunUntilLegitimate(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := d.Labeling().Validate(g); err != nil {
		t.Fatalf("orientation invalid after goroutine run: %v", err)
	}
}

func TestRunTimesOutOnUnsatisfiablePredicate(t *testing.T) {
	g := graph.Ring(4)
	tr, err := spantree.NewBFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	rt := New(tr, 4)
	err = rt.Run(func() bool { return false }, 50*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("got %v, want ErrTimeout", err)
	}
}

func TestRunUntilLegitimateRequiresPredicate(t *testing.T) {
	g := graph.Ring(3)
	o, err := spantree.NewBFSOracle(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Strip the Legitimacy interface by wrapping.
	rt := New(bareProtocol{o}, 5)
	if err := rt.RunUntilLegitimate(time.Second); err == nil {
		t.Fatal("expected error for protocol without legitimacy")
	}
}

type bareProtocol struct{ *spantree.Oracle }

func (bareProtocol) Legitimate() {} // wrong signature hides program.Legitimacy

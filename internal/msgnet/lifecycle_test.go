package msgnet

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"
)

import (
	"netorient/internal/graph"
	"netorient/internal/spantree"
)

// TestRunTimeoutMidDelivery: the deadline fires while the system is
// still actively executing moves (adversarial start on a graph too big
// to converge in the window); Run must return ErrTimeout with some
// moves already fired and every goroutine joined.
func TestRunTimeoutMidDelivery(t *testing.T) {
	g := graph.Grid(12, 12)
	tr, err := spantree.NewBFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr.Randomize(rand.New(rand.NewSource(17)))
	rt := New(tr, 17)
	err = rt.Run(func() bool { return false }, 20*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("got %v, want ErrTimeout", err)
	}
	if rt.Moves() == 0 {
		t.Fatal("timed out before any move: deadline did not land mid-delivery")
	}
}

// TestCancelBeforeFirstMessage: a pre-cancelled context aborts
// RunContext before the daemon loop observes anything else.
func TestCancelBeforeFirstMessage(t *testing.T) {
	g := graph.Ring(6)
	tr, err := spantree.NewBFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	rt := New(tr, 19)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = rt.RunContext(ctx, func() bool { return false }, 10*time.Second)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestLifecycleExitPathsLeaveNoGoroutines covers the cancel and
// mid-delivery-timeout exits (the success and plain-timeout paths are
// covered by TestRunLeavesNoGoroutines).
func TestLifecycleExitPathsLeaveNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	g := graph.Grid(8, 8)
	tr, err := spantree.NewBFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr.Randomize(rand.New(rand.NewSource(23)))
	_ = New(tr, 23).Run(func() bool { return false }, 10*time.Millisecond)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = New(tr, 29).RunContext(ctx, func() bool { return false }, 10*time.Second)

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

package msgnet

import (
	"runtime"
	"testing"
	"time"

	"netorient/internal/graph"
	"netorient/internal/spantree"
)

// TestRunLeavesNoGoroutines verifies the lifecycle contract: every
// processor goroutine has exited when Run returns, on both the
// success and the timeout path.
func TestRunLeavesNoGoroutines(t *testing.T) {
	g := graph.Grid(4, 4)
	before := runtime.NumGoroutine()

	tr, err := spantree.NewBFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	rt := New(tr, 1)
	if err := rt.RunUntilLegitimate(20 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Timeout path.
	rt2 := New(tr, 2)
	_ = rt2.Run(func() bool { return false }, 20*time.Millisecond)

	// Allow the runtime a moment to reap.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

package check

import (
	"errors"
	"testing"

	"netorient/internal/graph"
	"netorient/internal/program"
)

// starveProto is a two-node protocol crafted to separate the three
// fairness criteria. Node 0 toggles a bit forever. Node 1 has two
// actions: a "busy" toggle enabled while node 0's bit is 1, and a
// "fix" move (enabled while node 0's bit is 0 and the fault flag is
// set) that clears the fault flag — the only way to reach legitimacy.
//
// Node 1 is enabled in every configuration and moves inside the
// faulty cycle (via busy), so a weakly fair schedule can starve fix
// forever; a strongly fair one cannot, because fix is enabled
// infinitely often and every execution of it leaves the cycle. This
// is the abstract shape of DFTNO's edge-label starvation.
type starveProto struct {
	b0, b1 byte
	fault  byte
}

const (
	actToggle0 program.ActionID = 0
	actBusy1   program.ActionID = 1
	actFix1    program.ActionID = 2
)

var starveGraph = graph.Path(2)

func (p *starveProto) Name() string        { return "starve" }
func (p *starveProto) Graph() *graph.Graph { return starveGraph }
func (p *starveProto) Legitimate() bool    { return p.fault == 0 }

func (p *starveProto) Enabled(v graph.NodeID, buf []program.ActionID) []program.ActionID {
	switch v {
	case 0:
		buf = append(buf, actToggle0)
	case 1:
		if p.b0 == 1 {
			buf = append(buf, actBusy1)
		} else if p.fault == 1 {
			buf = append(buf, actFix1)
		}
	}
	return buf
}

func (p *starveProto) Execute(v graph.NodeID, a program.ActionID) bool {
	switch {
	case v == 0 && a == actToggle0:
		p.b0 ^= 1
		return true
	case v == 1 && a == actBusy1 && p.b0 == 1:
		p.b1 ^= 1
		return true
	case v == 1 && a == actFix1 && p.b0 == 0 && p.fault == 1:
		p.fault = 0
		return true
	}
	return false
}

func (p *starveProto) Snapshot() []byte { return []byte{p.b0, p.b1, p.fault} }

func (p *starveProto) Restore(data []byte) error {
	if len(data) != 3 {
		return errors.New("bad snapshot")
	}
	p.b0, p.b1, p.fault = data[0], data[1], data[2]
	return nil
}

func allStarveSeeds() [][]byte {
	var out [][]byte
	for _, b0 := range []byte{0, 1} {
		for _, b1 := range []byte{0, 1} {
			for _, f := range []byte{0, 1} {
				out = append(out, []byte{b0, b1, f})
			}
		}
	}
	return out
}

func TestFairnessCriteriaSeparation(t *testing.T) {
	cases := []struct {
		fairness Fairness
		wantBad  bool
	}{
		{Unfair, true},      // the faulty cycle exists
		{WeakFair, true},    // node 1 moves inside it via busy: weakly fair starvation
		{StrongFair, false}, // fix is enabled i.o. and always leaves: fair runs escape
	}
	for _, c := range cases {
		p := &starveProto{}
		_, err := Verify(p, Options{Seeds: allStarveSeeds(), Fairness: c.fairness})
		var ce *ConvergenceError
		gotBad := errors.As(err, &ce)
		if gotBad != c.wantBad {
			t.Errorf("fairness=%v: violation=%v (err=%v), want violation=%v", c.fairness, gotBad, err, c.wantBad)
		}
		if err != nil && !gotBad {
			t.Errorf("fairness=%v: unexpected error %v", c.fairness, err)
		}
	}
}

// TestWeakFairExcludesContinuouslyStarvedProcessor: when the starved
// processor has no internal move at all (remove the busy action), the
// weakly fair criterion already excludes the cycle.
type starveNoBusy struct{ starveProto }

func (p *starveNoBusy) Enabled(v graph.NodeID, buf []program.ActionID) []program.ActionID {
	if v == 0 {
		return append(buf, actToggle0)
	}
	if p.fault == 1 {
		return append(buf, actFix1) // enabled regardless of b0
	}
	return buf
}

func (p *starveNoBusy) Execute(v graph.NodeID, a program.ActionID) bool {
	switch {
	case v == 0 && a == actToggle0:
		p.b0 ^= 1
		return true
	case v == 1 && a == actFix1 && p.fault == 1:
		p.fault = 0
		return true
	}
	return false
}

func TestWeakFairExcludesPureStarvation(t *testing.T) {
	p := &starveNoBusy{}
	// Unfair: bad (spin node 0 forever).
	if _, err := Verify(p, Options{Seeds: allStarveSeeds(), Fairness: Unfair}); err == nil {
		t.Error("unfair criterion should flag the spin cycle")
	}
	// Weak fairness: node 1 is continuously enabled and never moves
	// inside the cycle, so the cycle is unfair — accepted.
	if _, err := Verify(p, Options{Seeds: allStarveSeeds(), Fairness: WeakFair}); err != nil {
		t.Errorf("weak fairness should accept: %v", err)
	}
	if _, err := Verify(p, Options{Seeds: allStarveSeeds(), Fairness: StrongFair}); err != nil {
		t.Errorf("strong fairness should accept: %v", err)
	}
}

package check

import (
	"math/rand"
	"testing"

	"netorient/internal/graph"
	"netorient/internal/token"
)

// BenchmarkVerifyTokenPath3 measures the exhaustive verification of
// the token layer on a 3-path from 30 random seeds.
func BenchmarkVerifyTokenPath3(b *testing.B) {
	g := graph.Path(3)
	c, err := token.NewCirculator(g, 0)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	seeds, err := RandomSeeds(c, 30, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := Verify(c, Options{Seeds: seeds, MaxStates: 2_000_000})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.States), "states")
	}
}

package check

import (
	"errors"
	"math/rand"
	"testing"

	"netorient/internal/graph"
	"netorient/internal/program"
)

// bitProto is a tiny configurable protocol over per-node bits used to
// exercise the checker. Behaviour is selected by mode.
type bitProto struct {
	g    *graph.Graph
	bits []byte
	mode string // "converge", "deadlock", "livelock", "escape"
}

func newBitProto(g *graph.Graph, mode string) *bitProto {
	return &bitProto{g: g, bits: make([]byte, g.N()), mode: mode}
}

func (p *bitProto) Name() string        { return "bits-" + p.mode }
func (p *bitProto) Graph() *graph.Graph { return p.g }

// Legitimate: all bits zero.
func (p *bitProto) Legitimate() bool {
	for _, b := range p.bits {
		if b != 0 {
			return false
		}
	}
	return true
}

func (p *bitProto) Enabled(v graph.NodeID, buf []program.ActionID) []program.ActionID {
	switch p.mode {
	case "converge":
		// Clear your bit whenever it is set: silent, self-stabilizing.
		if p.bits[v] != 0 {
			buf = append(buf, 0)
		}
	case "deadlock":
		// Bits value 2 are stuck forever: terminal illegitimate states.
		if p.bits[v] == 1 {
			buf = append(buf, 0)
		}
	case "livelock":
		// A set bit hops to the next node instead of clearing.
		if p.bits[v] != 0 {
			buf = append(buf, 0)
		}
	case "escape":
		// Legitimate states can break: node 0 may set its bit at will.
		if p.bits[v] != 0 {
			buf = append(buf, 0)
		}
		if v == 0 && p.bits[0] == 0 {
			buf = append(buf, 1)
		}
	}
	return buf
}

func (p *bitProto) Execute(v graph.NodeID, a program.ActionID) bool {
	switch p.mode {
	case "converge":
		if a != 0 || p.bits[v] == 0 {
			return false
		}
		p.bits[v] = 0
		return true
	case "deadlock":
		if a != 0 || p.bits[v] != 1 {
			return false
		}
		p.bits[v] = 0
		return true
	case "livelock":
		if a != 0 || p.bits[v] == 0 {
			return false
		}
		p.bits[v] = 0
		p.bits[(int(v)+1)%p.g.N()] = 1
		return true
	case "escape":
		if a == 0 && p.bits[v] != 0 {
			p.bits[v] = 0
			return true
		}
		if a == 1 && v == 0 && p.bits[0] == 0 {
			p.bits[0] = 1
			return true
		}
	}
	return false
}

func (p *bitProto) Snapshot() []byte {
	out := make([]byte, len(p.bits))
	copy(out, p.bits)
	return out
}

func (p *bitProto) Restore(data []byte) error {
	if len(data) != len(p.bits) {
		return errors.New("bad snapshot")
	}
	copy(p.bits, data)
	return nil
}

func (p *bitProto) Randomize(rng *rand.Rand) {
	for i := range p.bits {
		p.bits[i] = byte(rng.Intn(3))
	}
}

func allSeeds(n int, values byte) [][]byte {
	// Enumerate every configuration over {0..values-1}^n.
	var out [][]byte
	total := 1
	for i := 0; i < n; i++ {
		total *= int(values)
	}
	for x := 0; x < total; x++ {
		cfg := make([]byte, n)
		v := x
		for i := 0; i < n; i++ {
			cfg[i] = byte(v % int(values))
			v /= int(values)
		}
		out = append(out, cfg)
	}
	return out
}

func TestVerifyAcceptsSelfStabilizingProtocol(t *testing.T) {
	g := graph.Ring(4)
	p := newBitProto(g, "converge")
	rep, err := Verify(p, Options{Seeds: allSeeds(4, 2)})
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if rep.States != 16 {
		t.Errorf("states %d, want 16", rep.States)
	}
	if rep.LegitStates != 1 {
		t.Errorf("legit states %d, want 1", rep.LegitStates)
	}
	if rep.MaxStepsToLegit != 4 {
		t.Errorf("max distance %d, want 4", rep.MaxStepsToLegit)
	}
}

func TestVerifyDetectsTerminalIllegitimate(t *testing.T) {
	g := graph.Ring(3)
	p := newBitProto(g, "deadlock")
	_, err := Verify(p, Options{Seeds: allSeeds(3, 3)})
	var ce *ConvergenceError
	if !errors.As(err, &ce) || ce.Kind != "terminal" {
		t.Fatalf("got %v, want terminal ConvergenceError", err)
	}
}

func TestVerifyDetectsLivelock(t *testing.T) {
	g := graph.Ring(3)
	p := newBitProto(g, "livelock")
	_, err := Verify(p, Options{Seeds: allSeeds(3, 2)})
	var ce *ConvergenceError
	if !errors.As(err, &ce) || ce.Kind != "cycle" {
		t.Fatalf("got %v, want cycle ConvergenceError", err)
	}
}

func TestVerifyDetectsClosureViolation(t *testing.T) {
	g := graph.Ring(3)
	p := newBitProto(g, "escape")
	_, err := Verify(p, Options{Seeds: allSeeds(3, 2)})
	var ce *ClosureError
	if !errors.As(err, &ce) {
		t.Fatalf("got %v, want ClosureError", err)
	}
}

func TestVerifyStateLimit(t *testing.T) {
	g := graph.Ring(4)
	p := newBitProto(g, "converge")
	_, err := Verify(p, Options{Seeds: allSeeds(4, 2), MaxStates: 3})
	if !errors.Is(err, ErrStateExplosion) {
		t.Fatalf("got %v, want ErrStateExplosion", err)
	}
}

func TestVerifyDefaultSeedIsCurrentConfig(t *testing.T) {
	g := graph.Ring(3)
	p := newBitProto(g, "converge")
	p.bits[1] = 1
	rep, err := Verify(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.States != 2 { // {010, 000}
		t.Errorf("states %d, want 2", rep.States)
	}
}

func TestRandomSeeds(t *testing.T) {
	g := graph.Ring(3)
	p := newBitProto(g, "converge")
	rng := rand.New(rand.NewSource(1))
	seeds, err := RandomSeeds(p, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 11 {
		t.Fatalf("got %d seeds, want 11", len(seeds))
	}
}

// nonRandom lacks Randomize.
type nonRandom struct{ *bitProto }

func (nonRandom) Randomize() {} // different signature on purpose

func TestRandomSeedsRequiresRandomizer(t *testing.T) {
	g := graph.Ring(3)
	p := struct {
		program.Protocol
		program.Legitimacy
		program.Snapshotter
	}{newBitProto(g, "converge"), newBitProto(g, "converge"), newBitProto(g, "converge")}
	if _, err := RandomSeeds(p, 3, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("expected error for protocol without Randomize")
	}
}

// Package check is an explicit-state model checker for
// self-stabilization. Given a protocol whose configurations can be
// snapshotted canonically, it explores the full set of configurations
// reachable from a seed set under the central daemon (every enabled
// move is a branch) and verifies the two halves of Definition 2.1.2:
//
//   - Convergence — every maximal execution from every explored
//     configuration reaches a legitimate configuration: the subgraph
//     induced by illegitimate configurations contains no cycle and no
//     terminal configuration.
//   - Closure — every successor of a legitimate configuration is
//     legitimate.
//
// Exploration is exhaustive over the reachable closure of the seeds;
// combined with seed sets that include randomized and systematically
// corrupted configurations, this machine-checks self-stabilization on
// small networks where pencil-and-paper proofs are easiest to get
// wrong.
//
// The checker deliberately evaluates Legitimacy.Legitimate, not the
// protocol's incremental program.Witness: it teleports between
// configurations via Restore, so a witness would need an O(n) reset
// per state anyway — and checking the slow predicate is the point, as
// the witness's own audit (program.CheckWitness) compares against it.
package check

import (
	"errors"
	"fmt"
	"math/rand"

	"netorient/internal/graph"
	"netorient/internal/program"
)

// Target is the protocol contract the checker needs.
type Target interface {
	program.Protocol
	program.Legitimacy
	program.Snapshotter
}

// Fairness selects the daemon assumption under which convergence is
// judged. Stronger assumptions exclude more adversarial schedules, so
// they accept more protocols.
type Fairness int

const (
	// Unfair: any illegitimate cycle is a violation — the daemon may
	// repeat any schedule forever.
	Unfair Fairness = iota
	// WeakFair: an illegitimate strongly connected component counts
	// only if it admits a weakly fair run — every processor enabled
	// in all of its states also moves inside it. (A processor
	// continuously enabled but never executed makes the run unfair.)
	WeakFair
	// StrongFair: an illegitimate strongly connected component counts
	// only if it admits a strongly fair run — every (processor,
	// action) move enabled anywhere in it also executes inside it.
	// (A move enabled infinitely often whose every execution leaves
	// the component forces fair runs out.)
	StrongFair
)

// Options configures a verification run.
type Options struct {
	// Seeds are initial configurations (snapshots). If empty, the
	// protocol's current configuration is the only seed.
	Seeds [][]byte
	// MaxStates aborts exploration when exceeded (0 = 500 000).
	MaxStates int
	// Fairness selects the convergence criterion (default Unfair,
	// the strictest).
	Fairness Fairness
}

// Report summarises a verification run.
type Report struct {
	// States is the number of distinct configurations explored.
	States int
	// LegitStates is how many of them satisfy the legitimacy predicate.
	LegitStates int
	// Transitions is the number of explored moves.
	Transitions int
	// MaxStepsToLegit is the longest shortest path from any explored
	// configuration to the legitimate set.
	MaxStepsToLegit int
}

// Violation errors.
var (
	// ErrStateExplosion reports that MaxStates was exceeded.
	ErrStateExplosion = errors.New("check: state space exceeds limit")
)

// ConvergenceError reports a configuration from which legitimacy is
// not guaranteed: a terminal illegitimate configuration or an
// illegitimate cycle.
type ConvergenceError struct {
	Kind    string // "terminal" or "cycle"
	Witness []byte // a configuration on the offending path
}

func (e *ConvergenceError) Error() string {
	return fmt.Sprintf("check: convergence violated (%s illegitimate configuration found)", e.Kind)
}

// ClosureError reports a legitimate configuration with an illegitimate
// successor.
type ClosureError struct {
	From []byte
	To   []byte
	Move program.Move
}

func (e *ClosureError) Error() string {
	return fmt.Sprintf("check: closure violated by move (node %d, action %d)", e.Move.Node, e.Move.Action)
}

// Verify explores the reachable configuration space and checks closure
// and convergence. The target's configuration is clobbered; callers
// should restore it afterwards if they need it.
func Verify(t Target, opts Options) (Report, error) {
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = 500000
	}
	seeds := opts.Seeds
	if len(seeds) == 0 {
		seeds = [][]byte{t.Snapshot()}
	}

	g := t.Graph()
	if opts.Fairness != Unfair && g.N() > 64 {
		return Report{}, fmt.Errorf("check: fairness analysis supports at most 64 nodes, graph has %d", g.N())
	}

	type stateInfo struct {
		legit   bool
		enabled uint64 // bitmask of processors with an enabled action
		succ    []int32
		mover   []int32            // processor executing the corresponding succ edge
		act     []program.ActionID // action of the corresponding succ edge
	}
	index := make(map[string]int32)
	var states []stateInfo
	var snaps [][]byte
	var queue []int32
	var ebuf []program.ActionID

	intern := func(snap []byte) (int32, bool, error) {
		key := string(snap)
		if id, ok := index[key]; ok {
			return id, false, nil
		}
		if len(states) >= maxStates {
			return 0, false, fmt.Errorf("%w (%d)", ErrStateExplosion, maxStates)
		}
		id := int32(len(states))
		index[key] = id
		if err := t.Restore(snap); err != nil {
			return 0, false, fmt.Errorf("check: restore: %w", err)
		}
		var mask uint64
		for v := 0; v < g.N(); v++ {
			ebuf = t.Enabled(graph.NodeID(v), ebuf[:0])
			if len(ebuf) > 0 && v < 64 {
				mask |= 1 << uint(v)
			}
		}
		states = append(states, stateInfo{legit: t.Legitimate(), enabled: mask})
		snaps = append(snaps, snap)
		return id, true, nil
	}

	var rep Report
	for _, s := range seeds {
		seed := make([]byte, len(s))
		copy(seed, s)
		id, fresh, err := intern(seed)
		if err != nil {
			return rep, err
		}
		if fresh {
			queue = append(queue, id)
		}
	}

	var buf []program.ActionID
	for len(queue) > 0 {
		id := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		base := snaps[id]

		// Enumerate enabled moves on the restored configuration.
		if err := t.Restore(base); err != nil {
			return rep, fmt.Errorf("check: restore: %w", err)
		}
		var moves []program.Move
		for v := 0; v < g.N(); v++ {
			buf = t.Enabled(graph.NodeID(v), buf[:0])
			for _, a := range buf {
				moves = append(moves, program.Move{Node: graph.NodeID(v), Action: a})
			}
		}

		for _, mv := range moves {
			if err := t.Restore(base); err != nil {
				return rep, fmt.Errorf("check: restore: %w", err)
			}
			if !t.Execute(mv.Node, mv.Action) {
				return rep, fmt.Errorf("check: enabled move (node %d, action %d) refused to fire", mv.Node, mv.Action)
			}
			succ, fresh, err := intern(t.Snapshot())
			if err != nil {
				return rep, err
			}
			rep.Transitions++
			states[id].succ = append(states[id].succ, succ)
			states[id].mover = append(states[id].mover, int32(mv.Node))
			states[id].act = append(states[id].act, mv.Action)
			if states[id].legit && !states[succ].legit {
				return rep, &ClosureError{From: base, To: snaps[succ], Move: mv}
			}
			if fresh {
				queue = append(queue, succ)
			}
		}

		if len(moves) == 0 && !states[id].legit {
			return rep, &ConvergenceError{Kind: "terminal", Witness: base}
		}
	}

	rep.States = len(states)
	for _, st := range states {
		if st.legit {
			rep.LegitStates++
		}
	}

	// Cycle analysis on the illegitimate-induced subgraph: an
	// illegitimate cycle is an execution that never converges. Under
	// the unfair criterion every such cycle is a violation; under
	// weak/strong fairness only those strongly connected components
	// that admit a fair run count (see Fairness).
	if opts.Fairness == Unfair {
		const (
			white = 0
			gray  = 1
			black = 2
		)
		color := make([]uint8, len(states))
		type frame struct {
			id  int32
			idx int
		}
		for start := range states {
			if states[start].legit || color[start] != white {
				continue
			}
			stack := []frame{{id: int32(start)}}
			color[start] = gray
			for len(stack) > 0 {
				f := &stack[len(stack)-1]
				if f.idx < len(states[f.id].succ) {
					next := states[f.id].succ[f.idx]
					f.idx++
					if states[next].legit {
						continue
					}
					switch color[next] {
					case white:
						color[next] = gray
						stack = append(stack, frame{id: next})
					case gray:
						return rep, &ConvergenceError{Kind: "cycle", Witness: snaps[next]}
					}
					continue
				}
				color[f.id] = black
				stack = stack[:len(stack)-1]
			}
		}
	} else {
		// Tarjan SCCs restricted to illegitimate states (iterative).
		const unvisited = -1
		low := make([]int32, len(states))
		disc := make([]int32, len(states))
		onStack := make([]bool, len(states))
		comp := make([]int32, len(states))
		for i := range disc {
			disc[i] = unvisited
			comp[i] = unvisited
		}
		var (
			counter int32
			nComp   int32
			tstack  []int32
		)
		type frame struct {
			id  int32
			idx int
		}
		for start := range states {
			if states[start].legit || disc[start] != unvisited {
				continue
			}
			stack := []frame{{id: int32(start)}}
			disc[start], low[start] = counter, counter
			counter++
			tstack = append(tstack, int32(start))
			onStack[start] = true
			for len(stack) > 0 {
				f := &stack[len(stack)-1]
				if f.idx < len(states[f.id].succ) {
					next := states[f.id].succ[f.idx]
					f.idx++
					if states[next].legit {
						continue
					}
					if disc[next] == unvisited {
						disc[next], low[next] = counter, counter
						counter++
						tstack = append(tstack, next)
						onStack[next] = true
						stack = append(stack, frame{id: next})
					} else if onStack[next] && disc[next] < low[f.id] {
						low[f.id] = disc[next]
					}
					continue
				}
				id := f.id
				stack = stack[:len(stack)-1]
				if len(stack) > 0 {
					parent := stack[len(stack)-1].id
					if low[id] < low[parent] {
						low[parent] = low[id]
					}
				}
				if low[id] == disc[id] {
					for {
						top := tstack[len(tstack)-1]
						tstack = tstack[:len(tstack)-1]
						onStack[top] = false
						comp[top] = nComp
						if top == id {
							break
						}
					}
					nComp++
				}
			}
		}
		// Per-SCC fairness analysis.
		type pair = uint64 // node<<32 | action
		mkPair := func(node int32, a program.ActionID) pair {
			return uint64(uint32(node))<<32 | uint64(uint32(a))
		}
		type sccInfo struct {
			states     []int32
			allEnabled uint64 // weak: processors enabled in every state
			executed   uint64 // weak: processors moving inside the SCC
			enabledP   map[pair]bool
			internalP  map[pair]bool
			hasEdge    bool
			init       bool
		}
		sccs := make([]sccInfo, nComp)
		for id := range states {
			if states[id].legit {
				continue
			}
			s := &sccs[comp[id]]
			if s.enabledP == nil {
				s.enabledP = make(map[pair]bool)
				s.internalP = make(map[pair]bool)
			}
			s.states = append(s.states, int32(id))
			if !s.init {
				s.allEnabled = states[id].enabled
				s.init = true
			} else {
				s.allEnabled &= states[id].enabled
			}
			for i, succ := range states[id].succ {
				p := mkPair(states[id].mover[i], states[id].act[i])
				s.enabledP[p] = true
				if !states[succ].legit && comp[succ] == comp[id] {
					s.hasEdge = true
					s.executed |= 1 << uint(states[id].mover[i])
					s.internalP[p] = true
				}
			}
		}
		for _, s := range sccs {
			if !s.hasEdge {
				continue // trivial SCC, no cycle
			}
			bad := false
			switch opts.Fairness {
			case WeakFair:
				// Every continuously enabled processor moves inside
				// the component ⇒ a weakly fair run can stay forever.
				bad = s.allEnabled&^s.executed == 0
			case StrongFair:
				// Every enabled (processor, action) move executes
				// inside the component ⇒ a strongly fair run can
				// stay forever. A move whose every execution leaves
				// the component forces fair runs out.
				bad = true
				for p := range s.enabledP {
					if !s.internalP[p] {
						bad = false
						break
					}
				}
			}
			if bad {
				return rep, &ConvergenceError{Kind: "cycle", Witness: snaps[s.states[0]]}
			}
		}
	}

	// Distance-to-legitimacy: reverse BFS from the legitimate set.
	pred := make([][]int32, len(states))
	for id, st := range states {
		for _, s := range st.succ {
			pred[s] = append(pred[s], int32(id))
		}
	}
	dist := make([]int, len(states))
	for i := range dist {
		dist[i] = -1
	}
	var bfs []int32
	for id, st := range states {
		if st.legit {
			dist[id] = 0
			bfs = append(bfs, int32(id))
		}
	}
	for len(bfs) > 0 {
		id := bfs[0]
		bfs = bfs[1:]
		for _, p := range pred[id] {
			if dist[p] < 0 {
				dist[p] = dist[id] + 1
				bfs = append(bfs, p)
				if dist[p] > rep.MaxStepsToLegit {
					rep.MaxStepsToLegit = dist[p]
				}
			}
		}
	}
	return rep, nil
}

// RandomSeeds produces count randomized configurations of t (which
// must implement program.Randomizer) plus t's current configuration.
func RandomSeeds(t Target, count int, rng *rand.Rand) ([][]byte, error) {
	r, ok := t.(program.Randomizer)
	if !ok {
		return nil, fmt.Errorf("check: protocol %q cannot be randomized", t.Name())
	}
	seeds := make([][]byte, 0, count+1)
	seeds = append(seeds, t.Snapshot())
	for i := 0; i < count; i++ {
		r.Randomize(rng)
		seeds = append(seeds, t.Snapshot())
	}
	return seeds, nil
}

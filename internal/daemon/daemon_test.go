package daemon

import (
	"testing"

	"netorient/internal/graph"
	"netorient/internal/program"
)

// candidates builds a static EnabledSet over the given nodes (which
// must be ascending, per the EnabledSet contract), two actions each.
func candidates(nodes ...graph.NodeID) program.CandidateSet {
	out := make(program.CandidateSet, len(nodes))
	for i, v := range nodes {
		out[i] = program.Candidate{Node: v, Actions: []program.ActionID{0, 1}}
	}
	return out
}

func TestCentralSelectsExactlyOne(t *testing.T) {
	d := NewCentral(1)
	for i := 0; i < 100; i++ {
		moves := d.Select(candidates(0, 1, 2, 3))
		if len(moves) != 1 {
			t.Fatalf("central selected %d moves", len(moves))
		}
	}
}

func TestCentralIsWeaklyFairInPractice(t *testing.T) {
	d := NewCentral(7)
	seen := map[graph.NodeID]int{}
	for i := 0; i < 2000; i++ {
		mv := d.Select(candidates(0, 1, 2, 3))[0]
		seen[mv.Node]++
	}
	for v := graph.NodeID(0); v < 4; v++ {
		if seen[v] == 0 {
			t.Fatalf("node %d never selected in 2000 steps", v)
		}
	}
}

func TestSynchronousSelectsAll(t *testing.T) {
	d := NewSynchronous(1)
	moves := d.Select(candidates(0, 1, 2))
	if len(moves) != 3 {
		t.Fatalf("synchronous selected %d of 3", len(moves))
	}
	seen := map[graph.NodeID]bool{}
	for _, m := range moves {
		if seen[m.Node] {
			t.Fatal("node selected twice")
		}
		seen[m.Node] = true
	}
}

func TestDistributedSelectsNonEmptySubsets(t *testing.T) {
	d := NewDistributed(3, 0.5)
	for i := 0; i < 500; i++ {
		moves := d.Select(candidates(0, 1, 2, 3, 4))
		if len(moves) == 0 || len(moves) > 5 {
			t.Fatalf("distributed selected %d moves", len(moves))
		}
		seen := map[graph.NodeID]bool{}
		for _, m := range moves {
			if seen[m.Node] {
				t.Fatal("node selected twice in one step")
			}
			seen[m.Node] = true
		}
	}
}

func TestDistributedClampsBadProbability(t *testing.T) {
	if d := NewDistributed(1, -3); d.P != 0.5 {
		t.Errorf("P=%v, want clamp to 0.5", d.P)
	}
	if d := NewDistributed(1, 1.5); d.P != 0.5 {
		t.Errorf("P=%v, want clamp to 0.5", d.P)
	}
}

func TestRoundRobinIsFair(t *testing.T) {
	d := NewRoundRobin()
	// With everyone always enabled, selections must cycle 0,1,2,3,0,…
	var order []graph.NodeID
	for i := 0; i < 8; i++ {
		mv := d.Select(candidates(0, 1, 2, 3))[0]
		order = append(order, mv.Node)
	}
	want := []graph.NodeID{0, 1, 2, 3, 0, 1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("round-robin order %v, want %v", order, want)
		}
	}
}

func TestRoundRobinSkipsDisabled(t *testing.T) {
	d := NewRoundRobin()
	if mv := d.Select(candidates(2, 5))[0]; mv.Node != 2 {
		t.Fatalf("first pick %d, want 2", mv.Node)
	}
	// Now node 2 disabled: the cyclically-next enabled is 5.
	if mv := d.Select(candidates(1, 5))[0]; mv.Node != 5 {
		t.Fatalf("second pick %d, want 5", mv.Node)
	}
	// Wraps around to 1.
	if mv := d.Select(candidates(1, 5))[0]; mv.Node != 1 {
		t.Fatalf("third pick %d, want 1 (wraparound)", mv.Node)
	}
}

func TestDeterministicPicksLowest(t *testing.T) {
	d := NewDeterministic()
	mv := d.Select(program.CandidateSet{
		{Node: 2, Actions: []program.ActionID{3, 0}},
		{Node: 5, Actions: []program.ActionID{2, 1}},
	})[0]
	if mv.Node != 2 || mv.Action != 0 {
		t.Fatalf("picked node %d action %d, want node 2 action 0", mv.Node, mv.Action)
	}
}

func TestAdversarialDelegates(t *testing.T) {
	called := false
	d := NewAdversarial("starve-evens", func(set program.EnabledSet) []program.Move {
		called = true
		// Prefer odd nodes; Contains gives O(1) targeted probes.
		if !set.Contains(1) {
			t.Error("Contains(1) = false on a set holding node 1")
		}
		for i := 0; i < set.Len(); i++ {
			if v := set.At(i); v%2 == 1 {
				return []program.Move{{Node: v, Action: set.Actions(i, nil)[0]}}
			}
		}
		return []program.Move{{Node: set.At(0), Action: set.Actions(0, nil)[0]}}
	})
	mv := d.Select(candidates(0, 1, 2))[0]
	if !called || mv.Node != 1 {
		t.Fatalf("adversarial policy not honoured: %+v", mv)
	}
	if d.Name() != "adversarial:starve-evens" {
		t.Errorf("name %q", d.Name())
	}
}

// TestLegacyAdapterPreservesSelection pins the migration path: an
// old-contract daemon wrapped with program.AdaptLegacy sees the same
// candidate list the pre-EnabledSet runner would have handed it.
func TestLegacyAdapterPreservesSelection(t *testing.T) {
	legacy := legacyPickSecond{}
	d := program.AdaptLegacy(legacy)
	if d.Name() != "pick-second" {
		t.Errorf("adapter name %q", d.Name())
	}
	mv := d.Select(candidates(3, 7, 9))[0]
	if mv.Node != 7 || mv.Action != 1 {
		t.Fatalf("adapted daemon picked node %d action %d, want node 7 action 1", mv.Node, mv.Action)
	}
}

// legacyPickSecond is an old-contract daemon used to test AdaptLegacy.
type legacyPickSecond struct{}

func (legacyPickSecond) Name() string { return "pick-second" }
func (legacyPickSecond) Select(cands []program.Candidate) []program.Move {
	c := cands[1]
	return []program.Move{{Node: c.Node, Action: c.Actions[1]}}
}

func TestDaemonNames(t *testing.T) {
	names := map[string]program.Daemon{
		"central":       NewCentral(1),
		"synchronous":   NewSynchronous(1),
		"distributed":   NewDistributed(1, 0.5),
		"round-robin":   NewRoundRobin(),
		"deterministic": NewDeterministic(),
	}
	for want, d := range names {
		if d.Name() != want {
			t.Errorf("name %q, want %q", d.Name(), want)
		}
	}
}

// Package daemon provides the schedulers of the paper's execution
// model: the central daemon (one processor per step), the distributed
// daemon (an arbitrary non-empty subset per step), the synchronous
// daemon (every enabled processor per step), a round-robin weakly-fair
// daemon, and an adversarial daemon driven by a caller-supplied policy.
//
// All randomized daemons draw exclusively from an injected seed, so
// every experiment is reproducible. Daemons reuse their selection
// buffer across Select calls (the runner consumes the returned moves
// within the step, per the program.Daemon contract), so steady-state
// scheduling allocates nothing.
package daemon

import (
	"math/rand"

	"netorient/internal/program"
)

// Compile-time interface compliance checks.
var (
	_ program.Daemon = (*Central)(nil)
	_ program.Daemon = (*Synchronous)(nil)
	_ program.Daemon = (*Distributed)(nil)
	_ program.Daemon = (*RoundRobin)(nil)
	_ program.Daemon = (*Deterministic)(nil)
	_ program.Daemon = (*Adversarial)(nil)
)

// Central activates exactly one enabled processor per step, chosen
// uniformly at random, executing one of its enabled actions uniformly
// at random. Randomized central scheduling is weakly fair with
// probability 1.
type Central struct {
	rng *rand.Rand
	buf []program.Move
}

// NewCentral returns a Central daemon seeded with seed.
func NewCentral(seed int64) *Central {
	return &Central{rng: rand.New(rand.NewSource(seed))}
}

// Name implements program.Daemon.
func (d *Central) Name() string { return "central" }

// Select implements program.Daemon.
func (d *Central) Select(cands []program.Candidate) []program.Move {
	c := cands[d.rng.Intn(len(cands))]
	d.buf = append(d.buf[:0], program.Move{Node: c.Node, Action: c.Actions[d.rng.Intn(len(c.Actions))]})
	return d.buf
}

// Synchronous activates every enabled processor in each step. The
// execution order within the step is randomized; actions are chosen
// uniformly among each processor's enabled actions.
type Synchronous struct {
	rng *rand.Rand
	buf []program.Move
}

// NewSynchronous returns a Synchronous daemon seeded with seed.
func NewSynchronous(seed int64) *Synchronous {
	return &Synchronous{rng: rand.New(rand.NewSource(seed))}
}

// Name implements program.Daemon.
func (d *Synchronous) Name() string { return "synchronous" }

// Select implements program.Daemon.
func (d *Synchronous) Select(cands []program.Candidate) []program.Move {
	moves := d.buf[:0]
	for _, c := range cands {
		moves = append(moves, program.Move{Node: c.Node, Action: c.Actions[d.rng.Intn(len(c.Actions))]})
	}
	d.rng.Shuffle(len(moves), func(i, j int) { moves[i], moves[j] = moves[j], moves[i] })
	d.buf = moves
	return moves
}

// Distributed activates an arbitrary non-empty random subset of the
// enabled processors per step — the paper's distributed daemon. Each
// enabled processor is included independently with probability P
// (default 0.5); if the coin flips exclude everyone, one processor is
// chosen uniformly so the step is productive.
type Distributed struct {
	rng *rand.Rand
	buf []program.Move
	// P is the per-processor inclusion probability, (0,1].
	P float64
}

// NewDistributed returns a Distributed daemon with inclusion
// probability p, seeded with seed. p outside (0,1] is clamped to 0.5.
func NewDistributed(seed int64, p float64) *Distributed {
	if p <= 0 || p > 1 {
		p = 0.5
	}
	return &Distributed{rng: rand.New(rand.NewSource(seed)), P: p}
}

// Name implements program.Daemon.
func (d *Distributed) Name() string { return "distributed" }

// Select implements program.Daemon.
func (d *Distributed) Select(cands []program.Candidate) []program.Move {
	moves := d.buf[:0]
	for _, c := range cands {
		if d.rng.Float64() < d.P {
			moves = append(moves, program.Move{Node: c.Node, Action: c.Actions[d.rng.Intn(len(c.Actions))]})
		}
	}
	if len(moves) == 0 {
		c := cands[d.rng.Intn(len(cands))]
		moves = append(moves, program.Move{Node: c.Node, Action: c.Actions[d.rng.Intn(len(c.Actions))]})
	}
	d.rng.Shuffle(len(moves), func(i, j int) { moves[i], moves[j] = moves[j], moves[i] })
	d.buf = moves
	return moves
}

// RoundRobin activates one processor per step, cycling through node
// ids and picking the next enabled one — a deterministic weakly-fair
// central daemon: a continuously enabled processor is activated within
// n steps.
type RoundRobin struct {
	next int
	buf  []program.Move
}

// NewRoundRobin returns a RoundRobin daemon starting at node 0.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements program.Daemon.
func (d *RoundRobin) Name() string { return "round-robin" }

// Select implements program.Daemon.
func (d *RoundRobin) Select(cands []program.Candidate) []program.Move {
	best := cands[0]
	bestKey := rrKey(int(best.Node), d.next)
	for _, c := range cands[1:] {
		if k := rrKey(int(c.Node), d.next); k < bestKey {
			best, bestKey = c, k
		}
	}
	d.next = int(best.Node) + 1
	d.buf = append(d.buf[:0], program.Move{Node: best.Node, Action: best.Actions[0]})
	return d.buf
}

// rrKey orders node ids cyclically starting at from.
func rrKey(node, from int) int {
	const large = 1 << 30
	if node >= from {
		return node - from
	}
	return node - from + large
}

// Deterministic activates the lowest-id enabled processor and its
// lowest-id enabled action — handy for reproducing exact traces such
// as the paper's Figure 3.1.1. It is unfair in general; use it only
// for protocols whose enabled set is a singleton in legitimate
// configurations (token circulation) or for bounded traces.
type Deterministic struct {
	buf []program.Move
}

// NewDeterministic returns a Deterministic daemon.
func NewDeterministic() *Deterministic { return &Deterministic{} }

// Name implements program.Daemon.
func (d *Deterministic) Name() string { return "deterministic" }

// Select implements program.Daemon.
func (d *Deterministic) Select(cands []program.Candidate) []program.Move {
	best := cands[0]
	for _, c := range cands[1:] {
		if c.Node < best.Node {
			best = c
		}
	}
	a := best.Actions[0]
	for _, x := range best.Actions[1:] {
		if x < a {
			a = x
		}
	}
	d.buf = append(d.buf[:0], program.Move{Node: best.Node, Action: a})
	return d.buf
}

// Adversarial delegates selection to a caller-supplied policy,
// enabling worst-case schedules in tests (e.g. starving a region for
// as long as fairness permits).
type Adversarial struct {
	Policy func(cands []program.Candidate) []program.Move
	name   string
}

// NewAdversarial wraps policy under the given display name.
func NewAdversarial(name string, policy func([]program.Candidate) []program.Move) *Adversarial {
	return &Adversarial{Policy: policy, name: name}
}

// Name implements program.Daemon.
func (d *Adversarial) Name() string { return "adversarial:" + d.name }

// Select implements program.Daemon.
func (d *Adversarial) Select(cands []program.Candidate) []program.Move {
	return d.Policy(cands)
}

// Package daemon provides the schedulers of the paper's execution
// model: the central daemon (one processor per step), the distributed
// daemon (an arbitrary non-empty subset per step), the synchronous
// daemon (every enabled processor per step), a round-robin weakly-fair
// daemon, and an adversarial daemon driven by a caller-supplied policy.
//
// All daemons work against program.EnabledSet, the indexable view of
// the enabled processors: a daemon that activates one processor
// samples it by rank (O(log n) under the incremental runner) instead
// of receiving — and paying for — the whole candidate list. Daemons
// that activate subsets (synchronous, distributed) enumerate the set
// in ascending rank order, which the runner serves through its
// sequential successor fast path at O(n + #enabled) per step — the
// cost of the materialised slice the legacy contract handed over.
//
// All randomized daemons draw exclusively from an injected seed, so
// every experiment is reproducible, and they consume randomness in
// exactly the order the pre-EnabledSet implementations did, so seeded
// executions are bit-identical across the API migration (the
// differential suite in internal/program locksteps both). Daemons
// reuse their selection buffers across Select calls (the runner
// consumes the returned moves within the step, per the program.Daemon
// contract), so steady-state scheduling allocates nothing.
package daemon

import (
	"math/rand"
	"sort"

	"netorient/internal/program"
)

// Compile-time interface compliance checks.
var (
	_ program.Daemon = (*Central)(nil)
	_ program.Daemon = (*Synchronous)(nil)
	_ program.Daemon = (*Distributed)(nil)
	_ program.Daemon = (*RoundRobin)(nil)
	_ program.Daemon = (*Deterministic)(nil)
	_ program.Daemon = (*Adversarial)(nil)
)

// Central activates exactly one enabled processor per step, chosen
// uniformly at random, executing one of its enabled actions uniformly
// at random. Randomized central scheduling is weakly fair with
// probability 1. This is the canonical sampling daemon: one rank draw,
// one indexed lookup — O(log n) per step regardless of how many
// processors are enabled.
type Central struct {
	rng  *rand.Rand
	buf  []program.Move
	abuf []program.ActionID
}

// NewCentral returns a Central daemon seeded with seed.
func NewCentral(seed int64) *Central {
	return &Central{rng: rand.New(rand.NewSource(seed))}
}

// Name implements program.Daemon.
func (d *Central) Name() string { return "central" }

// Select implements program.Daemon.
func (d *Central) Select(set program.EnabledSet) []program.Move {
	i := d.rng.Intn(set.Len())
	d.abuf = set.Actions(i, d.abuf[:0])
	d.buf = append(d.buf[:0], program.Move{Node: set.At(i), Action: d.abuf[d.rng.Intn(len(d.abuf))]})
	return d.buf
}

// Synchronous activates every enabled processor in each step. The
// execution order within the step is randomized; actions are chosen
// uniformly among each processor's enabled actions.
type Synchronous struct {
	rng  *rand.Rand
	buf  []program.Move
	abuf []program.ActionID
}

// NewSynchronous returns a Synchronous daemon seeded with seed.
func NewSynchronous(seed int64) *Synchronous {
	return &Synchronous{rng: rand.New(rand.NewSource(seed))}
}

// Name implements program.Daemon.
func (d *Synchronous) Name() string { return "synchronous" }

// Select implements program.Daemon.
func (d *Synchronous) Select(set program.EnabledSet) []program.Move {
	moves := d.buf[:0]
	for i, n := 0, set.Len(); i < n; i++ {
		d.abuf = set.Actions(i, d.abuf[:0])
		moves = append(moves, program.Move{Node: set.At(i), Action: d.abuf[d.rng.Intn(len(d.abuf))]})
	}
	d.rng.Shuffle(len(moves), func(i, j int) { moves[i], moves[j] = moves[j], moves[i] })
	d.buf = moves
	return moves
}

// Distributed activates an arbitrary non-empty random subset of the
// enabled processors per step — the paper's distributed daemon. Each
// enabled processor is included independently with probability P
// (default 0.5); if the coin flips exclude everyone, one processor is
// chosen uniformly so the step is productive.
type Distributed struct {
	rng  *rand.Rand
	buf  []program.Move
	abuf []program.ActionID
	// P is the per-processor inclusion probability, (0,1].
	P float64
}

// NewDistributed returns a Distributed daemon with inclusion
// probability p, seeded with seed. p outside (0,1] is clamped to 0.5.
func NewDistributed(seed int64, p float64) *Distributed {
	if p <= 0 || p > 1 {
		p = 0.5
	}
	return &Distributed{rng: rand.New(rand.NewSource(seed)), P: p}
}

// Name implements program.Daemon.
func (d *Distributed) Name() string { return "distributed" }

// Select implements program.Daemon.
func (d *Distributed) Select(set program.EnabledSet) []program.Move {
	moves := d.buf[:0]
	for i, n := 0, set.Len(); i < n; i++ {
		if d.rng.Float64() < d.P {
			d.abuf = set.Actions(i, d.abuf[:0])
			moves = append(moves, program.Move{Node: set.At(i), Action: d.abuf[d.rng.Intn(len(d.abuf))]})
		}
	}
	if len(moves) == 0 {
		i := d.rng.Intn(set.Len())
		d.abuf = set.Actions(i, d.abuf[:0])
		moves = append(moves, program.Move{Node: set.At(i), Action: d.abuf[d.rng.Intn(len(d.abuf))]})
	}
	d.rng.Shuffle(len(moves), func(i, j int) { moves[i], moves[j] = moves[j], moves[i] })
	d.buf = moves
	return moves
}

// RoundRobin activates one processor per step, cycling through node
// ids and picking the next enabled one — a deterministic weakly-fair
// central daemon: a continuously enabled processor is activated within
// n steps. The cyclic successor is found by binary search over the
// ascending enabled set (O(log² n) under the incremental runner)
// instead of a scan of every candidate.
type RoundRobin struct {
	next int
	buf  []program.Move
	abuf []program.ActionID
}

// NewRoundRobin returns a RoundRobin daemon starting at node 0.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements program.Daemon.
func (d *RoundRobin) Name() string { return "round-robin" }

// Select implements program.Daemon.
func (d *RoundRobin) Select(set program.EnabledSet) []program.Move {
	n := set.Len()
	// First enabled node ≥ next, else wrap to the smallest.
	i := sort.Search(n, func(i int) bool { return int(set.At(i)) >= d.next })
	if i == n {
		i = 0
	}
	v := set.At(i)
	d.abuf = set.Actions(i, d.abuf[:0])
	d.next = int(v) + 1
	d.buf = append(d.buf[:0], program.Move{Node: v, Action: d.abuf[0]})
	return d.buf
}

// Deterministic activates the lowest-id enabled processor and its
// lowest-id enabled action — handy for reproducing exact traces such
// as the paper's Figure 3.1.1. It is unfair in general; use it only
// for protocols whose enabled set is a singleton in legitimate
// configurations (token circulation) or for bounded traces.
type Deterministic struct {
	buf  []program.Move
	abuf []program.ActionID
}

// NewDeterministic returns a Deterministic daemon.
func NewDeterministic() *Deterministic { return &Deterministic{} }

// Name implements program.Daemon.
func (d *Deterministic) Name() string { return "deterministic" }

// Select implements program.Daemon.
func (d *Deterministic) Select(set program.EnabledSet) []program.Move {
	d.abuf = set.Actions(0, d.abuf[:0]) // index 0 is the lowest id: the set is ascending
	a := d.abuf[0]
	for _, x := range d.abuf[1:] {
		if x < a {
			a = x
		}
	}
	d.buf = append(d.buf[:0], program.Move{Node: set.At(0), Action: a})
	return d.buf
}

// Adversarial delegates selection to a caller-supplied policy,
// enabling worst-case schedules in tests (e.g. starving a region for
// as long as fairness permits). Policies query the set like any other
// daemon — including O(1) Contains probes for targeted starvation.
type Adversarial struct {
	Policy func(set program.EnabledSet) []program.Move
	name   string
}

// NewAdversarial wraps policy under the given display name.
func NewAdversarial(name string, policy func(program.EnabledSet) []program.Move) *Adversarial {
	return &Adversarial{Policy: policy, name: name}
}

// Name implements program.Daemon.
func (d *Adversarial) Name() string { return "adversarial:" + d.name }

// Select implements program.Daemon.
func (d *Adversarial) Select(set program.EnabledSet) []program.Move {
	return d.Policy(set)
}

// Fault recovery: watch a stabilized orientation absorb transient
// faults — the defining property of a self-stabilizing system
// (Chapter 1 of the paper: "a fault occurring at a process may cause
// an illegal global state, but the system will detect such a state
// and correct itself in finite time").
//
//	go run ./examples/faultrecovery
package main

import (
	"fmt"
	"log"
	"math/rand"

	"netorient/internal/core"
	"netorient/internal/daemon"
	"netorient/internal/graph"
	"netorient/internal/program"
	"netorient/internal/spantree"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	g := graph.Grid(4, 4)
	sub, err := spantree.NewBFSTree(g, 0)
	if err != nil {
		return err
	}
	stno, err := core.NewSTNO(g, sub, 0)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(3))

	// Initial stabilization from a fully arbitrary configuration.
	stno.Randomize(rng)
	sys := program.NewSystem(stno, daemon.NewCentral(3))
	res, err := sys.RunUntilLegitimate(1 << 22)
	if err != nil || !res.Converged {
		return fmt.Errorf("initial stabilization failed: %v", err)
	}
	fmt.Printf("initial stabilization on %s: %d moves, %d rounds\n", g, res.Moves, res.Rounds)
	baseline := stno.Names()

	// Hit progressively larger subsets of processors with transient
	// faults; the system recovers unaided every time, and the naming
	// it recovers to is the same deterministic one.
	for _, k := range []int{1, 2, 4, 8, g.N()} {
		for _, v := range rng.Perm(g.N())[:k] {
			stno.CorruptNode(graph.NodeID(v), rng)
		}
		fmt.Printf("\n%2d processors corrupted; legitimate=%v\n", k, stno.Legitimate())
		sys.ResetCounters()
		res, err = sys.RunUntilLegitimate(1 << 22)
		if err != nil || !res.Converged {
			return fmt.Errorf("recovery from %d faults failed: %v", k, err)
		}
		same := true
		for v, name := range stno.Names() {
			if baseline[v] != name {
				same = false
			}
		}
		fmt.Printf("   recovered in %d moves (%d rounds); naming identical to baseline: %v\n",
			res.Moves, res.Rounds, same)
	}
	return nil
}

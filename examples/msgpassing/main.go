// Message passing: deploy the full self-stabilizing stack onto real
// goroutines — one per processor, wake-up channels along the links,
// the Go scheduler as the weakly-fair daemon — and watch it orient
// the network concurrently.
//
//	go run ./examples/msgpassing
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"netorient/internal/core"
	"netorient/internal/graph"
	"netorient/internal/msgnet"
	"netorient/internal/spantree"
	"netorient/internal/token"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	g := graph.Torus(4, 4)
	fmt.Printf("network: %s, one goroutine per processor\n\n", g)

	// DFTNO over the self-stabilizing token circulation.
	tokenSub, err := token.NewCirculator(g, 0)
	if err != nil {
		return err
	}
	dftno, err := core.NewDFTNO(g, tokenSub, 0)
	if err != nil {
		return err
	}
	dftno.Randomize(rand.New(rand.NewSource(11)))
	rt := msgnet.New(dftno, 11)
	start := time.Now()
	if err := rt.RunUntilLegitimate(60 * time.Second); err != nil {
		return fmt.Errorf("dftno: %w", err)
	}
	fmt.Printf("dftno stabilized concurrently: %d moves in %v\n", rt.Moves(), time.Since(start).Round(time.Millisecond))
	if err := dftno.Labeling().Validate(g); err != nil {
		return err
	}
	fmt.Printf("names: %v\n\n", dftno.Names())

	// STNO over the self-stabilizing BFS tree, same deployment.
	treeSub, err := spantree.NewBFSTree(g, 0)
	if err != nil {
		return err
	}
	stno, err := core.NewSTNO(g, treeSub, 0)
	if err != nil {
		return err
	}
	stno.Randomize(rand.New(rand.NewSource(12)))
	rt = msgnet.New(stno, 12)
	start = time.Now()
	if err := rt.RunUntilLegitimate(60 * time.Second); err != nil {
		return fmt.Errorf("stno: %w", err)
	}
	fmt.Printf("stno stabilized concurrently: %d moves in %v\n", rt.Moves(), time.Since(start).Round(time.Millisecond))
	if err := stno.Labeling().Validate(g); err != nil {
		return err
	}
	fmt.Printf("names: %v\n", stno.Names())
	return nil
}

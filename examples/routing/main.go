// Routing with a sense of direction: orient a ring with DFTNO and
// route messages greedily using nothing but the chordal edge labels;
// then do the same on a chordal ring (the structure of Figure 2.2.1),
// where the chords act as shortcuts — the application class the paper
// motivates orientation with (§1.3).
//
// Greedy label routing is optimal on rings, cliques and chordal
// rings; on arbitrary topologies it is a heuristic (names follow the
// DFS order, not the geometry), which is why the paper treats routing
// as a consumer of the orientation rather than part of it.
//
//	go run ./examples/routing
package main

import (
	"fmt"
	"log"

	"netorient/internal/core"
	"netorient/internal/daemon"
	"netorient/internal/graph"
	"netorient/internal/program"
	"netorient/internal/sod"
	"netorient/internal/token"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Part 1: self-stabilize an orientation on a 12-ring, then route.
	g := graph.Ring(12)
	sub, err := token.NewCirculator(g, 0)
	if err != nil {
		return err
	}
	dftno, err := core.NewDFTNO(g, sub, 0)
	if err != nil {
		return err
	}
	sys := program.NewSystem(dftno, daemon.NewCentral(5))
	if res, err := sys.RunUntilLegitimate(1 << 22); err != nil || !res.Converged {
		return fmt.Errorf("stabilization failed: %v", err)
	}
	l := dftno.Labeling()
	if err := l.Validate(g); err != nil {
		return err
	}
	fmt.Printf("ring-12 oriented by DFTNO; names: %v\n", l.Names)
	for _, pair := range [][2]graph.NodeID{{0, 3}, {0, 9}, {2, 8}} {
		if err := route(g, l, pair[0], pair[1]); err != nil {
			return err
		}
	}

	// Part 2: a chordal ring C16(1,4) — the network family the
	// chordal sense of direction is named after. Names are the ring
	// positions (as in Figure 2.2.1); labels follow from SP2, and
	// greedy routing exploits the chords as shortcuts.
	b := graph.NewBuilder(16)
	for i := 0; i < 16; i++ {
		b.MustAddEdge(graph.NodeID(i), graph.NodeID((i+1)%16))
	}
	for i := 0; i < 16; i += 2 {
		b.MustAddEdge(graph.NodeID(i), graph.NodeID((i+4)%16))
	}
	cg := b.Build()
	names := make([]int, cg.N())
	for i := range names {
		names[i] = i
	}
	cl := sod.FromNames(cg, names, cg.N())
	if err := cl.Validate(cg); err != nil {
		return err
	}
	fmt.Printf("\nchordal ring C16(1,4): %s\n", cg)
	for _, pair := range [][2]graph.NodeID{{0, 8}, {1, 9}, {0, 7}} {
		if err := route(cg, cl, pair[0], pair[1]); err != nil {
			return err
		}
	}
	return nil
}

func route(g *graph.Graph, l *sod.Labeling, from, to graph.NodeID) error {
	target := l.Names[to]
	path, err := l.Route(g, from, target, g.N())
	if err != nil {
		return fmt.Errorf("route %d→%d: %w", from, to, err)
	}
	dist, _ := graph.BFSFrom(g, from)
	fmt.Printf("  route %2d→%-2d (name %2d): %v  — %d hops (BFS optimum %d)\n",
		from, to, target, path, len(path)-1, dist[to])
	return nil
}

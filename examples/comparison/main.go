// Comparison: run both of the paper's protocols — DFTNO (token
// substrate) and STNO (tree substrate) — across topologies and
// compare stabilization cost, echoing the trade-off Chapter 5 draws:
// same orientation-layer space, different substrate costs and
// stabilization behaviour (O(n) steps vs O(h) steps after the
// respective substrate stabilizes).
//
//	go run ./examples/comparison
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"netorient/internal/core"
	"netorient/internal/daemon"
	"netorient/internal/graph"
	"netorient/internal/program"
	"netorient/internal/spantree"
	"netorient/internal/token"
	"netorient/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	topologies := []struct {
		name string
		g    *graph.Graph
	}{
		{"ring-16", graph.Ring(16)},
		{"grid-4x4", graph.Grid(4, 4)},
		{"clique-8", graph.Complete(8)},
		{"binary-tree-15", graph.KAryTree(15, 2)},
		{"lollipop-6+6", graph.Lollipop(6, 6)},
	}
	const trials = 10
	tb := trace.NewTable(
		fmt.Sprintf("DFTNO vs STNO — full-stack stabilization from arbitrary configurations (median over %d trials, central daemon)", trials),
		"topology", "n", "m", "dftno moves", "dftno rounds", "stno moves", "stno rounds", "namings equal")

	for _, topo := range topologies {
		g := topo.g
		rng := rand.New(rand.NewSource(42))

		measure := func(p interface {
			program.Protocol
			program.Legitimacy
			program.Randomizer
		}) (float64, float64, error) {
			var moves, rounds []int64
			for trial := 0; trial < trials; trial++ {
				p.Randomize(rng)
				sys := program.NewSystem(p, daemon.NewCentral(int64(trial)))
				res, err := sys.RunUntilLegitimate(1 << 24)
				if err != nil || !res.Converged {
					return 0, 0, fmt.Errorf("%s on %s: %v", p.Name(), topo.name, err)
				}
				moves = append(moves, res.Moves)
				rounds = append(rounds, res.Rounds)
			}
			return trace.SummarizeInts(moves).Median, trace.SummarizeInts(rounds).Median, nil
		}

		tokenSub, err := token.NewCirculator(g, 0)
		if err != nil {
			return err
		}
		dftno, err := core.NewDFTNO(g, tokenSub, 0)
		if err != nil {
			return err
		}
		dMoves, dRounds, err := measure(dftno)
		if err != nil {
			return err
		}

		treeSub, err := spantree.NewBFSTree(g, 0)
		if err != nil {
			return err
		}
		stno, err := core.NewSTNO(g, treeSub, 0)
		if err != nil {
			return err
		}
		sMoves, sRounds, err := measure(stno)
		if err != nil {
			return err
		}

		equal := true
		sn, dn := stno.Names(), dftno.Names()
		for v := range sn {
			if sn[v] != dn[v] {
				equal = false
			}
		}
		tb.AddRow(topo.name, g.N(), g.M(), dMoves, dRounds, sMoves, sRounds, equal)
	}
	return tb.Render(os.Stdout)
}

// Quickstart: orient a small rooted network with DFTNO and read the
// resulting chordal sense of direction.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"netorient/internal/core"
	"netorient/internal/daemon"
	"netorient/internal/graph"
	"netorient/internal/program"
	"netorient/internal/token"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 3x3 grid, rooted at node 0.
	g := graph.Grid(3, 3)
	fmt.Printf("network: %s, root 0\n\n", g)

	// The full self-stabilizing stack: DFTNO over the depth-first
	// token circulation substrate.
	sub, err := token.NewCirculator(g, 0)
	if err != nil {
		return err
	}
	dftno, err := core.NewDFTNO(g, sub, 0)
	if err != nil {
		return err
	}

	// Self-stabilization means any starting configuration works —
	// scramble everything, then let the system converge under a
	// randomized central daemon.
	dftno.Randomize(rand.New(rand.NewSource(1)))
	sys := program.NewSystem(dftno, daemon.NewCentral(1))
	res, err := sys.RunUntilLegitimate(1 << 22)
	if err != nil {
		return err
	}
	if !res.Converged {
		return fmt.Errorf("no convergence")
	}
	fmt.Printf("stabilized from an arbitrary configuration in %d moves (%d rounds)\n\n",
		res.Moves, res.Rounds)

	// Read the orientation: unique names and chordal edge labels.
	l := dftno.Labeling()
	if err := l.Validate(g); err != nil {
		return err
	}
	for v := 0; v < g.N(); v++ {
		fmt.Printf("node %d: η=%d, labels:", v, l.Names[v])
		for port, q := range g.Neighbors(graph.NodeID(v)) {
			fmt.Printf("  →%d:%d", q, l.Labels[v][port])
		}
		fmt.Println()
	}

	// The labels alone let a node compute any neighbour's name.
	fmt.Printf("\nnode 4 derives its neighbours' names locally:")
	for port := range g.Neighbors(4) {
		fmt.Printf(" %d", l.TranslateName(4, port))
	}
	fmt.Println()
	return nil
}

// Package netorient is a faithful, production-quality reproduction of
// "Self-Stabilizing Network Orientation Algorithms in Arbitrary Rooted
// Networks" (Gurumurthy & Datta, ICDCS 2000).
//
// The library implements the paper's two self-stabilizing network
// orientation protocols — DFTNO (built on a depth-first token circulation
// substrate) and STNO (built on a spanning tree substrate) — together with
// every substrate they depend on, a guarded-command execution model with
// pluggable daemons, an exhaustive model checker for self-stabilization
// properties, chordal sense-of-direction utilities, fault injection, and a
// benchmark harness that regenerates every figure and complexity claim of
// the paper's evaluation.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record. All implementation lives under internal/;
// the runnable entry points are the programs in cmd/ and examples/.
package netorient

// Package netorient is a faithful, production-quality reproduction of
// "Self-Stabilizing Network Orientation Algorithms in Arbitrary Rooted
// Networks" (Gurumurthy & Datta, ICDCS 2000).
//
// The library implements the paper's two self-stabilizing network
// orientation protocols — DFTNO (built on a depth-first token circulation
// substrate) and STNO (built on a spanning tree substrate) — together with
// every substrate they depend on, a guarded-command execution model with
// pluggable daemons, an exhaustive model checker for self-stabilization
// properties, chordal sense-of-direction utilities, fault injection, and a
// benchmark harness that regenerates every figure and complexity claim of
// the paper's evaluation.
//
// # Execution engine
//
// Simulations run on an event-driven incremental scheduler
// (internal/program.System): the runner caches every node's
// enabled-action list and, after a move at v, re-evaluates guards only
// for v's closed neighbourhood — or the wider set a protocol declares
// through the program.Influencer locality contract (STNO over a DFS
// tree reads two hops). The dirty-set invariant — cached guards always
// equal a fresh evaluation — makes a daemon step cost O(Δ) guard
// evaluations instead of Θ(n), allocates nothing in steady state, and
// produces bit-identical executions (moves, steps, rounds, final
// configuration) to the full-scan reference runner, which
// program.NewSystemFullScan keeps available as a differential-testing
// oracle. Every protocol package declares and documents its influence
// audit; program.CheckLocality verifies the declarations empirically,
// and the differential suite in internal/program locksteps both
// schedulers across every protocol × daemon combination. Experiment
// T11 (BENCH_scheduler.json) records the resulting speedup on graphs
// up to 16k nodes.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record. All implementation lives under internal/;
// the runnable entry points are the programs in cmd/ and examples/.
package netorient

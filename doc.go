// Package netorient is a faithful, production-quality reproduction of
// "Self-Stabilizing Network Orientation Algorithms in Arbitrary Rooted
// Networks" (Gurumurthy & Datta, ICDCS 2000).
//
// The library implements the paper's two self-stabilizing network
// orientation protocols — DFTNO (built on a depth-first token circulation
// substrate) and STNO (built on a spanning tree substrate) — together with
// every substrate they depend on, a guarded-command execution model with
// pluggable daemons, an exhaustive model checker for self-stabilization
// properties, chordal sense-of-direction utilities, fault injection, and a
// benchmark harness that regenerates every figure and complexity claim of
// the paper's evaluation.
//
// # Execution engine
//
// Simulations run on an event-driven incremental scheduler
// (internal/program.System): the runner caches every node's
// enabled-action list and, after a move at v, re-evaluates guards only
// for v's closed neighbourhood — or the wider set a protocol declares
// through the program.Influencer locality contract (STNO over a DFS
// tree reads two hops). The dirty-set invariant — cached guards always
// equal a fresh evaluation — makes the guard work of a daemon step
// O(Δ) instead of Θ(n).
//
// The runner's two hot-path contracts are sublinear as well:
//
//   - Daemons receive a program.EnabledSet — an indexable, ascending
//     view of the enabled processors (Len, At(i), Actions(i, buf),
//     O(1) Contains) backed by a Fenwick index over the cached enabled
//     bits — instead of a materialised candidate slice. A sampling
//     daemon (central, round-robin, deterministic) selects in O(log n)
//     queries, so a step costs O(Δ·log n) end to end; enumerate-all
//     daemons (synchronous, distributed) pay O(#enabled·log n), which
//     is inherent to their scheduling model. Pre-EnabledSet daemons
//     migrate mechanically: keep the old Select([]Candidate) body,
//     satisfy program.LegacyDaemon, and wrap it with
//     program.AdaptLegacy — executions stay bit-identical, only the
//     Ω(#enabled) materialisation cost returns.
//
//   - RunUntilLegitimate consults a program.Witness when the protocol
//     provides one: an incrementally-maintained legitimacy witness
//     (per-node violation counters refreshed from the same dirty sets
//     the guard cache uses) that decides L_P in O(1) instead of an
//     O(n) Legitimate() scan per step. All five protocol stacks — the
//     token circulator, both spanning trees, DFTNO and STNO — ship
//     witnesses; layers conjoin their own counters with their
//     substrate's verdict. program.CheckWitness audits every witness
//     against its O(n) predicate on random executions. DFTNO's
//     legitimacy itself is a recomputable cycle invariant (Max values
//     determined by the traversal position exposed through the token
//     Substrate's introspection queries), replacing the recorded
//     per-cycle snapshot map that cost O(n²) bytes and made 64k-node
//     stacks unconstructible.
//
// Steps allocate nothing in steady state, and both contracts produce
// bit-identical executions (moves, steps, rounds, final configuration)
// to the full-scan reference runner, which program.NewSystemFullScan
// keeps available as a differential-testing oracle. Every protocol
// package declares and documents its influence audit;
// program.CheckLocality verifies the declarations empirically, and the
// differential suite in internal/program locksteps both schedulers and
// both daemon APIs across every protocol × daemon combination.
// Experiments T11 and T12 (BENCH_scheduler.json) record the resulting
// speedups on graphs up to 65 536 nodes; CI fails on >2× step-latency
// regressions against that committed baseline.
//
// # Parallel execution
//
// program.ParallelSystem shards the execution across a worker pool,
// exploiting the distributed daemon's own semantics: any enabled
// subset may move simultaneously, so the engine's job is not to
// emulate a serial schedule but to pick a *legal* simultaneous one
// whose moves commute. Commutativity comes from a distance form of
// the locality contract, program.LocalityRadius: a protocol declaring
// radius R promises that guards and statements of (v, a) read only
// the closed ball B(v,R) and write only v. Balls are symmetric —
// u ∈ B(v,R) ⟺ v ∈ B(u,R) — so when the graph is partitioned into
// contiguous id ranges (one shard per worker; graph.BFSOrder +
// ReorderNodes relabel arbitrary graphs so ranges are geometrically
// compact), a node whose ball lies inside its own shard is *interior*:
// no other shard reads or is influenced by a move there. Each step
// runs two phases: phase A fires interior nodes concurrently, one
// goroutine per shard, each with its own seeded RNG and eager in-shard
// guard-cache repair; phase B executes the frontier (non-interior
// nodes) in ascending order — serially by default, or in batched
// concurrent *waves* under ParallelConfig.FrontierWaves. A wave is a
// color class of the greedy distance-2R coloring of the frontier
// conflict graph (graph.ConflictAdjacency: two frontier nodes
// conflict iff their graph distance is ≤ 2R, i.e. exactly when their
// radius-R balls can intersect), so moves within one wave have
// pairwise-disjoint balls and commute — the same disjoint-ball
// simultaneity the paper's distributed daemon permits. Activation and
// action draws for a wave are made serially in ascending member order
// before the wave fans out, so the trace stays the canonical
// serialization — shard 0's moves, then shard 1's, …, then wave 0
// ascending, wave 1 ascending, … — and the differential suite replays
// every trace through Protocol.Execute on a restored snapshot,
// asserting each move fires and the final configurations match byte
// for byte. The coloring is cached alongside the interior/frontier
// classification and recomputed only when a topology delta lands
// within 2R of a frontier node (within R it also reclassifies
// membership; farther away it skips both — the FrontierRebuilds /
// WaveRebuilds / ReclassSkips counters prove which tier fired).
// Ownership is enforced, not assumed: a move whose influence escapes
// its shard (serial mode) or its declared radius-R ball (wave mode)
// is reported as an under-declared radius, and workers never write
// another shard's cache entries, so the suite runs -race-clean at any
// GOMAXPROCS (CI runs the matrix at 2 and 8).
//
// Determinism holds per (seed, worker count): per-shard RNG streams
// are split from the configured seed, and the batch merge order is
// fixed, so equal seeds and worker counts replay bit-identically,
// while different worker counts yield different — still legal —
// distributed-daemon schedules. Topology deltas (System.ApplyDelta's
// parallel twin) land between steps, when the pool is quiesced:
// the engine repairs its caches for the delta's ball, re-classifies
// interior/frontier membership inside the radius-R ball of the
// touched set, and appends cache slots when AddNode grows the id
// space — the protocols' flat per-node arrays (a struct-of-arrays
// layout throughout) and the runner's capacity-doubling arena and
// Fenwick index make growth to n=10⁶–10⁷ an amortised-O(1) append
// per node instead of a full rebuild. Shard boundaries can also move
// while the system runs: Reshard() re-partitions into even ranges on
// demand, and ParallelConfig.Reshard (program.ReshardPolicy) does it
// automatically — when the max/mean ratio of recent per-shard phase-A
// work exceeds Imbalance (and at least MinInterval steps have passed),
// boundaries are recut by prefix sums of that work. Both paths run
// between steps on the quiesced pool and fully reclassify, so
// determinism survives as a function of the whole configuration
// history: equal (snapshot, seed, workers, policy) still replay
// bit-identically, but a reshard changes which nodes are interior and
// therefore the schedule from that step on. Because core counts vary
// across machines, experiments T16/T17 report counted work/span
// throughput — work = guard evaluations + moves; span per step = the
// largest shard's phase-A work plus the boundary pass (whole boundary
// work when serial, Σ of each wave's largest chunk when waved; the
// phases are barrier-separated, so span adds them) — and the
// committed baseline gates the ratios in CI: 7.7× counted speedup at
// 8 workers with waves on (vs 7.2× serialized) on the n=2²⁰ grid, and
// a 3.4× phase-B span reduction on a fat-frontier barabási graph
// where the serialized seam dominates.
//
// # Dynamic topology
//
// The communication graph is mutable while the system runs: edges and
// nodes appear and disappear (graph.AddEdge / RemoveEdge / AddNode /
// RemoveNode), and the protocols — being self-stabilizing — absorb
// every such event as one more transient fault. The mutable-graph
// contract (internal/graph/delta.go) has three load-bearing clauses:
//
//   - Port stability: removing an edge leaves a hole (graph.None) at
//     its ports, so every surviving edge keeps its port number and
//     port-indexed protocol state stays bound to the right edges; a
//     re-added edge reclaims the lowest holes. Iteration over
//     Neighbors skips holes; Ports(v) sizes port-indexed arrays,
//     Degree(v) counts live edges.
//   - Delta soundness: every mutation returns a graph.Delta listing
//     exactly the nodes whose local view changed, and bumps the
//     monotone Version. Mutating the graph and calling
//     System.ApplyDelta with the returned record are two halves of
//     one operation — any query in between sees stale caches, the
//     same staleness rule as Snapshotter.Restore + System.Invalidate.
//   - ApplyDelta locality: the runner hands the delta to the
//     protocol's program.TopologyAware hook (rebind port-indexed
//     state, clamp dangling references — the resulting state may be
//     arbitrary, but every index stays in-bounds — and report the
//     event's influence ball), then repairs its guard cache, Fenwick
//     index, round bookkeeping and witness counters for that ball
//     only: O(deg·Δ) per topology event, against the Θ(n) rescan of a
//     whole-system Invalidate (experiment T13 counts it: an edge flap
//     on a 64×64 grid re-evaluates 10 guards, not 8192, and
//     re-stabilizes with zero O(n) legitimacy scans). Both schedulers
//     stay bit-identical across interleaved topology deltas.
//   - Component tracking: mutations may disconnect the graph — there
//     is no connectivity restriction anywhere in the contract. The
//     graph maintains connected-component labels incrementally across
//     deltas (graph.ComponentOf / Components / ComponentSize /
//     SameComponent; merges relabel the smaller side, removals run a
//     bounded bidirectional split search), reports split/merge events
//     in the Delta (Components, CompChanged), and bumps CompVersion()
//     only when labels actually change, so consumers cache
//     component-derived facts cheaply.
//
// Legitimacy on a disconnected graph is decided per component: the
// root's component must satisfy the classic predicate restricted to
// it (the circulator's round counted against ComponentSize, the trees'
// distances/paths within the component), while every component that
// lost the root — the detected orphan state — must be silent, i.e.
// quiescent in the fixpoint its protocol degrades to (BFS distances
// pinned at n, DFS paths ⊥, DFTNO reference names −1). Witnesses
// implement this by bucketing violation counters per component and
// counting loud orphan nodes, re-arming when CompVersion or the
// root's liveness changes, so L_P stays an O(1) decision while the
// network splits and heals. internal/apps.ElectComponentRoots floods
// max-id election per component (churn.ComponentReport wraps it) to
// identify stand-in leaders for detected orphan components.
//
// Package churn turns this into scenarios — seeded edge-flap, node
// crash/join and partition/heal schedules with per-event recovery
// measurement, plus non-connectivity-preserving bridge-cut and
// island-crash schedules whose down phases measure per-component
// convergence while split — and fault.Churn composes topology faults
// with state corruption (including corruption aimed at orphan
// components, in either Invalidate/ApplyDelta order) into campaigns;
// cmd/stabsim exposes all of it (-faults, -churn, -allow-disconnect).
// Experiment T14 records the heal-time merge cost: re-connecting a
// k-way split re-evaluates the boundary balls plus the renamed orphan
// regions, not Θ(n) per heal.
//
// # Root failover
//
// Orphan components need not stay dead weight. The internal/failover
// package wraps any rooted stack (all five implement the
// program.Rootable binding) in a self-stabilizing
// disconnection-detection and acting-root layer, giving each orphan
// component a four-stage lifecycle:
//
//   - Detect: every node maintains a bounded root-distance/epoch pair
//     (root at (0, graph.RootEpoch); everyone else one past the
//     closest live neighbour, saturating at n). Disconnection makes
//     the distances count up to the bound — the classic
//     count-to-infinity, here terminating because the bound is the
//     component-size cap — and a node whose distance saturates flips
//     its local Orphaned() predicate. Detection reads only own and
//     neighbour variables; agreement with graph.ComponentOf truth is
//     a convergence property (DetectionAccurate), proven differential
//     in the failover tests and soaked under churn.
//   - Elect: orphaned nodes run a flooding max-id election with
//     distance-bounded decay (the protocol-level promotion of
//     apps.ElectComponentRoots), so each orphan component converges
//     on its highest surviving id as acting root.
//   - Act: the wrapper implements program.RootAuthority — IsRoot(v)
//     is the fixed root, or an orphaned self-elected winner — and the
//     inner stack re-anchors at the acting roots: the circulator
//     circulates per component, trees re-root, DFTNO renames, STNO
//     re-weighs. Per-component legitimacy under acting roots is
//     ActingLegitimate, decided O(1) by the wrapper's witness
//     conjoined with the inner stack's (witness ≡ scan is a soak
//     invariant at every settle point).
//   - Abdicate: a heal reconnects the orphan component, distances
//     deflate below the bound, Orphaned() clears, IsRoot flips back
//     to the fixed root alone (RootsVersion bumps; the inner stacks'
//     ensure* hooks re-derive their reference state), and the acting
//     root's state washes out — lockstep differential tests drive
//     merges of two acting roots and heals landing mid-election.
//
// Acting-root staleness contract: inner stacks never cache
// IsRoot-derived facts across RootsVersion bumps; every Legitimate()
// and WitnessLegitimate() entry point re-checks the bound authority's
// RootsVersion first, so a verdict flip invalidates reference naming
// before any predicate reads it.
//
// The soak engine (churn.Runner.Soak; stabsim -soak) proves the
// lifecycle under long-lived schedules: overlapping partition cuts,
// partial heals, components that never reunite (LeaveSplit), and
// crash/revive of the fixed root itself (fault.Churn's CrashRoot knob
// drives the same event in fault campaigns), with per-phase
// detection-latency measurement and invariant checks — no
// false-orphan flaps after detection settles, exactly one acting root
// per component, witness ≡ scan at every settle. Experiment T15
// records detection latency and re-anchoring cost against the global
// restart the failover replaces.
//
// # Message-passing deployment
//
// The guarded-command daemon model is the paper's abstraction; real
// networks deliver messages. internal/actor closes that gap with an
// actor-style runtime: one goroutine and one bounded mailbox per
// node, messages only along graph links, and a configurable delivery
// policy (FIFO per link by default; seeded drop and bounded-reorder
// fault injection for adversarial runs). The transformer follows the
// request/reply family of Bernard–Devismes–Potop-Butucaru–Tixeuil
// (arXiv:0805.0851): each node caches versioned neighbour states, and
// a move fires only when every cached state in the action's declared
// influence ball is provably fresh — the node re-requests stale
// entries and retries. Guards are re-validated under the runtime's
// state mutex at fire time, which yields the *daemon-projection
// guarantee*: the mutex order of fired moves is a legal
// central-daemon execution of the same protocol, so every safety and
// convergence property proved in the daemon model transfers to the
// message runtime. The guarantee is checked, not assumed —
// actor.CheckProjection replays each recorded execution move-for-move
// on a serial full-scan oracle through program.ScriptDaemon (every
// replayed move must be enabled when scheduled) and requires
// byte-identical final snapshots, across protocols, topologies and
// fault policies in the differential suite. Liveness needs no
// synchrony: sends never block (full mailboxes drop and the
// supervisor's periodic tick re-prods enabled nodes), so any drop
// rate below one keeps convergence almost-sure.
//
// cmd/orientd is the deployment form: a long-running service that
// boots any of the five stacks — wrapped in root failover — on a
// graph.Named topology, stabilizes continuously on the actor runtime
// (or the sharded parallel stepper with -workers N, whose metrics
// verb then reports per-shard work, frontier size, wave count and the
// resharding counters), and serves a JSON-line admin protocol on a
// Unix or TCP socket.
// Query verbs (status, legitimacy, orientation, enabled, metrics)
// answer off the O(1) witness counters, so many concurrent clients
// can watch legitimacy and per-component acting-root state live while
// stabilization runs; fault verbs (corrupt, flap, cut, heal,
// crash-root, revive) inject the same perturbations the simulation
// campaigns use, and `orientd -smoke` drives the whole lifecycle —
// converge, hammer with parallel clients, inject faults, re-converge,
// clean shutdown — as a CI gate. The failover election can be
// weighted (failover.Protocol.WeightElection): acting-root candidates
// then compete on a lexicographic (operator priority, degree, id) key
// advertised hop-by-hop with the candidate id, so pinned or highly
// connected nodes win orphan components instead of the bare maximum
// id, with the same count-to-the-bound decay for stale claims.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record. All implementation lives under internal/;
// the runnable entry points are the programs in cmd/ and examples/.
package netorient

// Package netorient is a faithful, production-quality reproduction of
// "Self-Stabilizing Network Orientation Algorithms in Arbitrary Rooted
// Networks" (Gurumurthy & Datta, ICDCS 2000).
//
// The library implements the paper's two self-stabilizing network
// orientation protocols — DFTNO (built on a depth-first token circulation
// substrate) and STNO (built on a spanning tree substrate) — together with
// every substrate they depend on, a guarded-command execution model with
// pluggable daemons, an exhaustive model checker for self-stabilization
// properties, chordal sense-of-direction utilities, fault injection, and a
// benchmark harness that regenerates every figure and complexity claim of
// the paper's evaluation.
//
// # Execution engine
//
// Simulations run on an event-driven incremental scheduler
// (internal/program.System): the runner caches every node's
// enabled-action list and, after a move at v, re-evaluates guards only
// for v's closed neighbourhood — or the wider set a protocol declares
// through the program.Influencer locality contract (STNO over a DFS
// tree reads two hops). The dirty-set invariant — cached guards always
// equal a fresh evaluation — makes the guard work of a daemon step
// O(Δ) instead of Θ(n).
//
// The runner's two hot-path contracts are sublinear as well:
//
//   - Daemons receive a program.EnabledSet — an indexable, ascending
//     view of the enabled processors (Len, At(i), Actions(i, buf),
//     O(1) Contains) backed by a Fenwick index over the cached enabled
//     bits — instead of a materialised candidate slice. A sampling
//     daemon (central, round-robin, deterministic) selects in O(log n)
//     queries, so a step costs O(Δ·log n) end to end; enumerate-all
//     daemons (synchronous, distributed) pay O(#enabled·log n), which
//     is inherent to their scheduling model. Pre-EnabledSet daemons
//     migrate mechanically: keep the old Select([]Candidate) body,
//     satisfy program.LegacyDaemon, and wrap it with
//     program.AdaptLegacy — executions stay bit-identical, only the
//     Ω(#enabled) materialisation cost returns.
//
//   - RunUntilLegitimate consults a program.Witness when the protocol
//     provides one: an incrementally-maintained legitimacy witness
//     (per-node violation counters refreshed from the same dirty sets
//     the guard cache uses) that decides L_P in O(1) instead of an
//     O(n) Legitimate() scan per step. All five protocol stacks — the
//     token circulator, both spanning trees, DFTNO and STNO — ship
//     witnesses; layers conjoin their own counters with their
//     substrate's verdict. program.CheckWitness audits every witness
//     against its O(n) predicate on random executions. DFTNO's
//     legitimacy itself is a recomputable cycle invariant (Max values
//     determined by the traversal position exposed through the token
//     Substrate's introspection queries), replacing the recorded
//     per-cycle snapshot map that cost O(n²) bytes and made 64k-node
//     stacks unconstructible.
//
// Steps allocate nothing in steady state, and both contracts produce
// bit-identical executions (moves, steps, rounds, final configuration)
// to the full-scan reference runner, which program.NewSystemFullScan
// keeps available as a differential-testing oracle. Every protocol
// package declares and documents its influence audit;
// program.CheckLocality verifies the declarations empirically, and the
// differential suite in internal/program locksteps both schedulers and
// both daemon APIs across every protocol × daemon combination.
// Experiments T11 and T12 (BENCH_scheduler.json) record the resulting
// speedups on graphs up to 65 536 nodes; CI fails on >2× step-latency
// regressions against that committed baseline.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record. All implementation lives under internal/;
// the runnable entry points are the programs in cmd/ and examples/.
package netorient
